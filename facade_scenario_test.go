package elasticutor_test

import (
	"testing"
	"time"

	elasticutor "repro"
)

func scenarioBuilder(t *testing.T) *elasticutor.Builder {
	t.Helper()
	b := elasticutor.NewBuilder("facade-scenario")
	src := b.Spout("s", elasticutor.SpoutConfig{
		Rate: elasticutor.ConstantRate(3000),
		Sample: func(now elasticutor.Time) (elasticutor.Key, int, interface{}) {
			return elasticutor.Key(uint64(now) % 400), 128, nil
		},
	})
	bolt := b.Bolt("work", elasticutor.BoltConfig{Cost: time.Millisecond})
	b.Connect(src, bolt)
	return b
}

func TestScenariosListsBuiltins(t *testing.T) {
	names := elasticutor.Scenarios()
	if len(names) < 8 {
		t.Fatalf("only %d built-in scenarios: %v", len(names), names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"flashcrowd", "nodejoin", "nodedrain", "nodefail", "hotspot"} {
		if !seen[want] {
			t.Fatalf("missing built-in %q in %v", want, names)
		}
	}
}

func TestOptionsScenarioAppliesChurnToUserTopology(t *testing.T) {
	r, err := scenarioBuilder(t).Run(elasticutor.Options{
		Paradigm: elasticutor.Elasticutor,
		Scenario: "nodefail", // 4 nodes, fails node 1 at 8s
		Duration: 10 * time.Second,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeFails != 1 {
		t.Fatalf("NodeFails = %d, want 1 (scenario events not applied)", r.NodeFails)
	}
	if r.Processed == 0 {
		t.Fatal("nothing processed")
	}
}

func TestOptionsScenarioModulatesSpoutRate(t *testing.T) {
	run := func(scn string) *elasticutor.Report {
		r, err := scenarioBuilder(t).Run(elasticutor.Options{
			Paradigm: elasticutor.Elasticutor,
			Scenario: scn,
			Duration: 12 * time.Second,
			Seed:     3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	steady := run("steady")
	burst := run("flashcrowd") // 3x the spout rate for 4s
	if burst.Generated+burst.Blocked <= steady.Generated+steady.Blocked {
		t.Fatalf("flash crowd did not raise offered load: %d vs %d",
			burst.Generated+burst.Blocked, steady.Generated+steady.Blocked)
	}
}

func TestOptionsScenarioDefaultsDuration(t *testing.T) {
	// Duration 0 with a scenario set runs for the scenario's own horizon, so
	// its events actually fire.
	r, err := scenarioBuilder(t).Run(elasticutor.Options{
		Paradigm: elasticutor.Elasticutor,
		Scenario: "nodefail",
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeFails != 1 {
		t.Fatalf("NodeFails = %d, want 1", r.NodeFails)
	}
	if r.Duration != 16*time.Second {
		t.Fatalf("Duration = %v, want the scenario's 16s", r.Duration)
	}
}

func TestOptionsScenarioRejectsTruncatedEvents(t *testing.T) {
	// An explicit Duration that would silently skip the scenario's events is
	// rejected rather than reporting a run with no churn.
	_, err := scenarioBuilder(t).Run(elasticutor.Options{
		Scenario: "nodefail", // fails node 1 at 8s
		Duration: 5 * time.Second,
	})
	if err == nil {
		t.Fatal("5s run of an 8s-event scenario was accepted")
	}
}

func TestOptionsScenarioUnknownName(t *testing.T) {
	_, err := scenarioBuilder(t).Run(elasticutor.Options{
		Scenario: "perfectly-calm-tuesday",
		Duration: time.Second,
	})
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestOptionsScenarioRejectsEventsOutsideCluster(t *testing.T) {
	// 2 nodes, but the scenario fails node 1 of an (originally) 4-node
	// cluster — still fine; now shrink to 1 node so the event would kill the
	// last node: must be rejected up front, not panic mid-run.
	_, err := scenarioBuilder(t).Run(elasticutor.Options{
		Scenario: "nodefail",
		Nodes:    1,
		Duration: 10 * time.Second,
	})
	if err == nil {
		t.Fatal("event timeline invalid for Nodes=1 was accepted")
	}
}

func TestRunScenarioFacade(t *testing.T) {
	r, err := elasticutor.RunScenario("nodedrain", "elasticutor", 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeDrains != 1 {
		t.Fatalf("NodeDrains = %d", r.NodeDrains)
	}
}
