package elasticutor_test

import (
	"testing"
	"time"

	elasticutor "repro"
)

func TestPolicyNamesExposeBuiltins(t *testing.T) {
	names := elasticutor.PolicyNames()
	want := map[string]bool{"static": false, "rc": false, "naive-ec": false, "elasticutor": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("PolicyNames() = %v is missing %q", names, n)
		}
	}
}

// TestOptionsPolicySelectsByName runs the same topology twice — once via the
// Paradigm constant, once via the policy name — and requires identical
// deterministic results.
func TestOptionsPolicySelectsByName(t *testing.T) {
	run := func(opt elasticutor.Options) *elasticutor.Report {
		b, _ := buildCounter(2000, 17)
		opt.Nodes = 2
		opt.SourceExecutors = 2
		opt.Y = 2
		opt.Z = 16
		opt.Duration = 4 * time.Second
		opt.Seed = 17
		r, err := b.Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	byConst := run(elasticutor.Options{Paradigm: elasticutor.Elasticutor})
	byName := run(elasticutor.Options{Policy: "elasticutor"})
	if byConst.Processed == 0 {
		t.Fatal("nothing processed")
	}
	if byConst.Processed != byName.Processed || byConst.Events != byName.Events {
		t.Fatalf("name selection diverged from paradigm constant: %v vs %v", byName, byConst)
	}
	if byName.Paradigm != elasticutor.Elasticutor || byName.Policy != "elasticutor" {
		t.Fatalf("report identity: paradigm=%v policy=%q", byName.Paradigm, byName.Policy)
	}
}

func TestOptionsPolicyUnknownName(t *testing.T) {
	b, _ := buildCounter(500, 3)
	if _, err := b.Run(elasticutor.Options{
		Policy: "not-a-policy", Nodes: 2, SourceExecutors: 2, Y: 2, Z: 16,
		Duration: time.Second,
	}); err == nil {
		t.Fatal("unknown policy name must fail")
	}
}

// TestTrialsDeterministicAcrossWorkers runs replicate trials sequentially
// and concurrently; the reports must match pairwise.
func TestTrialsDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []*elasticutor.Report {
		reports, err := elasticutor.Trials(3, workers, 7, func(seed uint64) (*elasticutor.Builder, elasticutor.Options) {
			b, _ := buildCounter(2000, seed)
			return b, elasticutor.Options{
				Paradigm: elasticutor.Elasticutor,
				Nodes:    2, SourceExecutors: 2, Y: 2, Z: 16,
				Duration: 3 * time.Second,
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return reports
	}
	seq := run(1)
	par := run(3)
	if len(seq) != 3 || len(par) != 3 {
		t.Fatalf("trial counts: %d vs %d", len(seq), len(par))
	}
	distinct := map[int64]bool{}
	for i := range seq {
		if seq[i].Events != par[i].Events || seq[i].Processed != par[i].Processed {
			t.Fatalf("trial %d diverged across worker counts: %v vs %v", i, seq[i], par[i])
		}
		distinct[seq[i].Processed] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("replicate seeds produced identical runs %v — forking broken?", seq)
	}
}
