package elasticutor_test

import (
	"strings"
	"testing"
	"time"

	elasticutor "repro"
	"repro/internal/engine"
)

// Facade coverage for the real-time backend: user topologies run on
// goroutines behind Options.Backend, and the harness's sequential error
// semantics survive the concurrent backend (worker panics surface as errors
// from the failing trial, lowest index first — they must never crash the
// process).

// runtimeBuilder assembles a tiny two-operator topology. If boom is set the
// bolt panics on every tuple.
func runtimeBuilder(t *testing.T, boom bool) (*elasticutor.Builder, elasticutor.Options) {
	t.Helper()
	b := elasticutor.NewBuilder("rt-facade")
	src := b.Spout("src", elasticutor.SpoutConfig{
		Rate: elasticutor.ConstantRate(500),
		Sample: func(now elasticutor.Time) (elasticutor.Key, int, interface{}) {
			return elasticutor.Key(uint64(now) % 97), 64, nil
		},
	})
	bolt := b.Bolt("count", elasticutor.BoltConfig{
		Cost: time.Millisecond,
		Handler: func(tu elasticutor.Tuple, s elasticutor.State) []elasticutor.Tuple {
			if boom {
				panic("boom")
			}
			n, _ := s.Get().(int)
			s.Set(n + tu.Weight)
			return nil
		},
	})
	b.Connect(src, bolt)
	return b, elasticutor.Options{
		Backend:  elasticutor.BackendRuntime,
		Speedup:  20,
		Nodes:    2,
		Batch:    4,
		Duration: 2 * time.Second,
	}
}

func TestFacadeRuntimeBackend(t *testing.T) {
	b, opt := runtimeBuilder(t, false)
	r, err := b.Run(opt)
	if err != nil {
		t.Fatalf("runtime backend run: %v", err)
	}
	if r.Processed == 0 {
		t.Fatal("runtime backend processed nothing")
	}
	if r.Policy != "static" { // the facade's zero-value paradigm, as on the simulator
		t.Fatalf("policy = %q", r.Policy)
	}
}

func TestFacadeRuntimeBackendUnknown(t *testing.T) {
	b, opt := runtimeBuilder(t, false)
	opt.Backend = "quantum"
	if _, err := b.Run(opt); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("want unknown-backend error, got %v", err)
	}
}

func TestFacadeRuntimeBackendRejectsBeforeRun(t *testing.T) {
	b, opt := runtimeBuilder(t, false)
	opt.BeforeRun = func(*engine.Engine) {}
	if _, err := b.Run(opt); err == nil || !strings.Contains(err.Error(), "BeforeRun requires the sim backend") {
		t.Fatalf("want BeforeRun rejection, got %v", err)
	}
}

// TestHarnessErrorSemanticsRuntime pins the harness contract under the
// runtime backend: a worker panic inside a trial becomes that trial's error
// (with its index), later trials are cancelled, and the process survives.
func TestHarnessErrorSemanticsRuntime(t *testing.T) {
	reports, err := elasticutor.Trials(3, 2, 7, func(seed uint64) (*elasticutor.Builder, elasticutor.Options) {
		return runtimeBuilder(t, true)
	})
	if err == nil {
		t.Fatal("want an error from the panicking handler")
	}
	if reports != nil {
		t.Fatalf("reports must be nil on error, got %d", len(reports))
	}
	msg := err.Error()
	if !strings.Contains(msg, "panic") || !strings.Contains(msg, "boom") {
		t.Fatalf("error should carry the recovered panic: %v", err)
	}
	if !strings.Contains(msg, "trial") {
		t.Fatalf("error should name the failing trial: %v", err)
	}
}

// TestHarnessMixedTrialsRuntime runs healthy runtime-backend trials through
// the concurrent harness: results arrive in trial order with no error.
func TestHarnessMixedTrialsRuntime(t *testing.T) {
	reports, err := elasticutor.Trials(2, 2, 11, func(seed uint64) (*elasticutor.Builder, elasticutor.Options) {
		return runtimeBuilder(t, false)
	})
	if err != nil {
		t.Fatalf("trials: %v", err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	for i, r := range reports {
		if r.Processed == 0 {
			t.Fatalf("trial %d processed nothing", i)
		}
	}
}
