package elasticutor_test

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	elasticutor "repro"
)

// Facade coverage for the distributed backend: user topologies run on real
// agent processes behind Options.Backend. The test binary itself is the agent
// binary — MainIfAgent hijacks the re-executed copies before testing starts.

func TestMain(m *testing.M) {
	elasticutor.MainIfAgent()
	os.Exit(m.Run())
}

// distBuilder assembles a two-operator topology with a synthesized bolt:
// handlers are user code and cannot cross the process boundary, so the
// distributed backend models output with Selectivity instead.
func distBuilder() (*elasticutor.Builder, elasticutor.Options) {
	b := elasticutor.NewBuilder("dist-facade")
	src := b.Spout("src", elasticutor.SpoutConfig{
		Rate: elasticutor.ConstantRate(500),
		Sample: func(now elasticutor.Time) (elasticutor.Key, int, interface{}) {
			return elasticutor.Key(uint64(now) % 97), 64, nil
		},
	})
	bolt := b.Bolt("count", elasticutor.BoltConfig{
		Cost:        time.Millisecond,
		Selectivity: 0,
	})
	b.Connect(src, bolt)
	return b, elasticutor.Options{
		Backend:  elasticutor.BackendDist,
		Speedup:  20,
		Nodes:    2,
		Batch:    4,
		Duration: 2 * time.Second,
	}
}

func TestFacadeDistBackend(t *testing.T) {
	b, opt := distBuilder()
	r, err := b.Run(opt)
	if err != nil {
		t.Fatalf("dist backend run: %v", err)
	}
	if r.Processed == 0 {
		t.Fatal("dist backend processed nothing")
	}
}

func TestFacadeDistRejectsHandler(t *testing.T) {
	b := elasticutor.NewBuilder("dist-handler")
	src := b.Spout("src", elasticutor.SpoutConfig{
		Rate: elasticutor.ConstantRate(100),
		Sample: func(now elasticutor.Time) (elasticutor.Key, int, interface{}) {
			return elasticutor.Key(1), 64, nil
		},
	})
	bolt := b.Bolt("fn", elasticutor.BoltConfig{
		Cost:    time.Millisecond,
		Handler: func(tu elasticutor.Tuple, s elasticutor.State) []elasticutor.Tuple { return nil },
	})
	b.Connect(src, bolt)
	_, err := b.Run(elasticutor.Options{
		Backend: elasticutor.BackendDist, Nodes: 2, Duration: time.Second, Speedup: 20,
	})
	if err == nil || !strings.Contains(err.Error(), "process boundary") {
		t.Fatalf("want handler rejection, got %v", err)
	}
}

func TestFacadeDistStartScenario(t *testing.T) {
	h, err := elasticutor.StartScenario(context.Background(), "flashcrowd", elasticutor.Options{
		Backend: elasticutor.BackendDist,
		Policy:  "elasticutor",
		Seed:    42,
		Speedup: 40,
	})
	if err != nil {
		t.Fatalf("start scenario: %v", err)
	}
	r, err := h.Wait()
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if r.Processed == 0 {
		t.Fatal("distributed scenario processed nothing")
	}
}
