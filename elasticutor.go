// Package elasticutor is a Go reproduction of "Elasticutor: Rapid Elasticity
// for Realtime Stateful Stream Processing" (Wang, Fu, Ma, Winslett, Zhang;
// SIGMOD 2019). It provides a deterministic simulated stream-processing
// engine with four execution paradigms — static, resource-centric, naive
// executor-centric, and Elasticutor — plus the elastic executors, dynamic
// scheduler, and baselines the paper evaluates.
//
// The public API is a small facade over the internal packages:
//
//	b := elasticutor.NewBuilder("wordcount")
//	src := b.Spout("sentences", elasticutor.SpoutConfig{
//		Rate:   elasticutor.ConstantRate(50000),
//		Sample: func(now elasticutor.Time) (elasticutor.Key, int, interface{}) { ... },
//	})
//	count := b.Bolt("count", elasticutor.BoltConfig{
//		Cost:    time.Millisecond,
//		Handler: func(t elasticutor.Tuple, s elasticutor.State) []elasticutor.Tuple { ... },
//	})
//	b.Connect(src, count)
//	report, err := b.Run(elasticutor.Options{
//		Paradigm: elasticutor.Elasticutor,
//		Nodes:    32,
//		Duration: 60 * time.Second,
//	})
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// architecture and the simulation substitutions.
package elasticutor

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/policy"
	runpkg "repro/internal/run"
	rtbackend "repro/internal/runtime"
	"repro/internal/scenario"
	"repro/internal/simtime"
	"repro/internal/stream"
)

// Re-exported domain types. Aliases keep the internal packages as the single
// source of truth while giving users one import.
type (
	// Key is a tuple's partitioning key.
	Key = stream.Key
	// Tuple is one unit of data (possibly a weighted batch).
	Tuple = stream.Tuple
	// State is the per-key state accessor handed to bolt handlers.
	State = stream.StateAccessor
	// Time is a point in virtual time.
	Time = simtime.Time
	// Report is the measurement output of a run: the aggregate Totals block
	// (flat accessors preserved), the PerOperator breakdown, and — for runs
	// observed through a Run handle — the typed event Timeline.
	Report = engine.Report
	// Totals is the aggregate counter block embedded in Report.
	Totals = engine.Totals
	// OperatorStats is one operator's slice of the report.
	OperatorStats = engine.OperatorStats
	// Paradigm selects the execution paradigm.
	Paradigm = engine.Paradigm

	// Run is a live (or finished) run on either backend: Wait for the
	// report, Snapshot for live per-operator metrics, Events for the typed
	// event stream, Inject for mid-run control (see Builder.Start).
	Run = runpkg.Run
	// Event is one typed occurrence in a live run (churn, repartitions,
	// phase transitions, policy invocations).
	Event = engine.Event
	// EventKind classifies an Event.
	EventKind = engine.EventKind
	// Command is one control action injected into a live run (see AddNode,
	// DrainNode, FailNode, SetRate).
	Command = engine.Command
	// Snapshot is a point-in-time view of a live run.
	Snapshot = engine.Snapshot
	// OperatorSnapshot is the live view of one operator inside a Snapshot.
	OperatorSnapshot = engine.OperatorSnapshot

	// Autoscaler is one closed-loop cluster controller: it periodically
	// observes a live run and answers with node additions and drains (see
	// internal/autoscale and Options.Autoscaler).
	Autoscaler = autoscale.Autoscaler
	// AutoscaleConfig tunes an autoscaling session (control interval, node
	// bounds, SLO thresholds).
	AutoscaleConfig = autoscale.Config
	// AutoscaleMetrics is the windowed cluster view a controller decides on.
	AutoscaleMetrics = autoscale.Metrics
	// AutoscaleDecision is a controller's requested node-count change.
	AutoscaleDecision = autoscale.Decision
	// AutoscaleStats is the report's cost/SLO account of an autoscaled run
	// (Report.Autoscale; nil without a controller).
	AutoscaleStats = engine.AutoscaleStats
	// ScaleAction is one applied autoscaling decision inside AutoscaleStats.
	ScaleAction = engine.ScaleAction

	// RepartitionSpan is the per-phase observability record of one completed
	// §3.3 repartition (pause → drain → migrate → reroute); carried on
	// repartition-finish events as Event.Span.
	RepartitionSpan = engine.RepartitionSpan
	// Trace is a decoded run recording: header, typed events, applied
	// commands with provenance, periodic snapshots, and the end record (see
	// internal/obs; Replay rebuilds and re-drives it).
	Trace = obs.Trace
	// TraceHeader is the self-contained metadata record leading a trace; a
	// header with an embedded ScenarioSpec makes the trace replayable.
	TraceHeader = obs.Header
	// TraceRecorder streams a live run into a versioned NDJSON trace.
	TraceRecorder = obs.Recorder
	// RecordOptions tunes a recording (snapshot cadence, per-record flush).
	RecordOptions = obs.RecordOptions
	// ReplayOptions tunes a trace replay (backend / speedup overrides).
	ReplayOptions = obs.ReplayOptions
	// MetricsExporter serves a live run's Prometheus-style /metrics endpoint
	// (optionally with pprof handlers on the same private mux).
	MetricsExporter = obs.Exporter
)

// The event taxonomy of Run.Events and Report.Timeline.
const (
	EventNodeJoin          = engine.EventNodeJoin
	EventNodeDrain         = engine.EventNodeDrain
	EventNodeFail          = engine.EventNodeFail
	EventRepartitionStart  = engine.EventRepartitionStart
	EventRepartitionFinish = engine.EventRepartitionFinish
	EventPhaseStart        = engine.EventPhaseStart
	EventPhaseEnd          = engine.EventPhaseEnd
	EventPhaseSkipped      = engine.EventPhaseSkipped
	EventPolicyInvoked     = engine.EventPolicyInvoked
	EventCommandApplied    = engine.EventCommandApplied
)

// AddNode returns a command that grows the cluster by one node (cores 0 =
// cluster default). Commands are applied at the run's next safe point; use
// Command.AtTime for a deterministic virtual-time schedule (inject before
// the run starts).
func AddNode(cores int) Command { return engine.AddNodeCmd(cores) }

// DrainNode returns a command that removes a node gracefully: executors
// evacuate and their state migrates off — nothing is lost.
func DrainNode(node int) Command { return engine.DrainNodeCmd(node) }

// FailNode returns a command that removes a node hard: its queues and
// resident state are destroyed, with every loss accounted.
func FailNode(node int) Command { return engine.FailNodeCmd(node) }

// SetRate returns a command that scales every spout's offered load by factor
// (1 restores the configured rate).
func SetRate(factor float64) Command { return engine.SetRateCmd(factor) }

// Execution paradigms (paper §2.2, §5).
const (
	Static          = engine.Static
	ResourceCentric = engine.ResourceCentric
	NaiveEC         = engine.NaiveEC
	Elasticutor     = engine.Elasticutor
)

// ElasticityPolicy is the pluggable control-plane strategy interface (see
// internal/policy): placement, routing choice, control loops, scheduling.
type ElasticityPolicy = policy.Policy

// PolicyNames lists the registered elasticity policies ("static", "rc",
// "naive-ec", "elasticutor", plus anything added via RegisterPolicy).
func PolicyNames() []string { return policy.Names() }

// RegisterPolicy makes a custom elasticity policy selectable by name in
// Options.Policy and the CLIs. It panics on duplicate names.
func RegisterPolicy(name string, ctor func() ElasticityPolicy) { policy.Register(name, ctor) }

// Autoscalers lists the registered cluster controllers ("none", "reactive",
// "backlog", "predictive", plus anything added via RegisterAutoscaler).
func Autoscalers() []string { return autoscale.Names() }

// RegisterAutoscaler makes a custom cluster controller selectable by name in
// Options.Autoscaler and the CLI. It panics on duplicate names.
func RegisterAutoscaler(name string, ctor func() Autoscaler) { autoscale.Register(name, ctor) }

// ConstantRate returns a fixed offered-load function (tuples per second).
func ConstantRate(perSec float64) func(Time) float64 {
	return func(Time) float64 { return perSec }
}

// AttachRecorder wires a trace recorder onto a built, unstarted Run: every
// typed event, applied command, and periodic snapshot is encoded to w as it
// happens. Call the recorder's Finish with the report after Wait to append
// the end record. See internal/obs for the trace format.
func AttachRecorder(h *Run, w io.Writer, hdr TraceHeader, opt RecordOptions) *TraceRecorder {
	return obs.Attach(h, w, hdr, opt)
}

// LoadTrace reads and decodes a recorded NDJSON trace from disk.
func LoadTrace(path string) (*Trace, error) { return obs.Load(path) }

// DecodeTrace decodes a recorded NDJSON trace from r.
func DecodeTrace(r io.Reader) (*Trace, error) { return obs.Decode(r) }

// ScenarioTraceHeader assembles the standard self-contained trace header for
// a scenario-built run; backend is BackendSim or BackendRuntime.
func ScenarioTraceHeader(sp *ScenarioSpec, backend, policyName string, seed uint64) TraceHeader {
	return obs.HeaderForScenario(sp, backend, policyName, seed, 0, "", 0)
}

// NewMetricsExporter wraps a run handle in a /metrics exporter.
func NewMetricsExporter(h *Run) *MetricsExporter { return obs.NewExporter(h) }

// ScenarioSpec is the declarative scenario type (phased workload dynamics
// plus timed cluster churn; see internal/scenario for the spec grammar).
type ScenarioSpec = scenario.Spec

// Scenarios lists the built-in scenario names ("flashcrowd", "nodefail", …).
func Scenarios() []string { return scenario.Names() }

// ScenarioByName returns a fresh copy of a built-in scenario spec.
func ScenarioByName(name string) (*ScenarioSpec, error) { return scenario.ByName(name) }

// RunScenario runs a built-in or file-loaded scenario (name or *.json path)
// on the canonical micro-benchmark topology under the named elasticity
// policy. For applying a scenario's dynamics to your own topology, set
// Options.Scenario instead.
func RunScenario(nameOrPath, policyName string, seed uint64) (*Report, error) {
	sp, err := scenario.Resolve(nameOrPath)
	if err != nil {
		return nil, err
	}
	return sp.Run(policyName, seed)
}

// StartScenario launches a built-in or file-loaded scenario (name or *.json
// path) on the canonical micro-benchmark topology and returns its live Run
// handle. Unlike RunScenario it selects an execution backend: Options.Policy
// names the elasticity policy (default "elasticutor"), Options.Backend picks
// BackendSim, BackendRuntime, or BackendDist (Options.Speedup compresses the
// latter two's clocks), Options.Seed seeds the workload, and Options.Autoscaler attaches a
// cluster controller (its session warm-up defaults to the scenario's). Other
// Options fields are the scenario's to decide and are ignored.
func StartScenario(ctx context.Context, nameOrPath string, opt Options) (*Run, error) {
	sp, err := scenario.Resolve(nameOrPath)
	if err != nil {
		return nil, err
	}
	pol := opt.Policy
	if pol == "" {
		pol = "elasticutor"
	}
	var h *Run
	switch opt.Backend {
	case "", BackendSim:
		inst, err := sp.Build(pol, opt.Seed)
		if err != nil {
			return nil, err
		}
		h = inst.Handle
	case BackendRuntime:
		_, hh, err := rtbackend.BuildScenario(sp, pol, opt.Seed,
			rtbackend.ScenarioOptions{Options: rtbackend.Options{Speedup: opt.Speedup}, Batch: opt.Batch})
		if err != nil {
			return nil, err
		}
		h = hh
	case BackendDist:
		_, hh, err := dist.BuildScenario(sp, pol, opt.Seed, dist.ScenarioOptions{
			ScenarioOptions: rtbackend.ScenarioOptions{Options: rtbackend.Options{Speedup: opt.Speedup}, Batch: opt.Batch}})
		if err != nil {
			return nil, err
		}
		h = hh
	default:
		return nil, fmt.Errorf("elasticutor: unknown backend %q (have %v)", opt.Backend, Backends())
	}
	if opt.EventBuffer > 0 {
		h.SetEventBuffer(opt.EventBuffer)
	}
	if err := attachAutoscaler(h, opt.Autoscaler, opt.Autoscale, sp.Warmup()); err != nil {
		return nil, err
	}
	h.Start(ctx)
	return h, nil
}

// SpoutConfig describes a source operator.
type SpoutConfig struct {
	// Rate is the aggregate offered load in tuples/s.
	Rate func(now Time) float64
	// Sample draws the next tuple's key, wire size in bytes, and payload.
	Sample func(now Time) (Key, int, interface{})
}

// BoltConfig describes a processing operator.
type BoltConfig struct {
	// Cost is the CPU time to process one tuple (required).
	Cost time.Duration
	// CostFn optionally replaces Cost with a per-tuple model.
	CostFn func(Tuple) time.Duration
	// Handler is the user logic: read/update per-key state, return emissions.
	Handler func(Tuple, State) []Tuple
	// OutBytes is the default wire size of emitted tuples.
	OutBytes int
	// Selectivity synthesizes outputs-per-input when Handler is nil.
	Selectivity float64
	// StatePerShardKB sizes each shard's resident state (default 32).
	StatePerShardKB int
}

// NodeID identifies an operator in a builder.
type NodeID int

// Builder assembles a topology.
type Builder struct {
	tp      *stream.Topology
	sources map[stream.OperatorID]*engine.SourceDriver
	err     error
}

// NewBuilder returns an empty topology builder.
func NewBuilder(name string) *Builder {
	return &Builder{
		tp:      stream.NewTopology(name),
		sources: make(map[stream.OperatorID]*engine.SourceDriver),
	}
}

// Spout adds a source operator.
func (b *Builder) Spout(name string, cfg SpoutConfig) NodeID {
	op := b.tp.Add(&stream.Operator{Name: name, Source: true})
	if cfg.Rate == nil || cfg.Sample == nil {
		b.err = fmt.Errorf("elasticutor: spout %q needs Rate and Sample", name)
		return NodeID(op.ID)
	}
	b.sources[op.ID] = &engine.SourceDriver{Rate: cfg.Rate, Sample: cfg.Sample}
	return NodeID(op.ID)
}

// Bolt adds a processing operator.
func (b *Builder) Bolt(name string, cfg BoltConfig) NodeID {
	var cost stream.CostModel
	switch {
	case cfg.CostFn != nil:
		cost = stream.CostModel(cfg.CostFn)
	case cfg.Cost > 0:
		cost = stream.FixedCost(cfg.Cost)
	default:
		b.err = fmt.Errorf("elasticutor: bolt %q needs Cost or CostFn", name)
	}
	stateKB := cfg.StatePerShardKB
	if stateKB == 0 {
		stateKB = 32
	}
	op := b.tp.Add(&stream.Operator{
		Name:          name,
		Cost:          cost,
		Handler:       stream.Handler(cfg.Handler),
		OutBytes:      cfg.OutBytes,
		Selectivity:   cfg.Selectivity,
		StatePerShard: stateKB << 10,
	})
	return NodeID(op.ID)
}

// Connect declares a stream from one operator to another.
func (b *Builder) Connect(from, to NodeID) {
	b.tp.Connect(stream.OperatorID(from), stream.OperatorID(to))
}

// Backends. The simulator is the deterministic default; the runtime backend
// executes the same topology and policy on real goroutines, channels, and
// the wall clock (see internal/runtime); the dist backend keeps the runtime
// control-plane in this process but runs every node's executor work in
// per-node agent OS processes reached over TCP (see internal/dist). A binary
// using BackendDist must call MainIfAgent at the top of main so self-spawned
// agents can re-enter it.
const (
	BackendSim     = "sim"
	BackendRuntime = "runtime"
	BackendDist    = "dist"
)

// Backends lists the selectable execution backends.
func Backends() []string { return []string{BackendSim, BackendRuntime, BackendDist} }

// MainIfAgent hijacks the process when it was spawned as a distributed-run
// agent (BackendDist re-executes the host binary per node) and never returns
// in that case. Call it first thing in main of any binary that starts
// BackendDist runs.
func MainIfAgent() { dist.MainIfAgent() }

// Options configures a run. Zero values take the paper's defaults.
type Options struct {
	Paradigm Paradigm
	// Policy selects the elasticity control plane by registry name
	// ("static", "rc", "naive-ec", "elasticutor", or anything registered
	// via RegisterPolicy). When set it overrides Paradigm.
	Policy          string
	Nodes           int // cluster nodes, 8 cores / 1 Gbps each (default 32)
	SourceExecutors int // parallelism of each spout (default one per node)

	Y        int // executors per bolt (default 32)
	Z        int // shards per elastic executor (default 256)
	OpShards int // operator-level shards for the RC baseline (default 8192)

	Duration time.Duration // virtual time to simulate (required)
	WarmUp   time.Duration // excluded from reported metrics

	Tmax  time.Duration // scheduler latency target (default 50 ms)
	Theta float64       // imbalance threshold θ (default 1.2)
	Phi   float64       // data-intensity threshold φ̃ in bytes/s (default 512 KiB/s)

	Batch       int // tuples represented per simulated event (default 1)
	Seed        uint64
	AssertOrder bool // panic on any per-key order violation (testing)

	// EventBuffer sizes the Run's Events channel (default 4096). Emission
	// never blocks: a slow consumer drops events beyond the buffer
	// (Run.LostEvents counts them; Report.Timeline is always complete).
	EventBuffer int

	// Backend selects the execution backend: BackendSim (default, the
	// deterministic discrete-event simulator), BackendRuntime (goroutine
	// executors on the wall clock; not deterministic, AssertOrder and
	// BeforeRun do not apply), or BackendDist (the runtime control-plane
	// with per-node agent processes over TCP; main must call MainIfAgent).
	Backend string
	// Speedup compresses the runtime backend's clock by this factor (20 =
	// a 20 s run finishes in 1 s of wall time). Ignored by the simulator.
	Speedup float64

	// Scenario applies a named built-in (see Scenarios) or *.json scenario
	// to this run: its rate phases multiply every spout's offered load and
	// its cluster events (node join/drain/fail) are scheduled on the clock.
	// Key-space phases (skew drift, hotspot, key churn) need the scenario's
	// own sampler and cannot run on a user topology: each is announced as a
	// typed PhaseSkipped event on the run's timeline (or rejected up front
	// under Strict) — run those through RunScenario/StartScenario. When
	// Nodes is 0 the scenario's cluster size applies, and when Duration is 0
	// the scenario's duration applies; an explicitly shorter Duration that
	// would silently skip scheduled cluster events is rejected.
	Scenario string

	// Autoscaler attaches a closed-loop cluster controller by registry name
	// ("none", "reactive", "backlog", "predictive", or anything registered
	// via RegisterAutoscaler): the run's cluster is resized live through
	// AddNode/DrainNode commands, and the report gains an Autoscale section
	// (node-seconds, actions, SLO-violation time). On the sim backend the
	// control loop samples at fixed virtual times, so autoscaled runs stay
	// deterministic; on the runtime backend it runs on the scaled wall
	// clock. Empty = no controller.
	Autoscaler string
	// Autoscale optionally tunes the controller session (interval, node
	// bounds, SLO thresholds). Nil takes the defaults. The session's
	// warm-up defaults to this run's WarmUp when left zero; set Warmup
	// negative to force cold-start decisions (an explicit no-warm-up).
	Autoscale *AutoscaleConfig

	// Strict rejects configurations that would otherwise degrade with only
	// a timeline notice — currently: a Scenario whose key-space phases
	// cannot run on this topology.
	Strict bool

	// BeforeRun, when set, is called with the constructed engine before the
	// simulation starts — the hook for scheduling workload dynamics such as
	// key shuffles (engine.Every) or forced protocol invocations.
	BeforeRun func(*engine.Engine)
}

// Run validates the topology, builds the selected backend, and runs it for
// Options.Duration of virtual time (the scenario's duration when a scenario
// is set and Duration is 0). It is the blocking convenience form of Start.
func (b *Builder) Run(opt Options) (*Report, error) {
	h, err := b.Start(context.Background(), opt)
	if err != nil {
		return nil, err
	}
	return h.Wait()
}

// Start validates the topology, builds the selected backend, and launches
// the run, returning immediately with a live Run handle on both backends:
//
//	h, err := b.Start(ctx, opt)
//	for ev := range h.Events() { ... }   // typed event stream
//	snap := h.Snapshot()                 // live per-operator metrics
//	h.Inject(elasticutor.DrainNode(3))   // applied at the next safe point
//	report, err := h.Wait()
//
// Cancelling ctx stops the run early at a safe point; Wait then returns the
// partial report (with the context's error) and the backend's conservation
// invariants still hold. See DESIGN.md "Run handle" for safe-point and
// determinism semantics.
func (b *Builder) Start(ctx context.Context, opt Options) (*Run, error) {
	var h *Run
	var err error
	switch opt.Backend {
	case "", BackendSim:
		h, _, err = b.simRun(opt)
	case BackendRuntime:
		h, err = b.runtimeRun(opt)
	case BackendDist:
		h, err = b.distRun(opt)
	default:
		return nil, fmt.Errorf("elasticutor: unknown backend %q (have %v)", opt.Backend, Backends())
	}
	if err != nil {
		return nil, err
	}
	if opt.EventBuffer > 0 {
		h.SetEventBuffer(opt.EventBuffer)
	}
	if err := attachAutoscaler(h, opt.Autoscaler, opt.Autoscale, simtime.Duration(opt.WarmUp)); err != nil {
		return nil, err
	}
	h.Start(ctx)
	return h, nil
}

// attachAutoscaler wires the named cluster controller onto a built,
// unstarted run handle. The session's warm-up defaults to the run's when
// left zero; a negative Warmup is the explicit no-warm-up form.
func attachAutoscaler(h *Run, name string, cfg *AutoscaleConfig, warmup simtime.Duration) error {
	if name == "" {
		return nil
	}
	a, err := autoscale.ByName(name)
	if err != nil {
		return err
	}
	c := AutoscaleConfig{}
	if cfg != nil {
		c = *cfg
	}
	switch {
	case c.Warmup == 0:
		c.Warmup = warmup
	case c.Warmup < 0:
		c.Warmup = 0
	}
	autoscale.Attach(h, a, c)
	return nil
}

// simRun assembles a wired, unstarted simulator run.
func (b *Builder) simRun(opt Options) (*Run, *engine.Engine, error) {
	cfg, sp, duration, err := b.config(opt)
	if err != nil {
		return nil, nil, err
	}
	e, err := engine.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	h := runpkg.NewSim(e, duration)
	if sp != nil {
		// Cluster events as injected commands, phase transitions as timeline
		// markers (rate phases are already wrapped into the sources; key
		// phases need the scenario's own sampler and announce PhaseSkipped).
		scenario.Drive(h, sp, nil, 0)
	}
	if opt.BeforeRun != nil {
		opt.BeforeRun(e)
	}
	return h, e, nil
}

// runtimeRun assembles a wired, unstarted real-time run. The scenario's rate
// phases are already folded into the sources by config(); its cluster events
// are injected on the wall clock through the same handle contract.
func (b *Builder) runtimeRun(opt Options) (*Run, error) {
	if opt.BeforeRun != nil {
		return nil, fmt.Errorf("elasticutor: BeforeRun requires the sim backend (it schedules on the virtual clock)")
	}
	cfg, sp, duration, err := b.config(opt)
	if err != nil {
		return nil, err
	}
	rt, err := rtbackend.New(cfg, rtbackend.Options{Speedup: opt.Speedup})
	if err != nil {
		return nil, err
	}
	h := runpkg.NewRuntime(rt, duration)
	if sp != nil {
		scenario.Drive(h, sp, nil, 0)
	}
	return h, nil
}

// distRun assembles a wired, unstarted distributed run: the same control
// plane as runtimeRun, with per-node agent processes (self-spawned through
// MainIfAgent) carrying the executor work over loopback TCP.
func (b *Builder) distRun(opt Options) (*Run, error) {
	if opt.BeforeRun != nil {
		return nil, fmt.Errorf("elasticutor: BeforeRun requires the sim backend (it schedules on the virtual clock)")
	}
	cfg, sp, duration, err := b.config(opt)
	if err != nil {
		return nil, err
	}
	d, err := dist.New(cfg, rtbackend.Options{Speedup: opt.Speedup}, dist.Options{})
	if err != nil {
		return nil, err
	}
	h := runpkg.NewRuntime(d, duration)
	h.OnFinish(func(*engine.Report) { d.C.Close() })
	if sp != nil {
		scenario.Drive(h, sp, nil, 0)
	}
	return h, nil
}

// Engine builds the simulator engine without running it (for callers that
// need to schedule events against the virtual clock first). Scenario events,
// when configured, are already wired.
func (b *Builder) Engine(opt Options) (*engine.Engine, error) {
	_, e, err := b.simRun(opt)
	return e, err
}

// config resolves Options into the backend-independent engine configuration
// plus the resolved scenario (nil without one) and the run duration.
func (b *Builder) config(opt Options) (engine.Config, *scenario.Spec, time.Duration, error) {
	if b.err != nil {
		return engine.Config{}, nil, 0, b.err
	}
	var sp *scenario.Spec
	if opt.Scenario != "" {
		var err error
		if sp, err = scenario.Resolve(opt.Scenario); err != nil {
			return engine.Config{}, nil, 0, err
		}
	}
	duration := opt.Duration
	if duration == 0 && sp != nil {
		duration = sp.Duration()
	}
	if duration <= 0 {
		return engine.Config{}, nil, 0, fmt.Errorf("elasticutor: Options.Duration is required")
	}
	if sp != nil {
		for i, ev := range sp.Events {
			if at := simtime.FromSeconds(ev.AtSec); at > duration {
				return engine.Config{}, nil, 0, fmt.Errorf("elasticutor: scenario %q event %d (%s at %.1fs) is beyond the %v run duration",
					sp.Name, i, ev.Kind, ev.AtSec, duration)
			}
		}
	}
	nodes := opt.Nodes
	if nodes == 0 && sp != nil && sp.Nodes > 0 {
		nodes = sp.Nodes
	}
	if nodes == 0 {
		nodes = 32
	}
	if sp != nil && nodes != sp.Nodes {
		// The event timeline was validated against the scenario's own
		// cluster size; re-check it against the size this run actually uses.
		clone := *sp
		clone.Nodes = nodes
		if err := clone.Validate(); err != nil {
			return engine.Config{}, nil, 0, err
		}
	}
	if sp != nil && opt.Strict {
		if kinds := sp.KeyPhaseKinds(); len(kinds) > 0 {
			return engine.Config{}, nil, 0, fmt.Errorf(
				"elasticutor: scenario %q key-space phases %v cannot run on a user topology (Options.Strict); use RunScenario or StartScenario",
				sp.Name, kinds)
		}
	}
	srcEx := opt.SourceExecutors
	if srcEx == 0 {
		srcEx = nodes
	}
	var pol policy.Policy
	if opt.Policy != "" {
		p, err := policy.ByName(opt.Policy)
		if err != nil {
			return engine.Config{}, nil, 0, err
		}
		pol = p
	}
	sources := b.sources
	if sp != nil {
		// Wrap every spout's offered load with the scenario's phased
		// multiplier, on a copy so the builder stays reusable.
		mult := sp.RateMultiplier()
		sources = make(map[stream.OperatorID]*engine.SourceDriver, len(b.sources))
		for id, drv := range b.sources {
			base := drv.Rate
			sources[id] = &engine.SourceDriver{
				Rate:   func(now simtime.Time) float64 { return base(now) * mult(now) },
				Sample: drv.Sample,
			}
		}
	}
	cfg := engine.Config{
		Topology:        b.tp,
		Cluster:         cluster.Default(nodes),
		Paradigm:        opt.Paradigm,
		Policy:          pol,
		Sources:         sources,
		SourceExecutors: srcEx,
		Y:               opt.Y,
		Z:               opt.Z,
		OpShards:        opt.OpShards,
		Theta:           opt.Theta,
		Phi:             opt.Phi,
		Tmax:            opt.Tmax,
		Batch:           opt.Batch,
		Seed:            opt.Seed,
		AssertOrder:     opt.AssertOrder,
		WarmUp:          opt.WarmUp,
	}
	return cfg, sp, duration, nil
}

// Trials runs n independent replicate simulations concurrently and returns
// the reports in trial order. build is called once per trial with that
// trial's seed and must construct everything the run touches (builder,
// closures, samplers) from scratch — engines share nothing, which is what
// makes the results deterministic for any worker count (workers ≤ 0 uses
// the process default). Trial 0 runs with baseSeed verbatim; later trials
// use seeds forked deterministically from it.
func Trials(n, workers int, baseSeed uint64, build func(seed uint64) (*Builder, Options)) ([]*Report, error) {
	if n <= 0 {
		return nil, fmt.Errorf("elasticutor: Trials needs n > 0")
	}
	runner := &harness.Runner{Workers: workers, Seed: baseSeed}
	return harness.Map(runner, make([]struct{}, n),
		func(ctx *harness.Ctx, _ struct{}) (*Report, error) {
			seed := baseSeed
			if ctx.Index > 0 {
				seed = ctx.Rand.Uint64()
			}
			b, opt := build(seed)
			opt.Seed = seed
			return b.Run(opt)
		})
}
