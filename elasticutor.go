// Package elasticutor is a Go reproduction of "Elasticutor: Rapid Elasticity
// for Realtime Stateful Stream Processing" (Wang, Fu, Ma, Winslett, Zhang;
// SIGMOD 2019). It provides a deterministic simulated stream-processing
// engine with four execution paradigms — static, resource-centric, naive
// executor-centric, and Elasticutor — plus the elastic executors, dynamic
// scheduler, and baselines the paper evaluates.
//
// The public API is a small facade over the internal packages:
//
//	b := elasticutor.NewBuilder("wordcount")
//	src := b.Spout("sentences", elasticutor.SpoutConfig{
//		Rate:   elasticutor.ConstantRate(50000),
//		Sample: func(now elasticutor.Time) (elasticutor.Key, int, interface{}) { ... },
//	})
//	count := b.Bolt("count", elasticutor.BoltConfig{
//		Cost:    time.Millisecond,
//		Handler: func(t elasticutor.Tuple, s elasticutor.State) []elasticutor.Tuple { ... },
//	})
//	b.Connect(src, count)
//	report, err := b.Run(elasticutor.Options{
//		Paradigm: elasticutor.Elasticutor,
//		Nodes:    32,
//		Duration: 60 * time.Second,
//	})
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// architecture and the simulation substitutions.
package elasticutor

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/policy"
	rtbackend "repro/internal/runtime"
	"repro/internal/scenario"
	"repro/internal/simtime"
	"repro/internal/stream"
)

// Re-exported domain types. Aliases keep the internal packages as the single
// source of truth while giving users one import.
type (
	// Key is a tuple's partitioning key.
	Key = stream.Key
	// Tuple is one unit of data (possibly a weighted batch).
	Tuple = stream.Tuple
	// State is the per-key state accessor handed to bolt handlers.
	State = stream.StateAccessor
	// Time is a point in virtual time.
	Time = simtime.Time
	// Report is the measurement output of a run.
	Report = engine.Report
	// Paradigm selects the execution paradigm.
	Paradigm = engine.Paradigm
)

// Execution paradigms (paper §2.2, §5).
const (
	Static          = engine.Static
	ResourceCentric = engine.ResourceCentric
	NaiveEC         = engine.NaiveEC
	Elasticutor     = engine.Elasticutor
)

// ElasticityPolicy is the pluggable control-plane strategy interface (see
// internal/policy): placement, routing choice, control loops, scheduling.
type ElasticityPolicy = policy.Policy

// PolicyNames lists the registered elasticity policies ("static", "rc",
// "naive-ec", "elasticutor", plus anything added via RegisterPolicy).
func PolicyNames() []string { return policy.Names() }

// RegisterPolicy makes a custom elasticity policy selectable by name in
// Options.Policy and the CLIs. It panics on duplicate names.
func RegisterPolicy(name string, ctor func() ElasticityPolicy) { policy.Register(name, ctor) }

// ConstantRate returns a fixed offered-load function (tuples per second).
func ConstantRate(perSec float64) func(Time) float64 {
	return func(Time) float64 { return perSec }
}

// ScenarioSpec is the declarative scenario type (phased workload dynamics
// plus timed cluster churn; see internal/scenario for the spec grammar).
type ScenarioSpec = scenario.Spec

// Scenarios lists the built-in scenario names ("flashcrowd", "nodefail", …).
func Scenarios() []string { return scenario.Names() }

// ScenarioByName returns a fresh copy of a built-in scenario spec.
func ScenarioByName(name string) (*ScenarioSpec, error) { return scenario.ByName(name) }

// RunScenario runs a built-in or file-loaded scenario (name or *.json path)
// on the canonical micro-benchmark topology under the named elasticity
// policy. For applying a scenario's dynamics to your own topology, set
// Options.Scenario instead.
func RunScenario(nameOrPath, policyName string, seed uint64) (*Report, error) {
	sp, err := scenario.Resolve(nameOrPath)
	if err != nil {
		return nil, err
	}
	return sp.Run(policyName, seed)
}

// SpoutConfig describes a source operator.
type SpoutConfig struct {
	// Rate is the aggregate offered load in tuples/s.
	Rate func(now Time) float64
	// Sample draws the next tuple's key, wire size in bytes, and payload.
	Sample func(now Time) (Key, int, interface{})
}

// BoltConfig describes a processing operator.
type BoltConfig struct {
	// Cost is the CPU time to process one tuple (required).
	Cost time.Duration
	// CostFn optionally replaces Cost with a per-tuple model.
	CostFn func(Tuple) time.Duration
	// Handler is the user logic: read/update per-key state, return emissions.
	Handler func(Tuple, State) []Tuple
	// OutBytes is the default wire size of emitted tuples.
	OutBytes int
	// Selectivity synthesizes outputs-per-input when Handler is nil.
	Selectivity float64
	// StatePerShardKB sizes each shard's resident state (default 32).
	StatePerShardKB int
}

// NodeID identifies an operator in a builder.
type NodeID int

// Builder assembles a topology.
type Builder struct {
	tp      *stream.Topology
	sources map[stream.OperatorID]*engine.SourceDriver
	err     error
}

// NewBuilder returns an empty topology builder.
func NewBuilder(name string) *Builder {
	return &Builder{
		tp:      stream.NewTopology(name),
		sources: make(map[stream.OperatorID]*engine.SourceDriver),
	}
}

// Spout adds a source operator.
func (b *Builder) Spout(name string, cfg SpoutConfig) NodeID {
	op := b.tp.Add(&stream.Operator{Name: name, Source: true})
	if cfg.Rate == nil || cfg.Sample == nil {
		b.err = fmt.Errorf("elasticutor: spout %q needs Rate and Sample", name)
		return NodeID(op.ID)
	}
	b.sources[op.ID] = &engine.SourceDriver{Rate: cfg.Rate, Sample: cfg.Sample}
	return NodeID(op.ID)
}

// Bolt adds a processing operator.
func (b *Builder) Bolt(name string, cfg BoltConfig) NodeID {
	var cost stream.CostModel
	switch {
	case cfg.CostFn != nil:
		cost = stream.CostModel(cfg.CostFn)
	case cfg.Cost > 0:
		cost = stream.FixedCost(cfg.Cost)
	default:
		b.err = fmt.Errorf("elasticutor: bolt %q needs Cost or CostFn", name)
	}
	stateKB := cfg.StatePerShardKB
	if stateKB == 0 {
		stateKB = 32
	}
	op := b.tp.Add(&stream.Operator{
		Name:          name,
		Cost:          cost,
		Handler:       stream.Handler(cfg.Handler),
		OutBytes:      cfg.OutBytes,
		Selectivity:   cfg.Selectivity,
		StatePerShard: stateKB << 10,
	})
	return NodeID(op.ID)
}

// Connect declares a stream from one operator to another.
func (b *Builder) Connect(from, to NodeID) {
	b.tp.Connect(stream.OperatorID(from), stream.OperatorID(to))
}

// Backends. The simulator is the deterministic default; the runtime backend
// executes the same topology and policy on real goroutines, channels, and
// the wall clock (see internal/runtime).
const (
	BackendSim     = "sim"
	BackendRuntime = "runtime"
)

// Backends lists the selectable execution backends.
func Backends() []string { return []string{BackendSim, BackendRuntime} }

// Options configures a run. Zero values take the paper's defaults.
type Options struct {
	Paradigm Paradigm
	// Policy selects the elasticity control plane by registry name
	// ("static", "rc", "naive-ec", "elasticutor", or anything registered
	// via RegisterPolicy). When set it overrides Paradigm.
	Policy          string
	Nodes           int // cluster nodes, 8 cores / 1 Gbps each (default 32)
	SourceExecutors int // parallelism of each spout (default one per node)

	Y        int // executors per bolt (default 32)
	Z        int // shards per elastic executor (default 256)
	OpShards int // operator-level shards for the RC baseline (default 8192)

	Duration time.Duration // virtual time to simulate (required)
	WarmUp   time.Duration // excluded from reported metrics

	Tmax  time.Duration // scheduler latency target (default 50 ms)
	Theta float64       // imbalance threshold θ (default 1.2)
	Phi   float64       // data-intensity threshold φ̃ in bytes/s (default 512 KiB/s)

	Batch       int // tuples represented per simulated event (default 1)
	Seed        uint64
	AssertOrder bool // panic on any per-key order violation (testing)

	// Backend selects the execution backend: BackendSim (default, the
	// deterministic discrete-event simulator) or BackendRuntime (goroutine
	// executors on the wall clock; not deterministic, AssertOrder and
	// BeforeRun do not apply).
	Backend string
	// Speedup compresses the runtime backend's clock by this factor (20 =
	// a 20 s run finishes in 1 s of wall time). Ignored by the simulator.
	Speedup float64

	// Scenario applies a named built-in (see Scenarios) or *.json scenario
	// to this run: its rate phases multiply every spout's offered load and
	// its cluster events (node join/drain/fail) are scheduled on the clock.
	// Key-space phases (skew drift, hotspot, key churn) need the scenario's
	// own sampler and are skipped for user topologies — run those through
	// RunScenario. When Nodes is 0 the scenario's cluster size applies, and
	// when Duration is 0 the scenario's duration applies; an explicitly
	// shorter Duration that would silently skip scheduled cluster events is
	// rejected.
	Scenario string

	// BeforeRun, when set, is called with the constructed engine before the
	// simulation starts — the hook for scheduling workload dynamics such as
	// key shuffles (engine.Every) or forced protocol invocations.
	BeforeRun func(*engine.Engine)
}

// Run validates the topology, builds the selected backend, and runs it for
// Options.Duration of virtual time (the scenario's duration when a scenario
// is set and Duration is 0).
func (b *Builder) Run(opt Options) (*Report, error) {
	switch opt.Backend {
	case "", BackendSim:
		e, d, err := b.engine(opt)
		if err != nil {
			return nil, err
		}
		return e.Run(d), nil
	case BackendRuntime:
		return b.runRuntime(opt)
	default:
		return nil, fmt.Errorf("elasticutor: unknown backend %q (have %v)", opt.Backend, Backends())
	}
}

// runRuntime executes the topology on the real-time backend. The scenario's
// rate phases are already folded into the sources by config(); its cluster
// events are scheduled on the wall clock. Key-space phases need the
// scenario's own sampler and are skipped for user topologies, exactly as on
// the simulator path.
func (b *Builder) runRuntime(opt Options) (*Report, error) {
	if opt.BeforeRun != nil {
		return nil, fmt.Errorf("elasticutor: BeforeRun requires the sim backend (it schedules on the virtual clock)")
	}
	cfg, sp, duration, err := b.config(opt)
	if err != nil {
		return nil, err
	}
	rt, err := rtbackend.New(cfg, rtbackend.Options{Speedup: opt.Speedup})
	if err != nil {
		return nil, err
	}
	if sp != nil {
		rt.AttachEvents(sp)
	}
	return rt.Run(duration)
}

// Engine builds the simulator engine without running it (for callers that
// need to schedule events against the virtual clock first).
func (b *Builder) Engine(opt Options) (*engine.Engine, error) {
	e, _, err := b.engine(opt)
	return e, err
}

// engine assembles and builds the simulator backend.
func (b *Builder) engine(opt Options) (*engine.Engine, time.Duration, error) {
	cfg, sp, duration, err := b.config(opt)
	if err != nil {
		return nil, 0, err
	}
	e, err := engine.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	if sp != nil {
		// Cluster events (and nothing else: rate phases are already wrapped
		// into the sources, key phases need the scenario's own sampler).
		scenario.Attach(e, sp, nil)
	}
	if opt.BeforeRun != nil {
		opt.BeforeRun(e)
	}
	return e, duration, nil
}

// config resolves Options into the backend-independent engine configuration
// plus the resolved scenario (nil without one) and the run duration.
func (b *Builder) config(opt Options) (engine.Config, *scenario.Spec, time.Duration, error) {
	if b.err != nil {
		return engine.Config{}, nil, 0, b.err
	}
	var sp *scenario.Spec
	if opt.Scenario != "" {
		var err error
		if sp, err = scenario.Resolve(opt.Scenario); err != nil {
			return engine.Config{}, nil, 0, err
		}
	}
	duration := opt.Duration
	if duration == 0 && sp != nil {
		duration = sp.Duration()
	}
	if duration <= 0 {
		return engine.Config{}, nil, 0, fmt.Errorf("elasticutor: Options.Duration is required")
	}
	if sp != nil {
		for i, ev := range sp.Events {
			if at := simtime.FromSeconds(ev.AtSec); at > duration {
				return engine.Config{}, nil, 0, fmt.Errorf("elasticutor: scenario %q event %d (%s at %.1fs) is beyond the %v run duration",
					sp.Name, i, ev.Kind, ev.AtSec, duration)
			}
		}
	}
	nodes := opt.Nodes
	if nodes == 0 && sp != nil && sp.Nodes > 0 {
		nodes = sp.Nodes
	}
	if nodes == 0 {
		nodes = 32
	}
	if sp != nil && nodes != sp.Nodes {
		// The event timeline was validated against the scenario's own
		// cluster size; re-check it against the size this run actually uses.
		clone := *sp
		clone.Nodes = nodes
		if err := clone.Validate(); err != nil {
			return engine.Config{}, nil, 0, err
		}
	}
	srcEx := opt.SourceExecutors
	if srcEx == 0 {
		srcEx = nodes
	}
	var pol policy.Policy
	if opt.Policy != "" {
		p, err := policy.ByName(opt.Policy)
		if err != nil {
			return engine.Config{}, nil, 0, err
		}
		pol = p
	}
	sources := b.sources
	if sp != nil {
		// Wrap every spout's offered load with the scenario's phased
		// multiplier, on a copy so the builder stays reusable.
		mult := sp.RateMultiplier()
		sources = make(map[stream.OperatorID]*engine.SourceDriver, len(b.sources))
		for id, drv := range b.sources {
			base := drv.Rate
			sources[id] = &engine.SourceDriver{
				Rate:   func(now simtime.Time) float64 { return base(now) * mult(now) },
				Sample: drv.Sample,
			}
		}
	}
	cfg := engine.Config{
		Topology:        b.tp,
		Cluster:         cluster.Default(nodes),
		Paradigm:        opt.Paradigm,
		Policy:          pol,
		Sources:         sources,
		SourceExecutors: srcEx,
		Y:               opt.Y,
		Z:               opt.Z,
		OpShards:        opt.OpShards,
		Theta:           opt.Theta,
		Phi:             opt.Phi,
		Tmax:            opt.Tmax,
		Batch:           opt.Batch,
		Seed:            opt.Seed,
		AssertOrder:     opt.AssertOrder,
		WarmUp:          opt.WarmUp,
	}
	return cfg, sp, duration, nil
}

// Trials runs n independent replicate simulations concurrently and returns
// the reports in trial order. build is called once per trial with that
// trial's seed and must construct everything the run touches (builder,
// closures, samplers) from scratch — engines share nothing, which is what
// makes the results deterministic for any worker count (workers ≤ 0 uses
// the process default). Trial 0 runs with baseSeed verbatim; later trials
// use seeds forked deterministically from it.
func Trials(n, workers int, baseSeed uint64, build func(seed uint64) (*Builder, Options)) ([]*Report, error) {
	if n <= 0 {
		return nil, fmt.Errorf("elasticutor: Trials needs n > 0")
	}
	runner := &harness.Runner{Workers: workers, Seed: baseSeed}
	return harness.Map(runner, make([]struct{}, n),
		func(ctx *harness.Ctx, _ struct{}) (*Report, error) {
			seed := baseSeed
			if ctx.Index > 0 {
				seed = ctx.Rand.Uint64()
			}
			b, opt := build(seed)
			opt.Seed = seed
			return b.Run(opt)
		})
}
