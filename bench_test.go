// Benchmarks for the Elasticutor reproduction.
//
// One benchmark per paper artifact (BenchmarkFig6 … BenchmarkTable3): each
// iteration regenerates that table/figure at quick scale, so -bench '.'
// doubles as an end-to-end smoke of the experiment harness:
//
//	go test -bench=Fig8 -benchmem
//	go test -bench=. -benchmem          # everything (several minutes)
//
// Component microbenches (BenchmarkComponent*) cover the hot paths of the
// substrate: event dispatch, sampling, matching, balancing, scheduling.
package elasticutor_test

import (
	"io"
	"testing"

	"repro/internal/balancer"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/qmodel"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workload"
	"repro/internal/workload/sse"
)

// runExperiment drives one registered experiment per iteration and writes
// its tables to io.Discard (formatting is part of the deliverable).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := exp.Run(experiments.Quick)
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
		for j := range tables {
			tables[j].Print(io.Discard)
		}
	}
}

// Paper artifacts (§5). Each regenerates the corresponding table/figure.

func BenchmarkFig6(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9a(b *testing.B)  { runExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)  { runExperiment(b, "fig9b") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig15(b *testing.B)  { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { runExperiment(b, "fig16") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkAblation regenerates the design-choice ablations (state sharing,
// locality optimization, θ, scheduler cadence) — our additions beyond the
// paper's own artifacts.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkScenarios regenerates the scenario sweep (4 policies × load-burst
// and cluster-churn scenarios) — the subsystem beyond the paper's own
// artifacts.
func BenchmarkScenarios(b *testing.B) { runExperiment(b, "scenarios") }

// BenchmarkRuntime exercises the real-time backend experiment (goroutine
// executors on a compressed wall clock). Its ns/op is dominated by the
// scenario horizon ÷ speedup, so treat it as a smoke benchmark, not a
// component measurement.
func BenchmarkRuntime(b *testing.B) { runExperiment(b, "runtime") }

// BenchmarkAutoscale regenerates the autoscaling study (closed-loop cluster
// controllers × load-shape scenarios vs static provisioning).
func BenchmarkAutoscale(b *testing.B) { runExperiment(b, "autoscale") }

// BenchmarkLatencyAnatomy regenerates the per-stage tail-latency
// decomposition (4 paradigms × load-burst and node-failure scenarios).
func BenchmarkLatencyAnatomy(b *testing.B) { runExperiment(b, "latencyanatomy") }

// Component microbenches.

func BenchmarkComponentClockEvents(b *testing.B) {
	b.ReportAllocs()
	clock := simtime.NewClock()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			clock.After(simtime.Microsecond, tick)
		}
	}
	clock.After(0, tick)
	b.ResetTimer()
	clock.Run()
}

func BenchmarkComponentZipfSample(b *testing.B) {
	z := workload.NewZipf(10000, 0.5, simtime.NewRand(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample()
	}
}

func BenchmarkComponentOrderBookSubmit(b *testing.B) {
	cfg := sse.DefaultGeneratorConfig()
	cfg.Stocks = 1
	gen := sse.NewGenerator(cfg, simtime.NewRand(2))
	book := sse.NewBook(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		book.Submit(gen.Next(simtime.Time(i)))
	}
}

func BenchmarkComponentRebalance(b *testing.B) {
	rng := simtime.NewRand(3)
	const shards, tasks = 256, 8
	loads := make([]float64, shards)
	assign := make([]int, shards)
	for i := range loads {
		loads[i] = rng.Float64() * 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = balancer.Rebalance(loads, assign, tasks, 1.2, 0)
	}
}

func BenchmarkComponentAllocate(b *testing.B) {
	rng := simtime.NewRand(4)
	loads := make([]qmodel.ExecutorLoad, 32)
	var l0 float64
	for j := range loads {
		loads[j] = qmodel.ExecutorLoad{Lambda: rng.Float64() * 5000, Mu: 1000}
		l0 += loads[j].Lambda
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = qmodel.Allocate(loads, l0, 50*simtime.Millisecond, 224)
	}
}

func BenchmarkComponentAssign(b *testing.B) {
	// Table 3's scheduling-time metric at paper scale: 32 nodes, 32+11
	// executors. This is the wall-clock cost of one scheduling decision.
	const nodes, m = 32, 43
	in := scheduler.Input{
		Capacity:      make([]int, nodes),
		Local:         make([]int, m),
		StateBytes:    make([]float64, m),
		DataIntensity: make([]float64, m),
		Existing:      make([][]int, nodes),
		Alloc:         make([]int, m),
	}
	rng := simtime.NewRand(5)
	for i := 0; i < nodes; i++ {
		in.Capacity[i] = 8
		in.Existing[i] = make([]int, m)
	}
	for j := 0; j < m; j++ {
		in.Local[j] = j % nodes
		in.StateBytes[j] = 8 << 20
		in.DataIntensity[j] = rng.Float64() * 2 * scheduler.DefaultPhi
		in.Alloc[j] = 1 + rng.Intn(5)
		in.Existing[in.Local[j]][j] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheduler.Assign(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComponentHistogramObserve(b *testing.B) {
	h := metrics.NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(simtime.Duration(i%1000)*simtime.Microsecond, 1)
	}
}

func BenchmarkComponentStageRecorderObserve(b *testing.B) {
	// The runtime's per-tuple anatomy cost: one sampled observation into a
	// striped lane, as exec.go pays it for 1-in-N traced tuples. Part of the
	// blocking CI gate — this is the only per-tuple work the latency-anatomy
	// layer adds to the hot path.
	r := metrics.NewStageRecorder(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe(i, metrics.StageObservation{
			Total:       simtime.Duration(i%1000) * simtime.Microsecond,
			Service:     simtime.Duration(i%100) * simtime.Microsecond,
			Repartition: simtime.Duration(i%7) * simtime.Microsecond,
			Weight:      1,
		})
	}
}

func BenchmarkComponentStageRecorderFold(b *testing.B) {
	// The window-tick fold: drain 8 lanes into cumulative structures, as
	// sampleSeries pays it once per second per operator.
	r := metrics.NewStageRecorder(8)
	cum := metrics.NewStageSet()
	cumTotal := metrics.NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			r.Observe(j, metrics.StageObservation{
				Total: simtime.Duration(j) * simtime.Microsecond, Weight: 1})
		}
		r.FoldWindow(cum, cumTotal)
	}
}
