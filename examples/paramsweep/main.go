// Paramsweep explores the two Elasticutor tuning knobs of §5.3 — executors
// per operator (y) and shards per executor (z) — on a small cluster, printing
// a miniature Figure 13 heat table.
//
//	go run ./examples/paramsweep
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

func main() {
	ys := []int{1, 2, 4, 8}
	zs := []int{1, 16, 256}

	spec := workload.DefaultSpec()
	spec.Keys = 2500
	spec.Skew = 0.75
	spec.ShufflesPerMin = 6

	fmt.Println("Elasticutor throughput (K tuples/s) on 4 nodes, skewed + shuffling workload")
	fmt.Printf("%-6s", "y\\z")
	for _, z := range zs {
		fmt.Printf("%8d", z)
	}
	fmt.Println()
	for _, y := range ys {
		fmt.Printf("%-6d", y)
		for _, z := range zs {
			m, err := core.NewMicro(core.MicroOptions{
				Paradigm: engine.Elasticutor,
				Nodes:    4,
				Y:        y,
				Z:        z,
				Spec:     spec,
				Seed:     5,
				WarmUp:   6 * time.Second,
			})
			if err != nil {
				log.Fatal(err)
			}
			r := m.Engine.Run(18 * time.Second)
			fmt.Printf("%8.1f", r.ThroughputMean/1000)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape: throughput rises with z (finer intra-executor")
	fmt.Println("balancing) and is robust across y except the extremes (§5.3).")
}
