// Paramsweep explores the two Elasticutor tuning knobs of §5.3 — executors
// per operator (y) and shards per executor (z) — on a small cluster,
// printing a miniature Figure 13 heat table. The skewed, shifting workload
// is the built-in "hotspot" scenario; each cell overrides only y and z.
//
//	go run ./examples/paramsweep
package main

import (
	"fmt"
	"log"

	elasticutor "repro"
)

func main() {
	ys := []int{1, 2, 4, 8}
	zs := []int{1, 16, 256}

	fmt.Println("Elasticutor throughput (K tuples/s) on 4 nodes, skewed + shifting workload")
	fmt.Printf("%-6s", "y\\z")
	for _, z := range zs {
		fmt.Printf("%8d", z)
	}
	fmt.Println()
	for _, y := range ys {
		fmt.Printf("%-6d", y)
		for _, z := range zs {
			sp, err := elasticutor.ScenarioByName("hotspot")
			if err != nil {
				log.Fatal(err)
			}
			sp.Y, sp.Z = y, z
			r, err := sp.Run("elasticutor", 5)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.1f", r.ThroughputMean/1000)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape: throughput rises with z (finer intra-executor")
	fmt.Println("balancing) and is robust across y except the extremes (§5.3).")
}
