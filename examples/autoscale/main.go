// Autoscale: the cluster itself becomes elastic. A flash crowd hits the
// 4-node quick cluster, and each closed-loop controller decides when to rent
// extra nodes and when to give them back; a statically peak-provisioned
// cluster (6 nodes for the whole run, same absolute load) is the yardstick.
// The interesting column pair is cost (node-seconds) against SLO-violation
// time: a good controller buys the burst capacity only while the burst
// lasts.
//
//	go run ./examples/autoscale
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	elasticutor "repro"
)

const maxNodes = 6

func main() {
	sp, err := elasticutor.ScenarioByName("flashcrowd")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q: %s\n\n", sp.Name, sp.Description)
	fmt.Printf("%-12s %10s %12s %10s %8s %6s\n",
		"controller", "node-sec", "slo-viol(s)", "thr(K/s)", "up/down", "peak")

	for _, c := range []string{"none", "reactive", "backlog", "predictive"} {
		row(c, "flashcrowd")
	}

	// Peak provisioning: a MaxNodes-sized cluster serving the same absolute
	// offered load, no controller. The clone travels as a JSON spec — the
	// same file format `elasticutor-sim -scenario my.json` loads.
	peak := sp.PeakClone(maxNodes)
	peak.Name = "flashcrowd-peak"
	data, err := peak.JSON()
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "elasticutor-peak.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	row("peak-static", path)

	fmt.Println("\nexpected shape: the reactive controller rents ~20% fewer")
	fmt.Println("node-seconds than peak provisioning at no worse SLO-violation")
	fmt.Println("time; 'none' is cheapest but eats the whole burst as violation.")
}

// row runs one scenario (built-in name or spec path) with the named
// controller attached through the facade and prints its cost/SLO account.
func row(controller, nameOrPath string) {
	ctl := controller
	if controller == "peak-static" {
		ctl = "none"
	}
	h, err := elasticutor.StartScenario(context.Background(), nameOrPath, elasticutor.Options{
		Policy:     "elasticutor",
		Seed:       42,
		Autoscaler: ctl,
		Autoscale:  &elasticutor.AutoscaleConfig{MaxNodes: maxNodes},
	})
	if err != nil {
		log.Fatal(err)
	}
	r, err := h.Wait()
	if err != nil {
		log.Fatal(err)
	}
	st := r.Autoscale
	fmt.Printf("%-12s %10.1f %12.1f %10.1f %5d/%-2d %6d\n",
		controller, st.NodeSeconds, st.SLOViolation.Seconds(), r.ThroughputMean/1000,
		st.ScaleUps, st.ScaleDowns, st.PeakNodes)
}
