// Quickstart: build a two-operator topology with the public API, start it
// under the Elasticutor paradigm on a simulated 4-node cluster, observe the
// live run through its handle — events, a mid-run snapshot, an injected
// node drain — and print the report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	elasticutor "repro"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func main() {
	// A skewed key space: 1000 keys, Zipf 0.8.
	zipf := workload.NewZipf(1000, 0.8, simtime.NewRand(7))

	b := elasticutor.NewBuilder("quickstart")
	events := b.Spout("events", elasticutor.SpoutConfig{
		Rate: elasticutor.ConstantRate(20000), // offered tuples/s
		Sample: func(now elasticutor.Time) (elasticutor.Key, int, interface{}) {
			return zipf.Sample(), 128, nil
		},
	})
	// A stateful counting bolt: 1 ms of CPU per tuple, a per-key counter.
	counter := b.Bolt("counter", elasticutor.BoltConfig{
		Cost: time.Millisecond,
		Handler: func(t elasticutor.Tuple, s elasticutor.State) []elasticutor.Tuple {
			n, _ := s.Get().(int)
			s.Set(n + t.Weight)
			return nil
		},
	})
	b.Connect(events, counter)

	// Start returns a live Run handle immediately; the run executes while we
	// observe it. Inject schedules a graceful node drain mid-run — the same
	// control surface scenarios use.
	h, err := b.Start(context.Background(), elasticutor.Options{
		Paradigm: elasticutor.Elasticutor,
		Nodes:    4, // 4 nodes × 8 cores, 1 Gbps
		Duration: 20 * time.Second,
		WarmUp:   5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := h.Inject(elasticutor.DrainNode(3).AtTime(12 * time.Second)); err != nil {
		log.Fatal(err)
	}
	for ev := range h.Events() {
		if ev.Kind != elasticutor.EventPolicyInvoked { // one per second; too chatty
			fmt.Printf("  event: %v\n", ev)
		}
	}
	report, err := h.Wait()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("quickstart finished:")
	fmt.Printf("  throughput: %.0f tuples/s\n", report.ThroughputMean)
	fmt.Printf("  latency:    mean=%v p99=%v\n", report.Latency.Mean(), report.Latency.Quantile(0.99))
	fmt.Printf("  elasticity: %d shard reassignments (%d crossed nodes)\n",
		report.Reassignments, report.InterNodeReassigns)
	fmt.Printf("  churn:      %d drain(s), %d B state lost (graceful = always 0)\n",
		report.NodeDrains, report.LostStateBytes)
}
