// Stockexchange runs the paper's §5.4 application (Fig 14): a synthetic
// limit-order stream cleared by a real order-book matching engine, feeding
// six statistics and five event-processing operators, all keyed by stock ID.
//
//	go run ./examples/stockexchange            # Elasticutor
//	go run ./examples/stockexchange -paradigm rc
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

func main() {
	var (
		paradigm = flag.String("paradigm", "elasticutor", "static | rc | naive-ec | elasticutor")
		nodes    = flag.Int("nodes", 8, "cluster nodes")
		duration = flag.Duration("duration", 30*time.Second, "virtual run time")
	)
	flag.Parse()

	var p engine.Paradigm
	switch *paradigm {
	case "static":
		p = engine.Static
	case "rc":
		p = engine.ResourceCentric
	case "naive-ec":
		p = engine.NaiveEC
	case "elasticutor", "ec":
		p = engine.Elasticutor
	default:
		log.Fatalf("unknown paradigm %q", *paradigm)
	}

	app, err := core.NewSSE(core.SSEOptions{
		Paradigm: p,
		Nodes:    *nodes,
		Seed:     2024,
		WarmUp:   5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stock exchange on %d nodes under %v, offered %.0f orders/s…\n",
		*nodes, p, app.Rate)

	start := time.Now()
	r := app.Engine.Run(*duration)

	fmt.Printf("\norders processed: %d (%.0f orders/s)\n", r.Processed, r.ThroughputMean)
	fmt.Printf("trades executed:  %d\n", *app.Trades)
	fmt.Printf("latency:          mean=%v p99=%v (order → analytics)\n",
		r.Latency.Mean().Round(time.Microsecond), r.Latency.Quantile(0.99).Round(time.Microsecond))
	fmt.Printf("elasticity:       %d shard reassignments, %d repartitions\n",
		r.Reassignments, r.Repartitions)
	fmt.Printf("traffic:          migration %.2f MB/s, remote transfer %.2f MB/s\n",
		r.MigrationRate/(1<<20), r.RemoteRate/(1<<20))
	fmt.Printf("(simulated %d events in %v)\n", r.Events, time.Since(start).Round(time.Millisecond))
}
