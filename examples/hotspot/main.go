// Hotspot: a skewed word-count-style workload whose hot key set moves every
// few seconds (the paper's ω shuffles). Runs the same topology under all
// four paradigms and prints a comparison — a miniature Figure 6.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"
	"time"

	elasticutor "repro"
	"repro/internal/engine"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func run(p elasticutor.Paradigm) *elasticutor.Report {
	zipf := workload.NewZipf(2500, 0.75, simtime.NewRand(11))

	b := elasticutor.NewBuilder("hotspot")
	src := b.Spout("words", elasticutor.SpoutConfig{
		Rate: elasticutor.ConstantRate(25000),
		Sample: func(now elasticutor.Time) (elasticutor.Key, int, interface{}) {
			return zipf.Sample(), 128, nil
		},
	})
	count := b.Bolt("count", elasticutor.BoltConfig{
		Cost: time.Millisecond,
		Handler: func(t elasticutor.Tuple, s elasticutor.State) []elasticutor.Tuple {
			n, _ := s.Get().(int)
			s.Set(n + t.Weight)
			return nil
		},
	})
	b.Connect(src, count)

	report, err := b.Run(elasticutor.Options{
		Paradigm: p,
		Nodes:    4,
		Y:        4,
		Z:        256,
		OpShards: 1024,
		Duration: 40 * time.Second,
		WarmUp:   12 * time.Second,
		BeforeRun: func(e *engine.Engine) {
			// Shuffle the hot set every 5 seconds (ω = 12/min).
			e.Every(5*time.Second, zipf.Shuffle)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return report
}

func main() {
	fmt.Println("hotspot word count, hot keys move every 5s, 25k words/s offered")
	fmt.Printf("%-16s %12s %12s %12s %8s %8s\n",
		"paradigm", "thr(K/s)", "mean-lat", "p99-lat", "moves", "repart")
	for _, p := range []elasticutor.Paradigm{
		elasticutor.Static, elasticutor.ResourceCentric,
		elasticutor.NaiveEC, elasticutor.Elasticutor,
	} {
		r := run(p)
		fmt.Printf("%-16s %12.1f %12v %12v %8d %8d\n",
			r.Paradigm, r.ThroughputMean/1000,
			r.Latency.Mean().Round(time.Millisecond),
			r.Latency.Quantile(0.99).Round(time.Millisecond),
			r.Reassignments, r.Repartitions)
	}
	fmt.Println("\nexpected shape: elasticutor sustains throughput with the lowest")
	fmt.Println("latency; rc pays multi-second global syncs; static cannot adapt.")
}
