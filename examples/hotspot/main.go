// Hotspot: a skewed workload whose hot key set migrates every few seconds,
// run under all four paradigms — a miniature Figure 6. The workload dynamics
// come entirely from the built-in "hotspot" scenario; this program just
// sweeps the policy axis.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"
	"time"

	elasticutor "repro"
)

func main() {
	sp, err := elasticutor.ScenarioByName("hotspot")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q: %s\n", sp.Name, sp.Description)
	fmt.Printf("%-16s %12s %12s %12s %8s %8s\n",
		"paradigm", "thr(K/s)", "mean-lat", "p99-lat", "moves", "repart")
	for _, p := range []string{"static", "rc", "naive-ec", "elasticutor"} {
		r, err := elasticutor.RunScenario("hotspot", p, 11)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12.1f %12v %12v %8d %8d\n",
			r.Policy, r.ThroughputMean/1000,
			r.Latency.Mean().Round(time.Millisecond),
			r.Latency.Quantile(0.99).Round(time.Millisecond),
			r.Reassignments, r.Repartitions)
	}
	fmt.Println("\nexpected shape: elasticutor keeps the lowest latency as the hot set")
	fmt.Println("moves; rc pays multi-second global syncs; static cannot adapt.")
}
