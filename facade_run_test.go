package elasticutor_test

import (
	"context"
	"testing"
	"time"

	elasticutor "repro"
)

// Facade coverage for the first-class Run handle: start/observe/control on
// both backends, cancellation semantics, and the Strict/PhaseSkipped
// contract for scenario key phases on user topologies.

func handleBuilder(t *testing.T) *elasticutor.Builder {
	t.Helper()
	b := elasticutor.NewBuilder("facade-run")
	src := b.Spout("s", elasticutor.SpoutConfig{
		Rate: elasticutor.ConstantRate(3000),
		Sample: func(now elasticutor.Time) (elasticutor.Key, int, interface{}) {
			return elasticutor.Key(uint64(now) % 400), 128, nil
		},
	})
	bolt := b.Bolt("work", elasticutor.BoltConfig{Cost: time.Millisecond})
	b.Connect(src, bolt)
	return b
}

func countKinds(tl []elasticutor.Event) map[elasticutor.EventKind]int {
	out := make(map[elasticutor.EventKind]int)
	for _, ev := range tl {
		out[ev.Kind]++
	}
	return out
}

// TestStartInjectDrainSim drains a node mid-run through the handle's command
// surface on the simulator: the drain lands at a safe point, no state is
// lost, and the timeline records the event.
func TestStartInjectDrainSim(t *testing.T) {
	h, err := handleBuilder(t).Start(context.Background(), elasticutor.Options{
		Paradigm: elasticutor.Elasticutor,
		Nodes:    4,
		Duration: 30 * time.Second,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Inject(elasticutor.DrainNode(3).AtTime(10 * time.Second)); err != nil {
		t.Fatalf("inject: %v", err)
	}
	r, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeDrains != 1 {
		t.Fatalf("NodeDrains = %d, want 1 (churn errors: %v)", r.NodeDrains, r.ChurnErrors)
	}
	if r.LostStateBytes != 0 {
		t.Fatalf("graceful drain lost %d bytes of state", r.LostStateBytes)
	}
	if r.Dropped != 0 {
		t.Fatalf("graceful drain dropped %d tuples", r.Dropped)
	}
	if countKinds(r.Timeline)[elasticutor.EventNodeDrain] != 1 {
		t.Fatalf("timeline missing the drain event: %v", r.Timeline)
	}
	if len(r.PerOperator) == 0 || r.PerOperator[0].Processed == 0 {
		t.Fatalf("per-operator stats empty: %+v", r.PerOperator)
	}
}

// TestStartInjectDrainRuntime is the same contract on the real-time backend.
func TestStartInjectDrainRuntime(t *testing.T) {
	h, err := handleBuilder(t).Start(context.Background(), elasticutor.Options{
		Paradigm: elasticutor.Elasticutor,
		Backend:  elasticutor.BackendRuntime,
		Speedup:  20,
		Nodes:    4,
		Batch:    4,
		Duration: 6 * time.Second,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Inject(elasticutor.DrainNode(3).AtTime(3 * time.Second)); err != nil {
		t.Fatalf("inject: %v", err)
	}
	r, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeDrains != 1 {
		t.Fatalf("NodeDrains = %d, want 1 (churn errors: %v)", r.NodeDrains, r.ChurnErrors)
	}
	if r.LostStateBytes != 0 {
		t.Fatalf("graceful drain lost %d bytes of state", r.LostStateBytes)
	}
	if countKinds(r.Timeline)[elasticutor.EventNodeDrain] != 1 {
		t.Fatalf("timeline missing the drain event: %v", r.Timeline)
	}
}

// TestStartSnapshotAndEvents exercises the observation surface while a run
// is in flight and after it completes.
func TestStartSnapshotAndEvents(t *testing.T) {
	h, err := handleBuilder(t).Start(context.Background(), elasticutor.Options{
		Paradigm: elasticutor.Elasticutor,
		Scenario: "nodedrain",
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawDrain bool
	for ev := range h.Events() {
		if ev.Kind == elasticutor.EventNodeDrain {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Fatal("event stream carried no node-drain event")
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot() // final snapshot after completion
	if len(snap.Operators) == 0 || snap.Operators[0].Executors < 1 {
		t.Fatalf("final snapshot empty: %+v", snap)
	}
}

// TestStartCancellation cancels a simulator run mid-flight: Wait returns the
// partial report together with the context error, and the report covers only
// the elapsed virtual time.
func TestStartCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	want := 10 * time.Minute // far longer than the test will allow
	h, err := handleBuilder(t).Start(ctx, elasticutor.Options{
		Paradigm: elasticutor.Elasticutor,
		Nodes:    4,
		Duration: want,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A command the cancelled run never reaches must surface in ChurnErrors,
	// not vanish behind Inject's nil error.
	if err := h.Inject(elasticutor.FailNode(1).AtTime(9 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	cancel()
	r, err := h.Wait()
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(r.ChurnErrors) != 1 {
		t.Fatalf("unapplied command not surfaced: ChurnErrors = %v", r.ChurnErrors)
	}
	if r == nil {
		t.Fatal("cancellation must still return the partial report")
	}
	if r.Duration <= 0 || r.Duration >= want {
		t.Fatalf("partial report duration = %v, want in (0, %v)", r.Duration, want)
	}
	if r.Processed == 0 {
		t.Fatal("partial report processed nothing")
	}
}

// TestScenarioKeyPhasesAnnouncedSkipped pins satellite behavior: a scenario
// key-space phase on a user topology lands as a typed PhaseSkipped timeline
// event instead of vanishing.
func TestScenarioKeyPhasesAnnouncedSkipped(t *testing.T) {
	r, err := handleBuilder(t).Run(elasticutor.Options{
		Paradigm: elasticutor.Elasticutor,
		Scenario: "hotspot", // key-space phase: cannot run on a user topology
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if countKinds(r.Timeline)[elasticutor.EventPhaseSkipped] == 0 {
		t.Fatalf("no PhaseSkipped event in timeline: %v", r.Timeline)
	}
}

// TestStrictRejectsSkippedKeyPhases: the same configuration under
// Options.Strict fails fast instead.
func TestStrictRejectsSkippedKeyPhases(t *testing.T) {
	_, err := handleBuilder(t).Run(elasticutor.Options{
		Paradigm: elasticutor.Elasticutor,
		Scenario: "hotspot",
		Strict:   true,
		Seed:     3,
	})
	if err == nil {
		t.Fatal("Strict accepted a scenario whose key phases cannot run")
	}
}

// TestStartScenarioBackendSelection runs the same scenario through the
// facade on both backends — the backend-selection path RunScenario lacks.
func TestStartScenarioBackendSelection(t *testing.T) {
	for _, backend := range elasticutor.Backends() {
		h, err := elasticutor.StartScenario(context.Background(), "nodedrain", elasticutor.Options{
			Policy:  "elasticutor",
			Backend: backend,
			Speedup: 40,
			Seed:    42,
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		r, err := h.Wait()
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if r.NodeDrains != 1 {
			t.Fatalf("%s: NodeDrains = %d, want 1", backend, r.NodeDrains)
		}
		if r.Processed == 0 {
			t.Fatalf("%s: processed nothing", backend)
		}
	}
}

// TestOptionsEventBuffer: the facade's EventBuffer knob reaches the handle —
// a tiny buffer under an unread stream drops events into LostEvents while the
// report timeline stays complete.
func TestOptionsEventBuffer(t *testing.T) {
	h, err := elasticutor.StartScenario(context.Background(), "nodedrain", elasticutor.Options{
		Policy:      "elasticutor",
		Seed:        42,
		EventBuffer: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	for range h.Events() {
		received++
	}
	if received != 1 {
		t.Fatalf("EventBuffer=1 delivered %d events, want 1", received)
	}
	if received+h.LostEvents() != len(r.Timeline) {
		t.Fatalf("loss accounting: %d received + %d lost != %d timeline events",
			received, h.LostEvents(), len(r.Timeline))
	}
}

// TestRunSetRateCommand: a scheduled SetRate command raises the offered load
// mid-run, visible in generated+blocked volume.
func TestRunSetRateCommand(t *testing.T) {
	runWith := func(factor float64) *elasticutor.Report {
		h, err := handleBuilder(t).Start(context.Background(), elasticutor.Options{
			Paradigm: elasticutor.Elasticutor,
			Nodes:    2,
			Duration: 10 * time.Second,
			Seed:     3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if factor != 1 {
			if err := h.Inject(elasticutor.SetRate(factor).AtTime(2 * time.Second)); err != nil {
				t.Fatal(err)
			}
		}
		r, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := runWith(1)
	boosted := runWith(4)
	if boosted.Generated+boosted.Blocked <= base.Generated+base.Blocked {
		t.Fatalf("SetRate(4) did not raise offered load: %d vs %d",
			boosted.Generated+boosted.Blocked, base.Generated+base.Blocked)
	}
	if countKinds(boosted.Timeline)[elasticutor.EventCommandApplied] == 0 {
		t.Fatalf("timeline missing the command-applied event: %v", boosted.Timeline)
	}
}
