// Command elasticutor-sim runs configured simulations of the micro-benchmark
// topology and prints their reports — a quick way to poke at one scenario
// without the full experiment harness.
//
// Example:
//
//	elasticutor-sim -paradigm elasticutor -nodes 8 -omega 4 -duration 30s
//	elasticutor-sim -trials 8 -parallel 4    # 8 replicate seeds, 4 workers
//	elasticutor-sim -scenario nodefail       # built-in churn scenario
//	elasticutor-sim -scenario list           # list built-ins
//	elasticutor-sim -scenario custom.json    # declarative spec from disk
//	elasticutor-sim -backend runtime -scenario flashcrowd -speedup 20
//	elasticutor-sim -backend dist -scenario flashcrowd    # real agent processes
//	elasticutor-sim -backend dist -dist-listen 127.0.0.1:7001 -dist-adopt   # pre-started agents
//	elasticutor-sim -backend dist -scenario flashcrowd -obs-listen 127.0.0.1:7070   # live view feed
//	elasticutor-sim -scenario nodedrain -live       # stream trace records to stderr
//	elasticutor-sim -scenario skewdrift -trace run.trace   # record a replayable trace
//	elasticutor-sim -replay run.trace               # re-drive it, diff the structure
//	elasticutor-sim -scenario flashcrowd -autoscaler reactive   # resize the cluster live
//	elasticutor-sim -autoscaler list                # list cluster controllers
//	elasticutor-sim -calibration calibration.json   # measured cost table
//
// -paradigm accepts any registered elasticity policy name (see
// internal/policy). -scenario accepts a built-in name or a *.json spec file
// (see internal/scenario); the scenario then supplies the cluster size,
// workload, phased dynamics, and cluster churn, and the workload flags are
// ignored. -autoscaler attaches a closed-loop cluster controller (see
// internal/autoscale) that resizes the cluster against the live run; the
// report gains a node-seconds / scaling-actions / SLO-violation section, and
// simulator runs remain deterministic (the control loop samples at fixed
// virtual times). -backend runtime executes on real goroutines against the
// wall clock (internal/runtime) instead of the simulator; those runs are not
// deterministic and additionally print the tuple-conservation ledger.
// -backend dist goes one step further: the same control-plane engine runs
// here, but every executor's work executes in per-node agent OS processes
// reached over loopback TCP (internal/dist) — by default self-spawned, or
// adopted from externally started elasticutor-node processes with
// -dist-listen/-dist-adopt. -calibration loads a cost table measured by
// tools/calibrate into the simulator. Simulator reports go to stdout and are
// byte-identical across repeated runs and worker counts; progress and timing
// go to stderr.
//
// Observability (internal/obs): -trace records the run as a versioned NDJSON
// trace (file path, or '-' for stderr) — every typed event, the applied
// commands with provenance, periodic snapshots at the -live-interval cadence,
// and the per-phase repartition spans. -live is shorthand for -trace - with
// per-record flushing: the structured stream replaces the old ad-hoc live
// prints (for a human-readable view use cmd/elasticutor-top). -replay loads a
// recorded trace, rebuilds the identically-configured run from its embedded
// spec, re-drives the recorded user commands, and diffs the structural event
// sequence — exit 1 on divergence (deterministic on the simulator; a
// structural conformance check on the runtime backend). -metrics serves the
// live run's /metrics endpoint (with -pprof for profiling handlers). All of
// these observe at safe points only: stdout reports stay byte-identical.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/autoscale"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/policy"
	runpkg "repro/internal/run"
	rtbackend "repro/internal/runtime"
	"repro/internal/scenario"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// replayTrace is the -replay mode: rebuild the recorded run, re-drive the
// user commands, and diff the structural event sequence. Exit 1 on
// divergence. The -backend / -speedup flags override the recorded values only
// when set explicitly.
func replayTrace(path string, explicit map[string]bool, backend string, speedup float64) {
	tr, err := obs.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt := obs.ReplayOptions{}
	if explicit["backend"] {
		opt.Backend = backend
	}
	if explicit["speedup"] {
		opt.Speedup = speedup
	}
	fmt.Fprintf(os.Stderr, "replaying %s: scenario=%q policy=%s seed=%d backend=%s (%d events, %d commands recorded)…\n",
		path, tr.Header.Scenario, tr.Header.Policy, tr.Header.Seed, tr.Header.Backend, len(tr.Events), len(tr.Commands))
	start := time.Now()
	rep, rr, err := tr.Replay(context.Background(), opt)
	wall := time.Since(start).Round(time.Millisecond)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay DIVERGED after %v: %v\n", wall, err)
		os.Exit(1)
	}
	if err := obs.CheckSpans(obs.TimelineSpans(rep.Timeline), rep); err != nil {
		fmt.Fprintf(os.Stderr, "replay span invariants FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("replay OK: %d structural events match, %d user command(s) re-injected, %d repartition span(s) conserved [%s backend, %v wall]\n",
		len(obs.StructuralSeq(rep.Timeline)), rr.Reinjected, rep.Repartitions, rr.Backend, wall)
	if rr.Runtime != nil {
		led := rr.Runtime.Ledger()
		fmt.Printf("ledger: %v\n", led)
		if !led.Conserved() {
			os.Exit(1)
		}
	}
}

func main() {
	dist.MainIfAgent() // self-spawned -backend dist agents re-enter here
	var (
		paradigm = flag.String("paradigm", "elasticutor", "elasticity policy name (static | rc | naive-ec | elasticutor | any registered)")
		scn      = flag.String("scenario", "", "scenario name, spec file (*.json), or 'list' (overrides the workload flags)")
		nodes    = flag.Int("nodes", 8, "cluster nodes (8 cores each; ignored with -scenario)")
		y        = flag.Int("y", 0, "executors per operator (0 = paper default; ignored with -scenario)")
		z        = flag.Int("z", 0, "shards per executor (0 = paper default; ignored with -scenario)")
		omega    = flag.Float64("omega", 2, "key shuffles per minute (ignored with -scenario)")
		rate     = flag.Float64("rate", 0, "offered tuples/s (0 = saturating; ignored with -scenario)")
		cost     = flag.Duration("cost", time.Millisecond, "CPU cost per tuple (ignored with -scenario)")
		bytes    = flag.Int("bytes", 128, "tuple size in bytes (ignored with -scenario)")
		stateKB  = flag.Int("state", 32, "shard state size in KB (ignored with -scenario)")
		duration = flag.Duration("duration", 30*time.Second, "virtual time to simulate (ignored with -scenario)")
		warmup   = flag.Duration("warmup", 5*time.Second, "warm-up excluded from metrics (ignored with -scenario)")
		seed     = flag.Uint64("seed", 42, "deterministic seed")
		trials   = flag.Int("trials", 1, "replicate trials with forked per-trial seeds")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent trial workers")
		backend  = flag.String("backend", "sim", "execution backend: sim (deterministic) | runtime (goroutines, wall clock) | dist (agent processes over TCP)")
		speedup  = flag.Float64("speedup", 20, "runtime/dist backend clock compression factor")
		distLsn  = flag.String("dist-listen", "", "dist backend: control-plane listen address ('' = loopback ephemeral)")
		distAdpt = flag.Bool("dist-adopt", false, "dist backend: adopt externally started elasticutor-node agents instead of self-spawning")
		obsLsn   = flag.String("obs-listen", "", "publish the run's trace stream on this TCP address for elasticutor-top -connect (single trial only)")
		calPath  = flag.String("calibration", "", "calibration table (tools/calibrate) loaded into the simulator")
		live     = flag.Bool("live", false, "stream the run as flushed trace records to stderr while it executes (shorthand for -trace -; single trial only)")
		tracePth = flag.String("trace", "", "record the run as an NDJSON trace: a file path, or '-' for stderr (single trial only)")
		liveIvl  = flag.Duration("live-interval", 2*time.Second, "virtual-time snapshot cadence for -live / -trace recordings")
		replay   = flag.String("replay", "", "replay a recorded trace and diff the structural event sequence (exit 1 on divergence)")
		metrics  = flag.String("metrics", "", "serve the live run's /metrics endpoint on this address (single trial only)")
		pprofOn  = flag.Bool("pprof", false, "with -metrics: also serve /debug/pprof/ on the same mux")
		scaler   = flag.String("autoscaler", "", "cluster controller name (none | reactive | backlog | predictive | any registered), or 'list' ('' = off)")
		maxNodes = flag.Int("max-nodes", 0, "autoscaler node ceiling (0 = initial nodes + 4)")
	)
	flag.Parse()
	harness.SetDefaultWorkers(*parallel)
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *replay != "" {
		replayTrace(*replay, explicit, *backend, *speedup)
		return
	}

	var cal *calib.Table
	if *calPath != "" {
		c, err := calib.Load(*calPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cal = c
	}
	if *backend != "sim" && *backend != "runtime" && *backend != "dist" {
		fmt.Fprintf(os.Stderr, "unknown backend %q (sim | runtime | dist)\n", *backend)
		os.Exit(2)
	}
	// -trace/-live share the recorder; -live is -trace - with per-record
	// flushing so the stderr stream is live. Recording is single-trial (one
	// writer, one run).
	traceDest := *tracePth
	if *live && traceDest == "" {
		traceDest = "-"
	}
	if traceDest != "" && *trials > 1 {
		fmt.Fprintln(os.Stderr, "note: -trace/-live record a single trial; ignoring them for -trials > 1")
		traceDest = ""
	}
	if *metrics != "" && *trials > 1 {
		fmt.Fprintln(os.Stderr, "note: -metrics serves a single trial; ignoring it for -trials > 1")
		*metrics = ""
	}
	if *obsLsn != "" && *trials > 1 {
		fmt.Fprintln(os.Stderr, "note: -obs-listen publishes a single trial; ignoring it for -trials > 1")
		*obsLsn = ""
	}

	if *scn == "list" {
		for _, name := range scenario.Names() {
			s, err := scenario.ByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-12s %s\n", name, s.Description)
		}
		return
	}
	if *scaler == "list" {
		for _, name := range autoscale.Names() {
			fmt.Println(name)
		}
		return
	}
	if _, err := policy.ByName(*paradigm); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *scaler != "" {
		if _, err := autoscale.ByName(*scaler); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	var spec *scenario.Spec
	if *scn != "" {
		s, err := scenario.Resolve(*scn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		spec = s
		*duration = spec.Duration()
	}
	if *trials < 1 {
		*trials = 1
	}

	// On the runtime and dist backends everything runs through the scenario
	// layer (whose sampler is locked for concurrent backends); plain workload
	// flags synthesize an equivalent spec.
	runtimeSpec := spec
	if *backend != "sim" && runtimeSpec == nil {
		runtimeSpec = &scenario.Spec{
			Name:        "cli",
			Nodes:       *nodes,
			Y:           *y,
			Z:           *z,
			DurationSec: duration.Seconds(),
			WarmupSec:   warmup.Seconds(),
			Workload: scenario.WorkloadSpec{
				Keys:           workload.DefaultSpec().Keys,
				Skew:           workload.DefaultSpec().Skew,
				TupleBytes:     *bytes,
				CPUCostUS:      float64(*cost) / float64(time.Microsecond),
				StateKB:        *stateKB,
				ShufflesPerMin: *omega,
				RatePerSec:     *rate,
				RateFraction:   1.3, // saturating, the micro default
			},
		}
	}
	if *backend != "sim" && cal != nil {
		fmt.Fprintf(os.Stderr, "note: -calibration is a simulator input; the %s backend measures instead\n", *backend)
	}

	type trialResult struct {
		r   *engine.Report
		led *rtbackend.Ledger
	}
	// attachScaler wires the -autoscaler controller onto a built, unstarted
	// run handle (per trial: controllers carry per-run state).
	attachScaler := func(h *runpkg.Run, warmup simtime.Duration) error {
		if *scaler == "" {
			return nil
		}
		a, err := autoscale.ByName(*scaler)
		if err != nil {
			return err
		}
		autoscale.Attach(h, a, autoscale.Config{Warmup: warmup, MaxNodes: *maxNodes})
		return nil
	}
	// attachObs wires the -trace/-live recorder and the -metrics endpoint
	// onto a built, unstarted run handle. The returned finisher (nil when no
	// observation is configured) must run after Wait: it writes the trace's
	// end record and shuts the metrics listener down.
	attachObs := func(h *runpkg.Run, sp *scenario.Spec, trialSeed uint64, rtE *rtbackend.Engine) (func(*engine.Report, error) error, error) {
		var finishers []func(*engine.Report, error) error
		var rec *obs.Recorder
		if traceDest != "" || *obsLsn != "" {
			var writers []io.Writer
			var file *os.File
			if traceDest == "-" {
				writers = append(writers, os.Stderr)
			} else if traceDest != "" {
				f, err := os.Create(traceDest)
				if err != nil {
					return nil, err
				}
				file = f
				writers = append(writers, f)
			}
			var srv *obs.LiveServer
			if *obsLsn != "" {
				s, err := obs.ListenLive(*obsLsn)
				if err != nil {
					return nil, err
				}
				srv = s
				writers = append(writers, srv)
				fmt.Fprintf(os.Stderr, "live trace stream on %s (elasticutor-top -connect %s)\n",
					srv.Addr(), srv.Addr())
			}
			w := writers[0]
			if len(writers) > 1 {
				w = io.MultiWriter(writers...)
			}
			var hdr obs.Header
			if sp != nil {
				speed := *speedup
				if *backend == "sim" {
					speed = 0 // clock compression is a runtime-backend property
				}
				hdr = obs.HeaderForScenario(sp, *backend, *paradigm, trialSeed, speed, *scaler, *maxNodes)
			} else {
				// Workload-flag (micro) runs embed no scenario spec, and
				// -replay needs one to rebuild from.
				fmt.Fprintln(os.Stderr, "note: workload-flag runs embed no scenario spec; the trace is not replayable")
				hdr = obs.Header{Backend: *backend, Policy: *paradigm, Scenario: "micro",
					Seed: trialSeed, DurationMS: simtime.ToMillis(*duration)}
			}
			// Live consumers (stderr tail, -obs-listen subscribers) need each
			// record as it happens; a plain file flushes at buffer boundaries.
			rec = obs.Attach(h, w, hdr, obs.RecordOptions{
				SnapshotEvery: *liveIvl, Flush: file == nil || *obsLsn != ""})
			finishers = append(finishers, func(rep *engine.Report, runErr error) error {
				// Finish (end record) before dropping live subscribers: a
				// connected viewer sees the run complete, not a cut stream.
				if err := rec.Finish(rep, h.LostEvents(), runErr); err != nil {
					return err
				}
				if srv != nil {
					srv.Close()
				}
				if file != nil {
					return file.Close()
				}
				return nil
			})
		}
		// Any observation at all gets the invariant watchdog: anomalies ride
		// the trace (when recording) and the exporter (when scraping). On the
		// distributed backend the engine's RPC-span feed is wired into both;
		// ObserveRPC is a no-op false on the in-process backends.
		var wd *obs.Watchdog
		if rec != nil || *metrics != "" {
			wdOpt := obs.WatchdogOptions{}
			if rtE != nil {
				wdOpt.Ledger = rtE.Ledger
			}
			if rec != nil {
				wdOpt.OnAnomaly = rec.RecordAnomaly
			}
			wd = obs.AttachWatchdog(h, wdOpt)
			if rtE != nil {
				rtE.ObserveRPC(func(sp rtbackend.RPCSpan) {
					if rec != nil {
						rec.RecordRPC(sp)
					}
					wd.ObserveRPC(sp)
				})
			}
		}
		if *metrics != "" {
			x := obs.NewExporter(h)
			if rtE != nil {
				x.SetLedger(rtE.Ledger)
				x.SetLatency(rtE.LatencyAnatomy)
			}
			if wd != nil {
				x.SetWatchdog(wd)
			}
			bound, closeSrv, err := x.Serve(*metrics, *pprofOn)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", bound)
			finishers = append(finishers, func(*engine.Report, error) error { closeSrv(); return nil })
		}
		if len(finishers) == 0 {
			return nil, nil
		}
		return func(rep *engine.Report, runErr error) error {
			for _, fn := range finishers {
				if err := fn(rep, runErr); err != nil {
					return err
				}
			}
			return nil
		}, nil
	}
	// Each trial builds its own engine (nothing shared) with a deterministic
	// seed: trial 0 uses -seed verbatim, replicates draw theirs from the
	// harness's per-trial forked RNG. (Runtime-backend trials are only as
	// deterministic as the wall clock.)
	runTrial := func(ctx *harness.Ctx) (trialResult, error) {
		trialSeed := *seed
		if ctx.Index > 0 {
			trialSeed = ctx.Rand.Uint64()
		}
		if *backend == "dist" {
			dOpt := dist.ScenarioOptions{ScenarioOptions: rtbackend.ScenarioOptions{
				Options: rtbackend.Options{Speedup: *speedup}}}
			dOpt.Cluster.ListenAddr = *distLsn
			dOpt.Cluster.NoSpawn = *distAdpt
			if *distAdpt {
				// Humans start the agents by hand; give them longer than the
				// self-spawn default.
				dOpt.Cluster.SpawnTimeout = 60 * time.Second
				fmt.Fprintf(os.Stderr, "adopting agents on %s; start them with: elasticutor-node -control <addr>\n", *distLsn)
			}
			dE, h, err := dist.BuildScenario(runtimeSpec, *paradigm, trialSeed, dOpt)
			if err != nil {
				return trialResult{}, err
			}
			fmt.Fprintf(os.Stderr, "control-plane on %s, %d agent(s) bound\n",
				dE.C.Addr(), len(dE.C.Nodes()))
			if err := attachScaler(h, runtimeSpec.Warmup()); err != nil {
				return trialResult{}, err
			}
			fin, err := attachObs(h, runtimeSpec, trialSeed, dE.Engine)
			if err != nil {
				return trialResult{}, err
			}
			h.Start(context.Background())
			r, err := h.Wait()
			if fin != nil {
				if ferr := fin(r, err); ferr != nil {
					return trialResult{}, ferr
				}
			}
			if err != nil {
				return trialResult{}, err
			}
			led := dE.Ledger()
			return trialResult{r: r, led: &led}, nil
		}
		if *backend == "runtime" {
			rtE, h, err := rtbackend.BuildScenario(runtimeSpec, *paradigm, trialSeed,
				rtbackend.ScenarioOptions{Options: rtbackend.Options{Speedup: *speedup}})
			if err != nil {
				return trialResult{}, err
			}
			if err := attachScaler(h, runtimeSpec.Warmup()); err != nil {
				return trialResult{}, err
			}
			fin, err := attachObs(h, runtimeSpec, trialSeed, rtE)
			if err != nil {
				return trialResult{}, err
			}
			h.Start(context.Background())
			r, err := h.Wait()
			if fin != nil {
				if ferr := fin(r, err); ferr != nil {
					return trialResult{}, ferr
				}
			}
			if err != nil {
				return trialResult{}, err
			}
			led := rtE.Ledger()
			return trialResult{r: r, led: &led}, nil
		}
		if spec != nil {
			inst, err := spec.Build(*paradigm, trialSeed, cal)
			if err != nil {
				return trialResult{}, err
			}
			if err := attachScaler(inst.Handle, spec.Warmup()); err != nil {
				return trialResult{}, err
			}
			fin, err := attachObs(inst.Handle, spec, trialSeed, nil)
			if err != nil {
				return trialResult{}, err
			}
			inst.Handle.Start(context.Background())
			r, err := inst.Handle.Wait()
			if fin != nil {
				if ferr := fin(r, err); ferr != nil {
					return trialResult{}, ferr
				}
			}
			return trialResult{r: r}, err
		}
		wl := workload.DefaultSpec()
		wl.ShufflesPerMin = *omega
		wl.CPUCost = *cost
		wl.TupleBytes = *bytes
		wl.ShardStateKB = *stateKB
		pol, err := policy.ByName(*paradigm) // fresh instance per engine
		if err != nil {
			return trialResult{}, err
		}
		m, err := core.NewMicro(core.MicroOptions{
			Policy:      pol,
			Nodes:       *nodes,
			Y:           *y,
			Z:           *z,
			Spec:        wl,
			Rate:        *rate,
			Seed:        trialSeed,
			WarmUp:      *warmup,
			Calibration: cal,
		})
		if err != nil {
			return trialResult{}, err
		}
		h := runpkg.NewSim(m.Engine, *duration)
		if err := attachScaler(h, *warmup); err != nil {
			return trialResult{}, err
		}
		fin, err := attachObs(h, nil, trialSeed, nil)
		if err != nil {
			return trialResult{}, err
		}
		h.Start(context.Background())
		r, err := h.Wait()
		if fin != nil {
			if ferr := fin(r, err); ferr != nil {
				return trialResult{}, ferr
			}
		}
		return trialResult{r: r}, err
	}

	what := fmt.Sprintf("%s on %d nodes, ω=%v", *paradigm, *nodes, *omega)
	if spec != nil {
		what = fmt.Sprintf("scenario %q under %s on %d nodes", spec.Name, *paradigm, spec.Nodes)
	}
	if *backend == "runtime" {
		what += fmt.Sprintf(" [runtime backend, %gx clock]", *speedup)
	}
	if *backend == "dist" {
		what += fmt.Sprintf(" [dist backend, agent processes, %gx clock]", *speedup)
	}
	fmt.Fprintf(os.Stderr, "simulating %s, %d trial(s) × %v virtual time, %d worker(s)…\n",
		what, *trials, *duration, harness.DefaultWorkers())

	start := time.Now()
	runner := &harness.Runner{Seed: *seed}
	results, err := harness.Map(runner, make([]struct{}, *trials),
		func(ctx *harness.Ctx, _ struct{}) (trialResult, error) { return runTrial(ctx) })
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reports := make([]*engine.Report, len(results))
	for i, res := range results {
		reports[i] = res.r
	}
	wall := time.Since(start).Round(time.Millisecond)

	if spec != nil {
		fmt.Printf("scenario: %s — %s\n", spec.Name, spec.Description)
	}
	for i, r := range reports {
		if len(reports) > 1 {
			fmt.Printf("\n-- trial %d --\n", i)
		}
		fmt.Printf("\n%v\n", r)
		fmt.Printf("\nthroughput: %.0f tuples/s (mean over measured span)\n", r.ThroughputMean)
		fmt.Printf("latency:    mean=%v p50=%v p99=%v max=%v\n",
			r.Latency.Mean(), r.Latency.Quantile(0.5), r.Latency.Quantile(0.99), r.Latency.Max())
		fmt.Printf("elasticity: %d shard reassignments (%d inter-node), %d RC repartitions\n",
			r.Reassignments, r.InterNodeReassigns, r.Repartitions)
		fmt.Printf("traffic:    migration %.2f MB/s, remote transfer %.2f MB/s\n",
			r.MigrationRate/(1<<20), r.RemoteRate/(1<<20))
		if r.NodeJoins+r.NodeDrains+r.NodeFails > 0 {
			fmt.Printf("churn:      %d join(s), %d drain(s), %d failure(s); %d executor(s) retired, %.2f MB state lost, %d tuples dropped\n",
				r.NodeJoins, r.NodeDrains, r.NodeFails, r.RetiredExecutors,
				float64(r.LostStateBytes)/(1<<20), r.Dropped)
		}
		for _, msg := range r.ChurnErrors {
			fmt.Printf("churn SKIPPED: %s\n", msg)
		}
		if st := r.Autoscale; st != nil {
			fmt.Printf("autoscale:  %s: %d scale-up(s), %d scale-down(s) over %d ticks; %.1f node-seconds, peak %d node(s), SLO violation %v\n",
				st.Controller, st.ScaleUps, st.ScaleDowns, st.Ticks, st.NodeSeconds, st.PeakNodes, st.SLOViolation)
			for _, a := range st.Actions {
				fmt.Printf("  scale:    %v\n", a)
			}
		}
		if led := results[i].led; led != nil {
			fmt.Printf("ledger:     %v\n", *led)
		}
	}
	var events uint64
	for _, r := range reports {
		events += r.Events
	}
	if len(reports) > 1 {
		min, max, sum := reports[0].ThroughputMean, reports[0].ThroughputMean, 0.0
		for _, r := range reports {
			if r.ThroughputMean < min {
				min = r.ThroughputMean
			}
			if r.ThroughputMean > max {
				max = r.ThroughputMean
			}
			sum += r.ThroughputMean
		}
		fmt.Printf("\n== %d trials: throughput mean=%.0f min=%.0f max=%.0f tuples/s ==\n",
			len(reports), sum/float64(len(reports)), min, max)
	}
	fmt.Fprintf(os.Stderr, "simulated %d events in %v wall time\n", events, wall)
}
