// Command elasticutor-sim runs a single configured simulation of the
// micro-benchmark topology and prints its report — a quick way to poke at
// one scenario without the full experiment harness.
//
// Example:
//
//	elasticutor-sim -paradigm elasticutor -nodes 8 -omega 4 -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

func paradigmOf(s string) (engine.Paradigm, error) {
	switch s {
	case "static":
		return engine.Static, nil
	case "rc":
		return engine.ResourceCentric, nil
	case "naive-ec":
		return engine.NaiveEC, nil
	case "elasticutor", "ec":
		return engine.Elasticutor, nil
	}
	return 0, fmt.Errorf("unknown paradigm %q (static|rc|naive-ec|elasticutor)", s)
}

func main() {
	var (
		paradigm = flag.String("paradigm", "elasticutor", "static | rc | naive-ec | elasticutor")
		nodes    = flag.Int("nodes", 8, "cluster nodes (8 cores each)")
		y        = flag.Int("y", 0, "executors per operator (0 = paper default)")
		z        = flag.Int("z", 0, "shards per executor (0 = paper default)")
		omega    = flag.Float64("omega", 2, "key shuffles per minute")
		rate     = flag.Float64("rate", 0, "offered tuples/s (0 = saturating)")
		cost     = flag.Duration("cost", time.Millisecond, "CPU cost per tuple")
		bytes    = flag.Int("bytes", 128, "tuple size in bytes")
		stateKB  = flag.Int("state", 32, "shard state size in KB")
		duration = flag.Duration("duration", 30*time.Second, "virtual time to simulate")
		warmup   = flag.Duration("warmup", 5*time.Second, "warm-up excluded from metrics")
		seed     = flag.Uint64("seed", 42, "deterministic seed")
	)
	flag.Parse()

	p, err := paradigmOf(*paradigm)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec := workload.DefaultSpec()
	spec.ShufflesPerMin = *omega
	spec.CPUCost = *cost
	spec.TupleBytes = *bytes
	spec.ShardStateKB = *stateKB

	m, err := core.NewMicro(core.MicroOptions{
		Paradigm: p,
		Nodes:    *nodes,
		Y:        *y,
		Z:        *z,
		Spec:     spec,
		Rate:     *rate,
		Seed:     *seed,
		WarmUp:   *warmup,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("simulating %s on %d nodes, ω=%v, offered %.0f tuples/s, %v virtual time…\n",
		p, *nodes, *omega, m.Rate, *duration)

	start := time.Now()
	r := m.Engine.Run(*duration)
	fmt.Printf("\n%v\n", r)
	fmt.Printf("\nthroughput: %.0f tuples/s (mean over measured span)\n", r.ThroughputMean)
	fmt.Printf("latency:    mean=%v p50=%v p99=%v max=%v\n",
		r.Latency.Mean(), r.Latency.Quantile(0.5), r.Latency.Quantile(0.99), r.Latency.Max())
	fmt.Printf("elasticity: %d shard reassignments (%d inter-node), %d RC repartitions\n",
		r.Reassignments, r.InterNodeReassigns, r.Repartitions)
	fmt.Printf("traffic:    migration %.2f MB/s, remote transfer %.2f MB/s\n",
		r.MigrationRate/(1<<20), r.RemoteRate/(1<<20))
	fmt.Printf("simulated %d events in %v wall time\n", r.Events, time.Since(start).Round(time.Millisecond))
}
