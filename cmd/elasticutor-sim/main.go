// Command elasticutor-sim runs configured simulations of the micro-benchmark
// topology and prints their reports — a quick way to poke at one scenario
// without the full experiment harness.
//
// Example:
//
//	elasticutor-sim -paradigm elasticutor -nodes 8 -omega 4 -duration 30s
//	elasticutor-sim -trials 8 -parallel 4   # 8 replicate seeds, 4 workers
//
// -paradigm accepts any registered elasticity policy name (see
// internal/policy), not just the paper's four.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/policy"
	"repro/internal/workload"
)

func main() {
	var (
		paradigm = flag.String("paradigm", "elasticutor", "elasticity policy name (static | rc | naive-ec | elasticutor | any registered)")
		nodes    = flag.Int("nodes", 8, "cluster nodes (8 cores each)")
		y        = flag.Int("y", 0, "executors per operator (0 = paper default)")
		z        = flag.Int("z", 0, "shards per executor (0 = paper default)")
		omega    = flag.Float64("omega", 2, "key shuffles per minute")
		rate     = flag.Float64("rate", 0, "offered tuples/s (0 = saturating)")
		cost     = flag.Duration("cost", time.Millisecond, "CPU cost per tuple")
		bytes    = flag.Int("bytes", 128, "tuple size in bytes")
		stateKB  = flag.Int("state", 32, "shard state size in KB")
		duration = flag.Duration("duration", 30*time.Second, "virtual time to simulate")
		warmup   = flag.Duration("warmup", 5*time.Second, "warm-up excluded from metrics")
		seed     = flag.Uint64("seed", 42, "deterministic seed")
		trials   = flag.Int("trials", 1, "replicate trials with forked per-trial seeds")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent trial workers")
	)
	flag.Parse()
	harness.SetDefaultWorkers(*parallel)

	if _, err := policy.ByName(*paradigm); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *trials < 1 {
		*trials = 1
	}

	// Each trial builds its own engine (nothing shared) with a deterministic
	// seed: trial 0 uses -seed verbatim, replicates draw theirs from the
	// harness's per-trial forked RNG.
	runTrial := func(ctx *harness.Ctx) (*engine.Report, error) {
		trialSeed := *seed
		if ctx.Index > 0 {
			trialSeed = ctx.Rand.Uint64()
		}
		spec := workload.DefaultSpec()
		spec.ShufflesPerMin = *omega
		spec.CPUCost = *cost
		spec.TupleBytes = *bytes
		spec.ShardStateKB = *stateKB
		pol, err := policy.ByName(*paradigm) // fresh instance per engine
		if err != nil {
			return nil, err
		}
		m, err := core.NewMicro(core.MicroOptions{
			Policy: pol,
			Nodes:  *nodes,
			Y:      *y,
			Z:      *z,
			Spec:   spec,
			Rate:   *rate,
			Seed:   trialSeed,
			WarmUp: *warmup,
		})
		if err != nil {
			return nil, err
		}
		return m.Engine.Run(*duration), nil
	}

	fmt.Printf("simulating %s on %d nodes, ω=%v, %d trial(s) × %v virtual time, %d worker(s)…\n",
		*paradigm, *nodes, *omega, *trials, *duration, harness.DefaultWorkers())

	start := time.Now()
	runner := &harness.Runner{Seed: *seed}
	reports, err := harness.Map(runner, make([]struct{}, *trials),
		func(ctx *harness.Ctx, _ struct{}) (*engine.Report, error) { return runTrial(ctx) })
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(start).Round(time.Millisecond)

	for i, r := range reports {
		if len(reports) > 1 {
			fmt.Printf("\n-- trial %d --\n", i)
		}
		fmt.Printf("\n%v\n", r)
		fmt.Printf("\nthroughput: %.0f tuples/s (mean over measured span)\n", r.ThroughputMean)
		fmt.Printf("latency:    mean=%v p50=%v p99=%v max=%v\n",
			r.Latency.Mean(), r.Latency.Quantile(0.5), r.Latency.Quantile(0.99), r.Latency.Max())
		fmt.Printf("elasticity: %d shard reassignments (%d inter-node), %d RC repartitions\n",
			r.Reassignments, r.InterNodeReassigns, r.Repartitions)
		fmt.Printf("traffic:    migration %.2f MB/s, remote transfer %.2f MB/s\n",
			r.MigrationRate/(1<<20), r.RemoteRate/(1<<20))
	}
	var events uint64
	for _, r := range reports {
		events += r.Events
	}
	if len(reports) > 1 {
		min, max, sum := reports[0].ThroughputMean, reports[0].ThroughputMean, 0.0
		for _, r := range reports {
			if r.ThroughputMean < min {
				min = r.ThroughputMean
			}
			if r.ThroughputMean > max {
				max = r.ThroughputMean
			}
			sum += r.ThroughputMean
		}
		fmt.Printf("\n== %d trials: throughput mean=%.0f min=%.0f max=%.0f tuples/s ==\n",
			len(reports), sum/float64(len(reports)), min, max)
	}
	fmt.Printf("simulated %d events in %v wall time\n", events, wall)
}
