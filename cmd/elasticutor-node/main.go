// elasticutor-node is a standalone node agent for the distributed backend:
// it dials a control-plane, waits in its arrival pool, and serves whatever
// node the control-plane binds it to — holding executor shard payloads,
// burning batch costs, and serializing state for migrations.
//
// Start one per node before launching a control-plane with spawning disabled
// (elasticutor-sim -backend dist -dist-adopt):
//
//	elasticutor-node -control 127.0.0.1:7700 &
//	elasticutor-node -control 127.0.0.1:7700 &
//	elasticutor-sim -backend dist -dist-listen 127.0.0.1:7700 -dist-adopt ...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dist"
)

func main() {
	dist.MainIfAgent() // also usable as a spawned agent
	control := flag.String("control", "", "control-plane address to dial (required)")
	flag.Parse()
	if *control == "" {
		fmt.Fprintln(os.Stderr, "elasticutor-node: -control address is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := dist.RunAgent(*control); err != nil {
		fmt.Fprintf(os.Stderr, "elasticutor-node: %v\n", err)
		os.Exit(1)
	}
}
