// Command elasticutor-bench regenerates the tables and figures of the
// Elasticutor paper's evaluation (SIGMOD 2019, §5).
//
// Usage:
//
//	elasticutor-bench                 # run every experiment at quick scale
//	elasticutor-bench -run fig6       # one experiment
//	elasticutor-bench -run fig6,fig8  # several
//	elasticutor-bench -full           # paper-scale dimensions (slower)
//	elasticutor-bench -list           # show the experiment registry
//	elasticutor-bench -parallel 8     # trial workers (default GOMAXPROCS)
//
// Trials within each experiment fan out across -parallel workers through
// internal/harness; every virtual-time metric is byte-identical for any
// worker count. The one wall-clock metric (Table 3's scheduling time) runs
// its trials sequentially so CPU contention cannot distort it.
//
// Quick scale uses a 4-node simulated cluster and short virtual runs so the
// whole suite finishes in minutes; -full uses the paper's 32 × 8-core
// dimensions. Shapes, not absolute numbers, are the reproduction target —
// see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
)

func main() {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		full     = flag.Bool("full", false, "use the paper's 32-node dimensions")
		list     = flag.Bool("list", false, "list experiments and exit")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent trial workers per experiment (virtual-time results are identical for any value)")
	)
	flag.Parse()
	harness.SetDefaultWorkers(*parallel)

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}

	var selected []experiments.Experiment
	if *runIDs == "" {
		selected = experiments.All
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("Elasticutor reproduction — %d experiment(s) at %s scale\n\n", len(selected), scale)
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(scale)
		for i := range tables {
			tables[i].Print(os.Stdout)
		}
		fmt.Printf("[%s completed in %v wall time]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
