// Command elasticutor-top is a terminal live view of one run: it starts a
// scenario on any backend and renders per-operator offered/processed
// rates, executor counts, queue depths, autoscale actions, and in-flight §3.3
// repartition spans over the run handle's Events()/Snapshot() streams,
// refreshing in place until the run completes.
//
// Example:
//
//	elasticutor-top -scenario flashcrowd -backend runtime -speedup 20
//	elasticutor-top -scenario skewdrift -backend sim -paradigm rc
//	elasticutor-top -scenario flashcrowd -backend dist -speedup 40
//	elasticutor-top -scenario flashcrowd -autoscaler reactive -trace run.trace
//	elasticutor-top -scenario nodedrain -metrics :9090 -pprof
//	elasticutor-top -connect 127.0.0.1:7070
//
// With -connect, top does not start a run at all: it dials the live trace
// stream another process publishes (elasticutor-sim -obs-listen on the
// distributed control-plane) and renders the same view from the decoded
// records — the operator console for a multi-process run.
//
// Observation is non-perturbing by construction: snapshots are served at the
// backends' safe points and the event stream is a lossy tap off the complete
// timeline — so watching a run does not change it, and on the runtime backend
// the tuple-conservation ledger must still balance (the final summary prints
// it; a broken ledger exits 1). -trace additionally records the run as an
// elasticutor-trace/v1 NDJSON file replayable with elasticutor-sim -replay.
// -plain drops the ANSI screen-clearing for dumb terminals and CI logs.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/calib"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/policy"
	runpkg "repro/internal/run"
	rtbackend "repro/internal/runtime"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

// view is the shared state the event consumer writes and the renderer reads.
type view struct {
	mu        sync.Mutex
	inflight  map[string]simtime.Time // operator → repartition start
	spans     []engine.RepartitionSpan
	actions   []string // autoscale (controller-origin) commands, newest last
	recent    []string // recent non-chatty events, newest last
	anomalies []string // watchdog anomalies, newest last
}

const keepLines = 6 // recent-event and action lines retained per frame

// agentStaleAfter is the heartbeat age past which the health pane flags an
// agent as stale (matches the watchdog's default bound).
const agentStaleAfter = 5 * time.Second

func (v *view) event(ev engine.Event) {
	v.mu.Lock()
	defer v.mu.Unlock()
	switch ev.Kind {
	case engine.EventPolicyInvoked:
		return // one per scheduling period; too chatty for a console
	case engine.EventRepartitionStart:
		v.inflight[ev.Operator] = ev.At
	case engine.EventRepartitionFinish:
		delete(v.inflight, ev.Operator)
		if ev.Span != nil {
			v.spans = append(v.spans, *ev.Span)
		}
	}
	v.recent = append(v.recent, fmt.Sprintf("%v", ev))
	if len(v.recent) > keepLines {
		v.recent = v.recent[len(v.recent)-keepLines:]
	}
}

func (v *view) anomaly(s string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.anomalies = append(v.anomalies, s)
	if len(v.anomalies) > keepLines {
		v.anomalies = v.anomalies[len(v.anomalies)-keepLines:]
	}
}

func (v *view) command(cmd engine.Command) {
	if cmd.Origin != "controller" {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.actions = append(v.actions, fmt.Sprintf("%v %s", cmd.At, cmd.String()))
	if len(v.actions) > keepLines {
		v.actions = v.actions[len(v.actions)-keepLines:]
	}
}

// frame renders one refresh of the live view.
func (v *view) frame(w *strings.Builder, s engine.Snapshot, total simtime.Duration, title string, lost int) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "t=%v/%v  nodes=%d  util=%.0f%% (%d/%d cores)  repartitions=%d  reassigns=%d  migration=%.1fMB  blocked=%d  lost-events=%d\n",
		s.Now, total, s.LiveNodes, 100*s.Utilization, s.UsedCores, s.TotalCores,
		s.Repartitions, s.Reassignments, float64(s.MigrationBytes)/(1<<20), s.Blocked, lost)
	if s.LatencyWeight > 0 {
		fmt.Fprintf(w, "latency (last window): p50=%v p95=%v p99=%v max=%v  dominant=%s %.0f%%\n",
			s.LatencyP50, s.LatencyP95, s.LatencyP99, s.LatencyMax,
			s.DominantStage, 100*s.DominantShare)
	}
	fmt.Fprintf(w, "\n%-14s %5s %5s %12s %12s %10s %10s %10s %12s\n",
		"OPERATOR", "EXEC", "CORES", "OFFERED/s", "PROCESSED/s", "QUEUED", "P50", "P99", "STAGE")
	for _, o := range s.Operators {
		stage := "-"
		if o.DominantShare > 0 {
			stage = fmt.Sprintf("%s %.0f%%", o.DominantStage, 100*o.DominantShare)
		}
		fmt.Fprintf(w, "%-14s %5d %5d %12.0f %12.0f %10d %10v %10v %12s\n",
			o.Name, o.Executors, o.Cores, o.OfferedRate, o.ProcessedRate, o.Queued,
			o.LatP50, o.LatP99, stage)
	}

	// Per-node agent health (distributed backend only): the self-reported
	// heartbeat surface, with staleness flagged against the watchdog bound.
	if len(s.Agents) > 0 {
		fmt.Fprintf(w, "\n%-5s %8s %6s %9s %10s %6s %10s %10s %9s\n",
			"NODE", "PID", "GOROS", "HEAP", "RESIDENT", "QUEUE", "BACKLOG", "OFFSET", "AGE")
		for _, a := range s.Agents {
			stale := ""
			if time.Duration(a.Age) > agentStaleAfter {
				stale = "  !! STALE"
			}
			fmt.Fprintf(w, "%-5d %8d %6d %9s %10s %6d %10v %10v %9v%s\n",
				a.Node, a.PID, a.Goroutines, mb(a.HeapBytes), mb(a.ResidentBytes),
				a.QueueDepth, time.Duration(a.BurnBacklog).Round(time.Microsecond),
				time.Duration(a.ClockOffset).Round(time.Microsecond),
				time.Duration(a.Age).Round(time.Millisecond), stale)
		}
	}

	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.anomalies) > 0 {
		fmt.Fprintf(w, "\nwatchdog anomalies:\n")
		for _, a := range v.anomalies {
			fmt.Fprintf(w, "  %s\n", a)
		}
	}
	if len(v.inflight) > 0 {
		ops := make([]string, 0, len(v.inflight))
		for op, at := range v.inflight {
			ops = append(ops, fmt.Sprintf("%s (since %v)", op, at))
		}
		sort.Strings(ops)
		fmt.Fprintf(w, "\nin-flight repartitions: %s\n", strings.Join(ops, ", "))
	}
	if n := len(v.spans); n > 0 {
		s := v.spans[n-1]
		fmt.Fprintf(w, "\nlast repartition: op=%s pause=%v drain=%v migrate=%v reroute=%v moves=%d bytes=%d replayed=%d\n",
			s.Operator, s.Pause, s.Drain, s.Migrate, s.Reroute, s.Moves, s.Bytes, s.ReplayedW)
	}
	if len(v.actions) > 0 {
		fmt.Fprintf(w, "\nautoscale actions:\n")
		for _, a := range v.actions {
			fmt.Fprintf(w, "  %s\n", a)
		}
	}
	if len(v.recent) > 0 {
		fmt.Fprintf(w, "\nrecent events:\n")
		for _, e := range v.recent {
			fmt.Fprintf(w, "  %s\n", e)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

// mb renders a byte count for the health pane.
func mb(b int64) string { return fmt.Sprintf("%.1fMB", float64(b)/(1<<20)) }

// dialRetry dials the live trace address with bounded backoff: a viewer is
// often started moments before (or after) the publisher, so a refused
// connection is usually transient. Gives up after the last attempt.
func dialRetry(addr string) (net.Conn, error) {
	const attempts = 5
	backoff := 500 * time.Millisecond
	var lastErr error
	for i := 0; i < attempts; i++ {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if i < attempts-1 {
			fmt.Fprintf(os.Stderr, "connect %s: %v — retrying in %v (attempt %d/%d)\n",
				addr, err, backoff, i+1, attempts)
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	return nil, fmt.Errorf("connect %s: giving up after %d attempts: %w", addr, attempts, lastErr)
}

// connectMode renders a run another process is executing: dial its live trace
// stream and drive the same view from decoded records. The remote recorder
// controls the snapshot cadence, so frames redraw as snapshots arrive rather
// than on a local ticker.
func connectMode(addr string, plain bool) {
	conn, err := dialRetry(addr)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(os.Stderr, "connected to %s; waiting for trace stream\n", addr)

	v := &view{inflight: make(map[string]simtime.Time)}
	title := fmt.Sprintf("elasticutor-top — connected %s", addr)
	var total simtime.Duration
	render := func(s engine.Snapshot) {
		var b strings.Builder
		if !plain {
			b.WriteString("\x1b[H\x1b[2J")
		}
		v.frame(&b, s, total, title, 0)
		if plain {
			b.WriteString("\n")
		}
		os.Stdout.WriteString(b.String())
	}

	var end *obs.EndRecord
	err = obs.Stream(conn, obs.StreamHandler{
		Header: func(hd obs.Header) {
			title = fmt.Sprintf("elasticutor-top — %s — scenario=%s policy=%s backend=%s seed=%d",
				addr, hd.Scenario, hd.Policy, hd.Backend, hd.Seed)
			if hd.Autoscaler != "" {
				title += " autoscaler=" + hd.Autoscaler
			}
			total = time.Duration(hd.DurationMS) * time.Millisecond
		},
		Event: func(rec obs.EventRecord) { v.event(rec.DecodeEvent()) },
		Command: func(rec obs.CmdRecord) {
			if cmd, ok := rec.DecodeCommand(); ok {
				v.command(cmd)
			}
		},
		Snap: func(rec obs.SnapRecord) { render(rec.DecodeSnapshot()) },
		Anomaly: func(rec obs.AnomalyRecord) {
			v.anomaly(fmt.Sprintf("%.0fms %s: %s", rec.AtMS, rec.Kind, rec.Detail))
		},
		End: func(rec obs.EndRecord) { end = &rec },
	})
	if err != nil {
		fatal(err)
	}
	if end == nil {
		fmt.Fprintln(os.Stderr, "\nstream ended before the run completed (publisher exited or connection dropped) — partial view above")
		os.Exit(1)
	}
	fmt.Printf("\nrun complete: %d events, %d repartitions (%d tuples replayed), %d lost events\n",
		end.Events, end.Repartitions, end.RepartitionReplayed, end.LostEvents)
	fmt.Printf("ledger: generated=%d processed=%d blocked=%d dropped=%d\n",
		end.Generated, end.Processed, end.Blocked, end.Dropped)
	if end.Err != "" {
		fmt.Fprintf(os.Stderr, "remote run error: %s\n", end.Err)
		os.Exit(1)
	}
}

func main() {
	dist.MainIfAgent() // self-spawned -backend dist agents re-enter here
	var (
		scn      = flag.String("scenario", "flashcrowd", "scenario name, spec file (*.json), or 'list'")
		paradigm = flag.String("paradigm", "elasticutor", "elasticity policy name")
		backend  = flag.String("backend", "runtime", "execution backend: runtime (goroutines, wall clock) | dist (agent processes) | sim")
		speedup  = flag.Float64("speedup", 20, "runtime backend clock compression factor")
		seed     = flag.Uint64("seed", 42, "deterministic seed")
		scaler   = flag.String("autoscaler", "", "cluster controller name ('' = off)")
		maxNodes = flag.Int("max-nodes", 0, "autoscaler node ceiling (0 = initial nodes + 4)")
		interval = flag.Duration("interval", time.Second, "wall-clock refresh interval")
		trace    = flag.String("trace", "", "also record the run as an NDJSON trace to this file")
		metrics  = flag.String("metrics", "", "serve /metrics on this address while the run executes")
		pprofOn  = flag.Bool("pprof", false, "with -metrics: also serve /debug/pprof/ on the same mux")
		calPath  = flag.String("calibration-trajectory", "", "CALIB trajectory (CALIB_N.json) folded into /metrics as labeled gauges")
		plain    = flag.Bool("plain", false, "append frames instead of redrawing in place (CI logs, dumb terminals)")
		connect  = flag.String("connect", "", "render a remote run: dial this live trace address instead of starting a run")
	)
	flag.Parse()

	if *connect != "" {
		connectMode(*connect, *plain)
		return
	}
	if *scn == "list" {
		for _, name := range scenario.Names() {
			s, err := scenario.ByName(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-12s %s\n", name, s.Description)
		}
		return
	}
	if _, err := policy.ByName(*paradigm); err != nil {
		fatal(err)
	}
	sp, err := scenario.Resolve(*scn)
	if err != nil {
		fatal(err)
	}

	// Build the run on the requested backend; keep the runtime engine for its
	// conservation ledger.
	var (
		h   *runpkg.Run
		rtE *rtbackend.Engine
	)
	switch *backend {
	case "runtime":
		rtE, h, err = rtbackend.BuildScenario(sp, *paradigm, *seed,
			rtbackend.ScenarioOptions{Options: rtbackend.Options{Speedup: *speedup}})
		if err != nil {
			fatal(err)
		}
	case "dist":
		// Agent processes over loopback TCP; the embedded control-plane
		// engine carries the ledger and the RPC-span hook, so everything
		// downstream (watchdog, recorder, exporter) wires exactly as on
		// the runtime backend — plus the agents health pane fills.
		d, hh, err := dist.BuildScenario(sp, *paradigm, *seed,
			dist.ScenarioOptions{ScenarioOptions: rtbackend.ScenarioOptions{
				Options: rtbackend.Options{Speedup: *speedup}}})
		if err != nil {
			fatal(err)
		}
		rtE, h = d.Engine, hh
	case "sim":
		inst, err := sp.Build(*paradigm, *seed)
		if err != nil {
			fatal(err)
		}
		h = inst.Handle
	default:
		fatal(fmt.Errorf("unknown backend %q (runtime | dist | sim)", *backend))
	}
	if *scaler != "" {
		a, err := autoscale.ByName(*scaler)
		if err != nil {
			fatal(err)
		}
		autoscale.Attach(h, a, autoscale.Config{Warmup: sp.Warmup(), MaxNodes: *maxNodes})
	}

	// Wire observation BEFORE Start: the live view's event/command taps, the
	// optional trace recorder, and the optional metrics endpoint.
	v := &view{inflight: make(map[string]simtime.Time)}
	h.ObserveCommands(v.command)

	var (
		rec       *obs.Recorder
		traceFile *os.File
	)
	if *trace != "" {
		traceFile, err = os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		hdrSpeedup := *speedup
		if rtE == nil {
			hdrSpeedup = 0 // clock compression is a runtime-backend property
		}
		rec = obs.Attach(h, traceFile,
			obs.HeaderForScenario(sp, *backend, *paradigm, *seed, hdrSpeedup, *scaler, *maxNodes),
			obs.RecordOptions{SnapshotEvery: 2 * simtime.Second})
	}
	// The invariant watchdog rides every top session: anomalies show in the
	// view, in the trace (when recording), and on /metrics (when serving).
	wdOpt := obs.WatchdogOptions{OnAnomaly: func(a obs.Anomaly) {
		v.anomaly(fmt.Sprintf("%v %s: %s", a.At, a.Kind, a.Detail))
		if rec != nil {
			rec.RecordAnomaly(a)
		}
	}}
	if rtE != nil {
		wdOpt.Ledger = rtE.Ledger
	}
	wd := obs.AttachWatchdog(h, wdOpt)
	if rtE != nil {
		rtE.ObserveRPC(func(sp rtbackend.RPCSpan) {
			if rec != nil {
				rec.RecordRPC(sp)
			}
			wd.ObserveRPC(sp)
		})
	}
	if *metrics != "" {
		x := obs.NewExporter(h)
		if rtE != nil {
			x.SetLedger(rtE.Ledger)
			x.SetLatency(rtE.LatencyAnatomy)
		}
		x.SetWatchdog(wd)
		if *calPath != "" {
			traj, err := calib.LoadTrajectory(*calPath)
			if err != nil {
				fatal(err)
			}
			x.SetCalibration(traj)
		}
		bound, closeSrv, err := x.Serve(*metrics, *pprofOn)
		if err != nil {
			fatal(err)
		}
		defer closeSrv()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", bound)
	}

	events := h.Events()
	h.Start(context.Background())

	title := fmt.Sprintf("elasticutor-top — scenario=%s policy=%s backend=%s seed=%d",
		sp.Name, *paradigm, *backend, *seed)
	if *scaler != "" {
		title += " autoscaler=" + *scaler
	}
	render := func() {
		var b strings.Builder
		if !*plain {
			b.WriteString("\x1b[H\x1b[2J")
		}
		v.frame(&b, h.Snapshot(), h.Duration(), title, h.LostEvents())
		if *plain {
			b.WriteString("\n")
		}
		os.Stdout.WriteString(b.String())
	}

	tick := time.NewTicker(*interval)
	defer tick.Stop()
	render()
loop:
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				break loop // run complete; the channel closes after the report
			}
			v.event(ev)
		case <-tick.C:
			render()
		}
	}

	rep, runErr := h.Wait()
	if rec != nil {
		if err := rec.Finish(rep, h.LostEvents(), runErr); err != nil {
			fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
	render()

	fmt.Printf("\nrun complete: %d events, %d repartitions (%d tuples replayed), %d reassignments, %d lost events\n",
		rep.Events, rep.Repartitions, rep.RepartitionReplayed, rep.Reassignments, h.LostEvents())
	if st := rep.Autoscale; st != nil {
		fmt.Printf("autoscale: %s: %d scale-up(s), %d scale-down(s) over %d ticks\n",
			st.Controller, st.ScaleUps, st.ScaleDowns, st.Ticks)
	}
	if counts := wd.Counts(); len(counts) > 0 {
		fmt.Printf("watchdog anomalies: %v\n", counts)
	}
	if *trace != "" {
		fmt.Printf("trace: %s\n", *trace)
	}
	if rtE != nil {
		led := rtE.Ledger()
		fmt.Printf("ledger: %v\n", led)
		if !led.Conserved() {
			fmt.Fprintln(os.Stderr, "ledger NOT conserved — observation perturbed the run")
			os.Exit(1)
		}
	}
}
