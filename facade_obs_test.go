package elasticutor_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	elasticutor "repro"
)

// Facade coverage for the observability layer: record a scenario run through
// the public surface, decode it, and replay it to an identical structural
// event sequence.

func TestFacadeRecordReplay(t *testing.T) {
	sp, err := elasticutor.ScenarioByName("nodedrain")
	if err != nil {
		t.Fatal(err)
	}
	// Recorders attach to built, unstarted runs (StartScenario has already
	// started its handle), so build the instance directly.
	inst, err := sp.Build("elasticutor", 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := elasticutor.AttachRecorder(inst.Handle, &buf,
		elasticutor.ScenarioTraceHeader(sp, elasticutor.BackendSim, "elasticutor", 42),
		elasticutor.RecordOptions{SnapshotEvery: 4 * time.Second})
	inst.Handle.Start(context.Background())
	rep, runErr := inst.Handle.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if err := rec.Finish(rep, inst.Handle.LostEvents(), runErr); err != nil {
		t.Fatal(err)
	}

	tr, err := elasticutor.DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 || len(tr.Snaps) == 0 || tr.End == nil {
		t.Fatalf("trace incomplete: %d events, %d snaps, end=%v", len(tr.Events), len(tr.Snaps), tr.End)
	}
	if _, _, err := tr.Replay(context.Background(), elasticutor.ReplayOptions{}); err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
}

// TestFacadeMetricsExporter: the exporter renders a scrape for a finished run
// through the public surface.
func TestFacadeMetricsExporter(t *testing.T) {
	h, err := elasticutor.StartScenario(context.Background(), "nodedrain", elasticutor.Options{
		Policy: "elasticutor",
		Seed:   42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	elasticutor.NewMetricsExporter(h).WriteMetrics(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("elasticutor_live_nodes")) {
		t.Fatalf("scrape missing cluster gauges:\n%s", buf.String())
	}
}
