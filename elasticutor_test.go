package elasticutor_test

import (
	"testing"
	"time"

	elasticutor "repro"
	"repro/internal/engine"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// buildCounter returns a builder with a zipf spout and a stateful counting
// bolt, plus a pointer used to observe state updates.
func buildCounter(rate float64, seed uint64) (*elasticutor.Builder, *workload.Zipf) {
	zipf := workload.NewZipf(1000, 0.5, simtime.NewRand(seed))
	b := elasticutor.NewBuilder("counter")
	src := b.Spout("events", elasticutor.SpoutConfig{
		Rate: elasticutor.ConstantRate(rate),
		Sample: func(now elasticutor.Time) (elasticutor.Key, int, interface{}) {
			return zipf.Sample(), 128, nil
		},
	})
	bolt := b.Bolt("count", elasticutor.BoltConfig{
		Cost: time.Millisecond,
		Handler: func(t elasticutor.Tuple, s elasticutor.State) []elasticutor.Tuple {
			n, _ := s.Get().(int)
			s.Set(n + t.Weight)
			return nil
		},
	})
	b.Connect(src, bolt)
	return b, zipf
}

func TestPublicAPIRun(t *testing.T) {
	b, _ := buildCounter(2000, 1)
	r, err := b.Run(elasticutor.Options{
		Paradigm:        elasticutor.Elasticutor,
		Nodes:           2,
		SourceExecutors: 2,
		Y:               2,
		Z:               16,
		Duration:        4 * time.Second,
		AssertOrder:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Processed == 0 {
		t.Fatal("nothing processed through the public API")
	}
	if r.Paradigm != elasticutor.Elasticutor {
		t.Fatalf("paradigm = %v", r.Paradigm)
	}
}

func TestPublicAPIBeforeRunHook(t *testing.T) {
	b, zipf := buildCounter(2000, 2)
	called := false
	_, err := b.Run(elasticutor.Options{
		Paradigm: elasticutor.Static,
		Nodes:    2, SourceExecutors: 2,
		Duration: 2 * time.Second,
		BeforeRun: func(e *engine.Engine) {
			called = true
			e.Every(time.Second, zipf.Shuffle)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("BeforeRun not invoked")
	}
	if zipf.Shuffles() == 0 {
		t.Fatal("scheduled shuffles did not run")
	}
}

func TestPublicAPIValidation(t *testing.T) {
	b := elasticutor.NewBuilder("bad")
	b.Spout("s", elasticutor.SpoutConfig{}) // missing Rate/Sample
	if _, err := b.Run(elasticutor.Options{Duration: time.Second, Nodes: 2}); err == nil {
		t.Fatal("invalid spout accepted")
	}

	b2 := elasticutor.NewBuilder("bad2")
	src := b2.Spout("s", elasticutor.SpoutConfig{
		Rate:   elasticutor.ConstantRate(1),
		Sample: func(elasticutor.Time) (elasticutor.Key, int, interface{}) { return 0, 1, nil },
	})
	bolt := b2.Bolt("b", elasticutor.BoltConfig{}) // missing cost
	b2.Connect(src, bolt)
	if _, err := b2.Run(elasticutor.Options{Duration: time.Second, Nodes: 2}); err == nil {
		t.Fatal("bolt without cost accepted")
	}

	b3, _ := buildCounter(10, 3)
	if _, err := b3.Run(elasticutor.Options{Nodes: 2}); err == nil {
		t.Fatal("missing duration accepted")
	}
}

func TestPublicAPIAllParadigms(t *testing.T) {
	for _, p := range []elasticutor.Paradigm{
		elasticutor.Static, elasticutor.ResourceCentric,
		elasticutor.NaiveEC, elasticutor.Elasticutor,
	} {
		b, _ := buildCounter(1000, 4)
		r, err := b.Run(elasticutor.Options{
			Paradigm: p, Nodes: 2, SourceExecutors: 2, Y: 2, Z: 16, OpShards: 64,
			Duration: 2 * time.Second,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if r.Processed == 0 {
			t.Fatalf("%v: nothing processed", p)
		}
	}
}
