package elasticutor

import (
	"context"
	"testing"
	"time"
)

// burstyBuilder is a user topology whose offered load triples mid-run — the
// facade-level autoscaling fixture.
func burstyBuilder() (*Builder, Options) {
	b := NewBuilder("bursty")
	src := b.Spout("src", SpoutConfig{
		Rate: func(now Time) float64 {
			if s := now.Seconds(); s >= 5 && s < 9 {
				return 36000
			}
			return 12000
		},
		Sample: func(now Time) (Key, int, interface{}) {
			return Key(uint64(now) * 2654435761), 128, nil
		},
	})
	work := b.Bolt("work", BoltConfig{Cost: time.Millisecond, Selectivity: 0})
	b.Connect(src, work)
	return b, Options{
		Policy:   "elasticutor",
		Nodes:    3,
		Y:        3,
		Duration: 14 * time.Second,
		WarmUp:   2 * time.Second,
		Seed:     7,
	}
}

// TestOptionsAutoscalerOnUserTopology runs a user-built topology with the
// reactive controller through the facade: the report carries the Autoscale
// section, the cluster grew under the burst, and autoscaler drains lost
// nothing.
func TestOptionsAutoscalerOnUserTopology(t *testing.T) {
	b, opt := burstyBuilder()
	opt.Autoscaler = "reactive"
	opt.Autoscale = &AutoscaleConfig{MaxNodes: 5}
	r, err := b.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Autoscale
	if st == nil {
		t.Fatal("report has no Autoscale section")
	}
	if st.Controller != "reactive" {
		t.Fatalf("controller = %q", st.Controller)
	}
	if st.ScaleUps == 0 {
		t.Fatalf("reactive never scaled up under a 3x burst: %+v", st)
	}
	if st.PeakNodes <= 3 {
		t.Fatalf("peak nodes = %d, want > 3", st.PeakNodes)
	}
	if r.LostStateBytes != 0 {
		t.Fatalf("autoscaler drains lost %d bytes", r.LostStateBytes)
	}
	if st.NodeSeconds <= 0 {
		t.Fatalf("node-seconds = %v", st.NodeSeconds)
	}

	// The same options without a controller must leave the section nil.
	b2, opt2 := burstyBuilder()
	r2, err := b2.Run(opt2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Autoscale != nil {
		t.Fatal("Autoscale section present without a controller")
	}
}

// TestOptionsAutoscalerUnknownName fails fast, before the run starts.
func TestOptionsAutoscalerUnknownName(t *testing.T) {
	b, opt := burstyBuilder()
	opt.Autoscaler = "elastigirl"
	if _, err := b.Run(opt); err == nil {
		t.Fatal("unknown autoscaler accepted")
	}
}

// TestAutoscalersRegistry pins the built-in controller list and the custom
// registration path.
func TestAutoscalersRegistry(t *testing.T) {
	names := Autoscalers()
	want := map[string]bool{"none": true, "reactive": true, "backlog": true, "predictive": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("Autoscalers() = %v is missing %v", names, want)
	}
	RegisterAutoscaler("facade-test-noop", func() Autoscaler { return noopScaler{} })
	b, opt := burstyBuilder()
	opt.Autoscaler = "facade-test-noop"
	r, err := b.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Autoscale == nil || r.Autoscale.Controller != "facade-test-noop" {
		t.Fatalf("custom controller did not drive the run: %+v", r.Autoscale)
	}
	if r.Autoscale.NodeSeconds != 3*14 {
		t.Fatalf("node-seconds = %v, want 42 for a fixed 3-node 14s run", r.Autoscale.NodeSeconds)
	}
}

type noopScaler struct{}

func (noopScaler) Name() string                              { return "facade-test-noop" }
func (noopScaler) Decide(AutoscaleMetrics) AutoscaleDecision { return AutoscaleDecision{} }

// TestStartScenarioAutoscaled covers the scenario path on both backends.
func TestStartScenarioAutoscaled(t *testing.T) {
	for _, backend := range []string{BackendSim, BackendRuntime} {
		h, err := StartScenario(context.Background(), "flashcrowd", Options{
			Policy:     "elasticutor",
			Backend:    backend,
			Speedup:    40,
			Seed:       42,
			Autoscaler: "reactive",
			Autoscale:  &AutoscaleConfig{MaxNodes: 6},
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		r, err := h.Wait()
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if r.Autoscale == nil || r.Autoscale.Controller != "reactive" {
			t.Fatalf("%s: missing Autoscale section: %+v", backend, r.Autoscale)
		}
		if backend == BackendSim && r.Autoscale.ScaleUps == 0 {
			t.Fatalf("sim backend: reactive never scaled up: %+v", r.Autoscale)
		}
	}
}
