// Command calibrate measures the real-time backend's costs on this machine —
// per-tuple processing overhead, state-migration bandwidth and serialization
// overhead, routing-control delay, and the dynamic scheduler's invocation
// time — and writes them as a calibration table the simulator loads:
//
//	go run ./tools/calibrate                         # writes calibration.json
//	go run ./tools/calibrate -out /tmp/cal.json
//	elasticutor-sim -calibration calibration.json    # sim with measured costs
//	go run ./tools/calibrate -trajectory CALIB_6.json -label PR6
//	                                      # append this machine's per-tuple
//	                                      # overhead to the perf trajectory
//	go run ./tools/calibrate -backend dist -trajectory CALIB_9.json -label pr9-dist
//	                                      # re-measure the cross-process costs
//	                                      # over real loopback sockets
//
// Every number comes from the runtime backend's actual primitives (the
// executor hot path, the shard move, a real Algorithm-1 invocation), so the
// simulator's cost table is validated against reality instead of assumed.
// Numbers are machine-dependent: calibrate on the box you simulate for.
//
// -backend dist spawns a two-agent loopback fleet (internal/dist) and
// replaces the modeled cross-process numbers with measured ones: the control
// delay becomes a real socket round trip, the serialization overhead is timed
// inside the agent, and the migration bandwidth is a real shard payload
// crossing two sockets.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/calib"
	"repro/internal/dist"
	rtbackend "repro/internal/runtime"
)

func main() {
	dist.MainIfAgent() // -backend dist re-executes this binary as the agents
	var (
		out        = flag.String("out", "calibration.json", "output path ('' = stdout only)")
		backend    = flag.String("backend", "runtime", "what to measure: runtime (in-process) | dist (real loopback sockets)")
		window     = flag.Duration("window", 300*time.Millisecond, "per-tuple measurement window (wall time)")
		shardKB    = flag.Int("shard-kb", 32, "migrated shard size in KB")
		nodes      = flag.Int("nodes", 4, "nodes for the scheduling-invocation measurement")
		execs      = flag.Int("executors", 28, "executors for the scheduling-invocation measurement")
		rounds     = flag.Int("rounds", 64, "measurement repetitions")
		trajectory = flag.String("trajectory", "", "trajectory file (CALIB_N.json) to append the hot-path overheads to")
		label      = flag.String("label", "PR6", "trajectory entry label (same label re-measures in place)")
	)
	flag.Parse()

	copt := rtbackend.CalibrateOptions{
		TupleWindow: *window,
		ShardBytes:  *shardKB << 10,
		Nodes:       *nodes,
		Executors:   *execs,
		Rounds:      *rounds,
	}
	var (
		table *calib.Table
		err   error
	)
	switch *backend {
	case "runtime":
		fmt.Fprintf(os.Stderr, "calibrating the runtime backend (window %v, %d rounds)…\n", *window, *rounds)
		table, err = rtbackend.Calibrate(copt)
	case "dist":
		fmt.Fprintf(os.Stderr, "calibrating the distributed backend over loopback sockets (window %v, %d rounds)…\n", *window, *rounds)
		table, err = dist.Calibrate(copt)
	default:
		err = fmt.Errorf("unknown -backend %q (runtime | dist)", *backend)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", table)
	if *trajectory != "" {
		tr, err := calib.LoadTrajectory(*trajectory)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr.Host = table.Host
		tr.Append(*label, table)
		if err := tr.Save(*trajectory); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "calibrate: appended %q to %s (%d entries)\n", *label, *trajectory, len(tr.Entries))
	}
	if *out == "" {
		return
	}
	if err := table.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "calibrate: wrote %s\n", *out)
}
