// Command calibrate measures the real-time backend's costs on this machine —
// per-tuple processing overhead, state-migration bandwidth and serialization
// overhead, routing-control delay, and the dynamic scheduler's invocation
// time — and writes them as a calibration table the simulator loads:
//
//	go run ./tools/calibrate                         # writes calibration.json
//	go run ./tools/calibrate -out /tmp/cal.json
//	elasticutor-sim -calibration calibration.json    # sim with measured costs
//	go run ./tools/calibrate -trajectory CALIB_6.json -label PR6
//	                                      # append this machine's per-tuple
//	                                      # overhead to the perf trajectory
//
// Every number comes from the runtime backend's actual primitives (the
// executor hot path, the shard move, a real Algorithm-1 invocation), so the
// simulator's cost table is validated against reality instead of assumed.
// Numbers are machine-dependent: calibrate on the box you simulate for.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/calib"
	rtbackend "repro/internal/runtime"
)

func main() {
	var (
		out        = flag.String("out", "calibration.json", "output path ('' = stdout only)")
		window     = flag.Duration("window", 300*time.Millisecond, "per-tuple measurement window (wall time)")
		shardKB    = flag.Int("shard-kb", 32, "migrated shard size in KB")
		nodes      = flag.Int("nodes", 4, "nodes for the scheduling-invocation measurement")
		execs      = flag.Int("executors", 28, "executors for the scheduling-invocation measurement")
		rounds     = flag.Int("rounds", 64, "measurement repetitions")
		trajectory = flag.String("trajectory", "", "trajectory file (CALIB_N.json) to append the hot-path overheads to")
		label      = flag.String("label", "PR6", "trajectory entry label (same label re-measures in place)")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "calibrating the runtime backend (window %v, %d rounds)…\n", *window, *rounds)
	table, err := rtbackend.Calibrate(rtbackend.CalibrateOptions{
		TupleWindow: *window,
		ShardBytes:  *shardKB << 10,
		Nodes:       *nodes,
		Executors:   *execs,
		Rounds:      *rounds,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", table)
	if *trajectory != "" {
		tr, err := calib.LoadTrajectory(*trajectory)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr.Host = table.Host
		tr.Append(*label, table)
		if err := tr.Save(*trajectory); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "calibrate: appended %q to %s (%d entries)\n", *label, *trajectory, len(tr.Entries))
	}
	if *out == "" {
		return
	}
	if err := table.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "calibrate: wrote %s\n", *out)
}
