// Command bench executes the repo's benchmarks through `go test -bench` and
// records the results as a JSON baseline, seeding the perf trajectory across
// PRs:
//
//	go run ./tools/bench                  # full run, writes BENCH_6.json
//	go run ./tools/bench -smoke           # CI: component benches once, no file
//	go run ./tools/bench -bench Fig8 -benchtime 3x -out /tmp/fig8.json
//	go run ./tools/bench -compare BENCH_5.json   # flag >20% regressions
//
// The default -benchtime of 100ms gives the component microbenches a stable
// sample while each paper-artifact benchmark (a full quick-scale experiment
// per iteration) runs exactly once. The output maps benchmark name →
// {ns_per_op, bytes_per_op, allocs_per_op, extra custom metrics}; wall-clock
// numbers are machine-dependent — compare trajectories on one box, not
// across boxes.
//
// -compare loads a previous baseline and diffs the benches matching
// -comparefilter (default: the stable microbenches — Component*, the hot-path
// admission and routing benches; full-experiment rows run once and are too
// noisy): any ns/op more than -threshold (default 20%) above the baseline is
// flagged as a REGRESSION and the exit code is 2, the ROADMAP's
// perf-trajectory tripwire.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded measurement. Extra carries custom
// b.ReportMetric units (e.g. "tuples/s") verbatim.
type Result struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Baseline is the file format of BENCH_*.json.
type Baseline struct {
	Schema     string            `json:"schema"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	BenchTime  string            `json:"benchtime"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		pattern   = flag.String("bench", ".", "benchmark name pattern (go test -bench)")
		benchtime = flag.String("benchtime", "100ms", "per-benchmark time or iteration budget (go test -benchtime)")
		pkgs      = flag.String("pkg", "./...", "package pattern(s) to bench, space-separated")
		out       = flag.String("out", "BENCH_6.json", "output JSON path ('' = stdout only)")
		smoke     = flag.Bool("smoke", false, "CI mode: run the component benches once each, write nothing, fail on any error")
		compare   = flag.String("compare", "", "previous baseline JSON to diff against")
		filter    = flag.String("comparefilter", "Component|HotPathAdmission|RouteBatch", "regexp choosing which benches -compare diffs")
		threshold = flag.Float64("threshold", 0.20, "regression threshold for -compare (fraction of baseline ns/op)")
		history   = flag.Bool("history", false, "aggregate committed BENCH_*.json into a perf-trajectory markdown table on stdout (runs nothing)")
	)
	flag.Parse()
	if *history {
		if err := writeHistory(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *smoke {
		*pattern, *benchtime, *out = "Component", "1x", ""
	}
	filterRe, err := regexp.Compile(*filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -comparefilter: %v\n", err)
		os.Exit(1)
	}

	args := []string{"test", "-run", "^$", "-bench", *pattern, "-benchtime", *benchtime, "-benchmem"}
	args = append(args, strings.Fields(*pkgs)...)
	fmt.Fprintf(os.Stderr, "go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: go test failed: %v\n%s", err, outBytes)
		os.Exit(1)
	}

	results := parse(string(outBytes))
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "bench: no benchmarks matched %q\n%s", *pattern, outBytes)
		os.Exit(1)
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := results[name]
		fmt.Printf("%-44s %12.1f ns/op %8d allocs/op\n", name, r.NsPerOp, r.AllocsPerOp)
	}
	regressions := 0
	if *compare != "" {
		var err error
		if regressions, err = compareBaseline(*compare, results, filterRe, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *smoke {
		fmt.Fprintf(os.Stderr, "bench: smoke OK, %d benchmarks ran\n", len(results))
		exitOnRegressions(regressions)
		return
	}
	if *out == "" {
		exitOnRegressions(regressions)
		return
	}
	b := Baseline{
		Schema:     "elasticutor-bench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  *benchtime,
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d benchmarks)\n", *out, len(results))
	exitOnRegressions(regressions)
}

func exitOnRegressions(n int) {
	if n > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d regression(s) beyond threshold\n", n)
		os.Exit(2)
	}
}

// compareBaseline diffs the filter-matching benches of the current run
// against a previous baseline file and returns how many regressed beyond
// threshold. Rows outside the filter (full experiments that run once per
// -benchtime) are skipped: their single-sample ns/op is dominated by noise.
func compareBaseline(path string, current map[string]Result, filter *regexp.Regexp, threshold float64) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("bench: compare: %w", err)
	}
	var prev Baseline
	if err := json.Unmarshal(data, &prev); err != nil {
		return 0, fmt.Errorf("bench: compare: %s: %w", path, err)
	}
	if len(prev.Benchmarks) == 0 {
		return 0, fmt.Errorf("bench: compare: %s has no benchmarks", path)
	}
	names := make([]string, 0, len(current))
	for name := range current {
		if filter.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "bench: compare: no benches match %q in this run\n", filter)
		return 0, nil
	}
	fmt.Printf("\n== compare vs %s (threshold %+.0f%%) ==\n", path, threshold*100)
	regressions := 0
	for _, name := range names {
		base, ok := prev.Benchmarks[name]
		if !ok || base.NsPerOp <= 0 {
			fmt.Printf("%-44s %12.1f ns/op   (new)\n", name, current[name].NsPerOp)
			continue
		}
		cur := current[name].NsPerOp
		delta := cur/base.NsPerOp - 1
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-44s %12.1f ns/op  %+7.1f%%%s\n", name, cur, delta*100, mark)
	}
	return regressions, nil
}

// writeHistory aggregates every committed BENCH_*.json (numeric order) into
// one markdown table — benchmark rows, baseline columns, ns/op cells — the
// whole perf trajectory at a glance. Baselines were recorded by different PRs
// on comparable boxes; read the table for trends, not absolute truth.
func writeHistory(w io.Writer) error {
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return fmt.Errorf("bench: history: %w", err)
	}
	type col struct {
		label string
		n     int
		bm    map[string]Result
	}
	var cols []col
	for _, path := range paths {
		num := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "BENCH_"), ".json")
		n, err := strconv.Atoi(num)
		if err != nil {
			continue // not part of the numbered trajectory
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("bench: history: %w", err)
		}
		var b Baseline
		if err := json.Unmarshal(data, &b); err != nil {
			return fmt.Errorf("bench: history: %s: %w", path, err)
		}
		cols = append(cols, col{label: num, n: n, bm: b.Benchmarks})
	}
	if len(cols) == 0 {
		return fmt.Errorf("bench: history: no BENCH_*.json baselines found (run from the repo root)")
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].n < cols[j].n })

	rowSet := make(map[string]bool)
	for _, c := range cols {
		for name := range c.bm {
			rowSet[name] = true
		}
	}
	rows := make([]string, 0, len(rowSet))
	for name := range rowSet {
		rows = append(rows, name)
	}
	sort.Strings(rows)

	fmt.Fprintf(w, "| benchmark (ns/op) |")
	for _, c := range cols {
		fmt.Fprintf(w, " BENCH_%s |", c.label)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|")
	for range cols {
		fmt.Fprintf(w, "---:|")
	}
	fmt.Fprintln(w)
	for _, name := range rows {
		fmt.Fprintf(w, "| %s |", strings.TrimPrefix(name, "Benchmark"))
		for _, c := range cols {
			if r, ok := c.bm[name]; ok && r.NsPerOp > 0 {
				fmt.Fprintf(w, " %.1f |", r.NsPerOp)
			} else {
				fmt.Fprintf(w, " — |")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// parse extracts benchmark rows from `go test -bench` output. Rows are
// tokenized generically — name, iteration count, then (value, unit) pairs —
// so custom b.ReportMetric units (e.g. "tuples/s") are captured instead of
// breaking a fixed-shape regexp.
func parse(output string) map[string]Result {
	results := make(map[string]Result)
	for _, line := range strings.Split(output, "\n") {
		f := strings.Fields(strings.TrimSpace(line))
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(f[1])
		if err != nil {
			continue
		}
		name := f[0]
		// Strip the -GOMAXPROCS suffix go test appends to the name.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[unit] = v
			}
		}
		results[name] = r
	}
	return results
}
