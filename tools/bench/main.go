// Command bench executes the repo's benchmarks (bench_test.go) through `go
// test -bench` and records the results as a JSON baseline, seeding the perf
// trajectory across PRs:
//
//	go run ./tools/bench                  # full run, writes BENCH_5.json
//	go run ./tools/bench -smoke           # CI: component benches once, no file
//	go run ./tools/bench -bench Fig8 -benchtime 3x -out /tmp/fig8.json
//	go run ./tools/bench -compare BENCH_4.json   # flag >20% regressions
//
// The default -benchtime of 100ms gives the component microbenches a stable
// sample while each paper-artifact benchmark (a full quick-scale experiment
// per iteration) runs exactly once. The output maps benchmark name →
// {ns_per_op, bytes_per_op, allocs_per_op}; wall-clock numbers are
// machine-dependent — compare trajectories on one box, not across boxes.
//
// -compare loads a previous baseline and diffs the Component* benches (the
// stable microbenches; full-experiment rows run once and are too noisy):
// any ns/op more than -threshold (default 20%) above the baseline is flagged
// as a REGRESSION and the exit code is 2, the ROADMAP's perf-trajectory
// tripwire.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded measurement.
type Result struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the file format of BENCH_*.json.
type Baseline struct {
	Schema     string            `json:"schema"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	BenchTime  string            `json:"benchtime"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches `go test -bench` output rows, e.g.
// BenchmarkComponentZipfSample-8  21534210  55.7 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var (
		pattern   = flag.String("bench", ".", "benchmark name pattern (go test -bench)")
		benchtime = flag.String("benchtime", "100ms", "per-benchmark time or iteration budget (go test -benchtime)")
		out       = flag.String("out", "BENCH_5.json", "output JSON path ('' = stdout only)")
		smoke     = flag.Bool("smoke", false, "CI mode: run the component benches once each, write nothing, fail on any error")
		compare   = flag.String("compare", "", "previous baseline JSON to diff the Component benches against")
		threshold = flag.Float64("threshold", 0.20, "regression threshold for -compare (fraction of baseline ns/op)")
	)
	flag.Parse()
	if *smoke {
		*pattern, *benchtime, *out = "Component", "1x", ""
	}

	args := []string{"test", "-run", "^$", "-bench", *pattern, "-benchtime", *benchtime, "-benchmem", "."}
	fmt.Fprintf(os.Stderr, "go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: go test failed: %v\n%s", err, outBytes)
		os.Exit(1)
	}

	results := parse(string(outBytes))
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "bench: no benchmarks matched %q\n%s", *pattern, outBytes)
		os.Exit(1)
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := results[name]
		fmt.Printf("%-44s %12.1f ns/op %8d allocs/op\n", name, r.NsPerOp, r.AllocsPerOp)
	}
	regressions := 0
	if *compare != "" {
		var err error
		if regressions, err = compareBaseline(*compare, results, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *smoke {
		fmt.Fprintf(os.Stderr, "bench: smoke OK, %d benchmarks ran\n", len(results))
		exitOnRegressions(regressions)
		return
	}
	if *out == "" {
		exitOnRegressions(regressions)
		return
	}
	b := Baseline{
		Schema:     "elasticutor-bench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  *benchtime,
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d benchmarks)\n", *out, len(results))
	exitOnRegressions(regressions)
}

func exitOnRegressions(n int) {
	if n > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d regression(s) beyond threshold\n", n)
		os.Exit(2)
	}
}

// compareBaseline diffs the Component benches of the current run against a
// previous baseline file and returns how many regressed beyond threshold.
// Non-component rows (full experiments that run once per -benchtime) are
// skipped: their single-sample ns/op is dominated by noise.
func compareBaseline(path string, current map[string]Result, threshold float64) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("bench: compare: %w", err)
	}
	var prev Baseline
	if err := json.Unmarshal(data, &prev); err != nil {
		return 0, fmt.Errorf("bench: compare: %s: %w", path, err)
	}
	if len(prev.Benchmarks) == 0 {
		return 0, fmt.Errorf("bench: compare: %s has no benchmarks", path)
	}
	names := make([]string, 0, len(current))
	for name := range current {
		if strings.Contains(name, "Component") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "bench: compare: no Component benches in this run\n")
		return 0, nil
	}
	fmt.Printf("\n== compare vs %s (threshold %+.0f%%) ==\n", path, threshold*100)
	regressions := 0
	for _, name := range names {
		base, ok := prev.Benchmarks[name]
		if !ok || base.NsPerOp <= 0 {
			fmt.Printf("%-44s %12.1f ns/op   (new)\n", name, current[name].NsPerOp)
			continue
		}
		cur := current[name].NsPerOp
		delta := cur/base.NsPerOp - 1
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-44s %12.1f ns/op  %+7.1f%%%s\n", name, cur, delta*100, mark)
	}
	return regressions, nil
}

// parse extracts benchmark rows from `go test -bench` output.
func parse(output string) map[string]Result {
	results := make(map[string]Result)
	for _, line := range strings.Split(output, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		results[m[1]] = r
	}
	return results
}
