// Command gengolden regenerates the golden files that pin the simulation's
// behavior byte-for-byte:
//
//	go run ./tools/gengolden
//
// It rewrites internal/policy/testdata/scenarios.golden (reference-run report
// fingerprints), internal/experiments/testdata/fig8_quick.golden,
// scenarios_quick.golden, autoscale_quick.golden, and
// latencyanatomy_quick.golden (full experiment tables),
// internal/scenario/testdata/builtins.golden (one fingerprint
// per built-in scenario, churn counters included), and
// internal/obs/testdata/record_replay.golden (the pinned trace recording's
// structural event sequence and repartition spans). Regenerate ONLY when a
// behavior change is intended; the policy, harness, scenario, experiments,
// and obs tests compare against these bytes.
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/golden"
	"repro/internal/obs"
	"repro/internal/scenario"
)

func write(path, content string) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
}

func main() {
	write("internal/policy/testdata/scenarios.golden", golden.Generate())

	var buf bytes.Buffer
	for _, tab := range experiments.Fig8(experiments.Quick) {
		tab.Print(&buf)
	}
	write("internal/experiments/testdata/fig8_quick.golden", buf.String())

	buf.Reset()
	for _, tab := range experiments.ScenarioSweep(experiments.Quick) {
		tab.Print(&buf)
	}
	write("internal/experiments/testdata/scenarios_quick.golden", buf.String())

	buf.Reset()
	for _, tab := range experiments.Autoscale(experiments.Quick) {
		tab.Print(&buf)
	}
	write("internal/experiments/testdata/autoscale_quick.golden", buf.String())

	buf.Reset()
	for _, tab := range experiments.LatencyAnatomy(experiments.Quick) {
		tab.Print(&buf)
	}
	write("internal/experiments/testdata/latencyanatomy_quick.golden", buf.String())

	write("internal/scenario/testdata/builtins.golden", scenario.GenerateGoldens())

	write("internal/obs/testdata/record_replay.golden", obs.GenerateGolden())
}
