package core

import (
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/workload/sse"
)

// SSEOptions configures the stock-exchange application (Fig 14).
type SSEOptions struct {
	Paradigm engine.Paradigm
	// Policy injects an elasticity control plane directly (overrides
	// Paradigm when non-nil; see internal/policy).
	Policy          policy.Policy
	Nodes           int // default 32
	SourceExecutors int // default one per node
	Y, Z, OpShards  int
	Rate            float64 // offered orders/s; 0 = 1.3× transactor capacity
	Generator       sse.GeneratorConfig
	Batch           int
	Seed            uint64
	AssertOrder     bool
	WarmUp          simtime.Duration
	Tmax            simtime.Duration
}

// SSE bundles the constructed application.
type SSE struct {
	Engine    *engine.Engine
	Generator *sse.Generator
	Rate      float64
	Config    engine.Config
	// Trades counts executed transactions (weight-scaled), for diagnostics.
	Trades *int64
}

// TransactorCost is the CPU cost of executing one order against the book.
const TransactorCost = simtime.Millisecond

// AnalyticsCost is the CPU cost of one analytics/event operator per record.
const AnalyticsCost = 50 * simtime.Microsecond

// statsOperators are the six statistics operators of Fig 14.
var statsOperators = []string{
	"moving-average", "composite-index", "vwap", "volume-stats", "spread-stats", "turnover",
}

// eventOperators are the five event-processing operators of Fig 14.
var eventOperators = []string{
	"price-alarm", "fraud-detection", "volume-surge", "circuit-breaker", "order-imbalance",
}

// movingAverageHandler maintains an exponentially weighted price average per
// stock — one of the real analytics the example app exposes.
func movingAverageHandler(t stream.Tuple, acc stream.StateAccessor) []stream.Tuple {
	price, ok := t.Payload.(int64)
	if !ok {
		return nil
	}
	avg, _ := acc.Get().(float64)
	if avg == 0 {
		avg = float64(price)
	}
	acc.Set(avg*0.98 + float64(price)*0.02)
	return nil
}

// priceAlarmHandler remembers the max trade price per stock and "fires"
// (counts in state) when a trade exceeds 120% of the running max.
func priceAlarmHandler(t stream.Tuple, acc stream.StateAccessor) []stream.Tuple {
	price, ok := t.Payload.(int64)
	if !ok {
		return nil
	}
	st, _ := acc.Get().([2]int64) // [maxPrice, alarms]
	if st[0] > 0 && price > st[0]+st[0]/5 {
		st[1]++
	}
	if price > st[0] {
		st[0] = price
	}
	acc.Set(st)
	return nil
}

// NewSSE builds the Fig 14 topology: orders → transactor (limit-order-book
// market clearing) → 6 statistics + 5 event-processing operators, all keyed
// by stock ID.
func NewSSE(opt SSEOptions) (*SSE, error) {
	if opt.Nodes == 0 {
		opt.Nodes = 32
	}
	if opt.SourceExecutors == 0 {
		opt.SourceExecutors = opt.Nodes
	}
	if opt.Batch == 0 {
		opt.Batch = 1
	}
	if opt.Generator.Stocks == 0 {
		opt.Generator = sse.DefaultGeneratorConfig()
	}

	tp := stream.NewTopology("sse")
	orders := tp.Add(&stream.Operator{Name: "orders", Source: true})

	trades := new(int64)
	transactor := tp.Add(&stream.Operator{
		Name:          "transactor",
		Cost:          stream.FixedCost(TransactorCost),
		OutBytes:      sse.TradeBytes,
		StatePerShard: 32 << 10,
		Handler: func(t stream.Tuple, acc stream.StateAccessor) []stream.Tuple {
			order, ok := t.Payload.(sse.Order)
			if !ok {
				return nil
			}
			book, _ := acc.Get().(*sse.Book)
			if book == nil {
				book = sse.NewBook(order.Stock)
				acc.Set(book)
			}
			trs := book.Submit(order)
			if len(trs) == 0 {
				return nil
			}
			// One downstream record per trade batch, weight-scaled by the
			// tuple's batch weight; the payload carries the last trade price
			// for the analytics handlers.
			*trades += int64(len(trs) * t.Weight)
			return []stream.Tuple{{
				Key:     t.Key,
				Weight:  len(trs) * t.Weight,
				Bytes:   sse.TradeBytes,
				Payload: trs[len(trs)-1].Price,
			}}
		},
	})
	tp.Connect(orders.ID, transactor.ID)

	add := func(name string, handler stream.Handler) {
		op := tp.Add(&stream.Operator{
			Name:          name,
			Cost:          stream.FixedCost(AnalyticsCost),
			StatePerShard: 4 << 10,
			Handler:       handler,
		})
		tp.Connect(transactor.ID, op.ID)
	}
	for _, name := range statsOperators {
		if name == "moving-average" {
			add(name, movingAverageHandler)
			continue
		}
		add(name, nil)
	}
	for _, name := range eventOperators {
		if name == "price-alarm" {
			add(name, priceAlarmHandler)
			continue
		}
		add(name, nil)
	}

	clusterCfg := cluster.Default(opt.Nodes)
	elasticCores := opt.Nodes*clusterCfg.CoresPerNode - opt.SourceExecutors
	rate := opt.Rate
	if rate <= 0 {
		// Each order costs ~1 ms at the transactor plus ~0.6 ms across the
		// eleven analytics operators (≈1.1 trades/order × 11 × 50 µs), so the
		// cluster sustains ≈ 0.62 orders/ms/core. Offer ~70% of that: a
		// well-scheduled system runs at milliseconds latency while the
		// baselines' imbalance-crippled effective capacity still saturates.
		rate = 0.45 * float64(elasticCores) / TransactorCost.Seconds()
	}

	// Parallelism budget: the transactor gets Y executors; the 11 analytics
	// operators split half the remaining cores (the dynamic scheduler moves
	// actual cores wherever demand is).
	yTrans := opt.Y
	if yTrans <= 0 || yTrans > elasticCores/2 {
		yTrans = elasticCores / 7
		if yTrans < 1 {
			yTrans = 1
		}
		if yTrans > 32 {
			yTrans = 32
		}
	}
	yAnalytics := (elasticCores - yTrans) / 22
	if yAnalytics < 1 {
		yAnalytics = 1
	}
	yPerOp := map[stream.OperatorID]int{transactor.ID: yTrans}
	for _, op := range tp.Operators() {
		if !op.Source && op.ID != transactor.ID {
			yPerOp[op.ID] = yAnalytics
		}
	}

	gen := sse.NewGenerator(opt.Generator, simtime.NewRand(opt.Seed+99))
	cfg := engine.Config{
		Topology:        tp,
		Cluster:         clusterCfg,
		Paradigm:        opt.Paradigm,
		Policy:          opt.Policy,
		SourceExecutors: opt.SourceExecutors,
		Y:               opt.Y,
		YPerOp:          yPerOp,
		Z:               opt.Z,
		OpShards:        opt.OpShards,
		Batch:           opt.Batch,
		Seed:            opt.Seed,
		AssertOrder:     opt.AssertOrder,
		WarmUp:          opt.WarmUp,
		Tmax:            opt.Tmax,
		MeasureOp:       transactor.ID,
		Sources: map[stream.OperatorID]*engine.SourceDriver{
			orders.ID: {
				Rate: func(simtime.Time) float64 { return rate },
				Sample: func(now simtime.Time) (stream.Key, int, interface{}) {
					o := gen.Next(now)
					return o.Key(), sse.OrderBytes, o
				},
			},
		},
	}
	e, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	return &SSE{Engine: e, Generator: gen, Rate: rate, Config: cfg, Trades: trades}, nil
}
