package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func TestNewMicroDefaults(t *testing.T) {
	m, err := NewMicro(MicroOptions{Paradigm: engine.Elasticutor, Nodes: 2, SourceExecutors: 2, Y: 2, Z: 16})
	if err != nil {
		t.Fatal(err)
	}
	// 2 nodes × 8 cores − 2 source cores = 14 elastic cores at 1 ms/tuple:
	// default saturating rate = 1.3 × 14k.
	if m.Rate < 18000 || m.Rate > 18500 {
		t.Fatalf("default rate = %v", m.Rate)
	}
	r := m.Engine.Run(3 * simtime.Second)
	if r.Processed == 0 {
		t.Fatal("micro benchmark processed nothing")
	}
}

func TestNewMicroShufflesFromSpec(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.ShufflesPerMin = 60 // one per second
	m, err := NewMicro(MicroOptions{
		Paradigm: engine.Elasticutor, Nodes: 2, SourceExecutors: 2, Y: 2, Z: 16,
		Spec: spec, Rate: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Engine.Run(3500 * simtime.Millisecond)
	if m.Zipf.Shuffles() != 3 {
		t.Fatalf("shuffles = %d, want 3", m.Zipf.Shuffles())
	}
}

func TestNewSSEProcessesOrdersAndTrades(t *testing.T) {
	app, err := NewSSE(SSEOptions{
		Paradigm: engine.Elasticutor, Nodes: 2, SourceExecutors: 2,
		Y: 2, Z: 16, Rate: 2000, Seed: 1, AssertOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := app.Engine.Run(5 * simtime.Second)
	if r.Processed < 5000 {
		t.Fatalf("transactor processed only %d orders", r.Processed)
	}
	if *app.Trades == 0 {
		t.Fatal("no trades executed — order book never crossed")
	}
	// Sinks (analytics) measured latency.
	if r.Latency.Count() == 0 {
		t.Fatal("no end-to-end latency samples from analytics sinks")
	}
	if r.Dropped != 0 {
		t.Fatalf("dropped = %d", r.Dropped)
	}
}

func TestSSEAllParadigms(t *testing.T) {
	for _, p := range []engine.Paradigm{engine.Static, engine.ResourceCentric, engine.NaiveEC, engine.Elasticutor} {
		app, err := NewSSE(SSEOptions{
			Paradigm: p, Nodes: 2, SourceExecutors: 2, Y: 2, Z: 16,
			OpShards: 128, Rate: 1500, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		r := app.Engine.Run(4 * simtime.Second)
		if r.Processed == 0 {
			t.Fatalf("%v: nothing processed", p)
		}
	}
}

func TestSSETopologyShape(t *testing.T) {
	app, err := NewSSE(SSEOptions{Paradigm: engine.Static, Nodes: 2, SourceExecutors: 2, Rate: 100})
	if err != nil {
		t.Fatal(err)
	}
	ops := app.Config.Topology.Operators()
	// 1 source + transactor + 6 stats + 5 events = 13 operators (Fig 14).
	if len(ops) != 13 {
		t.Fatalf("operator count = %d, want 13", len(ops))
	}
	tr := ops[1]
	if len(tr.Downstream()) != 11 {
		t.Fatalf("transactor fan-out = %d, want 11", len(tr.Downstream()))
	}
}
