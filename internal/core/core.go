// Package core is the Elasticutor framework glue: it assembles the paper's
// two evaluation applications — the §5.1 micro-benchmark (generator →
// calculator, Fig 5) and the §5.4 Shanghai Stock Exchange application
// (Fig 14) — into ready-to-run engines with the paper's default parameters.
//
// The experiments (internal/experiments), the CLI (cmd/elasticutor-bench)
// and the examples all build on this package.
package core

import (
	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/workload"
)

// MicroOptions configures a micro-benchmark run. Zero values take paper
// defaults scaled to the requested cluster.
type MicroOptions struct {
	Paradigm engine.Paradigm
	// Policy injects an elasticity control plane directly (overrides
	// Paradigm when non-nil; see internal/policy).
	Policy          policy.Policy
	Nodes           int // cluster nodes (8 cores each); default 32
	SourceExecutors int // generator parallelism; default one per node
	Y               int // executors for the calculator operator
	Z               int // shards per elastic executor
	OpShards        int // RC repartition granularity
	Spec            workload.Spec
	Rate            float64 // offered tuples/s; 0 = 1.3× estimated capacity
	// RateFn replaces the constant Rate with a time-varying offered load
	// (scenario phases). When set, Rate/the saturating default only seed
	// Micro.Rate for the caller's reference.
	RateFn      workload.RateFunc
	Batch       int
	Seed        uint64
	FixedCores  int  // pin per-executor cores (single-executor scaling)
	SourcesFree bool // sources don't consume cores (Fig 9a fan-in sweep)
	AssertOrder bool
	// DisableStateSharing is the §3.2 ablation: shard moves always serialize.
	DisableStateSharing bool
	// Theta overrides the imbalance threshold (0 = paper default 1.2).
	Theta float64
	// Calibration, when set, replaces the simulator's assumed cost constants
	// (control delay, serialization overhead, migration bandwidth) with the
	// values tools/calibrate measured on the real-time backend.
	Calibration *calib.Table
	// SchedulePeriod overrides the dynamic scheduler cadence (0 = 1 s).
	SchedulePeriod simtime.Duration
	WarmUp         simtime.Duration
	Tmax           simtime.Duration
}

// Micro bundles a constructed engine with the workload objects the caller
// may want to perturb (shuffles are already scheduled from Spec ω).
type Micro struct {
	Engine *engine.Engine
	Zipf   *workload.Zipf
	Rate   float64
	Config engine.Config
}

// Setup is the backend-independent assembly of the micro-benchmark: the
// engine configuration, the live key sampler, and the derived rate. NewMicro
// turns it into a simulator engine; internal/runtime runs the same Config on
// goroutines. The Config's Sample closure reads Zipf without locking — a
// concurrent backend must wrap the sampler (see runtime's scenario driver).
type Setup struct {
	Config engine.Config
	Zipf   *workload.Zipf
	Rate   float64
	// GenID is the generator (source) operator, whose driver a backend may
	// rewrap (rate phases, locked sampling).
	GenID stream.OperatorID
	// ShuffleEvery is the ω-derived interval between key shuffles (0 = none);
	// each backend schedules it on its own clock.
	ShuffleEvery simtime.Duration
}

// MicroSetup assembles the Fig 5 micro-benchmark configuration without
// committing to an execution backend.
func MicroSetup(opt MicroOptions) *Setup {
	if opt.Nodes == 0 {
		opt.Nodes = 32
	}
	if opt.SourceExecutors == 0 {
		opt.SourceExecutors = opt.Nodes
	}
	if opt.Spec.Keys == 0 {
		opt.Spec = workload.DefaultSpec()
	}
	if opt.Batch == 0 {
		opt.Batch = 1
	}

	tp := stream.NewTopology("micro")
	gen := tp.Add(&stream.Operator{Name: "generator", Source: true})
	calc := tp.Add(&stream.Operator{
		Name:          "calculator",
		Cost:          stream.FixedCost(opt.Spec.CPUCost),
		StatePerShard: opt.Spec.ShardStateKB << 10,
	})
	tp.Connect(gen.ID, calc.ID)

	clusterCfg := cluster.Default(opt.Nodes)
	elasticCores := opt.Nodes*clusterCfg.CoresPerNode - opt.SourceExecutors
	if opt.SourcesFree {
		elasticCores = opt.Nodes * clusterCfg.CoresPerNode
	}
	rate := opt.Rate
	if rate <= 0 {
		// Saturating offered load: 1.3× the cluster's CPU-bound capacity.
		rate = 1.3 * float64(elasticCores) / opt.Spec.CPUCost.Seconds()
	}

	rateFn := opt.RateFn
	if rateFn == nil {
		rateFn = workload.ConstantRate(rate)
	}
	zipf := workload.NewZipf(opt.Spec.Keys, opt.Spec.Skew, simtime.NewRand(opt.Seed+77))
	cfg := engine.Config{
		Topology:            tp,
		Cluster:             clusterCfg,
		Paradigm:            opt.Paradigm,
		Policy:              opt.Policy,
		SourceExecutors:     opt.SourceExecutors,
		Y:                   opt.Y,
		Z:                   opt.Z,
		OpShards:            opt.OpShards,
		Batch:               opt.Batch,
		Seed:                opt.Seed,
		FixedCores:          opt.FixedCores,
		SourcesFree:         opt.SourcesFree,
		AssertOrder:         opt.AssertOrder,
		DisableStateSharing: opt.DisableStateSharing,
		Theta:               opt.Theta,
		SchedulePeriod:      opt.SchedulePeriod,
		WarmUp:              opt.WarmUp,
		Tmax:                opt.Tmax,
		Sources: map[stream.OperatorID]*engine.SourceDriver{
			gen.ID: {
				Rate: rateFn,
				Sample: func(now simtime.Time) (stream.Key, int, interface{}) {
					return zipf.Sample(), opt.Spec.TupleBytes, nil
				},
			},
		},
	}
	if opt.Calibration != nil {
		opt.Calibration.Apply(&cfg)
	}
	return &Setup{
		Config:       cfg,
		Zipf:         zipf,
		Rate:         rate,
		GenID:        gen.ID,
		ShuffleEvery: opt.Spec.ShuffleInterval(),
	}
}

// NewMicro builds the Fig 5 micro-benchmark on the simulator backend.
func NewMicro(opt MicroOptions) (*Micro, error) {
	setup := MicroSetup(opt)
	e, err := engine.New(setup.Config)
	if err != nil {
		return nil, err
	}
	if setup.ShuffleEvery > 0 {
		e.Every(setup.ShuffleEvery, setup.Zipf.Shuffle)
	}
	return &Micro{Engine: e, Zipf: setup.Zipf, Rate: setup.Rate, Config: setup.Config}, nil
}
