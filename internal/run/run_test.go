package run_test

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

// TestDriverMatchesMonolithicRun pins the stepped driver's equivalence
// contract: driving an engine through the Run handle's slice loop executes
// exactly the event sequence one monolithic Engine.Run does, so the full
// deterministic fingerprint (counters, latencies, event count) is identical.
func TestDriverMatchesMonolithicRun(t *testing.T) {
	s, err := scenario.ByName("nodedrain")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Build("elasticutor", 42)
	if err != nil {
		t.Fatal(err)
	}
	mono := inst.Engine.Run(s.Duration()) // handle wired but never started

	stepped, err := s.Run("elasticutor", 42) // same build, driven by the handle
	if err != nil {
		t.Fatal(err)
	}
	a, b := scenario.Fingerprint("x", mono), scenario.Fingerprint("x", stepped)
	if a != b {
		t.Fatalf("stepped driver diverged from monolithic run:\nmono:    %s\nstepped: %s", a, b)
	}
}

// TestTimelineAndSnapshotsThroughHandle: a handle-driven scenario run carries
// the full typed timeline and serves snapshots mid-run at safe points.
func TestTimelineAndSnapshotsThroughHandle(t *testing.T) {
	s, err := scenario.ByName("nodedrain")
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Start(context.Background(), "elasticutor", 42)
	if err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot() // served at the next safe point while running
	if snap.Now > simtime.Time(0).Add(s.Duration()) {
		t.Fatalf("snapshot beyond the horizon: %v", snap.Now)
	}
	r, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var drains, policies int
	for _, ev := range r.Timeline {
		switch ev.Kind {
		case engine.EventNodeDrain:
			drains++
		case engine.EventPolicyInvoked:
			policies++
		}
	}
	if drains != 1 {
		t.Fatalf("timeline drains = %d, want 1: %v", drains, r.Timeline)
	}
	if policies == 0 {
		t.Fatal("timeline has no policy invocations")
	}
	if h.LostEvents() != 0 && len(r.Timeline) < h.LostEvents() {
		t.Fatalf("inconsistent loss accounting: %d lost, %d kept", h.LostEvents(), len(r.Timeline))
	}
}
