package run_test

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

// TestDriverMatchesMonolithicRun pins the stepped driver's equivalence
// contract: driving an engine through the Run handle's slice loop executes
// exactly the event sequence one monolithic Engine.Run does, so the full
// deterministic fingerprint (counters, latencies, event count) is identical.
func TestDriverMatchesMonolithicRun(t *testing.T) {
	s, err := scenario.ByName("nodedrain")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Build("elasticutor", 42)
	if err != nil {
		t.Fatal(err)
	}
	mono := inst.Engine.Run(s.Duration()) // handle wired but never started

	stepped, err := s.Run("elasticutor", 42) // same build, driven by the handle
	if err != nil {
		t.Fatal(err)
	}
	a, b := scenario.Fingerprint("x", mono), scenario.Fingerprint("x", stepped)
	if a != b {
		t.Fatalf("stepped driver diverged from monolithic run:\nmono:    %s\nstepped: %s", a, b)
	}
}

// TestTimelineAndSnapshotsThroughHandle: a handle-driven scenario run carries
// the full typed timeline and serves snapshots mid-run at safe points.
func TestTimelineAndSnapshotsThroughHandle(t *testing.T) {
	s, err := scenario.ByName("nodedrain")
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Start(context.Background(), "elasticutor", 42)
	if err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot() // served at the next safe point while running
	if snap.Now > simtime.Time(0).Add(s.Duration()) {
		t.Fatalf("snapshot beyond the horizon: %v", snap.Now)
	}
	r, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var drains, policies int
	for _, ev := range r.Timeline {
		switch ev.Kind {
		case engine.EventNodeDrain:
			drains++
		case engine.EventPolicyInvoked:
			policies++
		}
	}
	if drains != 1 {
		t.Fatalf("timeline drains = %d, want 1: %v", drains, r.Timeline)
	}
	if policies == 0 {
		t.Fatal("timeline has no policy invocations")
	}
	if h.LostEvents() != 0 && len(r.Timeline) < h.LostEvents() {
		t.Fatalf("inconsistent loss accounting: %d lost, %d kept", h.LostEvents(), len(r.Timeline))
	}
}

// TestEventOverflowAccounting pins the Events channel's overflow semantics:
// with a deliberately tiny buffer and a consumer that never reads until the
// run is over, emission never blocks, the timeline stays complete, and every
// timeline event is either delivered (buffered) or counted by LostEvents —
// nothing vanishes unaccounted.
func TestEventOverflowAccounting(t *testing.T) {
	s, err := scenario.ByName("nodedrain")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Build("elasticutor", 42)
	if err != nil {
		t.Fatal(err)
	}
	h := inst.Handle
	h.SetEventBuffer(2)
	ch := h.Events() // taken before Start, never read until completion
	h.Start(context.Background())
	r, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	for range ch { // closed at finish; drain what the buffer kept
		received++
	}
	if len(r.Timeline) <= 2 {
		t.Fatalf("scenario emitted only %d events; the overflow test needs load", len(r.Timeline))
	}
	if received != 2 {
		t.Fatalf("tiny buffer delivered %d events, want exactly its capacity 2", received)
	}
	if received+h.LostEvents() != len(r.Timeline) {
		t.Fatalf("overflow accounting broken: %d received + %d lost != %d timeline events",
			received, h.LostEvents(), len(r.Timeline))
	}
}

// TestEventBufferDefaultLossless: the default buffer absorbs a whole scenario
// run without loss, so an after-the-fact drain sees the complete timeline.
func TestEventBufferDefaultLossless(t *testing.T) {
	s, err := scenario.ByName("nodedrain")
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Start(context.Background(), "elasticutor", 42)
	if err != nil {
		t.Fatal(err)
	}
	r, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	for range h.Events() {
		received++
	}
	if h.LostEvents() != 0 {
		t.Fatalf("default buffer lost %d events", h.LostEvents())
	}
	if received != len(r.Timeline) {
		t.Fatalf("drained %d events, timeline has %d", received, len(r.Timeline))
	}
}

// TestSetEventBufferGuards: resizing is pre-Start and pre-Events only — the
// channel identity changes, so a late resize would strand the consumer.
func TestSetEventBufferGuards(t *testing.T) {
	s, err := scenario.ByName("nodedrain")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Build("elasticutor", 42)
	if err != nil {
		t.Fatal(err)
	}
	h := inst.Handle
	h.Events()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetEventBuffer after Events did not panic")
			}
		}()
		h.SetEventBuffer(8)
	}()
	h.Start(context.Background())
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
}
