// Package run is the first-class run handle of the Elasticutor reproduction:
// one type that starts, observes, and controls a live run on any of the three
// execution backends (simulator, goroutine runtime, distributed agent
// processes). The facade re-exports it (elasticutor.Run), the scenario
// interpreter drives every backend through it, and the CLI's -live mode
// renders its event stream.
//
// Contract (see DESIGN.md "Run handle"):
//
//   - Start returns immediately on both backends; Wait blocks for the report.
//   - Snapshot returns live per-operator metrics, served at safe points.
//   - Events streams typed run events (churn, repartitions, phases, policy
//     invocations). The channel is buffered and lossy for slow consumers;
//     Report.Timeline is the complete record.
//   - Inject applies a command at the next safe point — the boundary between
//     event-slices on the simulator's virtual clock, the control goroutine on
//     the real-time backend. Commands carrying an explicit At (injected
//     before Start) are scheduled at that virtual time in injection order,
//     which is the deterministic form the scenario interpreter uses.
//   - Cancelling the Start context stops the run at the next safe point and
//     Wait returns the partial report (with context.Canceled) — ledgers stay
//     conserved because the backend runs its ordinary shutdown drain.
package run

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/simtime"
)

// slice is the simulator driver's safe-point granularity: commands,
// snapshots, cancellation, and timeline markers are serviced between
// event-slices of this much virtual time.
const slice = 100 * simtime.Millisecond

// defaultEventBuffer sizes the Events channel when SetEventBuffer is not
// called; emission never blocks, so events beyond a slow consumer's lag are
// dropped (the report timeline keeps all, LostEvents counts the drops).
const defaultEventBuffer = 4096

// RuntimeBackend is the contract a self-driving (wall-clock) backend
// implements; *runtime.Engine satisfies it structurally.
type RuntimeBackend interface {
	// Begin launches the run for d of virtual time and returns immediately.
	Begin(d simtime.Duration) error
	// WaitDone blocks until completion (or cancellation) and returns the
	// report.
	WaitDone() (*engine.Report, error)
	// Cancel requests an early, orderly shutdown.
	Cancel()
	// ApplyAsync executes a command at the backend's next safe point; At on
	// the command defers it to that virtual offset.
	ApplyAsync(cmd engine.Command)
	// Snapshot reports live per-operator metrics (thread-safe).
	Snapshot() engine.Snapshot
	// ScheduleAt registers fn at a virtual offset; pre-Start only.
	ScheduleAt(at simtime.Duration, fn func())
	// EveryVirtual runs fn at every interval of virtual time on one ticker
	// goroutine; pre-Start only (the controller loop).
	EveryVirtual(interval simtime.Duration, fn func())
	// SetOnEvent installs the event observer; pre-Start only.
	SetOnEvent(fn func(engine.Event))
	// SetOnCommand installs the applied-command observer (At stamped to the
	// virtual apply time); pre-Start only.
	SetOnCommand(fn func(engine.Command))
}

// marker is a pre-registered timeline annotation (phase transitions, skip
// notices). On the simulator it is emitted at the first safe point past its
// time, never touching the engine's event heap — so scenario goldens (which
// pin the heap's event count) are unaffected by observation.
type marker struct {
	at simtime.Duration
	ev engine.Event
}

// Run is a live (or finished) run on one backend.
type Run struct {
	d simtime.Duration

	// exactly one of sim / rt is set.
	sim *engine.Engine
	rt  RuntimeBackend

	mu            sync.Mutex
	started       bool
	finished      bool
	timeline      []engine.Event
	markers       []marker
	events        chan engine.Event
	eventsExposed bool // Events() has handed the channel out
	lost          int  // events dropped from the channel (timeline keeps them)

	// Synchronous observers (pre-Start registration): evObservers see every
	// event in emission order, cmdObservers every applied command with At
	// stamped to the apply time, samplers periodic snapshots. Unlike the
	// Events channel these are complete — the trace recorder's feed.
	evObservers  []func(engine.Event)
	cmdObservers []func(engine.Command)
	samplers     []*sampler

	// simulator driver plumbing
	cmds    chan engine.Command
	snapReq chan chan engine.Snapshot
	// pending tracks commands handed to the virtual clock but not yet
	// applied, so a cancelled run can surface them instead of letting them
	// vanish with the unexecuted clock events. Keyed by an injection serial.
	pending map[int]engine.Command
	cmdSeq  int

	done chan struct{}
	rep  *engine.Report
	err  error

	final engine.Snapshot // last snapshot, served after completion

	ctlAttached bool
	finishers   []func(*engine.Report)
}

// NewSim wraps a built (not yet begun) simulator engine in a run handle for
// d of virtual time. Wiring — ScheduleAt, Announce, deterministic Inject —
// happens between NewSim and Start.
func NewSim(e *engine.Engine, d simtime.Duration) *Run {
	r := newRun(d)
	r.sim = e
	e.SetOnEvent(r.emit)
	return r
}

// NewRuntime wraps a built real-time backend in a run handle.
func NewRuntime(b RuntimeBackend, d simtime.Duration) *Run {
	r := newRun(d)
	r.rt = b
	b.SetOnEvent(r.emit)
	return r
}

func newRun(d simtime.Duration) *Run {
	return &Run{
		d:       d,
		events:  make(chan engine.Event, defaultEventBuffer),
		cmds:    make(chan engine.Command, 64),
		snapReq: make(chan chan engine.Snapshot),
		pending: make(map[int]engine.Command),
		done:    make(chan struct{}),
	}
}

// sampler is one registered periodic snapshot observer. On the simulator the
// due times are served at safe points (like markers, they never touch the
// engine's event heap — observation cannot perturb a pinned run); on the
// real-time backend each sampler gets a virtual-time ticker.
type sampler struct {
	every simtime.Duration
	next  simtime.Duration
	fn    func(engine.Snapshot)
}

// SetEventBuffer resizes the Events channel (default 4096). Emission never
// blocks, so a smaller buffer drops more events on a slow consumer (LostEvents
// counts them; Report.Timeline is always complete). Pre-Start only, and it
// must precede the first Events() call — the channel identity changes.
func (r *Run) SetEventBuffer(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		panic("run: SetEventBuffer after Start")
	}
	if r.eventsExposed {
		panic("run: SetEventBuffer after Events")
	}
	r.events = make(chan engine.Event, n)
}

// Observe registers a synchronous event observer: fn sees every event, in
// emission order, with no loss — unlike the buffered Events channel. fn runs
// on the emitting goroutine under the handle's lock and must be fast and must
// not call back into the handle. Pre-Start only.
func (r *Run) Observe(fn func(engine.Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		panic("run: Observe after Start")
	}
	r.evObservers = append(r.evObservers, fn)
}

// ObserveCommands registers a synchronous observer of applied commands: fn
// sees every command a backend successfully applies (refusals land in
// Report.ChurnErrors instead), with At stamped to the virtual apply time and
// Origin preserved. Same constraints as Observe. Pre-Start only.
func (r *Run) ObserveCommands(fn func(engine.Command)) {
	r.mu.Lock()
	started := r.started
	if !started {
		r.cmdObservers = append(r.cmdObservers, fn)
	}
	wire := !started && len(r.cmdObservers) == 1 && r.rt != nil
	r.mu.Unlock()
	if started {
		panic("run: ObserveCommands after Start")
	}
	if wire {
		r.rt.SetOnCommand(r.observeCommand)
	}
}

// observeCommand fans an applied command out to the registered observers.
func (r *Run) observeCommand(cmd engine.Command) {
	r.mu.Lock()
	obs := r.cmdObservers
	r.mu.Unlock()
	for _, fn := range obs {
		fn(cmd)
	}
}

// SampleEvery registers a periodic snapshot observer: fn receives a Snapshot
// at least every interval of virtual time. On the simulator samples are
// served at the driver's safe points (granularity = the 100 ms slice), so
// sampling never perturbs the simulation; on the real-time backend fn runs on
// its own ticker goroutine and must be safe for that. Remember the Snapshot
// rate fields are observer-relative (see engine.Snapshot); concurrent
// snapshot consumers shorten each other's windows. Pre-Start only.
func (r *Run) SampleEvery(interval simtime.Duration, fn func(engine.Snapshot)) {
	if interval <= 0 {
		panic("run: SampleEvery with non-positive interval")
	}
	r.mu.Lock()
	started := r.started
	if !started {
		r.samplers = append(r.samplers, &sampler{every: interval, next: interval, fn: fn})
	}
	r.mu.Unlock()
	if started {
		panic("run: SampleEvery after Start")
	}
	if r.rt != nil {
		r.rt.EveryVirtual(interval, func() { fn(r.rt.Snapshot()) })
	}
}

// serveSamplers runs every sim sampler whose due time has passed (driver
// goroutine, at a safe point).
func (r *Run) serveSamplers(now simtime.Duration) {
	for _, s := range r.samplers {
		if s.next > now {
			continue
		}
		snap := r.sim.Snapshot()
		for s.next <= now {
			s.next += s.every
		}
		s.fn(snap)
	}
}

// Duration returns the requested virtual run length.
func (r *Run) Duration() simtime.Duration { return r.d }

// ScheduleAt registers fn to run at a virtual offset from run start, on the
// backend's clock. Pre-Start only (the scenario interpreter's key-phase
// hook); scheduling after Start panics — it could not be deterministic.
func (r *Run) ScheduleAt(at simtime.Duration, fn func()) {
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if started {
		panic("run: ScheduleAt after Start")
	}
	if r.sim != nil {
		r.sim.Clock().At(simtime.Time(0).Add(at), fn)
		return
	}
	r.rt.ScheduleAt(at, fn)
}

// Announce registers a timeline marker: ev is emitted (with At stamped) once
// the run reaches that virtual time. Markers are observation only — they are
// not engine events and do not perturb the simulation. Pre-Start only.
func (r *Run) Announce(at simtime.Duration, ev engine.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		panic("run: Announce after Start")
	}
	ev.At = simtime.Time(0).Add(at)
	r.markers = append(r.markers, marker{at: at, ev: ev})
}

// AttachController wires a closed control loop onto the run: every period of
// virtual time the backend takes a Snapshot at a safe point and hands it to
// fn; the commands fn returns are applied immediately at that same safe
// point. On the simulator the ticks are pre-scheduled clock events at exact
// multiples of period, so an autoscaled run is deterministic — provided fn
// derives its windows from the Snapshot's cumulative counters, not the
// observer-relative rate fields (see the engine.Snapshot doc comment). On the
// real-time backend the ticks run on the scaled wall clock and fn must be
// safe for concurrent timer goroutines. Pre-Start only; one controller per
// run (internal/autoscale multiplexes on top if ever needed).
func (r *Run) AttachController(period simtime.Duration, fn func(engine.Snapshot) []engine.Command) {
	if period <= 0 {
		panic("run: AttachController with non-positive period")
	}
	r.mu.Lock()
	started, dup := r.started, r.ctlAttached
	r.ctlAttached = true
	r.mu.Unlock()
	if started {
		panic("run: AttachController after Start")
	}
	if dup {
		panic("run: AttachController called twice")
	}
	if r.sim != nil {
		for at := period; at <= r.d; at += period {
			r.sim.Clock().At(simtime.Time(0).Add(at), func() {
				r.serveController(fn)
			})
		}
		return
	}
	// One ticker goroutine serves every tick for the whole horizon (a long
	// run at a short period must not fan out thousands of one-shot timers);
	// the backend stops the ticker when the run ends.
	r.rt.EveryVirtual(period, func() {
		for _, cmd := range fn(r.rt.Snapshot()) {
			cmd.At = 0 // next safe point: the tick already fixed the time
			cmd.Origin = "controller"
			r.rt.ApplyAsync(cmd)
		}
	})
}

// serveController runs one simulator control tick: a clock-event callback is
// a safe point (the event loop is between engine events), exactly like a
// scheduled command's.
func (r *Run) serveController(fn func(engine.Snapshot) []engine.Command) {
	for _, cmd := range fn(r.sim.Snapshot()) {
		cmd.At = 0
		cmd.Origin = "controller"
		r.applySim(cmd)
	}
}

// OnFinish registers fn to run on the completed report before Wait returns —
// the hook accounting layers (internal/autoscale) use to stamp their report
// sections. fn must not call back into the handle. Pre-Start only.
func (r *Run) OnFinish(fn func(*engine.Report)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		panic("run: OnFinish after Start")
	}
	r.finishers = append(r.finishers, fn)
}

// Inject submits a control command. Before Start, a command with At is
// scheduled deterministically at that virtual time (in injection order);
// after Start, it is applied at the backend's next safe point (At still
// defers it). Refused commands (infeasible churn) — and commands the run
// ends before applying — are recorded in Report.ChurnErrors, exactly like
// scenario events.
func (r *Run) Inject(cmd engine.Command) error {
	if cmd.At > r.d {
		return fmt.Errorf("run: command %v at %v is beyond the %v horizon", cmd, cmd.At, r.d)
	}
	if r.rt != nil {
		r.mu.Lock()
		finished := r.finished
		r.mu.Unlock()
		if finished {
			return fmt.Errorf("run: inject after completion")
		}
		r.rt.ApplyAsync(cmd)
		return nil
	}
	// Simulator: the whole submission is serialized under mu with Start and
	// finish, so pre-start scheduling can never race the driver's ownership
	// of the clock, and a post-start send either reaches the driver's
	// safe-point service or is surfaced by finish — never silently dropped.
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return fmt.Errorf("run: inject after completion")
	}
	if !r.started {
		r.scheduleSimLocked(cmd)
		return nil
	}
	select {
	case r.cmds <- cmd:
		return nil
	default:
		return fmt.Errorf("run: command queue full")
	}
}

// scheduleSimLocked hands a command to the virtual clock and registers it as
// pending until applied, so an early stop can surface it. Caller holds mu
// and owns the clock (pre-start wiring, or the driver at a safe point).
func (r *Run) scheduleSimLocked(cmd engine.Command) {
	id := r.cmdSeq
	r.cmdSeq++
	r.pending[id] = cmd
	r.sim.Clock().At(simtime.Time(0).Add(cmd.At), func() {
		r.mu.Lock()
		delete(r.pending, id)
		r.mu.Unlock()
		r.applySim(cmd)
	})
}

// applySim executes one command against the simulator engine (driver
// goroutine or virtual-clock callback; both are safe points).
func (r *Run) applySim(cmd engine.Command) {
	if err := r.sim.Apply(cmd); err != nil {
		label := cmd.Label
		if label == "" {
			label = "run: " + cmd.String()
		}
		r.sim.RecordChurnError(fmt.Sprintf("%s: %v", label, err))
		return
	}
	if cmd.Kind == engine.CmdSetRate {
		// Churn commands announce themselves through the engine's capacity
		// events; rate changes have no engine event, so record one here.
		r.emit(engine.Event{Kind: engine.EventCommandApplied, At: r.sim.Clock().Now(),
			Node: -1, Detail: cmd.String()})
	}
	if len(r.cmdObservers) > 0 {
		cmd.At = simtime.Duration(r.sim.Clock().Now())
		r.observeCommand(cmd)
	}
}

// Start launches the run. It returns immediately; cancel ctx to stop the run
// early at a safe point (Wait then returns the partial report).
func (r *Run) Start(ctx context.Context) {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		panic("run: Start called twice")
	}
	r.started = true
	sort.SliceStable(r.markers, func(i, j int) bool { return r.markers[i].at < r.markers[j].at })
	r.mu.Unlock()
	if r.sim != nil {
		go r.driveSim(ctx)
		return
	}
	go r.driveRuntime(ctx)
}

// driveSim owns the simulator engine for the whole run: it alternates
// event-slices with safe-point service (commands, snapshots, markers,
// cancellation). Without commands or cancellation the executed event
// sequence is byte-identical to one monolithic Engine.Run.
func (r *Run) driveSim(ctx context.Context) {
	e := r.sim
	e.Begin()
	now := simtime.Duration(0)
	nextMarker := 0
	var err error
	for now < r.d {
		if ctx.Err() != nil {
			err = ctx.Err()
			break
		}
		next := now + slice
		if next > r.d {
			next = r.d
		}
		e.StepUntil(simtime.Time(0).Add(next))
		now = next
		nextMarker = r.emitMarkers(nextMarker, now)
		r.serveSamplers(now)
		r.serveSafePoint()
	}
	// Commands the run ends before applying cannot land any more — both the
	// ones still queued and the ones already on the virtual clock past the
	// stopping point (cancellation). Surface them instead of letting a
	// nil-error Inject vanish silently.
	r.mu.Lock()
	ids := make([]int, 0, len(r.pending))
	for id := range r.pending {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		e.RecordChurnError(fmt.Sprintf("run: command %v not applied before the run ended", r.pending[id]))
		delete(r.pending, id)
	}
	r.mu.Unlock()
	for {
		select {
		case cmd := <-r.cmds:
			e.RecordChurnError(fmt.Sprintf("run: command %v not applied before the run ended", cmd))
		default:
			rep := e.Finish(now)
			// A cancelled run still reports every marker up to its stopping
			// point; later markers describe time that never happened.
			r.finish(rep, err)
			return
		}
	}
}

// emitMarkers flushes registered markers up to virtual time now.
func (r *Run) emitMarkers(from int, now simtime.Duration) int {
	for from < len(r.markers) && r.markers[from].at <= now {
		r.emit(r.markers[from].ev)
		from++
	}
	return from
}

// serveSafePoint drains pending commands and snapshot requests at a slice
// boundary.
func (r *Run) serveSafePoint() {
	for {
		select {
		case cmd := <-r.cmds:
			if simtime.Time(0).Add(cmd.At) > r.sim.Clock().Now() {
				r.mu.Lock()
				r.scheduleSimLocked(cmd)
				r.mu.Unlock()
			} else {
				r.applySim(cmd)
			}
		case ch := <-r.snapReq:
			ch <- r.sim.Snapshot()
		default:
			return
		}
	}
}

// driveRuntime supervises a self-driving backend: markers become scheduled
// emissions, cancellation forwards to the backend's orderly shutdown.
func (r *Run) driveRuntime(ctx context.Context) {
	for _, m := range r.markers {
		m := m
		r.rt.ScheduleAt(m.at, func() { r.emit(m.ev) })
	}
	if err := r.rt.Begin(r.d); err != nil {
		r.finish(nil, err)
		return
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			r.rt.Cancel()
		case <-stop:
		}
	}()
	rep, err := r.rt.WaitDone()
	close(stop)
	if err == nil {
		err = ctx.Err()
	}
	r.finish(rep, err)
}

// finish publishes the result and closes the event stream.
func (r *Run) finish(rep *engine.Report, err error) {
	r.mu.Lock()
	r.finished = true
	if r.sim != nil && rep != nil {
		// Catch any command that slipped into the queue after the driver's
		// final drain (the send above is serialized with this block).
		for {
			select {
			case cmd := <-r.cmds:
				rep.ChurnErrors = append(rep.ChurnErrors,
					fmt.Sprintf("run: command %v not applied before the run ended", cmd))
				continue
			default:
			}
			break
		}
	}
	if rep != nil {
		rep.Timeline = append([]engine.Event(nil), r.timeline...)
		for _, fn := range r.finishers {
			fn(rep)
		}
	}
	r.rep, r.err = rep, err
	if r.sim != nil {
		r.final = r.sim.Snapshot()
	} else if rep != nil {
		r.final = r.rt.Snapshot()
	}
	r.mu.Unlock()
	close(r.done)
	close(r.events)
}

// emit records ev on the timeline, hands it to the synchronous observers, and
// offers it to the Events channel without ever blocking the run. After finish
// (channel closed) a straggling emission is recorded but never sent.
func (r *Run) emit(ev engine.Event) {
	r.mu.Lock()
	r.timeline = append(r.timeline, ev)
	for _, fn := range r.evObservers {
		fn(ev)
	}
	if !r.finished {
		select {
		case r.events <- ev:
		default:
			r.lost++
		}
	}
	r.mu.Unlock()
}

// Events returns the live event stream. The channel closes when the run
// completes; slow consumers may miss events (Report.Timeline is complete,
// LostEvents counts the drops). Size the buffer with SetEventBuffer before
// the first call.
func (r *Run) Events() <-chan engine.Event {
	r.mu.Lock()
	r.eventsExposed = true
	ch := r.events
	r.mu.Unlock()
	return ch
}

// Done returns a channel closed when the run has completed.
func (r *Run) Done() <-chan struct{} { return r.done }

// Wait blocks until the run completes and returns the report. After a
// context cancellation it returns the partial report together with the
// context's error.
func (r *Run) Wait() (*engine.Report, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rep, r.err
}

// Snapshot returns live per-operator metrics: executor counts, offered and
// processed rates over the window since the previous snapshot, queue depths,
// and migrations so far. Served at the next safe point on the simulator;
// immediate on the real-time backend. After completion it returns the final
// snapshot.
func (r *Run) Snapshot() engine.Snapshot {
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if !started {
		if r.sim != nil {
			return r.sim.Snapshot()
		}
		return r.rt.Snapshot()
	}
	if r.rt != nil {
		select {
		case <-r.done:
			return r.finalSnapshot()
		default:
		}
		return r.rt.Snapshot()
	}
	ch := make(chan engine.Snapshot, 1)
	select {
	case r.snapReq <- ch:
		return <-ch
	case <-r.done:
		return r.finalSnapshot()
	}
}

func (r *Run) finalSnapshot() engine.Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.final
}

// LostEvents reports how many events the Events channel dropped on a slow
// consumer.
func (r *Run) LostEvents() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lost
}
