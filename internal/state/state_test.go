package state

import (
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func TestGetSetRoundTrip(t *testing.T) {
	s := NewStore(1024)
	a := s.Accessor(3, stream.Key(42))
	if a.Get() != nil {
		t.Fatal("fresh state not nil")
	}
	a.Set(7)
	if got := a.Get(); got != 7 {
		t.Fatalf("Get = %v", got)
	}
	// Same key through a new accessor sees the same slot.
	if got := s.Accessor(3, stream.Key(42)).Get(); got != 7 {
		t.Fatalf("second accessor = %v", got)
	}
	// Different key is independent.
	if s.Accessor(3, stream.Key(43)).Get() != nil {
		t.Fatal("cross-key leakage")
	}
	// Same key in a different shard is independent (keys are scoped by shard).
	if s.Accessor(4, stream.Key(42)).Get() != nil {
		t.Fatal("cross-shard leakage")
	}
}

func TestShardBytes(t *testing.T) {
	s := NewStore(32 << 10)
	if s.ShardBytes(9) != 32<<10 {
		t.Fatalf("default bytes = %d", s.ShardBytes(9))
	}
	s.SetShardBytes(9, 1<<20)
	if s.ShardBytes(9) != 1<<20 {
		t.Fatalf("bytes = %d", s.ShardBytes(9))
	}
}

func TestExtractInstallMovesState(t *testing.T) {
	src := NewStore(100)
	dst := NewStore(100)
	src.Accessor(1, stream.Key(10)).Set("a")
	src.Accessor(1, stream.Key(11)).Set("b")
	src.Accessor(2, stream.Key(10)).Set("other-shard")

	m := src.Extract(1)
	if m.KeyCount() != 2 || m.Bytes != 100 {
		t.Fatalf("migration keys=%d bytes=%d", m.KeyCount(), m.Bytes)
	}
	if src.HasShard(1) {
		t.Fatal("shard still resident after extract")
	}
	if !src.HasShard(2) {
		t.Fatal("unrelated shard disturbed")
	}
	dst.Install(m)
	if got := dst.Accessor(1, stream.Key(10)).Get(); got != "a" {
		t.Fatalf("migrated value = %v", got)
	}
	if got := dst.Accessor(1, stream.Key(11)).Get(); got != "b" {
		t.Fatalf("migrated value = %v", got)
	}
}

func TestExtractUntouchedShard(t *testing.T) {
	s := NewStore(500)
	m := s.Extract(7)
	if m.Bytes != 500 || m.KeyCount() != 0 {
		t.Fatalf("untouched shard migration: %+v", m)
	}
	NewStore(500).Install(m) // must be installable
}

func TestInstallOverResidentPanics(t *testing.T) {
	s := NewStore(10)
	s.Accessor(5, stream.Key(1)).Set(1)
	m := &Migration{Shard: 5, keys: map[stream.Key]*keyState{}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Install(m)
}

func TestCounts(t *testing.T) {
	s := NewStore(10)
	s.Accessor(0, stream.Key(1)).Set(1)
	s.Accessor(0, stream.Key(2)).Set(1)
	s.Accessor(1, stream.Key(1)).Set(1)
	if s.KeyCount(0) != 2 || s.KeyCount(1) != 1 || s.KeyCount(2) != 0 {
		t.Fatalf("KeyCount wrong: %d %d %d", s.KeyCount(0), s.KeyCount(1), s.KeyCount(2))
	}
	if s.TotalKeys() != 3 {
		t.Fatalf("TotalKeys = %d", s.TotalKeys())
	}
}

// Property: after any sequence of sets followed by a migration, every key
// written reads back the last written value from the destination store.
func TestMigrationPreservesAllWrites(t *testing.T) {
	f := func(keys []uint16, seed uint8) bool {
		src := NewStore(64)
		want := map[stream.Key]int{}
		for i, k := range keys {
			key := stream.Key(k)
			src.Accessor(1, key).Set(i)
			want[key] = i
		}
		dst := NewStore(64)
		dst.Install(src.Extract(1))
		for k, v := range want {
			if dst.Accessor(1, k).Get() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
