// Package state implements the in-memory, per-process key-value store that
// backs stateful operators (paper §3.2).
//
// Each process of an elastic executor hosts one Store. Tasks in that process
// read and update per-key state directly through the store — the paper's
// "intra-process state sharing" — so a shard reassigned between two tasks of
// the same process needs no state movement. Only when a shard moves across
// processes (nodes) must its state be extracted, shipped, and installed,
// which is what the migration cost model charges for.
package state

import (
	"fmt"

	"repro/internal/stream"
)

// ShardID identifies an executor-level shard within one executor.
type ShardID int

// keyState is the stored value plus bookkeeping for one key.
type keyState struct {
	value interface{}
}

// shardState holds all key states of one shard plus its nominal byte size.
type shardState struct {
	keys  map[stream.Key]*keyState
	bytes int // nominal resident size used by the migration cost model
}

// Store is the state store of one process. It is keyed by (shard, key): the
// shard level exists so that whole shards can be extracted and installed in
// O(1) map moves during migration.
type Store struct {
	shards map[ShardID]*shardState
	// DefaultShardBytes is the nominal size a shard reports if it was never
	// given an explicit size (operators configure StatePerShard).
	DefaultShardBytes int
}

// NewStore returns an empty process-local store.
func NewStore(defaultShardBytes int) *Store {
	return &Store{shards: make(map[ShardID]*shardState), DefaultShardBytes: defaultShardBytes}
}

func (s *Store) shard(id ShardID) *shardState {
	sh := s.shards[id]
	if sh == nil {
		sh = &shardState{keys: make(map[stream.Key]*keyState), bytes: s.DefaultShardBytes}
		s.shards[id] = sh
	}
	return sh
}

// HasShard reports whether the store currently holds state for shard id.
func (s *Store) HasShard(id ShardID) bool { return s.shards[id] != nil }

// ShardBytes returns the nominal resident size of shard id in bytes; a shard
// never touched reports the default size (the paper treats shard state size
// as a workload parameter, e.g. 32 KB).
func (s *Store) ShardBytes(id ShardID) int {
	if sh := s.shards[id]; sh != nil {
		return sh.bytes
	}
	return s.DefaultShardBytes
}

// SetShardBytes overrides the nominal size of shard id.
func (s *Store) SetShardBytes(id ShardID, bytes int) { s.shard(id).bytes = bytes }

// Accessor returns a stream.StateAccessor bound to (shard, key).
func (s *Store) Accessor(id ShardID, k stream.Key) stream.StateAccessor {
	return accessor{store: s, shard: id, key: k}
}

type accessor struct {
	store *Store
	shard ShardID
	key   stream.Key
}

func (a accessor) Get() interface{} {
	sh := a.store.shards[a.shard]
	if sh == nil {
		return nil
	}
	ks := sh.keys[a.key]
	if ks == nil {
		return nil
	}
	return ks.value
}

func (a accessor) Set(v interface{}) {
	sh := a.store.shard(a.shard)
	ks := sh.keys[a.key]
	if ks == nil {
		ks = &keyState{}
		sh.keys[a.key] = ks
	}
	ks.value = v
}

// KeyCount returns the number of distinct keys with state in shard id.
func (s *Store) KeyCount(id ShardID) int {
	if sh := s.shards[id]; sh != nil {
		return len(sh.keys)
	}
	return 0
}

// ResidentBytes sums the nominal sizes of all resident shards (the state a
// process would lose if its node failed).
func (s *Store) ResidentBytes() int64 {
	var b int64
	for _, sh := range s.shards {
		b += int64(sh.bytes)
	}
	return b
}

// TotalKeys returns the number of keys with state across all shards.
func (s *Store) TotalKeys() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.keys)
	}
	return n
}

// Extract removes shard id from the store and returns its contents for
// shipment to another process. Extracting a shard that is not resident
// returns an empty (but installable) migration package of default size: a
// shard that has received no tuples still has its configured state footprint.
func (s *Store) Extract(id ShardID) *Migration {
	sh := s.shards[id]
	if sh == nil {
		return &Migration{Shard: id, Bytes: s.DefaultShardBytes, keys: map[stream.Key]*keyState{}}
	}
	delete(s.shards, id)
	return &Migration{Shard: id, Bytes: sh.bytes, keys: sh.keys}
}

// Install inserts a migrated shard into the store. Installing over an
// existing shard is a consistency bug and panics: the reassignment protocol
// must have extracted it first.
func (s *Store) Install(m *Migration) {
	if s.shards[m.Shard] != nil {
		panic(fmt.Sprintf("state: installing shard %d over resident state", m.Shard))
	}
	s.shards[m.Shard] = &shardState{keys: m.keys, bytes: m.Bytes}
}

// Migration is an extracted shard in transit between processes.
type Migration struct {
	Shard ShardID
	Bytes int // nominal wire size charged to the network
	keys  map[stream.Key]*keyState
}

// KeyCount returns the number of keys carried by the migration.
func (m *Migration) KeyCount() int { return len(m.keys) }
