// Package golden defines a fixed set of deterministic reference scenarios and
// renders their reports as stable text fingerprints. The fingerprints captured
// from the pre-policy engine (tools/gengolden) are committed under
// internal/policy/testdata; the policy and harness tests regenerate them and
// require byte equality, guaranteeing that the pluggable control planes
// reproduce the monolithic paradigm switch exactly, event for event.
package golden

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// Scenario is one deterministic reference run.
type Scenario struct {
	Name string
	Run  func() *engine.Report
}

// microScenario builds a small micro-benchmark run that exercises the
// paradigm's full control plane: skewed keys, shuffles, and enough load that
// the RC controller repartitions and the dynamic scheduler moves cores.
func microScenario(p engine.Paradigm) Scenario {
	return Scenario{
		Name: "micro/" + p.String(),
		Run: func() *engine.Report {
			spec := workload.DefaultSpec()
			spec.Keys = 600
			spec.Skew = 0.6
			spec.ShufflesPerMin = 20 // one shuffle every 3 s
			m, err := core.NewMicro(core.MicroOptions{
				Paradigm:        p,
				Nodes:           4,
				SourceExecutors: 4,
				Y:               4,
				Z:               64,
				OpShards:        256,
				Spec:            spec,
				Rate:            20000,
				Seed:            5,
				WarmUp:          2 * simtime.Second,
			})
			if err != nil {
				panic(fmt.Sprintf("golden micro %v: %v", p, err))
			}
			return m.Engine.Run(10 * simtime.Second)
		},
	}
}

// sseScenario builds a small stock-exchange run covering the multi-operator
// topology (YPerOp, MeasureOp, sink latency wiring).
func sseScenario(p engine.Paradigm) Scenario {
	return Scenario{
		Name: "sse/" + p.String(),
		Run: func() *engine.Report {
			app, err := core.NewSSE(core.SSEOptions{
				Paradigm:        p,
				Nodes:           2,
				SourceExecutors: 2,
				Y:               2,
				Z:               16,
				OpShards:        64,
				Seed:            99,
				WarmUp:          2 * simtime.Second,
			})
			if err != nil {
				panic(fmt.Sprintf("golden sse %v: %v", p, err))
			}
			return app.Engine.Run(8 * simtime.Second)
		},
	}
}

// Scenarios lists every reference run in a fixed order.
func Scenarios() []Scenario {
	var out []Scenario
	for _, p := range []engine.Paradigm{
		engine.Static, engine.ResourceCentric, engine.NaiveEC, engine.Elasticutor,
	} {
		out = append(out, microScenario(p))
	}
	for _, p := range []engine.Paradigm{
		engine.Static, engine.ResourceCentric, engine.NaiveEC, engine.Elasticutor,
	} {
		out = append(out, sseScenario(p))
	}
	return out
}

// Fingerprint renders every deterministic field of a report. Events is the
// strongest signal: two runs executing the same number of simulation events
// with equal counters are, for all practical purposes, the same event trace.
// Wall-clock scheduling times are deliberately excluded.
func Fingerprint(name string, r *engine.Report) string {
	return fmt.Sprintf("%s gen=%d proc=%d blocked=%d dropped=%d events=%d "+
		"thr=%.3f latMean=%d latP50=%d latP99=%d latMax=%d "+
		"reassign=%d intra=%d inter=%d migB=%d remoteB=%d syncT=%d migT=%d "+
		"repart=%d repMoves=%d repB=%d repSync=%d repTime=%d "+
		"thrSeries=%d latSeries=%d",
		name, r.Generated, r.Processed, r.Blocked, r.Dropped, r.Events,
		r.ThroughputMean,
		int64(r.Latency.Mean()), int64(r.Latency.Quantile(0.5)),
		int64(r.Latency.Quantile(0.99)), int64(r.Latency.Max()),
		r.Reassignments, r.IntraNodeReassigns, r.InterNodeReassigns,
		r.MigrationBytes, r.RemoteTransferBytes,
		int64(r.SyncTimeTotal), int64(r.MigrationTimeTotal),
		r.Repartitions, r.RepartitionMove, r.RepartitionBytes,
		int64(r.RepartitionSync), int64(r.RepartitionTime),
		r.ThroughputSeries.Len(), r.LatencySeries.Len())
}

// Generate runs every scenario sequentially and returns the joined
// fingerprint block (one line per scenario, trailing newline).
func Generate() string {
	var b strings.Builder
	for _, s := range Scenarios() {
		fmt.Fprintln(&b, Fingerprint(s.Name, s.Run()))
	}
	return b.String()
}

// MicroWithPolicy runs a short micro-benchmark under an explicitly injected
// policy (the third-party extension path, bypassing Paradigm).
func MicroWithPolicy(pol policy.Policy) *engine.Report {
	spec := workload.DefaultSpec()
	spec.Keys = 500
	m, err := core.NewMicro(core.MicroOptions{
		Policy:          pol,
		Nodes:           2,
		SourceExecutors: 2,
		Y:               2,
		Z:               16,
		Spec:            spec,
		Rate:            2000,
		Seed:            11,
	})
	if err != nil {
		panic(fmt.Sprintf("golden custom-policy micro: %v", err))
	}
	return m.Engine.Run(4 * simtime.Second)
}
