// Package scheduler implements the CPU-to-executor assignment of paper §4.2:
// given a per-executor core allocation k (from the qmodel), it computes an
// assignment matrix X of physical cores to executors that minimizes the state
// migration cost C(X|X̃) subject to (a) node capacities, (b) the allocation
// requirement X_j >= k_j, and (c) the computation-locality constraint that
// data-intensive executors (per-core data intensity above φ) use only cores
// on their local node. The integer program is NP-hard (multiprocessor
// scheduling), so Algorithm 1's greedy heuristic is used, with φ doubling on
// infeasibility as the paper prescribes.
package scheduler

import (
	"fmt"
	"math"
)

// DefaultPhi is φ̃, the paper's default data-intensity floor: 512 KB/s, below
// which the benefit of locality is negligible (§4.2).
const DefaultPhi = 512 * 1024

// Input bundles the state the scheduler works from.
type Input struct {
	Capacity      []int     // c_i: cores per node, indexed by node
	Local         []int     // I(j): local (main-process) node per executor
	StateBytes    []float64 // s_j: aggregate state size per executor
	DataIntensity []float64 // per-core data intensity of executor j, bytes/s
	Existing      [][]int   // X̃[i][j]: current cores of executor j on node i
	Alloc         []int     // k_j: cores demanded per executor
	Phi           float64   // data-intensity threshold φ (0 → DefaultPhi)
}

func (in *Input) nodes() int     { return len(in.Capacity) }
func (in *Input) executors() int { return len(in.Alloc) }

// Result is a computed assignment.
type Result struct {
	X             [][]int // X[i][j]: cores of executor j on node i
	Phi           float64 // effective φ after any doubling
	Doublings     int     // how many times φ was doubled to reach feasibility
	MigrationCost float64 // C(X|X̃) in bytes
}

// validate panics on structurally inconsistent inputs — these are programmer
// errors in the engine, not runtime conditions.
func (in *Input) validate() {
	n, m := in.nodes(), in.executors()
	if len(in.Local) != m || len(in.StateBytes) != m || len(in.DataIntensity) != m {
		panic("scheduler: executor-indexed inputs disagree on m")
	}
	if len(in.Existing) != n {
		panic("scheduler: Existing has wrong node dimension")
	}
	for i := range in.Existing {
		if len(in.Existing[i]) != m {
			panic("scheduler: Existing has wrong executor dimension")
		}
	}
	for j, l := range in.Local {
		if l < 0 || l >= n {
			panic(fmt.Sprintf("scheduler: executor %d local node %d out of range", j, l))
		}
	}
}

// Assign runs Algorithm 1, doubling φ until a feasible assignment is found.
// It returns an error only if the total demand exceeds the total capacity
// (no φ can fix that; the qmodel caps allocations to the budget).
func Assign(in Input) (Result, error) {
	in.validate()
	if in.Phi <= 0 {
		in.Phi = DefaultPhi
	}
	totalCap, totalDemand := 0, 0
	for _, c := range in.Capacity {
		totalCap += c
	}
	for _, k := range in.Alloc {
		totalDemand += k
	}
	if totalDemand > totalCap {
		return Result{}, fmt.Errorf("scheduler: demand %d exceeds capacity %d", totalDemand, totalCap)
	}
	phi := in.Phi
	for d := 0; ; d++ {
		if x, ok := assignOnce(&in, phi); ok {
			return Result{X: x, Phi: phi, Doublings: d, MigrationCost: MigrationCost(&in, x)}, nil
		}
		phi *= 2
		if math.IsInf(phi, 1) {
			// With φ=∞ no executor is data-intensive, so only capacity
			// matters and we verified demand fits capacity: unreachable.
			panic("scheduler: infeasible even without locality constraints")
		}
	}
}

// assignOnce attempts Algorithm 1 with a fixed φ.
func assignOnce(in *Input, phi float64) ([][]int, bool) {
	n, m := in.nodes(), in.executors()
	// Work on a copy of X̃.
	x := make([][]int, n)
	free := make([]int, n)
	xj := make([]int, m) // X_j totals
	for i := 0; i < n; i++ {
		x[i] = append([]int(nil), in.Existing[i]...)
		used := 0
		for j := 0; j < m; j++ {
			used += x[i][j]
			xj[j] += x[i][j]
		}
		free[i] = in.Capacity[i] - used
		if free[i] < 0 {
			panic("scheduler: existing assignment exceeds node capacity")
		}
	}
	intensive := func(j int) bool { return in.DataIntensity[j] >= phi }

	// Normalization for constraint (c): a data-intensive executor must hold
	// only local cores, so release any remote ones (they become free and the
	// executor becomes under-provisioned, to be refilled locally below).
	for j := 0; j < m; j++ {
		if !intensive(j) {
			continue
		}
		for i := 0; i < n; i++ {
			if i == in.Local[j] || x[i][j] == 0 {
				continue
			}
			free[i] += x[i][j]
			xj[j] -= x[i][j]
			x[i][j] = 0
		}
	}

	// E+ sorted by data intensity, most intensive first (§4.2 prose).
	var under []int
	for j := 0; j < m; j++ {
		if xj[j] < in.Alloc[j] {
			under = append(under, j)
		}
	}
	sortByIntensityDesc(under, in.DataIntensity)

	// cMinus is the deallocation overhead C-_{ij}; cPlus the allocation
	// overhead C+_{ij} (paper §4.2 closed forms).
	cMinus := func(i, j int) float64 {
		if xj[j] <= 1 {
			// Deallocating the last core parks the executor; its whole state
			// must be handed to whichever core serves it next. Charge the full
			// state size so this is a last resort, but keep it finite so the
			// greedy loop can still make progress.
			return in.StateBytes[j]
		}
		return in.StateBytes[j] * float64(xj[j]-x[i][j]) / float64(xj[j]*(xj[j]-1))
	}
	cPlus := func(i, j int) float64 {
		if xj[j] == 0 {
			return 0 // no resident state: the first core is free to place
		}
		return in.StateBytes[j] * float64(xj[j]-x[i][j]) / float64(xj[j]*(xj[j]+1))
	}

	// takeCore moves one core on node i from source executor js (or the free
	// pool when js < 0) to executor j.
	takeCore := func(i, js, j int) {
		if js < 0 {
			free[i]--
		} else {
			x[i][js]--
			xj[js]--
		}
		x[i][j]++
		xj[j]++
	}

	for _, j := range under {
		for xj[j] < in.Alloc[j] {
			if intensive(j) {
				// Only cores on the local node are acceptable.
				i := in.Local[j]
				if free[i] > 0 {
					takeCore(i, -1, j)
					continue
				}
				// Steal from the cheapest over-provisioned executor with a
				// core on node i.
				best, bestCost := -1, math.Inf(1)
				for js := 0; js < m; js++ {
					if js == j || xj[js] <= in.Alloc[js] || x[i][js] == 0 {
						continue
					}
					if c := cMinus(i, js); c < bestCost {
						best, bestCost = js, c
					}
				}
				if best < 0 {
					return nil, false // FAIL: caller doubles φ
				}
				takeCore(i, best, j)
				continue
			}
			// Non-data-intensive: any node. Prefer free cores (no
			// deallocation cost), then the globally cheapest steal.
			bestI, bestJS, bestCost := -1, -1, math.Inf(1)
			for i := 0; i < n; i++ {
				if free[i] > 0 {
					if c := cPlus(i, j); c < bestCost {
						bestI, bestJS, bestCost = i, -1, c
					}
				}
				for js := 0; js < m; js++ {
					if js == j || xj[js] <= in.Alloc[js] || x[i][js] == 0 {
						continue
					}
					if c := cMinus(i, js) + cPlus(i, j); c < bestCost {
						bestI, bestJS, bestCost = i, js, c
					}
				}
			}
			if bestI < 0 {
				return nil, false
			}
			takeCore(bestI, bestJS, j)
		}
	}
	return x, true
}

func sortByIntensityDesc(js []int, intensity []float64) {
	// Insertion sort: the under-provisioned set is small and this keeps the
	// ordering stable for determinism.
	for a := 1; a < len(js); a++ {
		for b := a; b > 0 && intensity[js[b]] > intensity[js[b-1]]; b-- {
			js[b], js[b-1] = js[b-1], js[b]
		}
	}
}

// MigrationCost evaluates C(X|X̃) = Σ_j Σ_i max(0, s_j·x̃_ij/X̃_j − s_j·x_ij/X_j),
// the bytes of state that must leave their current node under the transition
// (paper §4.2, assuming shards spread evenly over an executor's cores).
func MigrationCost(in *Input, x [][]int) float64 {
	n, m := in.nodes(), in.executors()
	oldTotal := make([]int, m)
	newTotal := make([]int, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			oldTotal[j] += in.Existing[i][j]
			newTotal[j] += x[i][j]
		}
	}
	var cost float64
	for j := 0; j < m; j++ {
		if oldTotal[j] == 0 {
			continue // nothing resident yet, nothing to move out
		}
		for i := 0; i < n; i++ {
			before := in.StateBytes[j] * float64(in.Existing[i][j]) / float64(oldTotal[j])
			after := 0.0
			if newTotal[j] > 0 {
				after = in.StateBytes[j] * float64(x[i][j]) / float64(newTotal[j])
			}
			if before > after {
				cost += before - after
			}
		}
	}
	return cost
}

// NaiveAssign is the naive-EC scheduler of §5.4: it satisfies the same
// allocation k but ignores migration cost and locality entirely, scattering
// grants round-robin across nodes with capacity and revoking from
// over-provisioned executors in arbitrary (first-found) order. Used to
// quantify the value of the optimizations (Table 2).
func NaiveAssign(in Input) (Result, error) {
	in.validate()
	n, m := in.nodes(), in.executors()
	totalCap, totalDemand := 0, 0
	for _, c := range in.Capacity {
		totalCap += c
	}
	for _, k := range in.Alloc {
		totalDemand += k
	}
	if totalDemand > totalCap {
		return Result{}, fmt.Errorf("scheduler: demand %d exceeds capacity %d", totalDemand, totalCap)
	}
	x := make([][]int, n)
	free := make([]int, n)
	xj := make([]int, m)
	for i := 0; i < n; i++ {
		x[i] = append([]int(nil), in.Existing[i]...)
		used := 0
		for j := 0; j < m; j++ {
			used += x[i][j]
			xj[j] += x[i][j]
		}
		free[i] = in.Capacity[i] - used
	}
	// Revoke surplus first, scanning nodes in order (no cost model).
	for j := 0; j < m; j++ {
		for i := 0; i < n && xj[j] > in.Alloc[j]; i++ {
			for x[i][j] > 0 && xj[j] > in.Alloc[j] {
				x[i][j]--
				xj[j]--
				free[i]++
			}
		}
	}
	// Grant round-robin over nodes with free cores.
	node := 0
	for j := 0; j < m; j++ {
		for xj[j] < in.Alloc[j] {
			granted := false
			for probe := 0; probe < n; probe++ {
				i := (node + probe) % n
				if free[i] > 0 {
					free[i]--
					x[i][j]++
					xj[j]++
					node = (i + 1) % n
					granted = true
					break
				}
			}
			if !granted {
				return Result{}, fmt.Errorf("scheduler: naive assignment ran out of cores")
			}
		}
	}
	return Result{X: x, Phi: math.Inf(1), MigrationCost: MigrationCost(&in, x)}, nil
}

// Totals returns X_j per executor for an assignment matrix.
func Totals(x [][]int) []int {
	if len(x) == 0 {
		return nil
	}
	t := make([]int, len(x[0]))
	for i := range x {
		for j, v := range x[i] {
			t[j] += v
		}
	}
	return t
}
