package scheduler

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

// mkInput builds a small cluster input with uniform capacity.
func mkInput(nodes, capPer, m int) Input {
	in := Input{
		Capacity:      make([]int, nodes),
		Local:         make([]int, m),
		StateBytes:    make([]float64, m),
		DataIntensity: make([]float64, m),
		Existing:      make([][]int, nodes),
		Alloc:         make([]int, m),
	}
	for i := range in.Capacity {
		in.Capacity[i] = capPer
		in.Existing[i] = make([]int, m)
	}
	for j := 0; j < m; j++ {
		in.Local[j] = j % nodes
		in.StateBytes[j] = 1 << 20
	}
	return in
}

func checkInvariants(t *testing.T, in Input, res Result) {
	t.Helper()
	for i := range res.X {
		used := 0
		for _, v := range res.X[i] {
			if v < 0 {
				t.Fatalf("negative assignment at node %d: %v", i, res.X[i])
			}
			used += v
		}
		if used > in.Capacity[i] {
			t.Fatalf("node %d over capacity: %d > %d", i, used, in.Capacity[i])
		}
	}
	totals := Totals(res.X)
	for j, k := range in.Alloc {
		if totals[j] < k {
			t.Fatalf("executor %d under-provisioned: %d < %d", j, totals[j], k)
		}
	}
	// Locality constraint at the effective φ.
	for j := range in.Alloc {
		if in.DataIntensity[j] >= res.Phi {
			for i := range res.X {
				if i != in.Local[j] && res.X[i][j] > 0 {
					t.Fatalf("data-intensive executor %d has remote cores on node %d", j, i)
				}
			}
		}
	}
}

func TestAssignFromScratch(t *testing.T) {
	in := mkInput(4, 8, 4)
	in.Alloc = []int{8, 8, 8, 8}
	res, err := Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, in, res)
	if res.MigrationCost != 0 {
		t.Fatalf("fresh assignment has migration cost %v", res.MigrationCost)
	}
}

func TestAssignPrefersLocalAndCheap(t *testing.T) {
	in := mkInput(2, 4, 2)
	// Executor 0 on node 0 already has 2 cores there; it wants 3.
	in.Existing[0][0] = 2
	in.Alloc = []int{3, 1}
	res, err := Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, in, res)
	// Free cores exist on node 0; the grant should land there (C+ is lowest
	// where x_ij is highest).
	if res.X[0][0] != 3 {
		t.Fatalf("grant not local: X = %v", res.X)
	}
}

func TestAssignStealsFromOverProvisioned(t *testing.T) {
	in := mkInput(1, 4, 2)
	in.Local = []int{0, 0}
	in.Existing[0][0] = 4  // executor 0 holds the whole node
	in.Alloc = []int{2, 2} // now each should get 2
	res, err := Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, in, res)
	if res.X[0][0] != 2 || res.X[0][1] != 2 {
		t.Fatalf("X = %v", res.X)
	}
	// Intra-node core moves are migration-free thanks to state sharing: the
	// whole point of the executor-centric design.
	if res.MigrationCost != 0 {
		t.Fatalf("same-node steal should be free, cost %v", res.MigrationCost)
	}
}

func TestAssignCrossNodeStealCostsMigration(t *testing.T) {
	in := mkInput(2, 2, 2)
	in.Local = []int{0, 1}
	in.Existing[0][0] = 2
	in.Existing[1][0] = 2 // executor 0 owns the whole cluster
	in.Alloc = []int{2, 2}
	res, err := Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, in, res)
	if res.MigrationCost <= 0 {
		t.Fatal("shrinking an executor across nodes should cost migration")
	}
}

func TestAssignLocalityForcesPhiDoubling(t *testing.T) {
	// Two data-intensive executors share local node 0 with capacity 4 and
	// demand 3+3: impossible locally, so φ must double until one constraint
	// relaxes.
	in := mkInput(2, 4, 2)
	in.Local = []int{0, 0}
	in.DataIntensity = []float64{10 * DefaultPhi, 2 * DefaultPhi}
	in.Alloc = []int{3, 3}
	res, err := Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, in, res)
	if res.Doublings == 0 {
		t.Fatal("expected φ doubling")
	}
	if res.Phi <= DefaultPhi {
		t.Fatalf("φ = %v", res.Phi)
	}
	// The most intensive executor should have been served first and stayed
	// local while it was still constrained.
	totals := Totals(res.X)
	if totals[0] != 3 || totals[1] != 3 {
		t.Fatalf("totals = %v", totals)
	}
}

func TestAssignDataIntensiveDropsRemoteCores(t *testing.T) {
	in := mkInput(2, 4, 1)
	in.Local = []int{0}
	in.DataIntensity = []float64{DefaultPhi * 4}
	in.Existing[1][0] = 2 // currently has remote cores
	in.Existing[0][0] = 1
	in.Alloc = []int{3}
	res, err := Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, in, res)
	if res.X[1][0] != 0 || res.X[0][0] != 3 {
		t.Fatalf("remote cores kept: %v", res.X)
	}
}

func TestAssignDemandExceedsCapacity(t *testing.T) {
	in := mkInput(1, 2, 1)
	in.Alloc = []int{3}
	if _, err := Assign(in); err == nil {
		t.Fatal("expected error")
	}
	if _, err := NaiveAssign(in); err == nil {
		t.Fatal("expected naive error")
	}
}

func TestMigrationCostFormula(t *testing.T) {
	in := mkInput(2, 4, 1)
	in.StateBytes = []float64{1000}
	in.Existing[0][0] = 2  // all state on node 0, X̃_0 = 2
	x := [][]int{{1}, {1}} // move to 1 core on each node
	// before: node0 1000, node1 0; after: node0 500, node1 500 -> 500 leaves.
	if got := MigrationCost(&in, x); got != 500 {
		t.Fatalf("MigrationCost = %v, want 500", got)
	}
	// No existing state: free.
	in.Existing[0][0] = 0
	if got := MigrationCost(&in, x); got != 0 {
		t.Fatalf("MigrationCost = %v, want 0", got)
	}
}

func TestNaiveAssignMeetsAllocationButScatters(t *testing.T) {
	in := mkInput(4, 4, 2)
	in.Local = []int{0, 1}
	in.Alloc = []int{6, 6}
	res, err := NaiveAssign(in)
	if err != nil {
		t.Fatal(err)
	}
	totals := Totals(res.X)
	if totals[0] != 6 || totals[1] != 6 {
		t.Fatalf("naive totals = %v", totals)
	}
	// Round-robin scattering: executor 0's cores should span several nodes.
	span := 0
	for i := range res.X {
		if res.X[i][0] > 0 {
			span++
		}
	}
	if span < 2 {
		t.Fatalf("naive assignment did not scatter: %v", res.X)
	}
}

func TestAssignVsNaiveMigrationCost(t *testing.T) {
	// Start with a concentrated layout and grow demand: Algorithm 1 should
	// move no more state than the naive assigner (usually strictly less).
	in := mkInput(4, 8, 4)
	for j := 0; j < 4; j++ {
		in.Existing[j][j] = 4
		in.Local[j] = j
		in.StateBytes[j] = 32 << 20
	}
	in.Alloc = []int{6, 6, 6, 6}
	smart, err := Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveAssign(in)
	if err != nil {
		t.Fatal(err)
	}
	if smart.MigrationCost > naive.MigrationCost {
		t.Fatalf("Algorithm 1 migrates more than naive: %v > %v",
			smart.MigrationCost, naive.MigrationCost)
	}
}

// Property: Assign always satisfies capacity, allocation, and locality (at
// the returned φ) for random feasible inputs.
func TestAssignProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := simtime.NewRand(seed)
		nodes := 2 + rng.Intn(4)
		capPer := 2 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		in := mkInput(nodes, capPer, m)
		totalCap := nodes * capPer
		remaining := totalCap
		for j := 0; j < m; j++ {
			in.Local[j] = rng.Intn(nodes)
			in.DataIntensity[j] = rng.Float64() * 3 * DefaultPhi
			in.StateBytes[j] = float64(rng.Intn(64 << 20))
			k := rng.Intn(remaining/(m-j) + 1)
			in.Alloc[j] = k
			remaining -= k
		}
		// Seed a random valid existing assignment.
		freeByNode := append([]int(nil), in.Capacity...)
		for j := 0; j < m; j++ {
			cores := rng.Intn(3)
			for c := 0; c < cores; c++ {
				i := rng.Intn(nodes)
				if freeByNode[i] > 0 {
					in.Existing[i][j]++
					freeByNode[i]--
				}
			}
		}
		res, err := Assign(in)
		if err != nil {
			return false
		}
		for i := range res.X {
			used := 0
			for _, v := range res.X[i] {
				if v < 0 {
					return false
				}
				used += v
			}
			if used > in.Capacity[i] {
				return false
			}
		}
		totals := Totals(res.X)
		for j, k := range in.Alloc {
			if totals[j] < k {
				return false
			}
			if in.DataIntensity[j] >= res.Phi {
				for i := range res.X {
					if i != in.Local[j] && res.X[i][j] > 0 {
						return false
					}
				}
			}
		}
		return !math.IsNaN(res.MigrationCost) && res.MigrationCost >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTotals(t *testing.T) {
	x := [][]int{{1, 2}, {3, 0}}
	tot := Totals(x)
	if tot[0] != 4 || tot[1] != 2 {
		t.Fatalf("Totals = %v", tot)
	}
	if Totals(nil) != nil {
		t.Fatal("Totals(nil) should be nil")
	}
}
