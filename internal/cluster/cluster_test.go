package cluster

import (
	"testing"

	"repro/internal/simtime"
)

func newTest(nodes, cores int) (*simtime.Clock, *Cluster) {
	clock := simtime.NewClock()
	cfg := Default(nodes)
	cfg.CoresPerNode = cores
	return clock, New(clock, cfg)
}

func TestCoreInventory(t *testing.T) {
	_, c := newTest(4, 8)
	if c.TotalCores() != 32 {
		t.Fatalf("TotalCores = %d, want 32", c.TotalCores())
	}
	if c.Nodes() != 4 {
		t.Fatalf("Nodes = %d", c.Nodes())
	}
	// Cores are dense, ordered, and grouped by node.
	for i, core := range c.Cores() {
		if int(core.ID) != i {
			t.Fatalf("core %d has ID %d", i, core.ID)
		}
		if core.Node != NodeID(i/8) {
			t.Fatalf("core %d on node %d, want %d", i, core.Node, i/8)
		}
		if c.NodeOf(core.ID) != core.Node {
			t.Fatalf("NodeOf mismatch")
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(simtime.NewClock(), Config{Nodes: 0, CoresPerNode: 8})
}

func TestTransferDuration(t *testing.T) {
	_, c := newTest(2, 1)
	if d := c.TransferDuration(0, 0, 1<<20); d != 0 {
		t.Fatalf("intra-node transfer cost %v, want 0", d)
	}
	// 1 Gbps: 125 MB/s. 125000 bytes -> 1 ms + 0.5 ms latency.
	d := c.TransferDuration(0, 1, 125000)
	want := 1500 * simtime.Microsecond
	if d != want {
		t.Fatalf("TransferDuration = %v, want %v", d, want)
	}
}

func TestSendIntraNodeImmediate(t *testing.T) {
	clock, c := newTest(2, 1)
	var at simtime.Time = -1
	clock.At(simtime.Time(simtime.Second), func() {
		c.Send(1, 1, 1<<30, func() { at = clock.Now() })
	})
	clock.Run()
	if at != simtime.Time(simtime.Second) {
		t.Fatalf("intra-node send completed at %v", at)
	}
}

func TestSendNICQueueing(t *testing.T) {
	clock, c := newTest(2, 1)
	// Two back-to-back 125 KB transfers from node 0: the second must queue
	// behind the first on the NIC (serialize 1 ms each), both plus latency.
	var done []simtime.Time
	clock.At(0, func() {
		c.Send(0, 1, 125000, func() { done = append(done, clock.Now()) })
		c.Send(0, 1, 125000, func() { done = append(done, clock.Now()) })
	})
	clock.Run()
	if len(done) != 2 {
		t.Fatalf("done = %v", done)
	}
	ms := simtime.Millisecond
	if done[0] != simtime.Time(ms+ms/2) {
		t.Fatalf("first transfer at %v, want 1.5ms", done[0])
	}
	if done[1] != simtime.Time(2*ms+ms/2) {
		t.Fatalf("second transfer at %v, want 2.5ms (queued)", done[1])
	}
}

func TestSendSeparateNICsDoNotQueue(t *testing.T) {
	clock, c := newTest(3, 1)
	var done []simtime.Time
	clock.At(0, func() {
		c.Send(0, 2, 125000, func() { done = append(done, clock.Now()) })
		c.Send(1, 2, 125000, func() { done = append(done, clock.Now()) })
	})
	clock.Run()
	if done[0] != done[1] {
		t.Fatalf("independent NICs queued: %v", done)
	}
}

func TestNICBacklogAndAccounting(t *testing.T) {
	clock, c := newTest(2, 1)
	clock.At(0, func() {
		c.Send(0, 1, 250000, func() {})
		if got := c.NICBacklog(0); got != 2*simtime.Millisecond {
			t.Errorf("backlog = %v, want 2ms", got)
		}
		if c.NICBacklog(1) != 0 {
			t.Errorf("receiver NIC should be idle")
		}
	})
	clock.Run()
	if c.SentBytes(0) != 250000 {
		t.Fatalf("SentBytes = %d", c.SentBytes(0))
	}
	if c.TotalSentBytes() != 250000 {
		t.Fatalf("TotalSentBytes = %d", c.TotalSentBytes())
	}
	if c.NICBacklog(0) != 0 {
		t.Fatalf("backlog after run = %v", c.NICBacklog(0))
	}
}

func TestAddNodeGrowsInventory(t *testing.T) {
	_, c := newTest(2, 4)
	id := c.AddNode(0) // default CoresPerNode
	if id != 2 {
		t.Fatalf("new node ID = %d, want 2", id)
	}
	if c.Nodes() != 3 || c.AliveNodes() != 3 {
		t.Fatalf("Nodes = %d alive = %d, want 3/3", c.Nodes(), c.AliveNodes())
	}
	if c.TotalCores() != 12 {
		t.Fatalf("TotalCores = %d, want 12", c.TotalCores())
	}
	// New cores are appended with fresh IDs and belong to the new node.
	got := c.CoresOn(id)
	if len(got) != 4 || got[0] != 8 || got[3] != 11 {
		t.Fatalf("CoresOn(new) = %v", got)
	}
	// The new node's NIC works.
	clock := c.clock
	fired := false
	clock.At(0, func() { c.Send(id, 0, 1000, func() { fired = true }) })
	clock.Run()
	if !fired {
		t.Fatal("send from new node never completed")
	}
	small := c.AddNode(2)
	if len(c.CoresOn(small)) != 2 {
		t.Fatalf("explicit core count ignored: %v", c.CoresOn(small))
	}
}

func TestRemoveNodeKeepsSlotAndNIC(t *testing.T) {
	clock, c := newTest(3, 4)
	// Queue a transfer from node 1, then kill it: the transfer must still
	// deliver (the NIC drains), but capacity drops immediately.
	delivered := false
	clock.At(0, func() {
		c.Send(1, 0, 125000, func() { delivered = true })
		c.RemoveNode(1)
	})
	clock.Run()
	if !delivered {
		t.Fatal("in-flight transfer from dead node was lost")
	}
	if c.NodeAlive(1) {
		t.Fatal("node 1 still alive")
	}
	if c.Nodes() != 3 {
		t.Fatalf("Nodes = %d, want 3 (slots are stable)", c.Nodes())
	}
	if c.AliveNodes() != 2 {
		t.Fatalf("AliveNodes = %d, want 2", c.AliveNodes())
	}
	if c.TotalCores() != 8 {
		t.Fatalf("TotalCores = %d, want 8", c.TotalCores())
	}
	// Dead node's cores are still enumerable for evacuation.
	if len(c.CoresOn(1)) != 4 {
		t.Fatalf("CoresOn(dead) = %v", c.CoresOn(1))
	}
}

func TestRemoveNodeGuards(t *testing.T) {
	_, c := newTest(2, 1)
	c.RemoveNode(0)
	for name, n := range map[string]NodeID{"dead": 0, "last": 1, "bogus": 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RemoveNode(%s) did not panic", name)
				}
			}()
			c.RemoveNode(n)
		}()
	}
}

func TestDefaultMatchesPaperTestbed(t *testing.T) {
	cfg := Default(32)
	if cfg.Nodes != 32 || cfg.CoresPerNode != 8 {
		t.Fatalf("default shape %+v", cfg)
	}
	if cfg.BandwidthBps != 1e9 {
		t.Fatalf("default bandwidth %v", cfg.BandwidthBps)
	}
	c := New(simtime.NewClock(), cfg)
	if c.TotalCores() != 256 {
		t.Fatalf("total cores = %d, want 256", c.TotalCores())
	}
}
