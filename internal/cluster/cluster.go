// Package cluster models the compute substrate the paper evaluates on: a set
// of nodes, each with a fixed number of CPU cores and a network interface with
// finite bandwidth. It also provides the global core registry the dynamic
// scheduler allocates from.
//
// The paper's testbed is 32 EC2 t2.2xlarge nodes (8 cores, 32 GB) on 1 Gbps
// Ethernet; those are the defaults here.
package cluster

import (
	"fmt"

	"repro/internal/simtime"
)

// NodeID identifies a node in the cluster.
type NodeID int

// CoreID identifies one physical CPU core, unique across the cluster.
type CoreID int

// Core is one physical CPU core.
type Core struct {
	ID   CoreID
	Node NodeID
}

// Config describes a cluster to build.
type Config struct {
	Nodes        int              // number of nodes
	CoresPerNode int              // CPU cores per node
	BandwidthBps float64          // NIC bandwidth per node, bits per second
	Latency      simtime.Duration // one-way network latency between distinct nodes
}

// Default returns the paper's cluster: n nodes × 8 cores, 1 Gbps, 0.5 ms.
func Default(n int) Config {
	return Config{
		Nodes:        n,
		CoresPerNode: 8,
		BandwidthBps: 1e9,
		Latency:      500 * simtime.Microsecond,
	}
}

// Cluster is the simulated machine inventory plus its network.
type Cluster struct {
	cfg   Config
	cores []Core
	nics  []nic // per-node egress queue
	clock *simtime.Clock
}

type nic struct {
	busyUntil simtime.Time
	sentBytes int64
}

// New builds a cluster on the given clock. It panics on nonsensical configs;
// building a cluster is setup code, not a recoverable path.
func New(clock *simtime.Clock, cfg Config) *Cluster {
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		panic(fmt.Sprintf("cluster: invalid config %+v", cfg))
	}
	if cfg.BandwidthBps <= 0 {
		cfg.BandwidthBps = 1e9
	}
	c := &Cluster{cfg: cfg, clock: clock, nics: make([]nic, cfg.Nodes)}
	for n := 0; n < cfg.Nodes; n++ {
		for i := 0; i < cfg.CoresPerNode; i++ {
			c.cores = append(c.cores, Core{ID: CoreID(len(c.cores)), Node: NodeID(n)})
		}
	}
	return c
}

// Config returns the configuration the cluster was built with.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the number of nodes.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// TotalCores returns the number of cores across all nodes.
func (c *Cluster) TotalCores() int { return len(c.cores) }

// Cores returns all cores in ID order. The slice must not be mutated.
func (c *Cluster) Cores() []Core { return c.cores }

// Core returns the core with the given ID.
func (c *Cluster) Core(id CoreID) Core { return c.cores[id] }

// NodeOf returns the node hosting core id.
func (c *Cluster) NodeOf(id CoreID) NodeID { return c.cores[id].Node }

// TransferDuration returns the wire time for payload bytes between two nodes,
// excluding NIC queueing: latency + bytes/bandwidth. Transfers within a node
// are free (intra-process or loopback shared memory).
func (c *Cluster) TransferDuration(from, to NodeID, bytes int) simtime.Duration {
	if from == to {
		return 0
	}
	return c.cfg.Latency + c.serializeDuration(bytes)
}

func (c *Cluster) serializeDuration(bytes int) simtime.Duration {
	sec := float64(bytes) * 8 / c.cfg.BandwidthBps
	return simtime.Duration(sec * float64(simtime.Second))
}

// Send models a transfer of payload bytes from node `from` to node `to` and
// invokes done when the payload has fully arrived. The sender's NIC is a FIFO
// resource: concurrent transfers from the same node queue behind each other,
// which is what saturates a node's 1 Gbps uplink in the data-intensive
// experiments (Fig 10/11). Intra-node sends complete immediately (done is
// still deferred to a zero-delay event to keep causality uniform).
func (c *Cluster) Send(from, to NodeID, bytes int, done func()) {
	if from == to {
		c.clock.After(0, done)
		return
	}
	n := &c.nics[from]
	now := c.clock.Now()
	start := now
	if n.busyUntil > start {
		start = n.busyUntil
	}
	finish := start.Add(c.serializeDuration(bytes))
	n.busyUntil = finish
	n.sentBytes += int64(bytes)
	c.clock.At(finish.Add(c.cfg.Latency), done)
}

// NICBacklog returns how far in the future node n's NIC is already committed,
// a congestion signal used by tests and diagnostics.
func (c *Cluster) NICBacklog(n NodeID) simtime.Duration {
	b := c.nics[n].busyUntil
	now := c.clock.Now()
	if b <= now {
		return 0
	}
	return b.Sub(now)
}

// SentBytes returns the cumulative bytes sent from node n's NIC.
func (c *Cluster) SentBytes(n NodeID) int64 { return c.nics[n].sentBytes }

// TotalSentBytes sums SentBytes over all nodes.
func (c *Cluster) TotalSentBytes() int64 {
	var t int64
	for i := range c.nics {
		t += c.nics[i].sentBytes
	}
	return t
}
