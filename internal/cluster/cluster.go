// Package cluster models the compute substrate the paper evaluates on: a set
// of nodes, each with a fixed number of CPU cores and a network interface with
// finite bandwidth. It also provides the global core registry the dynamic
// scheduler allocates from.
//
// The paper's testbed is 32 EC2 t2.2xlarge nodes (8 cores, 32 GB) on 1 Gbps
// Ethernet; those are the defaults here.
package cluster

import (
	"fmt"

	"repro/internal/simtime"
)

// NodeID identifies a node in the cluster.
type NodeID int

// CoreID identifies one physical CPU core, unique across the cluster.
type CoreID int

// Core is one physical CPU core.
type Core struct {
	ID   CoreID
	Node NodeID
}

// Config describes a cluster to build.
type Config struct {
	Nodes        int              // number of nodes
	CoresPerNode int              // CPU cores per node
	BandwidthBps float64          // NIC bandwidth per node, bits per second
	Latency      simtime.Duration // one-way network latency between distinct nodes
}

// Default returns the paper's cluster: n nodes × 8 cores, 1 Gbps, 0.5 ms.
func Default(n int) Config {
	return Config{
		Nodes:        n,
		CoresPerNode: 8,
		BandwidthBps: 1e9,
		Latency:      500 * simtime.Microsecond,
	}
}

// Cluster is the simulated machine inventory plus its network. The inventory
// is no longer frozen at construction: AddNode grows it mid-run and
// RemoveNode marks a node dead (graceful drain and hard failure look the
// same at this layer — the node's cores stop counting toward capacity).
//
// Node and core IDs are append-only and never reused: a dead node keeps its
// slot (and its NIC entry, so in-flight transfers drain deterministically),
// it just stops being alive.
type Cluster struct {
	cfg   Config
	cores []Core
	alive []bool // per-node liveness, parallel to nics
	nics  []nic  // per-node egress queue
	clock *simtime.Clock
}

type nic struct {
	busyUntil simtime.Time
	sentBytes int64
}

// New builds a cluster on the given clock. It panics on nonsensical configs;
// building a cluster is setup code, not a recoverable path.
func New(clock *simtime.Clock, cfg Config) *Cluster {
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		panic(fmt.Sprintf("cluster: invalid config %+v", cfg))
	}
	if cfg.BandwidthBps <= 0 {
		cfg.BandwidthBps = 1e9
	}
	c := &Cluster{cfg: cfg, clock: clock, nics: make([]nic, cfg.Nodes)}
	c.alive = make([]bool, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		c.alive[n] = true
		for i := 0; i < cfg.CoresPerNode; i++ {
			c.cores = append(c.cores, Core{ID: CoreID(len(c.cores)), Node: NodeID(n)})
		}
	}
	return c
}

// Config returns the configuration the cluster was built with.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the number of node slots ever created, dead ones included.
// Node IDs are always in [0, Nodes()); use NodeAlive to filter.
func (c *Cluster) Nodes() int { return len(c.nics) }

// AliveNodes returns the number of live nodes.
func (c *Cluster) AliveNodes() int {
	n := 0
	for _, a := range c.alive {
		if a {
			n++
		}
	}
	return n
}

// NodeAlive reports whether node n is live.
func (c *Cluster) NodeAlive(n NodeID) bool {
	return int(n) >= 0 && int(n) < len(c.alive) && c.alive[n]
}

// AddNode grows the cluster by one node with the given core count (0 uses
// the configured CoresPerNode), returning the new node's ID. The new cores
// get fresh IDs appended after every existing one.
func (c *Cluster) AddNode(cores int) NodeID {
	if cores <= 0 {
		cores = c.cfg.CoresPerNode
	}
	id := NodeID(len(c.nics))
	c.nics = append(c.nics, nic{})
	c.alive = append(c.alive, true)
	for i := 0; i < cores; i++ {
		c.cores = append(c.cores, Core{ID: CoreID(len(c.cores)), Node: id})
	}
	return id
}

// RemoveNode marks node n dead: its cores stop counting toward TotalCores
// and CoresOn, but its slot and NIC remain so node IDs stay stable and
// transfers already queued on its uplink drain normally. Removing the last
// live node (or a node already dead) panics — the caller is expected to have
// validated the event.
func (c *Cluster) RemoveNode(n NodeID) {
	if !c.NodeAlive(n) {
		panic(fmt.Sprintf("cluster: RemoveNode(%d): node is not alive", n))
	}
	if c.AliveNodes() == 1 {
		panic("cluster: RemoveNode would kill the last live node")
	}
	c.alive[n] = false
}

// TotalCores returns the number of cores on live nodes.
func (c *Cluster) TotalCores() int {
	n := 0
	for _, core := range c.cores {
		if c.alive[core.Node] {
			n++
		}
	}
	return n
}

// CoresOn returns the core IDs hosted by node n, in ID order, regardless of
// the node's liveness (callers deciding what to evacuate need the dead
// node's cores too).
func (c *Cluster) CoresOn(n NodeID) []CoreID {
	var out []CoreID
	for _, core := range c.cores {
		if core.Node == n {
			out = append(out, core.ID)
		}
	}
	return out
}

// Cores returns all cores ever created in ID order, including those on dead
// nodes (filter with NodeAlive). The slice must not be mutated.
func (c *Cluster) Cores() []Core { return c.cores }

// Core returns the core with the given ID.
func (c *Cluster) Core(id CoreID) Core { return c.cores[id] }

// NodeOf returns the node hosting core id.
func (c *Cluster) NodeOf(id CoreID) NodeID { return c.cores[id].Node }

// TransferDuration returns the wire time for payload bytes between two nodes,
// excluding NIC queueing: latency + bytes/bandwidth. Transfers within a node
// are free (intra-process or loopback shared memory).
func (c *Cluster) TransferDuration(from, to NodeID, bytes int) simtime.Duration {
	if from == to {
		return 0
	}
	return c.cfg.Latency + c.serializeDuration(bytes)
}

func (c *Cluster) serializeDuration(bytes int) simtime.Duration {
	return simtime.FromSeconds(float64(bytes) * 8 / c.cfg.BandwidthBps)
}

// Send models a transfer of payload bytes from node `from` to node `to` and
// invokes done when the payload has fully arrived. The sender's NIC is a FIFO
// resource: concurrent transfers from the same node queue behind each other,
// which is what saturates a node's 1 Gbps uplink in the data-intensive
// experiments (Fig 10/11). Intra-node sends complete immediately (done is
// still deferred to a zero-delay event to keep causality uniform).
func (c *Cluster) Send(from, to NodeID, bytes int, done func()) {
	if from == to {
		c.clock.After(0, done)
		return
	}
	n := &c.nics[from]
	now := c.clock.Now()
	start := now
	if n.busyUntil > start {
		start = n.busyUntil
	}
	finish := start.Add(c.serializeDuration(bytes))
	n.busyUntil = finish
	n.sentBytes += int64(bytes)
	c.clock.At(finish.Add(c.cfg.Latency), done)
}

// NICBacklog returns how far in the future node n's NIC is already committed,
// a congestion signal used by tests and diagnostics.
func (c *Cluster) NICBacklog(n NodeID) simtime.Duration {
	b := c.nics[n].busyUntil
	now := c.clock.Now()
	if b <= now {
		return 0
	}
	return b.Sub(now)
}

// SentBytes returns the cumulative bytes sent from node n's NIC.
func (c *Cluster) SentBytes(n NodeID) int64 { return c.nics[n].sentBytes }

// TotalSentBytes sums SentBytes over all nodes.
func (c *Cluster) TotalSentBytes() int64 {
	var t int64
	for i := range c.nics {
		t += c.nics[i].sentBytes
	}
	return t
}
