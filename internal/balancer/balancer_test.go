package balancer

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestImbalance(t *testing.T) {
	if d := Imbalance([]float64{10, 10, 10}); d != 1 {
		t.Fatalf("δ = %v, want 1", d)
	}
	if d := Imbalance([]float64{30, 10, 20}); d != 1.5 {
		t.Fatalf("δ = %v, want 1.5", d)
	}
	if d := Imbalance(nil); d != 1 {
		t.Fatalf("δ(empty) = %v", d)
	}
	if d := Imbalance([]float64{0, 0}); d != 1 {
		t.Fatalf("δ(zero) = %v", d)
	}
}

func TestInitialAssignBalances(t *testing.T) {
	loads := []float64{9, 7, 5, 3, 3, 2, 1, 1, 1, 1}
	assign := InitialAssign(loads, 3)
	per := taskLoads(loads, assign, 3)
	if d := Imbalance(per); d > 1.2 {
		t.Fatalf("FFD imbalance = %v (loads %v)", d, per)
	}
}

func TestInitialAssignSingleTask(t *testing.T) {
	assign := InitialAssign([]float64{1, 2, 3}, 1)
	for _, a := range assign {
		if a != 0 {
			t.Fatal("single task assignment wrong")
		}
	}
}

func TestRebalanceReachesTheta(t *testing.T) {
	// All load starts on task 0; rebalancing must spread it below θ.
	loads := make([]float64, 64)
	assign := make([]int, 64)
	rng := simtime.NewRand(1)
	for i := range loads {
		loads[i] = 1 + rng.Float64()
	}
	moves := Rebalance(loads, assign, 8, 1.2, 0)
	Apply(assign, moves)
	per := taskLoads(loads, assign, 8)
	if d := Imbalance(per); d >= 1.2 {
		t.Fatalf("δ after rebalance = %v", d)
	}
}

func TestRebalanceNoopWhenBalanced(t *testing.T) {
	loads := []float64{1, 1, 1, 1}
	assign := []int{0, 1, 2, 3}
	if moves := Rebalance(loads, assign, 4, 1.2, 0); len(moves) != 0 {
		t.Fatalf("balanced input produced moves: %v", moves)
	}
}

func TestRebalanceMinimalForSingleHotShard(t *testing.T) {
	// One hot shard + many cold ones on the same task: a single move of a
	// cold shard can't fix it if the hot shard dominates, but moving cold
	// shards away is all that's possible; with hot=4, cold total=4 on task 0
	// and nothing on task 1, optimal is to move all cold shards (4 moves) or
	// fewer. Verify the move count stays minimal for an easy case.
	loads := []float64{10, 10}
	assign := []int{0, 0}
	moves := Rebalance(loads, assign, 2, 1.2, 0)
	if len(moves) != 1 {
		t.Fatalf("want exactly 1 move, got %v", moves)
	}
	if moves[0].From != 0 || moves[0].To != 1 {
		t.Fatalf("move = %+v", moves[0])
	}
}

func TestRebalanceRespectsMaxMoves(t *testing.T) {
	loads := make([]float64, 100)
	assign := make([]int, 100)
	for i := range loads {
		loads[i] = 1
	}
	moves := Rebalance(loads, assign, 10, 1.2, 3)
	if len(moves) > 3 {
		t.Fatalf("maxMoves ignored: %d moves", len(moves))
	}
}

func TestRebalanceDoesNotMutateInput(t *testing.T) {
	loads := []float64{5, 1, 1}
	assign := []int{0, 0, 0}
	Rebalance(loads, assign, 2, 1.2, 0)
	for _, a := range assign {
		if a != 0 {
			t.Fatal("input assignment mutated")
		}
	}
}

func TestRebalanceTerminatesOnUnfixableSkew(t *testing.T) {
	// One shard carries all load: no move sequence can balance it, the
	// algorithm must still terminate quickly.
	loads := []float64{100, 0.1, 0.1}
	assign := []int{0, 0, 0}
	moves := Rebalance(loads, assign, 4, 1.2, 0)
	if len(moves) > 3 {
		t.Fatalf("too many futile moves: %v", moves)
	}
}

// Property: Rebalance always terminates, never increases δ, and every move's
// From/To are valid distinct tasks with the shard previously on From.
func TestRebalanceProperties(t *testing.T) {
	f := func(seed uint64, tasksRaw, shardsRaw uint8) bool {
		tasks := 2 + int(tasksRaw%8)
		shards := 1 + int(shardsRaw%64)
		rng := simtime.NewRand(seed)
		loads := make([]float64, shards)
		assign := make([]int, shards)
		for i := range loads {
			loads[i] = rng.Float64() * 10
			assign[i] = rng.Intn(tasks)
		}
		before := Imbalance(taskLoads(loads, assign, tasks))
		cur := append([]int(nil), assign...)
		moves := Rebalance(loads, cur, tasks, 1.2, 0)
		for _, m := range moves {
			if m.From == m.To || m.From < 0 || m.To < 0 || m.From >= tasks || m.To >= tasks {
				return false
			}
			if cur[m.Shard] != m.From {
				return false
			}
			cur[m.Shard] = m.To
		}
		after := Imbalance(taskLoads(loads, cur, tasks))
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRemapForTaskRemoval(t *testing.T) {
	loads := []float64{4, 3, 2, 1}
	assign := []int{2, 2, 0, 1} // task 2 holds shards 0,1
	moves := RemapForTaskRemoval(loads, assign, 3, 2)
	if len(moves) != 2 {
		t.Fatalf("moves = %v", moves)
	}
	Apply(assign, moves)
	for s, tk := range assign {
		if tk == 2 {
			t.Fatalf("shard %d still on removed task", s)
		}
	}
	per := taskLoads(loads, assign, 3)
	if per[2] != 0 {
		t.Fatal("removed task still loaded")
	}
	// Heaviest orphan (4) should land on the lighter survivor (task 1 with 1).
	if assign[0] != 1 {
		t.Fatalf("heaviest orphan on task %d, want 1", assign[0])
	}
}

func TestRemapSingleSurvivorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RemapForTaskRemoval([]float64{1}, []int{0}, 1, 0)
}
