// Package balancer implements the intra-executor load-balancing policy of
// paper §3.1: shards are dynamically assigned to tasks so that the workload
// imbalance factor δ — the ratio of the maximum task load to the average task
// load — stays below a threshold θ (1.2 in the paper), while moving as few
// shards as possible (each move costs a state migration).
//
// The same package also serves the resource-centric baseline, which applies
// the identical policy at operator level (shards → executors).
package balancer

import "sort"

// DefaultTheta is the paper's imbalance threshold: at most 20% deviation of
// the most loaded task from the average.
const DefaultTheta = 1.2

// Move reassigns one shard from task From to task To.
type Move struct {
	Shard    int
	From, To int
}

// Imbalance returns δ = max(load)/avg(load) for per-task loads. A system
// with zero total load is perfectly balanced (δ = 1).
func Imbalance(taskLoad []float64) float64 {
	if len(taskLoad) == 0 {
		return 1
	}
	var max, sum float64
	for _, l := range taskLoad {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 1
	}
	avg := sum / float64(len(taskLoad))
	return max / avg
}

// taskLoads accumulates per-task load under an assignment.
func taskLoads(shardLoad []float64, assign []int, tasks int) []float64 {
	loads := make([]float64, tasks)
	for s, t := range assign {
		loads[t] += shardLoad[s]
	}
	return loads
}

// InitialAssign distributes shards over `tasks` tasks with First-Fit-
// Decreasing: shards sorted by load descending, each placed on the currently
// least-loaded task. Used when an executor (or the RC operator) starts up or
// when a task set changes so much that incremental moves are moot.
func InitialAssign(shardLoad []float64, tasks int) []int {
	if tasks <= 0 {
		panic("balancer: InitialAssign with no tasks")
	}
	order := make([]int, len(shardLoad))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return shardLoad[order[a]] > shardLoad[order[b]] })
	assign := make([]int, len(shardLoad))
	loads := make([]float64, tasks)
	for _, s := range order {
		best := 0
		for t := 1; t < tasks; t++ {
			if loads[t] < loads[best] {
				best = t
			}
		}
		assign[s] = best
		loads[best] += shardLoad[s]
	}
	return assign
}

// Rebalance refines the shard→task assignment in rounds until δ < θ or no
// single move improves δ (paper §3.1: in each round, among all reassignments
// that move a shard from the most overloaded task to the least loaded task,
// pick the one that reduces δ the most). It returns the moves to apply, in
// order; assign is not modified.
//
// maxMoves bounds the number of reassignments per invocation (0 = unlimited);
// the engine uses it to cap migration burst size.
func Rebalance(shardLoad []float64, assign []int, tasks int, theta float64, maxMoves int) []Move {
	if tasks <= 1 || len(shardLoad) == 0 {
		return nil
	}
	if theta <= 1 {
		theta = DefaultTheta
	}
	cur := append([]int(nil), assign...)
	loads := taskLoads(shardLoad, cur, tasks)

	// Per-task shard index so each round doesn't scan all shards.
	byTask := make([][]int, tasks)
	for s, t := range cur {
		byTask[t] = append(byTask[t], s)
	}

	var sum float64
	for _, l := range loads {
		sum += l
	}
	avg := sum / float64(tasks)
	if avg == 0 {
		return nil
	}

	var moves []Move
	for maxMoves == 0 || len(moves) < maxMoves {
		// Locate most and least loaded tasks.
		hi, lo := 0, 0
		for t := 1; t < tasks; t++ {
			if loads[t] > loads[hi] {
				hi = t
			}
			if loads[t] < loads[lo] {
				lo = t
			}
		}
		if loads[hi]/avg < theta {
			break // balanced enough
		}
		// Among shards on hi, find the move to lo that minimizes the new δ.
		// Moving load w: new(hi) = loads[hi]-w, new(lo) = loads[lo]+w; the
		// other tasks are unchanged, so the new max is
		// max(loads[hi]-w, loads[lo]+w, thirdMax).
		thirdMax := 0.0
		for t := 0; t < tasks; t++ {
			if t != hi && loads[t] > thirdMax {
				thirdMax = loads[t]
			}
		}
		bestShard, bestNewMax := -1, loads[hi]
		for _, s := range byTask[hi] {
			w := shardLoad[s]
			if w <= 0 {
				continue
			}
			nm := loads[hi] - w
			if loads[lo]+w > nm {
				nm = loads[lo] + w
			}
			if thirdMax > nm {
				nm = thirdMax
			}
			if nm < bestNewMax {
				bestNewMax = nm
				bestShard = s
			}
		}
		if bestShard < 0 {
			break // no single move improves the imbalance
		}
		w := shardLoad[bestShard]
		loads[hi] -= w
		loads[lo] += w
		cur[bestShard] = lo
		// Update the per-task index.
		for i, s := range byTask[hi] {
			if s == bestShard {
				byTask[hi][i] = byTask[hi][len(byTask[hi])-1]
				byTask[hi] = byTask[hi][:len(byTask[hi])-1]
				break
			}
		}
		byTask[lo] = append(byTask[lo], bestShard)
		moves = append(moves, Move{Shard: bestShard, From: hi, To: lo})
	}
	return moves
}

// Apply replays moves onto an assignment slice in place.
func Apply(assign []int, moves []Move) {
	for _, m := range moves {
		assign[m.Shard] = m.To
	}
}

// RemapForTaskRemoval reassigns all shards of a removed task to the least
// loaded surviving tasks and returns the moves. survivors maps old task IDs
// to keep; removed is the task going away.
func RemapForTaskRemoval(shardLoad []float64, assign []int, tasks int, removed int) []Move {
	loads := taskLoads(shardLoad, assign, tasks)
	var moves []Move
	// Move heaviest shards first (FFD) onto the least loaded survivor.
	var orphans []int
	for s, t := range assign {
		if t == removed {
			orphans = append(orphans, s)
		}
	}
	sort.SliceStable(orphans, func(a, b int) bool { return shardLoad[orphans[a]] > shardLoad[orphans[b]] })
	for _, s := range orphans {
		best := -1
		for t := 0; t < tasks; t++ {
			if t == removed {
				continue
			}
			if best < 0 || loads[t] < loads[best] {
				best = t
			}
		}
		if best < 0 {
			panic("balancer: removing the only task")
		}
		loads[best] += shardLoad[s]
		moves = append(moves, Move{Shard: s, From: removed, To: best})
	}
	return moves
}
