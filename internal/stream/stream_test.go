package stream

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestExecutorIndexStableAndInRange(t *testing.T) {
	f := func(k uint64, nRaw uint8) bool {
		n := 1 + int(nRaw)
		key := Key(k)
		i := key.ExecutorIndex(n)
		return i >= 0 && i < n && i == key.ExecutorIndex(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShardUniformity(t *testing.T) {
	const shards = 64
	counts := make([]int, shards)
	for k := 0; k < 100000; k++ {
		counts[Key(k).Shard(shards)]++
	}
	want := 100000.0 / shards
	for s, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.25 {
			t.Fatalf("shard %d has %d keys, want ~%v", s, c, want)
		}
	}
}

func TestShardDecorrelatedFromExecutor(t *testing.T) {
	// Keys colliding on the same executor must still spread across shards.
	const execs, shards = 32, 16
	hit := make(map[int]bool)
	for k, found := 0, 0; found < 2000 && k < 1000000; k++ {
		if Key(k).ExecutorIndex(execs) == 0 {
			hit[Key(k).Shard(shards)] = true
			found++
		}
	}
	if len(hit) != shards {
		t.Fatalf("keys of one executor cover only %d/%d shards", len(hit), shards)
	}
}

func TestOperatorShardDiffersFromExecutorShard(t *testing.T) {
	same := 0
	for k := 0; k < 10000; k++ {
		if Key(k).Shard(256) == Key(k).OperatorShard(256) {
			same++
		}
	}
	// Expect ~1/256 collisions, not systematic identity.
	if same > 200 {
		t.Fatalf("Shard and OperatorShard correlate: %d/10000 identical", same)
	}
}

func TestTupleTotalBytes(t *testing.T) {
	tp := Tuple{Bytes: 128, Weight: 10}
	if tp.TotalBytes() != 1280 {
		t.Fatalf("TotalBytes = %d", tp.TotalBytes())
	}
}

func TestFixedCost(t *testing.T) {
	c := FixedCost(simtime.Millisecond)
	if c(Tuple{}) != simtime.Millisecond {
		t.Fatal("FixedCost wrong")
	}
}

func buildDiamond(t *testing.T) *Topology {
	t.Helper()
	tp := NewTopology("diamond")
	src := tp.Add(&Operator{Name: "src", Source: true})
	a := tp.Add(&Operator{Name: "a", Cost: FixedCost(simtime.Millisecond)})
	b := tp.Add(&Operator{Name: "b", Cost: FixedCost(simtime.Millisecond)})
	sink := tp.Add(&Operator{Name: "sink", Cost: FixedCost(simtime.Microsecond)})
	tp.Connect(src.ID, a.ID)
	tp.Connect(src.ID, b.ID)
	tp.Connect(a.ID, sink.ID)
	tp.Connect(b.ID, sink.ID)
	return tp
}

func TestTopologyValidateOK(t *testing.T) {
	tp := buildDiamond(t)
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	order, err := tp.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[OperatorID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, op := range tp.Operators() {
		for _, d := range op.Downstream() {
			if pos[op.ID] >= pos[d] {
				t.Fatalf("topo order violated: %d before %d", op.ID, d)
			}
		}
	}
}

func TestTopologyEdges(t *testing.T) {
	tp := buildDiamond(t)
	sink := tp.Operator(3)
	if len(sink.Upstream()) != 2 {
		t.Fatalf("sink upstream = %v", sink.Upstream())
	}
	src := tp.Operator(0)
	if len(src.Downstream()) != 2 {
		t.Fatalf("src downstream = %v", src.Downstream())
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	tp := NewTopology("cyclic")
	s := tp.Add(&Operator{Name: "s", Source: true})
	a := tp.Add(&Operator{Name: "a", Cost: FixedCost(1)})
	b := tp.Add(&Operator{Name: "b", Cost: FixedCost(1)})
	tp.Connect(s.ID, a.ID)
	tp.Connect(a.ID, b.ID)
	tp.Connect(b.ID, a.ID)
	if err := tp.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidateRejectsNoSource(t *testing.T) {
	tp := NewTopology("nosrc")
	tp.Add(&Operator{Name: "a", Cost: FixedCost(1)})
	if err := tp.Validate(); err == nil {
		t.Fatal("missing source not detected")
	}
}

func TestValidateRejectsMissingCost(t *testing.T) {
	tp := NewTopology("nocost")
	s := tp.Add(&Operator{Name: "s", Source: true})
	a := tp.Add(&Operator{Name: "a"})
	tp.Connect(s.ID, a.ID)
	if err := tp.Validate(); err == nil {
		t.Fatal("missing cost model not detected")
	}
}

func TestValidateRejectsUnreachable(t *testing.T) {
	tp := NewTopology("orphan")
	tp.Add(&Operator{Name: "s", Source: true})
	tp.Add(&Operator{Name: "island", Cost: FixedCost(1)})
	if err := tp.Validate(); err == nil {
		t.Fatal("unreachable operator not detected")
	}
}

func TestValidateRejectsSourceWithUpstream(t *testing.T) {
	tp := NewTopology("badsrc")
	s1 := tp.Add(&Operator{Name: "s1", Source: true})
	s2 := tp.Add(&Operator{Name: "s2", Source: true})
	tp.Connect(s1.ID, s2.ID)
	if err := tp.Validate(); err == nil {
		t.Fatal("source with upstream not detected")
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	if err := NewTopology("empty").Validate(); err == nil {
		t.Fatal("empty topology not detected")
	}
}
