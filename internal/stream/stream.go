// Package stream defines the data-plane vocabulary of the reproduction:
// tuples, keys, the two-tier key-space partitioning (operator-level executor
// partitioning and executor-level shards), operators, and topologies.
//
// Terminology follows the paper (§2.1): a topology is a DAG of operators;
// each operator's key space is statically partitioned across its executors;
// inside an elastic executor, keys hash into shards which map dynamically to
// tasks.
package stream

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// Key identifies the partitioning key of a tuple (e.g. a stock ID).
type Key uint64

// hash64 is a Fibonacci/avalanche mix used for all key-space partitioning.
// It must be stable: routing tables and shard maps depend on it.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// ExecutorIndex returns the executor (in [0, executors)) statically bound to
// k at the operator level. Both the static and executor-centric paradigms use
// this fixed mapping; the resource-centric paradigm replaces it with a
// dynamic operator-level shard map.
func (k Key) ExecutorIndex(executors int) int {
	return int(hash64(uint64(k)) % uint64(executors))
}

// Shard returns the executor-level shard (in [0, shards)) for k. A second
// hash round decorrelates shard choice from executor choice so that hot keys
// landing on one executor still spread over its shards.
func (k Key) Shard(shards int) int {
	return int(hash64(hash64(uint64(k))+0x9E3779B97F4A7C15) % uint64(shards))
}

// OperatorShard returns the operator-level shard for the resource-centric
// paradigm, which repartitions the whole operator key space at a granularity
// of `shards` mini-partitions (8192 in the paper's RC setup).
func (k Key) OperatorShard(shards int) int {
	return int(hash64(hash64(uint64(k))^0xD1B54A32D192ED03) % uint64(shards))
}

// Tuple is one unit of data flowing through the topology. To keep event
// counts tractable at paper-scale rates, a Tuple may represent Weight
// identical tuples of the same key arriving back to back; all cost models
// (CPU, bytes) scale by Weight, and throughput/latency accounting unfolds it.
type Tuple struct {
	Key     Key
	Seq     uint64       // per-key sequence number, assigned at the source
	Weight  int          // number of real tuples this event represents (>= 1)
	Bytes   int          // size of ONE real tuple in bytes
	Born    simtime.Time // emission time at the source (latency baseline)
	Payload interface{}  // optional user payload (e.g. an SSE order)

	// Latency-anatomy accumulators (observation only — no control decision
	// reads them). Mark is the admission stamp toward the current operator:
	// the simulator stamps every tuple at routing, the runtime backend stamps
	// only 1-in-N sampled tuples at the source (Mark != 0 means "traced").
	// Svc/RPStall/MGStall accumulate attributed service time, §3.3
	// operator-pause stall, and executor shard-reassignment stall across
	// hops; the sink derives queue wait as the non-negative residual of
	// (now - Born), so the four stages tile end-to-end latency exactly.
	// Outputs inherit them from their input like Born, keeping multi-hop
	// attribution end to end.
	Mark    simtime.Time
	Svc     simtime.Duration
	RPStall simtime.Duration
	MGStall simtime.Duration
}

// TotalBytes returns the wire size of the whole batch.
func (t Tuple) TotalBytes() int { return t.Bytes * t.Weight }

// OperatorID identifies an operator within a topology.
type OperatorID int

// CostModel returns the virtual CPU time to process one real tuple. It may
// inspect the tuple (payload-dependent costs); Weight scaling is applied by
// the caller.
type CostModel func(t Tuple) simtime.Duration

// FixedCost returns a CostModel charging d per tuple.
func FixedCost(d simtime.Duration) CostModel {
	return func(Tuple) simtime.Duration { return d }
}

// Handler is the user-defined processing logic of an operator. It runs when
// a tuple is dequeued by a task, may read/update per-key state through the
// accessor, and returns the tuples to emit downstream (nil for none).
//
// State is an opaque per-key slot owned by the enclosing process's store;
// handlers treat it as their private data structure (paper §3.2).
type Handler func(t Tuple, state StateAccessor) []Tuple

// StateAccessor gives a handler read/write access to the state of the key
// currently being processed.
type StateAccessor interface {
	// Get returns the state value for the current key, or nil.
	Get() interface{}
	// Set replaces the state value for the current key.
	Set(v interface{})
}

// Operator is a vertex of the topology.
type Operator struct {
	ID   OperatorID
	Name string

	// Source marks spout-like operators that generate tuples rather than
	// consume them. Source operators have fixed parallelism and one core per
	// executor (they are outside the elasticity mechanism, like Storm spouts).
	Source bool

	// Cost is the per-tuple CPU cost model. Required for non-source operators.
	Cost CostModel

	// Handler is optional user logic (state updates + emissions). When nil,
	// the operator just absorbs tuples (sink) or forwards nothing.
	Handler Handler

	// OutBytes is the size of one emitted tuple when the Handler emits via
	// convention rather than explicit sizes. Emitted tuples with Bytes == 0
	// inherit this.
	OutBytes int

	// StatePerShard is the resident state size of one executor-level shard in
	// bytes; it determines state-migration cost (32 KB default, §5.1).
	StatePerShard int

	// Selectivity, when Handler is nil, is the average number of output
	// tuples emitted downstream per input tuple (0 for a sink). This lets
	// cost-model-only operators still generate downstream traffic.
	Selectivity float64

	downstream []OperatorID
	upstream   []OperatorID
}

// Downstream returns the IDs of operators consuming this operator's output.
func (o *Operator) Downstream() []OperatorID { return o.downstream }

// Upstream returns the IDs of operators feeding this operator.
func (o *Operator) Upstream() []OperatorID { return o.upstream }

// Topology is a DAG of operators.
type Topology struct {
	Name string
	ops  []*Operator
}

// NewTopology returns an empty topology.
func NewTopology(name string) *Topology { return &Topology{Name: name} }

// Add registers an operator and assigns its ID. The operator is described by
// the caller; Add fills in ID.
func (tp *Topology) Add(op *Operator) *Operator {
	op.ID = OperatorID(len(tp.ops))
	tp.ops = append(tp.ops, op)
	return op
}

// Connect declares a stream from operator `from` to operator `to`.
func (tp *Topology) Connect(from, to OperatorID) {
	f, t := tp.ops[from], tp.ops[to]
	f.downstream = append(f.downstream, to)
	t.upstream = append(t.upstream, from)
}

// Operators returns all operators in ID order.
func (tp *Topology) Operators() []*Operator { return tp.ops }

// Operator returns the operator with the given ID.
func (tp *Topology) Operator(id OperatorID) *Operator { return tp.ops[id] }

// Sources returns the source operators in ID order.
func (tp *Topology) Sources() []*Operator {
	var s []*Operator
	for _, op := range tp.ops {
		if op.Source {
			s = append(s, op)
		}
	}
	return s
}

// Validate checks structural sanity: at least one source, acyclicity, cost
// models on non-source operators, and that every operator is reachable from
// a source.
func (tp *Topology) Validate() error {
	if len(tp.ops) == 0 {
		return fmt.Errorf("stream: topology %q has no operators", tp.Name)
	}
	if len(tp.Sources()) == 0 {
		return fmt.Errorf("stream: topology %q has no source operator", tp.Name)
	}
	for _, op := range tp.ops {
		if !op.Source && op.Cost == nil {
			return fmt.Errorf("stream: operator %q has no cost model", op.Name)
		}
		if op.Source && len(op.upstream) > 0 {
			return fmt.Errorf("stream: source operator %q has upstream edges", op.Name)
		}
	}
	order, err := tp.TopoOrder()
	if err != nil {
		return err
	}
	reached := make(map[OperatorID]bool)
	for _, id := range order {
		op := tp.ops[id]
		if op.Source {
			reached[id] = true
			continue
		}
		for _, u := range op.upstream {
			if reached[u] {
				reached[id] = true
				break
			}
		}
	}
	for _, op := range tp.ops {
		if !reached[op.ID] {
			return fmt.Errorf("stream: operator %q unreachable from any source", op.Name)
		}
	}
	return nil
}

// TopoOrder returns the operator IDs in a topological order, or an error if
// the graph has a cycle.
func (tp *Topology) TopoOrder() ([]OperatorID, error) {
	indeg := make(map[OperatorID]int, len(tp.ops))
	for _, op := range tp.ops {
		indeg[op.ID] = len(op.upstream)
	}
	var frontier []OperatorID
	for id, d := range indeg {
		if d == 0 {
			frontier = append(frontier, id)
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	var order []OperatorID
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		for _, d := range tp.ops[id].downstream {
			indeg[d]--
			if indeg[d] == 0 {
				frontier = append(frontier, d)
			}
		}
	}
	if len(order) != len(tp.ops) {
		return nil, fmt.Errorf("stream: topology %q contains a cycle", tp.Name)
	}
	return order, nil
}
