package engine

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/executor"
	"repro/internal/simtime"
	"repro/internal/state"
)

// This file is the engine's capacity-change path: nodes joining, draining
// gracefully, and failing hard while a simulation runs. The mechanism is
// paradigm-agnostic — evacuation reuses the elastic reassignment protocol,
// retirement falls back to operator-level state handoff — and the installed
// policy is notified through Policy.CapacityChanged once the mechanical
// reaction is complete.

// CapacityChange enumerates the kinds of cluster capacity change.
type CapacityChange int

// The three cluster events a scenario can schedule.
const (
	NodeJoined CapacityChange = iota
	NodeDrained
	NodeFailed
)

func (c CapacityChange) String() string {
	switch c {
	case NodeJoined:
		return "join"
	case NodeDrained:
		return "drain"
	case NodeFailed:
		return "fail"
	}
	return fmt.Sprintf("capacity(%d)", int(c))
}

// CapacityEvent describes one completed cluster capacity change.
type CapacityEvent struct {
	Kind  CapacityChange
	Node  cluster.NodeID
	Cores int // cores added (joins only)
	At    simtime.Time
}

// SetOnCapacityChange installs an observer for completed capacity changes
// (experiments and tests; the policy hook is Policy.CapacityChanged).
func (e *Engine) SetOnCapacityChange(fn func(CapacityEvent)) { e.onCapacity = fn }

// RecordChurnError notes a scheduled capacity event the engine refused —
// valid in the spec but infeasible for the live placement. The run continues
// without the event; the report carries the refusal so it cannot pass
// silently.
func (e *Engine) RecordChurnError(msg string) { e.r.ChurnErrors = append(e.r.ChurnErrors, msg) }

func (e *Engine) capacityChanged(ev CapacityEvent) {
	kind := EventNodeJoin
	switch ev.Kind {
	case NodeDrained:
		kind = EventNodeDrain
	case NodeFailed:
		kind = EventNodeFail
	}
	e.emit(Event{Kind: kind, At: ev.At, Node: int(ev.Node), Cores: ev.Cores})
	if e.onCapacity != nil {
		e.onCapacity(ev)
	}
	e.pol.CapacityChanged()
}

// AddNode grows the cluster by one node (cores 0 uses the configured
// cores-per-node) and hands its cores to the free pool. The policy is
// notified immediately; an elastic control plane starts scheduling onto the
// new capacity right away, the baselines can't use it at all.
func (e *Engine) AddNode(cores int) cluster.NodeID {
	n := e.cluster.AddNode(cores)
	ids := e.cluster.CoresOn(n)
	e.freeCores[n] = append([]cluster.CoreID(nil), ids...)
	e.r.NodeJoins++
	e.capacityChanged(CapacityEvent{Kind: NodeJoined, Node: n, Cores: len(ids), At: e.clock.Now()})
	return n
}

// DrainNode removes node n gracefully: its free cores leave the pool, its
// source instances move to surviving nodes, and every executor holding cores
// there evacuates through the ordinary consistency protocol — shard state
// migrates off with the usual costs. Executors whose entire footprint was on
// n get a foothold elsewhere (a free core, else one stolen from the
// best-provisioned executor); when no core can be found anywhere the
// executor retires and its key range redistributes. Migrations complete
// asynchronously in virtual time; the node is dead for capacity purposes
// immediately.
func (e *Engine) DrainNode(n cluster.NodeID) error {
	if err := e.checkRemovable(n, true); err != nil {
		return err
	}
	delete(e.freeCores, n)
	e.relocateSources(n)
	// Rescue pass: operators that would lose every executor get first claim
	// on the foothold supply (preflightRemoval sized it per such operator) —
	// otherwise a non-critical executor of an earlier operator could consume
	// the last foothold and strand a later operator entirely.
	type slot struct {
		rt *opRuntime
		i  int
	}
	rescued := make(map[slot]bool)
	retireByOp := make(map[*opRuntime][]int)
	for _, rt := range e.opsInOrder() {
		survives := false
		for i := range rt.execs {
			for _, c := range rt.cores[i] {
				if node := e.cluster.NodeOf(c); node != n && e.cluster.NodeAlive(node) {
					survives = true
					break
				}
			}
			if survives {
				break
			}
		}
		if survives || len(rt.execs) == 0 {
			continue
		}
		if e.evacuate(rt, 0, n) {
			retireByOp[rt] = append(retireByOp[rt], 0)
		}
		rescued[slot{rt, 0}] = true
	}
	for _, rt := range e.opsInOrder() {
		retire := retireByOp[rt]
		for i := range rt.execs {
			if rescued[slot{rt, i}] {
				continue
			}
			if e.evacuate(rt, i, n) {
				retire = append(retire, i)
			}
		}
		e.retireExecutors(rt, retire, true)
	}
	e.cluster.RemoveNode(n)
	e.r.NodeDrains++
	e.capacityChanged(CapacityEvent{Kind: NodeDrained, Node: n, At: e.clock.Now()})
	return nil
}

// FailNode removes node n instantly: queued work and resident state on the
// node are destroyed (counted in the report), in-flight protocol steps
// touching the node abort, and orphaned key ranges re-route to survivors
// with fresh state. Executors homed on n rehome; executors that lose their
// last task retire.
func (e *Engine) FailNode(n cluster.NodeID) error {
	if err := e.checkRemovable(n, false); err != nil {
		return err
	}
	delete(e.freeCores, n)
	e.relocateSources(n)
	for _, rt := range e.opsInOrder() {
		var retire []int
		for i, ex := range rt.execs {
			var keep []cluster.CoreID
			for _, c := range rt.cores[i] {
				if e.cluster.NodeOf(c) != n {
					keep = append(keep, c)
				}
			}
			rt.cores[i] = keep
			// Unconditionally: even with no *recorded* cores on n, the
			// executor may still have a draining task, an in-flight
			// reassignment, or a state store there (a graceful core
			// revocation strips the record before the task finishes
			// draining). FailNode is a no-op for untouched executors.
			rep := ex.FailNode(n)
			e.r.LostStateBytes += rep.LostStateBytes
			if rep.Dead {
				retire = append(retire, i)
			}
		}
		e.retireExecutors(rt, retire, false)
	}
	e.cluster.RemoveNode(n)
	e.r.NodeFails++
	e.capacityChanged(CapacityEvent{Kind: NodeFailed, Node: n, At: e.clock.Now()})
	return nil
}

func (e *Engine) checkRemovable(n cluster.NodeID, graceful bool) error {
	if !e.cluster.NodeAlive(n) {
		return fmt.Errorf("engine: node %d is not alive", n)
	}
	if e.cluster.AliveNodes() <= 1 {
		return fmt.Errorf("engine: cannot remove the last live node")
	}
	return e.preflightRemoval(n, graceful)
}

// preflightRemoval rejects removals that would leave an operator with no
// executors, before anything is mutated. A hard failure kills every executor
// whose cores are all on n, so each operator needs at least one executor
// with a core elsewhere. A graceful drain can rescue a wholly-on-n operator
// through a foothold core, so it only fails when the foothold supply (free
// cores on surviving nodes, plus one donatable core per multi-core executor
// with a core elsewhere) cannot cover every operator needing a rescue.
// Scenario validation cannot see placement, so this is where a valid spec
// whose event is infeasible for the actual layout surfaces as an error.
func (e *Engine) preflightRemoval(n cluster.NodeID, graceful bool) error {
	usableCore := func(c cluster.CoreID) bool {
		node := e.cluster.NodeOf(c)
		return node != n && e.cluster.NodeAlive(node)
	}
	supply := 0
	for i := 0; i < e.cluster.Nodes(); i++ {
		id := cluster.NodeID(i)
		if id != n && e.cluster.NodeAlive(id) {
			supply += len(e.freeCores[id])
		}
	}
	needRescue := 0
	for _, rt := range e.opsInOrder() {
		survivors := 0
		for i := range rt.execs {
			elsewhere := false
			for _, c := range rt.cores[i] {
				if usableCore(c) {
					elsewhere = true
					break
				}
			}
			if elsewhere {
				survivors++
			}
			if graceful {
				usable := 0
				for _, c := range rt.cores[i] {
					if usableCore(c) {
						usable++
					}
				}
				if usable >= 2 {
					supply++ // can donate a usable core and keep one
				}
			}
		}
		if survivors > 0 {
			continue
		}
		if !graceful {
			return fmt.Errorf("engine: failing node %d would destroy every executor of %q", n, rt.op.Name)
		}
		needRescue++
	}
	if needRescue > supply {
		return fmt.Errorf("engine: draining node %d would leave an operator with no executors (%d rescues needed, %d foothold cores available)",
			n, needRescue, supply)
	}
	return nil
}

// relocateSources moves source instances off a dying node, cycling over the
// surviving nodes in ID order. Relocated instances ride along core-free
// (freeRide): the surviving nodes' cores are already spoken for, and the
// churn's capacity hit is modeled by the lost node itself.
func (e *Engine) relocateSources(n cluster.NodeID) {
	var targets []cluster.NodeID
	for i := 0; i < e.cluster.Nodes(); i++ {
		id := cluster.NodeID(i)
		if id != n && e.cluster.NodeAlive(id) {
			targets = append(targets, id)
		}
	}
	k := 0
	for _, op := range e.cfg.Topology.Sources() {
		for _, inst := range e.sources[op.ID] {
			if inst.node == n {
				inst.node = targets[k%len(targets)]
				inst.freeRide = true
				k++
			}
		}
	}
}

// evacuate clears one executor off a draining node through the graceful
// protocol. Reports true when the executor could not keep any core and must
// be retired by the caller.
func (e *Engine) evacuate(rt *opRuntime, i int, n cluster.NodeID) bool {
	ex := rt.execs[i]
	var dying, surviving []cluster.CoreID
	for _, c := range rt.cores[i] {
		if e.cluster.NodeOf(c) == n {
			dying = append(dying, c)
		} else {
			surviving = append(surviving, c)
		}
	}
	if len(dying) == 0 && ex.LocalNode() != n {
		return false
	}
	if len(surviving) == 0 {
		core, ok := e.footholdCore(n)
		if !ok {
			return true
		}
		ex.AddCore(core)
		rt.cores[i] = append(rt.cores[i], core)
		surviving = append(surviving, core)
	}
	if ex.LocalNode() == n {
		ex.Rehome(e.cluster.NodeOf(surviving[0]))
	}
	for _, c := range dying {
		// The shard migrations run through the normal consistency protocol;
		// the physical core is NOT released back to the pool — it leaves
		// with the node.
		if ex.RemoveCore(c) {
			e.removeCoreRecord(rt, i, c)
		}
	}
	return false
}

// footholdCore finds one core on a live node other than avoid: first from
// the free pool (nodes in ID order), else stolen from the best-provisioned
// executor (most cores; first in deterministic order on ties), which gives
// it up through the graceful protocol.
func (e *Engine) footholdCore(avoid cluster.NodeID) (cluster.CoreID, bool) {
	for i := 0; i < e.cluster.Nodes(); i++ {
		id := cluster.NodeID(i)
		if id == avoid || !e.cluster.NodeAlive(id) {
			continue
		}
		if c, ok := e.takeFreeCoreOn(id); ok {
			return c, true
		}
	}
	// Rank donors by how many *usable* cores they hold — counting cores on
	// the dying node would let a donation strand the donor itself. A donor
	// needs at least two usable cores so it keeps one after giving.
	var donorRt *opRuntime
	donorIdx, donorUsable := -1, 1
	var donated cluster.CoreID
	for _, rt := range e.opsInOrder() {
		for i := range rt.execs {
			usable := 0
			var last cluster.CoreID
			for _, c := range rt.cores[i] {
				node := e.cluster.NodeOf(c)
				if node != avoid && e.cluster.NodeAlive(node) {
					usable++
					last = c
				}
			}
			if usable > donorUsable {
				donorRt, donorIdx, donorUsable, donated = rt, i, usable, last
			}
		}
	}
	if donorIdx < 0 {
		return 0, false
	}
	if !donorRt.execs[donorIdx].RemoveCore(donated) {
		return 0, false
	}
	e.removeCoreRecord(donorRt, donorIdx, donated)
	return donated, true
}

// retireExecutors removes the executors at idxs (ascending) from rt's
// topology in one batch: remaining traffic re-routes to the surviving
// executors. Batching matters — a drain can retire several executors of one
// operator at once, and handing a retiree's shards to a *later* retiree
// would migrate them twice. A graceful retirement hands the operator-level
// shard state over (billed like any migration); a failed one writes it off —
// the loss was already counted by FailNode. Retiring an operator's last
// executor is unsupported; preflightRemoval rejects the triggering removals
// up front, so the panic here is an invariant backstop.
func (e *Engine) retireExecutors(rt *opRuntime, idxs []int, graceful bool) {
	if len(idxs) == 0 {
		return
	}
	if len(idxs) >= len(rt.execs) {
		panic(fmt.Sprintf("engine: churn would retire every executor of %q", rt.op.Name))
	}
	retiring := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		retiring[i] = true
		rt.execs[i].Kill()
	}
	var survivors []*executor.Executor
	newIdx := make(map[int]int, len(rt.execs)-len(idxs))
	for i, ex := range rt.execs {
		if !retiring[i] {
			newIdx[i] = len(survivors)
			survivors = append(survivors, ex)
		}
	}
	if graceful && rt.opRouting != nil {
		// Shards whose state the repartition protocol already extracted are
		// in transit to a surviving destination (migrateShards re-resolves
		// retired ones); everything else — including moves decided but not
		// yet released — hands its state to the survivor the routing remap
		// below will pick, and migrateShards skips those moves via its
		// dead-source check.
		extracted := make(map[int]bool)
		if rt.repartition != nil {
			rp := rt.repartition
			retiringEx := make(map[*executor.Executor]bool, len(idxs))
			for _, i := range idxs {
				retiringEx[rt.execs[i]] = true
			}
			for k, mv := range rp.moves {
				if rp.released[k] {
					extracted[mv.Shard] = true
				}
				// A released move whose *destination* is retiring: if the
				// state already arrived it sits in the retiree's store —
				// forward it to the fallback survivor and repin the move so
				// finishRepartition routes there. Still on the wire, the
				// delivery callback's dead-destination redirect does both.
				if !rp.released[k] || !retiringEx[rp.dstEx[k]] {
					continue
				}
				old := rp.dstEx[k]
				target := survivors[mv.Shard%len(survivors)]
				rp.dstEx[k] = target
				if old.HasResidentShard(state.ShardID(mv.Shard)) {
					mig := old.ReleaseShard(state.ShardID(mv.Shard))
					old.Stats.MigrationBytes += int64(mig.Bytes)
					e.cluster.Send(old.LocalNode(), target.LocalNode(), mig.Bytes, func() {
						target.AdoptShardIfAbsent(mig)
					})
				}
			}
		}
		for s, owner := range rt.opRouting {
			if !retiring[owner] || extracted[s] {
				continue
			}
			ex := rt.execs[owner]
			dst := survivors[s%len(survivors)]
			mig := ex.ReleaseShard(state.ShardID(s))
			ex.Stats.MigrationBytes += int64(mig.Bytes)
			e.cluster.Send(ex.LocalNode(), dst.LocalNode(), mig.Bytes, func() {
				// The destination came from the routing fallback formula, so
				// a racing churn migration may have gotten there first (or
				// retired it); first arrival wins, deterministically.
				dst.AdoptShardIfAbsent(mig)
			})
		}
	} else if graceful {
		// Elastic executors: their key subspaces rehash over the survivors;
		// bill each resident state handoff to a successor.
		for _, i := range idxs {
			ex := rt.execs[i]
			if bytes := ex.ResidentStateBytes(); bytes > 0 {
				succ := survivors[i%len(survivors)]
				ex.Stats.MigrationBytes += bytes
				e.cluster.Send(ex.LocalNode(), succ.LocalNode(), int(bytes), func() {})
			}
		}
	}
	if rt.opRouting != nil {
		for s, owner := range rt.opRouting {
			if retiring[owner] {
				rt.opRouting[s] = s % len(survivors)
			} else {
				rt.opRouting[s] = newIdx[owner]
			}
		}
	}
	var keptCores [][]cluster.CoreID
	for i := range rt.execs {
		if retiring[i] {
			ex := rt.execs[i]
			e.retired = append(e.retired, ex)
			rt.retiredExecs = append(rt.retiredExecs, ex)
			e.r.RetiredExecutors++
			delete(e.blockedW, ex)
			delete(e.lastMu, ex)
		} else {
			keptCores = append(keptCores, rt.cores[i])
		}
	}
	rt.execs = survivors
	rt.cores = keptCores
	e.rebuildElastic()
	// e.inflight entries of retired executors drain to zero through
	// OnDropped as in-flight tuples arrive at the dead executors.
}

// rebuildElastic re-derives the flat executor indexing after retirement.
func (e *Engine) rebuildElastic() {
	e.elastic = e.elastic[:0]
	e.elasticOp = e.elasticOp[:0]
	for _, rt := range e.opsInOrder() {
		for _, ex := range rt.execs {
			e.elastic = append(e.elastic, ex)
			e.elasticOp = append(e.elasticOp, rt)
		}
	}
}

// execIndex returns ex's current index in rt.execs, or -1 if retired.
func execIndex(rt *opRuntime, ex *executor.Executor) int {
	for i, cand := range rt.execs {
		if cand == ex {
			return i
		}
	}
	return -1
}
