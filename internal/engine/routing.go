package engine

import (
	"repro/internal/cluster"
	"repro/internal/executor"
	"repro/internal/simtime"
	"repro/internal/stream"
)

// startSources schedules the emission loops of every source instance, in
// topology order so event sequence numbers never depend on map iteration.
func (e *Engine) startSources() {
	for _, op := range e.cfg.Topology.Sources() {
		instances := e.sources[op.ID]
		drv := e.cfg.Sources[op.ID]
		for i, inst := range instances {
			inst := inst
			drv := drv
			share := float64(len(instances))
			// Offset start times so instances interleave deterministically.
			start := simtime.Duration(i) * simtime.Microsecond
			e.clock.After(start, func() { e.emitLoop(inst, drv, share) })
		}
	}
}

// emitLoop emits one tuple batch and reschedules itself at the instance's
// share of the offered rate, with exponential interarrival times (the M/M/k
// model's Poisson arrivals).
func (e *Engine) emitLoop(inst *sourceInstance, drv *SourceDriver, share float64) {
	if e.stopped {
		return
	}
	now := e.clock.Now()
	rate := drv.Rate(now) * e.rateFactor / share
	if rate <= 0 {
		// Workload momentarily silent; poll again shortly.
		e.clock.After(10*simtime.Millisecond, func() { e.emitLoop(inst, drv, share) })
		return
	}
	interval := float64(e.cfg.Batch) / rate // seconds per batch
	e.emitOne(inst, drv)
	wait := simtime.FromSeconds(interval * e.rng.ExpFloat64())
	if wait < simtime.Nanosecond {
		wait = simtime.Nanosecond
	}
	e.clock.After(wait, func() { e.emitLoop(inst, drv, share) })
}

// emitOne generates one batch and routes it downstream, subject to the
// backpressure ledger of first-hop executors.
func (e *Engine) emitOne(inst *sourceInstance, drv *SourceDriver) {
	now := e.clock.Now()
	key, bytes, payload := drv.Sample(now)
	t := stream.Tuple{
		Key:     key,
		Weight:  e.cfg.Batch,
		Bytes:   bytes,
		Born:    now,
		Payload: payload,
	}
	// Check capacity at every first-hop destination before committing: a
	// blocked destination stalls the source (credit-based backpressure).
	for _, d := range inst.op.Downstream() {
		rt := e.ops[d]
		if rt.paused {
			continue // RC pause: tuples buffer at the engine and replay later
		}
		ex := e.targetExecutor(rt, t.Key)
		if e.inflight[ex]+t.Weight > e.cfg.MaxInFlight {
			e.r.Blocked += int64(t.Weight)
			e.blockedW[ex] += int64(t.Weight)
			if rt.opShardLoad != nil {
				// A dynamic-routing controller must see the *offered*
				// per-shard load, or a saturated executor looks deceptively
				// balanced.
				rt.opShardLoad[t.Key.OperatorShard(e.cfg.OpShards)] += float64(t.Weight)
			}
			return
		}
	}
	e.r.observeGenerated(now, t.Weight, e.cfg.WarmUp)
	for _, d := range inst.op.Downstream() {
		e.route(inst.node, d, t)
	}
}

// targetExecutor resolves operator-level routing for a key through the
// policy's routing hook (a dynamic shard map for rc, the static hash for
// everyone else).
func (e *Engine) targetExecutor(rt *opRuntime, k stream.Key) *executor.Executor {
	return rt.execs[e.pol.Route(rt, k)]
}

// route delivers tuple t to operator d's responsible executor, charging the
// network hop from the emitting node to the executor's receiver on its local
// node. During an RC repartition the operator is paused and tuples buffer at
// the engine (the upstream executors have been told to hold their output).
func (e *Engine) route(fromNode cluster.NodeID, d stream.OperatorID, t stream.Tuple) {
	rt := e.ops[d]
	now := e.clock.Now()
	// Admission stamp toward this operator: hop latency (Mark → processed)
	// feeds the per-operator anatomy window. The simulator stamps every tuple;
	// replayed tuples are re-stamped so their pause wait (already attributed
	// to RPStall) is not double-counted as queue time.
	t.Mark = now
	if !e.replaying {
		// Replayed tuples were counted offered when they first arrived and
		// buffered at the paused operator.
		rt.offeredW += int64(t.Weight)
	}
	if rt.paused {
		rt.pauseBuf = append(rt.pauseBuf, pendingTuple{from: fromNode, t: t, at: now})
		return
	}
	if rt.opShardLoad != nil {
		rt.opShardLoad[t.Key.OperatorShard(e.cfg.OpShards)] += float64(t.Weight)
	}
	ex := e.targetExecutor(rt, t.Key)
	e.inflight[ex] += t.Weight
	e.cluster.Send(fromNode, ex.LocalNode(), t.TotalBytes(), func() {
		ex.Receive(t)
	})
}

// replayPaused re-routes tuples buffered during an RC pause, charging the
// network from their original upstream nodes.
func (e *Engine) replayPaused(rt *opRuntime) {
	buf := rt.pauseBuf
	rt.pauseBuf = nil
	now := e.clock.Now()
	e.replaying = true
	for _, p := range buf {
		e.r.RepartitionReplayed += int64(p.t.Weight)
		// The wait behind the §3.3 pause is repartition stall: stamp it onto
		// the tuple and into the operator's anatomy window.
		if stall := now.Sub(p.at); stall > 0 {
			p.t.RPStall += stall
			rt.winRPStall += stall * simtime.Duration(p.t.Weight)
		}
		e.route(p.from, rt.op.ID, p.t)
	}
	e.replaying = false
}
