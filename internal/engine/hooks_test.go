package engine

import (
	"testing"

	"repro/internal/executor"
	"repro/internal/simtime"
)

func TestForceShardReassignIntraAndInter(t *testing.T) {
	cfg := microConfig(Elasticutor, 2000, 41)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reports []executor.ReassignReport
	e.Clock().At(simtime.Time(2*simtime.Second), func() {
		if err := e.ForceShardReassign(false, func(r executor.ReassignReport) {
			reports = append(reports, r)
		}); err != nil {
			t.Errorf("intra force: %v", err)
		}
	})
	e.Clock().At(simtime.Time(4*simtime.Second), func() {
		if err := e.ForceShardReassign(true, func(r executor.ReassignReport) {
			reports = append(reports, r)
		}); err != nil {
			t.Errorf("inter force: %v", err)
		}
	})
	e.Run(8 * simtime.Second)
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	if reports[0].InterNode {
		t.Fatal("first forced reassign should be intra-node")
	}
	if !reports[1].InterNode {
		t.Fatal("second forced reassign should be inter-node")
	}
	if reports[0].MovedBytes != 0 {
		t.Fatal("intra-node move migrated state")
	}
	if reports[1].MovedBytes == 0 {
		t.Fatal("inter-node move migrated nothing")
	}
}

func TestForceShardReassignNeedsTwoNodes(t *testing.T) {
	cfg := microConfig(Elasticutor, 500, 43)
	cfg.Cluster.Nodes = 1
	cfg.SourceExecutors = 1
	cfg.Y = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	e.Clock().At(simtime.Time(simtime.Second), func() {
		if err := e.ForceShardReassign(true, nil); err != nil {
			failed = true
		}
	})
	e.Run(2 * simtime.Second)
	if !failed {
		t.Fatal("inter-node reassign on a 1-node cluster should fail")
	}
}

func TestForceRCMoveValidation(t *testing.T) {
	cfg := microConfig(Elasticutor, 500, 47)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ForceRCMove(1, 0); err == nil {
		t.Fatal("ForceRCMove should reject non-RC paradigms")
	}

	rcCfg := microConfig(ResourceCentric, 500, 47)
	rc, err := New(rcCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.ForceRCMove(9999, 0); err == nil {
		t.Fatal("out-of-range executor accepted")
	}
	sh, ok := rc.RCShardOn(0)
	if !ok {
		t.Fatal("executor 0 owns no shard at startup")
	}
	if err := rc.ForceRCMove(0, sh); err == nil {
		t.Fatal("no-op move accepted")
	}
	nodes := rc.RCExecutorNodes()
	if len(nodes) == 0 {
		t.Fatal("no RC executors")
	}
	done := false
	rc.SetOnRepartition(func(r RepartitionReport) {
		if r.Moves == 1 {
			done = true
		}
	})
	rc.Clock().At(simtime.Time(simtime.Second), func() {
		if err := rc.ForceRCMove(1, sh); err != nil {
			t.Errorf("valid move rejected: %v", err)
		}
	})
	rc.Run(6 * simtime.Second)
	if !done {
		t.Fatal("forced repartition never reported")
	}
}

func TestSetShardStateBytes(t *testing.T) {
	cfg := microConfig(Elasticutor, 1000, 53)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetShardStateBytes(1 << 20)
	var rep executor.ReassignReport
	e.Clock().At(simtime.Time(2*simtime.Second), func() {
		if err := e.ForceShardReassign(true, func(r executor.ReassignReport) { rep = r }); err != nil {
			t.Errorf("force: %v", err)
		}
	})
	e.Run(5 * simtime.Second)
	if rep.MovedBytes != 1<<20 {
		t.Fatalf("moved %d bytes, want 1MB", rep.MovedBytes)
	}
}

func TestElasticExecutorsAccessors(t *testing.T) {
	cfg := microConfig(Elasticutor, 500, 59)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.ElasticExecutors()) != cfg.Y {
		t.Fatalf("ElasticExecutors = %d, want %d", len(e.ElasticExecutors()), cfg.Y)
	}
	if ex := e.ExecutorsOf(1); len(ex) != cfg.Y {
		t.Fatalf("ExecutorsOf(calculator) = %d", len(ex))
	}
	if ex := e.ExecutorsOf(12345); ex != nil {
		t.Fatal("unknown op should return nil")
	}
}

func TestDisableStateSharingEndToEnd(t *testing.T) {
	// With the ablation on, even a same-node forced move reports bytes.
	cfg := microConfig(Elasticutor, 1000, 61)
	cfg.DisableStateSharing = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rep executor.ReassignReport
	e.Clock().At(simtime.Time(2*simtime.Second), func() {
		if err := e.ForceShardReassign(false, func(r executor.ReassignReport) { rep = r }); err != nil {
			t.Errorf("force: %v", err)
		}
	})
	e.Run(5 * simtime.Second)
	if rep.MovedBytes == 0 {
		t.Fatal("ablated intra-node move reported zero bytes")
	}
}
