package engine

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

func TestReportWarmupFiltering(t *testing.T) {
	r := newReport(Elasticutor, "elasticutor")
	warm := 5 * simtime.Second
	r.observeGenerated(simtime.Time(simtime.Second), 10, warm) // inside warm-up
	r.observeGenerated(simtime.Time(6*simtime.Second), 10, warm)
	r.observeProcessed(simtime.Time(simtime.Second), 7, warm)
	r.observeProcessed(simtime.Time(7*simtime.Second), 7, warm)
	r.observeLatency(simtime.Time(simtime.Second),
		metrics.StageObservation{Total: simtime.Millisecond, Weight: 1}, warm)
	r.observeLatency(simtime.Time(7*simtime.Second),
		metrics.StageObservation{Total: simtime.Millisecond, Weight: 1}, warm)
	if r.Generated != 10 || r.Processed != 7 {
		t.Fatalf("warm-up not excluded: gen=%d proc=%d", r.Generated, r.Processed)
	}
	if r.Latency.Count() != 1 {
		t.Fatalf("latency samples = %d", r.Latency.Count())
	}
}

func TestReportFinalizeRates(t *testing.T) {
	r := newReport(Static, "static")
	r.Processed = 50000
	r.MigrationBytes = 10 << 20
	r.RepartitionBytes = 10 << 20
	r.RemoteTransferBytes = 40 << 20
	r.MeasuredSpan = 10 * simtime.Second
	r.finalize()
	if r.ThroughputMean != 5000 {
		t.Fatalf("throughput = %v", r.ThroughputMean)
	}
	if r.MigrationRate != float64(20<<20)/10 {
		t.Fatalf("migration rate = %v", r.MigrationRate)
	}
	if r.RemoteRate != float64(40<<20)/10 {
		t.Fatalf("remote rate = %v", r.RemoteRate)
	}
}

func TestReportSchedulingWall(t *testing.T) {
	r := newReport(Elasticutor, "elasticutor")
	if r.MeanSchedulingWall() != 0 {
		t.Fatal("empty scheduling wall should be 0")
	}
	r.SchedulingWall = []time.Duration{time.Millisecond, 3 * time.Millisecond}
	if r.MeanSchedulingWall() != 2*time.Millisecond {
		t.Fatalf("mean wall = %v", r.MeanSchedulingWall())
	}
}

func TestReportString(t *testing.T) {
	r := newReport(ResourceCentric, "rc")
	r.MeasuredSpan = simtime.Second
	r.finalize()
	s := r.String()
	for _, want := range []string{"rc:", "thr=", "migr="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q: %s", want, s)
		}
	}
}

func TestParadigmString(t *testing.T) {
	cases := map[Paradigm]string{
		Static: "static", ResourceCentric: "rc", NaiveEC: "naive-ec",
		Elasticutor: "elasticutor", Paradigm(9): "paradigm(9)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestEveryRejectsNonPositive(t *testing.T) {
	cfg := microConfig(Static, 100, 3)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Every(0, func() {})
}
