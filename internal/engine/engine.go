// Package engine runs a stream topology on the simulated cluster. The engine
// is pure mechanism — cores, executors, wiring, routing tables, the global
// repartition protocol, measurement — and delegates every paradigm decision
// (placement shape, routing choice, control loops, scheduling) to an
// injected policy.Policy. The four paper paradigms — static, rc, naive-ec,
// elasticutor — live in internal/policy; Config.Paradigm selects among them
// for compatibility, Config.Policy injects any registered control plane.
//
// The engine is a single-threaded discrete-event simulation (see DESIGN.md
// for why that substitution preserves the paper's measurements).
package engine

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/executor"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/state"
	"repro/internal/stream"
)

// Paradigm selects the execution paradigm. It is an alias of the policy
// package's type so existing configs, reports, and tests keep working.
type Paradigm = policy.Paradigm

// The four approaches compared in the paper's evaluation.
const (
	Static          = policy.Static
	ResourceCentric = policy.ResourceCentric
	NaiveEC         = policy.NaiveEC
	Elasticutor     = policy.Elasticutor
)

// SourceDriver generates the tuples of one source operator.
type SourceDriver struct {
	// Rate is the aggregate offered load in tuples/s across the operator's
	// source executors. Throughput experiments set it above cluster capacity
	// and let backpressure find the sustainable maximum.
	Rate func(now simtime.Time) float64
	// Sample draws the next tuple's key, size and payload.
	Sample func(now simtime.Time) (stream.Key, int, interface{})
}

// Config configures a run. Zero values get defaults from Defaults().
type Config struct {
	Topology *stream.Topology
	Cluster  cluster.Config
	Paradigm Paradigm
	// Policy injects the elasticity control plane directly; when nil, the
	// built-in policy for Paradigm is used. A Policy instance must not be
	// shared between engines (use policy.ByName per run).
	Policy  policy.Policy
	Sources map[stream.OperatorID]*SourceDriver

	SourceExecutors int // parallel instances per source operator (upstream count)

	Y        int // executors per non-source operator (Elasticutor; paper: 32)
	Z        int // shards per elastic executor (paper: 256)
	OpShards int // operator-level shards for RC repartitioning (paper: 8192)

	// YPerOp overrides Y for specific operators (multi-operator topologies
	// where light analytics operators need fewer executors than the hot one).
	YPerOp map[stream.OperatorID]int

	Theta float64          // imbalance threshold θ
	Phi   float64          // data-intensity threshold φ̃
	Tmax  simtime.Duration // scheduler latency target

	SchedulePeriod  simtime.Duration // dynamic scheduler cadence (1 s)
	RebalancePeriod simtime.Duration // intra-executor rebalance cadence (500 ms)

	// MaxInFlight bounds the tuples outstanding inside each first-hop
	// operator executor (backpressure credits), in weight units.
	MaxInFlight int

	// Batch makes every generated tuple event represent this many identical
	// tuples (weight); costs and accounting scale accordingly. Keeps event
	// counts tractable at paper-scale rates.
	Batch int

	// Control-plane cost model (see DESIGN.md calibration table).
	CtrlPerUpstream   simtime.Duration // RC per-upstream pause/update cost
	ControlDelay      simtime.Duration // executor-local control cost
	SerializeOverhead simtime.Duration // per cross-node state migration

	// FixedCores pins every elastic executor to exactly this many cores and
	// disables the dynamic scheduler (Fig 10–12 single-executor scalability;
	// 0 = scheduler-driven). Rebalancing stays active.
	FixedCores int
	// SourcesFree places source instances without reserving cores. Used only
	// by the Fig 9a fan-in sweep, where upstream executor count must exceed
	// the core count; sources are rate-driven and consume no simulated CPU.
	SourcesFree bool

	// DisableStateSharing forwards the §3.2 ablation to every executor:
	// shard moves pay serialization even within a process.
	DisableStateSharing bool

	Seed        uint64
	AssertOrder bool

	// WarmUp excludes the initial transient from the report's metrics.
	WarmUp simtime.Duration
	// MeasureOp identifies the operator whose processing rate is reported as
	// "throughput" (-1 = first non-source operator).
	MeasureOp stream.OperatorID
}

// Defaults fills unset fields with the paper's settings.
func (c Config) Defaults() Config {
	if c.SourceExecutors == 0 {
		c.SourceExecutors = 32
	}
	if c.Y == 0 {
		c.Y = 32
	}
	if c.Z == 0 {
		c.Z = 256
	}
	if c.OpShards == 0 {
		c.OpShards = 8192
	}
	if c.Theta == 0 {
		c.Theta = 1.2
	}
	if c.Phi == 0 {
		c.Phi = 512 * 1024
	}
	if c.Tmax == 0 {
		c.Tmax = 50 * simtime.Millisecond
	}
	if c.SchedulePeriod == 0 {
		c.SchedulePeriod = simtime.Second
	}
	if c.RebalancePeriod == 0 {
		c.RebalancePeriod = 500 * simtime.Millisecond
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2048
	}
	if c.Batch == 0 {
		c.Batch = 1
	}
	if c.CtrlPerUpstream == 0 {
		c.CtrlPerUpstream = 2 * simtime.Millisecond
	}
	if c.ControlDelay == 0 {
		c.ControlDelay = simtime.Millisecond
	}
	if c.SerializeOverhead == 0 {
		c.SerializeOverhead = 3500 * simtime.Microsecond
	}
	if c.MeasureOp == 0 {
		c.MeasureOp = -1
	}
	return c
}

// sourceInstance is one parallel instance of a source operator.
type sourceInstance struct {
	op   *stream.Operator
	node cluster.NodeID
	// freeRide marks an instance relocated off a removed node: it squeezes
	// onto its new node without a reserved core (the surviving nodes' cores
	// are already spoken for; the churn's capacity hit is the lost node).
	freeRide bool
}

// opRuntime is the per-operator runtime state. It doubles as the policy's
// view of the operator (policy.Operator).
type opRuntime struct {
	op    *stream.Operator
	execs []*executor.Executor
	// cores[i] lists the concrete cores executor i holds (parallel to execs).
	cores [][]cluster.CoreID

	firstHop bool // directly downstream of a source (backpressure applies)
	// opSharded organizes executor state by operator-level shard (baseline
	// placements) instead of the elastic executors' internal shards.
	opSharded bool

	// Dynamic-routing state (placements with Placement.DynamicRouting).
	opRouting   []int     // operator shard → executor index
	opShardLoad []float64 // arrivals per operator shard in current window
	paused      bool
	pauseBuf    []pendingTuple
	repartition *rcRepartition

	// Live-observation counters (Run-handle snapshots and the per-operator
	// report): cumulative tuple weight admitted toward / processed by this
	// operator, plus the previous snapshot's cut of each.
	offeredW      int64
	processedW    int64
	lastOffered   int64
	lastProcessed int64
	// retiredExecs keeps executors churn removed from this operator, so the
	// per-operator report can still bill their historical stats.
	retiredExecs []*executor.Executor

	// Latency-anatomy accumulation, folded on the metrics window tick:
	// winRPStall collects §3.3 pause stall × weight attributed at replay time;
	// anatTotals are the cumulative post-warm-up per-stage totals; lastHopP50/
	// lastHopP99 hold the last non-empty window's hop-latency percentiles
	// (the Snapshot surface).
	winRPStall simtime.Duration
	anatTotals [metrics.NumStages]simtime.Duration
	lastHopP50 simtime.Duration
	lastHopP99 simtime.Duration
}

// policy.Operator implementation.

// Meta returns the topology operator.
func (rt *opRuntime) Meta() *stream.Operator { return rt.op }

// Executors returns the current executor count.
func (rt *opRuntime) Executors() int { return len(rt.execs) }

// Routing returns the live operator-shard routing table (nil unless the
// placement requested dynamic routing).
func (rt *opRuntime) Routing() []int { return rt.opRouting }

// ShardLoads returns arrivals per operator shard in the current window.
func (rt *opRuntime) ShardLoads() []float64 { return rt.opShardLoad }

// ResetShardLoads starts a fresh measurement window. The previous slice is
// left intact for readers that captured it.
func (rt *opRuntime) ResetShardLoads() {
	rt.opShardLoad = make([]float64, len(rt.opShardLoad))
}

// Repartitioning reports whether a global repartition is in flight.
func (rt *opRuntime) Repartitioning() bool { return rt.repartition != nil || rt.paused }

// pendingTuple is a tuple held at the engine while its operator is paused by
// an RC repartition, remembering where it came from and when it was buffered
// (the replay attributes the wait to the tuple's repartition stage).
type pendingTuple struct {
	from cluster.NodeID
	t    stream.Tuple
	at   simtime.Time
}

// Engine is one configured simulation.
type Engine struct {
	cfg     Config
	pol     policy.Policy
	clock   *simtime.Clock
	cluster *cluster.Cluster
	rng     *simtime.Rand

	sources   map[stream.OperatorID][]*sourceInstance
	ops       map[stream.OperatorID]*opRuntime
	elastic   []*executor.Executor // all executors of non-source operators
	elasticOp []*opRuntime         // parallel: owning op of each elastic executor
	freeCores map[cluster.NodeID][]cluster.CoreID

	// retired holds executors removed by cluster churn; their historical
	// stats still belong in the final report.
	retired []*executor.Executor

	// onCapacity observes completed capacity changes (experiments, tests).
	onCapacity func(CapacityEvent)

	// inflight[ex] counts weight routed to an executor but not yet processed
	// by it (network transit + queues); the engine-side backpressure ledger.
	inflight map[*executor.Executor]int

	// lastMu caches per-executor service-rate estimates across idle windows.
	lastMu map[*executor.Executor]float64

	// onRepartition observes completed RC repartitions (experiments).
	onRepartition func(RepartitionReport)

	// onEvent streams typed run events to the Run handle (nil = disabled).
	onEvent func(Event)
	// rateFactor scales every source's offered load (CmdSetRate; 1 = off).
	rateFactor float64
	// lastSnapAt is the previous Snapshot's virtual time (rate windows).
	lastSnapAt simtime.Time

	// blockedW counts tuple weight that backpressure refused per target
	// executor in the current scheduling window. It is folded into the
	// executor's λ so the model sees the *offered* arrival rate, not just
	// the admitted one (otherwise allocations could never outgrow the
	// current capacity).
	blockedW map[*executor.Executor]int64

	r *Report

	began   bool
	stopped bool
	// replaying marks route calls that re-deliver pause-buffered tuples, so
	// the offered-load counters don't bill them twice.
	replaying bool
}

// env adapts the engine to executor.Env.
type env Engine

func (e *env) Clock() *simtime.Clock                  { return e.clock }
func (e *env) NodeOf(c cluster.CoreID) cluster.NodeID { return e.cluster.NodeOf(c) }
func (e *env) Send(from, to cluster.NodeID, bytes int, done func()) {
	e.cluster.Send(from, to, bytes, done)
}

// New builds an engine. It panics on invalid topologies (setup-time
// programmer error) and returns an error for resource exhaustion.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.Defaults()
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	pol := cfg.Policy
	par := cfg.Paradigm
	if pol == nil {
		pol = policy.ForParadigm(cfg.Paradigm)
	} else if p, ok := policy.ParadigmOf(pol.Name()); ok {
		par = p
	} else {
		par = Paradigm(-1) // custom policy outside the paper's four
	}
	e := &Engine{
		cfg:        cfg,
		pol:        pol,
		clock:      simtime.NewClock(),
		rng:        simtime.NewRand(cfg.Seed + 1),
		sources:    make(map[stream.OperatorID][]*sourceInstance),
		ops:        make(map[stream.OperatorID]*opRuntime),
		freeCores:  make(map[cluster.NodeID][]cluster.CoreID),
		inflight:   make(map[*executor.Executor]int),
		blockedW:   make(map[*executor.Executor]int64),
		rateFactor: 1,
		r:          newReport(par, pol.Name()),
	}
	e.cluster = cluster.New(e.clock, cfg.Cluster)
	for _, core := range e.cluster.Cores() {
		n := core.Node
		e.freeCores[n] = append(e.freeCores[n], core.ID)
	}
	if err := e.placeSources(); err != nil {
		return nil, err
	}
	if err := e.placeExecutors(); err != nil {
		return nil, err
	}
	e.wireOutputs()
	return e, nil
}

// Clock exposes the virtual clock so callers can schedule workload events
// (key shuffles, rate changes) before Run.
func (e *Engine) Clock() *simtime.Clock { return e.clock }

// Cluster exposes the simulated cluster (tests, reports).
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Every schedules fn at each multiple of interval, starting at interval.
func (e *Engine) Every(interval simtime.Duration, fn func()) {
	if interval <= 0 {
		panic("engine: Every with non-positive interval")
	}
	var tick func()
	next := simtime.Time(0)
	tick = func() {
		if e.stopped {
			return
		}
		fn()
		next = next.Add(interval)
		e.clock.At(next, tick)
	}
	next = next.Add(interval)
	e.clock.At(next, tick)
}

// takeFreeCore pops a free core, preferring the given node; any node when
// preferred is exhausted. Returns false if the cluster is out of cores.
func (e *Engine) takeFreeCore(prefer cluster.NodeID) (cluster.CoreID, bool) {
	if cs := e.freeCores[prefer]; len(cs) > 0 {
		core := cs[len(cs)-1]
		e.freeCores[prefer] = cs[:len(cs)-1]
		return core, true
	}
	for n := 0; n < e.cluster.Nodes(); n++ {
		node := cluster.NodeID(n)
		if cs := e.freeCores[node]; len(cs) > 0 {
			core := cs[len(cs)-1]
			e.freeCores[node] = cs[:len(cs)-1]
			return core, true
		}
	}
	return 0, false
}

// takeFreeCoreOn pops a free core on exactly the given node.
func (e *Engine) takeFreeCoreOn(n cluster.NodeID) (cluster.CoreID, bool) {
	if cs := e.freeCores[n]; len(cs) > 0 {
		core := cs[len(cs)-1]
		e.freeCores[n] = cs[:len(cs)-1]
		return core, true
	}
	return 0, false
}

func (e *Engine) releaseCore(c cluster.CoreID) {
	n := e.cluster.NodeOf(c)
	e.freeCores[n] = append(e.freeCores[n], c)
}

// placeSources reserves one core per source instance, round-robin on nodes.
func (e *Engine) placeSources() error {
	for _, op := range e.cfg.Topology.Sources() {
		if e.cfg.Sources[op.ID] == nil {
			return fmt.Errorf("engine: source operator %q has no driver", op.Name)
		}
		for i := 0; i < e.cfg.SourceExecutors; i++ {
			node := cluster.NodeID(i % e.cluster.Nodes())
			if !e.cfg.SourcesFree {
				if _, ok := e.takeFreeCoreOn(node); !ok {
					if _, ok := e.takeFreeCore(node); !ok {
						return fmt.Errorf("engine: out of cores placing sources")
					}
				}
			}
			e.sources[op.ID] = append(e.sources[op.ID], &sourceInstance{op: op, node: node})
		}
	}
	return nil
}

// placeExecutors creates the initial executors per paradigm.
func (e *Engine) placeExecutors() error {
	var nonSource []*stream.Operator
	for _, op := range e.cfg.Topology.Operators() {
		if !op.Source {
			nonSource = append(nonSource, op)
		}
	}
	if len(nonSource) == 0 {
		return fmt.Errorf("engine: topology has no non-source operators")
	}
	freeTotal := 0
	for _, cs := range e.freeCores {
		freeTotal += len(cs)
	}
	if freeTotal < len(nonSource) {
		return fmt.Errorf("engine: %d cores cannot host %d operators", freeTotal, len(nonSource))
	}

	knobs := e.knobs()
	for idx, op := range nonSource {
		pl := e.pol.Place(knobs, op, idx, len(nonSource), freeTotal)
		rt := &opRuntime{op: op, firstHop: e.isFirstHop(op), opSharded: pl.OperatorSharded}
		count := pl.Executors
		if count < 1 {
			count = 1
		}
		for i := 0; i < count; i++ {
			local := cluster.NodeID((idx + i) % e.cluster.Nodes())
			core, ok := e.takeFreeCore(local)
			if !ok {
				if i == 0 {
					return fmt.Errorf("engine: out of cores placing executor for %q", op.Name)
				}
				break // EC can start under-provisioned; the scheduler grows it
			}
			ex := e.newExecutor(rt, i, e.cluster.NodeOf(core), core)
			rt.execs = append(rt.execs, ex)
			rt.cores = append(rt.cores, []cluster.CoreID{core})
			// Fixed-core mode (Fig 10–12): grant the remaining cores now,
			// local first, then spilling to remote nodes like the paper's
			// single-executor scale-out.
			for extra := 1; extra < e.cfg.FixedCores; extra++ {
				c, got := e.takeFreeCore(ex.LocalNode())
				if !got {
					break
				}
				ex.AddCore(c)
				rt.cores[len(rt.cores)-1] = append(rt.cores[len(rt.cores)-1], c)
			}
		}
		if pl.DynamicRouting {
			rt.opRouting = make([]int, e.cfg.OpShards)
			for s := range rt.opRouting {
				rt.opRouting[s] = s % len(rt.execs)
			}
			rt.opShardLoad = make([]float64, e.cfg.OpShards)
		}
		e.ops[op.ID] = rt
		for _, ex := range rt.execs {
			e.elastic = append(e.elastic, ex)
			e.elasticOp = append(e.elasticOp, rt)
		}
	}
	return nil
}

// isFirstHop reports whether op consumes directly from a source.
func (e *Engine) isFirstHop(op *stream.Operator) bool {
	for _, u := range op.Upstream() {
		if e.cfg.Topology.Operator(u).Source {
			return true
		}
	}
	return false
}

// newExecutor builds one executor for the runtime, configured per the
// policy's placement decision.
func (e *Engine) newExecutor(rt *opRuntime, idx int, local cluster.NodeID, core cluster.CoreID) *executor.Executor {
	op := rt.op
	shardOf := func(k stream.Key) state.ShardID { return state.ShardID(k.Shard(e.cfg.Z)) }
	stateBytes := op.StatePerShard
	if rt.opSharded {
		// Baselines: state is organized by operator-level shard so that RC
		// repartitioning can move it between executors. A single task serves
		// everything inside the executor.
		shardOf = func(k stream.Key) state.ShardID { return state.ShardID(k.OperatorShard(e.cfg.OpShards)) }
		if stateBytes > 0 {
			// Keep the *total* operator state comparable across paradigms:
			// the paper sizes state per elastic-executor shard (z per
			// executor, y executors). RC has OpShards shards for the whole
			// operator.
			total := op.StatePerShard * e.cfg.Z * e.cfg.Y
			stateBytes = total / e.cfg.OpShards
			if stateBytes < 1 {
				stateBytes = 1
			}
		}
	}
	cfg := executor.Config{
		Name:                fmt.Sprintf("%s-%d", op.Name, idx),
		LocalNode:           local,
		ShardOf:             shardOf,
		Cost:                op.Cost,
		Handler:             op.Handler,
		OutBytes:            op.OutBytes,
		Selectivity:         op.Selectivity,
		StateBytesPerShard:  stateBytes,
		Theta:               e.cfg.Theta,
		MaxInFlight:         0, // backpressure is the engine-side ledger
		ControlDelay:        e.cfg.ControlDelay,
		SerializeOverhead:   e.cfg.SerializeOverhead,
		AssertOrder:         e.cfg.AssertOrder,
		DisableStateSharing: e.cfg.DisableStateSharing,
	}
	return executor.New((*env)(e), cfg, core)
}

// wireOutputs connects executor emissions, latency measurement, throughput
// accounting, and the engine inflight ledger.
func (e *Engine) wireOutputs() {
	measure := e.measureOp()
	for id, rt := range e.ops {
		opID := id
		rt := rt
		sink := len(rt.op.Downstream()) == 0
		for _, ex := range rt.execs {
			e.wireExecutor(rt, ex, opID == measure, sink)
		}
	}
}

func (e *Engine) wireExecutor(rt *opRuntime, ex *executor.Executor, measured, sink bool) {
	downstream := rt.op.Downstream()
	ex.OnOutput = func(ts []stream.Tuple) {
		for _, t := range ts {
			for _, d := range downstream {
				e.route(ex.LocalNode(), d, t)
			}
		}
	}
	ex.OnProcessed = func(t stream.Tuple) {
		e.inflight[ex] -= t.Weight
		rt.processedW += int64(t.Weight)
		if measured {
			e.r.observeProcessed(e.clock.Now(), t.Weight, e.cfg.WarmUp)
		}
	}
	ex.OnDropped = func(w int) {
		// Weight destroyed inside the executor (node failure, retirement)
		// leaves the engine's backpressure ledger, or the pipe would look
		// full forever.
		e.inflight[ex] -= w
	}
	if sink {
		ex.OnLatency = func(d simtime.Duration, t stream.Tuple) {
			e.r.observeLatency(e.clock.Now(), metrics.StageObservation{
				Total:       d,
				Service:     t.Svc,
				Repartition: t.RPStall,
				Migration:   t.MGStall,
				Weight:      t.Weight,
			}, e.cfg.WarmUp)
		}
	}
}

// measureOp resolves the throughput-measured operator.
func (e *Engine) measureOp() stream.OperatorID {
	if e.cfg.MeasureOp >= 0 {
		return e.cfg.MeasureOp
	}
	for _, op := range e.cfg.Topology.Operators() {
		if !op.Source {
			return op.ID
		}
	}
	return -1
}

// Run executes the simulation for the given virtual duration and returns the
// report. Run may be called once per engine. It is the monolithic form of the
// stepped Begin / StepUntil / Finish cycle the Run handle drives.
func (e *Engine) Run(d simtime.Duration) *Report {
	e.Begin()
	e.StepUntil(simtime.Time(0).Add(d))
	return e.Finish(d)
}

// Begin arms the run: source emission loops, the policy's control loops, and
// series sampling. Idempotent so the Run wrapper and external drivers can't
// double-start the loops.
func (e *Engine) Begin() {
	if e.began {
		return
	}
	e.began = true
	e.startSources()
	e.startControlLoops()
	e.startSeriesSampling()
}

// StepUntil advances the simulation to the given virtual time — the stepped
// execution mode. Between calls the engine is at a safe point: no event is
// mid-flight, so commands (Apply) and observations (Snapshot) see a
// consistent world. Repeated StepUntil calls with increasing bounds execute
// exactly the event sequence one monolithic run would.
func (e *Engine) StepUntil(t simtime.Time) {
	e.clock.RunUntil(t)
}

// Finish stops the run and assembles the report; d is the virtual span the
// report covers (the requested duration, or less when the run was cancelled
// at a safe point).
func (e *Engine) Finish(d simtime.Duration) *Report {
	e.stopped = true
	e.finishReport(d)
	return e.r
}

// startSeriesSampling records the 1-second throughput series (Fig 7/16) and
// folds the latency-anatomy windows. Both ride the same Every callback: the
// anatomy fold must not add clock events of its own, or every golden-pinned
// event count would shift.
func (e *Engine) startSeriesSampling() {
	e.Every(simtime.Second, func() {
		now := e.clock.Now()
		warm := simtime.Duration(now) <= e.cfg.WarmUp
		if !warm {
			e.r.sampleSeries(now)
		}
		e.foldAnatomy(warm)
	})
}

// foldAnatomy drains each executor's anatomy window and the per-operator
// pause-stall accumulator into the operator's cumulative stage totals. The
// queue stage is the residual of the hop-latency sum, clamped non-negative.
// During warm-up the windows are drained and discarded, so the totals cover
// the measured span only — like every other post-warm-up metric.
func (e *Engine) foldAnatomy(warm bool) {
	for _, rt := range e.opsInOrder() {
		hop := metrics.NewHistogram()
		var svc, mg simtime.Duration
		for _, ex := range rt.execs {
			a := ex.TakeAnatomy()
			hop.Merge(a.Hop)
			svc += a.Svc
			mg += a.MGStall
		}
		for _, ex := range rt.retiredExecs {
			a := ex.TakeAnatomy()
			hop.Merge(a.Hop)
			svc += a.Svc
			mg += a.MGStall
		}
		rp := rt.winRPStall
		rt.winRPStall = 0
		if warm {
			continue
		}
		// Replayed tuples are re-stamped at route(), so the pause stall (rp)
		// is *outside* the hop sum; shard-pause buffering (mg) happens after
		// the stamp and is inside it. Only the latter is subtracted.
		queue := hop.Sum() - svc - mg
		if queue < 0 {
			queue = 0
		}
		rt.anatTotals[metrics.StageQueue] += queue
		rt.anatTotals[metrics.StageService] += svc
		rt.anatTotals[metrics.StageRepartition] += rp
		rt.anatTotals[metrics.StageMigration] += mg
		if hop.Count() > 0 {
			rt.lastHopP50 = hop.Quantile(0.5)
			rt.lastHopP99 = hop.Quantile(0.99)
		}
	}
}

// finishReport aggregates executor stats into the report.
func (e *Engine) finishReport(d simtime.Duration) {
	e.r.Duration = d
	measured := d - e.cfg.WarmUp
	if measured <= 0 {
		measured = d
	}
	e.r.MeasuredSpan = measured
	for _, ex := range append(append([]*executor.Executor(nil), e.elastic...), e.retired...) {
		st := ex.Stats
		e.r.MigrationBytes += st.MigrationBytes
		e.r.RemoteTransferBytes += st.RemoteTransferBytes
		e.r.Reassignments += st.Reassignments
		e.r.IntraNodeReassigns += st.IntraNodeReassigns
		e.r.InterNodeReassigns += st.InterNodeReassigns
		e.r.SyncTimeTotal += st.SyncTimeTotal
		e.r.MigrationTimeTotal += st.MigrationTimeTotal
		e.r.Dropped += st.DroppedTuples
	}
	for _, rt := range e.opsInOrder() {
		os := OperatorStats{
			Name:      rt.op.Name,
			Executors: len(rt.execs),
			Retired:   len(rt.retiredExecs),
			Offered:   rt.offeredW,
			Processed: rt.processedW,
		}
		for _, ex := range append(append([]*executor.Executor(nil), rt.execs...), rt.retiredExecs...) {
			os.MigrationBytes += ex.Stats.MigrationBytes
			os.Reassignments += ex.Stats.Reassignments
		}
		e.r.PerOperator = append(e.r.PerOperator, os)
	}
	e.r.Events = e.clock.Processed
	e.r.finalize()
}
