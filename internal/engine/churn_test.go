package engine

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/simtime"
)

// churnRun builds an engine, schedules churn ops mid-run via the clock, and
// returns the report.
func churnRun(t *testing.T, p Paradigm, schedule func(*Engine)) *Report {
	t.Helper()
	cfg := microConfig(p, 2000, 1)
	cfg.AssertOrder = false // failures drop tuples, breaking per-key gap checks
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	schedule(e)
	return e.Run(10 * simtime.Second)
}

func TestAddNodeGrowsCapacityForElasticutor(t *testing.T) {
	var ev []CapacityEvent
	r := churnRun(t, Elasticutor, func(e *Engine) {
		e.SetOnCapacityChange(func(c CapacityEvent) { ev = append(ev, c) })
		e.Clock().At(simtime.Time(3*simtime.Second), func() { e.AddNode(0) })
	})
	if r.NodeJoins != 1 || len(ev) != 1 || ev[0].Kind != NodeJoined {
		t.Fatalf("joins = %d events = %v", r.NodeJoins, ev)
	}
	if ev[0].Node != 4 || ev[0].Cores != 8 {
		t.Fatalf("event = %+v, want node 4 with 8 cores", ev[0])
	}
	if r.Processed == 0 {
		t.Fatal("nothing processed")
	}
}

func TestAddNodeCoresGetScheduled(t *testing.T) {
	// Saturate a tiny cluster, then double it: the dynamic scheduler must
	// move executors onto the joined node's cores.
	cfg := microConfig(Elasticutor, 30000, 1)
	cfg.AssertOrder = false
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var n cluster.NodeID
	e.Clock().At(simtime.Time(4*simtime.Second), func() { n = e.AddNode(0) })
	e.Run(10 * simtime.Second)
	used := 0
	for _, ex := range e.ElasticExecutors() {
		used += ex.CoresByNode()[n]
	}
	if used == 0 {
		t.Fatal("no executor core landed on the joined node under saturation")
	}
}

func TestDrainNodeMigratesWithoutLoss(t *testing.T) {
	for _, p := range []Paradigm{Static, ResourceCentric, Elasticutor} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			r := churnRun(t, p, func(e *Engine) {
				e.Clock().At(simtime.Time(4*simtime.Second), func() {
					if err := e.DrainNode(1); err != nil {
						t.Errorf("drain: %v", err)
					}
				})
			})
			if r.NodeDrains != 1 {
				t.Fatalf("drains = %d", r.NodeDrains)
			}
			if r.LostStateBytes != 0 {
				t.Fatalf("graceful drain lost %d state bytes", r.LostStateBytes)
			}
			if r.Processed == 0 {
				t.Fatal("nothing processed")
			}
			// Post-drain the system must still be processing: the last
			// throughput samples are not all zero.
			s := r.ThroughputSeries
			tail := 0.0
			for i := s.Len() - 3; i < s.Len(); i++ {
				if i >= 0 {
					tail += s.Values[i]
				}
			}
			if tail == 0 {
				t.Fatal("throughput collapsed to zero after drain")
			}
		})
	}
}

func TestFailNodeLosesStateButKeepsServing(t *testing.T) {
	for _, p := range []Paradigm{Static, ResourceCentric, NaiveEC, Elasticutor} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			r := churnRun(t, p, func(e *Engine) {
				e.Clock().At(simtime.Time(4*simtime.Second), func() {
					if err := e.FailNode(2); err != nil {
						t.Errorf("fail: %v", err)
					}
				})
			})
			if r.NodeFails != 1 {
				t.Fatalf("fails = %d", r.NodeFails)
			}
			if r.LostStateBytes == 0 {
				t.Fatal("hard failure reported no state loss")
			}
			s := r.ThroughputSeries
			tail := 0.0
			for i := s.Len() - 3; i < s.Len(); i++ {
				if i >= 0 {
					tail += s.Values[i]
				}
			}
			if tail == 0 {
				t.Fatal("throughput collapsed to zero after node failure")
			}
		})
	}
}

func TestStaticRetiresExecutorsOnDrain(t *testing.T) {
	// Static pins one executor per core with no spares: draining a node must
	// retire its executors (there is nowhere to evacuate to).
	r := churnRun(t, Static, func(e *Engine) {
		e.Clock().At(simtime.Time(4*simtime.Second), func() {
			if err := e.DrainNode(3); err != nil {
				t.Errorf("drain: %v", err)
			}
		})
	})
	if r.RetiredExecutors == 0 {
		t.Fatal("static drain retired no executors")
	}
}

func TestChurnGuards(t *testing.T) {
	cfg := microConfig(Elasticutor, 1000, 1)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.FailNode(9); err == nil {
		t.Fatal("failing an unknown node must error")
	}
	for n := 0; n < 3; n++ {
		if err := e.FailNode(cluster.NodeID(n)); err != nil {
			t.Fatalf("fail %d: %v", n, err)
		}
	}
	if err := e.FailNode(3); err == nil {
		t.Fatal("failing the last node must error")
	}
	if err := e.DrainNode(0); err == nil {
		t.Fatal("draining a dead node must error")
	}
}

func TestChurnRunsAreDeterministic(t *testing.T) {
	fp := func() (int64, int64, uint64) {
		cfg := microConfig(Elasticutor, 20000, 7)
		cfg.AssertOrder = false
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Clock().At(simtime.Time(2*simtime.Second), func() { e.AddNode(0) })
		e.Clock().At(simtime.Time(4*simtime.Second), func() { _ = e.DrainNode(1) })
		e.Clock().At(simtime.Time(6*simtime.Second), func() { _ = e.FailNode(2) })
		r := e.Run(9 * simtime.Second)
		return r.Processed, r.MigrationBytes, r.Events
	}
	p1, m1, e1 := fp()
	p2, m2, e2 := fp()
	if p1 != p2 || m1 != m2 || e1 != e2 {
		t.Fatalf("non-deterministic churn run: (%d,%d,%d) vs (%d,%d,%d)", p1, m1, e1, p2, m2, e2)
	}
}
