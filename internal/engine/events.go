package engine

import (
	"fmt"

	clusterpkg "repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

// This file is the run-observation and run-control vocabulary shared by both
// execution backends: the typed event stream a live run emits, the command
// surface a caller can inject into it, and the point-in-time snapshot of the
// dataflow. The Run handle (internal/run) carries these types to the public
// facade; the simulator applies commands at safe points of its virtual clock,
// the real-time backend on its control goroutine.

// EventKind classifies one run event.
type EventKind int

// The event taxonomy (see DESIGN.md "Run handle"). Structural events —
// churn and phase transitions — are the backend-conformance currency: the
// same (workload, policy, scenario) must produce the same kinds and counts
// on the simulator and the real-time backend.
const (
	// EventNodeJoin, EventNodeDrain, EventNodeFail are completed cluster
	// capacity changes (Node carries the node ID, Cores the size of a join).
	EventNodeJoin EventKind = iota
	EventNodeDrain
	EventNodeFail
	// EventRepartitionStart/Finish bracket one operator-level (RC) global
	// repartitioning; Operator names the repartitioned operator.
	EventRepartitionStart
	EventRepartitionFinish
	// EventPhaseStart/End bracket one scenario phase (Phase carries the
	// phase kind, e.g. "flashcrowd").
	EventPhaseStart
	EventPhaseEnd
	// EventPhaseSkipped marks a scenario key-space phase that could not run
	// because the topology supplies its own sampler (see Options.Strict).
	EventPhaseSkipped
	// EventPolicyInvoked is one dynamic scheduling decision (model +
	// Algorithm 1) by the installed elasticity policy.
	EventPolicyInvoked
	// EventCommandApplied reports an injected command that was applied at a
	// safe point (Detail names the command; a refused command lands in
	// Report.ChurnErrors instead).
	EventCommandApplied
)

func (k EventKind) String() string {
	switch k {
	case EventNodeJoin:
		return "node-join"
	case EventNodeDrain:
		return "node-drain"
	case EventNodeFail:
		return "node-fail"
	case EventRepartitionStart:
		return "repartition-start"
	case EventRepartitionFinish:
		return "repartition-finish"
	case EventPhaseStart:
		return "phase-start"
	case EventPhaseEnd:
		return "phase-end"
	case EventPhaseSkipped:
		return "phase-skipped"
	case EventPolicyInvoked:
		return "policy-invoked"
	case EventCommandApplied:
		return "command-applied"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one typed occurrence in a live run.
type Event struct {
	Kind     EventKind
	At       simtime.Time // virtual time of the occurrence
	Node     int          // churn events: the node involved (else -1)
	Cores    int          // node-join: cores added
	Operator string       // repartition events: the operator
	Phase    string       // phase events: the phase kind
	Detail   string       // free-form context (policy name, command, skip reason)
	// Span carries the per-phase breakdown of a completed §3.3 repartition
	// cycle; non-nil only on EventRepartitionFinish. It is observation-only
	// payload: String() and the structural conformance projection ignore it.
	Span *RepartitionSpan
}

// RepartitionSpan is the observability record of one completed §3.3 global
// repartition: pause → drain → migrate → reroute, with per-phase durations
// that tile Start..Start+Total exactly (non-overlapping by construction on
// both backends). Replayed/ReplayedW count the tuples buffered during the
// pause and re-driven after the routing commit; summed over a run's spans,
// ReplayedW equals Totals.RepartitionReplayed — the conservation cross-check.
type RepartitionSpan struct {
	Operator string
	Start    simtime.Time // virtual time the protocol began (pause issued)
	// Phase durations, in protocol order. Pause is the upstream
	// synchronization cost before intake actually stops; Drain empties the
	// in-flight queues; Migrate moves shard state (serialization + wire);
	// Reroute updates upstream routing tables and resumes the stream.
	Pause   simtime.Duration
	Drain   simtime.Duration
	Migrate simtime.Duration
	Reroute simtime.Duration
	// Moves is the number of shard reassignments committed (InterMoves of
	// them across nodes); Bytes the state moved.
	Moves      int
	InterMoves int
	Bytes      int64
	// Replayed counts buffered tuple batches re-driven after the commit;
	// ReplayedW their total tuple weight.
	Replayed  int
	ReplayedW int64
	// Aborted marks a runtime-backend protocol overtaken by cluster churn:
	// the routing commit was abandoned (no state moved) but the pause, drain,
	// and replay were still paid.
	Aborted bool
}

// Total is the pause-to-resume duration — the sum of the four phases.
func (s *RepartitionSpan) Total() simtime.Duration {
	return s.Pause + s.Drain + s.Migrate + s.Reroute
}

func (ev Event) String() string {
	s := fmt.Sprintf("%v %s", ev.At, ev.Kind)
	if ev.Kind == EventNodeJoin || ev.Kind == EventNodeDrain || ev.Kind == EventNodeFail {
		s += fmt.Sprintf(" node=%d", ev.Node)
	}
	if ev.Operator != "" {
		s += " op=" + ev.Operator
	}
	if ev.Phase != "" {
		s += " phase=" + ev.Phase
	}
	if ev.Detail != "" {
		s += " (" + ev.Detail + ")"
	}
	return s
}

// CommandKind classifies one injected control command.
type CommandKind int

// The control surface a live run accepts.
const (
	CmdAddNode CommandKind = iota
	CmdDrainNode
	CmdFailNode
	CmdSetRate
)

func (k CommandKind) String() string {
	switch k {
	case CmdAddNode:
		return "add-node"
	case CmdDrainNode:
		return "drain-node"
	case CmdFailNode:
		return "fail-node"
	case CmdSetRate:
		return "set-rate"
	}
	return fmt.Sprintf("command(%d)", int(k))
}

// Command is one control action injected into a live run. Zero At applies
// the command at the next safe point; a positive At schedules it at that
// virtual offset from run start (the deterministic form — see DESIGN.md for
// the command-ordering rules on the virtual clock).
type Command struct {
	Kind   CommandKind
	Node   int     // drain/fail: the node to remove
	Cores  int     // add: cores on the new node (0 = cluster default)
	Factor float64 // set-rate: multiplier over the configured offered load
	At     simtime.Duration
	// Label prefixes any refusal recorded in Report.ChurnErrors (the
	// scenario interpreter uses it to keep its historical error texts).
	Label string
	// Origin tags who issued the command — "scenario" (spec-scheduled churn),
	// "controller" (an attached autoscaler), "replay" (re-injected by the
	// trace replayer), or "" for direct user injections. Observation-only:
	// the backends ignore it; the trace recorder persists it so the replayer
	// can tell spec-regenerated commands from ones it must re-drive.
	Origin string
}

func (c Command) String() string {
	switch c.Kind {
	case CmdAddNode:
		return fmt.Sprintf("add-node cores=%d", c.Cores)
	case CmdDrainNode:
		return fmt.Sprintf("drain-node node=%d", c.Node)
	case CmdFailNode:
		return fmt.Sprintf("fail-node node=%d", c.Node)
	case CmdSetRate:
		return fmt.Sprintf("set-rate factor=%g", c.Factor)
	}
	return c.Kind.String()
}

// AtTime returns a copy of the command pinned to a virtual time.
func (c Command) AtTime(at simtime.Duration) Command { c.At = at; return c }

// AddNodeCmd grows the cluster by one node (cores 0 = cluster default).
func AddNodeCmd(cores int) Command { return Command{Kind: CmdAddNode, Cores: cores} }

// DrainNodeCmd removes a node gracefully (state migrates off).
func DrainNodeCmd(node int) Command { return Command{Kind: CmdDrainNode, Node: node} }

// FailNodeCmd removes a node hard (its state and queues are lost).
func FailNodeCmd(node int) Command { return Command{Kind: CmdFailNode, Node: node} }

// SetRateCmd scales every source's offered load by factor (1 restores the
// configured rate).
func SetRateCmd(factor float64) Command { return Command{Kind: CmdSetRate, Factor: factor} }

// Snapshot is a point-in-time view of a live run.
//
// The rate fields (OperatorSnapshot.OfferedRate/ProcessedRate) are windowed
// over the span since the *previous* snapshot by any observer, so they are
// observer-relative. Closed-loop controllers must derive their windows from
// the cumulative fields instead (Blocked, OperatorSnapshot.Offered/Processed)
// — those are independent of who else is watching, which is what keeps an
// autoscaled simulator run deterministic under -live observation.
type Snapshot struct {
	Now       simtime.Time
	LiveNodes int
	// Nodes lists the live node IDs in ascending order (drain-target
	// selection for cluster controllers).
	Nodes []int
	// TotalCores counts the cores on live nodes; UsedCores the ones
	// currently allocated (source reservations plus executor grants);
	// Utilization is their ratio (0 when the cluster has no cores).
	TotalCores  int
	UsedCores   int
	Utilization float64
	// Blocked is the cumulative tuple weight refused by source backpressure
	// since run start (not warm-up gated): the demand the cluster failed to
	// admit.
	Blocked int64
	// Operators lists the non-source operators in topology order.
	Operators []OperatorSnapshot
	// Cumulative elasticity counters at snapshot time.
	MigrationBytes int64
	Reassignments  int64
	Repartitions   int

	// Latency anatomy of the last *folded* metrics window (end-to-end, at
	// sinks): windowed percentiles plus the dominant stage of that window.
	// Folds happen at fixed 1-second virtual ticks regardless of observers,
	// so these fields are observer-independent — safe inputs for a
	// closed-loop latency-SLO controller. LatencyWeight is the window's
	// weighted sample count (0 = no samples, percentiles are zeros).
	LatencyP50    simtime.Duration
	LatencyP95    simtime.Duration
	LatencyP99    simtime.Duration
	LatencyMax    simtime.Duration
	LatencyWeight uint64
	DominantStage metrics.Stage
	DominantShare float64

	// Distributed-plane telemetry (agentplane.go): populated only when the
	// run executes on the distributed backend, ordered by node (RPC
	// additionally by message type). Wall-clock durations — see the file
	// comment in agentplane.go.
	RPC    []RPCWindow
	Agents []AgentHealth
}

// OperatorSnapshot is the live view of one operator. Rates are measured over
// the window since the previous snapshot (since run start for the first).
type OperatorSnapshot struct {
	Name      string
	Executors int
	// FirstHop marks operators directly downstream of a source — the
	// admission boundary whose Offered counter is the source-level demand.
	FirstHop bool
	// Cores is the number of CPU cores currently allocated to the
	// operator's executors.
	Cores int
	// OfferedRate is tuples/s admitted toward the operator in the window;
	// ProcessedRate is tuples/s completed by its executors.
	OfferedRate   float64
	ProcessedRate float64
	// Offered and Processed are the cumulative tuple weights since run
	// start — the observer-independent counters the rate fields derive
	// from (see the Snapshot doc comment).
	Offered   int64
	Processed int64
	// Queued is the tuple weight admitted but not yet processed (network
	// transit plus executor queues).
	Queued int
	// LatP50/LatP99 are the hop-latency percentiles (admission toward the
	// operator to processed by it) of the last non-empty anatomy window;
	// DominantStage/DominantShare name the stage with the largest cumulative
	// attributed time at this operator.
	LatP50        simtime.Duration
	LatP99        simtime.Duration
	DominantStage metrics.Stage
	DominantShare float64
}

// dominantStage returns the stage with the largest total and its share, with
// the same tie/empty semantics as metrics.StageSet.Dominant.
func dominantStage(totals [metrics.NumStages]simtime.Duration) (metrics.Stage, float64) {
	return metrics.DominantOf(totals)
}

// SetOnEvent installs the run-event observer (the Run handle). Must be set
// before the run starts; nil disables emission.
func (e *Engine) SetOnEvent(fn func(Event)) { e.onEvent = fn }

func (e *Engine) emit(ev Event) {
	if e.onEvent != nil {
		e.onEvent(ev)
	}
}

// SetRateFactor scales every source's offered load by f (the CmdSetRate
// mechanism). Applied multiplicatively on top of the drivers' own rate
// functions; f <= 0 silences the sources.
func (e *Engine) SetRateFactor(f float64) {
	if f < 0 {
		f = 0
	}
	e.rateFactor = f
}

// Apply executes one control command at the current virtual time. It is the
// single entry point the Run handle uses at safe points; the returned error
// reports a refused command (infeasible churn), which the caller records in
// Report.ChurnErrors.
func (e *Engine) Apply(c Command) error {
	switch c.Kind {
	case CmdAddNode:
		e.AddNode(c.Cores)
		return nil
	case CmdDrainNode:
		return e.DrainNode(clusterpkg.NodeID(c.Node))
	case CmdFailNode:
		return e.FailNode(clusterpkg.NodeID(c.Node))
	case CmdSetRate:
		e.SetRateFactor(c.Factor)
		return nil
	}
	return fmt.Errorf("engine: unknown command kind %d", int(c.Kind))
}

// Snapshot reports the live per-operator state. Single-threaded like every
// engine method: the Run handle serves it at safe points only.
func (e *Engine) Snapshot() Snapshot {
	now := e.clock.Now()
	span := now.Sub(e.lastSnapAt).Seconds()
	s := Snapshot{
		Now:            now,
		LiveNodes:      e.cluster.AliveNodes(),
		Blocked:        e.r.Blocked,
		MigrationBytes: e.r.RepartitionBytes,
		Repartitions:   e.r.Repartitions,
		LatencyP50:     e.r.lastWindow.P50,
		LatencyP95:     e.r.lastWindow.P95,
		LatencyP99:     e.r.lastWindow.P99,
		LatencyMax:     e.r.lastWindow.Max,
		LatencyWeight:  e.r.lastWindow.Weight,
	}
	s.DominantStage, s.DominantShare = e.r.lastStages.Dominant()
	free := 0
	for n := 0; n < e.cluster.Nodes(); n++ {
		id := clusterpkg.NodeID(n)
		if !e.cluster.NodeAlive(id) {
			continue
		}
		s.Nodes = append(s.Nodes, n)
		free += len(e.freeCores[id])
	}
	s.TotalCores = e.cluster.TotalCores()
	s.UsedCores = s.TotalCores - free
	if s.TotalCores > 0 {
		s.Utilization = float64(s.UsedCores) / float64(s.TotalCores)
	}
	for _, rt := range e.opsInOrder() {
		os := OperatorSnapshot{
			Name:      rt.op.Name,
			Executors: len(rt.execs),
			FirstHop:  rt.firstHop,
			Offered:   rt.offeredW,
			Processed: rt.processedW,
			LatP50:    rt.lastHopP50,
			LatP99:    rt.lastHopP99,
		}
		os.DominantStage, os.DominantShare = dominantStage(rt.anatTotals)
		for i, ex := range rt.execs {
			os.Queued += e.inflight[ex]
			os.Cores += len(rt.cores[i])
		}
		if span > 0 {
			os.OfferedRate = float64(rt.offeredW-rt.lastOffered) / span
			os.ProcessedRate = float64(rt.processedW-rt.lastProcessed) / span
		}
		rt.lastOffered, rt.lastProcessed = rt.offeredW, rt.processedW
		s.Operators = append(s.Operators, os)
	}
	for _, ex := range e.elastic {
		s.MigrationBytes += ex.Stats.MigrationBytes
		s.Reassignments += ex.Stats.Reassignments
	}
	for _, ex := range e.retired {
		s.MigrationBytes += ex.Stats.MigrationBytes
		s.Reassignments += ex.Stats.Reassignments
	}
	e.lastSnapAt = now
	return s
}
