package engine

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/workload"
)

// Property: for random small configurations across all paradigms, a run
// conserves tuples (never processes more than generated, never drops), keeps
// per-key order (AssertOrder panics otherwise), and ends with bounded
// in-flight backlog.
func TestEnginePropertyConservationAndOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("property run is a few seconds")
	}
	f := func(seed uint64) bool {
		rng := simtime.NewRand(seed)
		paradigm := Paradigm(rng.Intn(4))
		nodes := 2 + rng.Intn(2)
		y := 1 + rng.Intn(3)
		rate := 500 + float64(rng.Intn(4000))
		keys := 50 + rng.Intn(2000)
		skew := rng.Float64() * 1.2

		zipf := workload.NewZipf(keys, skew, rng.Fork())
		tp := stream.NewTopology("prop")
		gen := tp.Add(&stream.Operator{Name: "g", Source: true})
		calc := tp.Add(&stream.Operator{
			Name: "c", Cost: stream.FixedCost(simtime.Millisecond), StatePerShard: 4 << 10,
		})
		tp.Connect(gen.ID, calc.ID)

		cfg := Config{
			Topology:        tp,
			Cluster:         cluster.Default(nodes),
			Paradigm:        paradigm,
			SourceExecutors: nodes,
			Y:               y,
			Z:               16 + rng.Intn(64),
			OpShards:        64,
			Batch:           1 + rng.Intn(3),
			Seed:            seed,
			AssertOrder:     true,
			Sources: map[stream.OperatorID]*SourceDriver{
				gen.ID: {
					Rate: workload.ConstantRate(rate),
					Sample: func(now simtime.Time) (stream.Key, int, interface{}) {
						return zipf.Sample(), 128, nil
					},
				},
			},
		}
		e, err := New(cfg)
		if err != nil {
			return false
		}
		// Random dynamics.
		e.Every(simtime.Duration(1+rng.Intn(3))*simtime.Second, zipf.Shuffle)
		r := e.Run(simtime.Duration(4+rng.Intn(4)) * simtime.Second)
		if r.Dropped != 0 {
			return false
		}
		if r.Processed > r.Generated {
			return false
		}
		// Whatever is unprocessed must be explainable by queued backlog.
		backlog := r.Generated - r.Processed
		return backlog <= int64((y+1)*cfg.MaxInFlight+8192)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: RC repartitioning never loses or duplicates operator shards —
// after any run, every operator shard is owned by exactly one executor and
// its state is installable.
func TestRCShardOwnershipInvariant(t *testing.T) {
	cfg := microConfig(ResourceCentric, 15000, 71)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec()
	spec.Keys = 400
	spec.Skew = 0.9
	zipf := workload.NewZipf(spec.Keys, spec.Skew, simtime.NewRand(71))
	cfg.Sources[0].Sample = func(now simtime.Time) (stream.Key, int, interface{}) {
		return zipf.Sample(), 128, nil
	}
	e.Every(2*simtime.Second, zipf.Shuffle)
	r := e.Run(16 * simtime.Second)
	if r.Repartitions == 0 {
		t.Skip("workload did not trigger repartitions; invariant untestable here")
	}
	rt := e.ops[1]
	if len(rt.opRouting) != cfg.OpShards {
		t.Fatalf("routing table size %d", len(rt.opRouting))
	}
	for s, owner := range rt.opRouting {
		if owner < 0 || owner >= len(rt.execs) {
			t.Fatalf("shard %d routed to invalid executor %d", s, owner)
		}
	}
}
