package engine

import "repro/internal/simtime"

// This file is the distributed-plane telemetry vocabulary: the aggregated
// control↔agent RPC timing windows and the per-node agent health surface the
// distributed backend folds into Snapshot. Both are additive observation-only
// fields — the simulator and the in-process runtime backend leave them empty,
// and nothing in the engine reads them back.
//
// Unlike every other Snapshot field these carry *wall-clock* durations: RPC
// round trips and agent heartbeats are infrastructure costs measured on the
// real sockets, not virtual workload time, and scaling them by the run's
// Speedup would only obscure what the wire actually cost.

// RPCWindow aggregates the recent control↔agent requests of one
// (node, message-type) population: RTT percentiles over a sliding window of
// the last samples, plus the window's mean wire and agent time from the
// per-request span decomposition (see runtime.RPCSpan). Count is cumulative
// since the run started — the exporter's counter — while the percentiles and
// means describe only the window.
type RPCWindow struct {
	Node  int
	Type  string // wire message name: "process", "take", "put-all", "ping", …
	Count uint64 // cumulative requests since start (errors included)

	// RTT percentiles over the sample window (wall clock).
	P50 simtime.Duration
	P95 simtime.Duration
	P99 simtime.Duration
	Max simtime.Duration
	// Wire and Agent are the window's mean per-request time on the wire
	// (both directions) and inside the agent (queue + service).
	Wire  simtime.Duration
	Agent simtime.Duration
}

// AgentHealth is one agent process's self-reported health from its latest
// ping reply, plus the control-plane's view of the connection (clock offset,
// report age). A growing Age means the stats tick is failing — the heartbeat
// staleness the watchdog alarms on.
type AgentHealth struct {
	Node int
	PID  int
	// Self-reported by the agent in the ping reply.
	Goroutines    int
	HeapBytes     int64
	ResidentBytes int64 // shard payload bytes held
	QueueDepth    int   // requests accepted but not yet completed
	BurnBacklog   simtime.Duration // Process wall cost admitted but not yet burned
	Batches       int64
	// Control-plane side of the connection.
	ClockOffset simtime.Duration // estimated agent-minus-control clock offset
	Age         simtime.Duration // wall time since the last successful ping reply
}
