package engine

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/workload"
)

// microTopology builds the paper's Fig 5 generator→calculator topology.
func microTopology(cost simtime.Duration, stateKB int) *stream.Topology {
	tp := stream.NewTopology("micro")
	gen := tp.Add(&stream.Operator{Name: "generator", Source: true})
	calc := tp.Add(&stream.Operator{
		Name:          "calculator",
		Cost:          stream.FixedCost(cost),
		StatePerShard: stateKB << 10,
	})
	tp.Connect(gen.ID, calc.ID)
	return tp
}

// microConfig builds a small, fast test configuration.
func microConfig(p Paradigm, rate float64, seed uint64) Config {
	spec := workload.DefaultSpec()
	zipf := workload.NewZipf(spec.Keys, spec.Skew, simtime.NewRand(seed))
	tp := microTopology(simtime.Millisecond, 32)
	cl := cluster.Default(4) // 4 nodes × 8 cores = 32 cores
	return Config{
		Topology:        tp,
		Cluster:         cl,
		Paradigm:        p,
		SourceExecutors: 4,
		Y:               4,
		Z:               64,
		OpShards:        256,
		Batch:           1,
		Seed:            seed,
		AssertOrder:     true,
		Sources: map[stream.OperatorID]*SourceDriver{
			0: {
				Rate: workload.ConstantRate(rate),
				Sample: func(now simtime.Time) (stream.Key, int, interface{}) {
					return zipf.Sample(), spec.TupleBytes, nil
				},
			},
		},
	}
}

func run(t *testing.T, cfg Config, d simtime.Duration) *Report {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e.Run(d)
}

func TestStaticProcessesTuples(t *testing.T) {
	r := run(t, microConfig(Static, 2000, 1), 5*simtime.Second)
	if r.Processed == 0 {
		t.Fatal("nothing processed")
	}
	if r.Dropped != 0 {
		t.Fatalf("dropped = %d", r.Dropped)
	}
	// 2000/s offered on 28 single-core 1ms executors: skew makes some
	// executors hot, so throughput lands below offered but well above zero.
	if r.ThroughputMean < 500 {
		t.Fatalf("throughput = %v", r.ThroughputMean)
	}
}

func TestElasticutorProcessesAtOfferedRate(t *testing.T) {
	// 2000/s on 28 elastic cores (capacity 28k/s): everything processes.
	r := run(t, microConfig(Elasticutor, 2000, 1), 5*simtime.Second)
	if r.Blocked > r.Generated/10 {
		t.Fatalf("unexpected blocking: %d vs %d generated", r.Blocked, r.Generated)
	}
	got := r.ThroughputMean
	if got < 1700 || got > 2300 {
		t.Fatalf("throughput = %v, want ~2000", got)
	}
	if r.Latency.Mean() > 50*simtime.Millisecond {
		t.Fatalf("mean latency = %v, want low under light load", r.Latency.Mean())
	}
}

func TestConservationAcrossParadigms(t *testing.T) {
	for _, p := range []Paradigm{Static, ResourceCentric, NaiveEC, Elasticutor} {
		cfg := microConfig(p, 1500, 7)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := e.Run(10 * simtime.Second)
		if r.Dropped != 0 {
			t.Fatalf("%v: dropped %d tuples", p, r.Dropped)
		}
		// Generated tuples are either processed or still in flight; nothing
		// vanishes. (Generated counts post-warmup == all, warmup=0.)
		inflight := r.Generated - r.Processed
		if inflight < 0 {
			t.Fatalf("%v: processed %d > generated %d", p, r.Processed, r.Generated)
		}
		// In-flight backlog at the end should be bounded by the credit cap
		// times the executor count (plus RC pause buffers).
		if p != ResourceCentric && inflight > int64(cfg.MaxInFlight+4096) {
			t.Fatalf("%v: %d tuples unaccounted", p, inflight)
		}
	}
}

func TestElasticutorBeatsStaticUnderSkewedSaturation(t *testing.T) {
	// Offered load at cluster capacity with a strongly skewed key space
	// (mild Zipf over 10k keys barely skews 28 executors at this small
	// scale, so sharpen it): static executors hashed the hot keys saturate
	// while others idle; Elasticutor rebalances shards onto all cores.
	// The skew must bite at executor granularity while every single key stays
	// below one core's capacity (per-key order bounds any paradigm): 200 keys
	// at zipf 0.5 puts the top key at ~3.5% (875/s at 25k offered < 1000/s).
	mk := func(p Paradigm) *Report {
		cfg := microConfig(p, 25000, 3)
		cfg.WarmUp = 4 * simtime.Second // exclude the scale-up ramp
		zipf := workload.NewZipf(200, 0.5, simtime.NewRand(3))
		cfg.Sources[0].Sample = func(now simtime.Time) (stream.Key, int, interface{}) {
			return zipf.Sample(), 128, nil
		}
		return run(t, cfg, 14*simtime.Second)
	}
	rStatic := mk(Static)
	rEC := mk(Elasticutor)
	if rEC.ThroughputMean <= rStatic.ThroughputMean*1.1 {
		t.Fatalf("EC %.0f/s not clearly above static %.0f/s",
			rEC.ThroughputMean, rStatic.ThroughputMean)
	}
}

func TestShuffleDynamicsHurtRCMoreThanEC(t *testing.T) {
	// ω=12 shuffles/min at small scale: RC pays global syncs, EC pays only
	// local shard reassignments.
	mk := func(p Paradigm) *Report {
		cfg := microConfig(p, 24000, 5)
		cfg.WarmUp = 4 * simtime.Second
		// Heavier skew concentrated on fewer keys so shuffles genuinely move
		// load between executors; every key stays under one core's capacity.
		zipf := workload.NewZipf(300, 0.5, simtime.NewRand(5))
		cfg.Sources[0].Sample = func(now simtime.Time) (stream.Key, int, interface{}) {
			return zipf.Sample(), 128, nil
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Every(2*simtime.Second, zipf.Shuffle)
		return e.Run(24 * simtime.Second)
	}
	rc := mk(ResourceCentric)
	ec := mk(Elasticutor)
	if rc.Repartitions == 0 {
		t.Fatal("RC never repartitioned under a shuffling workload")
	}
	if ec.Reassignments == 0 {
		t.Fatal("EC never reassigned shards under a shuffling workload")
	}
	if ec.ThroughputMean <= rc.ThroughputMean {
		t.Fatalf("EC %.0f/s not above RC %.0f/s under dynamics",
			ec.ThroughputMean, rc.ThroughputMean)
	}
	if ec.Latency.Mean() >= rc.Latency.Mean() {
		t.Fatalf("EC latency %v not below RC %v", ec.Latency.Mean(), rc.Latency.Mean())
	}
}

func TestRCRepartitionPausesAndResumes(t *testing.T) {
	cfg := microConfig(ResourceCentric, 10000, 9)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec()
	zipf := workload.NewZipf(spec.Keys, spec.Skew, simtime.NewRand(9))
	cfg.Sources[0].Sample = func(now simtime.Time) (stream.Key, int, interface{}) {
		return zipf.Sample(), spec.TupleBytes, nil
	}
	e.Every(4*simtime.Second, zipf.Shuffle)
	r := e.Run(15 * simtime.Second)
	if r.Repartitions == 0 {
		t.Fatal("no repartitions happened")
	}
	if r.RepartitionSync <= 0 || r.RepartitionTime < r.RepartitionSync {
		t.Fatalf("repartition accounting wrong: sync=%v total=%v",
			r.RepartitionSync, r.RepartitionTime)
	}
	// After the run no operator may be left paused (protocol completed or
	// the run ended mid-flight — paused flag must only persist with an
	// active repartition).
	for _, rt := range e.ops {
		if rt.paused && rt.repartition == nil {
			t.Fatal("operator left paused without an active repartition")
		}
	}
}

func TestElasticutorReassignsMostlyLocally(t *testing.T) {
	cfg := microConfig(Elasticutor, 20000, 11)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec()
	zipf := workload.NewZipf(spec.Keys, spec.Skew, simtime.NewRand(11))
	cfg.Sources[0].Sample = func(now simtime.Time) (stream.Key, int, interface{}) {
		return zipf.Sample(), spec.TupleBytes, nil
	}
	e.Every(5*simtime.Second, zipf.Shuffle)
	r := e.Run(20 * simtime.Second)
	if r.Reassignments == 0 {
		t.Fatal("no reassignments")
	}
	if r.IntraNodeReassigns+r.InterNodeReassigns != r.Reassignments {
		t.Fatal("reassign accounting inconsistent")
	}
}

func TestNaiveECMigratesMoreThanElasticutor(t *testing.T) {
	mk := func(p Paradigm) *Report {
		cfg := microConfig(p, 25000, 13)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec := workload.DefaultSpec()
		zipf := workload.NewZipf(spec.Keys, spec.Skew, simtime.NewRand(13))
		cfg.Sources[0].Sample = func(now simtime.Time) (stream.Key, int, interface{}) {
			return zipf.Sample(), spec.TupleBytes, nil
		}
		e.Every(3*simtime.Second, zipf.Shuffle)
		return e.Run(20 * simtime.Second)
	}
	naive := mk(NaiveEC)
	ec := mk(Elasticutor)
	// Table 2's qualitative claim: the optimized scheduler moves less state
	// across the network.
	if ec.MigrationBytes > naive.MigrationBytes {
		t.Fatalf("EC migrated %d > naive %d", ec.MigrationBytes, naive.MigrationBytes)
	}
}

func TestThroughputSeriesSampled(t *testing.T) {
	r := run(t, microConfig(Elasticutor, 3000, 17), 6*simtime.Second)
	if r.ThroughputSeries.Len() < 4 {
		t.Fatalf("series too short: %d points", r.ThroughputSeries.Len())
	}
	if r.ThroughputSeries.Mean() <= 0 {
		t.Fatal("series empty")
	}
}

func TestWarmupExcludesEarlyMetrics(t *testing.T) {
	cfg := microConfig(Elasticutor, 2000, 19)
	cfg.WarmUp = 3 * simtime.Second
	r := run(t, cfg, 6*simtime.Second)
	// Roughly half the tuples are excluded.
	if r.Generated > 4*3*2000/2*2 { // loose upper bound
		t.Fatalf("warmup not applied: generated=%d", r.Generated)
	}
	if r.MeasuredSpan != 3*simtime.Second {
		t.Fatalf("measured span = %v", r.MeasuredSpan)
	}
}

func TestSchedulingWallRecorded(t *testing.T) {
	r := run(t, microConfig(Elasticutor, 2000, 23), 5*simtime.Second)
	if len(r.SchedulingWall) == 0 {
		t.Fatal("no scheduling rounds recorded")
	}
	if r.MeanSchedulingWall() <= 0 {
		t.Fatal("zero scheduling wall time")
	}
}

func TestSourceDriverRequired(t *testing.T) {
	cfg := microConfig(Static, 100, 29)
	cfg.Sources = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for missing source driver")
	}
}

func TestBatchWeightScaling(t *testing.T) {
	// The same offered rate with batch=4 must process the same tuple volume.
	cfg1 := microConfig(Elasticutor, 4000, 31)
	cfg4 := microConfig(Elasticutor, 4000, 31)
	cfg4.Batch = 4
	r1 := run(t, cfg1, 5*simtime.Second)
	r4 := run(t, cfg4, 5*simtime.Second)
	ratio := r4.ThroughputMean / r1.ThroughputMean
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("batched throughput diverges: %.0f vs %.0f", r4.ThroughputMean, r1.ThroughputMean)
	}
}

func TestEngineDeterminism(t *testing.T) {
	r1 := run(t, microConfig(Elasticutor, 5000, 37), 4*simtime.Second)
	r2 := run(t, microConfig(Elasticutor, 5000, 37), 4*simtime.Second)
	if r1.Processed != r2.Processed || r1.Generated != r2.Generated ||
		r1.Reassignments != r2.Reassignments {
		t.Fatalf("non-deterministic: %v vs %v", r1, r2)
	}
}
