package engine

import (
	"fmt"

	"repro/internal/balancer"
	"repro/internal/executor"
	"repro/internal/simtime"
	"repro/internal/state"
)

// This file is the mechanism half of operator-level repartitioning: the
// four-phase global synchronization protocol. The controller that decides
// when to repartition and which shards move is the rc policy
// (internal/policy); it triggers the protocol through policy.Host.

// rcRepartition tracks one in-progress operator-level key repartitioning of
// the resource-centric baseline (§1: pause upstream → drain in-flight →
// migrate state → update upstream routing tables → resume).
type rcRepartition struct {
	moves []balancer.Move
	// srcEx/dstEx pin the executors of each move by pointer: cluster churn
	// can retire executors (shifting rt.execs indices) while a repartition
	// is in flight, so completion must not trust the indices in moves.
	srcEx, dstEx []*executor.Executor
	// released[k] records that migrateShards already extracted move k's
	// shard state: churn-driven retirement must then leave the move to the
	// protocol instead of migrating the shard a second time.
	released   []bool
	started    simtime.Time
	pausedAt   simtime.Time
	drainedAt  simtime.Time
	migratedAt simtime.Time
	bytes      int64
}

// upstreamExecutorCount counts the executors (and source instances) feeding
// an operator: the cardinality of the global synchronization (Fig 9a).
func (e *Engine) upstreamExecutorCount(rt *opRuntime) int {
	n := 0
	for _, u := range rt.op.Upstream() {
		if up := e.ops[u]; up != nil {
			n += len(up.execs)
		} else if insts := e.sources[u]; insts != nil {
			n += len(insts)
		}
	}
	return n
}

// startRepartition runs the four-phase protocol. Control costs are modeled
// as serial per-upstream-executor work at the controller (pausing and later
// updating every upstream routing table), which is what makes RC sync time
// grow with topology fan-in while Elasticutor's stays flat.
func (e *Engine) startRepartition(rt *opRuntime, moves []balancer.Move) {
	rp := &rcRepartition{moves: moves, released: make([]bool, len(moves)), started: e.clock.Now()}
	for _, mv := range moves {
		rp.srcEx = append(rp.srcEx, rt.execs[mv.From])
		rp.dstEx = append(rp.dstEx, rt.execs[mv.To])
	}
	rt.repartition = rp
	e.emit(Event{Kind: EventRepartitionStart, At: rp.started, Node: -1, Operator: rt.op.Name,
		Detail: fmt.Sprintf("%d move(s)", len(moves))})
	upstream := e.upstreamExecutorCount(rt)
	pauseCost := simtime.Duration(upstream) * e.cfg.CtrlPerUpstream

	// Phase a: pause all upstream executors.
	e.clock.After(pauseCost, func() {
		rt.paused = true
		rp.pausedAt = e.clock.Now()
		e.awaitDrain(rt, rp)
	})
}

// awaitDrain polls until every executor of the operator has processed its
// in-flight tuples (phase b).
func (e *Engine) awaitDrain(rt *opRuntime, rp *rcRepartition) {
	if e.stopped {
		return
	}
	for _, ex := range rt.execs {
		if !ex.Idle() || e.inflight[ex] != 0 {
			e.clock.After(simtime.Millisecond, func() { e.awaitDrain(rt, rp) })
			return
		}
	}
	rp.drainedAt = e.clock.Now()
	e.migrateShards(rt, rp)
}

// migrateShards performs phase c: move the state of each reassigned operator
// shard between executors, across the network when they live on different
// nodes.
func (e *Engine) migrateShards(rt *opRuntime, rp *rcRepartition) {
	remaining := len(rp.moves)
	if remaining == 0 {
		rp.migratedAt = e.clock.Now()
		e.finishRepartition(rt, rp)
		return
	}
	done := func() {
		remaining--
		if remaining == 0 {
			rp.migratedAt = e.clock.Now()
			e.finishRepartition(rt, rp)
		}
	}
	for k, mv := range rp.moves {
		src := rp.srcEx[k]
		dst := rp.dstEx[k]
		if src.Dead() {
			// The source was retired by cluster churn after the moves were
			// decided: a graceful retirement already handed this shard to a
			// survivor (retireExecutor migrates every unreleased move), a
			// hard failure wrote it off (counted in LostStateBytes then).
			e.clock.After(0, done)
			continue
		}
		redirected := false
		if dst.Dead() {
			// The destination retired while the repartition was pending:
			// deliver to the survivor the routing fallback will pick.
			dst = rt.execs[mv.Shard%len(rt.execs)]
			rp.dstEx[k] = dst
			redirected = true
		}
		rp.released[k] = true
		mig := src.ReleaseShard(state.ShardID(mv.Shard))
		e.r.RepartitionBytes += int64(mig.Bytes)
		rp.bytes += int64(mig.Bytes)
		e.r.RepartitionMove++
		// A fallback-chosen destination may already hold state a racing
		// churn migration delivered; adopt leniently there (first wins).
		adopt := dst.AdoptShard
		if redirected {
			adopt = dst.AdoptShardIfAbsent
		}
		if src.LocalNode() == dst.LocalNode() {
			// Intra-process state sharing applies to RC too (§5 fairness).
			adopt(mig)
			e.clock.After(0, done)
			continue
		}
		// RC pays an extra coordination round between the two executors on
		// top of serialization (inter-executor state handoff; Fig 9b shows
		// RC migrating slightly slower than Elasticutor).
		e.clock.After(e.cfg.ControlDelay+e.cfg.SerializeOverhead, func() {
			e.cluster.Send(src.LocalNode(), dst.LocalNode(), mig.Bytes, func() {
				if dst.Dead() {
					// Retired mid-flight; hand the state to the survivor the
					// routing fallback will point at, and repin the move so
					// finishRepartition routes to the actual recipient.
					target := rt.execs[mv.Shard%len(rt.execs)]
					rp.dstEx[k] = target
					target.AdoptShardIfAbsent(mig)
				} else {
					adopt(mig)
				}
				done()
			})
		})
	}
}

// finishRepartition performs phase d: update every upstream executor's
// routing table, then resume the stream and replay buffered tuples.
func (e *Engine) finishRepartition(rt *opRuntime, rp *rcRepartition) {
	upstream := e.upstreamExecutorCount(rt)
	updateCost := simtime.Duration(upstream) * e.cfg.CtrlPerUpstream
	e.clock.After(updateCost, func() {
		inter := 0
		for k, mv := range rp.moves {
			if !rp.released[k] {
				// The source retired before this move's state was extracted:
				// retireExecutors already migrated the shard and remapped its
				// routing — overwriting that here would point the shard at an
				// executor that never received the state.
				continue
			}
			if rp.srcEx[k].LocalNode() != rp.dstEx[k].LocalNode() {
				inter++
			}
			// Resolve the destination's index at completion time: churn may
			// have compacted rt.execs since the moves were decided. A retired
			// destination falls back to the deterministic survivor spread.
			if dstIdx := execIndex(rt, rp.dstEx[k]); dstIdx >= 0 {
				rt.opRouting[mv.Shard] = dstIdx
			} else {
				rt.opRouting[mv.Shard] = mv.Shard % len(rt.execs)
			}
		}
		rt.paused = false
		now := e.clock.Now()
		e.r.Repartitions++
		e.r.RepartitionTime += now.Sub(rp.started)
		// "Sync" in the paper's Fig 8 sense: everything except the state
		// transfer itself.
		sync := rp.drainedAt.Sub(rp.started) + now.Sub(rp.migratedAt)
		e.r.RepartitionSync += sync
		rt.repartition = nil
		// The span's replay counts come from the buffer as it stands at the
		// resume instant: nothing can land in it between here and replayPaused
		// (a clock callback runs to completion before any other event).
		replayN, replayW := 0, int64(0)
		for _, p := range rt.pauseBuf {
			replayN++
			replayW += int64(p.t.Weight)
		}
		e.emit(Event{Kind: EventRepartitionFinish, At: now, Node: -1, Operator: rt.op.Name,
			Detail: fmt.Sprintf("%d move(s), %v total", len(rp.moves), now.Sub(rp.started)),
			Span: &RepartitionSpan{
				Operator:   rt.op.Name,
				Start:      rp.started,
				Pause:      rp.pausedAt.Sub(rp.started),
				Drain:      rp.drainedAt.Sub(rp.pausedAt),
				Migrate:    rp.migratedAt.Sub(rp.drainedAt),
				Reroute:    now.Sub(rp.migratedAt),
				Moves:      len(rp.moves),
				InterMoves: inter,
				Bytes:      rp.bytes,
				Replayed:   replayN,
				ReplayedW:  replayW,
			}})
		e.pol.RepartitionFinished(rt)
		if e.onRepartition != nil {
			e.onRepartition(RepartitionReport{
				Moves:      len(rp.moves),
				Bytes:      rp.bytes,
				Sync:       sync,
				Migration:  rp.migratedAt.Sub(rp.drainedAt),
				Total:      now.Sub(rp.started),
				InterMoves: inter,
			})
		}
		e.replayPaused(rt)
	})
}
