package engine

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/executor"
	"repro/internal/qmodel"
	"repro/internal/scheduler"
	"repro/internal/stream"
)

// startControlLoops installs the paradigm's control plane.
func (e *Engine) startControlLoops() {
	switch e.cfg.Paradigm {
	case Static:
		// No elasticity: nothing to do.
	case ResourceCentric:
		e.Every(e.cfg.SchedulePeriod, e.rcTick)
	case NaiveEC, Elasticutor:
		e.Every(e.cfg.RebalancePeriod, e.rebalanceTick)
		if e.cfg.FixedCores == 0 {
			e.Every(e.cfg.SchedulePeriod, e.elasticTick)
		}
	}
}

// rebalanceTick runs the §3.1 intra-executor load balancer on every elastic
// executor, using the loads accumulated in the current measurement window.
func (e *Engine) rebalanceTick() {
	for _, ex := range e.elastic {
		ex.Rebalance()
	}
}

// elasticTick is one round of the dynamic scheduler (§4): measure, model,
// allocate (qmodel), assign (Algorithm 1 or the naive variant), apply.
func (e *Engine) elasticTick() {
	m := len(e.elastic)
	if m == 0 {
		return
	}
	loads := make([]qmodel.ExecutorLoad, m)
	intensity := make([]float64, m)
	var lambda0 float64
	for j, ex := range e.elastic {
		w := ex.TakeWindow()
		mu := w.Mu
		if mu <= 0 {
			mu = e.fallbackMu(e.elasticOp[j].op)
		}
		e.lastMuOf(ex, &mu)
		lambda := w.Lambda
		if b := e.blockedW[ex]; b > 0 && w.Span > 0 {
			lambda += float64(b) / w.Span.Seconds()
			delete(e.blockedW, ex)
		}
		loads[j] = qmodel.ExecutorLoad{Lambda: lambda, Mu: mu}
		intensity[j] = w.DataIntensity
		if e.elasticOp[j].firstHop {
			lambda0 += lambda
		}
	}

	// Available budget: every core not reserved for sources.
	available := e.cluster.TotalCores() - e.sourceCoreCount()

	start := time.Now()
	alloc := qmodel.Allocate(loads, lambda0, e.cfg.Tmax, available)

	in := scheduler.Input{
		Capacity:      e.elasticCapacity(),
		Local:         make([]int, m),
		StateBytes:    make([]float64, m),
		DataIntensity: intensity,
		Existing:      e.existingMatrix(),
		Alloc:         alloc.K,
		Phi:           e.cfg.Phi,
	}
	for j, ex := range e.elastic {
		in.Local[j] = int(ex.LocalNode())
		in.StateBytes[j] = float64(e.executorStateBytes(j))
	}
	var res scheduler.Result
	var err error
	if e.cfg.Paradigm == NaiveEC {
		res, err = scheduler.NaiveAssign(in)
	} else {
		res, err = scheduler.Assign(in)
	}
	e.r.SchedulingWall = append(e.r.SchedulingWall, time.Since(start))
	if err != nil {
		// Demand exceeded capacity despite the qmodel cap; skip this round.
		return
	}
	e.applyAssignment(res.X)
}

// lastMus caches μ estimates between windows.
func (e *Engine) lastMuOf(ex *executor.Executor, mu *float64) {
	if e.lastMu == nil {
		e.lastMu = make(map[*executor.Executor]float64)
	}
	if *mu > 0 {
		e.lastMu[ex] = *mu
		return
	}
	if prev, ok := e.lastMu[ex]; ok {
		*mu = prev
	}
}

// fallbackMu derives a service-rate estimate from the operator's cost model
// before any measurements exist.
func (e *Engine) fallbackMu(op *stream.Operator) float64 {
	cost := op.Cost(stream.Tuple{Bytes: op.OutBytes, Weight: 1})
	if cost <= 0 {
		return 0
	}
	return 1 / cost.Seconds()
}

// sourceCoreCount returns the cores reserved for source instances (zero when
// sources are configured core-free).
func (e *Engine) sourceCoreCount() int {
	if e.cfg.SourcesFree {
		return 0
	}
	n := 0
	for _, insts := range e.sources {
		n += len(insts)
	}
	return n
}

// elasticCapacity returns per-node core capacity available to elastic
// executors: total cores minus source reservations on that node.
func (e *Engine) elasticCapacity() []int {
	cap := make([]int, e.cluster.Nodes())
	for _, core := range e.cluster.Cores() {
		cap[core.Node]++
	}
	if !e.cfg.SourcesFree {
		for _, insts := range e.sources {
			for _, inst := range insts {
				cap[inst.node]--
			}
		}
	}
	for i, c := range cap {
		if c < 0 {
			cap[i] = 0
		}
	}
	return cap
}

// existingMatrix builds X̃ from the engine's concrete core bookkeeping.
func (e *Engine) existingMatrix() [][]int {
	n, m := e.cluster.Nodes(), len(e.elastic)
	x := make([][]int, n)
	for i := range x {
		x[i] = make([]int, m)
	}
	j := 0
	for _, rt := range e.opsInOrder() {
		for i := range rt.execs {
			for _, core := range rt.cores[i] {
				x[e.cluster.NodeOf(core)][j]++
			}
			j++
		}
	}
	return x
}

// opsInOrder iterates operators deterministically (topology order) so that
// elastic executor indexing is stable.
func (e *Engine) opsInOrder() []*opRuntime {
	var out []*opRuntime
	for _, op := range e.cfg.Topology.Operators() {
		if rt := e.ops[op.ID]; rt != nil {
			out = append(out, rt)
		}
	}
	return out
}

// executorStateBytes returns the aggregate state size s_j of elastic
// executor j (z shards × per-shard size).
func (e *Engine) executorStateBytes(j int) int {
	op := e.elasticOp[j].op
	return op.StatePerShard * e.cfg.Z
}

// applyAssignment diffs the target matrix against current core holdings and
// applies revocations then grants through the executors' elastic APIs.
func (e *Engine) applyAssignment(x [][]int) {
	// Flatten executor indexing identically to existingMatrix.
	type slot struct {
		rt  *opRuntime
		idx int
	}
	var slots []slot
	for _, rt := range e.opsInOrder() {
		for i := range rt.execs {
			slots = append(slots, slot{rt, i})
		}
	}
	// Phase 1: revoke surplus cores per (node, executor).
	for j, s := range slots {
		ex := s.rt.execs[s.idx]
		byNode := make(map[cluster.NodeID][]cluster.CoreID)
		for _, core := range s.rt.cores[s.idx] {
			n := e.cluster.NodeOf(core)
			byNode[n] = append(byNode[n], core)
		}
		for n, cores := range byNode {
			want := x[n][j]
			for len(cores) > want {
				core := cores[len(cores)-1]
				cores = cores[:len(cores)-1]
				if ex.RemoveCore(core) {
					e.removeCoreRecord(s.rt, s.idx, core)
					e.releaseCore(core)
				} else {
					break // last core of the executor; keep it
				}
			}
		}
	}
	// Phase 2: grant missing cores.
	for j, s := range slots {
		ex := s.rt.execs[s.idx]
		have := make(map[cluster.NodeID]int)
		for _, core := range s.rt.cores[s.idx] {
			have[e.cluster.NodeOf(core)]++
		}
		for n := 0; n < e.cluster.Nodes(); n++ {
			node := cluster.NodeID(n)
			for have[node] < x[n][j] {
				core, ok := e.takeFreeCoreOn(node)
				if !ok {
					break // a refused revocation above may leave a small deficit
				}
				ex.AddCore(core)
				s.rt.cores[s.idx] = append(s.rt.cores[s.idx], core)
				have[node]++
			}
		}
	}
}

func (e *Engine) removeCoreRecord(rt *opRuntime, idx int, core cluster.CoreID) {
	cs := rt.cores[idx]
	for i, c := range cs {
		if c == core {
			cs[i] = cs[len(cs)-1]
			rt.cores[idx] = cs[:len(cs)-1]
			return
		}
	}
}
