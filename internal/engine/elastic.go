package engine

import (
	"time"

	"repro/internal/balancer"
	"repro/internal/cluster"
	"repro/internal/executor"
	"repro/internal/policy"
	"repro/internal/qmodel"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/stream"
)

// This file is the engine's mechanism surface for elasticity control planes:
// the policy.Host implementation plus the measurement, capacity, and
// core-assignment machinery every paradigm shares. The decisions (when to
// rebalance, what to move, which assigner) live in internal/policy.

// startControlLoops installs the policy's control plane.
func (e *Engine) startControlLoops() {
	e.pol.Install((*host)(e))
}

// host adapts the engine to policy.Host, keeping the mechanism methods off
// the engine's public API.
type host Engine

// Knobs returns the paradigm-relevant configuration slice.
func (h *host) Knobs() policy.Knobs { return (*Engine)(h).knobs() }

func (e *Engine) knobs() policy.Knobs {
	return policy.Knobs{
		Y:               e.cfg.Y,
		YPerOp:          e.cfg.YPerOp,
		Z:               e.cfg.Z,
		OpShards:        e.cfg.OpShards,
		Theta:           e.cfg.Theta,
		Phi:             e.cfg.Phi,
		Tmax:            e.cfg.Tmax,
		SchedulePeriod:  e.cfg.SchedulePeriod,
		RebalancePeriod: e.cfg.RebalancePeriod,
		FixedCores:      e.cfg.FixedCores,
	}
}

// Now returns the current virtual time.
func (h *host) Now() simtime.Time { return (*Engine)(h).clock.Now() }

// Every schedules fn at each multiple of interval.
func (h *host) Every(interval simtime.Duration, fn func()) { (*Engine)(h).Every(interval, fn) }

// Operators lists the non-source operator runtimes in topology order.
func (h *host) Operators() []policy.Operator {
	e := (*Engine)(h)
	rts := e.opsInOrder()
	out := make([]policy.Operator, len(rts))
	for i, rt := range rts {
		out[i] = rt
	}
	return out
}

// RebalanceAll runs the §3.1 intra-executor load balancer on every elastic
// executor, using the loads accumulated in the current measurement window.
func (h *host) RebalanceAll() {
	for _, ex := range (*Engine)(h).elastic {
		ex.Rebalance()
	}
}

// ExecutorLoads measures (and resets) every elastic executor's window:
// arrival/service rates with the backpressure-refused weight folded into λ
// so the model sees the *offered* rate, per-executor data intensity, and λ₀,
// the aggregate first-hop arrival rate.
func (h *host) ExecutorLoads() ([]qmodel.ExecutorLoad, []float64, float64) {
	e := (*Engine)(h)
	m := len(e.elastic)
	loads := make([]qmodel.ExecutorLoad, m)
	intensity := make([]float64, m)
	var lambda0 float64
	for j, ex := range e.elastic {
		w := ex.TakeWindow()
		mu := w.Mu
		if mu <= 0 {
			mu = e.fallbackMu(e.elasticOp[j].op)
		}
		e.lastMuOf(ex, &mu)
		lambda := w.Lambda
		if b := e.blockedW[ex]; b > 0 && w.Span > 0 {
			lambda += float64(b) / w.Span.Seconds()
			delete(e.blockedW, ex)
		}
		loads[j] = qmodel.ExecutorLoad{Lambda: lambda, Mu: mu}
		intensity[j] = w.DataIntensity
		if e.elasticOp[j].firstHop {
			lambda0 += lambda
		}
	}
	return loads, intensity, lambda0
}

// AvailableCores is the core budget open to elastic executors: every core
// not reserved for sources.
func (h *host) AvailableCores() int {
	e := (*Engine)(h)
	return e.cluster.TotalCores() - e.sourceCoreCount()
}

// SchedulerInput assembles the Algorithm-1 input from the engine's concrete
// bookkeeping plus the policy's allocation and intensity vectors.
func (h *host) SchedulerInput(alloc []int, intensity []float64) scheduler.Input {
	e := (*Engine)(h)
	m := len(e.elastic)
	in := scheduler.Input{
		Capacity:      e.elasticCapacity(),
		Local:         make([]int, m),
		StateBytes:    make([]float64, m),
		DataIntensity: intensity,
		Existing:      e.existingMatrix(),
		Alloc:         alloc,
		Phi:           e.cfg.Phi,
	}
	for j, ex := range e.elastic {
		in.Local[j] = int(ex.LocalNode())
		in.StateBytes[j] = float64(e.executorStateBytes(j))
	}
	return in
}

// ApplyAssignment applies the target core matrix through the elastic APIs.
func (h *host) ApplyAssignment(x [][]int) { (*Engine)(h).applyAssignment(x) }

// RecordSchedulingWall logs one scheduling decision's wall-clock cost.
func (h *host) RecordSchedulingWall(d time.Duration) {
	e := (*Engine)(h)
	e.r.SchedulingWall = append(e.r.SchedulingWall, d)
	e.emit(Event{Kind: EventPolicyInvoked, At: e.clock.Now(), Node: -1, Detail: e.pol.Name()})
}

// StartRepartition runs the global repartition protocol for the decided
// moves. The operator handle must come from this host's Operators.
func (h *host) StartRepartition(op policy.Operator, moves []balancer.Move) {
	e := (*Engine)(h)
	rt, ok := op.(*opRuntime)
	if !ok {
		panic("engine: StartRepartition with a foreign Operator handle")
	}
	e.startRepartition(rt, moves)
}

// lastMus caches μ estimates between windows.
func (e *Engine) lastMuOf(ex *executor.Executor, mu *float64) {
	if e.lastMu == nil {
		e.lastMu = make(map[*executor.Executor]float64)
	}
	if *mu > 0 {
		e.lastMu[ex] = *mu
		return
	}
	if prev, ok := e.lastMu[ex]; ok {
		*mu = prev
	}
}

// fallbackMu derives a service-rate estimate from the operator's cost model
// before any measurements exist.
func (e *Engine) fallbackMu(op *stream.Operator) float64 {
	cost := op.Cost(stream.Tuple{Bytes: op.OutBytes, Weight: 1})
	if cost <= 0 {
		return 0
	}
	return 1 / cost.Seconds()
}

// sourceCoreCount returns the cores reserved for source instances (zero when
// sources are configured core-free).
func (e *Engine) sourceCoreCount() int {
	if e.cfg.SourcesFree {
		return 0
	}
	n := 0
	for _, insts := range e.sources {
		for _, inst := range insts {
			if !inst.freeRide {
				n++
			}
		}
	}
	return n
}

// elasticCapacity returns per-node core capacity available to elastic
// executors: total cores minus source reservations on that node.
func (e *Engine) elasticCapacity() []int {
	cap := make([]int, e.cluster.Nodes())
	for _, core := range e.cluster.Cores() {
		if e.cluster.NodeAlive(core.Node) {
			cap[core.Node]++
		}
	}
	if !e.cfg.SourcesFree {
		for _, insts := range e.sources {
			for _, inst := range insts {
				if !inst.freeRide {
					cap[inst.node]--
				}
			}
		}
	}
	for i, c := range cap {
		if c < 0 {
			cap[i] = 0
		}
	}
	return cap
}

// existingMatrix builds X̃ from the engine's concrete core bookkeeping.
func (e *Engine) existingMatrix() [][]int {
	n, m := e.cluster.Nodes(), len(e.elastic)
	x := make([][]int, n)
	for i := range x {
		x[i] = make([]int, m)
	}
	j := 0
	for _, rt := range e.opsInOrder() {
		for i := range rt.execs {
			for _, core := range rt.cores[i] {
				x[e.cluster.NodeOf(core)][j]++
			}
			j++
		}
	}
	return x
}

// opsInOrder iterates operators deterministically (topology order) so that
// elastic executor indexing is stable.
func (e *Engine) opsInOrder() []*opRuntime {
	var out []*opRuntime
	for _, op := range e.cfg.Topology.Operators() {
		if rt := e.ops[op.ID]; rt != nil {
			out = append(out, rt)
		}
	}
	return out
}

// executorStateBytes returns the aggregate state size s_j of elastic
// executor j (z shards × per-shard size).
func (e *Engine) executorStateBytes(j int) int {
	op := e.elasticOp[j].op
	return op.StatePerShard * e.cfg.Z
}

// applyAssignment diffs the target matrix against current core holdings and
// applies revocations then grants through the executors' elastic APIs.
func (e *Engine) applyAssignment(x [][]int) {
	// Flatten executor indexing identically to existingMatrix.
	type slot struct {
		rt  *opRuntime
		idx int
	}
	var slots []slot
	for _, rt := range e.opsInOrder() {
		for i := range rt.execs {
			slots = append(slots, slot{rt, i})
		}
	}
	// Phase 1: revoke surplus cores per (node, executor). Nodes are visited
	// in ID order — when revocation stops at the executor's last live core,
	// the visiting order decides which node keeps it.
	for j, s := range slots {
		ex := s.rt.execs[s.idx]
		byNode := make(map[cluster.NodeID][]cluster.CoreID)
		for _, core := range s.rt.cores[s.idx] {
			n := e.cluster.NodeOf(core)
			byNode[n] = append(byNode[n], core)
		}
		for n := 0; n < e.cluster.Nodes(); n++ {
			node := cluster.NodeID(n)
			cores := byNode[node]
			want := x[n][j]
			for len(cores) > want {
				core := cores[len(cores)-1]
				cores = cores[:len(cores)-1]
				if ex.RemoveCore(core) {
					e.removeCoreRecord(s.rt, s.idx, core)
					e.releaseCore(core)
				} else {
					break // last core of the executor; keep it
				}
			}
		}
	}
	// Phase 2: grant missing cores.
	for j, s := range slots {
		ex := s.rt.execs[s.idx]
		have := make(map[cluster.NodeID]int)
		for _, core := range s.rt.cores[s.idx] {
			have[e.cluster.NodeOf(core)]++
		}
		for n := 0; n < e.cluster.Nodes(); n++ {
			node := cluster.NodeID(n)
			for have[node] < x[n][j] {
				core, ok := e.takeFreeCoreOn(node)
				if !ok {
					break // a refused revocation above may leave a small deficit
				}
				ex.AddCore(core)
				s.rt.cores[s.idx] = append(s.rt.cores[s.idx], core)
				have[node]++
			}
		}
	}
}

func (e *Engine) removeCoreRecord(rt *opRuntime, idx int, core cluster.CoreID) {
	cs := rt.cores[idx]
	for i, c := range cs {
		if c == core {
			cs[i] = cs[len(cs)-1]
			rt.cores[idx] = cs[:len(cs)-1]
			return
		}
	}
}
