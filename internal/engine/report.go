package engine

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

// Totals is the aggregate measurement block of a run: every whole-run
// counter, in real-tuple units (batch weights unfolded). Report embeds it
// anonymously, so the historical flat accessors (r.Processed, r.NodeDrains,
// …) keep working unchanged — which is what keeps the golden fingerprints
// byte-identical across the Report restructure.
type Totals struct {
	Generated int64 // tuples emitted by sources (post warm-up)
	Processed int64 // tuples processed at the measured operator (post warm-up)
	Blocked   int64 // source emissions skipped by backpressure
	Dropped   int64 // tuples rejected inside executors (should stay 0)

	// Elasticity cost counters, aggregated over all executors.
	MigrationBytes      int64
	RemoteTransferBytes int64
	Reassignments       int64
	IntraNodeReassigns  int64
	InterNodeReassigns  int64
	SyncTimeTotal       simtime.Duration
	MigrationTimeTotal  simtime.Duration

	// RC repartition accounting.
	Repartitions        int
	RepartitionTime     simtime.Duration // cumulative pause-to-resume time
	RepartitionSync     simtime.Duration // cumulative pause+drain+update time
	RepartitionMove     int64            // operator shards moved
	RepartitionBytes    int64            // state bytes moved by repartitions
	RepartitionReplayed int64            // tuple weight replayed after pauses

	// Cluster churn accounting (scenario subsystem).
	NodeJoins        int   // nodes added mid-run
	NodeDrains       int   // nodes removed gracefully
	NodeFails        int   // nodes failed hard
	RetiredExecutors int   // executors removed because their capacity vanished
	LostStateBytes   int64 // state destroyed by hard failures

	// Derived (filled by finalize).
	ThroughputMean float64 // tuples/s over the measured span
	MigrationRate  float64 // bytes/s over the measured span (Table 2)
	RemoteRate     float64 // bytes/s over the measured span (Table 2)
}

// ScaleAction is one issued autoscaling decision (internal/autoscale). The
// command is applied at the same control tick; in the rare case the engine
// refuses it (an infeasible drain), the refusal is recorded in
// Report.ChurnErrors and the cluster keeps the node — cross-check there.
type ScaleAction struct {
	At     simtime.Duration // virtual offset of the control tick
	Kind   CommandKind      // CmdAddNode or CmdDrainNode
	Node   int              // drain target node ID (-1 for adds)
	Reason string           // the controller's stated trigger
}

func (a ScaleAction) String() string {
	switch a.Kind {
	case CmdAddNode:
		return fmt.Sprintf("%v add-node (%s)", a.At, a.Reason)
	case CmdDrainNode:
		return fmt.Sprintf("%v drain-node %d (%s)", a.At, a.Node, a.Reason)
	}
	return fmt.Sprintf("%v %v (%s)", a.At, a.Kind, a.Reason)
}

// AutoscaleStats is the cost/SLO account of a run driven by a cluster
// autoscaler (see DESIGN.md "Autoscaling layer" for the definitions).
type AutoscaleStats struct {
	// Controller is the registry name of the autoscaler that drove the run.
	Controller string
	// Ticks counts control-loop invocations (one per interval).
	Ticks int
	// ScaleUps / ScaleDowns count issued node additions and drains, and
	// Actions is the ordered record of both. A command the engine refused
	// (infeasible for the live placement) is still counted here; the
	// refusal appears in Report.ChurnErrors and the churn counters
	// (NodeJoins/NodeDrains) record what actually happened.
	ScaleUps   int
	ScaleDowns int
	Actions    []ScaleAction
	// NodeSeconds integrates live nodes over virtual time at control-tick
	// resolution — the run's capacity cost.
	NodeSeconds float64
	// PeakNodes / MinNodesSeen bracket the live node count over the run.
	PeakNodes    int
	MinNodesSeen int
	// SLOViolation is the total virtual time spent in control windows that
	// violated the service objective (source backpressure refused demand,
	// or backlog above the configured threshold).
	SLOViolation simtime.Duration
}

// OperatorStats is one operator's slice of the report.
type OperatorStats struct {
	Name      string
	Executors int   // live executors at run end
	Retired   int   // executors removed by cluster churn
	Offered   int64 // tuple weight admitted toward the operator (whole run)
	Processed int64 // tuple weight its executors completed (whole run)

	MigrationBytes int64
	Reassignments  int64
}

// Report is the measurement output of one engine run: the embedded Totals
// (flat accessors preserved), the per-operator breakdown, and — for runs
// driven through the Run handle — the typed event timeline.
type Report struct {
	// Paradigm identifies the built-in paradigm, or -1 for a custom policy.
	Paradigm Paradigm
	// Policy is the registry name of the control plane that produced the run
	// (equals Paradigm.String() for the four built-ins).
	Policy       string
	Duration     simtime.Duration
	MeasuredSpan simtime.Duration // Duration minus warm-up

	Totals

	// PerOperator breaks the run down by non-source operator, in topology
	// order.
	PerOperator []OperatorStats

	// Timeline is the ordered event record of the run (churn, repartitions,
	// phases, policy invocations). Filled by the Run handle; empty for runs
	// driven directly through Engine.Run.
	Timeline []Event

	// ThroughputSeries is the 1-second instantaneous processing rate of the
	// measured operator (Fig 7 / Fig 16a).
	ThroughputSeries metrics.Series
	// LatencySeries is the 1-second mean processing latency (Fig 16b).
	LatencySeries metrics.Series

	// Latency is the end-to-end distribution at sink operators (post warm-up).
	Latency *metrics.Histogram

	// LatencyStages decomposes Latency into the four stages of DESIGN.md's
	// latency anatomy (queue wait, service, repartition stall, migration
	// stall); the stage sums tile Latency.Sum() exactly on the simulator and
	// within sampling tolerance on the runtime backend.
	LatencyStages *metrics.StageSet
	// LatencyQuantiles is the windowed tail-latency track: one
	// p50/p95/p99/max point per metrics window (the percentile analogue of
	// the mean-only LatencySeries).
	LatencyQuantiles metrics.QuantileSeries

	// SchedulingWall records the wall-clock runtime of each dynamic
	// scheduling decision (model + Algorithm 1), Table 3's metric.
	SchedulingWall []time.Duration

	// ChurnErrors records scheduled capacity events the engine refused
	// (infeasible for the live placement); the run continued without them.
	ChurnErrors []string

	// Autoscale is the cluster-controller account of the run: nil unless an
	// autoscaler was attached (internal/autoscale stamps it at run finish).
	Autoscale *AutoscaleStats

	Events uint64 // simulation events executed (diagnostics)

	// internal accumulation
	procRate    *metrics.Rate
	winLatency  *metrics.Histogram
	winStages   *metrics.StageSet
	lastStages  *metrics.StageSet     // last folded window (Snapshot's dominant stage)
	lastWindow  metrics.QuantilePoint // last folded window quantiles (Snapshot)
	seriesReady bool
}

func newReport(p Paradigm, policyName string) *Report {
	return &Report{
		Paradigm:      p,
		Policy:        policyName,
		Latency:       metrics.NewHistogram(),
		LatencyStages: metrics.NewStageSet(),
		procRate:      metrics.NewRate(simtime.Second),
		winLatency:    metrics.NewHistogram(),
		winStages:     metrics.NewStageSet(),
		lastStages:    metrics.NewStageSet(),
	}
}

func (r *Report) observeGenerated(now simtime.Time, w int, warm simtime.Duration) {
	if simtime.Duration(now) < warm {
		return
	}
	r.Generated += int64(w)
}

func (r *Report) observeProcessed(now simtime.Time, w int, warm simtime.Duration) {
	if simtime.Duration(now) < warm {
		return
	}
	r.Processed += int64(w)
	r.procRate.Add(now, float64(w))
}

func (r *Report) observeLatency(now simtime.Time, o metrics.StageObservation, warm simtime.Duration) {
	if simtime.Duration(now) < warm {
		return
	}
	r.Latency.Observe(o.Total, o.Weight)
	r.winLatency.Observe(o.Total, o.Weight)
	r.LatencyStages.Observe(o)
	r.winStages.Observe(o)
}

// sampleSeries appends the instantaneous throughput, mean latency, and
// windowed-percentile points for the current one-second window, then folds
// the window structures (quantile point appended before the reset).
func (r *Report) sampleSeries(now simtime.Time) {
	r.ThroughputSeries.Append(now, r.procRate.PerSecond(now))
	r.LatencySeries.Append(now, r.winLatency.Mean().Seconds())
	r.LatencyQuantiles.AppendWindow(now, r.winLatency)
	r.lastWindow, _ = r.LatencyQuantiles.Last()
	r.winLatency.Reset()
	r.lastStages, r.winStages = r.winStages, r.lastStages
	r.winStages.Reset()
}

func (r *Report) finalize() {
	if sec := r.MeasuredSpan.Seconds(); sec > 0 {
		r.ThroughputMean = float64(r.Processed) / sec
		r.MigrationRate = float64(r.MigrationBytes+r.RepartitionBytes) / sec
		r.RemoteRate = float64(r.RemoteTransferBytes) / sec
	}
}

// MeanSchedulingWall returns the average wall-clock scheduling time.
func (r *Report) MeanSchedulingWall() time.Duration {
	if len(r.SchedulingWall) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range r.SchedulingWall {
		sum += d
	}
	return sum / time.Duration(len(r.SchedulingWall))
}

// String summarizes the run.
func (r *Report) String() string {
	name := r.Policy
	if name == "" {
		name = r.Paradigm.String()
	}
	return fmt.Sprintf("%s: thr=%.0f/s meanLat=%v p99=%v gen=%d proc=%d blocked=%d migr=%.1fMB remote=%.1fMB reassign=%d repart=%d",
		name, r.ThroughputMean, r.Latency.Mean(), r.Latency.Quantile(0.99),
		r.Generated, r.Processed, r.Blocked,
		float64(r.MigrationBytes+r.RepartitionBytes)/(1<<20), float64(r.RemoteTransferBytes)/(1<<20),
		r.Reassignments, r.Repartitions)
}
