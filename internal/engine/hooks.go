package engine

import (
	"fmt"

	"repro/internal/balancer"
	"repro/internal/cluster"
	"repro/internal/executor"
	"repro/internal/simtime"
	"repro/internal/state"
)

// This file holds the experiment-facing control surface: fixed-core pinning
// (Fig 10–12 single-executor scalability), forced protocol invocations
// (Fig 8/9 timing breakdowns), and per-repartition reporting.

// RepartitionReport describes one completed RC operator-level repartitioning.
type RepartitionReport struct {
	Moves      int
	Bytes      int64
	Sync       simtime.Duration // pause + drain + routing update
	Migration  simtime.Duration // state transfer
	Total      simtime.Duration
	InterMoves int // moves whose executors lived on different nodes
}

// OnRepartition, when set, observes every completed RC repartitioning.
// Exposed for the Fig 8/9 experiments.
func (e *Engine) SetOnRepartition(fn func(RepartitionReport)) { e.onRepartition = fn }

// ElasticExecutors returns all executors of non-source operators in
// deterministic order (experiments and tests).
func (e *Engine) ElasticExecutors() []*executor.Executor { return e.elastic }

// ExecutorCounts returns the live executor count per non-source operator
// name (the backend-conformance suite compares these across backends).
func (e *Engine) ExecutorCounts() map[string]int {
	out := make(map[string]int, len(e.ops))
	for _, rt := range e.opsInOrder() {
		out[rt.op.Name] = len(rt.execs)
	}
	return out
}

// ExecutorsOf returns the executors of one operator.
func (e *Engine) ExecutorsOf(opID int) []*executor.Executor {
	for id, rt := range e.ops {
		if int(id) == opID {
			return rt.execs
		}
	}
	return nil
}

// ForceShardReassign initiates one intra- or inter-node shard reassignment
// on the first elastic executor and reports its protocol timings. The
// executor must already hold (or be grantable) a core in the requested
// placement; ForceShardReassign arranges one if needed. Returns an error if
// the topology placement cannot satisfy the request.
func (e *Engine) ForceShardReassign(inter bool, onDone func(executor.ReassignReport)) error {
	if len(e.elastic) == 0 {
		return fmt.Errorf("engine: no elastic executors")
	}
	ex := e.elastic[0]
	local := ex.LocalNode()
	// Ensure a destination task exists in the right placement.
	var wantNode cluster.NodeID
	if inter {
		if e.cluster.AliveNodes() < 2 {
			return fmt.Errorf("engine: inter-node reassign needs >= 2 live nodes")
		}
		// The next *live* node after local (slots may be dead after churn).
		wantNode = local
		for off := 1; off < e.cluster.Nodes(); off++ {
			cand := cluster.NodeID((int(local) + off) % e.cluster.Nodes())
			if e.cluster.NodeAlive(cand) {
				wantNode = cand
				break
			}
		}
		if wantNode == local {
			return fmt.Errorf("engine: no live destination node for inter-node reassign")
		}
	} else {
		wantNode = local
	}
	dst, haveTask := ex.TaskOnNode(wantNode)
	var sh state.ShardID
	var movable bool
	if haveTask {
		sh, movable = ex.AnyShardNotOn(dst)
	}
	if !haveTask || !movable {
		// No suitable destination (e.g. the executor's only local task owns
		// every shard): grant a fresh core in the requested placement — a
		// brand-new task owns nothing, so any shard can move to it.
		core, got := e.takeFreeCoreOn(wantNode)
		if !got {
			return fmt.Errorf("engine: no free core on node %d", wantNode)
		}
		dst = ex.AddCore(core)
		e.recordCore(ex, core)
		sh, movable = ex.AnyShardNotOn(dst)
		if !movable {
			return fmt.Errorf("engine: executor has no movable shard")
		}
	}
	if !ex.ReassignShard(sh, dst, onDone) {
		return fmt.Errorf("engine: reassignment refused")
	}
	return nil
}

// recordCore registers a directly granted core in the engine's bookkeeping
// so later scheduling rounds see it.
func (e *Engine) recordCore(ex *executor.Executor, core cluster.CoreID) {
	for _, rt := range e.ops {
		for i, cand := range rt.execs {
			if cand == ex {
				rt.cores[i] = append(rt.cores[i], core)
				return
			}
		}
	}
}

// ForceRCMove triggers the RC global repartitioning protocol for exactly one
// operator shard, moved from its current executor to executor dstIdx of the
// measured operator. Valid only under a dynamic-routing policy (rc).
func (e *Engine) ForceRCMove(dstIdx int, shard int) error {
	rt := e.ops[e.measureOp()]
	if rt == nil {
		return fmt.Errorf("engine: no measured operator")
	}
	if rt.opRouting == nil {
		return fmt.Errorf("engine: ForceRCMove requires a dynamic-routing policy (rc)")
	}
	if rt.repartition != nil || rt.paused {
		return fmt.Errorf("engine: repartition already in progress")
	}
	if dstIdx < 0 || dstIdx >= len(rt.execs) {
		return fmt.Errorf("engine: executor index %d out of range", dstIdx)
	}
	from := rt.opRouting[shard]
	if from == dstIdx {
		return fmt.Errorf("engine: shard already on executor %d", dstIdx)
	}
	e.startRepartition(rt, []balancer.Move{{Shard: shard, From: from, To: dstIdx}})
	return nil
}

// RCExecutorNodes returns the local nodes of the measured operator's RC
// executors, so experiments can pick intra- vs inter-node destinations.
func (e *Engine) RCExecutorNodes() []cluster.NodeID {
	rt := e.ops[e.measureOp()]
	if rt == nil {
		return nil
	}
	nodes := make([]cluster.NodeID, len(rt.execs))
	for i, ex := range rt.execs {
		nodes[i] = ex.LocalNode()
	}
	return nodes
}

// RCShardOn returns some operator shard currently routed to executor idx of
// the measured operator.
func (e *Engine) RCShardOn(idx int) (int, bool) {
	rt := e.ops[e.measureOp()]
	if rt == nil {
		return 0, false
	}
	for s, owner := range rt.opRouting {
		if owner == idx {
			return s, true
		}
	}
	return 0, false
}

// SetShardStateBytes overrides the per-shard state size of every elastic
// executor's store (Fig 9b / Fig 12 state-size sweeps).
func (e *Engine) SetShardStateBytes(bytes int) {
	for _, ex := range e.elastic {
		ex.SetStateBytesPerShard(bytes)
	}
}
