package metrics

import (
	"sync"
	"testing"

	"repro/internal/simtime"
)

func TestStageObservationResidualTiling(t *testing.T) {
	o := StageObservation{
		Total:       100 * simtime.Millisecond,
		Service:     30 * simtime.Millisecond,
		Repartition: 20 * simtime.Millisecond,
		Migration:   10 * simtime.Millisecond,
		Weight:      2,
	}
	if got := o.Queue(); got != 40*simtime.Millisecond {
		t.Fatalf("Queue residual = %v, want 40ms", got)
	}
	// Measured components overshooting total (scaled wall clock) clamp to 0,
	// never negative.
	o.Service = 200 * simtime.Millisecond
	if got := o.Queue(); got != 0 {
		t.Fatalf("overshoot Queue = %v, want 0", got)
	}
}

func TestStageSetObserveAndDominant(t *testing.T) {
	s := NewStageSet()
	if st, share := s.Dominant(); st != StageQueue || share != 0 {
		t.Fatalf("empty Dominant = %v/%v", st, share)
	}
	s.Observe(StageObservation{
		Total: 100 * simtime.Millisecond, Service: 70 * simtime.Millisecond, Weight: 1,
	})
	st, share := s.Dominant()
	if st != StageService {
		t.Fatalf("Dominant = %v, want service", st)
	}
	if share < 0.6 || share > 0.8 {
		t.Fatalf("service share = %v, want ~0.7", share)
	}
	// The four stages tile the total exactly.
	if got, want := s.Total(), s.Stage(StageQueue).Sum()+s.Stage(StageService).Sum()+
		s.Stage(StageRepartition).Sum()+s.Stage(StageMigration).Sum(); got != want {
		t.Fatalf("Total %v != Σ stages %v", got, want)
	}
	shares := s.Shares()
	var sum float64
	for _, f := range shares {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestStageNames(t *testing.T) {
	want := map[Stage]string{
		StageQueue: "queue", StageService: "service",
		StageRepartition: "repartition", StageMigration: "migration",
		Stage(99): "unknown",
	}
	for st, name := range want {
		if st.String() != name {
			t.Fatalf("%d.String() = %q, want %q", st, st.String(), name)
		}
	}
}

func TestQuantileSeries(t *testing.T) {
	var q QuantileSeries
	h := NewHistogram()
	// An empty window records a zero point with weight 0.
	q.AppendWindow(simtime.Time(simtime.Second), h)
	for i := 1; i <= 100; i++ {
		h.Observe(simtime.Duration(i)*simtime.Millisecond, 1)
	}
	q.AppendWindow(simtime.Time(2*simtime.Second), h)
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	last, ok := q.Last()
	if !ok || last.Weight != 100 {
		t.Fatalf("Last = %+v ok=%v", last, ok)
	}
	if last.P50 >= last.P99 || last.P99 > last.Max {
		t.Fatalf("quantiles not ordered: %+v", last)
	}
	if last.Max != 100*simtime.Millisecond {
		t.Fatalf("window max = %v", last.Max)
	}
	if got := q.MaxP99(); got != last.P99 {
		t.Fatalf("MaxP99 = %v, want %v", got, last.P99)
	}
	if p0 := q.Points()[0]; p0.Weight != 0 || p0.P99 != 0 {
		t.Fatalf("empty window point = %+v", p0)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time going backwards")
		}
	}()
	q.AppendWindow(simtime.Time(simtime.Second), h)
}

// TestStageRecorderFoldExactness drives 16 concurrent workers through the
// recorder and asserts the fold loses nothing: per-stage totals and weighted
// counts equal the exact sums of everything observed, and a second fold
// (after the reset) is empty.
func TestStageRecorderFoldExactness(t *testing.T) {
	const workers = 16
	const perWorker = 2000
	r := NewStageRecorder(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Observe(w, StageObservation{
					Total:       10 * simtime.Millisecond,
					Service:     4 * simtime.Millisecond,
					Repartition: 3 * simtime.Millisecond,
					Migration:   1 * simtime.Millisecond,
					Weight:      2,
				})
			}
		}(w)
	}
	wg.Wait()

	cum := NewStageSet()
	cumTotal := NewHistogram()
	win, winTotal := r.FoldWindow(cum, cumTotal)

	const n = workers * perWorker * 2 // weight 2
	if win.Count() != n || winTotal.Count() != n {
		t.Fatalf("fold count = %d/%d, want %d", win.Count(), winTotal.Count(), n)
	}
	wantTotals := map[Stage]simtime.Duration{
		StageQueue:       n * 2 * simtime.Millisecond, // 10-4-3-1 residual
		StageService:     n * 4 * simtime.Millisecond,
		StageRepartition: n * 3 * simtime.Millisecond,
		StageMigration:   n * 1 * simtime.Millisecond,
	}
	totals := win.Totals()
	for st, want := range wantTotals {
		if got := totals[st]; got != want {
			t.Fatalf("stage %v total = %v, want %v", st, got, want)
		}
	}
	if got, want := winTotal.Sum(), simtime.Duration(n)*10*simtime.Millisecond; got != want {
		t.Fatalf("end-to-end sum = %v, want %v", got, want)
	}
	// The window was merged into the cumulative structures too.
	if cum.Count() != n || cumTotal.Count() != n {
		t.Fatalf("cumulative count = %d/%d", cum.Count(), cumTotal.Count())
	}
	// Lanes were reset: a second fold is empty.
	win2, winTotal2 := r.FoldWindow(nil, nil)
	if win2.Count() != 0 || winTotal2.Count() != 0 {
		t.Fatalf("second fold not empty: %d/%d", win2.Count(), winTotal2.Count())
	}
}

func TestStageRecorderLaneModulo(t *testing.T) {
	r := NewStageRecorder(0) // clamps to 1 lane
	if r.Lanes() != 1 {
		t.Fatalf("Lanes = %d", r.Lanes())
	}
	r.Observe(17, StageObservation{Total: simtime.Millisecond, Weight: 1})
	win, _ := r.FoldWindow(nil, nil)
	if win.Count() != 1 {
		t.Fatalf("modulo lane lost the sample: %d", win.Count())
	}
}

func TestHistogramSumAndCumulativeLE(t *testing.T) {
	h := NewHistogram()
	h.Observe(simtime.Millisecond, 3)
	h.Observe(simtime.Second, 1)
	if got, want := h.Sum(), 3*simtime.Millisecond+simtime.Second; got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	if got := h.CumulativeLE(10 * simtime.Millisecond); got != 3 {
		t.Fatalf("CumulativeLE(10ms) = %d, want 3", got)
	}
	if got := h.CumulativeLE(10 * simtime.Second); got != 4 {
		t.Fatalf("CumulativeLE(10s) = %d, want 4", got)
	}
	if got := h.CumulativeLE(0); got != 0 {
		t.Fatalf("CumulativeLE(0) = %d, want 0", got)
	}
	c := h.Clone()
	c.Observe(simtime.Millisecond, 1)
	if h.Count() != 4 || c.Count() != 5 {
		t.Fatalf("Clone not independent: %d/%d", h.Count(), c.Count())
	}
}
