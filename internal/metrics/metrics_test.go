package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(10*simtime.Millisecond, 1)
	h.Observe(20*simtime.Millisecond, 1)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 14*simtime.Millisecond || mean > 16*simtime.Millisecond {
		t.Fatalf("Mean = %v, want ~15ms", mean)
	}
	if h.Min() != 10*simtime.Millisecond || h.Max() != 20*simtime.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramWeight(t *testing.T) {
	h := NewHistogram()
	h.Observe(simtime.Millisecond, 100)
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	var exact []float64
	r := simtime.NewRand(3)
	for i := 0; i < 50000; i++ {
		// Log-uniform latencies between 100µs and 1s.
		l := 100e-6 * math.Pow(1e4, r.Float64())
		d := simtime.Duration(l * float64(simtime.Second))
		h.Observe(d, 1)
		exact = append(exact, float64(d))
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := float64(h.Quantile(q))
		want := exact[int(q*float64(len(exact)-1))]
		if relErr := math.Abs(got-want) / want; relErr > 0.15 {
			t.Fatalf("q=%v: got %v want %v relErr %v", q, got, want, relErr)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	r := simtime.NewRand(5)
	for i := 0; i < 1000; i++ {
		h.Observe(simtime.Duration(r.Intn(1e9)), 1)
	}
	prev := simtime.Duration(0)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
	// The q>=1 contract: the 100th percentile is exactly the largest sample,
	// with no bucket rounding (and anything above 1 clamps to it).
	if got := h.Quantile(1.0); got != h.Max() {
		t.Fatalf("Quantile(1.0) = %v, want Max() = %v", got, h.Max())
	}
	if got := h.Quantile(1.5); got != h.Max() {
		t.Fatalf("Quantile(1.5) = %v, want Max() = %v", got, h.Max())
	}
}

func TestHistogramClampRange(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5, 1) // negative clamps to 0
	h.Observe(2000*simtime.Second, 1)
	if h.Count() != 2 {
		t.Fatal("samples lost")
	}
	if h.Quantile(1) != 2000*simtime.Second {
		t.Fatalf("max-bucket quantile = %v", h.Quantile(1))
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(simtime.Millisecond, 10)
	b.Observe(2*simtime.Millisecond, 30)
	a.Merge(b)
	if a.Count() != 40 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 2*simtime.Millisecond {
		t.Fatalf("merged max = %v", a.Max())
	}
	a.Reset()
	if a.Count() != 0 || a.Mean() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRateWindow(t *testing.T) {
	r := NewRate(simtime.Second)
	// 100 events at t=0..0.99s, 10ms apart -> rate 100/s at t=1s.
	for i := 0; i < 100; i++ {
		r.Add(simtime.Time(i)*simtime.Time(10*simtime.Millisecond), 1)
	}
	got := r.PerSecond(simtime.Time(simtime.Second) - 1)
	if math.Abs(got-100) > 10 {
		t.Fatalf("rate = %v, want ~100", got)
	}
	// After 2 idle seconds the rate decays to 0.
	if got := r.PerSecond(simtime.Time(3 * simtime.Second)); got != 0 {
		t.Fatalf("idle rate = %v, want 0", got)
	}
	if r.Total() != 100 {
		t.Fatalf("total = %v", r.Total())
	}
}

func TestRateSlidingDecay(t *testing.T) {
	r := NewRate(simtime.Second)
	r.Add(0, 100)
	// Half a window later, the burst still counts.
	if got := r.PerSecond(simtime.Time(500 * simtime.Millisecond)); got < 90 {
		t.Fatalf("rate after 0.5s = %v", got)
	}
	// Just past a full window, it has fully decayed.
	if got := r.PerSecond(simtime.Time(1100 * simtime.Millisecond)); got != 0 {
		t.Fatalf("rate after window = %v, want 0", got)
	}
}

func TestRateLongIdleFastForward(t *testing.T) {
	r := NewRate(simtime.Second)
	r.Add(0, 50)
	// Jump far ahead; the fast-forward path must not leave stale buckets.
	if got := r.PerSecond(simtime.Time(1000 * simtime.Second)); got != 0 {
		t.Fatalf("stale rate = %v", got)
	}
	r.Add(simtime.Time(1000*simtime.Second), 10)
	if got := r.PerSecond(simtime.Time(1000*simtime.Second) + 1); math.Abs(got-10) > 1 {
		t.Fatalf("rate after jump = %v, want ~10", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(2.5)
	if c.Value() != 7.5 {
		t.Fatalf("Value = %v", c.Value())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(0, 1)
	s.Append(simtime.Time(simtime.Second), 3)
	if s.Len() != 2 || s.Mean() != 2 {
		t.Fatalf("len=%d mean=%v", s.Len(), s.Mean())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time going backwards")
		}
	}()
	s.Append(0, 9)
}

func TestSeriesQuantile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Append(simtime.Time(i), float64(i))
	}
	if got := s.Quantile(0.5); math.Abs(got-50) > 2 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	var empty Series
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty series should report 0")
	}
}

func TestHistogramQuantileContainsSampleProperty(t *testing.T) {
	// Property: for a single-valued histogram, every quantile returns a value
	// within one bucket width of that value.
	f := func(raw uint32) bool {
		d := simtime.Duration(raw)
		h := NewHistogram()
		h.Observe(d, 7)
		q := h.Quantile(0.5)
		if d <= simtime.Microsecond {
			return q <= simtime.Microsecond
		}
		return float64(q) <= float64(d)*1.11 && float64(q) >= float64(d)/1.11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
