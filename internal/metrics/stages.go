package metrics

import (
	"sync"

	"repro/internal/simtime"
)

// Stage labels one component of end-to-end tuple latency. The four stages
// tile a tuple's lifetime exactly: everything that is not measured service
// time or an explicit repartition/migration stall is queue wait (network
// transit plus executor task-queue residence), computed as the residual at
// observation time. DESIGN.md "Latency anatomy" documents the taxonomy.
type Stage int

// The latency stages, in display order.
const (
	// StageQueue is the residual: network transit and executor task-queue
	// wait — end-to-end latency minus every explicitly attributed stage.
	StageQueue Stage = iota
	// StageService is handler execution time (the modeled per-tuple cost on
	// the simulator, the slept batch cost share on the runtime backend).
	StageService
	// StageRepartition is time spent buffered by the §3.3 operator-level
	// pause (paused routing on the simulator, the op pause buffer on the
	// runtime backend) and replayed afterwards.
	StageRepartition
	// StageMigration is time spent buffered behind an executor-level shard
	// reassignment (per-shard pause on the simulator; ~0 on the runtime
	// backend, whose shard handoff commits without per-shard buffering).
	StageMigration

	// NumStages is the number of latency stages.
	NumStages
)

var stageNames = [NumStages]string{"queue", "service", "repartition", "migration"}

func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// StageObservation is one attributed end-to-end latency sample: the total and
// the explicitly measured stage components carried by the tuple. The queue
// stage is not carried — it is the non-negative residual, so the four stages
// always sum to Total exactly (clamped when measured components overshoot,
// which only scaled wall clocks can produce).
type StageObservation struct {
	Total       simtime.Duration
	Service     simtime.Duration
	Repartition simtime.Duration
	Migration   simtime.Duration
	Weight      int
}

// Queue returns the residual queue-wait component of the observation.
func (o StageObservation) Queue() simtime.Duration {
	q := o.Total - o.Service - o.Repartition - o.Migration
	if q < 0 {
		q = 0
	}
	return q
}

// StageSet bundles one latency histogram per stage. Zero value is not ready;
// use NewStageSet.
type StageSet struct {
	h [NumStages]*Histogram
}

// NewStageSet returns an empty stage set.
func NewStageSet() *StageSet {
	s := &StageSet{}
	for i := range s.h {
		s.h[i] = NewHistogram()
	}
	return s
}

// Observe records one attributed sample into every stage histogram.
func (s *StageSet) Observe(o StageObservation) {
	s.h[StageQueue].Observe(o.Queue(), o.Weight)
	s.h[StageService].Observe(o.Service, o.Weight)
	s.h[StageRepartition].Observe(o.Repartition, o.Weight)
	s.h[StageMigration].Observe(o.Migration, o.Weight)
}

// Stage returns the histogram of one stage.
func (s *StageSet) Stage(st Stage) *Histogram { return s.h[st] }

// Merge adds all samples of other into s.
func (s *StageSet) Merge(other *StageSet) {
	for i := range s.h {
		s.h[i].Merge(other.h[i])
	}
}

// Reset clears every stage histogram.
func (s *StageSet) Reset() {
	for i := range s.h {
		s.h[i].Reset()
	}
}

// Count returns the weighted sample count (identical across stages, since
// every observation feeds all four).
func (s *StageSet) Count() uint64 { return s.h[StageQueue].Count() }

// Totals returns the per-stage total time (Σ sample × weight).
func (s *StageSet) Totals() [NumStages]simtime.Duration {
	var out [NumStages]simtime.Duration
	for i := range s.h {
		out[i] = s.h[i].Sum()
	}
	return out
}

// Total returns the summed end-to-end time across all stages.
func (s *StageSet) Total() simtime.Duration {
	var sum simtime.Duration
	for _, t := range s.Totals() {
		sum += t
	}
	return sum
}

// Dominant returns the stage with the largest total time share and that
// share in [0,1]. An empty set reports (StageQueue, 0). Ties resolve to the
// lowest stage index, so the answer is deterministic.
func (s *StageSet) Dominant() (Stage, float64) {
	return DominantOf(s.Totals())
}

// DominantOf returns the stage with the largest share of the given per-stage
// totals and that share in [0,1]. Empty totals report (StageQueue, 0); ties
// resolve to the lowest stage index, so the answer is deterministic.
func DominantOf(totals [NumStages]simtime.Duration) (Stage, float64) {
	var sum simtime.Duration
	best := StageQueue
	for st, t := range totals {
		sum += t
		if t > totals[best] {
			best = Stage(st)
		}
	}
	if sum == 0 {
		return StageQueue, 0
	}
	return best, totals[best].Seconds() / sum.Seconds()
}

// Shares returns each stage's fraction of the total attributed time.
func (s *StageSet) Shares() [NumStages]float64 {
	totals := s.Totals()
	var sum simtime.Duration
	for _, t := range totals {
		sum += t
	}
	var out [NumStages]float64
	if sum == 0 {
		return out
	}
	for i, t := range totals {
		out[i] = t.Seconds() / sum.Seconds()
	}
	return out
}

// QuantilePoint is one window of a QuantileSeries: the end-to-end latency
// quantiles of the samples observed during that window. A window with no
// samples records zeros with Weight 0.
type QuantilePoint struct {
	At                 simtime.Time
	P50, P95, P99, Max simtime.Duration
	Weight             uint64
}

// QuantileSeries is an append-only track of windowed latency percentiles —
// the tail-latency analogue of the mean-only Series. Points are appended at
// the metrics window tick from the window histogram about to be reset.
type QuantileSeries struct {
	points []QuantilePoint
}

// AppendWindow folds one window histogram into the series as a point at
// virtual time at. Call before resetting the window histogram.
func (q *QuantileSeries) AppendWindow(at simtime.Time, h *Histogram) {
	p := QuantilePoint{At: at, Weight: h.Count()}
	if p.Weight > 0 {
		p.P50 = h.Quantile(0.5)
		p.P95 = h.Quantile(0.95)
		p.P99 = h.Quantile(0.99)
		p.Max = h.Max()
	}
	if n := len(q.points); n > 0 && at < q.points[n-1].At {
		panic("metrics: quantile series time went backwards")
	}
	q.points = append(q.points, p)
}

// Len returns the number of recorded windows.
func (q *QuantileSeries) Len() int { return len(q.points) }

// Points returns the recorded windows (shared backing array; treat as
// read-only).
func (q *QuantileSeries) Points() []QuantilePoint { return q.points }

// Last returns the most recent window, if any.
func (q *QuantileSeries) Last() (QuantilePoint, bool) {
	if len(q.points) == 0 {
		return QuantilePoint{}, false
	}
	return q.points[len(q.points)-1], true
}

// MaxP99 returns the largest windowed p99 across the series — the spike the
// timeline figures annotate.
func (q *QuantileSeries) MaxP99() simtime.Duration {
	var max simtime.Duration
	for _, p := range q.points {
		if p.P99 > max {
			max = p.P99
		}
	}
	return max
}

// StageRecorder is the concurrent form of a StageSet: per-lane windows that
// worker goroutines observe into under independent locks, folded into merged
// window and cumulative structures at the metrics window tick. Same
// fold-point discipline as the runtime backend's striped counters — the hot
// path takes one short uncontended lane lock per *sampled* tuple, and the
// expensive merging happens once per window on the fold goroutine. The
// simulator uses a single lane (it is single-threaded per run).
type StageRecorder struct {
	lanes []recorderLane
}

type recorderLane struct {
	mu    sync.Mutex
	win   *StageSet
	total *Histogram // end-to-end window histogram (Σ of the stage components)
	_     [64]byte   // keep neighbouring lanes off one cache line
}

// NewStageRecorder returns a recorder with n lanes (minimum 1).
func NewStageRecorder(n int) *StageRecorder {
	if n < 1 {
		n = 1
	}
	r := &StageRecorder{lanes: make([]recorderLane, n)}
	for i := range r.lanes {
		r.lanes[i].win = NewStageSet()
		r.lanes[i].total = NewHistogram()
	}
	return r
}

// Lanes returns the lane count.
func (r *StageRecorder) Lanes() int { return len(r.lanes) }

// Observe records one attributed sample on a lane (lane is reduced modulo
// the lane count, so callers can pass any worker index).
func (r *StageRecorder) Observe(lane int, o StageObservation) {
	l := &r.lanes[lane%len(r.lanes)]
	l.mu.Lock()
	l.win.Observe(o)
	l.total.Observe(o.Total, o.Weight)
	l.mu.Unlock()
}

// FoldWindow drains every lane's window and returns the merged window stage
// set and end-to-end histogram. When cum/cumTotal are non-nil the window is
// also merged into them — the cumulative report structures. Lane windows are
// reset; no observation is lost (each lane is drained under its own lock).
func (r *StageRecorder) FoldWindow(cum *StageSet, cumTotal *Histogram) (*StageSet, *Histogram) {
	win := NewStageSet()
	winTotal := NewHistogram()
	for i := range r.lanes {
		l := &r.lanes[i]
		l.mu.Lock()
		win.Merge(l.win)
		winTotal.Merge(l.total)
		l.win.Reset()
		l.total.Reset()
		l.mu.Unlock()
	}
	if cum != nil {
		cum.Merge(win)
	}
	if cumTotal != nil {
		cumTotal.Merge(winTotal)
	}
	return win, winTotal
}
