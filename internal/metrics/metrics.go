// Package metrics provides the measurement primitives the Elasticutor
// evaluation reports: latency histograms with percentile queries, windowed
// throughput rates, and cumulative counters for state-migration and
// remote-transfer volume (Table 2).
//
// Everything operates on virtual time (simtime.Time); nothing here reads the
// wall clock.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simtime"
)

// Histogram is a log-bucketed latency histogram, HDR-style: buckets grow
// geometrically so that relative error is bounded (~5%) across nine orders of
// magnitude, from 1 µs to ~1000 s.
type Histogram struct {
	buckets []uint64
	count   uint64
	sum     float64          // seconds (Mean keeps its historical float path)
	total   simtime.Duration // exact Σ sample × weight (Sum; stage tiling)
	min     simtime.Duration
	max     simtime.Duration
}

const (
	histMinVal      = float64(simtime.Microsecond)
	histGrowth      = 1.1
	histBucketCount = 400
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]uint64, histBucketCount), min: math.MaxInt64}
}

func bucketOf(d simtime.Duration) int {
	v := float64(d)
	if v < histMinVal {
		return 0
	}
	b := int(math.Log(v/histMinVal)/math.Log(histGrowth)) + 1
	if b >= histBucketCount {
		b = histBucketCount - 1
	}
	return b
}

// bucketUpper returns the upper bound of bucket b.
func bucketUpper(b int) simtime.Duration {
	if b == 0 {
		return simtime.Duration(histMinVal)
	}
	return simtime.Duration(histMinVal * math.Pow(histGrowth, float64(b)))
}

// Observe records one latency sample with the given weight (number of tuples
// the sample represents; batched simulations use weight > 1).
func (h *Histogram) Observe(d simtime.Duration, weight int) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)] += uint64(weight)
	h.count += uint64(weight)
	h.sum += d.Seconds() * float64(weight)
	h.total += d * simtime.Duration(weight)
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded samples (weighted).
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean latency, or 0 if empty.
func (h *Histogram) Mean() simtime.Duration {
	if h.count == 0 {
		return 0
	}
	return simtime.FromSeconds(h.sum / float64(h.count))
}

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() simtime.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() simtime.Duration {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the latency at quantile q in [0,1]; q=0.99 gives p99.
// The value returned is the upper bound of the containing bucket, so it
// overestimates by at most one bucket's relative width. q >= 1 returns
// exactly Max(): the largest sample is the 100th percentile by definition,
// with no bucket rounding.
func (h *Histogram) Quantile(q float64) simtime.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum >= target {
			u := bucketUpper(b)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Sum returns the total observed latency (Σ sample × weight), exact — no
// float rounding — so stage components can be asserted to tile end-to-end
// latency to the nanosecond.
func (h *Histogram) Sum() simtime.Duration {
	return h.total
}

// CumulativeLE returns the weighted number of samples recorded in buckets
// whose upper bound is at most d — the `le` semantics of a Prometheus
// histogram bucket, subject to this histogram's ~5% bucket rounding.
func (h *Histogram) CumulativeLE(d simtime.Duration) uint64 {
	var cum uint64
	for b, n := range h.buckets {
		if bucketUpper(b) > d {
			break
		}
		cum += n
	}
	return cum
}

// Clone returns an independent copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogram()
	c.Merge(h)
	return c
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for b, n := range other.buckets {
		h.buckets[b] += n
	}
	h.count += other.count
	h.sum += other.sum
	h.total += other.total
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.total = 0
	h.min = math.MaxInt64
	h.max = 0
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Rate measures an event rate over a fixed sliding window of virtual time,
// implemented as a ring of sub-buckets. It answers "tuples/s over the last
// second" style questions (Fig 7's instantaneous throughput).
type Rate struct {
	window    simtime.Duration
	slot      simtime.Duration
	buckets   []float64
	head      int          // index of the bucket containing headStart
	headStart simtime.Time // start time of the head bucket
	total     float64      // cumulative count, all time
}

// NewRate returns a rate meter over the given window using 20 sub-buckets.
func NewRate(window simtime.Duration) *Rate {
	const slots = 20
	return &Rate{
		window:  window,
		slot:    window / slots,
		buckets: make([]float64, slots),
	}
}

func (r *Rate) advance(now simtime.Time) {
	for now >= r.headStart.Add(r.slot) {
		r.head = (r.head + 1) % len(r.buckets)
		r.buckets[r.head] = 0
		r.headStart = r.headStart.Add(r.slot)
		// Fast-forward a long-idle meter without spinning slot by slot.
		if now.Sub(r.headStart) > r.window*2 {
			for i := range r.buckets {
				r.buckets[i] = 0
			}
			r.headStart = simtime.Time(int64(now) / int64(r.slot) * int64(r.slot))
		}
	}
}

// Add records n events at virtual time now.
func (r *Rate) Add(now simtime.Time, n float64) {
	r.advance(now)
	r.buckets[r.head] += n
	r.total += n
}

// PerSecond returns the event rate over the trailing window as of now.
func (r *Rate) PerSecond(now simtime.Time) float64 {
	r.advance(now)
	var sum float64
	for _, b := range r.buckets {
		sum += b
	}
	return sum / r.window.Seconds()
}

// Total returns the all-time cumulative count.
func (r *Rate) Total() float64 { return r.total }

// Counter is a cumulative counter with a helper to compute rates between
// snapshots. Used for state-migration bytes, remote-transfer bytes, etc.
type Counter struct{ v float64 }

// Add increments the counter.
func (c *Counter) Add(n float64) { c.v += n }

// Value returns the current value.
func (c *Counter) Value() float64 { return c.v }

// Series is an append-only time series of (virtual time, value) points, used
// to reproduce the timeline figures (Fig 7, Fig 15, Fig 16).
type Series struct {
	Name   string
	Times  []simtime.Time
	Values []float64
}

// Append adds a point; times must be non-decreasing.
func (s *Series) Append(t simtime.Time, v float64) {
	if n := len(s.Times); n > 0 && t < s.Times[n-1] {
		panic("metrics: series time went backwards")
	}
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// Mean returns the mean of the series values, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Quantile returns the q-quantile of the series values (exact, by sorting).
func (s *Series) Quantile(q float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	vals := append([]float64(nil), s.Values...)
	sort.Float64s(vals)
	idx := int(q * float64(len(vals)-1))
	return vals[idx]
}
