package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	c := NewClock()
	var got []int
	c.At(30, func() { got = append(got, 3) })
	c.At(10, func() { got = append(got, 1) })
	c.At(20, func() { got = append(got, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 30 {
		t.Fatalf("Now = %v, want 30", c.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	c := NewClock()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(5, func() { got = append(got, i) })
	}
	c.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	c := NewClock()
	var fired []Time
	c.At(10, func() {
		fired = append(fired, c.Now())
		c.After(5, func() { fired = append(fired, c.Now()) })
	})
	c.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := NewClock()
	c.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		c.At(50, func() {})
	})
	c.Run()
}

func TestRunUntilAdvancesToLimit(t *testing.T) {
	c := NewClock()
	ran := false
	c.At(Time(2*Second), func() { ran = true })
	c.RunUntil(Time(1 * Second))
	if ran {
		t.Fatal("event beyond limit ran")
	}
	if c.Now() != Time(1*Second) {
		t.Fatalf("Now = %v, want 1s", c.Now())
	}
	c.RunUntil(Time(3 * Second))
	if !ran {
		t.Fatal("event not run after extending limit")
	}
}

func TestStop(t *testing.T) {
	c := NewClock()
	count := 0
	for i := 1; i <= 10; i++ {
		c.At(Time(i), func() {
			count++
			if count == 3 {
				c.Stop()
			}
		})
	}
	c.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if c.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", c.Pending())
	}
}

func TestAfterClampsNegative(t *testing.T) {
	c := NewClock()
	fired := Time(-1)
	c.At(10, func() {
		c.After(-5, func() { fired = c.Now() })
	})
	c.Run()
	if fired != 10 {
		t.Fatalf("fired at %v, want 10", fired)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	cc := NewRand(43)
	same := 0
	a2 := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == cc.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("nearby seeds collide too often: %d", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandIntnUniform(t *testing.T) {
	r := NewRand(7)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, cnt := range counts {
		if math.Abs(float64(cnt-want)) > 0.1*float64(want) {
			t.Fatalf("bucket %d count %d deviates from %d", i, cnt, want)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean = %v, want ~1", mean)
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(11)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("norm mean=%v var=%v", mean, variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		n := 1 + int(seed%100)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(0).Add(1500 * Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
	if tm.Sub(Time(500*Millisecond)) != Second {
		t.Fatalf("Sub wrong")
	}
	if tm.String() != "1.500s" {
		t.Fatalf("String = %q", tm.String())
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRand(5)
	c1 := r.Fork()
	c2 := r.Fork()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked children identical")
	}
}
