// Package simtime provides the discrete-event simulation kernel used by the
// Elasticutor reproduction: a virtual clock, a deterministic event queue, and
// a seeded random source.
//
// All engine components schedule work as events on a Clock. Events fire in
// timestamp order; ties break by scheduling order, which makes every
// simulation run fully deterministic for a given seed and input.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is kept distinct from
// time.Duration only by convention; conversions are free.
type Duration = time.Duration

// Common durations re-exported for call-site brevity.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// FromSeconds converts a seconds count to a Duration. It is the one sanctioned
// float→duration conversion: call sites must not hand-roll nanosecond math
// (`Duration(v * float64(Second))`), so the sim and the real-time backend keep
// a single duration vocabulary.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// FromMicros converts a microseconds count to a Duration.
func FromMicros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// ToMillis expresses a Duration in (fractional) milliseconds, the display unit
// of the paper's latency tables.
func ToMillis(d Duration) float64 { return float64(d) / float64(Millisecond) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock is a virtual clock driving a discrete-event simulation. The zero
// value is not usable; construct with NewClock.
type Clock struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// Processed counts events executed so far (for diagnostics and tests).
	Processed uint64
}

// NewClock returns a clock at virtual time zero with an empty event queue.
func NewClock() *Clock {
	c := &Clock{}
	heap.Init(&c.events)
	return c
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// At schedules fn to run at virtual time t. Scheduling in the past (t < Now)
// is a programming error and panics: it would silently reorder causality.
func (c *Clock) At(t Time, fn func()) {
	if t < c.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", t, c.now))
	}
	c.seq++
	heap.Push(&c.events, &event{at: t, seq: c.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative d is
// clamped to zero.
func (c *Clock) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.At(c.now.Add(d), fn)
}

// Stop aborts a running Run/RunUntil after the current event returns.
func (c *Clock) Stop() { c.stopped = true }

// Pending reports the number of queued events.
func (c *Clock) Pending() int { return c.events.Len() }

// RunUntil executes events in order until the queue is empty, the clock is
// stopped, or the next event is strictly after limit. The clock is advanced
// to limit when the run is exhausted by the time bound, so Now() == limit.
func (c *Clock) RunUntil(limit Time) {
	c.stopped = false
	for c.events.Len() > 0 && !c.stopped {
		next := c.events[0]
		if next.at > limit {
			break
		}
		heap.Pop(&c.events)
		c.now = next.at
		c.Processed++
		next.fn()
	}
	if !c.stopped && limit < MaxTime && c.now < limit {
		c.now = limit
	}
}

// Run executes all events until the queue empties or the clock is stopped.
func (c *Clock) Run() { c.RunUntil(MaxTime) }

// Rand is a small, fast, deterministic random source (splitmix64 core with an
// xorshift finisher). It intentionally avoids math/rand so that simulations
// remain reproducible across Go releases.
type Rand struct{ state uint64 }

// NewRand returns a source seeded with seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{state: seed}
	// Warm up so nearby seeds diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simtime: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal value (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork derives an independent child source; the parent advances by one draw.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }
