package experiments

import (
	"fmt"

	"repro/internal/engine"
	rtbackend "repro/internal/runtime"
	"repro/internal/scenario"
)

// RuntimeBackend exercises the real-time backend (internal/runtime): every
// policy runs the flash-crowd scenario on actual goroutines and a compressed
// wall clock, and the table reports the structural outcomes the backend
// guarantees — executor provisioning, the conserved tuple ledger, and churn
// accounting. Wall-clock numbers vary run to run (that is the point of the
// backend); this experiment is therefore not golden-pinned.
func RuntimeBackend(Scale) []Table {
	const spdup = 20
	tab := Table{
		ID:    "runtime-a",
		Title: fmt.Sprintf("Runtime backend: flashcrowd under all policies (goroutines, %dx wall clock)", spdup),
		Header: []string{"policy", "executors", "thr(K/s)", "p99(ms)", "repart",
			"admitted", "processed", "dropped", "ledger"},
		Notes: "throughput and latency are wall-clock measurements on this machine, not simulator predictions",
	}
	type result struct {
		policy string
		r      *rtbackendReport
	}
	rows := pmap(sweepPolicies, func(pol string) result {
		s, err := scenario.ByName("flashcrowd")
		if err != nil {
			panic(fmt.Sprintf("runtime experiment: %v", err))
		}
		rt, _, err := rtbackend.BuildScenario(s, pol, 42,
			rtbackend.ScenarioOptions{Options: rtbackend.Options{Speedup: spdup}})
		if err != nil {
			panic(fmt.Sprintf("runtime experiment %s: %v", pol, err))
		}
		rep, err := rt.Run(s.Duration())
		if err != nil {
			panic(fmt.Sprintf("runtime experiment %s: %v", pol, err))
		}
		execs := 0
		for _, n := range rt.ExecutorCounts() {
			execs += n
		}
		return result{policy: pol, r: &rtbackendReport{rep: rep, led: rt.Ledger(), execs: execs}}
	})
	for _, res := range rows {
		conserved := "ok"
		if !res.r.led.Conserved() {
			conserved = "VIOLATED"
		}
		tab.Rows = append(tab.Rows, []string{
			res.policy,
			fmt.Sprintf("%d", res.r.execs),
			fmtKTuples(res.r.rep.ThroughputMean),
			fmtMS(res.r.rep.Latency.Quantile(0.99)),
			fmt.Sprintf("%d", res.r.rep.Repartitions),
			fmt.Sprintf("%d", res.r.led.Admitted),
			fmt.Sprintf("%d", res.r.led.Processed),
			fmt.Sprintf("%d", res.r.led.DroppedFailure+res.r.led.DroppedShutdown),
			conserved,
		})
	}
	return []Table{tab}
}

// rtbackendReport bundles one runtime run's artifacts for the table.
type rtbackendReport struct {
	rep   *engine.Report
	led   rtbackend.Ledger
	execs int
}
