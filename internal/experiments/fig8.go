package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/executor"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// protoTimings captures one reassignment's sync and migration components.
type protoTimings struct {
	sync, migration simtime.Duration
	ok              bool
}

// measureEC runs the micro benchmark under Elasticutor and forces one shard
// reassignment of the requested placement, returning its timings.
func measureEC(s Scale, inter bool, mutate func(*core.MicroOptions)) protoTimings {
	d := dimensions(s)
	spec := workload.DefaultSpec()
	opt := core.MicroOptions{
		Paradigm:        engine.Elasticutor,
		Nodes:           d.nodes,
		SourceExecutors: d.sources,
		Y:               d.y,
		Z:               d.z,
		Spec:            spec,
		Batch:           d.batch,
		Seed:            7,
		// Steady 30% load: the paper measures protocol latency on a loaded
		// but unsaturated system (queues must stay shallow so the labeling
		// tuple drains in milliseconds).
		Rate: 0.3 * float64(d.nodes*8-d.sources) / spec.CPUCost.Seconds(),
	}
	if mutate != nil {
		mutate(&opt)
	}
	m, err := core.NewMicro(opt)
	if err != nil {
		panic(fmt.Sprintf("fig8 setup: %v", err))
	}
	var out protoTimings
	m.Engine.Clock().At(simtime.Time(8*simtime.Second), func() {
		err := m.Engine.ForceShardReassign(inter, func(rep executor.ReassignReport) {
			out = protoTimings{sync: rep.SyncTime, migration: rep.MigrationTime, ok: true}
		})
		if err != nil {
			panic(fmt.Sprintf("fig8 force reassign: %v", err))
		}
	})
	m.Engine.Run(14 * simtime.Second)
	if !out.ok {
		panic("fig8: EC reassignment never completed")
	}
	return out
}

// measureRC runs the micro benchmark under RC and forces a single-shard
// operator-level repartitioning between two executors on the same node
// (intra) or different nodes (inter).
func measureRC(s Scale, inter bool, mutate func(*core.MicroOptions)) protoTimings {
	d := dimensions(s)
	spec := workload.DefaultSpec()
	opt := core.MicroOptions{
		Paradigm:        engine.ResourceCentric,
		Nodes:           d.nodes,
		SourceExecutors: d.sources,
		Y:               d.y,
		Z:               d.z,
		OpShards:        d.opShards,
		Spec:            spec,
		Batch:           d.batch,
		Seed:            7,
		Rate:            0.3 * float64(d.nodes*8-d.sources) / spec.CPUCost.Seconds(),
	}
	if mutate != nil {
		mutate(&opt)
	}
	m, err := core.NewMicro(opt)
	if err != nil {
		panic(fmt.Sprintf("fig8 setup: %v", err))
	}
	e := m.Engine
	var out protoTimings
	armed := false // ignore the controller's own repartitions; capture only the forced one
	e.SetOnRepartition(func(rep engine.RepartitionReport) {
		if armed && rep.Moves == 1 && !out.ok {
			out = protoTimings{sync: rep.Sync, migration: rep.Migration, ok: true}
		}
	})
	e.Clock().At(simtime.Time(8*simtime.Second), func() {
		nodes := e.RCExecutorNodes()
		// Find a source executor and a destination matching the placement.
		src := 0
		dst := -1
		for j := 1; j < len(nodes); j++ {
			same := nodes[j] == nodes[src]
			if same != inter {
				dst = j
				break
			}
		}
		if dst < 0 {
			panic("fig8: no executor pair with requested placement")
		}
		shard, ok := e.RCShardOn(src)
		if !ok {
			panic("fig8: source executor owns no shard")
		}
		armed = true
		if err := e.ForceRCMove(dst, shard); err != nil {
			panic(fmt.Sprintf("fig8 force rc move: %v", err))
		}
	})
	e.Run(18 * simtime.Second)
	if !out.ok {
		panic("fig8: RC repartition never completed")
	}
	return out
}

// Fig8 reproduces Figure 8: the per-shard reassignment time of RC vs
// Elasticutor, broken into synchronization and state migration, for intra-
// and inter-node destinations.
func Fig8(s Scale) []Table {
	// The paper's default topology feeds the calculator from 32 generator
	// executors; model that fan-in explicitly (sources are core-free so the
	// quick scale still fits).
	fanIn := func(o *core.MicroOptions) {
		o.SourceExecutors = 32
		o.SourcesFree = true
	}
	type cell struct{ rc, inter bool }
	timings := pmap([]cell{{true, false}, {true, true}, {false, false}, {false, true}},
		func(c cell) protoTimings {
			if c.rc {
				return measureRC(s, c.inter, fanIn)
			}
			return measureEC(s, c.inter, fanIn)
		})
	rcIntra, rcInter, ecIntra, ecInter := timings[0], timings[1], timings[2], timings[3]
	t := Table{
		ID:     "fig8",
		Title:  "Shard reassignment time breakdown (ms)",
		Header: []string{"approach", "placement", "sync", "state-migration", "total"},
		Notes: "paper: RC sync 260-297 ms vs Elasticutor 2.6-2.8 ms; " +
			"intra-node migration ~0 under state sharing",
	}
	add := func(name, placement string, p protoTimings) {
		t.Rows = append(t.Rows, []string{
			name, placement, fmtMS(p.sync), fmtMS(p.migration), fmtMS(p.sync + p.migration),
		})
	}
	add("rc", "intra-node", rcIntra)
	add("rc", "inter-node", rcInter)
	add("elasticutor", "intra-node", ecIntra)
	add("elasticutor", "inter-node", ecInter)
	return []Table{t}
}

// Fig9a reproduces Figure 9(a): synchronization time as the number of
// upstream executors grows. RC must pause and update every upstream
// executor; Elasticutor's reassignment is local to the executor.
func Fig9a(s Scale) []Table {
	upstreams := []int{1, 4, 16, 64, 256}
	if s == Quick {
		upstreams = []int{1, 4, 16, 64}
	}
	t := Table{
		ID:     "fig9a",
		Title:  "Synchronization time (ms) vs upstream executors",
		Header: []string{"upstream", "rc", "elasticutor"},
		Notes:  "paper: RC grows with fan-in (hundreds of ms); Elasticutor flat ~2 ms",
	}
	type cell struct {
		u  int
		ec bool
	}
	var cells []cell
	for _, u := range upstreams {
		cells = append(cells, cell{u, false}, cell{u, true})
	}
	timings := pmap(cells, func(c cell) protoTimings {
		mutate := func(o *core.MicroOptions) {
			o.SourceExecutors = c.u
			o.SourcesFree = true // fan-in beyond core count (see DESIGN.md)
		}
		if c.ec {
			return measureEC(s, false, mutate)
		}
		return measureRC(s, false, mutate)
	})
	for i, u := range upstreams {
		rc, ec := timings[2*i], timings[2*i+1]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", u), fmtMS(rc.sync), fmtMS(ec.sync),
		})
	}
	return []Table{t}
}

// Fig9b reproduces Figure 9(b): state migration time vs shard state size,
// intra- vs inter-node, RC vs Elasticutor.
func Fig9b(s Scale) []Table {
	sizesKB := []int{32, 256, 2048, 32768}
	t := Table{
		ID:     "fig9b",
		Title:  "State migration time (ms) vs shard state size",
		Header: []string{"state", "rc-intra", "rc-inter", "ec-intra", "ec-inter"},
		Notes:  "paper: intra-node ~0 (state sharing); inter-node dominated by wire time at 32 MB",
	}
	type cell struct {
		kb        int
		rc, inter bool
	}
	var cells []cell
	for _, kb := range sizesKB {
		cells = append(cells,
			cell{kb, true, false}, cell{kb, true, true},
			cell{kb, false, false}, cell{kb, false, true})
	}
	timings := pmap(cells, func(c cell) protoTimings {
		mutate := func(o *core.MicroOptions) {
			o.Spec = workload.DefaultSpec()
			o.Spec.ShardStateKB = c.kb
		}
		if c.rc {
			return measureRC(s, c.inter, mutate)
		}
		return measureEC(s, c.inter, mutate)
	})
	for i, kb := range sizesKB {
		rcIntra, rcInter := timings[4*i], timings[4*i+1]
		ecIntra, ecInter := timings[4*i+2], timings[4*i+3]
		label := fmt.Sprintf("%dKB", kb)
		if kb >= 1024 {
			label = fmt.Sprintf("%dMB", kb/1024)
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmtMS(rcIntra.migration), fmtMS(rcInter.migration),
			fmtMS(ecIntra.migration), fmtMS(ecInter.migration),
		})
	}
	return []Table{t}
}
