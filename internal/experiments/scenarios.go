package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/scenario"
)

// sweepScenarios are the capacity-churn (and one load-burst) scenarios the
// sweep compares across all four paradigms — the axis the paper's evaluation
// never varies: the cluster itself changing under the job.
var sweepScenarios = []string{"flashcrowd", "nodejoin", "nodedrain", "nodefail"}

// sweepPolicies are the four paper paradigms, in paper order.
var sweepPolicies = []string{"static", "rc", "naive-ec", "elasticutor"}

// ScenarioSweep runs every sweep scenario under every elasticity policy
// through the concurrent harness and tabulates throughput, tail latency, and
// churn accounting. Scale is accepted for registry uniformity; scenarios
// carry their own (quick) dimensions.
func ScenarioSweep(Scale) []Table {
	thr := Table{
		ID:     "scenarios-a",
		Title:  "Scenario sweep: mean throughput (K tuples/s)",
		Header: append([]string{"scenario"}, sweepPolicies...),
		Notes:  "only the executor-centric planes schedule onto joined capacity; the baselines' executor set is fixed at placement",
	}
	lat := Table{
		ID:     "scenarios-b",
		Title:  "Scenario sweep: p99 processing latency (ms)",
		Header: append([]string{"scenario"}, sweepPolicies...),
		Notes:  "static rides its backpressure ceiling; rc pays multi-second global pauses; elasticutor keeps the lowest tail",
	}
	churn := Table{
		ID:     "scenarios-c",
		Title:  "Scenario sweep: churn accounting (retired executors / lost state MB, per policy)",
		Header: append([]string{"scenario"}, sweepPolicies...),
		Notes:  "graceful drains migrate state (0 MB lost); hard failures write it off",
	}
	type cell struct {
		name   string
		policy string
	}
	var cells []cell
	for _, name := range sweepScenarios {
		for _, p := range sweepPolicies {
			cells = append(cells, cell{name, p})
		}
	}
	reports := pmap(cells, func(c cell) *engine.Report {
		s, err := scenario.ByName(c.name)
		if err != nil {
			panic(fmt.Sprintf("scenario sweep: %v", err))
		}
		r, err := s.Run(c.policy, 42)
		if err != nil {
			panic(fmt.Sprintf("scenario sweep %s/%s: %v", c.name, c.policy, err))
		}
		return r
	})
	i := 0
	for _, name := range sweepScenarios {
		thrRow := []string{name}
		latRow := []string{name}
		churnRow := []string{name}
		for range sweepPolicies {
			r := reports[i]
			i++
			thrRow = append(thrRow, fmtKTuples(r.ThroughputMean))
			latRow = append(latRow, fmtMS(r.Latency.Quantile(0.99)))
			churnRow = append(churnRow, fmt.Sprintf("%d/%.1f", r.RetiredExecutors, float64(r.LostStateBytes)/(1<<20)))
		}
		thr.Rows = append(thr.Rows, thrRow)
		lat.Rows = append(lat.Rows, latRow)
		churn.Rows = append(churn.Rows, churnRow)
	}
	return []Table{thr, lat, churn}
}
