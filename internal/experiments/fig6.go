package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// fig6Paradigms are the three approaches compared in §5.1.
var fig6Paradigms = []engine.Paradigm{engine.Static, engine.ResourceCentric, engine.Elasticutor}

// fig6Omegas are the workload-dynamics values (key shuffles per minute).
func fig6Omegas(s Scale) []float64 {
	if s == Full {
		return []float64{0, 1, 2, 4, 8, 16, 32}
	}
	return []float64{0, 2, 4, 8, 16, 32}
}

// runMicro builds and runs one micro-benchmark configuration. A zero dur
// uses the scale's default duration.
func runMicro(s Scale, p engine.Paradigm, omega float64, dur simtime.Duration, mutate func(*core.MicroOptions)) *engine.Report {
	d := dimensions(s)
	if dur == 0 {
		dur = d.duration
	}
	spec := workload.DefaultSpec()
	spec.Keys = d.keys
	spec.Skew = d.skew
	spec.ShufflesPerMin = omega
	opt := core.MicroOptions{
		Paradigm:        p,
		Nodes:           d.nodes,
		SourceExecutors: d.sources,
		Y:               d.y,
		Z:               d.z,
		OpShards:        d.opShards,
		Spec:            spec,
		Batch:           d.batch,
		Seed:            42,
		WarmUp:          d.warmup,
	}
	if mutate != nil {
		mutate(&opt)
	}
	m, err := core.NewMicro(opt)
	if err != nil {
		panic(fmt.Sprintf("micro setup: %v", err))
	}
	return m.Engine.Run(dur)
}

// sustainableRate offers 90% of the cluster's ideal CPU capacity.
func sustainableRate(o *core.MicroOptions) {
	o.Rate = 0.9 * float64(o.Nodes*8-o.SourceExecutors) / o.Spec.CPUCost.Seconds()
}

// Fig6 reproduces Figure 6: throughput (a) and mean processing latency (b)
// of the three approaches as ω varies.
func Fig6(s Scale) []Table {
	thr := Table{
		ID:     "fig6a",
		Title:  "Throughput (K tuples/s) vs ω (shuffles/min)",
		Header: []string{"omega", "static", "rc", "elasticutor"},
		Notes:  "paper: Elasticutor ~2x static; RC collapses as ω reaches 16",
	}
	lat := Table{
		ID:     "fig6b",
		Title:  "Mean processing latency (ms) vs ω (shuffles/min)",
		Header: []string{"omega", "static", "rc", "elasticutor"},
		Notes:  "paper: Elasticutor latency 1-2 orders of magnitude below RC at high ω",
	}
	// Long enough that every approach converges inside the warm-up (RC's
	// initial repartitions take several seconds of drain) and several
	// shuffles land inside the measured span.
	dur := 34 * simtime.Second
	warm := 12 * simtime.Second
	type cell struct {
		omega float64
		p     engine.Paradigm
	}
	var cells []cell
	for _, omega := range fig6Omegas(s) {
		for _, p := range fig6Paradigms {
			cells = append(cells, cell{omega, p})
		}
	}
	reports := pmap(cells, func(c cell) *engine.Report {
		// 90% of the cluster's CPU-bound capacity: high enough that the
		// baselines' effective capacity loss shows up as lost throughput
		// and queueing latency, low enough that a well-balanced system
		// keeps milliseconds-level latency (the paper's regime).
		return runMicro(s, c.p, c.omega, dur, func(o *core.MicroOptions) {
			sustainableRate(o)
			o.WarmUp = warm
		})
	})
	i := 0
	for _, omega := range fig6Omegas(s) {
		thrRow := []string{fmtF(omega)}
		latRow := []string{fmtF(omega)}
		for range fig6Paradigms {
			r := reports[i]
			i++
			thrRow = append(thrRow, fmtKTuples(r.ThroughputMean))
			latRow = append(latRow, fmtMS(r.Latency.Mean()))
		}
		thr.Rows = append(thr.Rows, thrRow)
		lat.Rows = append(lat.Rows, latRow)
	}
	return []Table{thr, lat}
}

// Fig7 reproduces Figure 7: instantaneous throughput in 1-second windows at
// ω = 2 (a shuffle every 30 s) for the three approaches.
func Fig7(s Scale) []Table {
	duration := 95 * simtime.Second
	if s == Quick {
		duration = 65 * simtime.Second
	}
	reports := pmap(fig6Paradigms, func(p engine.Paradigm) *engine.Report {
		return runMicro(s, p, 2, duration, func(o *core.MicroOptions) {
			sustainableRate(o)
			o.WarmUp = 3 * simtime.Second
		})
	})
	series := make(map[engine.Paradigm]*engine.Report)
	for i, p := range fig6Paradigms {
		series[p] = reports[i]
	}
	t := Table{
		ID:     "fig7",
		Title:  "Instantaneous throughput (K tuples/s), ω=2",
		Header: []string{"t(s)", "static", "rc", "elasticutor"},
		Notes:  "paper: RC dips last 10-20 s after each shuffle; Elasticutor dips 1-3 s",
	}
	n := series[engine.Static].ThroughputSeries.Len()
	for _, p := range fig6Paradigms {
		if l := series[p].ThroughputSeries.Len(); l < n {
			n = l
		}
	}
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("%.0f", series[engine.Static].ThroughputSeries.Times[i].Seconds())}
		for _, p := range fig6Paradigms {
			row = append(row, fmtKTuples(series[p].ThroughputSeries.Values[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}
