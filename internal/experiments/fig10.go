package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// coreCounts returns the x-axis of the single-executor scalability figures.
func coreCounts(s Scale) []int {
	if s == Full {
		return []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

// runSingleExecutor runs the micro benchmark with exactly ONE elastic
// executor for the calculator pinned to n cores, returning its report.
// The offered rate is loadFactor × the n-core CPU capacity.
func runSingleExecutor(s Scale, n int, spec workload.Spec, loadFactor float64, omega float64) *engine.Report {
	d := dimensions(s)
	spec.ShufflesPerMin = omega
	capacity := float64(n) / spec.CPUCost.Seconds()
	rate := loadFactor * capacity
	// Keep event volume tractable for very cheap tuples by batching.
	batch := int(rate / 40000)
	if batch < 1 {
		batch = 1
	}
	opt := core.MicroOptions{
		Paradigm:        engine.Elasticutor,
		Nodes:           d.nodes,
		SourceExecutors: d.sources,
		Y:               1, // the whole operator is ONE elastic executor (§5.2)
		Z:               d.z,
		Spec:            spec,
		Rate:            rate,
		Batch:           batch,
		Seed:            21,
		FixedCores:      n,
		WarmUp:          3 * simtime.Second,
	}
	m, err := core.NewMicro(opt)
	if err != nil {
		panic(fmt.Sprintf("fig10 setup: %v", err))
	}
	dur := 12 * simtime.Second
	if s == Full {
		dur = 15 * simtime.Second
	}
	return m.Engine.Run(dur)
}

// fig10Costs are the per-tuple CPU costs swept in Fig 10(a)/11(a).
var fig10Costs = []simtime.Duration{
	10 * simtime.Millisecond,
	simtime.Millisecond,
	100 * simtime.Microsecond,
	10 * simtime.Microsecond,
}

// fig10Sizes are the tuple sizes swept in Fig 10(b)/11(b).
var fig10Sizes = []int{128, 512, 2048, 8192}

func costLabel(c simtime.Duration) string {
	return fmt.Sprintf("%gms", simtime.ToMillis(c))
}

func sizeLabel(b int) string {
	if b >= 1024 {
		return fmt.Sprintf("%dKB", b/1024)
	}
	return fmt.Sprintf("%dB", b)
}

// Fig10 reproduces Figure 10: throughput of a single elastic executor as it
// scales out, under varying computation cost (a) and tuple size (b). The
// y-axis is normalized throughput (fraction of the ideal n-core capacity),
// which is how scalability reads regardless of absolute rates.
func Fig10(s Scale) []Table {
	ta := Table{
		ID:     "fig10a",
		Title:  "Single-executor scaling efficiency vs CPU cost (throughput / ideal)",
		Header: append([]string{"cores"}, labelsFromCosts()...),
		Notes:  "paper: scales to the whole cluster except at very low CPU cost (data-intensive)",
	}
	tb := Table{
		ID:     "fig10b",
		Title:  "Single-executor scaling efficiency vs tuple size (throughput / ideal)",
		Header: append([]string{"cores"}, labelsFromSizes()...),
		Notes:  "paper: 8KB tuples stop scaling past ~16 cores (NIC saturation at the main process)",
	}
	reports := runSingleExecutorGrid(s, 1.3, 0)
	i := 0
	for _, n := range coreCounts(s) {
		rowA := []string{fmt.Sprintf("%d", n)}
		for _, c := range fig10Costs {
			ideal := float64(n) / c.Seconds()
			rowA = append(rowA, fmt.Sprintf("%.2f", reports[i].ThroughputMean/ideal))
			i++
		}
		ta.Rows = append(ta.Rows, rowA)

		rowB := []string{fmt.Sprintf("%d", n)}
		for range fig10Sizes {
			ideal := float64(n) / workload.DefaultSpec().CPUCost.Seconds()
			rowB = append(rowB, fmt.Sprintf("%.2f", reports[i].ThroughputMean/ideal))
			i++
		}
		tb.Rows = append(tb.Rows, rowB)
	}
	return []Table{ta, tb}
}

// runSingleExecutorGrid runs the Fig 10/11 sweep — for each core count, the
// four CPU costs then the four tuple sizes — concurrently, returning reports
// in that order.
func runSingleExecutorGrid(s Scale, loadFactor, omega float64) []*engine.Report {
	type cell struct {
		n    int
		spec workload.Spec
	}
	var cells []cell
	for _, n := range coreCounts(s) {
		for _, c := range fig10Costs {
			spec := workload.DefaultSpec()
			spec.CPUCost = c
			cells = append(cells, cell{n, spec})
		}
		for _, b := range fig10Sizes {
			spec := workload.DefaultSpec()
			spec.TupleBytes = b
			cells = append(cells, cell{n, spec})
		}
	}
	return pmap(cells, func(c cell) *engine.Report {
		return runSingleExecutor(s, c.n, c.spec, loadFactor, omega)
	})
}

// Fig11 reproduces Figure 11: the 99th-percentile latency of a single
// elastic executor as it scales out, at 70% of ideal load.
func Fig11(s Scale) []Table {
	ta := Table{
		ID:     "fig11a",
		Title:  "Single-executor p99 latency (ms) vs CPU cost, 70% load",
		Header: append([]string{"cores"}, labelsFromCosts()...),
		Notes:  "paper: flat as the executor scales, except for data-intensive settings",
	}
	tb := Table{
		ID:     "fig11b",
		Title:  "Single-executor p99 latency (ms) vs tuple size, 70% load",
		Header: append([]string{"cores"}, labelsFromSizes()...),
		Notes:  "paper: large tuples blow up latency once remote transfer saturates; bounded by backpressure",
	}
	reports := runSingleExecutorGrid(s, 0.7, 0)
	i := 0
	for _, n := range coreCounts(s) {
		rowA := []string{fmt.Sprintf("%d", n)}
		for range fig10Costs {
			rowA = append(rowA, fmtMS(reports[i].Latency.Quantile(0.99)))
			i++
		}
		ta.Rows = append(ta.Rows, rowA)

		rowB := []string{fmt.Sprintf("%d", n)}
		for range fig10Sizes {
			rowB = append(rowB, fmtMS(reports[i].Latency.Quantile(0.99)))
			i++
		}
		tb.Rows = append(tb.Rows, rowB)
	}
	return []Table{ta, tb}
}

// fig12Sizes are the shard state sizes swept in Fig 12.
var fig12Sizes = []int{32, 512, 8192, 32768} // KB

// Fig12 reproduces Figure 12: single-executor scaling efficiency under
// different shard state sizes at ω = 2 and ω = 16 (elasticity operational
// cost: bigger state + more dynamics = more migration drag).
func Fig12(s Scale) []Table {
	type cell struct {
		omega float64
		n     int
		kb    int
	}
	var cells []cell
	for _, omega := range []float64{2, 16} {
		for _, n := range coreCounts(s) {
			for _, kb := range fig12Sizes {
				cells = append(cells, cell{omega, n, kb})
			}
		}
	}
	reports := pmap(cells, func(c cell) *engine.Report {
		spec := workload.DefaultSpec()
		spec.ShardStateKB = c.kb
		return runSingleExecutor(s, c.n, spec, 1.3, c.omega)
	})
	var tables []Table
	i := 0
	for _, omega := range []float64{2, 16} {
		t := Table{
			ID:     fmt.Sprintf("fig12-omega%d", int(omega)),
			Title:  fmt.Sprintf("Single-executor scaling efficiency vs shard state size, ω=%d", int(omega)),
			Header: append([]string{"cores"}, stateLabels()...),
			Notes:  "paper: scales under all sizes but 32MB; high ω degrades the large-state case further",
		}
		for _, n := range coreCounts(s) {
			row := []string{fmt.Sprintf("%d", n)}
			for range fig12Sizes {
				ideal := float64(n) / workload.DefaultSpec().CPUCost.Seconds()
				row = append(row, fmt.Sprintf("%.2f", reports[i].ThroughputMean/ideal))
				i++
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

func labelsFromCosts() []string {
	out := make([]string, len(fig10Costs))
	for i, c := range fig10Costs {
		out[i] = costLabel(c)
	}
	return out
}

func labelsFromSizes() []string {
	out := make([]string, len(fig10Sizes))
	for i, b := range fig10Sizes {
		out[i] = sizeLabel(b)
	}
	return out
}

func stateLabels() []string {
	out := make([]string, len(fig12Sizes))
	for i, kb := range fig12Sizes {
		if kb >= 1024 {
			out[i] = fmt.Sprintf("%dMB", kb/1024)
		} else {
			out[i] = fmt.Sprintf("%dKB", kb)
		}
	}
	return out
}
