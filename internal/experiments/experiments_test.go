package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig6", "fig7", "fig8", "fig9a", "fig9b", "fig10", "fig11",
		"fig12", "fig13", "fig15", "fig16", "table2", "table3", "ablation", "scenarios", "runtime", "autoscale",
		"latencyanatomy"}
	if len(All) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All), len(want))
	}
	for i, id := range want {
		if All[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, All[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Fatalf("ByID(%s) missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestTablePrint(t *testing.T) {
	tab := Table{ID: "x", Title: "T", Header: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: "n"}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printout missing %q:\n%s", want, out)
		}
	}
}

func TestFig8ShapesHold(t *testing.T) {
	tables := Fig8(Quick)
	if len(tables) != 1 {
		t.Fatal("fig8 should emit one table")
	}
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("fig8 rows = %d", len(rows))
	}
	rcSync := parseF(t, rows[0][2])
	ecSync := parseF(t, rows[2][2])
	// The paper's headline: RC synchronization is orders of magnitude longer.
	if rcSync < 5*ecSync {
		t.Fatalf("RC sync %vms not ≫ EC sync %vms", rcSync, ecSync)
	}
	// Intra-node migrations are free under state sharing.
	ecIntraMig := parseF(t, rows[2][3])
	if ecIntraMig > 0.01 {
		t.Fatalf("EC intra-node migration = %vms, want ~0", ecIntraMig)
	}
	ecInterMig := parseF(t, rows[3][3])
	if ecInterMig <= ecIntraMig {
		t.Fatal("inter-node migration should cost more than intra-node")
	}
}

func TestFig9aSyncGrowsWithFanInForRCOnly(t *testing.T) {
	tables := Fig9a(Quick)
	rows := tables[0].Rows
	firstRC := parseF(t, rows[0][1])
	lastRC := parseF(t, rows[len(rows)-1][1])
	if lastRC < 3*firstRC {
		t.Fatalf("RC sync did not grow with fan-in: %v -> %v", firstRC, lastRC)
	}
	firstEC := parseF(t, rows[0][2])
	lastEC := parseF(t, rows[len(rows)-1][2])
	if lastEC > 4*firstEC+1 {
		t.Fatalf("EC sync grew with fan-in: %v -> %v", firstEC, lastEC)
	}
}

func TestFig15SeriesShape(t *testing.T) {
	tables := Fig15(Quick)
	rows := tables[0].Rows
	if len(rows) < 10 {
		t.Fatalf("fig15 too few windows: %d", len(rows))
	}
	// Rates fluctuate: at least one stock's min and max differ by 2x.
	fluctuates := false
	for col := 1; col <= 5; col++ {
		min, max := 1e18, 0.0
		for _, r := range rows {
			v := parseF(t, r[col])
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if max > 2*min+10 {
			fluctuates = true
		}
	}
	if !fluctuates {
		t.Fatal("fig15 workload shows no dynamism")
	}
}

func TestTable3SchedulingStaysFast(t *testing.T) {
	tables := Table3(Quick)
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("table3 rows = %d", len(rows))
	}
	thrSmall := parseF(t, rows[0][1])
	thrLarge := parseF(t, rows[len(rows)-1][1])
	if thrLarge < 1.5*thrSmall {
		t.Fatalf("throughput did not scale with nodes: %v -> %v", thrSmall, thrLarge)
	}
	for _, r := range rows {
		if ms := parseF(t, r[2]); ms > 100 {
			t.Fatalf("scheduling time %v ms implausibly high", ms)
		}
	}
}
