package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/simtime"
)

// Ablation quantifies the design choices DESIGN.md calls out, beyond what
// the paper reports directly:
//
//  1. intra-process state sharing (§3.2) on/off;
//  2. the scheduler's migration-cost/locality optimization (Algorithm 1 vs
//     the naive assigner) on the micro benchmark;
//  3. the imbalance threshold θ (§3.1);
//  4. the dynamic scheduler cadence.
//
// All runs use the quick/full micro benchmark under a shuffling workload so
// the elasticity machinery is actually exercised.
func Ablation(s Scale) []Table {
	return []Table{
		ablateStateSharing(s),
		ablateLocality(s),
		ablateTheta(s),
		ablateCadence(s),
	}
}

// ablationRun executes one micro run at ω=8 at a sustainable (90%) rate so
// latency differences are visible.
func ablationRun(s Scale, mutate func(*core.MicroOptions)) *engine.Report {
	return runMicro(s, engine.Elasticutor, 8, 0, func(o *core.MicroOptions) {
		sustainableRate(o)
		mutate(o)
	})
}

func ablateStateSharing(s Scale) Table {
	t := Table{
		ID:     "ablation-state-sharing",
		Title:  "Intra-process state sharing on/off (ω=8, 1MB shards)",
		Header: []string{"variant", "thr(K/s)", "mean-lat(ms)", "migrated(MB)"},
		Notes:  "sharing makes same-node shard moves free; without it every rebalance serializes state",
	}
	variants := []bool{false, true}
	reports := pmap(variants, func(off bool) *engine.Report {
		return ablationRun(s, func(o *core.MicroOptions) {
			o.Spec.ShardStateKB = 1024
			o.DisableStateSharing = off
		})
	})
	for i, off := range variants {
		r := reports[i]
		name := "sharing (paper)"
		if off {
			name = "no sharing"
		}
		t.Rows = append(t.Rows, []string{
			name, fmtKTuples(r.ThroughputMean), fmtMS(r.Latency.Mean()),
			fmt.Sprintf("%.1f", float64(r.MigrationBytes)/(1<<20)),
		})
	}
	return t
}

func ablateLocality(s Scale) Table {
	t := Table{
		ID:     "ablation-locality",
		Title:  "Algorithm 1 vs naive core assignment (ω=8, 2KB tuples)",
		Header: []string{"scheduler", "thr(K/s)", "migrated(MB)", "remote(MB)"},
		Notes:  "the naive assigner ignores migration cost and locality (§5.4 naive-EC)",
	}
	paradigms := []engine.Paradigm{engine.Elasticutor, engine.NaiveEC}
	reports := pmap(paradigms, func(p engine.Paradigm) *engine.Report {
		return runMicro(s, p, 8, 0, func(o *core.MicroOptions) {
			o.Spec.TupleBytes = 2048
		})
	})
	for i, p := range paradigms {
		r := reports[i]
		name := "algorithm 1"
		if p == engine.NaiveEC {
			name = "naive"
		}
		t.Rows = append(t.Rows, []string{
			name, fmtKTuples(r.ThroughputMean),
			fmt.Sprintf("%.1f", float64(r.MigrationBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(r.RemoteTransferBytes)/(1<<20)),
		})
	}
	return t
}

func ablateTheta(s Scale) Table {
	t := Table{
		ID:     "ablation-theta",
		Title:  "Imbalance threshold θ (ω=8)",
		Header: []string{"theta", "thr(K/s)", "mean-lat(ms)", "reassigns"},
		Notes:  "θ→1 chases noise with constant reassignments; large θ tolerates imbalance (paper picks 1.2)",
	}
	thetas := []float64{1.05, 1.2, 1.5, 2.0}
	reports := pmap(thetas, func(theta float64) *engine.Report {
		return ablationRun(s, func(o *core.MicroOptions) { o.Theta = theta })
	})
	for i, theta := range thetas {
		r := reports[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", theta), fmtKTuples(r.ThroughputMean),
			fmtMS(r.Latency.Mean()), fmt.Sprintf("%d", r.Reassignments),
		})
	}
	return t
}

func ablateCadence(s Scale) Table {
	t := Table{
		ID:     "ablation-cadence",
		Title:  "Dynamic scheduler period (ω=8)",
		Header: []string{"period", "thr(K/s)", "mean-lat(ms)"},
		Notes:  "slow scheduling reacts late to shuffles; very fast scheduling churns cores",
	}
	periods := []simtime.Duration{250 * simtime.Millisecond, simtime.Second, 4 * simtime.Second}
	reports := pmap(periods, func(period simtime.Duration) *engine.Report {
		return ablationRun(s, func(o *core.MicroOptions) { o.SchedulePeriod = period })
	})
	for i, period := range periods {
		r := reports[i]
		t.Rows = append(t.Rows, []string{
			period.String(), fmtKTuples(r.ThroughputMean), fmtMS(r.Latency.Mean()),
		})
	}
	return t
}
