package experiments

import (
	"repro/internal/harness"
)

// pmap fans fn over items on the package-default harness runner and returns
// the results in item order. Every experiment's trials are independent
// engine runs with engine-local seeds, so results — and therefore the
// printed tables — are identical whether one worker or many execute them;
// see internal/harness for the guarantees. Worker count follows the CLI's
// -parallel flag (harness.SetDefaultWorkers).
func pmap[T, R any](items []T, fn func(T) R) []R {
	return harness.MustMap(harness.Default(), items, func(_ *harness.Ctx, it T) R {
		return fn(it)
	})
}
