package experiments

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/harness"
)

// fig8Bytes renders the Fig 8 tables exactly like the CLI does.
func fig8Bytes() []byte {
	var buf bytes.Buffer
	for _, tab := range Fig8(Quick) {
		tab.Print(&buf)
	}
	return buf.Bytes()
}

// scenarioSweepBytes renders the scenario sweep tables like the CLI does.
func scenarioSweepBytes() []byte {
	var buf bytes.Buffer
	for _, tab := range ScenarioSweep(Quick) {
		tab.Print(&buf)
	}
	return buf.Bytes()
}

// autoscaleBytes renders the autoscaling study tables like the CLI does.
func autoscaleBytes() []byte {
	var buf bytes.Buffer
	for _, tab := range Autoscale(Quick) {
		tab.Print(&buf)
	}
	return buf.Bytes()
}

// TestAutoscaleGolden pins the autoscaling study — every closed-loop
// controller × load-shape scenario × {elasticutor, rc}, plus the fixed and
// peak-provisioned yardsticks — byte-for-byte: control ticks ride the virtual
// clock and decisions derive from cumulative counters, so the whole study is
// as deterministic as a plain run. It also guards the study's headline: the
// reactive controller beats peak provisioning on cost at no worse SLO on the
// flash crowd (asserted structurally by TestReactiveBeatsPeakProvisioning in
// internal/autoscale; recorded numerically here). Regenerate testdata with
// `go run ./tools/gengolden` only for intended behavior changes.
func TestAutoscaleGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/autoscale_quick.golden")
	if err != nil {
		t.Fatalf("missing golden file (run `go run ./tools/gengolden`): %v", err)
	}
	defer harness.SetDefaultWorkers(0)
	harness.SetDefaultWorkers(4)
	if got := autoscaleBytes(); !bytes.Equal(got, want) {
		t.Fatalf("autoscale study diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// latencyAnatomyBytes renders the latency-anatomy tables like the CLI does.
func latencyAnatomyBytes() []byte {
	var buf bytes.Buffer
	for _, tab := range LatencyAnatomy(Quick) {
		tab.Print(&buf)
	}
	return buf.Bytes()
}

// TestLatencyAnatomyGoldenAcrossWorkerCounts pins the stage decomposition —
// 4 paradigms × {flashcrowd, nodefail}, stage shares, tails, dominant stage,
// and the windowed p99 peak — byte-for-byte under 1 and 4 workers: stage
// attribution rides the virtual clock and folds at fixed ticks, so the whole
// anatomy is as deterministic as the run itself. Regenerate testdata with
// `go run ./tools/gengolden` only for intended behavior changes.
func TestLatencyAnatomyGoldenAcrossWorkerCounts(t *testing.T) {
	want, err := os.ReadFile("testdata/latencyanatomy_quick.golden")
	if err != nil {
		t.Fatalf("missing golden file (run `go run ./tools/gengolden`): %v", err)
	}
	defer harness.SetDefaultWorkers(0)
	for _, workers := range []int{1, 4} {
		harness.SetDefaultWorkers(workers)
		got := latencyAnatomyBytes()
		if !bytes.Equal(got, want) {
			t.Fatalf("latency anatomy with %d workers diverged:\n--- want ---\n%s--- got ---\n%s",
				workers, want, got)
		}
	}
}

// TestScenarioSweepGoldenAcrossWorkerCounts pins the sweep — 4 policies × 4
// churn/burst scenarios, including node drain and hard failure — to its
// recorded tables, byte-identical for 1 and 4 workers.
func TestScenarioSweepGoldenAcrossWorkerCounts(t *testing.T) {
	want, err := os.ReadFile("testdata/scenarios_quick.golden")
	if err != nil {
		t.Fatalf("missing golden file (run `go run ./tools/gengolden`): %v", err)
	}
	defer harness.SetDefaultWorkers(0)
	for _, workers := range []int{1, 4} {
		harness.SetDefaultWorkers(workers)
		got := scenarioSweepBytes()
		if !bytes.Equal(got, want) {
			t.Fatalf("scenario sweep with %d workers diverged:\n--- want ---\n%s--- got ---\n%s",
				workers, want, got)
		}
	}
}

// TestFig8GoldenAcrossWorkerCounts pins the parallel harness to the
// sequential seed: the experiment must emit the exact table captured before
// the harness existed, whether one worker or several run the trials.
// Regenerate testdata with `go run ./tools/gengolden` only for intended
// behavior changes.
func TestFig8GoldenAcrossWorkerCounts(t *testing.T) {
	want, err := os.ReadFile("testdata/fig8_quick.golden")
	if err != nil {
		t.Fatalf("missing golden file (run `go run ./tools/gengolden`): %v", err)
	}
	defer harness.SetDefaultWorkers(0)
	for _, workers := range []int{1, 4} {
		harness.SetDefaultWorkers(workers)
		got := fig8Bytes()
		if !bytes.Equal(got, want) {
			t.Fatalf("fig8 with %d workers diverged from the sequential golden:\n--- want ---\n%s--- got ---\n%s",
				workers, want, got)
		}
	}
}
