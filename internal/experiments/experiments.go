// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment returns printable tables; the CLI
// (cmd/elasticutor-bench) and the benchmarks (bench_test.go) drive them.
//
// Two scales are supported: Quick (a 4-node cluster, shorter virtual runs —
// the default, finishes in seconds per experiment) and Full (the paper's
// 32-node × 8-core testbed dimensions). Absolute numbers differ from the
// paper (simulated substrate); EXPERIMENTS.md tracks the shapes.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/simtime"
)

// Scale selects experiment dimensioning.
type Scale int

// Experiment scales.
const (
	Quick Scale = iota
	Full
)

func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Table is one printable result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Print renders the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// Experiment is one registered paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) []Table
}

// All lists the experiments in paper order.
var All = []Experiment{
	{"fig6", "Throughput and latency vs workload dynamics ω (static/RC/Elasticutor)", Fig6},
	{"fig7", "Instantaneous throughput timeline at ω=2", Fig7},
	{"fig8", "Shard reassignment time breakdown (sync vs state migration)", Fig8},
	{"fig9a", "Synchronization time vs number of upstream executors", Fig9a},
	{"fig9b", "State migration time vs state size", Fig9b},
	{"fig10", "Single-executor throughput scalability vs data intensity", Fig10},
	{"fig11", "Single-executor p99 latency as it scales out", Fig11},
	{"fig12", "Single-executor scalability vs elasticity operational cost", Fig12},
	{"fig13", "Impact of executors per operator (y) and shards per executor (z)", Fig13},
	{"fig15", "Arrival rates of the 5 most popular stocks (SSE workload)", Fig15},
	{"fig16", "SSE application: throughput and latency under four approaches", Fig16},
	{"table2", "State migration and remote transfer rates: naive-EC vs Elasticutor", Table2},
	{"table3", "Throughput and scheduling time vs cluster size", Table3},
	{"ablation", "Design-choice ablations: state sharing, locality, θ, scheduler cadence", Ablation},
	{"scenarios", "Scenario sweep: all four policies under load bursts and cluster churn", ScenarioSweep},
	{"runtime", "Runtime backend: all four policies on goroutines against the wall clock", RuntimeBackend},
	{"autoscale", "Autoscaling study: closed-loop cluster controllers vs static provisioning", Autoscale},
	{"latencyanatomy", "Latency anatomy: per-stage decomposition of tail latency across paradigms", LatencyAnatomy},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// dims bundles per-scale default dimensions.
//
// The key-space skew scales with the executor count: the paper's 10k keys at
// Zipf 0.5 produce executor-level imbalance at 256 executors (hot-key share
// ≈ average executor share). At the quick scale's ~28 executors the same
// distribution averages out, so quick uses a proportionally hotter key space
// (hot key ≈ 1/executors of the load, still below one core's capacity).
type dims struct {
	nodes    int
	sources  int
	y, z     int
	opShards int
	batch    int
	keys     int
	skew     float64
	duration simtime.Duration
	warmup   simtime.Duration
}

func dimensions(s Scale) dims {
	if s == Full {
		return dims{
			nodes: 32, sources: 32, y: 32, z: 256, opShards: 8192,
			batch: 4, keys: 10000, skew: 0.5,
			duration: 40 * simtime.Second, warmup: 10 * simtime.Second,
		}
	}
	return dims{
		nodes: 4, sources: 4, y: 4, z: 256, opShards: 1024,
		batch: 1, keys: 2500, skew: 0.75,
		duration: 20 * simtime.Second, warmup: 6 * simtime.Second,
	}
}

// fmtF formats a float compactly.
func fmtF(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// fmtMS formats a duration in milliseconds.
func fmtMS(d simtime.Duration) string {
	return fmt.Sprintf("%.2f", simtime.ToMillis(d))
}

// fmtKTuples formats tuples/s in thousands.
func fmtKTuples(v float64) string {
	return fmt.Sprintf("%.1f", v/1000)
}

// fmtMBs formats bytes/s as MB/s.
func fmtMBs(v float64) string {
	return fmt.Sprintf("%.2f", v/(1<<20))
}
