package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

// The latency-anatomy study: *where* each paradigm's tail latency comes from.
// The paper's evaluation reports end-to-end percentiles; this experiment
// decomposes them into the four stages of DESIGN.md's latency taxonomy
// (queue wait, service, §3.3 repartition stall, migration delay) and shows
// the reproduction's version of the paper's §5 story — under load bursts and
// cluster churn the repartition-stall share of total latency is marginal for
// Elasticutor's executor-level plane but dominates for operator-level
// repartitioning (rc), whose global pauses buffer the whole stream. Sim-only
// and derived from exact per-tuple stage attribution, so the tables are
// deterministic and golden-pinned.

// laScenarios stress the two churn axes the anatomy separates best: a load
// burst (queue/service pressure) and a hard node failure (pause pressure).
var laScenarios = []string{"flashcrowd", "nodefail"}

// laPolicies are the four paper paradigms, in paper order.
var laPolicies = []string{"static", "rc", "naive-ec", "elasticutor"}

// LatencyAnatomy runs scenario × policy and tabulates the stage decomposition
// of total end-to-end latency, tail percentiles, the dominant stage, and the
// windowed p99 peak. Scale is accepted for registry uniformity; the scenarios
// carry their own (quick) dimensions.
func LatencyAnatomy(Scale) []Table {
	shares := Table{
		ID:     "latencyanatomy-a",
		Title:  "Latency anatomy: stage shares of total end-to-end latency (q/s/rp/mg %)",
		Header: append([]string{"scenario"}, laPolicies...),
		Notes:  "rp = §3.3 repartition stall. Operator-level repartitioning (rc) pays its global pause on every reconfiguration; elasticutor's executor-level plane keeps the stall share marginal",
	}
	tails := Table{
		ID:     "latencyanatomy-b",
		Title:  "Latency anatomy: end-to-end p50/p99 latency (ms)",
		Header: append([]string{"scenario"}, laPolicies...),
	}
	dom := Table{
		ID:     "latencyanatomy-c",
		Title:  "Latency anatomy: dominant stage (share of attributed time)",
		Header: append([]string{"scenario"}, laPolicies...),
	}
	peak := Table{
		ID:     "latencyanatomy-d",
		Title:  "Latency anatomy: worst windowed p99 (ms, 1s windows)",
		Header: append([]string{"scenario"}, laPolicies...),
		Notes:  "the windowed track exposes transient pause spikes the run-wide percentile averages away",
	}
	type cell struct {
		name   string
		policy string
	}
	var cells []cell
	for _, name := range laScenarios {
		for _, p := range laPolicies {
			cells = append(cells, cell{name, p})
		}
	}
	reports := pmap(cells, func(c cell) *engine.Report {
		s, err := scenario.ByName(c.name)
		if err != nil {
			panic(fmt.Sprintf("latency anatomy: %v", err))
		}
		r, err := s.Run(c.policy, 42)
		if err != nil {
			panic(fmt.Sprintf("latency anatomy %s/%s: %v", c.name, c.policy, err))
		}
		return r
	})
	i := 0
	for _, name := range laScenarios {
		sharesRow := []string{name}
		tailsRow := []string{name}
		domRow := []string{name}
		peakRow := []string{name}
		for range laPolicies {
			r := reports[i]
			i++
			sh := r.LatencyStages.Shares()
			sharesRow = append(sharesRow, fmt.Sprintf("%.0f/%.0f/%.0f/%.0f",
				100*sh[metrics.StageQueue], 100*sh[metrics.StageService],
				100*sh[metrics.StageRepartition], 100*sh[metrics.StageMigration]))
			tailsRow = append(tailsRow, fmt.Sprintf("%s/%s",
				fmtMS(r.Latency.Quantile(0.5)), fmtMS(r.Latency.Quantile(0.99))))
			st, share := r.LatencyStages.Dominant()
			domRow = append(domRow, fmt.Sprintf("%s %.0f%%", st, 100*share))
			peakRow = append(peakRow, fmtMS(r.LatencyQuantiles.MaxP99()))
		}
		shares.Rows = append(shares.Rows, sharesRow)
		tails.Rows = append(tails.Rows, tailsRow)
		dom.Rows = append(dom.Rows, domRow)
		peak.Rows = append(peak.Rows, peakRow)
	}
	return []Table{shares, tails, dom, peak}
}
