package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

// fig13Workloads are the three representative workloads of §5.3, expressed
// as mutations so per-scale key-space dimensioning is preserved.
func fig13Workloads() []struct {
	name   string
	mutate func(*workload.Spec)
} {
	return []struct {
		name   string
		mutate func(*workload.Spec)
	}{
		{"default (128B, omega=2)", func(s *workload.Spec) { s.ShufflesPerMin = 2 }},
		{"data-intensive (8KB, omega=2)", func(s *workload.Spec) { s.TupleBytes = 8192; s.ShufflesPerMin = 2 }},
		{"highly dynamic (128B, omega=16)", func(s *workload.Spec) { s.ShufflesPerMin = 16 }},
	}
}

func fig13Ys(s Scale) []int {
	if s == Full {
		return []int{1, 8, 32, 64, 256}
	}
	return []int{1, 2, 4, 8, 16}
}

func fig13Zs(s Scale) []int {
	if s == Full {
		return []int{1, 4, 16, 64, 256, 1024}
	}
	return []int{1, 4, 16, 64, 256}
}

// Fig13 reproduces Figure 13: Elasticutor throughput as a function of the
// number of executors per operator (y) and shards per executor (z), under
// the three workloads, with static and RC throughput as reference lines.
func Fig13(s Scale) []Table {
	type cell struct {
		p    engine.Paradigm
		wl   int // index into fig13Workloads()
		y, z int // 0,0 for the reference-line runs
	}
	workloads := fig13Workloads()
	var cells []cell
	for w := range workloads {
		for _, y := range fig13Ys(s) {
			for _, z := range fig13Zs(s) {
				cells = append(cells, cell{engine.Elasticutor, w, y, z})
			}
		}
		// Reference lines: the static and RC approaches on the same workload.
		cells = append(cells, cell{engine.Static, w, 0, 0}, cell{engine.ResourceCentric, w, 0, 0})
	}
	reports := pmap(cells, func(c cell) *engine.Report {
		return runMicro(s, c.p, 0, 0, func(o *core.MicroOptions) {
			workloads[c.wl].mutate(&o.Spec)
			o.Y = c.y
			o.Z = c.z
		})
	})
	var tables []Table
	i := 0
	for _, wl := range workloads {
		t := Table{
			ID:     fmt.Sprintf("fig13-%s", shortName(wl.name)),
			Title:  fmt.Sprintf("Throughput (K tuples/s), workload: %s", wl.name),
			Header: append([]string{"y \\ z"}, zLabels(fig13Zs(s))...),
			Notes: "paper: more shards help until load balancing saturates; y=1 suffers under " +
				"data intensity, small y suffers under high dynamics; one or two executors per node is robust",
		}
		for _, y := range fig13Ys(s) {
			row := []string{fmt.Sprintf("%d", y)}
			for range fig13Zs(s) {
				row = append(row, fmtKTuples(reports[i].ThroughputMean))
				i++
			}
			t.Rows = append(t.Rows, row)
		}
		t.Rows = append(t.Rows, []string{"static", fmtKTuples(reports[i].ThroughputMean)})
		i++
		t.Rows = append(t.Rows, []string{"rc", fmtKTuples(reports[i].ThroughputMean)})
		i++
		tables = append(tables, t)
	}
	return tables
}

func shortName(s string) string {
	switch {
	case s[0] == 'd' && s[1] == 'e':
		return "default"
	case s[0] == 'd':
		return "dataintensive"
	default:
		return "dynamic"
	}
}

func zLabels(zs []int) []string {
	out := make([]string, len(zs))
	for i, z := range zs {
		out[i] = fmt.Sprintf("z=%d", z)
	}
	return out
}
