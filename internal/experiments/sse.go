package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/simtime"
	"repro/internal/workload/sse"
)

// sseParadigms are the four approaches of §5.4 (static, RC, naive-EC, EC).
var sseParadigms = []engine.Paradigm{
	engine.Static, engine.ResourceCentric, engine.NaiveEC, engine.Elasticutor,
}

// runSSE builds and runs the stock-exchange application.
func runSSE(s Scale, p engine.Paradigm, nodes int, dur simtime.Duration) *engine.Report {
	d := dimensions(s)
	if nodes == 0 {
		nodes = d.nodes
	}
	if dur == 0 {
		dur = d.duration
	}
	app, err := core.NewSSE(core.SSEOptions{
		Paradigm:        p,
		Nodes:           nodes,
		SourceExecutors: nodes,
		Z:               d.z,
		OpShards:        d.opShards,
		Batch:           d.batch,
		Seed:            99,
		WarmUp:          d.warmup,
	})
	if err != nil {
		panic(fmt.Sprintf("sse setup: %v", err))
	}
	return app.Engine.Run(dur)
}

// Fig15 reproduces Figure 15: the arrival rates of the five most popular
// stocks over time, showing the workload's dynamism. It samples the
// synthetic generator directly (the paper plots the SSE trace itself).
func Fig15(s Scale) []Table {
	cfg := sse.DefaultGeneratorConfig()
	gen := sse.NewGenerator(cfg, simtime.NewRand(2024))
	const (
		ratePerSec = 2000
		windowSec  = 5
	)
	durationSec := 300
	if s == Quick {
		durationSec = 120
	}
	// Draw orders and bucket per (window, stock).
	windows := durationSec / windowSec
	counts := make([]map[uint32]int, windows)
	total := map[uint32]int{}
	for w := 0; w < windows; w++ {
		counts[w] = map[uint32]int{}
		for i := 0; i < ratePerSec*windowSec; i++ {
			now := simtime.Time(w*windowSec)*simtime.Time(simtime.Second) +
				simtime.Time(i)*simtime.Time(simtime.Duration(windowSec)*simtime.Second/simtime.Duration(ratePerSec*windowSec))
			o := gen.Next(now)
			counts[w][o.Stock]++
			total[o.Stock]++
		}
	}
	// Five most popular stocks overall.
	top := topK(total, 5)
	t := Table{
		ID:     "fig15",
		Title:  "Arrival rate (orders/s) of the 5 most popular stocks",
		Header: []string{"t(s)", "stock1", "stock2", "stock3", "stock4", "stock5"},
		Notes:  "paper: rates fluctuate greatly and unpredictably over time (SSE trace); synthetic regimes+bursts here",
	}
	for w := 0; w < windows; w++ {
		row := []string{fmt.Sprintf("%d", w*windowSec)}
		for _, stk := range top {
			row = append(row, fmt.Sprintf("%d", counts[w][stk]/windowSec))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

func topK(counts map[uint32]int, k int) []uint32 {
	type kv struct {
		stock uint32
		n     int
	}
	var all []kv
	for s, n := range counts {
		all = append(all, kv{s, n})
	}
	// Selection of top k (k is tiny).
	var top []uint32
	for i := 0; i < k && len(all) > 0; i++ {
		best := 0
		for j := range all {
			if all[j].n > all[best].n {
				best = j
			}
		}
		top = append(top, all[best].stock)
		all[best] = all[len(all)-1]
		all = all[:len(all)-1]
	}
	return top
}

// Fig16 reproduces Figure 16: instantaneous throughput and mean latency of
// the SSE application under the four approaches.
func Fig16(s Scale) []Table {
	dur := 100 * simtime.Second
	if s == Quick {
		dur = 40 * simtime.Second
	}
	results := pmap(sseParadigms, func(p engine.Paradigm) *engine.Report {
		return runSSE(s, p, 0, dur)
	})
	reports := make(map[engine.Paradigm]*engine.Report, len(sseParadigms))
	for i, p := range sseParadigms {
		reports[p] = results[i]
	}
	thr := Table{
		ID:     "fig16a",
		Title:  "SSE instantaneous throughput (K orders/s)",
		Header: []string{"t(s)", "static", "rc", "naive-ec", "elasticutor"},
		Notes:  "paper: executor-centric approaches ~2x the throughput of static and RC",
	}
	lat := Table{
		ID:     "fig16b",
		Title:  "SSE mean processing latency (ms) per second",
		Header: []string{"t(s)", "static", "rc", "naive-ec", "elasticutor"},
		Notes:  "paper: executor-centric latency 1-2 orders of magnitude lower",
	}
	n := reports[engine.Static].ThroughputSeries.Len()
	for _, p := range sseParadigms {
		if l := reports[p].ThroughputSeries.Len(); l < n {
			n = l
		}
	}
	for i := 0; i < n; i++ {
		ts := fmt.Sprintf("%.0f", reports[engine.Static].ThroughputSeries.Times[i].Seconds())
		thrRow, latRow := []string{ts}, []string{ts}
		for _, p := range sseParadigms {
			thrRow = append(thrRow, fmtKTuples(reports[p].ThroughputSeries.Values[i]))
			latRow = append(latRow, fmtF(reports[p].LatencySeries.Values[i]*1000))
		}
		thr.Rows = append(thr.Rows, thrRow)
		lat.Rows = append(lat.Rows, latRow)
	}
	sum := Table{
		ID:     "fig16-summary",
		Title:  "SSE summary over the measured span",
		Header: []string{"approach", "thr(K/s)", "mean-lat(ms)", "p99-lat(ms)"},
	}
	for _, p := range sseParadigms {
		r := reports[p]
		sum.Rows = append(sum.Rows, []string{
			p.String(), fmtKTuples(r.ThroughputMean),
			fmtMS(r.Latency.Mean()), fmtMS(r.Latency.Quantile(0.99)),
		})
	}
	return []Table{thr, lat, sum}
}

// Table2 reproduces Table 2: the state migration rate and remote data
// transfer rate of naive-EC vs Elasticutor on the SSE workload.
func Table2(s Scale) []Table {
	dur := 60 * simtime.Second
	if s == Quick {
		dur = 30 * simtime.Second
	}
	results := pmap([]engine.Paradigm{engine.NaiveEC, engine.Elasticutor},
		func(p engine.Paradigm) *engine.Report { return runSSE(s, p, 0, dur) })
	naive, ec := results[0], results[1]
	t := Table{
		ID:     "table2",
		Title:  "Elasticity traffic: naive-EC vs Elasticutor (MB/s)",
		Header: []string{"metric", "naive-ec", "elasticutor"},
		Notes:  "paper: naive-EC migrates ~5x more state and moves ~10x more remote data",
	}
	t.Rows = append(t.Rows, []string{"state migration rate", fmtMBs(naive.MigrationRate), fmtMBs(ec.MigrationRate)})
	t.Rows = append(t.Rows, []string{"remote data transfer rate", fmtMBs(naive.RemoteRate), fmtMBs(ec.RemoteRate)})
	return []Table{t}
}

// Table3 reproduces Table 3: Elasticutor throughput and wall-clock
// scheduling time as the cluster grows.
func Table3(s Scale) []Table {
	nodeCounts := []int{8, 16, 32}
	if s == Quick {
		nodeCounts = []int{2, 4, 8}
	}
	t := Table{
		ID:     "table3",
		Title:  "Elasticutor scalability on the SSE workload",
		Header: []string{"nodes", "throughput(K orders/s)", "scheduling time (wall ms)"},
		Notes:  "paper: throughput grows near-linearly; scheduling stays at a few ms",
	}
	dur := 30 * simtime.Second
	// Sequential on purpose: the scheduling-time column is a *wall-clock*
	// microbenchmark (Table 3's metric), and concurrent trials contending
	// for CPUs would inflate it. Every other column is virtual-time and
	// worker-count independent.
	reports := harness.MustMap(&harness.Runner{Workers: 1}, nodeCounts,
		func(_ *harness.Ctx, n int) *engine.Report {
			return runSSE(s, engine.Elasticutor, n, dur)
		})
	for i, n := range nodeCounts {
		r := reports[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmtKTuples(r.ThroughputMean),
			fmt.Sprintf("%.2f", float64(r.MeanSchedulingWall().Nanoseconds())/1e6),
		})
	}
	return []Table{t}
}
