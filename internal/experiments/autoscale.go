package experiments

import (
	"context"
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/engine"
	"repro/internal/scenario"
)

// The autoscaling study: the cost/SLO dimension the paper's fixed-capacity
// evaluation cannot express. Every closed-loop cluster controller runs the
// load-shape scenarios under an elastic policy (elasticutor) and a
// repartitioning baseline (rc), judged against two fixed-capacity yardsticks:
// the scenario's own cluster ("none") and a peak-provisioned one ("peak" — a
// cluster of the controllers' MaxNodes ceiling serving the same absolute
// load). Everything runs on the simulator with virtual-time control ticks,
// so the tables are deterministic and golden-pinned.

// asScenarios are the load-shape scenarios the controllers are judged on.
var asScenarios = []string{"flashcrowd", "diurnal", "blackfriday"}

// asPolicies pairs the fully elastic plane with the repartitioning baseline.
var asPolicies = []string{"elasticutor", "rc"}

// asControllers are the table columns: the peak-provisioned yardstick first,
// then the fixed baseline, then the closed-loop controllers.
var asControllers = []string{"peak", "none", "reactive", "backlog", "predictive"}

// asMaxNodes is the controllers' node ceiling and the peak cluster's size.
const asMaxNodes = 6

// asSeed pins the study to one deterministic replicate.
const asSeed = 42

// autoscaledRun executes one (scenario, policy, controller) cell. The "peak"
// pseudo-controller is the scenario on a MaxNodes-sized cluster at the same
// absolute offered load, with no controller attached.
func autoscaledRun(scn, pol, ctl string) *engine.Report {
	sp, err := scenario.ByName(scn)
	if err != nil {
		panic(fmt.Sprintf("autoscale experiment: %v", err))
	}
	if ctl == "peak" {
		sp = sp.PeakClone(asMaxNodes) // same absolute demand, MaxNodes capacity
		ctl = "none"
	}
	inst, err := sp.Build(pol, asSeed)
	if err != nil {
		panic(fmt.Sprintf("autoscale experiment %s/%s: %v", scn, pol, err))
	}
	a, err := autoscale.ByName(ctl)
	if err != nil {
		panic(fmt.Sprintf("autoscale experiment: %v", err))
	}
	autoscale.Attach(inst.Handle, a, autoscale.Config{Warmup: sp.Warmup(), MaxNodes: asMaxNodes})
	inst.Handle.Start(context.Background())
	r, err := inst.Handle.Wait()
	if err != nil {
		panic(fmt.Sprintf("autoscale experiment %s/%s/%s: %v", scn, pol, ctl, err))
	}
	return r
}

// Autoscale runs the controller × scenario × policy study and tabulates the
// capacity cost (node-seconds), the service outcome (SLO-violation time),
// throughput, and the scaling activity. Scale is accepted for registry
// uniformity; the scenarios carry their own (quick) dimensions.
func Autoscale(Scale) []Table {
	cost := Table{
		ID:     "autoscale-a",
		Title:  "Autoscaling study: capacity cost (node-seconds)",
		Header: append([]string{"scenario/policy"}, asControllers...),
		Notes:  "peak provisions MaxNodes for the whole run; the controllers rent capacity only while demand needs it",
	}
	slo := Table{
		ID:     "autoscale-b",
		Title:  "Autoscaling study: SLO-violation time (s, windows refusing >5% of demand)",
		Header: append([]string{"scenario/policy"}, asControllers...),
		Notes:  "rc cannot place executors on joined nodes (its set is pinned at placement); any gain comes from the capacity-change notification hastening a repartition",
	}
	thr := Table{
		ID:     "autoscale-c",
		Title:  "Autoscaling study: mean throughput (K tuples/s)",
		Header: append([]string{"scenario/policy"}, asControllers...),
	}
	act := Table{
		ID:     "autoscale-d",
		Title:  "Autoscaling study: scaling actions (ups/downs, peak nodes)",
		Header: append([]string{"scenario/policy"}, asControllers...),
		Notes:  "every scale-down is a graceful drain: state migrates off, nothing is lost",
	}
	type cell struct{ scn, pol, ctl string }
	var cells []cell
	for _, scn := range asScenarios {
		for _, pol := range asPolicies {
			for _, ctl := range asControllers {
				cells = append(cells, cell{scn, pol, ctl})
			}
		}
	}
	reports := pmap(cells, func(c cell) *engine.Report {
		return autoscaledRun(c.scn, c.pol, c.ctl)
	})
	i := 0
	for _, scn := range asScenarios {
		for _, pol := range asPolicies {
			label := scn + "/" + pol
			costRow := []string{label}
			sloRow := []string{label}
			thrRow := []string{label}
			actRow := []string{label}
			for range asControllers {
				r := reports[i]
				i++
				st := r.Autoscale
				costRow = append(costRow, fmt.Sprintf("%.1f", st.NodeSeconds))
				sloRow = append(sloRow, fmt.Sprintf("%.1f", st.SLOViolation.Seconds()))
				thrRow = append(thrRow, fmtKTuples(r.ThroughputMean))
				actRow = append(actRow, fmt.Sprintf("%d/%d@%d", st.ScaleUps, st.ScaleDowns, st.PeakNodes))
			}
			cost.Rows = append(cost.Rows, costRow)
			slo.Rows = append(slo.Rows, sloRow)
			thr.Rows = append(thr.Rows, thrRow)
			act.Rows = append(act.Rows, actRow)
		}
	}
	return []Table{cost, slo, thr, act}
}
