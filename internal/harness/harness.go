// Package harness fans independent simulation trials out across worker
// goroutines with deterministic results: output order is trial order, each
// trial gets a deterministically forked RNG (independent of worker count and
// scheduling), and panics or errors surface exactly as they would have under
// sequential execution — lowest trial index first, later trials cancelled.
//
// Safe parallelism rests on the engines being fully self-contained: one
// engine owns its clock, RNG, cluster, and report, and shares nothing (the
// NavarchProject per-instance-clock discipline). Trials must therefore build
// everything they touch inside the trial function — sharing a Zipf sampler,
// generator, or engine across trials reintroduces nondeterminism.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/simtime"
)

// Ctx is the per-trial context.
type Ctx struct {
	// Index is the trial's position in the submitted order.
	Index int
	// Rand is a deterministic RNG forked from the runner's seed by trial
	// index: the same trial always sees the same stream, no matter how many
	// workers run or how they interleave.
	Rand *simtime.Rand
}

// defaultWorkers is the process-wide worker count used by runners with
// Workers == 0; itself 0 means runtime.GOMAXPROCS(0). The CLIs set it from
// their -parallel flag.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count (n <= 0
// restores the GOMAXPROCS default).
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the process-wide default worker count.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Runner executes trials. The zero value is ready to use: default workers,
// seed 0.
type Runner struct {
	// Workers caps concurrent trials; 0 uses DefaultWorkers(), 1 runs
	// sequentially in the caller's goroutine.
	Workers int
	// Seed is the root of the per-trial RNG forks.
	Seed uint64
}

// Default returns a runner with the process-wide default worker count.
func Default() *Runner { return &Runner{} }

func (r *Runner) workers(trials int) int {
	w := r.Workers
	if w <= 0 {
		w = DefaultWorkers()
	}
	if w > trials {
		w = trials
	}
	if w < 1 {
		w = 1
	}
	return w
}

// TrialPanic carries a recovered trial panic back to the calling goroutine,
// preserving the original panic value so recover-based handling works the
// same for any worker count (with Workers == 1 the original value unwinds
// directly).
type TrialPanic struct {
	// Index is the panicking trial's index.
	Index int
	// Value is the original panic value.
	Value interface{}
}

// String formats the panic for the default crash output.
func (p TrialPanic) String() string {
	return fmt.Sprintf("harness: trial %d panicked: %v", p.Index, p.Value)
}

// run executes fn for every index in [0, n), returning the lowest-index
// error. After any error or panic, undispatched trials are skipped (the
// sequential semantics: later trials never ran). The lowest-index panic is
// re-raised in the caller.
func (r *Runner) run(n int, fn func(*Ctx) error) error {
	if n <= 0 {
		return nil
	}
	// Fork all trial RNGs up front, in index order, so their streams depend
	// only on (Seed, Index).
	root := simtime.NewRand(r.Seed)
	ctxs := make([]*Ctx, n)
	for i := range ctxs {
		ctxs[i] = &Ctx{Index: i, Rand: root.Fork()}
	}
	errs := make([]error, n)
	var panics []TrialPanic

	w := r.workers(n)
	if w == 1 {
		// Sequential fast path: run in the caller's goroutine, bail at the
		// first failure, and let panics unwind naturally.
		for i := 0; i < n; i++ {
			if err := fn(ctxs[i]); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64 // next trial index to dispatch
		stopped atomic.Bool  // stop dispatching after an error/panic
		mu      sync.Mutex   // guards panics
		wg      sync.WaitGroup
	)
	next.Store(0)
	worker := func() {
		defer wg.Done()
		for {
			if stopped.Load() {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if v := recover(); v != nil {
						stopped.Store(true)
						mu.Lock()
						panics = append(panics, TrialPanic{Index: i, Value: v})
						mu.Unlock()
					}
				}()
				if err := fn(ctxs[i]); err != nil {
					errs[i] = err
					stopped.Store(true)
				}
			}()
		}
	}
	wg.Add(w)
	for i := 0; i < w; i++ {
		go worker()
	}
	wg.Wait()

	if len(panics) > 0 {
		first := panics[0]
		for _, p := range panics[1:] {
			if p.Index < first.Index {
				first = p
			}
		}
		panic(first)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes fn for every index in [0, n) across the runner's workers.
func (r *Runner) Run(n int, fn func(*Ctx)) {
	_ = r.run(n, func(ctx *Ctx) error { fn(ctx); return nil })
}

// Map runs fn over items and returns the results in item order. On error,
// the lowest-index error is returned and undispatched items are skipped.
func Map[T, R any](r *Runner, items []T, fn func(*Ctx, T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := r.run(len(items), func(ctx *Ctx) error {
		v, err := fn(ctx, items[ctx.Index])
		if err != nil {
			return fmt.Errorf("harness: trial %d: %w", ctx.Index, err)
		}
		out[ctx.Index] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MustMap runs fn over items and returns the results in item order; trial
// panics propagate to the caller.
func MustMap[T, R any](r *Runner, items []T, fn func(*Ctx, T) R) []R {
	out, _ := Map(r, items, func(ctx *Ctx, it T) (R, error) {
		return fn(ctx, it), nil
	})
	return out
}
