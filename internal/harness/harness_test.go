package harness_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/golden"
	"repro/internal/harness"
)

// TestRandForkIndependentOfWorkerCount: a trial's RNG stream depends only on
// (Seed, Index), never on scheduling.
func TestRandForkIndependentOfWorkerCount(t *testing.T) {
	draw := func(workers int) []uint64 {
		r := &harness.Runner{Workers: workers, Seed: 42}
		out := make([]uint64, 32)
		r.Run(len(out), func(ctx *harness.Ctx) {
			out[ctx.Index] = ctx.Rand.Uint64()
		})
		return out
	}
	seq := draw(1)
	for _, w := range []int{2, 4, 16} {
		par := draw(w)
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d trial %d drew %d, sequential drew %d", w, i, par[i], seq[i])
			}
		}
	}
	distinct := map[uint64]bool{}
	for _, v := range seq {
		distinct[v] = true
	}
	if len(distinct) != len(seq) {
		t.Fatal("trial RNG forks collided")
	}
}

// TestEngineTrialsDeterministicAcrossWorkers is the harness's core
// guarantee: running real simulation trials with 1 worker or N workers
// produces byte-identical reports.
func TestEngineTrialsDeterministicAcrossWorkers(t *testing.T) {
	scenarios := golden.Scenarios()[:4] // the four micro paradigms
	fingerprints := func(workers int) []string {
		r := &harness.Runner{Workers: workers}
		return harness.MustMap(r, scenarios, func(_ *harness.Ctx, s golden.Scenario) string {
			return golden.Fingerprint(s.Name, s.Run())
		})
	}
	seq := fingerprints(1)
	par := fingerprints(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("trial %d diverged under parallelism:\nseq: %s\npar: %s", i, seq[i], par[i])
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i * 3
	}
	out, err := harness.Map(&harness.Runner{Workers: 8}, items, func(_ *harness.Ctx, v int) (int, error) {
		return v * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*6 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*6)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := harness.Map(&harness.Runner{Workers: workers}, []int{0, 1, 2, 3, 4, 5, 6, 7},
			func(_ *harness.Ctx, v int) (int, error) {
				if v >= 3 {
					return 0, fmt.Errorf("%w at %d", boom, v)
				}
				return v, nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// With concurrent workers several trials may fail before dispatch
		// stops; the reported one must still be the earliest.
		if !strings.Contains(err.Error(), "at 3") {
			t.Fatalf("workers=%d: expected the lowest-index error, got %v", workers, err)
		}
	}
}

func TestPanicPropagatesWithOriginalValue(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				// The original panic value must survive for recover-based
				// handling: directly when sequential, wrapped in TrialPanic
				// (value preserved) when concurrent.
				switch p := v.(type) {
				case string:
					if workers != 1 || p != "kaboom" {
						t.Fatalf("workers=%d: panic = %q", workers, p)
					}
				case harness.TrialPanic:
					if workers == 1 {
						t.Fatalf("sequential path should unwind the raw value, got %v", p)
					}
					if p.Index != 2 || p.Value != "kaboom" {
						t.Fatalf("workers=%d: wrong panic surfaced: %+v", workers, p)
					}
				default:
					t.Fatalf("workers=%d: unexpected panic type %T: %v", workers, v, v)
				}
			}()
			(&harness.Runner{Workers: workers}).Run(8, func(ctx *harness.Ctx) {
				if ctx.Index == 2 {
					panic("kaboom")
				}
			})
		}()
	}
}

func TestErrorSkipsLaterTrials(t *testing.T) {
	ran := make([]bool, 64)
	_, err := harness.Map(&harness.Runner{Workers: 2}, make([]struct{}, 64),
		func(ctx *harness.Ctx, _ struct{}) (int, error) {
			ran[ctx.Index] = true
			if ctx.Index == 0 {
				return 0, errors.New("early failure")
			}
			return 0, nil
		})
	if err == nil {
		t.Fatal("expected error")
	}
	skipped := 0
	for _, r := range ran {
		if !r {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("an early error should cancel undispatched trials")
	}
}

func TestDefaultWorkers(t *testing.T) {
	if harness.DefaultWorkers() < 1 {
		t.Fatal("default workers must be >= 1")
	}
	harness.SetDefaultWorkers(3)
	if harness.DefaultWorkers() != 3 {
		t.Fatalf("DefaultWorkers = %d after SetDefaultWorkers(3)", harness.DefaultWorkers())
	}
	harness.SetDefaultWorkers(0)
	if harness.DefaultWorkers() < 1 {
		t.Fatal("resetting must restore the GOMAXPROCS default")
	}
}

func TestRunZeroTrials(t *testing.T) {
	(&harness.Runner{}).Run(0, func(*harness.Ctx) { t.Fatal("should not run") })
	out, err := harness.Map(&harness.Runner{}, nil, func(*harness.Ctx, int) (*engine.Report, error) {
		t.Fatal("should not run")
		return nil, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v %v", out, err)
	}
}
