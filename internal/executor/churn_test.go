package executor

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/stream"
)

// keyOnTask routes some key's shard to the given task and returns the key
// (white-box: fresh shards would otherwise all stick to the first task).
func keyOnTask(ex *Executor, want TaskID) stream.Key {
	k := stream.Key(42)
	ex.routing[ex.cfg.ShardOf(k)] = want
	return k
}

func TestFailNodeDropsQueuedWorkAndState(t *testing.T) {
	env := newEnv(2)
	cfg := baseConfig()
	cfg.AssertOrder = false
	ex := New(env, cfg, 0)  // task 0 on node 0
	remote := ex.AddCore(4) // first core of node 1
	var dropped int
	ex.OnDropped = func(w int) { dropped += w }

	env.clock.At(0, func() {
		// Seed state and queue load on the remote task.
		k := keyOnTask(ex, remote)
		for i := 0; i < 5; i++ {
			ex.Receive(tuple(k, 1, 0))
		}
	})
	// Stop mid-stream: some tuples processed, one in service, some queued.
	env.clock.RunUntil(simtime.Time(2500 * simtime.Microsecond))
	pre := ex.Stats.ProcessedTuples

	rep := ex.FailNode(1)
	if rep.LostTasks != 1 {
		t.Fatalf("LostTasks = %d, want 1", rep.LostTasks)
	}
	if rep.Dead || rep.Rehomed {
		t.Fatalf("unexpected Dead/Rehomed: %+v", rep)
	}
	if rep.LostStateBytes == 0 {
		t.Fatal("no state loss reported for a store-bearing node")
	}
	if ex.Cores() != 1 {
		t.Fatalf("Cores = %d after failure, want 1", ex.Cores())
	}
	env.clock.Run()
	if ex.Stats.ProcessedTuples != pre {
		t.Fatalf("dead task kept processing: %d -> %d", pre, ex.Stats.ProcessedTuples)
	}
	if dropped == 0 || ex.Stats.DroppedTuples == 0 {
		t.Fatal("queued work on the failed node was not dropped")
	}
	if ex.InFlight() != 0 {
		t.Fatalf("inFlight = %d after drain, want 0", ex.InFlight())
	}
	// Survivor keeps serving the orphaned keys (fresh state).
	env.clock.At(env.clock.Now(), func() { ex.Receive(tuple(7, 1, env.clock.Now())) })
	env.clock.Run()
	if ex.Stats.ProcessedTuples != pre+1 {
		t.Fatal("survivor did not take over orphaned traffic")
	}
}

func TestFailNodeRehomesMainProcess(t *testing.T) {
	env := newEnv(2)
	cfg := baseConfig()
	cfg.AssertOrder = false
	ex := New(env, cfg, 0)
	ex.AddCore(4) // node 1
	env.clock.At(0, func() {
		for k := stream.Key(0); k < 8; k++ {
			ex.Receive(tuple(k, 1, 0))
		}
	})
	env.clock.Run()

	rep := ex.FailNode(0) // the local node dies
	if !rep.Rehomed {
		t.Fatalf("expected rehome, got %+v", rep)
	}
	if ex.LocalNode() != 1 {
		t.Fatalf("LocalNode = %d, want 1", ex.LocalNode())
	}
	if rep.Dead {
		t.Fatal("executor should survive on node 1")
	}
	// It still processes new work from its new home.
	pre := ex.Stats.ProcessedTuples
	env.clock.At(env.clock.Now(), func() { ex.Receive(tuple(3, 1, env.clock.Now())) })
	env.clock.Run()
	if ex.Stats.ProcessedTuples != pre+1 {
		t.Fatal("rehomed executor did not process")
	}
}

func TestFailNodeLastTaskLeavesDeadExecutor(t *testing.T) {
	env := newEnv(2)
	ex := New(env, baseConfig(), 0)
	rep := ex.FailNode(0)
	if !rep.Dead || !ex.Dead() {
		t.Fatalf("executor should be dead: %+v", rep)
	}
	var dropped int
	ex.OnDropped = func(w int) { dropped += w }
	env.clock.At(0, func() {
		if ex.Receive(tuple(1, 2, 0)) {
			t.Error("dead executor accepted a tuple")
		}
	})
	env.clock.Run()
	if dropped != 2 {
		t.Fatalf("OnDropped got %d, want 2", dropped)
	}
}

func TestFailNodeAbortsInFlightReassign(t *testing.T) {
	env := newEnv(2)
	cfg := baseConfig()
	cfg.AssertOrder = false
	ex := New(env, cfg, 0)
	dst := ex.AddCore(4) // node 1
	env.clock.At(0, func() {
		ex.Receive(tuple(1, 1, 0))
	})
	env.clock.RunUntil(simtime.Time(5 * simtime.Millisecond))
	sh, ok := ex.AnyShardNotOn(dst)
	if !ok {
		t.Fatal("no movable shard")
	}
	completed := false
	if !ex.ReassignShard(sh, dst, func(ReassignReport) { completed = true }) {
		t.Fatal("reassign refused")
	}
	// Fail the destination node while the label/migration is in flight.
	ex.FailNode(1)
	env.clock.Run()
	if completed {
		t.Fatal("reassignment completed against a failed destination")
	}
	if len(ex.pausedBy) != 0 {
		t.Fatal("aborted reassignment left the shard paused")
	}
	// The shard must still be servable by the survivor.
	pre := ex.Stats.ProcessedTuples
	env.clock.At(env.clock.Now(), func() { ex.Receive(tuple(1, 1, env.clock.Now())) })
	env.clock.Run()
	if ex.Stats.ProcessedTuples != pre+1 {
		t.Fatal("shard unservable after aborted reassignment")
	}
}

func TestKillDrainsButRefusesNewWork(t *testing.T) {
	env := newEnv(1)
	cfg := baseConfig()
	cfg.Handler = func(t stream.Tuple, s stream.StateAccessor) []stream.Tuple {
		n, _ := s.Get().(int)
		s.Set(n + t.Weight)
		return nil
	}
	ex := New(env, cfg, 0)
	env.clock.At(0, func() {
		for i := 0; i < 3; i++ {
			ex.Receive(tuple(1, 1, 0))
		}
		ex.Kill()
	})
	var dropped int
	ex.OnDropped = func(w int) { dropped += w }
	env.clock.At(simtime.Time(simtime.Millisecond), func() {
		ex.Receive(tuple(2, 1, env.clock.Now()))
	})
	env.clock.Run()
	if ex.Stats.ProcessedTuples != 3 {
		t.Fatalf("queued work did not drain: processed = %d", ex.Stats.ProcessedTuples)
	}
	if dropped != 1 {
		t.Fatalf("post-kill arrival not dropped: %d", dropped)
	}
	if ex.ResidentStateBytes() == 0 {
		t.Fatal("resident state should be non-zero after stateful processing")
	}
}
