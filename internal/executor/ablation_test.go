package executor

import (
	"testing"

	clusterpkg "repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/state"
	"repro/internal/stream"
)

// These tests are the negative controls for the consistency mechanisms: they
// verify that the protocol guarantees actually depend on the protocol, and
// that the ablation switches change behaviour in the documented direction.

func TestDisableStateSharingChargesIntraNodeMoves(t *testing.T) {
	env := newEnv(1)
	cfg := baseConfig()
	cfg.DisableStateSharing = true
	ex := New(env, cfg, 0)
	second := ex.AddCore(1)
	key := stream.Key(7)
	sh := state.ShardID(key.Shard(16))
	var rep ReassignReport
	env.clock.At(0, func() {
		ex.Receive(tuple(key, 1, 0))
		ex.ReassignShard(sh, second, func(r ReassignReport) { rep = r })
	})
	env.clock.Run()
	if rep.MovedBytes != 32<<10 {
		t.Fatalf("ablated intra-node move charged %d bytes, want full shard", rep.MovedBytes)
	}
	if rep.MigrationTime < cfg.SerializeOverhead {
		t.Fatalf("migration time %v below serialization cost", rep.MigrationTime)
	}
	if ex.Stats.MigrationBytes != 32<<10 {
		t.Fatalf("MigrationBytes = %d", ex.Stats.MigrationBytes)
	}
	// The reassignment still preserves order and completes.
	if ex.Stats.ProcessedTuples != 1 {
		t.Fatal("tuple lost under ablation")
	}
}

func TestStateSharingIsWhatMakesIntraNodeFree(t *testing.T) {
	// Control pair: identical scenario, sharing on vs off.
	run := func(off bool) simtime.Duration {
		env := newEnv(1)
		cfg := baseConfig()
		cfg.DisableStateSharing = off
		ex := New(env, cfg, 0)
		second := ex.AddCore(1)
		sh := state.ShardID(stream.Key(3).Shard(16))
		var total simtime.Duration
		env.clock.At(0, func() {
			ex.Receive(tuple(3, 1, 0))
			ex.ReassignShard(sh, second, func(r ReassignReport) { total = r.TotalTime })
		})
		env.clock.Run()
		return total
	}
	with := run(false)
	without := run(true)
	if without <= with {
		t.Fatalf("ablation did not slow the move: with=%v without=%v", with, without)
	}
}

// TestLabelingTupleIsTheOrderGuard shows the protocol dependency: if the
// destination processed buffered tuples while the source still had pending
// ones (i.e., no labeling-tuple drain), per-key order would break. We verify
// the guard by checking that buffered tuples are processed strictly after
// every pending tuple of the shard, even when the destination is idle.
func TestLabelingTupleIsTheOrderGuard(t *testing.T) {
	env := newEnv(1)
	cfg := baseConfig()
	ex := New(env, cfg, 0)
	second := ex.AddCore(1)
	key := stream.Key(7)
	sh := state.ShardID(key.Shard(16))
	var processedAt []simtime.Time
	ex.OnProcessed = func(tp stream.Tuple) {
		processedAt = append(processedAt, env.clock.Now())
	}
	env.clock.At(0, func() {
		// Five pending on the (busy) source.
		for i := 0; i < 5; i++ {
			ex.Receive(tuple(key, 1, 0))
		}
		ex.ReassignShard(sh, second, nil)
		// Arrives during the pause; the destination task is COMPLETELY idle
		// and would process it instantly if routing were not paused.
		ex.Receive(tuple(key, 1, 0))
	})
	env.clock.Run()
	if len(processedAt) != 6 {
		t.Fatalf("processed %d tuples", len(processedAt))
	}
	// The 6th tuple must complete after the 5th: the idle destination had to
	// wait for the labeling tuple to drain through the source.
	if processedAt[5] <= processedAt[4] {
		t.Fatalf("buffered tuple jumped the drain: %v <= %v", processedAt[5], processedAt[4])
	}
	if processedAt[4] < simtime.Time(5*simtime.Millisecond) {
		t.Fatalf("source pending queue finished too early: %v", processedAt[4])
	}
}

// TestStateFollowsShardAcrossManyMoves drives a shard around all processes
// repeatedly and checks the counter state never forks or loses updates.
func TestStateFollowsShardAcrossManyMoves(t *testing.T) {
	env := newEnv(2)
	cfg := baseConfig()
	cfg.Cost = stream.FixedCost(100 * simtime.Microsecond)
	cfg.Handler = func(tp stream.Tuple, acc stream.StateAccessor) []stream.Tuple {
		n, _ := acc.Get().(int)
		acc.Set(n + tp.Weight)
		return nil
	}
	ex := New(env, cfg, 0)
	tasks := []TaskID{0, ex.AddCore(1), ex.AddCore(4), ex.AddCore(5)}
	key := stream.Key(9)
	sh := cfg.ShardOf(key)
	const tuples = 200
	rng := simtime.NewRand(31)
	for i := 0; i < tuples; i++ {
		at := simtime.Time(rng.Intn(int(simtime.Second)))
		env.clock.At(at, func() { ex.Receive(tuple(key, 1, at)) })
	}
	for i := 0; i < 40; i++ {
		at := simtime.Time(rng.Intn(int(simtime.Second)))
		dst := tasks[rng.Intn(len(tasks))]
		env.clock.At(at, func() { ex.ReassignShard(sh, dst, nil) })
	}
	env.clock.Run()
	if ex.Stats.ProcessedTuples != tuples {
		t.Fatalf("processed = %d, want %d", ex.Stats.ProcessedTuples, tuples)
	}
	// Exactly one process holds the shard's state, and it counted everything.
	total, holders := 0, 0
	for node := 0; node < 2; node++ {
		if v, ok := ex.StateStore(cnode(node)).Accessor(sh, key).Get().(int); ok {
			total += v
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("state forked across %d processes", holders)
	}
	if total != tuples {
		t.Fatalf("state count = %d, want %d (lost or duplicated updates)", total, tuples)
	}
}

// cnode converts an int to a cluster NodeID for test readability.
func cnode(n int) clusterpkg.NodeID { return clusterpkg.NodeID(n) }
