// Package executor implements the elastic executor of paper §3: a
// lightweight, self-contained distributed subsystem that owns a fixed key
// subspace, splits it into shards, and processes tuples with one task per
// allocated CPU core — locally or on remote nodes — behind a single
// receiver/emitter pair on its local ("main process") node.
//
// The three mechanisms the paper describes are all here:
//
//   - the two-tier routing table (static key→shard hash, dynamic shard→task
//     map, §3.2);
//   - intra-process state sharing (per-node stores; same-node shard moves
//     migrate nothing, §3.2);
//   - the consistent shard reassignment protocol (pause shard routing →
//     labeling tuple drains the source task → migrate state across processes
//     if needed → update routing → replay buffered tuples, §3.3).
//
// The executor is paradigm-agnostic: the engine instantiates it with many
// shards and a dynamic task set for Elasticutor, with a single pinned task
// for the static and resource-centric baselines.
package executor

import (
	"fmt"

	"repro/internal/balancer"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/state"
	"repro/internal/stream"
)

// TaskID identifies a task within one executor.
type TaskID int

// Env is the slice of the simulated world an executor needs: virtual time
// and the cluster network. The engine implements it.
type Env interface {
	Clock() *simtime.Clock
	NodeOf(core cluster.CoreID) cluster.NodeID
	// Send models a network transfer and calls done on delivery. Same-node
	// sends complete immediately (via a zero-delay event).
	Send(from, to cluster.NodeID, bytes int, done func())
}

// Config describes one executor.
type Config struct {
	Name      string
	LocalNode cluster.NodeID

	// ShardOf maps a key to its shard. Elasticutor uses Key.Shard(z); the
	// resource-centric baseline uses operator-level shards.
	ShardOf func(stream.Key) state.ShardID

	Cost        stream.CostModel
	Handler     stream.Handler
	OutBytes    int     // default size of emitted tuples
	Selectivity float64 // outputs per input when Handler is nil

	StateBytesPerShard int // nominal shard state size (migration cost)

	Theta       float64 // imbalance threshold θ for Rebalance (default 1.2)
	MaxInFlight int     // backpressure cap in tuple-weight units (0 = unbounded)

	// ControlDelay is the local control-plane cost of a shard reassignment
	// (routing-table pause/update bookkeeping). Paper Fig 8 measures ~2–3 ms
	// of intra-executor synchronization; 1 ms of control plus the actual
	// label-drain reproduces that.
	ControlDelay simtime.Duration
	// SerializeOverhead is the fixed serialization cost added to a cross-node
	// state migration on top of wire time (Fig 8: ~4 ms at 32 KB).
	SerializeOverhead simtime.Duration

	// AssertOrder enables per-key order checking (tests and paranoia runs).
	AssertOrder bool

	// DisableStateSharing turns off the intra-process state sharing of §3.2
	// (ablation): every shard reassignment then pays serialization and a
	// state copy even between tasks of the same process, as in systems where
	// each task owns a private state structure.
	DisableStateSharing bool
}

// ReassignReport describes one completed shard reassignment (Fig 8 data).
type ReassignReport struct {
	Shard         state.ShardID
	InterNode     bool
	SyncTime      simtime.Duration // initiation → label drained at source task
	MigrationTime simtime.Duration // state extract → installed at destination
	TotalTime     simtime.Duration
	MovedBytes    int
}

// Stats are cumulative executor counters.
type Stats struct {
	ReceivedTuples      int64 // weight units
	ProcessedTuples     int64
	DroppedTuples       int64 // rejected by backpressure
	InBytes             int64
	OutBytes            int64
	RemoteTransferBytes int64 // receiver/emitter ↔ remote task traffic
	MigrationBytes      int64 // state moved across nodes
	Reassignments       int64
	IntraNodeReassigns  int64
	InterNodeReassigns  int64
	SyncTimeTotal       simtime.Duration
	MigrationTimeTotal  simtime.Duration
}

// queued is one entry in a task's pending queue: either a data tuple or the
// labeling control tuple of an in-progress shard reassignment.
type queued struct {
	tuple      stream.Tuple
	shard      state.ShardID
	arrivalSeq uint64
	label      *reassign // non-nil for labeling tuples
	// bufAt stamps when the item entered a shard-pause buffer, so the replay
	// can attribute the stall to the tuple's migration stage.
	bufAt simtime.Time
}

type task struct {
	id      TaskID
	core    cluster.CoreID
	node    cluster.NodeID
	queue   []queued
	busy    bool
	removed bool
	// failed marks a task destroyed by a node failure: unlike removed (a
	// graceful drain through the reassignment protocol), a failed task loses
	// its queue and never processes again. Tuples still in flight toward it
	// are dropped on arrival.
	failed bool
	// pendingReassigns counts reassignments with this task as source or
	// destination; a task is only destroyed when it reaches zero.
	pendingReassigns int
	queuedWeight     int
	busyWeight       int              // tuple weight of the batch in service
	busyTime         simtime.Duration // cumulative processing time
}

// reassign tracks one in-flight shard reassignment.
type reassign struct {
	shard    state.ShardID
	src, dst TaskID
	started  simtime.Time
	drained  simtime.Time
	buffered []queued // tuples arriving while the shard is paused
	onDone   func(ReassignReport)
	// aborted short-circuits every remaining protocol step after a node
	// failure killed the source or destination task (or the main process).
	aborted bool
}

// Executor is one elastic executor.
type Executor struct {
	cfg Config
	env Env

	tasks    []*task // indexed by TaskID; nil when destroyed
	live     int
	routing  map[state.ShardID]TaskID
	stores   map[cluster.NodeID]*state.Store
	pausedBy map[state.ShardID]*reassign

	inFlight int // weight units received but not yet processed

	// Window measurement state (reset by TakeWindow).
	winArrived   int64
	winProcessed int64
	winBusy      simtime.Duration
	winInBytes   int64
	winOutBytes  int64
	winShardLoad map[state.ShardID]float64
	winStart     simtime.Time

	// Latency-anatomy window state (reset by TakeAnatomy, on the metrics
	// window tick — a different cadence from TakeWindow, which belongs to the
	// scheduler's measurement loop).
	anatHop     *metrics.Histogram // source-to-processed hop latency (Mark-based)
	anatSvc     simtime.Duration   // Σ service duration × weight this window
	anatMGStall simtime.Duration   // Σ shard-pause stall × weight this window

	// Per-key order bookkeeping (AssertOrder).
	arrivalSeq   map[stream.Key]uint64
	processedSeq map[stream.Key]uint64

	// OnOutput receives tuples the executor emits downstream; the engine
	// routes them. Called on the local node (the emitter daemon).
	OnOutput func(ts []stream.Tuple)
	// OnLatency observes the source-to-processed latency of each tuple batch,
	// together with the tuple whose stage accumulators (Svc/RPStall/MGStall)
	// decompose that latency.
	OnLatency func(d simtime.Duration, t stream.Tuple)
	// OnProcessed, when set, observes every processed batch (tests).
	OnProcessed func(t stream.Tuple)
	// OnDropped, when set, observes tuple weight destroyed inside the
	// executor (node failures, arrivals at a dead executor) so the engine can
	// reconcile its in-flight backpressure ledger.
	OnDropped func(weight int)

	// dead marks a retired executor: it accepts no new tuples (arrivals are
	// dropped and reported through OnDropped) but lets already-queued work
	// drain, which is what a graceful shutdown does.
	dead bool

	Stats Stats
}

// New builds an executor with one initial task on the given core. Executors
// always have at least one task.
func New(env Env, cfg Config, firstCore cluster.CoreID) *Executor {
	if cfg.ShardOf == nil {
		panic("executor: Config.ShardOf is required")
	}
	if cfg.Theta <= 1 {
		cfg.Theta = balancer.DefaultTheta
	}
	e := &Executor{
		cfg:          cfg,
		env:          env,
		routing:      make(map[state.ShardID]TaskID),
		stores:       make(map[cluster.NodeID]*state.Store),
		pausedBy:     make(map[state.ShardID]*reassign),
		winShardLoad: make(map[state.ShardID]float64),
		winStart:     env.Clock().Now(),
		anatHop:      metrics.NewHistogram(),
	}
	if cfg.AssertOrder {
		e.arrivalSeq = make(map[stream.Key]uint64)
		e.processedSeq = make(map[stream.Key]uint64)
	}
	e.AddCore(firstCore)
	return e
}

// Name returns the executor's configured name.
func (e *Executor) Name() string { return e.cfg.Name }

// LocalNode returns the node hosting the executor's main process.
func (e *Executor) LocalNode() cluster.NodeID { return e.cfg.LocalNode }

// Cores returns the number of live tasks (== allocated cores).
func (e *Executor) Cores() int { return e.live }

// InFlight returns the tuple weight currently inside the executor.
func (e *Executor) InFlight() int { return e.inFlight }

// HasCapacity reports whether the executor can accept weight more tuples
// under its backpressure cap.
func (e *Executor) HasCapacity(weight int) bool {
	return e.cfg.MaxInFlight <= 0 || e.inFlight+weight <= e.cfg.MaxInFlight
}

// CoresByNode returns how many of the executor's cores sit on each node.
func (e *Executor) CoresByNode() map[cluster.NodeID]int {
	m := make(map[cluster.NodeID]int)
	for _, t := range e.tasks {
		if t != nil && !t.removed {
			m[t.node]++
		}
	}
	return m
}

// store returns (creating if needed) the state store of the process on node.
func (e *Executor) store(n cluster.NodeID) *state.Store {
	s := e.stores[n]
	if s == nil {
		s = state.NewStore(e.cfg.StateBytesPerShard)
		e.stores[n] = s
	}
	return s
}

// AddCore creates a task bound to the given core (a remote process is
// implied when the core's node differs from the local node). Returns the new
// task's ID.
func (e *Executor) AddCore(core cluster.CoreID) TaskID {
	id := TaskID(len(e.tasks))
	t := &task{id: id, core: core, node: e.env.NodeOf(core)}
	e.tasks = append(e.tasks, t)
	e.live++
	e.store(t.node)
	return id
}

// taskFor returns the live task currently owning shard s, assigning unowned
// shards to the least-loaded live task on first touch.
func (e *Executor) taskFor(s state.ShardID) *task {
	if id, ok := e.routing[s]; ok {
		if t := e.tasks[id]; t != nil && !t.removed {
			return t
		}
	}
	best := e.leastLoadedTask(-1)
	if best == nil {
		panic(fmt.Sprintf("executor %s: no live tasks", e.cfg.Name))
	}
	e.routing[s] = best.id
	return best
}

func (e *Executor) leastLoadedTask(excluding TaskID) *task {
	load := func(t *task) int {
		l := t.queuedWeight
		if t.busy {
			l++
		}
		return l
	}
	var best *task
	for _, t := range e.tasks {
		if t == nil || t.removed || t.id == excluding {
			continue
		}
		if best == nil || load(t) < load(best) {
			best = t
		}
	}
	return best
}

// Receive is the executor's receiver daemon: the single entrance for tuples
// from upstream operators (§3.3, inter-operator consistent routing). The
// caller has already charged the network cost of reaching the local node.
// It returns false when backpressure rejects the tuple.
func (e *Executor) Receive(t stream.Tuple) bool {
	if e.dead {
		e.Stats.DroppedTuples += int64(t.Weight)
		if e.OnDropped != nil {
			e.OnDropped(t.Weight)
		}
		return false
	}
	if !e.HasCapacity(t.Weight) {
		e.Stats.DroppedTuples += int64(t.Weight)
		if e.OnDropped != nil {
			e.OnDropped(t.Weight)
		}
		return false
	}
	e.inFlight += t.Weight
	e.Stats.ReceivedTuples += int64(t.Weight)
	e.Stats.InBytes += int64(t.TotalBytes())
	e.winArrived += int64(t.Weight)
	e.winInBytes += int64(t.TotalBytes())
	sh := e.cfg.ShardOf(t.Key)
	e.winShardLoad[sh] += float64(t.Weight)

	q := queued{tuple: t, shard: sh}
	if e.cfg.AssertOrder {
		e.arrivalSeq[t.Key]++
		q.arrivalSeq = e.arrivalSeq[t.Key]
	}
	if r := e.pausedBy[sh]; r != nil {
		q.bufAt = e.env.Clock().Now()
		r.buffered = append(r.buffered, q)
		return true
	}
	e.dispatch(q, e.taskFor(sh))
	return true
}

// dispatch routes a queued item to a task, crossing the network when the
// task is remote from the main process.
func (e *Executor) dispatch(q queued, t *task) {
	if t.node == e.cfg.LocalNode {
		e.enqueue(t, q)
		return
	}
	bytes := q.tuple.TotalBytes()
	if q.label != nil {
		bytes = 64 // labeling tuples are tiny control messages
	}
	e.Stats.RemoteTransferBytes += int64(bytes)
	e.env.Send(e.cfg.LocalNode, t.node, bytes, func() { e.enqueue(t, q) })
}

func (e *Executor) enqueue(t *task, q queued) {
	if t.failed {
		// The task died while this item was in transit to it.
		if q.label != nil {
			e.abortReassign(q.label, false)
		} else {
			e.dropWeight(q.tuple.Weight)
		}
		return
	}
	t.queue = append(t.queue, q)
	t.queuedWeight += q.tuple.Weight
	e.kick(t)
}

// kick starts the task's service loop if it is idle.
func (e *Executor) kick(t *task) {
	if t.busy || t.failed || len(t.queue) == 0 {
		return
	}
	q := t.queue[0]
	t.queue = t.queue[1:]
	t.queuedWeight -= q.tuple.Weight
	if q.label != nil {
		// The labeling tuple reached the head of the source task's queue:
		// every tuple of the shard that was pending before the pause has now
		// been processed (first-come-first-served, §3.3).
		e.labelDrained(q.label)
		// The task continues with its other shards immediately.
		e.kick(t)
		return
	}
	t.busy = true
	t.busyWeight = q.tuple.Weight
	cost := e.cfg.Cost(q.tuple) * simtime.Duration(q.tuple.Weight)
	t.busyTime += cost
	e.winBusy += cost
	// Every real tuple in the batch spends the whole batch cost in service
	// (they complete together), so the per-tuple service accumulator grows by
	// cost and the window's weighted total by cost × weight.
	q.tuple.Svc += cost
	e.anatSvc += cost * simtime.Duration(q.tuple.Weight)
	e.env.Clock().After(cost, func() { e.finish(t, q) })
}

// finish completes processing of one batch on task t.
func (e *Executor) finish(t *task, q queued) {
	t.busy = false
	t.busyWeight = 0
	if t.failed {
		// The task's node failed while this batch was in service.
		e.dropWeight(q.tuple.Weight)
		return
	}
	tup := q.tuple

	if e.cfg.AssertOrder {
		last := e.processedSeq[tup.Key]
		if q.arrivalSeq != last+1 {
			panic(fmt.Sprintf("executor %s: key %d processed out of order: arrival %d after %d",
				e.cfg.Name, tup.Key, q.arrivalSeq, last))
		}
		e.processedSeq[tup.Key] = q.arrivalSeq
	}

	// User logic with state access through the task's process-local store.
	var outs []stream.Tuple
	if e.cfg.Handler != nil {
		acc := e.store(t.node).Accessor(q.shard, tup.Key)
		outs = e.cfg.Handler(tup, acc)
	} else if e.cfg.Selectivity > 0 {
		// Cost-model-only operator: synthesize outputs at the configured
		// selectivity (integral part guaranteed, no randomness needed since
		// weights scale).
		n := int(e.cfg.Selectivity)
		if n >= 1 {
			for i := 0; i < n; i++ {
				outs = append(outs, stream.Tuple{Key: tup.Key, Weight: tup.Weight, Bytes: e.cfg.OutBytes, Born: tup.Born})
			}
		}
	}
	for i := range outs {
		if outs[i].Bytes == 0 {
			outs[i].Bytes = e.cfg.OutBytes
		}
		if outs[i].Weight == 0 {
			outs[i].Weight = tup.Weight
		}
		if outs[i].Born == 0 {
			outs[i].Born = tup.Born
		}
		// Outputs inherit the stage accumulators like Born, so multi-hop
		// attribution stays end to end (handler outputs start at zero).
		if outs[i].Mark == 0 {
			outs[i].Mark = tup.Mark
		}
		outs[i].Svc += tup.Svc
		outs[i].RPStall += tup.RPStall
		outs[i].MGStall += tup.MGStall
	}

	e.inFlight -= tup.Weight
	e.Stats.ProcessedTuples += int64(tup.Weight)
	e.winProcessed += int64(tup.Weight)
	now := e.env.Clock().Now()
	if tup.Mark != 0 {
		e.anatHop.Observe(now.Sub(tup.Mark), tup.Weight)
	}
	if e.OnLatency != nil {
		e.OnLatency(now.Sub(tup.Born), tup)
	}
	if e.OnProcessed != nil {
		e.OnProcessed(tup)
	}

	e.emit(t, outs)
	e.kick(t)
}

// emit forwards outputs through the emitter daemon on the local node; remote
// tasks first ship their outputs back to the main process (§3.3).
func (e *Executor) emit(t *task, outs []stream.Tuple) {
	if len(outs) == 0 {
		return
	}
	var bytes int
	for _, o := range outs {
		bytes += o.TotalBytes()
	}
	e.Stats.OutBytes += int64(bytes)
	e.winOutBytes += int64(bytes)
	if t.node == e.cfg.LocalNode {
		if e.OnOutput != nil {
			e.OnOutput(outs)
		}
		return
	}
	e.Stats.RemoteTransferBytes += int64(bytes)
	e.env.Send(t.node, e.cfg.LocalNode, bytes, func() {
		if e.OnOutput != nil {
			e.OnOutput(outs)
		}
	})
}

// ReassignShard starts the consistent reassignment protocol moving shard s
// to task dst. onDone (optional) receives the timing report. Returns false
// if the shard is already being reassigned, the destination is not live, or
// the shard is already on dst.
func (e *Executor) ReassignShard(s state.ShardID, dst TaskID, onDone func(ReassignReport)) bool {
	if e.dead || e.pausedBy[s] != nil {
		return false
	}
	if int(dst) < 0 || int(dst) >= len(e.tasks) {
		return false
	}
	dt := e.tasks[dst]
	if dt == nil || dt.removed {
		return false
	}
	src := e.taskFor(s)
	if src.id == dst {
		return false
	}
	r := &reassign{
		shard:   s,
		src:     src.id,
		dst:     dst,
		started: e.env.Clock().Now(),
		onDone:  onDone,
	}
	e.pausedBy[s] = r // pause routing for the shard
	src.pendingReassigns++
	dt.pendingReassigns++
	// Send the labeling tuple along the same path data takes so it lands
	// behind every pending tuple of the shard (FIFO per path).
	e.env.Clock().After(e.cfg.ControlDelay, func() {
		e.dispatch(queued{label: r, tuple: stream.Tuple{Weight: 0}}, src)
	})
	return true
}

// labelDrained runs when the labeling tuple is dequeued at the source task:
// pending tuples are done, state can move.
func (e *Executor) labelDrained(r *reassign) {
	if r.aborted {
		return
	}
	r.drained = e.env.Clock().Now()
	src, dst := e.tasks[r.src], e.tasks[r.dst]
	if src.node == dst.node {
		if !e.cfg.DisableStateSharing {
			// Intra-process state sharing: no migration at all (§3.2).
			e.completeReassign(r, 0)
			return
		}
		// Ablation: per-task private state forces a serialize + copy even
		// within the process (no wire time, but the CPU cost is real).
		bytes := e.store(src.node).ShardBytes(r.shard)
		e.Stats.MigrationBytes += int64(bytes)
		e.env.Clock().After(e.cfg.SerializeOverhead, func() {
			e.completeReassign(r, bytes)
		})
		return
	}
	mig := e.store(src.node).Extract(r.shard)
	e.Stats.MigrationBytes += int64(mig.Bytes)
	// Serialization overhead, then wire transfer, then install. Each step
	// re-checks aborted: a node failure mid-migration loses the payload.
	e.env.Clock().After(e.cfg.SerializeOverhead, func() {
		if r.aborted {
			return
		}
		e.env.Send(src.node, dst.node, mig.Bytes, func() {
			if r.aborted {
				return
			}
			e.store(dst.node).Install(mig)
			e.completeReassign(r, mig.Bytes)
		})
	})
}

// completeReassign updates the routing table, replays buffered tuples to the
// destination, resumes the shard, and reports timings.
func (e *Executor) completeReassign(r *reassign, movedBytes int) {
	if r.aborted {
		return
	}
	now := e.env.Clock().Now()
	src, dst := e.tasks[r.src], e.tasks[r.dst]
	e.routing[r.shard] = r.dst
	delete(e.pausedBy, r.shard)
	for _, q := range r.buffered {
		// Attribute the time spent behind the shard pause to the tuple's
		// migration stage before replaying it.
		if stall := now.Sub(q.bufAt); stall > 0 {
			q.tuple.MGStall += stall
			e.anatMGStall += stall * simtime.Duration(q.tuple.Weight)
		}
		e.dispatch(q, dst)
	}
	src.pendingReassigns--
	dst.pendingReassigns--

	inter := src.node != dst.node
	rep := ReassignReport{
		Shard:         r.shard,
		InterNode:     inter,
		SyncTime:      r.drained.Sub(r.started),
		MigrationTime: now.Sub(r.drained),
		TotalTime:     now.Sub(r.started),
		MovedBytes:    movedBytes,
	}
	e.Stats.Reassignments++
	e.Stats.SyncTimeTotal += rep.SyncTime
	e.Stats.MigrationTimeTotal += rep.MigrationTime
	if inter {
		e.Stats.InterNodeReassigns++
	} else {
		e.Stats.IntraNodeReassigns++
	}
	if r.onDone != nil {
		r.onDone(rep)
	}
	// The destination may have been marked for removal while this
	// reassignment was in flight; bounce the shard to a live task so the
	// removal can complete.
	if dst.removed {
		if alt := e.leastLoadedTask(dst.id); alt != nil {
			dst.removed = false
			e.ReassignShard(r.shard, alt.id, nil)
			dst.removed = true
		}
	}
	e.maybeFinishRemovals()
}

// RemoveCore drains and destroys the task bound to the given core,
// reassigning its shards to the remaining tasks. Removing the last task is
// refused (an executor always keeps one core). Returns false if no live task
// uses the core.
func (e *Executor) RemoveCore(core cluster.CoreID) bool {
	var victim *task
	for _, t := range e.tasks {
		if t != nil && !t.removed && t.core == core {
			victim = t
			break
		}
	}
	if victim == nil || e.live <= 1 {
		return false
	}
	victim.removed = true
	e.live--
	// Move every shard owned by the victim to the least-loaded survivor via
	// the normal consistency protocol. Shards move in ID order: each
	// reassignment shifts the survivors' pending load, so map-iteration
	// order here would make the destination choice nondeterministic.
	var moving []state.ShardID
	for s, id := range e.routing {
		if id != victim.id {
			continue
		}
		if e.pausedBy[s] != nil {
			continue // already moving; completion re-checks removal
		}
		moving = append(moving, s)
	}
	sortShards(moving)
	for _, s := range moving {
		dst := e.leastLoadedTask(victim.id)
		victim.removed = false // taskFor must still resolve the source
		e.ReassignShard(s, dst.id, nil)
		victim.removed = true
	}
	e.maybeFinishRemovals()
	return true
}

// maybeFinishRemovals destroys removed tasks that have fully drained.
func (e *Executor) maybeFinishRemovals() {
	for i, t := range e.tasks {
		if t == nil || !t.removed {
			continue
		}
		if t.pendingReassigns == 0 && len(t.queue) == 0 && !t.busy && !e.ownsShards(t.id) {
			e.tasks[i] = nil
		}
	}
}

func (e *Executor) ownsShards(id TaskID) bool {
	for _, owner := range e.routing {
		if owner == id {
			return true
		}
	}
	return false
}

// Rebalance measures per-shard load over the current window and applies the
// §3.1 policy: refine the shard→task assignment until the imbalance factor
// δ drops below θ, minimizing moves, then start the reassignment protocol
// for each move. Returns the number of reassignments initiated.
func (e *Executor) Rebalance() int {
	ids, index := e.liveTaskIDs()
	if e.dead || len(ids) <= 1 {
		return 0
	}
	// Collect the shard universe: everything with measured load or routing.
	shardSet := make(map[state.ShardID]struct{}, len(e.winShardLoad)+len(e.routing))
	for s := range e.winShardLoad {
		shardSet[s] = struct{}{}
	}
	for s := range e.routing {
		shardSet[s] = struct{}{}
	}
	shards := make([]state.ShardID, 0, len(shardSet))
	for s := range shardSet {
		if e.pausedBy[s] == nil { // skip shards already in flight
			shards = append(shards, s)
		}
	}
	sortShards(shards)
	loads := make([]float64, len(shards))
	assign := make([]int, len(shards))
	for i, s := range shards {
		loads[i] = e.winShardLoad[s]
		assign[i] = index[e.taskFor(s).id]
	}
	moves := balancer.Rebalance(loads, assign, len(ids), e.cfg.Theta, 0)
	started := 0
	for _, m := range moves {
		if e.ReassignShard(shards[m.Shard], ids[m.To], nil) {
			started++
		}
	}
	return started
}

// liveTaskIDs returns the live task IDs in order plus a reverse index.
func (e *Executor) liveTaskIDs() ([]TaskID, map[TaskID]int) {
	var ids []TaskID
	index := make(map[TaskID]int)
	for _, t := range e.tasks {
		if t != nil && !t.removed {
			index[t.id] = len(ids)
			ids = append(ids, t.id)
		}
	}
	return ids, index
}

func sortShards(s []state.ShardID) {
	for a := 1; a < len(s); a++ {
		for b := a; b > 0 && s[b] < s[b-1]; b-- {
			s[b], s[b-1] = s[b-1], s[b]
		}
	}
}

// Window is one measurement window of executor metrics, the scheduler's
// model inputs (§4.1).
type Window struct {
	Span          simtime.Duration
	Lambda        float64 // arrivals per second
	Mu            float64 // per-core service rate (processed per busy-second)
	DataIntensity float64 // (in+out bytes)/s per core
	Processed     int64
}

// TakeWindow returns measurements since the previous call and resets the
// window counters.
func (e *Executor) TakeWindow() Window {
	now := e.env.Clock().Now()
	span := now.Sub(e.winStart)
	w := Window{Span: span, Processed: e.winProcessed}
	if sec := span.Seconds(); sec > 0 {
		w.Lambda = float64(e.winArrived) / sec
		cores := e.live
		if cores < 1 {
			cores = 1
		}
		w.DataIntensity = float64(e.winInBytes+e.winOutBytes) / sec / float64(cores)
	}
	if busy := e.winBusy.Seconds(); busy > 0 {
		w.Mu = float64(e.winProcessed) / busy
	}
	e.winArrived, e.winProcessed = 0, 0
	e.winBusy = 0
	e.winInBytes, e.winOutBytes = 0, 0
	e.winShardLoad = make(map[state.ShardID]float64)
	e.winStart = now
	return w
}

// Anatomy is one latency-anatomy window of an executor: the hop-latency
// histogram (admission stamp to processed) and the weighted stage totals the
// engine folds into per-operator stage sets at the metrics window tick.
type Anatomy struct {
	Hop     *metrics.Histogram // source-to-processed hop latency this window
	Svc     simtime.Duration   // Σ service duration × weight
	MGStall simtime.Duration   // Σ shard-pause stall × weight
}

// TakeAnatomy returns the latency-anatomy measurements since the previous
// call and resets them. Independent of TakeWindow: anatomy folds on the
// metrics window tick, the scheduler window on the control cadence.
func (e *Executor) TakeAnatomy() Anatomy {
	a := Anatomy{Hop: e.anatHop, Svc: e.anatSvc, MGStall: e.anatMGStall}
	e.anatHop = metrics.NewHistogram()
	e.anatSvc, e.anatMGStall = 0, 0
	return a
}

// ShardLoadSnapshot returns the current window's per-shard load (for tests).
func (e *Executor) ShardLoadSnapshot() map[state.ShardID]float64 {
	out := make(map[state.ShardID]float64, len(e.winShardLoad))
	for k, v := range e.winShardLoad {
		out[k] = v
	}
	return out
}

// QueuedWeight returns the total tuple weight waiting in task queues
// (excluding paused buffers), a drain signal for the RC baseline.
func (e *Executor) QueuedWeight() int {
	n := 0
	for _, t := range e.tasks {
		if t != nil {
			n += t.queuedWeight
			if t.busy {
				n++ // count the batch in service as pending work
			}
		}
	}
	return n
}

// Idle reports whether the executor has no queued, buffered, or in-service
// work and no in-flight reassignments.
func (e *Executor) Idle() bool {
	if len(e.pausedBy) > 0 {
		return false
	}
	for _, t := range e.tasks {
		if t != nil && (t.busy || len(t.queue) > 0) {
			return false
		}
	}
	return e.inFlight == 0
}

// ReleaseShard removes shard s from this executor and hands back its state;
// used by the resource-centric baseline's operator-level repartitioning
// after a global drain. It panics if the executor still has pending work for
// the shard (the RC protocol must drain first — that is its whole cost).
func (e *Executor) ReleaseShard(s state.ShardID) *state.Migration {
	if e.pausedBy[s] != nil {
		panic("executor: ReleaseShard during reassignment")
	}
	owner := e.taskFor(s)
	m := e.store(owner.node).Extract(s)
	delete(e.routing, s)
	return m
}

// AdoptShard installs a migrated shard into this executor, mapping it to the
// least-loaded task. A dead executor discards the migration (the shard was
// in flight when the destination retired).
func (e *Executor) AdoptShard(m *state.Migration) {
	if e.dead {
		return
	}
	t := e.leastLoadedTask(-1)
	if t == nil {
		panic("executor: AdoptShard with no live tasks")
	}
	e.store(t.node).Install(m)
	e.routing[m.Shard] = t.id
}

// HasResidentShard reports whether any of the executor's process stores
// holds resident state for shard s (churn bookkeeping: distinguishes a
// delivered migration from one still on the wire).
func (e *Executor) HasResidentShard(s state.ShardID) bool {
	for _, st := range e.stores {
		if st.HasShard(s) {
			return true
		}
	}
	return false
}

// AdoptShardIfAbsent installs a migrated shard unless the executor is dead
// or any of its process stores already holds resident state for it — the
// deterministic tie-break for churn-era migrations whose destination was
// re-resolved by a routing fallback (first arrival wins, later payloads are
// discarded).
func (e *Executor) AdoptShardIfAbsent(m *state.Migration) {
	if e.dead {
		return
	}
	for _, st := range e.stores {
		if st.HasShard(m.Shard) {
			return
		}
	}
	e.AdoptShard(m)
}

// StateStore exposes the process store on a node (tests and RC baseline).
func (e *Executor) StateStore(n cluster.NodeID) *state.Store { return e.store(n) }

// TaskOnNode returns any live task hosted on the given node.
func (e *Executor) TaskOnNode(n cluster.NodeID) (TaskID, bool) {
	for _, t := range e.tasks {
		if t != nil && !t.removed && t.node == n {
			return t.id, true
		}
	}
	return 0, false
}

// AnyShardNotOn returns the lowest-ID shard whose owner is not the given
// task and is not currently being reassigned (lowest rather than map order:
// the chosen shard's queue depth decides the measured protocol timings, so
// the pick must be deterministic). Lazily routes shard 0 if the executor has
// never seen a tuple, so the protocol experiments always have a subject.
func (e *Executor) AnyShardNotOn(dst TaskID) (state.ShardID, bool) {
	if len(e.routing) == 0 {
		e.taskFor(0)
	}
	var best state.ShardID
	found := false
	for s, owner := range e.routing {
		if owner != dst && e.pausedBy[s] == nil {
			if t := e.tasks[owner]; t != nil && !t.removed {
				if !found || s < best {
					best, found = s, true
				}
			}
		}
	}
	return best, found
}

// SetStateBytesPerShard overrides the nominal shard state size for all of
// the executor's process stores and future shards (state-size sweeps).
func (e *Executor) SetStateBytesPerShard(bytes int) {
	e.cfg.StateBytesPerShard = bytes
	for _, s := range e.stores {
		s.DefaultShardBytes = bytes
	}
}
