package executor

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/state"
	"repro/internal/stream"
)

// testEnv adapts a clock + cluster into the executor's Env.
type testEnv struct {
	clock *simtime.Clock
	cl    *cluster.Cluster
}

func (e *testEnv) Clock() *simtime.Clock                  { return e.clock }
func (e *testEnv) NodeOf(c cluster.CoreID) cluster.NodeID { return e.cl.NodeOf(c) }
func (e *testEnv) Send(from, to cluster.NodeID, bytes int, done func()) {
	e.cl.Send(from, to, bytes, done)
}

func newEnv(nodes int) *testEnv {
	clock := simtime.NewClock()
	cfg := cluster.Default(nodes)
	cfg.CoresPerNode = 4
	return &testEnv{clock: clock, cl: cluster.New(clock, cfg)}
}

func baseConfig() Config {
	return Config{
		Name:               "test",
		LocalNode:          0,
		ShardOf:            func(k stream.Key) state.ShardID { return state.ShardID(k.Shard(16)) },
		Cost:               stream.FixedCost(simtime.Millisecond),
		StateBytesPerShard: 32 << 10,
		ControlDelay:       simtime.Millisecond,
		SerializeOverhead:  3500 * simtime.Microsecond,
		AssertOrder:        true,
	}
}

func tuple(key stream.Key, w int, born simtime.Time) stream.Tuple {
	return stream.Tuple{Key: key, Weight: w, Bytes: 128, Born: born}
}

func TestProcessSingleTuple(t *testing.T) {
	env := newEnv(1)
	ex := New(env, baseConfig(), 0)
	var latency simtime.Duration
	ex.OnLatency = func(d simtime.Duration, _ stream.Tuple) { latency = d }
	env.clock.At(0, func() { ex.Receive(tuple(1, 1, 0)) })
	env.clock.Run()
	if ex.Stats.ProcessedTuples != 1 {
		t.Fatalf("processed = %d", ex.Stats.ProcessedTuples)
	}
	if latency != simtime.Millisecond {
		t.Fatalf("latency = %v, want 1ms (pure service time)", latency)
	}
	if !ex.Idle() {
		t.Fatal("executor not idle after run")
	}
}

func TestQueueingLatency(t *testing.T) {
	env := newEnv(1)
	ex := New(env, baseConfig(), 0)
	var total simtime.Duration
	ex.OnLatency = func(d simtime.Duration, _ stream.Tuple) { total += d }
	env.clock.At(0, func() {
		for i := 0; i < 3; i++ {
			ex.Receive(tuple(1, 1, 0)) // same key, same shard, same task
		}
	})
	env.clock.Run()
	// Sequential service: latencies 1, 2, 3 ms.
	if total != 6*simtime.Millisecond {
		t.Fatalf("total latency = %v, want 6ms", total)
	}
}

func TestMultiCoreParallelism(t *testing.T) {
	env := newEnv(1)
	ex := New(env, baseConfig(), 0)
	ex.AddCore(1)
	// Two keys on different shards can run in parallel on two tasks.
	var k1, k2 stream.Key
	k1 = 0
	for k := stream.Key(1); k < 1000; k++ {
		if k.Shard(16) != k1.Shard(16) {
			k2 = k
			break
		}
	}
	done := simtime.Time(0)
	env.clock.At(0, func() {
		ex.Receive(tuple(k1, 1, 0))
		ex.Receive(tuple(k2, 1, 0))
	})
	env.clock.Run()
	done = env.clock.Now()
	if done != simtime.Time(simtime.Millisecond) {
		t.Fatalf("two tuples on two cores took %v, want 1ms", done)
	}
}

func TestBackpressureDropsBeyondCap(t *testing.T) {
	env := newEnv(1)
	cfg := baseConfig()
	cfg.MaxInFlight = 2
	ex := New(env, cfg, 0)
	env.clock.At(0, func() {
		if !ex.Receive(tuple(1, 1, 0)) || !ex.Receive(tuple(1, 1, 0)) {
			t.Error("capacity rejected too early")
		}
		if ex.Receive(tuple(1, 1, 0)) {
			t.Error("over-capacity accepted")
		}
		if ex.HasCapacity(1) {
			t.Error("HasCapacity wrong at cap")
		}
	})
	env.clock.Run()
	if ex.Stats.DroppedTuples != 1 {
		t.Fatalf("dropped = %d", ex.Stats.DroppedTuples)
	}
	if !ex.HasCapacity(1) {
		t.Fatal("capacity not released after processing")
	}
}

func TestStatefulHandler(t *testing.T) {
	env := newEnv(1)
	cfg := baseConfig()
	cfg.Handler = func(tp stream.Tuple, acc stream.StateAccessor) []stream.Tuple {
		n, _ := acc.Get().(int)
		acc.Set(n + tp.Weight)
		return nil
	}
	ex := New(env, cfg, 0)
	env.clock.At(0, func() {
		for i := 0; i < 5; i++ {
			ex.Receive(tuple(42, 2, 0))
		}
	})
	env.clock.Run()
	sh := cfg.ShardOf(42)
	if got := ex.StateStore(0).Accessor(sh, 42).Get(); got != 10 {
		t.Fatalf("state = %v, want 10", got)
	}
}

func TestIntraNodeReassignNoMigration(t *testing.T) {
	env := newEnv(1)
	ex := New(env, baseConfig(), 0)
	second := ex.AddCore(1) // same node
	key := stream.Key(7)
	sh := state.ShardID(key.Shard(16))
	var rep ReassignReport
	gotReport := false
	env.clock.At(0, func() {
		ex.Receive(tuple(key, 1, 0))
		ex.ReassignShard(sh, second, func(r ReassignReport) { rep = r; gotReport = true })
		// Tuples arriving during the pause must buffer and process after.
		ex.Receive(tuple(key, 1, 0))
	})
	env.clock.Run()
	if !gotReport {
		t.Fatal("reassignment never completed")
	}
	if rep.InterNode {
		t.Fatal("same-node reassign flagged inter-node")
	}
	if rep.MovedBytes != 0 || rep.MigrationTime != 0 {
		t.Fatalf("intra-node reassign migrated state: %+v", rep)
	}
	if ex.Stats.ProcessedTuples != 2 {
		t.Fatalf("processed = %d, want 2", ex.Stats.ProcessedTuples)
	}
	if ex.Stats.MigrationBytes != 0 {
		t.Fatal("migration bytes recorded for intra-node move")
	}
}

func TestInterNodeReassignMigratesState(t *testing.T) {
	env := newEnv(2)
	cfg := baseConfig()
	cfg.Handler = func(tp stream.Tuple, acc stream.StateAccessor) []stream.Tuple {
		n, _ := acc.Get().(int)
		acc.Set(n + 1)
		return nil
	}
	ex := New(env, cfg, 0)
	remote := ex.AddCore(4) // node 1
	key := stream.Key(9)
	sh := cfg.ShardOf(key)
	var rep ReassignReport
	env.clock.At(0, func() {
		ex.Receive(tuple(key, 1, 0)) // builds state on node 0
		ex.ReassignShard(sh, remote, func(r ReassignReport) { rep = r })
		ex.Receive(tuple(key, 1, 0)) // buffered, replayed on node 1
	})
	env.clock.Run()
	if !rep.InterNode {
		t.Fatal("cross-node reassign not flagged")
	}
	if rep.MovedBytes != 32<<10 {
		t.Fatalf("moved bytes = %d", rep.MovedBytes)
	}
	if rep.MigrationTime < cfg.SerializeOverhead {
		t.Fatalf("migration time %v below serialization overhead", rep.MigrationTime)
	}
	// State followed the shard: counter continued at 2 on node 1's store.
	if got := ex.StateStore(1).Accessor(sh, key).Get(); got != 2 {
		t.Fatalf("state after migration = %v, want 2", got)
	}
	if ex.Stats.InterNodeReassigns != 1 {
		t.Fatal("stats missed the inter-node reassign")
	}
}

func TestReassignSyncWaitsForPendingQueue(t *testing.T) {
	env := newEnv(1)
	ex := New(env, baseConfig(), 0)
	second := ex.AddCore(1)
	key := stream.Key(7)
	sh := state.ShardID(key.Shard(16))
	var rep ReassignReport
	env.clock.At(0, func() {
		// 5 pending tuples on the source task; the labeling tuple must wait
		// behind all of them (~5ms) plus the 1ms control delay.
		for i := 0; i < 5; i++ {
			ex.Receive(tuple(key, 1, 0))
		}
		ex.ReassignShard(sh, second, func(r ReassignReport) { rep = r })
	})
	env.clock.Run()
	if rep.SyncTime < 5*simtime.Millisecond {
		t.Fatalf("sync time %v did not wait for pending tuples", rep.SyncTime)
	}
}

func TestReassignRejectsInvalid(t *testing.T) {
	env := newEnv(1)
	ex := New(env, baseConfig(), 0)
	second := ex.AddCore(1)
	sh := state.ShardID(stream.Key(1).Shard(16))
	env.clock.At(0, func() {
		if ex.ReassignShard(sh, TaskID(99), nil) {
			t.Error("reassign to missing task accepted")
		}
		ex.Receive(tuple(1, 1, 0))
		if !ex.ReassignShard(sh, second, nil) {
			t.Error("valid reassign rejected")
		}
		if ex.ReassignShard(sh, second, nil) {
			t.Error("double reassign accepted")
		}
	})
	env.clock.Run()
}

func TestPerKeyOrderUnderRandomReassignments(t *testing.T) {
	// Property-style stress: random tuples and random shard reassignments;
	// AssertOrder panics inside the executor on any violation.
	env := newEnv(2)
	cfg := baseConfig()
	cfg.Cost = stream.FixedCost(100 * simtime.Microsecond)
	ex := New(env, cfg, 0)
	cores := []cluster.CoreID{1, 4, 5}
	for _, c := range cores {
		ex.AddCore(c)
	}
	rng := simtime.NewRand(99)
	for i := 0; i < 2000; i++ {
		at := simtime.Time(rng.Intn(int(2 * simtime.Second)))
		key := stream.Key(rng.Intn(50))
		env.clock.At(at, func() { ex.Receive(tuple(key, 1, at)) })
	}
	for i := 0; i < 100; i++ {
		at := simtime.Time(rng.Intn(int(2 * simtime.Second)))
		sh := state.ShardID(rng.Intn(16))
		dst := TaskID(rng.Intn(4))
		env.clock.At(at, func() { ex.ReassignShard(sh, dst, nil) })
	}
	env.clock.Run()
	if ex.Stats.ProcessedTuples != 2000 {
		t.Fatalf("processed = %d, want 2000 (no loss)", ex.Stats.ProcessedTuples)
	}
	if !ex.Idle() {
		t.Fatal("not idle at end")
	}
}

func TestRemoveCoreDrainsAndPreservesTuples(t *testing.T) {
	env := newEnv(2)
	cfg := baseConfig()
	cfg.Cost = stream.FixedCost(100 * simtime.Microsecond)
	ex := New(env, cfg, 0)
	remote := ex.AddCore(4)
	_ = remote
	env.clock.At(0, func() {
		for i := 0; i < 200; i++ {
			ex.Receive(tuple(stream.Key(i), 1, 0))
		}
	})
	env.clock.At(simtime.Time(5*simtime.Millisecond), func() {
		if !ex.RemoveCore(4) {
			t.Error("RemoveCore failed")
		}
	})
	env.clock.Run()
	if ex.Cores() != 1 {
		t.Fatalf("cores = %d, want 1", ex.Cores())
	}
	if ex.Stats.ProcessedTuples != 200 {
		t.Fatalf("processed = %d, want 200", ex.Stats.ProcessedTuples)
	}
	// All shards must now route to the surviving task.
	for s, id := range ex.routing {
		tk := ex.tasks[id]
		if tk == nil || tk.removed {
			t.Fatalf("shard %d routed to dead task %d", s, id)
		}
	}
}

func TestRemoveLastCoreRefused(t *testing.T) {
	env := newEnv(1)
	ex := New(env, baseConfig(), 0)
	if ex.RemoveCore(0) {
		t.Fatal("removed the only core")
	}
	if ex.Cores() != 1 {
		t.Fatal("core count corrupted")
	}
}

func TestRebalanceSpreadsHotShards(t *testing.T) {
	env := newEnv(1)
	cfg := baseConfig()
	cfg.Cost = stream.FixedCost(100 * simtime.Microsecond)
	ex := New(env, cfg, 0)
	ex.AddCore(1)
	ex.AddCore(2)
	ex.AddCore(3)
	// Load 16 shards' worth of keys, all initially landing wherever the lazy
	// router put them, then rebalance and verify the routing spreads.
	env.clock.At(0, func() {
		for i := 0; i < 1600; i++ {
			ex.Receive(tuple(stream.Key(i), 1, 0))
		}
	})
	env.clock.At(simtime.Time(simtime.Second), func() {
		if n := ex.Rebalance(); n == 0 {
			// May legitimately be balanced already, but with lazy least-queued
			// routing at t=0 all tuples land before any processing: the first
			// task takes shard 0 etc. Spread check below decides.
			t.Log("rebalance started no moves")
		}
	})
	env.clock.Run()
	owners := map[TaskID]bool{}
	for _, id := range ex.routing {
		owners[id] = true
	}
	if len(owners) < 2 {
		t.Fatalf("shards concentrated on %d task(s)", len(owners))
	}
	if ex.Stats.ProcessedTuples != 1600 {
		t.Fatalf("processed = %d", ex.Stats.ProcessedTuples)
	}
}

func TestTakeWindowMeasurements(t *testing.T) {
	env := newEnv(1)
	ex := New(env, baseConfig(), 0)
	env.clock.At(0, func() {
		for i := 0; i < 100; i++ {
			ex.Receive(tuple(stream.Key(i), 1, 0))
		}
	})
	env.clock.RunUntil(simtime.Time(simtime.Second))
	w := ex.TakeWindow()
	if w.Lambda != 100 {
		t.Fatalf("λ = %v, want 100", w.Lambda)
	}
	// Service cost 1ms -> μ = 1000 tuples per busy second.
	if w.Mu < 900 || w.Mu > 1100 {
		t.Fatalf("μ = %v, want ~1000", w.Mu)
	}
	if w.DataIntensity <= 0 {
		t.Fatal("data intensity not measured")
	}
	// Second window is empty.
	env.clock.RunUntil(simtime.Time(2 * simtime.Second))
	w2 := ex.TakeWindow()
	if w2.Lambda != 0 || w2.Processed != 0 {
		t.Fatalf("window not reset: %+v", w2)
	}
}

func TestReleaseAdoptShard(t *testing.T) {
	env := newEnv(2)
	cfg := baseConfig()
	cfg.Handler = func(tp stream.Tuple, acc stream.StateAccessor) []stream.Tuple {
		n, _ := acc.Get().(int)
		acc.Set(n + 1)
		return nil
	}
	a := New(env, cfg, 0)
	cfgB := cfg
	cfgB.LocalNode = 1
	b := New(env, cfgB, 4)
	key := stream.Key(3)
	sh := cfg.ShardOf(key)
	env.clock.At(0, func() { a.Receive(tuple(key, 1, 0)) })
	env.clock.Run()
	m := a.ReleaseShard(sh)
	b.AdoptShard(m)
	if got := b.StateStore(1).Accessor(sh, key).Get(); got != 1 {
		t.Fatalf("adopted state = %v", got)
	}
	env.clock.At(env.clock.Now()+1, func() { b.Receive(tuple(key, 1, env.clock.Now())) })
	env.clock.Run()
	if got := b.StateStore(1).Accessor(sh, key).Get(); got != 2 {
		t.Fatalf("state after adoption = %v, want 2", got)
	}
}

func TestSelectivityEmitsDownstream(t *testing.T) {
	env := newEnv(1)
	cfg := baseConfig()
	cfg.Selectivity = 1
	cfg.OutBytes = 160
	ex := New(env, cfg, 0)
	var emitted []stream.Tuple
	ex.OnOutput = func(ts []stream.Tuple) { emitted = append(emitted, ts...) }
	env.clock.At(0, func() { ex.Receive(tuple(5, 2, 0)) })
	env.clock.Run()
	if len(emitted) != 1 {
		t.Fatalf("emitted %d tuples", len(emitted))
	}
	if emitted[0].Bytes != 160 || emitted[0].Weight != 2 || emitted[0].Key != 5 {
		t.Fatalf("emitted tuple = %+v", emitted[0])
	}
	if ex.Stats.OutBytes != 320 {
		t.Fatalf("OutBytes = %d", ex.Stats.OutBytes)
	}
}

func TestRemoteTaskRoundTripCountsTransfer(t *testing.T) {
	env := newEnv(2)
	cfg := baseConfig()
	cfg.Selectivity = 1
	cfg.OutBytes = 128
	ex := New(env, cfg, 0)
	remote := ex.AddCore(4)
	// Force the shard onto the remote task first.
	key := stream.Key(11)
	sh := cfg.ShardOf(key)
	var emitted int
	ex.OnOutput = func(ts []stream.Tuple) { emitted += len(ts) }
	env.clock.At(0, func() {
		ex.ReassignShard(sh, remote, nil)
	})
	env.clock.At(simtime.Time(100*simtime.Millisecond), func() {
		ex.Receive(tuple(key, 1, env.clock.Now()))
	})
	env.clock.Run()
	if emitted != 1 {
		t.Fatalf("emitted = %d", emitted)
	}
	// Input went out (128) and output came back (128). The labeling tuple of
	// the initial reassignment went to the *local* source task, so it crossed
	// no network.
	if ex.Stats.RemoteTransferBytes != 128+128 {
		t.Fatalf("remote transfer bytes = %d", ex.Stats.RemoteTransferBytes)
	}
}
