package executor

import (
	"repro/internal/cluster"
	"repro/internal/state"
)

// This file is the executor's cluster-churn surface: what happens to one
// elastic executor when a node leaves the cluster. A graceful drain reuses
// the ordinary consistency protocol (the engine revokes the dying node's
// cores with RemoveCore and the shards migrate off with their state); the
// operations here cover the parts the protocol cannot express — an
// instantaneous node *failure* (FailNode), moving the main process
// (Rehome), and retiring the executor altogether (Kill).

// FailReport summarizes the damage a node failure did to one executor.
type FailReport struct {
	// LostTasks counts tasks destroyed with the node.
	LostTasks int
	// DroppedWeight is the queued/buffered tuple weight destroyed. Weight
	// still in flight toward the dead tasks is dropped (and reported via
	// OnDropped) as it arrives, not counted here.
	DroppedWeight int
	// LostStateBytes is the resident state destroyed with the node's store.
	LostStateBytes int64
	// Rehomed reports that the main process (receiver/emitter) was on the
	// failed node and moved to a surviving task's node.
	Rehomed bool
	// Dead reports that the executor lost its last task; the caller must
	// retire it from the topology.
	Dead bool
}

// FailNode destroys, without any protocol, everything the executor had on
// node n: tasks die with their queues, the node's state store is lost,
// in-flight shard reassignments touching the node abort, and orphaned
// shards are re-routed to surviving tasks with fresh (empty) state. If the
// executor's main process was on n it rehomes to the lowest-ID surviving
// task's node — the buffered tuples of paused shards die with the old main
// process. Deterministic: victims, aborts and orphans are processed in ID
// order.
func (e *Executor) FailNode(n cluster.NodeID) FailReport {
	var rep FailReport
	localFailed := e.cfg.LocalNode == n

	// 1. Tasks on n die instantly, queues and all.
	for _, t := range e.tasks {
		if t == nil || t.failed || t.node != n {
			continue
		}
		if !t.removed {
			e.live--
		}
		t.removed, t.failed = true, true
		rep.LostTasks++
		for _, q := range t.queue {
			if q.label != nil {
				e.abortReassign(q.label, localFailed)
			} else {
				rep.DroppedWeight += q.tuple.Weight
				e.dropWeight(q.tuple.Weight)
			}
		}
		if t.busy {
			// The batch in service is dropped when its completion event
			// fires (finish checks t.failed); count its weight now.
			rep.DroppedWeight += t.busyWeight
		}
		t.queue, t.queuedWeight = nil, 0
	}

	// 2. Abort in-flight reassignments that lost an endpoint — or all of
	// them when the main process died, because the paused-shard buffers
	// lived in its memory.
	var stuck []state.ShardID
	for s, r := range e.pausedBy {
		if localFailed || e.taskGone(r.src) || e.taskGone(r.dst) {
			stuck = append(stuck, s)
		}
	}
	sortShards(stuck)
	for _, s := range stuck {
		e.abortReassign(e.pausedBy[s], localFailed)
	}

	// 3. Shards owned by dead tasks re-route to survivors; their state died
	// with the node's store. The loss is billed at nominal shard size (like
	// the migration cost model: a shard that never materialized state still
	// has its configured footprint).
	var orphans []state.ShardID
	for s, id := range e.routing {
		if e.taskGone(id) {
			orphans = append(orphans, s)
		}
	}
	sortShards(orphans)
	st := e.stores[n]
	for _, s := range orphans {
		if st != nil {
			rep.LostStateBytes += int64(st.ShardBytes(s))
		}
		if alt := e.leastLoadedTask(-1); alt != nil {
			e.routing[s] = alt.id
		} else {
			delete(e.routing, s)
		}
	}

	// 4. The node's process store is gone.
	delete(e.stores, n)

	// 5. Rehome or declare the executor dead.
	if e.live == 0 {
		rep.Dead = true
		e.dead = true
	} else if localFailed {
		for _, t := range e.tasks {
			if t != nil && !t.removed {
				e.Rehome(t.node)
				rep.Rehomed = true
				break
			}
		}
	}
	return rep
}

// taskGone reports whether the task id is failed (or destroyed).
func (e *Executor) taskGone(id TaskID) bool {
	t := e.tasks[id]
	return t == nil || t.failed
}

// abortReassign cancels an in-flight shard reassignment after a failure.
// Buffered tuples are re-dispatched to the shard's surviving owner, or
// dropped when the main process holding them died (dropBuffered). Idempotent.
func (e *Executor) abortReassign(r *reassign, dropBuffered bool) {
	if r.aborted {
		return
	}
	r.aborted = true
	delete(e.pausedBy, r.shard)
	if t := e.tasks[r.src]; t != nil {
		t.pendingReassigns--
	}
	if t := e.tasks[r.dst]; t != nil {
		t.pendingReassigns--
	}
	// If the shard's routed owner died, point it at a survivor (state is
	// lost either way; the orphan pass also covers shards not re-routed
	// here).
	if id, ok := e.routing[r.shard]; ok && e.taskGone(id) {
		if alt := e.leastLoadedTask(-1); alt != nil {
			e.routing[r.shard] = alt.id
		}
	}
	buffered := r.buffered
	r.buffered = nil
	for _, q := range buffered {
		if dropBuffered {
			e.dropWeight(q.tuple.Weight)
			continue
		}
		e.dispatch(q, e.taskFor(r.shard))
	}
	e.maybeFinishRemovals()
}

// dropWeight accounts for tuple weight destroyed inside the executor and
// notifies the engine so its backpressure ledger stays consistent.
func (e *Executor) dropWeight(w int) {
	if w == 0 {
		return
	}
	e.inFlight -= w
	e.Stats.DroppedTuples += int64(w)
	if e.OnDropped != nil {
		e.OnDropped(w)
	}
}

// Rehome moves the executor's main process (receiver and emitter daemons) to
// node n. The caller guarantees the executor has — or is about to get — a
// task there; tuples already in flight to the old main process are delivered
// to the new one (the simulated network routes by executor, not address).
func (e *Executor) Rehome(n cluster.NodeID) {
	e.cfg.LocalNode = n
	e.store(n)
}

// Kill retires the executor: new arrivals are dropped (reported through
// OnDropped) while already-queued work drains — the graceful-shutdown
// contract. The caller is responsible for migrating or writing off the
// executor's state and for removing it from operator routing.
func (e *Executor) Kill() { e.dead = true }

// Dead reports whether the executor was retired by Kill or by losing its
// last task to a node failure.
func (e *Executor) Dead() bool { return e.dead }

// ResidentStateBytes sums the resident shard state across all of the
// executor's process stores (the migration bill for retiring it, or the
// loss bill for failing it).
func (e *Executor) ResidentStateBytes() int64 {
	var b int64
	for _, st := range e.stores {
		b += st.ResidentBytes()
	}
	return b
}
