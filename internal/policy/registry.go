package policy

import (
	"fmt"
	"sort"
	"sync"
)

// registry maps policy names to constructors. Each lookup builds a fresh
// instance: policies carry per-run state (cooldowns, host bindings) and must
// never be shared between engines.
var (
	regMu    sync.RWMutex
	registry = map[string]func() Policy{
		"static":      newStatic,
		"rc":          newRC,
		"naive-ec":    newNaiveEC,
		"elasticutor": newElasticutor,
	}
)

// aliases accepts the spellings the CLI and older configs use.
var aliases = map[string]string{
	"ec":               "elasticutor",
	"naivec":           "naive-ec",
	"naive":            "naive-ec",
	"resource-centric": "rc",
}

// Register adds a policy constructor under name, making it selectable
// wherever built-ins are (facade Options.Policy, CLI -paradigm). It panics
// on a duplicate name: silently shadowing a paradigm would corrupt results.
func Register(name string, ctor func() Policy) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || ctor == nil {
		panic("policy: Register needs a name and a constructor")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: %q already registered", name))
	}
	if _, dup := aliases[name]; dup {
		panic(fmt.Sprintf("policy: %q is a reserved alias", name))
	}
	registry[name] = ctor
}

// ByName returns a fresh instance of the named policy. Aliases ("ec",
// "naivec") resolve to their canonical built-ins.
func ByName(name string) (Policy, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if canon, ok := aliases[name]; ok {
		name = canon
	}
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, namesLocked())
	}
	return ctor(), nil
}

// Names lists the registered canonical policy names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ForParadigm returns a fresh instance of the built-in policy implementing
// the paradigm.
func ForParadigm(p Paradigm) Policy {
	pol, err := ByName(p.String())
	if err != nil {
		panic(fmt.Sprintf("policy: no built-in for %v", p))
	}
	return pol
}

// ParadigmOf maps a policy name back to its paradigm, when the name (or an
// alias of it) is one of the four built-ins.
func ParadigmOf(name string) (Paradigm, bool) {
	if canon, ok := aliases[name]; ok {
		name = canon
	}
	for _, p := range []Paradigm{Static, ResourceCentric, NaiveEC, Elasticutor} {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}
