package policy

import "repro/internal/stream"

// staticPolicy is the default-Storm baseline (§2.2): enough single-core
// executors per operator to use every CPU core, static operator-level key
// partitioning, and no elasticity whatsoever.
type staticPolicy struct {
	Base
}

func newStatic() Policy { return &staticPolicy{} }

func (*staticPolicy) Name() string { return "static" }

// Place spreads the free cores evenly across operators (§5: "we create
// enough executors for the operators in the static approach to fully utilize
// all CPU cores"), organizing state by operator-level shard.
func (*staticPolicy) Place(k Knobs, op *stream.Operator, opIdx, operators, freeCores int) Placement {
	return Placement{Executors: evenSplit(freeCores, operators, opIdx), OperatorSharded: true}
}

// evenSplit gives operator opIdx its share of an even core split, the
// baseline provisioning static and rc must agree on (§5 fair comparison).
func evenSplit(freeCores, operators, opIdx int) int {
	n := freeCores / operators
	if opIdx < freeCores%operators {
		n++
	}
	return n
}
