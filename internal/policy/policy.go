// Package policy holds the paradigm control planes of the Elasticutor
// reproduction. The engine (internal/engine) is pure mechanism — cores,
// executors, routing tables, the repartition protocol, measurement — and
// delegates every paradigm decision to a Policy:
//
//   - how executors are initially provisioned per operator (Place);
//   - how a tuple's key resolves to an executor (Route);
//   - which control loops run, and at what cadence (Install);
//   - what each control tick decides (the policy's own methods, driven
//     through the Host mechanism surface).
//
// The four paper paradigms — static, rc, naive-ec, elasticutor — are
// registered built-ins; third-party policies register through Register and
// become selectable by name everywhere a paradigm is (facade Options, the
// CLI flags).
package policy

import (
	"strconv"
	"time"

	"repro/internal/balancer"
	"repro/internal/qmodel"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/stream"
)

// Paradigm enumerates the paper's four execution paradigms. It survives the
// policy refactor as the compact, comparable identifier used in configs and
// reports; each value maps to a registered built-in Policy of the same name.
type Paradigm int

// The four approaches compared in the paper's evaluation.
const (
	Static Paradigm = iota
	ResourceCentric
	NaiveEC
	Elasticutor
)

// String returns the paper's name for the paradigm (and the registry name of
// the corresponding built-in policy).
func (p Paradigm) String() string {
	switch p {
	case Static:
		return "static"
	case ResourceCentric:
		return "rc"
	case NaiveEC:
		return "naive-ec"
	case Elasticutor:
		return "elasticutor"
	}
	return "paradigm(" + strconv.Itoa(int(p)) + ")"
}

// Knobs is the paradigm-relevant slice of the engine configuration, handed
// to policies at placement and installation time.
type Knobs struct {
	Y      int                       // executors per non-source operator
	YPerOp map[stream.OperatorID]int // per-operator overrides of Y
	Z      int                       // shards per elastic executor

	OpShards int // operator-level shards (baseline state/routing granularity)

	Theta float64          // imbalance threshold θ
	Phi   float64          // data-intensity threshold φ̃
	Tmax  simtime.Duration // scheduler latency target

	SchedulePeriod  simtime.Duration // control-loop cadence (1 s)
	RebalancePeriod simtime.Duration // intra-executor rebalance cadence

	FixedCores int // non-zero pins executor cores and disables scheduling
}

// Placement is a policy's provisioning decision for one non-source operator.
type Placement struct {
	// Executors is the initial executor count (the engine clamps to ≥ 1 and
	// may stop early if the cluster runs out of cores).
	Executors int
	// OperatorSharded organizes executor state by operator-level shard (the
	// baselines' layout, movable by global repartitioning) instead of the
	// elastic executors' internal shards.
	OperatorSharded bool
	// DynamicRouting gives the operator a mutable operator-shard → executor
	// routing table plus per-shard arrival measurement (the RC baseline).
	DynamicRouting bool
}

// Operator is the policy-facing view of one non-source operator's runtime.
// Handles are stable for the lifetime of an engine and usable as map keys.
type Operator interface {
	// Meta returns the topology operator.
	Meta() *stream.Operator
	// Executors returns the current executor count.
	Executors() int
	// Routing returns the live operator-shard routing table (nil unless the
	// placement requested DynamicRouting). The engine owns mutations; the
	// repartition protocol commits decided moves.
	Routing() []int
	// ShardLoads returns arrivals per operator shard in the current
	// measurement window (nil unless DynamicRouting).
	ShardLoads() []float64
	// ResetShardLoads starts a fresh measurement window.
	ResetShardLoads()
	// Repartitioning reports whether a global repartition is in flight.
	Repartitioning() bool
}

// Host is the mechanism surface the engine exposes to an installed policy.
// Everything here is paradigm-agnostic machinery; the policy supplies the
// decisions.
type Host interface {
	// Knobs returns the run's tuning parameters.
	Knobs() Knobs
	// Now returns the current virtual time.
	Now() simtime.Time
	// Every schedules fn at each multiple of interval of virtual time.
	Every(interval simtime.Duration, fn func())
	// Operators lists the non-source operators in deterministic
	// (topology) order.
	Operators() []Operator
	// RebalanceAll runs the §3.1 intra-executor load balancer on every
	// elastic executor.
	RebalanceAll()
	// ExecutorLoads measures and resets every elastic executor's window:
	// per-executor arrival/service rates (offered load folded in), the
	// per-executor data intensity, and λ₀, the aggregate first-hop arrival
	// rate. Empty slices mean there is nothing to schedule.
	ExecutorLoads() (loads []qmodel.ExecutorLoad, intensity []float64, lambda0 float64)
	// AvailableCores is the core budget open to elastic executors.
	AvailableCores() int
	// SchedulerInput assembles the Algorithm-1 input from the engine's
	// bookkeeping plus the policy's allocation and intensity vectors.
	SchedulerInput(alloc []int, intensity []float64) scheduler.Input
	// ApplyAssignment diffs the target core matrix against current holdings
	// and applies revocations then grants through the executors.
	ApplyAssignment(x [][]int)
	// RecordSchedulingWall logs one scheduling decision's wall-clock cost
	// (Table 3's metric).
	RecordSchedulingWall(d time.Duration)
	// StartRepartition runs the four-phase global repartition protocol
	// (pause upstream → drain → migrate → update routing) for the decided
	// moves. The operator must have DynamicRouting and no repartition in
	// flight. Completion is reported through Policy.RepartitionFinished.
	StartRepartition(op Operator, moves []balancer.Move)
}

// Policy is one elasticity control plane. Implementations may keep state
// (cooldowns, schedules); an engine instantiates a fresh Policy per run.
type Policy interface {
	// Name is the registry name, unique among registered policies.
	Name() string
	// Place decides the initial provisioning of one non-source operator.
	// operators is the non-source operator count, freeCores the unreserved
	// core total; opIdx is this operator's index in topology order.
	Place(k Knobs, op *stream.Operator, opIdx, operators, freeCores int) Placement
	// Route resolves the executor index serving key on op. Called on the
	// tuple hot path; implementations must not allocate.
	Route(op Operator, key stream.Key) int
	// Install registers the policy's control loops on the host. Called once,
	// when the simulation starts.
	Install(h Host)
	// RepartitionFinished observes the completion of a global repartition on
	// op — including ones forced by experiments, which must cool the
	// controller down exactly like organic ones.
	RepartitionFinished(op Operator)
	// CapacityChanged observes a cluster capacity change (node join, drain,
	// or failure) after the engine has finished its mechanical reaction
	// (evacuation, rehoming, retirement). Elastic policies should react
	// immediately rather than wait for their next tick; inelastic baselines
	// ignore it — that is their honest degradation.
	CapacityChanged()
}

// Base provides neutral defaults for optional Policy behavior: static
// executor-hash routing, no control loops, no repartition reaction. Embed it
// to implement only what a policy actually decides.
type Base struct{}

// Route hashes the key over the operator's executors (the static layout).
func (Base) Route(op Operator, key stream.Key) int {
	return key.ExecutorIndex(op.Executors())
}

// Install registers nothing.
func (Base) Install(Host) {}

// RepartitionFinished ignores the event.
func (Base) RepartitionFinished(Operator) {}

// CapacityChanged ignores the event (no elasticity to exercise).
func (Base) CapacityChanged() {}
