package policy

import (
	"fmt"

	"repro/internal/balancer"
	"repro/internal/stream"
)

var debugRC = false

// DebugRC toggles per-tick RC controller tracing (tests only).
func DebugRC(on bool) { debugRC = on }

// resourceCentric is the paper's resource-centric baseline (§1/§2.2): the
// static placement plus a controller that dynamically repartitions
// operator-level shards through the global synchronization protocol.
type resourceCentric struct {
	h Host
	// cooldown makes the controller skip evaluation ticks right after a
	// repartition: the pause gap and the replay burst pollute that window's
	// load measurement and would re-trigger repartitioning forever.
	cooldown map[Operator]int
}

func newRC() Policy { return &resourceCentric{cooldown: make(map[Operator]int)} }

func (*resourceCentric) Name() string { return "rc" }

// Place provisions exactly like static, but with the dynamic operator-shard
// routing table the repartitioner manipulates.
func (*resourceCentric) Place(k Knobs, op *stream.Operator, opIdx, operators, freeCores int) Placement {
	return Placement{Executors: evenSplit(freeCores, operators, opIdx), OperatorSharded: true, DynamicRouting: true}
}

// Route consults the live operator-shard routing table.
func (*resourceCentric) Route(op Operator, key stream.Key) int {
	routing := op.Routing()
	return routing[key.OperatorShard(len(routing))]
}

// Install starts the RC controller at the scheduling cadence.
func (p *resourceCentric) Install(h Host) {
	p.h = h
	h.Every(h.Knobs().SchedulePeriod, p.tick)
}

// tick is the RC controller: per operator, if the shard load distribution
// across executors exceeds θ, compute a minimal set of operator-shard moves
// (same balancer as Elasticutor, per §5 "for fair comparison") and run the
// global repartitioning protocol.
func (p *resourceCentric) tick() {
	theta := p.h.Knobs().Theta
	for _, op := range p.h.Operators() {
		if op.Repartitioning() {
			continue // previous repartition still running
		}
		if p.cooldown[op] > 0 {
			p.cooldown[op]--
			op.ResetShardLoads()
			continue
		}
		loads := op.ShardLoads()
		assign := append([]int(nil), op.Routing()...)
		moves := balancer.Rebalance(loads, assign, op.Executors(), theta, 0)
		before := perExecutorLoads(loads, op.Routing(), op.Executors())
		after := append([]int(nil), op.Routing()...)
		balancer.Apply(after, moves)
		afterLoads := perExecutorLoads(loads, after, op.Executors())
		if debugRC {
			fmt.Printf("t=%v rcTick op=%s delta=%.3f predicted=%.3f moves=%d\n",
				p.h.Now(), op.Meta().Name, balancer.Imbalance(before), balancer.Imbalance(afterLoads), len(moves))
		}
		// Reset the measurement window either way.
		op.ResetShardLoads()
		if len(moves) == 0 {
			continue
		}
		// A global repartition pauses the whole operator; only pay that when
		// the moves meaningfully improve balance (≥15%) or actually reach the
		// target. The greedy max→min heuristic can plateau above θ; without
		// this guard the controller would re-pause the operator every tick
		// for near-zero gain.
		predicted := balancer.Imbalance(afterLoads)
		if predicted > theta && predicted > 0.85*balancer.Imbalance(before) {
			continue
		}
		p.h.StartRepartition(op, moves)
	}
}

// RepartitionFinished cools the controller down for two evaluation ticks —
// organic and experiment-forced repartitions alike.
func (p *resourceCentric) RepartitionFinished(op Operator) { p.cooldown[op] = 2 }

// CapacityChanged clears all cooldowns so the next tick may repartition
// immediately. RC cannot use joined capacity (executor count is fixed at
// placement) and pays a full global sync to rebalance after a drain or
// failure — the honest cost of the paradigm under churn.
func (p *resourceCentric) CapacityChanged() {
	for op := range p.cooldown {
		delete(p.cooldown, op)
	}
}

// perExecutorLoads aggregates shard loads by owning executor.
func perExecutorLoads(loads []float64, assign []int, execs int) []float64 {
	per := make([]float64, execs)
	for sh, ex := range assign {
		per[ex] += loads[sh]
	}
	return per
}
