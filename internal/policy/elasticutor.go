package policy

import (
	"time"

	"repro/internal/qmodel"
	"repro/internal/scheduler"
	"repro/internal/stream"
)

// executorCentric is the Elasticutor control plane (§3/§4): y elastic
// executors per operator, a periodic intra-executor rebalance, and the
// model-based dynamic scheduler that moves CPU cores between executors. The
// assign function selects Algorithm 1 (elasticutor) or the naive variant
// that ignores migration cost and locality (naive-ec, §5.4).
type executorCentric struct {
	Base
	name   string
	assign func(scheduler.Input) (scheduler.Result, error)
	h      Host
}

func newElasticutor() Policy {
	return &executorCentric{name: "elasticutor", assign: scheduler.Assign}
}

func newNaiveEC() Policy {
	return &executorCentric{name: "naive-ec", assign: scheduler.NaiveAssign}
}

func (p *executorCentric) Name() string { return p.name }

// Place provisions the configured y executors (YPerOp overrides Y for
// multi-operator topologies), leaving state in executor-internal shards.
func (p *executorCentric) Place(k Knobs, op *stream.Operator, opIdx, operators, freeCores int) Placement {
	if y, ok := k.YPerOp[op.ID]; ok && y > 0 {
		return Placement{Executors: y}
	}
	return Placement{Executors: k.Y}
}

// Install starts the intra-executor rebalance loop and — unless cores are
// pinned (Fig 10–12) — the dynamic scheduler.
func (p *executorCentric) Install(h Host) {
	p.h = h
	k := h.Knobs()
	h.Every(k.RebalancePeriod, h.RebalanceAll)
	if k.FixedCores == 0 {
		h.Every(k.SchedulePeriod, p.schedule)
	}
}

// CapacityChanged runs a scheduling round immediately: when a node joins or
// leaves, the executor-centric control plane re-spreads cores right away
// instead of waiting out the current period — the paper's "rapid elasticity"
// applied to capacity change.
func (p *executorCentric) CapacityChanged() {
	if p.h == nil || p.h.Knobs().FixedCores != 0 {
		return
	}
	p.schedule()
}

// schedule is one round of the dynamic scheduler (§4): measure, model,
// allocate (qmodel), assign (Algorithm 1 or the naive variant), apply.
func (p *executorCentric) schedule() {
	h := p.h
	loads, intensity, lambda0 := h.ExecutorLoads()
	if len(loads) == 0 {
		return
	}
	start := time.Now()
	alloc := qmodel.Allocate(loads, lambda0, h.Knobs().Tmax, h.AvailableCores())
	in := h.SchedulerInput(alloc.K, intensity)
	res, err := p.assign(in)
	h.RecordSchedulingWall(time.Since(start))
	if err != nil {
		// Demand exceeded capacity despite the qmodel cap; skip this round.
		return
	}
	h.ApplyAssignment(res.X)
}
