package policy_test

import (
	"os"
	"testing"

	"repro/internal/engine"
	"repro/internal/golden"
	"repro/internal/policy"
	"repro/internal/stream"
)

// TestGoldenScenarios pins the policy-based engine to the exact behavior of
// the pre-refactor paradigm switch: every reference scenario must reproduce
// the fingerprint captured from the monolithic engine, byte for byte.
// Regenerate with `go run ./tools/gengolden` ONLY for intended changes.
func TestGoldenScenarios(t *testing.T) {
	want, err := os.ReadFile("testdata/scenarios.golden")
	if err != nil {
		t.Fatalf("missing golden file (run `go run ./tools/gengolden`): %v", err)
	}
	got := golden.Generate()
	if got != string(want) {
		t.Fatalf("policy engine diverged from the pre-refactor golden:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

func TestRegistryBuiltins(t *testing.T) {
	want := []string{"elasticutor", "naive-ec", "rc", "static"}
	got := policy.Names()
	if len(got) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", got, want)
	}
	for _, name := range want {
		p, err := policy.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := policy.ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown policy")
	}
}

func TestRegistryAliases(t *testing.T) {
	for alias, canon := range map[string]string{
		"ec": "elasticutor", "naivec": "naive-ec", "naive": "naive-ec",
		"resource-centric": "rc",
	} {
		p, err := policy.ByName(alias)
		if err != nil {
			t.Fatalf("ByName(%q): %v", alias, err)
		}
		if p.Name() != canon {
			t.Fatalf("alias %q resolved to %q, want %q", alias, p.Name(), canon)
		}
	}
}

func TestByNameReturnsFreshInstances(t *testing.T) {
	a, _ := policy.ByName("rc")
	b, _ := policy.ByName("rc")
	if a == b {
		t.Fatal("ByName returned a shared instance; policies carry per-run state")
	}
}

func TestForParadigmMatchesNames(t *testing.T) {
	for _, p := range []policy.Paradigm{
		policy.Static, policy.ResourceCentric, policy.NaiveEC, policy.Elasticutor,
	} {
		pol := policy.ForParadigm(p)
		if pol.Name() != p.String() {
			t.Fatalf("ForParadigm(%v).Name() = %q", p, pol.Name())
		}
		back, ok := policy.ParadigmOf(pol.Name())
		if !ok || back != p {
			t.Fatalf("ParadigmOf(%q) = %v,%v", pol.Name(), back, ok)
		}
	}
	if _, ok := policy.ParadigmOf("custom-thing"); ok {
		t.Fatal("ParadigmOf accepted an unknown name")
	}
}

// TestRegisterThirdPartyPolicy exercises the extension point end to end: a
// custom policy registers by name and drives a run through engine.Config.
func TestRegisterThirdPartyPolicy(t *testing.T) {
	policy.Register("test-static-clone", func() policy.Policy { return &staticClone{} })
	pol, err := policy.ByName("test-static-clone")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := policy.ParadigmOf(pol.Name()); ok {
		t.Fatal("custom policy should not map to a paradigm")
	}
	r := golden.MicroWithPolicy(pol)
	if r.Processed == 0 {
		t.Fatal("custom policy processed nothing")
	}
	if r.Policy != "test-static-clone" {
		t.Fatalf("report policy = %q", r.Policy)
	}
	if r.Paradigm != engine.Paradigm(-1) {
		t.Fatalf("report paradigm = %v, want -1 for custom policies", r.Paradigm)
	}
}

// staticClone is a minimal third-party policy: a fixed pair of executors per
// operator, static hashing, no elasticity.
type staticClone struct{ policy.Base }

func (*staticClone) Name() string { return "test-static-clone" }
func (*staticClone) Place(k policy.Knobs, op *stream.Operator, opIdx, operators, freeCores int) policy.Placement {
	return policy.Placement{Executors: 2}
}
