package dist_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/runtime"
)

// TestRPCSpanTiling is the nanosecond contract of the RPC span decomposition
// against a real spawned agent process: for every completed round trip —
// bind, process, migration take/put, ping — the five stages must sum to the
// measured RTT exactly, with no tolerance. The θ-cancelling construction
// makes this hold regardless of clock-offset estimation error; a failure
// means torn timestamps, not a bad estimate.
func TestRPCSpanTiling(t *testing.T) {
	c, err := dist.NewCluster(dist.Options{StatsInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer c.Close()

	var mu sync.Mutex
	var spans []runtime.RPCSpan
	c.OnRPC(func(sp runtime.RPCSpan) {
		mu.Lock()
		spans = append(spans, sp)
		mu.Unlock()
	})

	if err := c.StartNodes(1, 2); err != nil {
		t.Fatalf("start nodes: %v", err)
	}
	rx := runtime.RemoteExec{ID: 1, PerShardBytes: 512}
	for i := 0; i < 20; i++ {
		if err := c.Process(0, rx, 200*time.Microsecond, []uint32{0, 1, 2}); err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
	// A same-node shard move still pays both serialize legs: take and put
	// spans with real payload bytes on the wire.
	if _, _, err := c.MoveShard(0, 0, rx, rx, 1); err != nil {
		t.Fatalf("move shard: %v", err)
	}
	// Let a few ping ticks land so the offset estimate refreshes and the
	// health surface fills.
	time.Sleep(150 * time.Millisecond)

	mu.Lock()
	got := append([]runtime.RPCSpan(nil), spans...)
	mu.Unlock()
	if len(got) < 23 { // 1 bind + 20 process + take + put (+ pings)
		t.Fatalf("recorded %d spans, want at least 23", len(got))
	}
	types := make(map[string]int)
	for i, sp := range got {
		if sp.Stages() != sp.RTT {
			t.Errorf("span %d (%s): stages %v + %v + %v + %v + %v = %v, RTT %v — tiling broken",
				i, sp.Type, sp.SendEnqueue, sp.Wire, sp.AgentQueue, sp.AgentService, sp.Reply,
				sp.Stages(), sp.RTT)
		}
		if sp.RTT <= 0 {
			t.Errorf("span %d (%s): non-positive RTT %v", i, sp.Type, sp.RTT)
		}
		if sp.AgentQueue < 0 || sp.AgentService < 0 {
			t.Errorf("span %d (%s): negative agent stage: queue=%v service=%v",
				i, sp.Type, sp.AgentQueue, sp.AgentService)
		}
		if sp.Node != 0 {
			t.Errorf("span %d: node = %d, want 0", i, sp.Node)
		}
		types[sp.Type]++
	}
	for _, want := range []string{"bind", "process", "take", "put", "ping"} {
		if types[want] == 0 {
			t.Errorf("no %q spans recorded (types: %v)", want, types)
		}
	}
	if types["process"] != 20 {
		t.Errorf("process spans = %d, want 20", types["process"])
	}
}

// TestRPCWindowsAndHealth checks the aggregated telemetry surfaces: windowed
// per-(node, type) RPC percentiles and the agents' self-reported health from
// the ping tick.
func TestRPCWindowsAndHealth(t *testing.T) {
	c, err := dist.NewCluster(dist.Options{StatsInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer c.Close()
	if err := c.StartNodes(2, 2); err != nil {
		t.Fatalf("start nodes: %v", err)
	}
	rx := runtime.RemoteExec{ID: 9, PerShardBytes: 1024}
	for node := 0; node < 2; node++ {
		for i := 0; i < 10; i++ {
			if err := c.Process(node, rx, 100*time.Microsecond, []uint32{uint32(i)}); err != nil {
				t.Fatalf("process: %v", err)
			}
		}
	}
	time.Sleep(150 * time.Millisecond) // at least one stats tick

	wins := c.RPCWindows()
	byKey := make(map[[2]interface{}]bool)
	var sawProcess0, sawProcess1 bool
	for i, w := range wins {
		if i > 0 {
			prev := wins[i-1]
			if w.Node < prev.Node || (w.Node == prev.Node && w.Type < prev.Type) {
				t.Errorf("windows not ordered: %v after %v", w, prev)
			}
		}
		k := [2]interface{}{w.Node, w.Type}
		if byKey[k] {
			t.Errorf("duplicate window for node %d type %s", w.Node, w.Type)
		}
		byKey[k] = true
		if w.Count == 0 {
			t.Errorf("window %d/%s has zero count", w.Node, w.Type)
		}
		if w.Type == "process" {
			if w.Node == 0 {
				sawProcess0 = true
			}
			if w.Node == 1 {
				sawProcess1 = true
			}
			if w.Count != 10 {
				t.Errorf("process count on node %d = %d, want 10", w.Node, w.Count)
			}
			if w.P50 <= 0 || w.P99 < w.P50 || w.Max < w.P99 {
				t.Errorf("process window percentiles not monotone: p50=%v p95=%v p99=%v max=%v",
					w.P50, w.P95, w.P99, w.Max)
			}
		}
	}
	if !sawProcess0 || !sawProcess1 {
		t.Fatalf("missing per-node process windows (node0=%v node1=%v): %+v",
			sawProcess0, sawProcess1, wins)
	}

	health := c.AgentHealth()
	if len(health) != 2 {
		t.Fatalf("agent health rows = %d, want 2", len(health))
	}
	for i, h := range health {
		if h.Node != i {
			t.Errorf("health row %d: node = %d (want ordered by node)", i, h.Node)
		}
		if h.PID <= 0 {
			t.Errorf("node %d: no pid", h.Node)
		}
		if h.Goroutines <= 0 {
			t.Errorf("node %d: goroutines = %d, want > 0", h.Node, h.Goroutines)
		}
		if h.HeapBytes <= 0 {
			t.Errorf("node %d: heap = %d, want > 0", h.Node, h.HeapBytes)
		}
		if h.ResidentBytes != 10*1024 {
			t.Errorf("node %d: resident = %d, want %d", h.Node, h.ResidentBytes, 10*1024)
		}
		if h.Age <= 0 || h.Age > 5*time.Second {
			t.Errorf("node %d: heartbeat age %v out of range", h.Node, h.Age)
		}
		if h.QueueDepth != 0 {
			t.Errorf("node %d: queue depth %d with no requests in flight", h.Node, h.QueueDepth)
		}
		if h.BurnBacklog != 0 {
			t.Errorf("node %d: burn backlog %v with nothing burning", h.Node, h.BurnBacklog)
		}
	}
}
