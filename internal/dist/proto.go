// Package dist is the distributed execution backend: the control-plane keeps
// the entire single-goroutine policy / safe-point discipline of
// internal/runtime (it *is* runtime.Engine, wired through the Remote seam),
// while per-node agent processes own the costs the paper argues about — CPU
// burn and resident shard payloads live in the agent serving an executor's
// home node, and every migration serializes and ships real bytes over a TCP
// socket.
//
// Wire protocol (version 2, stdlib-only):
//
//	handshake   agent → control:  "ELCD" | u16 version | u32 pid
//	            control → agent:  "ELCD" | u16 version
//	frame       u32 length | u8 type | u64 reqID | body
//
// All integers are little-endian. reqID correlates a reply with its request;
// reqID 0 marks fire-and-forget messages that take no reply (touch, drop,
// shutdown). Version negotiation is exact-match: a mismatched agent is
// rejected at handshake, so frames never need per-field versioning — bumping
// protoVersion is the versioning rule.
//
// Version 2 prefixes every reply frame's body with a fixed 24-byte timing
// preamble — u64 a0 (agent UnixNano at frame read), u64 queueNS (read →
// handler running), u64 serviceNS (handler work) — the agent half of the RPC
// span decomposition (runtime.RPCSpan). The control side strips it before
// decoding the payload; ping replies additionally feed the per-connection
// clock-offset estimate.
package dist

import (
	"encoding/binary"
	"fmt"
	"io"
)

const (
	protoMagic   = "ELCD"
	protoVersion = 2

	// replyPreambleLen is the fixed timing preamble every reply body starts
	// with: a0 UnixNano | queueNS | serviceNS.
	replyPreambleLen = 24

	// maxFrame bounds a frame's payload: a defensive limit well above any
	// real shard-set transfer (corrupt length prefixes fail fast instead of
	// allocating gigabytes).
	maxFrame = 1 << 28
)

// Message types. Replies: ack/err for effects, shard/shardSet for state
// reads, stats for ping.
const (
	msgBind     = byte(1)  // control→agent: u32 node, u32 cores → ack
	msgProcess  = byte(2)  // control→agent: u32 exec, u32 perShard, u64 wallNS, u32 n, n×u32 shard → ack
	msgTouch    = byte(3)  // control→agent: u32 exec, u32 perShard, u32 n, n×u32 shard (no reply)
	msgTake     = byte(4)  // control→agent: u32 exec, u32 perShard, u32 shard → shard
	msgPut      = byte(5)  // control→agent: u32 exec, u32 shard, u32 len, bytes → ack
	msgTakeAll  = byte(6)  // control→agent: u32 exec → shardSet
	msgPutAll   = byte(7)  // control→agent: u32 exec, u32 count, count×(u32 shard, u32 len, bytes) → ack
	msgDrop     = byte(8)  // control→agent: u32 exec (no reply)
	msgPing     = byte(9)  // control→agent: empty → stats
	msgShutdown = byte(10) // control→agent: empty (no reply; agent exits)

	msgAck      = byte(11) // agent→control: empty
	msgErr      = byte(12) // agent→control: u16 len, string
	msgShard    = byte(13) // agent→control: u64 serializeNS, u32 len, bytes
	msgShardSet = byte(14) // agent→control: u64 serializeNS, u32 count, count×(u32 shard, u32 len, bytes)
	msgStats    = byte(15) // agent→control: u64 residentBytes, u64 batches, u64 burnedNS, u64 goroutines, u64 heapBytes, u64 queueDepth, u64 burnBacklogNS
)

// frame is one decoded message.
type frame struct {
	typ  byte
	req  uint64
	body []byte
}

// writeFrame emits one length-prefixed frame. Callers serialize writes (one
// writer mutex per connection).
func writeFrame(w io.Writer, typ byte, req uint64, body []byte) error {
	hdr := make([]byte, 4+1+8)
	binary.LittleEndian.PutUint32(hdr, uint32(1+8+len(body)))
	hdr[4] = typ
	binary.LittleEndian.PutUint64(hdr[5:], req)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, enforcing the size bound.
func readFrame(r io.Reader) (frame, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(lb[:])
	if n < 1+8 || n > maxFrame {
		return frame{}, fmt.Errorf("dist: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, err
	}
	return frame{typ: buf[0], req: binary.LittleEndian.Uint64(buf[1:9]), body: buf[9:]}, nil
}

// sendHello / acceptHello are the two halves of the connection handshake.
func sendHello(rw io.ReadWriter, pid int) error {
	buf := make([]byte, 4+2+4)
	copy(buf, protoMagic)
	binary.LittleEndian.PutUint16(buf[4:], protoVersion)
	binary.LittleEndian.PutUint32(buf[6:], uint32(pid))
	if _, err := rw.Write(buf); err != nil {
		return err
	}
	var ack [6]byte
	if _, err := io.ReadFull(rw, ack[:]); err != nil {
		return err
	}
	if string(ack[:4]) != protoMagic || binary.LittleEndian.Uint16(ack[4:]) != protoVersion {
		return fmt.Errorf("dist: control-plane speaks a different protocol version")
	}
	return nil
}

func acceptHello(rw io.ReadWriter) (pid int, err error) {
	var buf [10]byte
	if _, err := io.ReadFull(rw, buf[:]); err != nil {
		return 0, err
	}
	if string(buf[:4]) != protoMagic {
		return 0, fmt.Errorf("dist: bad hello magic")
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != protoVersion {
		return 0, fmt.Errorf("dist: agent speaks protocol v%d, control-plane v%d", v, protoVersion)
	}
	ack := make([]byte, 6)
	copy(ack, protoMagic)
	binary.LittleEndian.PutUint16(ack[4:], protoVersion)
	if _, err := rw.Write(ack); err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint32(buf[6:])), nil
}

// Append/consume helpers for frame bodies.

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// reader consumes a frame body; it latches the first error so codecs can
// decode a whole message then check once.
type reader struct {
	b   []byte
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || len(r.b) < n {
		r.fail()
		return nil
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("dist: truncated frame body")
	}
}

// msgNames maps control→agent message types to the span label the RPC
// telemetry uses. Reply types never label spans.
var msgNames = [...]string{
	msgBind:     "bind",
	msgProcess:  "process",
	msgTouch:    "touch",
	msgTake:     "take",
	msgPut:      "put",
	msgTakeAll:  "take-all",
	msgPutAll:   "put-all",
	msgDrop:     "drop",
	msgPing:     "ping",
	msgShutdown: "shutdown",
}

// msgName returns the span label for a message type.
func msgName(typ byte) string {
	if int(typ) < len(msgNames) && msgNames[typ] != "" {
		return msgNames[typ]
	}
	return fmt.Sprintf("msg-%d", typ)
}

// errBody encodes a msgErr payload.
func errBody(msg string) []byte {
	if len(msg) > 0xffff {
		msg = msg[:0xffff]
	}
	b := make([]byte, 2, 2+len(msg))
	binary.LittleEndian.PutUint16(b, uint16(len(msg)))
	return append(b, msg...)
}

// decodeErr decodes a msgErr payload.
func decodeErr(body []byte) error {
	if len(body) < 2 {
		return fmt.Errorf("dist: agent error")
	}
	n := int(binary.LittleEndian.Uint16(body))
	if n > len(body)-2 {
		n = len(body) - 2
	}
	return fmt.Errorf("dist: agent: %s", body[2:2+n])
}
