package dist_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/scenario"
)

// The backend-conformance suite, extended to the third backend: the same
// scenario under the same policy must be structurally equivalent on the
// simulator and the distributed backend — identical executor provisioning, a
// conserved tuple ledger, zero lost state under graceful churn. The engine
// making those decisions is literally the runtime control-plane; what this
// suite pins is that moving the costs out of process (and paying them over
// real sockets) changes none of the structure.

var conformancePolicies = []string{"static", "rc", "naive-ec", "elasticutor"}

func drainSpec() *scenario.Spec {
	return &scenario.Spec{
		Name:        "dist-drain",
		Nodes:       4,
		DurationSec: 6,
		WarmupSec:   1,
		Workload:    scenario.WorkloadSpec{RateFraction: 0.25},
		Events:      []scenario.NodeEvent{{Kind: scenario.EventDrain, AtSec: 3, Node: 3}},
	}
}

// TestDistConformanceFlashcrowd runs the flash-crowd scenario under all four
// policies on the simulator and on real agent processes.
func TestDistConformanceFlashcrowd(t *testing.T) {
	spec := quickSpec()
	for _, pol := range conformancePolicies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			inst, err := spec.Build(pol, 42)
			if err != nil {
				t.Fatalf("sim build: %v", err)
			}
			simR := inst.Engine.Run(spec.Duration())
			simCounts := inst.Engine.ExecutorCounts()

			d, _, err := dist.BuildScenario(spec, pol, 42, quickOpts())
			if err != nil {
				t.Fatalf("dist build: %v", err)
			}
			dR, err := d.Run(spec.Duration())
			if err != nil {
				t.Fatalf("dist run: %v", err)
			}
			dCounts := d.ExecutorCounts()

			if len(simCounts) != len(dCounts) {
				t.Fatalf("operator sets differ: sim=%v dist=%v", simCounts, dCounts)
			}
			for name, n := range simCounts {
				if dCounts[name] != n {
					t.Errorf("executor count for %q: sim=%d dist=%d", name, n, dCounts[name])
				}
			}
			led := d.Ledger()
			if !led.Conserved() {
				t.Errorf("dist ledger not conserved: %v", led)
			}
			if led.Processed == 0 {
				t.Errorf("dist processed nothing: %v", led)
			}
			if simR.LostStateBytes != 0 || dR.LostStateBytes != 0 {
				t.Errorf("lost state without failures: sim=%d dist=%d",
					simR.LostStateBytes, dR.LostStateBytes)
			}
			if simR.Policy != dR.Policy {
				t.Errorf("policy names differ: %q vs %q", simR.Policy, dR.Policy)
			}
		})
	}
}

// TestDistConformanceDrain checks the graceful-drain contract: the node
// leaves, its agent's state migrates out over the socket before the process
// shuts down, and nothing is lost.
func TestDistConformanceDrain(t *testing.T) {
	spec := drainSpec()
	for _, pol := range conformancePolicies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			simR, err := spec.Run(pol, 42)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			d, _, err := dist.BuildScenario(spec, pol, 42, quickOpts())
			if err != nil {
				t.Fatalf("dist build: %v", err)
			}
			dR, err := d.Run(spec.Duration())
			if err != nil {
				t.Fatalf("dist run: %v", err)
			}
			led := d.Ledger()
			if !led.Conserved() {
				t.Errorf("dist ledger not conserved: %v", led)
			}
			if simR.NodeDrains != 1 || dR.NodeDrains != 1 {
				t.Errorf("node drains: sim=%d dist=%d, want 1", simR.NodeDrains, dR.NodeDrains)
			}
			if simR.LostStateBytes != 0 || dR.LostStateBytes != 0 {
				t.Errorf("graceful drain lost state: sim=%d dist=%d",
					simR.LostStateBytes, dR.LostStateBytes)
			}
			if led.DroppedFailure != 0 {
				t.Errorf("graceful drain dropped %d tuples as failures", led.DroppedFailure)
			}
			for name, n := range d.ExecutorCounts() {
				if n < 1 {
					t.Errorf("operator %q has %d executors after drain", name, n)
				}
			}
		})
	}
}
