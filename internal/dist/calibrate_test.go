package dist_test

import (
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/runtime"
)

// TestDistCalibrate measures against a real two-agent loopback fleet: the
// socket-derived fields must be measured (non-zero), and the serialize and
// control numbers must be real durations, not the modeled constants.
func TestDistCalibrate(t *testing.T) {
	tbl, err := dist.Calibrate(runtime.CalibrateOptions{
		TupleWindow: 30 * time.Millisecond,
		Rounds:      8,
	})
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("table invalid: %v", err)
	}
	if tbl.ControlDelayNS <= 0 {
		t.Errorf("control RTT not measured: %d", tbl.ControlDelayNS)
	}
	if tbl.MigrationBandwidthBps <= 0 {
		t.Errorf("migration bandwidth not measured: %f", tbl.MigrationBandwidthBps)
	}
	// A loopback socket round trip costs microseconds at minimum; the old
	// modeled control delay was a sub-microsecond in-process constant. The
	// point of the distributed backend is that this number is now real.
	if tbl.ControlDelayNS < int64(time.Microsecond) {
		t.Errorf("control RTT %v is implausibly small for a socket round trip",
			time.Duration(tbl.ControlDelayNS))
	}
}
