package dist_test

import (
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/runtime"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

// TestMain lets the control-plane spawn agent processes by re-executing this
// test binary: a spawned copy takes the agent path and never runs tests.
func TestMain(m *testing.M) {
	dist.MainIfAgent()
	os.Exit(m.Run())
}

func quickSpec() *scenario.Spec {
	return &scenario.Spec{
		Name:        "dist-quick",
		Nodes:       4,
		DurationSec: 6,
		WarmupSec:   1,
		Workload:    scenario.WorkloadSpec{RateFraction: 0.25},
		Phases: []scenario.Phase{
			{Kind: scenario.PhaseFlashCrowd, StartSec: 2, DurationSec: 2,
				Params: map[string]float64{"factor": 2.0}},
		},
	}
}

func quickOpts() dist.ScenarioOptions {
	return dist.ScenarioOptions{
		ScenarioOptions: runtime.ScenarioOptions{Options: runtime.Options{Speedup: 20}},
	}
}

// TestDistSmoke runs the flash-crowd scenario on real agent processes over
// loopback sockets: the run must complete, process tuples, and keep the
// ledger conserved.
func TestDistSmoke(t *testing.T) {
	r, led, err := dist.RunScenario(quickSpec(), "elasticutor", 42, quickOpts())
	if err != nil {
		t.Fatalf("dist run failed: %v", err)
	}
	if !led.Conserved() {
		t.Fatalf("tuple ledger not conserved: %v", led)
	}
	if led.Processed == 0 {
		t.Fatalf("dist backend processed nothing: %v", led)
	}
	if r.Policy != "elasticutor" {
		t.Fatalf("report policy = %q", r.Policy)
	}
	if r.LostStateBytes != 0 {
		t.Fatalf("lost state without failures: %d", r.LostStateBytes)
	}
}

// TestDistAgentKill is the agent-failure contract: kill -9 an agent process
// mid-run and the engine must observe it as a node failure — grants revoked,
// lost state written off, every destroyed tuple accounted — and the run must
// still complete with a conserved ledger.
func TestDistAgentKill(t *testing.T) {
	spec := quickSpec()
	spec.Name = "dist-kill"
	d, h, err := dist.BuildScenario(spec, "elasticutor", 42, quickOpts())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// At 3 s virtual the cluster is warm and node 3 homes live state; killing
	// its agent process is indistinguishable from a machine loss.
	d.AtVirtual(3*simtime.Second, func() {
		pid := d.C.AgentPID(3)
		if pid <= 0 {
			t.Errorf("no agent pid for node 3")
			return
		}
		if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
			t.Errorf("kill agent %d: %v", pid, err)
		}
	})
	if err := d.Begin(spec.Duration()); err != nil {
		t.Fatalf("begin: %v", err)
	}
	rep, err := d.WaitDone()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	_ = h
	led := d.Ledger()
	if !led.Conserved() {
		t.Fatalf("ledger not conserved after agent kill: %v", led)
	}
	if led.Processed == 0 {
		t.Fatalf("processed nothing: %v", led)
	}
	if rep.NodeFails != 1 {
		t.Fatalf("node fails = %d, want 1 (killed agent not observed)", rep.NodeFails)
	}
	if rep.LostStateBytes == 0 {
		t.Fatalf("agent kill lost no state bytes")
	}
	if d.C.AgentPID(3) != -1 {
		t.Fatalf("killed agent still bound to node 3")
	}
}

// TestDistStats checks the 1 s agent stats tick: after a run long enough for
// a ping round, agents have reported resident bytes and served batches.
func TestDistStats(t *testing.T) {
	spec := quickSpec()
	spec.Name = "dist-stats"
	d, _, err := dist.BuildScenario(spec, "elasticutor", 7, quickOpts())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var stats []dist.AgentStats
	var rtt time.Duration
	d.AtVirtual(5*simtime.Second, func() {
		stats = d.C.Stats()
		rtt = d.C.ControlRTT()
	})
	if err := d.Begin(spec.Duration()); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := d.WaitDone(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(stats) == 0 {
		t.Fatalf("no agent stats reported by 5s virtual")
	}
	var batches, resident int64
	for _, st := range stats {
		batches += st.Batches
		resident += st.ResidentBytes
	}
	if batches == 0 {
		t.Errorf("agents served no batches: %+v", stats)
	}
	if resident == 0 {
		t.Errorf("agents hold no resident state: %+v", stats)
	}
	if rtt <= 0 {
		t.Errorf("no control RTT samples")
	}
}
