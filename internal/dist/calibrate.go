package dist

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/calib"
	"repro/internal/runtime"
)

// Calibrate measures the distributed backend's real costs on a loopback
// two-agent fleet: control round-trip time (ping over the socket), state-
// migration serialize overhead (agent-measured), and migration bandwidth
// (timed shard transfers through the control plane). The compute-bound
// fields (per-tuple, per-event, scheduling) come from the in-process runtime
// calibration — they are properties of the executor hot path, which the
// distributed backend shares.
//
// Where runtime.Calibrate models the wire (in-process map moves at an
// assumed NIC bandwidth), this measures it: every number that involves a
// socket comes from an actual socket.
func Calibrate(opt runtime.CalibrateOptions) (*calib.Table, error) {
	t, err := runtime.Calibrate(opt)
	if err != nil {
		return nil, err
	}
	rounds := opt.Rounds
	if rounds <= 0 {
		rounds = 64
	}
	shardBytes := opt.ShardBytes
	if shardBytes <= 0 {
		shardBytes = 32 << 10
	}

	c, err := NewCluster(Options{})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.StartNodes(2, 1); err != nil {
		return nil, err
	}

	// Control RTT: the socket round trip a control-plane mutation pays.
	rtts := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		a, err := c.agentFor(i % 2)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := a.request(msgPing, nil); err != nil {
			return nil, fmt.Errorf("dist: calibration ping: %w", err)
		}
		rtts = append(rtts, time.Since(start))
	}
	t.ControlDelayNS = int64(median(rtts))

	// Migration: bounce one shard of the configured size between the two
	// agents. Each round trip is take@src (agent-timed serialize) + payload
	// through the control plane + put@dst — the same path a repartition's
	// MoveShard takes.
	rx := runtime.RemoteExec{ID: 1, PerShardBytes: shardBytes}
	sers := make([]time.Duration, 0, rounds)
	var moved int64
	start := time.Now()
	for i := 0; i < rounds; i++ {
		src, dst := i%2, (i+1)%2
		n, ser, err := c.MoveShard(src, dst, rx, rx, 0)
		if err != nil {
			return nil, fmt.Errorf("dist: calibration move: %w", err)
		}
		moved += n
		sers = append(sers, ser)
	}
	elapsed := time.Since(start)
	t.SerializeOverheadNS = int64(median(sers))
	if sec := elapsed.Seconds(); sec > 0 {
		t.MigrationBandwidthBps = float64(moved) * 8 / sec
	}
	t.Host += " (dist loopback)"
	return t, nil
}

func median(s []time.Duration) time.Duration {
	if len(s) == 0 {
		return 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
