package dist

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"
)

// AgentAddrEnv tells a process to run as an agent instead of its normal
// main: it holds the control-plane address to dial. The control-plane sets
// it when spawning agents by re-executing its own binary; cmd/elasticutor-node
// sets the address from a flag instead.
const AgentAddrEnv = "ELASTICUTOR_AGENT_ADDR"

// MainIfAgent hijacks the process if it was spawned as an agent: it serves
// the agent loop against the control-plane named by AgentAddrEnv and exits
// with the loop's status. Call it first thing in main() (and in TestMain) of
// any binary the control-plane may re-execute. A no-op when the environment
// variable is unset.
func MainIfAgent() {
	addr := os.Getenv(AgentAddrEnv)
	if addr == "" {
		return
	}
	if err := RunAgent(addr); err != nil {
		fmt.Fprintf(os.Stderr, "elasticutor-agent: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunAgent dials the control-plane and serves the agent loop until the
// control-plane shuts the agent down or the connection drops. This is the
// whole life of a node process: hold executor shard payloads, burn the CPU
// cost the control-plane ships with each batch, and serialize state in and
// out for migrations.
func RunAgent(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: dial control-plane %s: %w", addr, err)
	}
	defer c.Close()
	if err := sendHello(c, os.Getpid()); err != nil {
		return err
	}
	a := &agent{conn: c, execs: make(map[uint32]map[uint32][]byte)}
	return a.serve()
}

// agent is one node process's state: shard payloads keyed by executor wire-id
// then shard, plus the counters the stats tick reports back.
type agent struct {
	conn net.Conn
	wmu  sync.Mutex // serializes reply frames

	mu       sync.Mutex
	execs    map[uint32]map[uint32][]byte
	resident int64 // total payload bytes held

	batches  int64 // Process requests served
	burnedNS int64 // wall time burned by Process requests

	inflight    atomic.Int64 // requests accepted but not yet completed (QueueDepth)
	burnBacklog atomic.Int64 // Process wall cost admitted but not yet burned, ns

	node int32 // bound node id (display only)
}

// serve reads frames until shutdown or connection loss, dispatching each
// request on its own goroutine (Process sleeps; the read loop must not). The
// read timestamp a0 is the agent's half of the RPC span decomposition: it is
// stamped here, before the goroutine dispatch, so the handler's start-time
// delta measures real scheduling delay.
func (a *agent) serve() error {
	for {
		f, err := readFrame(a.conn)
		if err != nil {
			return nil // control-plane gone: the agent's life is over
		}
		a0 := time.Now()
		if f.typ == msgShutdown {
			return nil
		}
		a.inflight.Add(1)
		go a.handle(f, a0)
	}
}

// handle services one request and, for correlated requests, writes the reply
// prefixed with the protocol-v2 timing preamble: a0 (frame read), queue
// (read → here) and service (the switch body). The final timestamp a2 is taken
// *before* acquiring the write mutex, so contention on wmu, the socket write
// and the control-side wakeup all land in the span's Reply stage.
func (a *agent) handle(f frame, a0 time.Time) {
	defer a.inflight.Add(-1)
	a1 := time.Now()
	var reply byte
	var body []byte
	var err error
	switch f.typ {
	case msgBind:
		r := &reader{b: f.body}
		node := r.u32()
		r.u32() // cores: informational (worker pools live control-side)
		if err = r.err; err == nil {
			a.mu.Lock()
			a.node = int32(node)
			a.mu.Unlock()
			reply = msgAck
		}
	case msgProcess:
		reply, body, err = a.process(f.body)
	case msgTouch:
		a.touch(f.body)
		return // fire-and-forget
	case msgTake:
		reply, body, err = a.take(f.body)
	case msgPut:
		reply, body, err = a.put(f.body)
	case msgTakeAll:
		reply, body, err = a.takeAll(f.body)
	case msgPutAll:
		reply, body, err = a.putAll(f.body)
	case msgDrop:
		a.drop(f.body)
		return
	case msgPing:
		reply, body = a.stats()
	default:
		err = fmt.Errorf("unknown message type %d", f.typ)
	}
	if f.req == 0 {
		return // no reply expected even on error
	}
	if err != nil {
		reply, body = msgErr, errBody(err.Error())
	}
	a2 := time.Now()
	out := make([]byte, replyPreambleLen, replyPreambleLen+len(body))
	binary.LittleEndian.PutUint64(out, uint64(a0.UnixNano()))
	binary.LittleEndian.PutUint64(out[8:], uint64(a1.Sub(a0)))
	binary.LittleEndian.PutUint64(out[16:], uint64(a2.Sub(a1)))
	out = append(out, body...)
	a.wmu.Lock()
	defer a.wmu.Unlock()
	_ = writeFrame(a.conn, reply, f.req, out)
}

// materialize ensures a shard payload exists, creating perShard nominal bytes
// on first touch (the agent-side mirror of the control-plane's nominal state
// model). Caller holds a.mu.
func (a *agent) materialize(exec, shard uint32, perShard int) []byte {
	m := a.execs[exec]
	if m == nil {
		m = make(map[uint32][]byte)
		a.execs[exec] = m
	}
	p := m[shard]
	if p == nil && perShard > 0 {
		p = make([]byte, perShard)
		binary.LittleEndian.PutUint32(p, shard) // non-trivial content
		m[shard] = p
		a.resident += int64(perShard)
	}
	return p
}

// process burns the batch's wall cost and touches its shards: the remote half
// of one executor batch. The sleep is the cost model — on a loopback test rig
// the point is that it happens *here*, in the node's own process, behind a
// real socket round trip.
func (a *agent) process(body []byte) (byte, []byte, error) {
	r := &reader{b: body}
	exec := r.u32()
	perShard := r.u32()
	wallNS := r.u64()
	n := r.u32()
	if r.err != nil {
		return 0, nil, r.err
	}
	a.mu.Lock()
	for i := uint32(0); i < n; i++ {
		a.materialize(exec, r.u32(), int(perShard))
	}
	a.batches++
	a.burnedNS += int64(wallNS)
	err := r.err
	a.mu.Unlock()
	if err != nil {
		return 0, nil, err
	}
	if wallNS > 0 {
		a.burnBacklog.Add(int64(wallNS))
		time.Sleep(time.Duration(wallNS))
		a.burnBacklog.Add(-int64(wallNS))
	}
	return msgAck, nil, nil
}

// touch materializes shards without burning cost (state bookkeeping for a
// batch whose grant ran on another node).
func (a *agent) touch(body []byte) {
	r := &reader{b: body}
	exec := r.u32()
	perShard := r.u32()
	n := r.u32()
	if r.err != nil {
		return
	}
	a.mu.Lock()
	for i := uint32(0); i < n && r.err == nil; i++ {
		a.materialize(exec, r.u32(), int(perShard))
	}
	a.mu.Unlock()
}

// take serializes one shard out of the agent: the payload leaves the resident
// set and the copy into the wire buffer is timed — the measured serialization
// cost migrations report.
func (a *agent) take(body []byte) (byte, []byte, error) {
	r := &reader{b: body}
	exec := r.u32()
	perShard := r.u32()
	shard := r.u32()
	if r.err != nil {
		return 0, nil, r.err
	}
	a.mu.Lock()
	p := a.materialize(exec, shard, int(perShard))
	if m := a.execs[exec]; m != nil {
		delete(m, shard)
		a.resident -= int64(len(p))
	}
	a.mu.Unlock()
	start := time.Now()
	out := make([]byte, 8+4+len(p))
	copy(out[12:], p)
	ser := time.Since(start)
	binary.LittleEndian.PutUint64(out, uint64(ser))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(p)))
	return msgShard, out, nil
}

// put installs a serialized shard payload.
func (a *agent) put(body []byte) (byte, []byte, error) {
	r := &reader{b: body}
	exec := r.u32()
	shard := r.u32()
	n := r.u32()
	p := r.bytes(int(n))
	if r.err != nil {
		return 0, nil, r.err
	}
	a.mu.Lock()
	m := a.execs[exec]
	if m == nil {
		m = make(map[uint32][]byte)
		a.execs[exec] = m
	}
	a.resident += int64(len(p)) - int64(len(m[shard]))
	m[shard] = p
	a.mu.Unlock()
	return msgAck, nil, nil
}

// takeAll serializes an executor's entire resident state out of the agent
// (churn rehoming / retirement source side).
func (a *agent) takeAll(body []byte) (byte, []byte, error) {
	r := &reader{b: body}
	exec := r.u32()
	if r.err != nil {
		return 0, nil, r.err
	}
	a.mu.Lock()
	m := a.execs[exec]
	delete(a.execs, exec)
	for _, p := range m {
		a.resident -= int64(len(p))
	}
	a.mu.Unlock()
	start := time.Now()
	size := 8 + 4
	for _, p := range m {
		size += 8 + len(p)
	}
	out := make([]byte, 8+4, size)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(m)))
	for sh, p := range m {
		out = appendU32(out, sh)
		out = appendU32(out, uint32(len(p)))
		out = append(out, p...)
	}
	binary.LittleEndian.PutUint64(out, uint64(time.Since(start)))
	return msgShardSet, out, nil
}

// putAll installs a set of serialized shard payloads.
func (a *agent) putAll(body []byte) (byte, []byte, error) {
	r := &reader{b: body}
	exec := r.u32()
	count := r.u32()
	if r.err != nil {
		return 0, nil, r.err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.execs[exec]
	if m == nil {
		m = make(map[uint32][]byte)
		a.execs[exec] = m
	}
	for i := uint32(0); i < count; i++ {
		sh := r.u32()
		n := r.u32()
		p := r.bytes(int(n))
		if r.err != nil {
			return 0, nil, r.err
		}
		a.resident += int64(len(p)) - int64(len(m[sh]))
		m[sh] = p
	}
	return msgAck, nil, nil
}

// drop discards an executor's state (hard-failure write-off).
func (a *agent) drop(body []byte) {
	r := &reader{b: body}
	exec := r.u32()
	if r.err != nil {
		return
	}
	a.mu.Lock()
	for _, p := range a.execs[exec] {
		a.resident -= int64(len(p))
	}
	delete(a.execs, exec)
	a.mu.Unlock()
}

// stats is the ping reply: the agent's striped-fold equivalent, reported on
// the control-plane's 1 s tick. Since protocol v2 it doubles as the health
// heartbeat: goroutine count, heap in use, the in-flight request depth and the
// admitted-but-unburned Process backlog ride along.
func (a *agent) stats() (byte, []byte) {
	a.mu.Lock()
	resident, batches, burned := a.resident, a.batches, a.burnedNS
	a.mu.Unlock()
	var ms gort.MemStats
	gort.ReadMemStats(&ms)
	body := make([]byte, 0, 56)
	body = appendU64(body, uint64(resident))
	body = appendU64(body, uint64(batches))
	body = appendU64(body, uint64(burned))
	body = appendU64(body, uint64(gort.NumGoroutine()))
	body = appendU64(body, ms.HeapAlloc)
	// The ping being served is itself in flight; report the depth without it.
	depth := a.inflight.Load() - 1
	if depth < 0 {
		depth = 0
	}
	body = appendU64(body, uint64(depth))
	body = appendU64(body, uint64(a.burnBacklog.Load()))
	return msgStats, body
}
