package dist

import (
	"context"
	"time"

	"repro/internal/engine"
	"repro/internal/run"
	"repro/internal/runtime"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

// Engine is a distributed run: the full runtime control-plane (embedded — it
// keeps placement, routing, policy, safe points, and the ledger) plus the
// agent fleet carrying the per-node costs. It satisfies run.RuntimeBackend
// through the embedding; WaitDone is shadowed to release the fleet.
type Engine struct {
	*runtime.Engine
	C *Cluster
}

// WaitDone waits out the run, then shuts the agent fleet down.
func (d *Engine) WaitDone() (*engine.Report, error) {
	rep, err := d.Engine.WaitDone()
	d.C.Close()
	return rep, err
}

// Run executes the run synchronously (Begin + WaitDone) and releases the
// fleet — the direct-engine form the conformance tests use.
func (d *Engine) Run(dur simtime.Duration) (*engine.Report, error) {
	rep, err := d.Engine.Run(dur)
	d.C.Close()
	return rep, err
}

// New assembles a distributed engine around an arbitrary engine.Config — the
// user-topology form (the facade's Builder). A control-plane listener comes
// up, one agent binds per initial cluster node, and the runtime engine is
// built with the fleet as its Remote. The caller owns the run handle; the
// fleet shuts down when the engine finishes (WaitDone/Run shadowing, or
// run.Run.OnFinish when driven through a handle).
func New(cfg engine.Config, rtOpt runtime.Options, copt Options) (*Engine, error) {
	if copt.StatsInterval <= 0 && rtOpt.Speedup > 1 {
		copt.StatsInterval = time.Duration(float64(time.Second) / rtOpt.Speedup)
	}
	c, err := NewCluster(copt)
	if err != nil {
		return nil, err
	}
	rtOpt.Remote = c
	rt, err := runtime.New(cfg, rtOpt)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.OnFail(func(n int) { rt.FailNode(n) })
	if err := c.StartNodes(cfg.Cluster.Nodes, 0); err != nil {
		c.Close()
		return nil, err
	}
	return &Engine{Engine: rt, C: c}, nil
}

// ScenarioOptions tunes a scenario run on the distributed backend.
type ScenarioOptions struct {
	runtime.ScenarioOptions
	// Cluster tunes the agent fleet (listen address, spawn vs adopt).
	Cluster Options
}

// BuildScenario assembles a wired, unstarted distributed run: a control-plane
// listener, one agent process per initial node (spawned by re-executing this
// binary, or adopted from cmd/elasticutor-node dials when Cluster.NoSpawn is
// set), and the runtime engine built with the fleet as its Remote. The run
// handle, snapshots, events, traces, and the ledger all behave exactly as on
// the runtime backend — the engine is the same code; only the costs moved out
// of process.
func BuildScenario(s *scenario.Spec, policyName string, seed uint64, opt ScenarioOptions) (*Engine, *run.Run, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if opt.Cluster.StatsInterval <= 0 && opt.Speedup > 1 {
		// One stats tick per virtual second, like the engine's series tick.
		opt.Cluster.StatsInterval = time.Duration(float64(time.Second) / opt.Speedup)
	}
	c, err := NewCluster(opt.Cluster)
	if err != nil {
		return nil, nil, err
	}
	rtOpt := opt.ScenarioOptions
	rtOpt.Remote = c
	rt, h, err := runtime.BuildScenario(s, policyName, seed, rtOpt)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	// An agent dying unexpectedly (crash, kill -9) is a node failure: the
	// engine revokes grants, writes off the lost state, and keeps the ledger
	// conserved — its ordinary FailNode path.
	c.OnFail(func(n int) { rt.FailNode(n) })
	if err := c.StartNodes(s.Nodes, 0); err != nil {
		c.Close()
		return nil, nil, err
	}
	h.OnFinish(func(*engine.Report) { c.Close() })
	return &Engine{Engine: rt, C: c}, h, nil
}

// StartScenario builds a distributed scenario and starts it through the run
// handle.
func StartScenario(ctx context.Context, s *scenario.Spec, policyName string, seed uint64, opt ScenarioOptions) (*run.Run, *Engine, error) {
	d, h, err := BuildScenario(s, policyName, seed, opt)
	if err != nil {
		return nil, nil, err
	}
	h.Start(ctx)
	return h, d, nil
}

// RunScenario builds and runs a scenario on the distributed backend,
// returning the report and the control-plane's conservation ledger.
func RunScenario(s *scenario.Spec, policyName string, seed uint64, opt ScenarioOptions) (*engine.Report, runtime.Ledger, error) {
	h, d, err := StartScenario(context.Background(), s, policyName, seed, opt)
	if err != nil {
		return nil, runtime.Ledger{}, err
	}
	r, err := h.Wait()
	if err != nil {
		return nil, runtime.Ledger{}, err
	}
	return r, d.Ledger(), nil
}
