package dist

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/runtime"
)

// Options tunes the control-plane's cluster of agent processes.
type Options struct {
	// ListenAddr is the address the control-plane listens on for agent
	// connections. Default "127.0.0.1:0" (loopback, kernel-assigned port).
	ListenAddr string
	// NoSpawn disables spawning agents by re-executing this binary: nodes
	// are served only by externally started agents (cmd/elasticutor-node)
	// that dial ListenAddr. Default false: spawn on demand.
	NoSpawn bool
	// SpawnTimeout bounds the wait for an agent to connect after a spawn
	// (or, with NoSpawn, for an external agent to show up). Default 10s.
	SpawnTimeout time.Duration
	// StatsInterval is the wall period of the agent stats/RTT ping tick.
	// Default 1s; BuildScenario shrinks it by the run's Speedup so agents
	// report once per *virtual* second, matching the engine's series tick.
	StatsInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.ListenAddr == "" {
		o.ListenAddr = "127.0.0.1:0"
	}
	if o.SpawnTimeout <= 0 {
		o.SpawnTimeout = 10 * time.Second
	}
	if o.StatsInterval <= 0 {
		o.StatsInterval = time.Second
	}
	return o
}

// Cluster is the control-plane's view of the agent fleet. It implements
// runtime.Remote: the engine stays the single source of truth for placement,
// routing, policy, and the ledger, and calls here whenever a cost must be
// paid where it is real — in the agent process serving a node.
type Cluster struct {
	opt Options
	ln  net.Listener

	mu     sync.Mutex
	bound  map[int]*aconn // node id → serving agent
	closed bool

	// arrivals queues freshly handshaken connections (spawned or adopted)
	// until NodeAdded binds them to a node.
	arrivals chan *aconn

	// onFail is invoked (off the read loop) when a bound agent's connection
	// dies unexpectedly — wired to Engine.FailNode.
	onFail atomic.Value // func(node int)

	rttMu sync.Mutex
	rtts  []time.Duration // recent control round trips (ping)

	// rpc aggregates per-(node, message-type) span windows; onRPC is the
	// optional per-span observer (runtime.RemoteSpanSource).
	rpcMu sync.Mutex
	rpc   map[rpcKey]*rpcAgg
	onRPC atomic.Value // func(runtime.RPCSpan)

	stopPing chan struct{}
	wg       sync.WaitGroup
}

// rpcKey identifies one RPC aggregation population.
type rpcKey struct {
	node int
	typ  byte
}

// rpcAgg is one population's cumulative count plus a ring of the most recent
// span samples the windowed percentiles are computed over.
type rpcAgg struct {
	count uint64
	ring  []rpcSample // capacity rpcRingSize
	next  int         // ring write cursor once full
}

type rpcSample struct {
	rtt, wire, agent time.Duration
}

// rpcRingSize bounds each population's sample window.
const rpcRingSize = 256

// aconn is one agent connection: framed requests with reqID correlation, a
// single writer mutex, and a read loop that fans replies out to waiters.
type aconn struct {
	c    net.Conn
	pid  int
	node atomic.Int32 // bound node id, -1 while pooled
	cl   *Cluster     // owning cluster (span recording)

	proc *os.Process // non-nil if this agent was spawned by us

	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	pending map[uint64]chan frame
	dead    bool
	seq     uint64

	expected atomic.Bool // deliberate removal in progress: suppress onFail

	stats atomic.Value // agentStats from the last ping

	// offset is the NTP-style agent-minus-control clock-offset estimate in
	// nanoseconds, refreshed by every ping reply: with control timestamps t1
	// (request written) and t3 (reply read) and agent timestamps a0 (request
	// read) and a2 (reply written), θ = ((a0−t1)+(a2−t3))/2. It splits each
	// span's off-control time into wire and agent stages; a θ error moves
	// time between those stages but never breaks the RTT tiling.
	offset   atomic.Int64
	lastPing atomic.Int64 // UnixNano of the last successful ping reply
}

// AgentStats is one agent's counters from its latest 1 s stats tick.
type AgentStats struct {
	Node          int
	PID           int
	ResidentBytes int64
	Batches       int64
	BurnedNS      int64
	// Health surface (protocol v2): self-reported in the same tick.
	Goroutines    int
	HeapBytes     int64
	QueueDepth    int
	BurnBacklogNS int64
}

// NewCluster starts the control-plane listener and its accept loop. Agents
// (spawned or external) dial Addr() and wait in the arrival pool until a
// NodeAdded binds them.
func NewCluster(opt Options) (*Cluster, error) {
	opt = opt.withDefaults()
	ln, err := net.Listen("tcp", opt.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", opt.ListenAddr, err)
	}
	c := &Cluster{
		opt:      opt,
		ln:       ln,
		bound:    make(map[int]*aconn),
		arrivals: make(chan *aconn, 64),
		rpc:      make(map[rpcKey]*rpcAgg),
		stopPing: make(chan struct{}),
	}
	c.wg.Add(2)
	go c.acceptLoop()
	go c.pingLoop()
	return c, nil
}

// Addr is the control-plane's listen address — what agents dial and what
// cmd/elasticutor-node's -control flag takes.
func (c *Cluster) Addr() string { return c.ln.Addr().String() }

// OnFail installs the unexpected-agent-death observer (Engine.FailNode).
func (c *Cluster) OnFail(fn func(node int)) { c.onFail.Store(fn) }

func (c *Cluster) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go func() {
			pid, err := acceptHello(conn)
			if err != nil {
				conn.Close()
				return
			}
			a := &aconn{c: conn, pid: pid, cl: c, pending: make(map[uint64]chan frame)}
			a.node.Store(-1)
			go c.readLoop(a)
			select {
			case c.arrivals <- a:
			default:
				// Pool overflow: more agents than the run will ever bind.
				a.close()
			}
		}()
	}
}

// readLoop fans reply frames out to request waiters; on connection loss it
// fails every outstanding request and reports an unexpected death.
func (c *Cluster) readLoop(a *aconn) {
	for {
		f, err := readFrame(a.c)
		if err != nil {
			break
		}
		a.pmu.Lock()
		ch := a.pending[f.req]
		delete(a.pending, f.req)
		a.pmu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
	a.pmu.Lock()
	a.dead = true
	for req, ch := range a.pending {
		delete(a.pending, req)
		close(ch)
	}
	a.pmu.Unlock()
	a.c.Close()
	if node := int(a.node.Load()); node >= 0 && !a.expected.Load() {
		// The agent died under us (crash, kill -9): the node is gone and the
		// engine must account for it — exactly its FailNode path.
		if fn, ok := c.onFail.Load().(func(int)); ok && fn != nil {
			go fn(node)
		}
	}
}

// request sends one frame and blocks for its reply (or connection death).
// Every completed round trip is timed into a runtime.RPCSpan: t0 here, t1
// after the socket write, t3 on wakeup, joined with the agent's v2 timing
// preamble. Timestamps are wall-clock UnixNano on both ends — the one
// representation the clock-offset estimate can map between — and all five
// stages plus RTT derive from the same values, so the tiling is exact by
// construction.
func (a *aconn) request(typ byte, body []byte) (frame, error) {
	t0 := time.Now().UnixNano()
	ch := make(chan frame, 1)
	a.pmu.Lock()
	if a.dead {
		a.pmu.Unlock()
		return frame{}, fmt.Errorf("dist: agent for node %d is gone", a.node.Load())
	}
	a.seq++
	req := a.seq
	a.pending[req] = ch
	a.pmu.Unlock()

	a.wmu.Lock()
	err := writeFrame(a.c, typ, req, body)
	t1 := time.Now().UnixNano()
	a.wmu.Unlock()
	if err != nil {
		a.pmu.Lock()
		delete(a.pending, req)
		a.pmu.Unlock()
		a.c.Close()
		return frame{}, fmt.Errorf("dist: write to agent for node %d: %w", a.node.Load(), err)
	}
	f, ok := <-ch
	t3 := time.Now().UnixNano()
	if !ok {
		return frame{}, fmt.Errorf("dist: agent for node %d died mid-request", a.node.Load())
	}
	if len(f.body) < replyPreambleLen {
		return frame{}, fmt.Errorf("dist: reply from agent for node %d missing timing preamble", a.node.Load())
	}
	a0 := int64(binary.LittleEndian.Uint64(f.body))
	queueNS := int64(binary.LittleEndian.Uint64(f.body[8:]))
	serviceNS := int64(binary.LittleEndian.Uint64(f.body[16:]))
	f.body = f.body[replyPreambleLen:]
	if a.cl != nil {
		a.cl.recordSpan(a, typ, t0, t1, t3, a0, queueNS, serviceNS, f.typ == msgErr)
	}
	if f.typ == msgErr {
		return frame{}, decodeErr(f.body)
	}
	return f, nil
}

// send fires a no-reply frame (reqID 0).
func (a *aconn) send(typ byte, body []byte) {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	_ = writeFrame(a.c, typ, 0, body)
}

func (a *aconn) close() {
	a.expected.Store(true)
	a.c.Close()
}

// ---- runtime.Remote ----

// NodeAdded ensures an agent process serves the node: adopt a pooled
// connection if one is waiting, spawn one otherwise (by re-executing this
// binary with AgentAddrEnv set), then bind it. Idempotent per node.
func (c *Cluster) NodeAdded(node, cores int) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("dist: cluster closed")
	}
	if _, ok := c.bound[node]; ok {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()

	a, err := c.obtain()
	if err != nil {
		return fmt.Errorf("dist: no agent for node %d: %w", node, err)
	}
	a.node.Store(int32(node))
	body := appendU32(appendU32(nil, uint32(node)), uint32(cores))
	if _, err := a.request(msgBind, body); err != nil {
		a.close()
		return fmt.Errorf("dist: bind node %d: %w", node, err)
	}
	// Seed the heartbeat clock so Age measures from bind, not from 1970,
	// while the first stats tick is still pending.
	a.lastPing.CompareAndSwap(0, time.Now().UnixNano())
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		a.close()
		return fmt.Errorf("dist: cluster closed")
	}
	c.bound[node] = a
	return nil
}

// obtain returns a handshaken, unbound agent connection: a pooled arrival if
// one is ready, else (unless NoSpawn) a freshly spawned process's.
func (c *Cluster) obtain() (*aconn, error) {
	select {
	case a := <-c.arrivals:
		return a, nil
	default:
	}
	var proc *os.Process
	if !c.opt.NoSpawn {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), AgentAddrEnv+"="+c.Addr())
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("spawn agent: %w", err)
		}
		proc = cmd.Process
		go cmd.Wait() // reap
	}
	select {
	case a := <-c.arrivals:
		a.proc = proc
		return a, nil
	case <-time.After(c.opt.SpawnTimeout):
		if proc != nil {
			proc.Kill()
		}
		return nil, fmt.Errorf("no agent connected within %v", c.opt.SpawnTimeout)
	}
}

// NodeRemoved releases the node's agent. Graceful: orderly shutdown after the
// engine has evacuated every byte. Hard: kill (or acknowledge a death the
// read loop already observed). Idempotent.
func (c *Cluster) NodeRemoved(node int, graceful bool) {
	c.mu.Lock()
	a := c.bound[node]
	delete(c.bound, node)
	c.mu.Unlock()
	if a == nil {
		return
	}
	a.expected.Store(true)
	if graceful {
		a.send(msgShutdown, nil)
	} else if a.proc != nil {
		a.proc.Kill()
	}
	a.c.Close()
}

// agentFor returns the serving connection, or an error that the engine
// accounts as destroyed-by-failure work.
func (c *Cluster) agentFor(node int) (*aconn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a := c.bound[node]; a != nil {
		return a, nil
	}
	return nil, fmt.Errorf("dist: no agent serving node %d", node)
}

// Process ships one batch's cost and shard touches to the node's agent and
// blocks for the ack — the measured remote service time.
func (c *Cluster) Process(node int, rx runtime.RemoteExec, wallCost time.Duration, shards []uint32) error {
	a, err := c.agentFor(node)
	if err != nil {
		return err
	}
	body := make([]byte, 0, 4+4+8+4+4*len(shards))
	body = appendU32(body, rx.ID)
	body = appendU32(body, uint32(rx.PerShardBytes))
	body = appendU64(body, uint64(wallCost))
	body = appendU32(body, uint32(len(shards)))
	for _, s := range shards {
		body = appendU32(body, s)
	}
	_, err = a.request(msgProcess, body)
	return err
}

// StateTouch materializes shards at the executor's home agent, fire-and-forget.
func (c *Cluster) StateTouch(node int, rx runtime.RemoteExec, shards []uint32) {
	a, err := c.agentFor(node)
	if err != nil {
		return
	}
	body := make([]byte, 0, 4+4+4+4*len(shards))
	body = appendU32(body, rx.ID)
	body = appendU32(body, uint32(rx.PerShardBytes))
	body = appendU32(body, uint32(len(shards)))
	for _, s := range shards {
		body = appendU32(body, s)
	}
	a.send(msgTouch, body)
}

// MoveShard serializes one shard out of the source agent, moves the payload
// through the control plane, and installs it at the destination agent. The
// agent-measured serialize time and the payload size come back to the span.
func (c *Cluster) MoveShard(srcNode, dstNode int, src, dst runtime.RemoteExec, shard uint32) (int64, time.Duration, error) {
	sa, err := c.agentFor(srcNode)
	if err != nil {
		return 0, 0, err
	}
	body := appendU32(appendU32(appendU32(nil, src.ID), uint32(src.PerShardBytes)), shard)
	f, err := sa.request(msgTake, body)
	if err != nil {
		return 0, 0, err
	}
	r := &reader{b: f.body}
	ser := time.Duration(r.u64())
	payload := r.bytes(int(r.u32()))
	if r.err != nil {
		return 0, 0, r.err
	}
	da, err := c.agentFor(dstNode)
	if err != nil {
		return 0, 0, err
	}
	put := make([]byte, 0, 4+4+4+len(payload))
	put = appendU32(put, dst.ID)
	put = appendU32(put, shard)
	put = appendU32(put, uint32(len(payload)))
	put = append(put, payload...)
	if _, err := da.request(msgPut, put); err != nil {
		return 0, 0, err
	}
	return int64(len(payload)), ser, nil
}

// takeAll pulls an executor's whole resident state off an agent.
func (c *Cluster) takeAll(node int, rx runtime.RemoteExec) (shards []uint32, payloads [][]byte, total int64, err error) {
	a, err := c.agentFor(node)
	if err != nil {
		return nil, nil, 0, err
	}
	f, err := a.request(msgTakeAll, appendU32(nil, rx.ID))
	if err != nil {
		return nil, nil, 0, err
	}
	r := &reader{b: f.body}
	r.u64() // serialize time: folded into the blocking call's duration
	count := r.u32()
	for i := uint32(0); i < count; i++ {
		sh := r.u32()
		p := r.bytes(int(r.u32()))
		if r.err != nil {
			return nil, nil, 0, r.err
		}
		shards = append(shards, sh)
		payloads = append(payloads, p)
		total += int64(len(p))
	}
	return shards, payloads, total, r.err
}

// putAll installs shard payloads at an agent.
func (c *Cluster) putAll(node int, rx runtime.RemoteExec, shards []uint32, payloads [][]byte) error {
	a, err := c.agentFor(node)
	if err != nil {
		return err
	}
	size := 4 + 4
	for _, p := range payloads {
		size += 8 + len(p)
	}
	body := make([]byte, 0, size)
	body = appendU32(body, rx.ID)
	body = appendU32(body, uint32(len(shards)))
	for i, sh := range shards {
		body = appendU32(body, sh)
		body = appendU32(body, uint32(len(payloads[i])))
		body = append(body, payloads[i]...)
	}
	_, err = a.request(msgPutAll, body)
	return err
}

// MoveExecState relocates an executor's entire resident state between agents.
func (c *Cluster) MoveExecState(srcNode, dstNode int, rx runtime.RemoteExec) (int64, error) {
	shards, payloads, total, err := c.takeAll(srcNode, rx)
	if err != nil {
		return 0, err
	}
	if len(shards) == 0 {
		return 0, nil
	}
	return total, c.putAll(dstNode, rx, shards, payloads)
}

// RedistributeState scatters a retired executor's shards onto survivors'
// agents, following the control-plane's shard assignment.
func (c *Cluster) RedistributeState(srcNode int, src runtime.RemoteExec, dests []runtime.RemoteDest) (int64, error) {
	shards, payloads, total, err := c.takeAll(srcNode, src)
	if err != nil {
		return 0, err
	}
	owner := make(map[uint32]int, len(shards)) // shard → dest index
	for di, d := range dests {
		for _, sh := range d.Shards {
			owner[sh] = di
		}
	}
	perDest := make([][]int, len(dests)) // dest index → indices into shards
	for i, sh := range shards {
		di, ok := owner[sh]
		if !ok {
			di = int(sh) % len(dests) // untracked shard: round-robin like the metadata
		}
		perDest[di] = append(perDest[di], i)
	}
	var firstErr error
	for di, idxs := range perDest {
		if len(idxs) == 0 {
			continue
		}
		shs := make([]uint32, len(idxs))
		ps := make([][]byte, len(idxs))
		for j, i := range idxs {
			shs[j], ps[j] = shards[i], payloads[i]
		}
		if err := c.putAll(dests[di].Node, dests[di].Exec, shs, ps); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// DropExecState discards an executor's agent-side state, fire-and-forget.
func (c *Cluster) DropExecState(node int, rx runtime.RemoteExec) {
	a, err := c.agentFor(node)
	if err != nil {
		return
	}
	a.send(msgDrop, appendU32(nil, rx.ID))
}

// ---- liveness / stats ----

// pingLoop is the 1 s stats tick: every bound agent reports its counters and
// the round trip is a control-RTT sample (liveness itself rides the TCP read
// loop — a dead agent EOFs immediately).
func (c *Cluster) pingLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opt.StatsInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopPing:
			return
		case <-t.C:
			c.pingOnce()
		}
	}
}

func (c *Cluster) pingOnce() {
	c.mu.Lock()
	conns := make([]*aconn, 0, len(c.bound))
	for _, a := range c.bound {
		conns = append(conns, a)
	}
	c.mu.Unlock()
	for _, a := range conns {
		rtt, st, err := c.ping(a)
		if err != nil {
			continue
		}
		st.Node, st.PID = int(a.node.Load()), a.pid
		a.stats.Store(st)
		c.rttMu.Lock()
		c.rtts = append(c.rtts, rtt)
		if len(c.rtts) > 256 {
			c.rtts = c.rtts[len(c.rtts)-256:]
		}
		c.rttMu.Unlock()
	}
}

func (c *Cluster) ping(a *aconn) (time.Duration, AgentStats, error) {
	start := time.Now()
	f, err := a.request(msgPing, nil)
	if err != nil {
		return 0, AgentStats{}, err
	}
	rtt := time.Since(start)
	r := &reader{b: f.body}
	st := AgentStats{
		ResidentBytes: int64(r.u64()),
		Batches:       int64(r.u64()),
		BurnedNS:      int64(r.u64()),
		Goroutines:    int(r.u64()),
		HeapBytes:     int64(r.u64()),
		QueueDepth:    int(r.u64()),
		BurnBacklogNS: int64(r.u64()),
	}
	return rtt, st, r.err
}

// ---- RPC span telemetry ----

// recordSpan joins one request's control timestamps with the agent's reply
// preamble into a runtime.RPCSpan, refreshes the connection's clock-offset
// estimate on ping replies, and feeds the per-(node, type) window aggregate
// and the OnRPC observer. All timestamps are wall UnixNano; see request.
func (c *Cluster) recordSpan(a *aconn, typ byte, t0, t1, t3, a0, queueNS, serviceNS int64, errReply bool) {
	a2 := a0 + queueNS + serviceNS // agent-clock reply-write timestamp
	if typ == msgPing && !errReply {
		// NTP-style offset from the symmetric-delay assumption: refresh
		// *before* building this span so the ping benefits from its own
		// estimate.
		a.offset.Store(((a0 - t1) + (a2 - t3)) / 2)
		a.lastPing.Store(time.Now().UnixNano())
	}
	off := a.offset.Load()
	sp := runtime.RPCSpan{
		Node:         int(a.node.Load()),
		Type:         msgName(typ),
		SendEnqueue:  time.Duration(t1 - t0),
		Wire:         time.Duration((a0 - off) - t1),
		AgentQueue:   time.Duration(queueNS),
		AgentService: time.Duration(serviceNS),
		Reply:        time.Duration(t3 - (a2 - off)),
		RTT:          time.Duration(t3 - t0),
		Offset:       time.Duration(off),
		Err:          errReply,
	}

	c.rpcMu.Lock()
	k := rpcKey{node: sp.Node, typ: typ}
	agg := c.rpc[k]
	if agg == nil {
		agg = &rpcAgg{}
		c.rpc[k] = agg
	}
	agg.count++
	s := rpcSample{rtt: sp.RTT, wire: sp.Wire + sp.Reply, agent: sp.AgentQueue + sp.AgentService}
	if len(agg.ring) < rpcRingSize {
		agg.ring = append(agg.ring, s)
	} else {
		agg.ring[agg.next] = s
		agg.next = (agg.next + 1) % rpcRingSize
	}
	c.rpcMu.Unlock()

	if fn, ok := c.onRPC.Load().(func(runtime.RPCSpan)); ok && fn != nil {
		fn(sp)
	}
}

// OnRPC installs the per-span observer (runtime.RemoteSpanSource). fn runs
// synchronously on request goroutines after each completed round trip.
func (c *Cluster) OnRPC(fn func(runtime.RPCSpan)) { c.onRPC.Store(fn) }

// RPCWindows aggregates the span windows into engine.RPCWindow rows, ordered
// by node then message type (runtime.RemoteTelemetry).
func (c *Cluster) RPCWindows() []engine.RPCWindow {
	c.rpcMu.Lock()
	out := make([]engine.RPCWindow, 0, len(c.rpc))
	for k, agg := range c.rpc {
		w := engine.RPCWindow{Node: k.node, Type: msgName(k.typ), Count: agg.count}
		n := len(agg.ring)
		if n > 0 {
			rtts := make([]time.Duration, n)
			var wire, agent time.Duration
			for i, s := range agg.ring {
				rtts[i] = s.rtt
				wire += s.wire
				agent += s.agent
			}
			sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
			w.P50 = rtts[(n-1)*50/100]
			w.P95 = rtts[(n-1)*95/100]
			w.P99 = rtts[(n-1)*99/100]
			w.Max = rtts[n-1]
			w.Wire = wire / time.Duration(n)
			w.Agent = agent / time.Duration(n)
		}
		out = append(out, w)
	}
	c.rpcMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// AgentHealth reports each bound agent's latest self-reported health plus the
// control-plane's view of its connection, ordered by node
// (runtime.RemoteTelemetry).
func (c *Cluster) AgentHealth() []engine.AgentHealth {
	c.mu.Lock()
	conns := make([]*aconn, 0, len(c.bound))
	for _, a := range c.bound {
		conns = append(conns, a)
	}
	c.mu.Unlock()
	now := time.Now().UnixNano()
	out := make([]engine.AgentHealth, 0, len(conns))
	for _, a := range conns {
		h := engine.AgentHealth{
			Node:        int(a.node.Load()),
			PID:         a.pid,
			ClockOffset: time.Duration(a.offset.Load()),
		}
		if st, ok := a.stats.Load().(AgentStats); ok {
			h.Goroutines = st.Goroutines
			h.HeapBytes = st.HeapBytes
			h.ResidentBytes = st.ResidentBytes
			h.QueueDepth = st.QueueDepth
			h.BurnBacklog = time.Duration(st.BurnBacklogNS)
			h.Batches = st.Batches
		}
		if lp := a.lastPing.Load(); lp > 0 {
			h.Age = time.Duration(now - lp)
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// ControlRTT returns the median observed control round trip (0 until the
// first ping completes).
func (c *Cluster) ControlRTT() time.Duration {
	c.rttMu.Lock()
	defer c.rttMu.Unlock()
	if len(c.rtts) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), c.rtts...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// Stats returns the latest per-agent counters, ordered by node.
func (c *Cluster) Stats() []AgentStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]AgentStats, 0, len(c.bound))
	for _, a := range c.bound {
		if st, ok := a.stats.Load().(AgentStats); ok {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// AgentPID returns the OS pid of the agent serving a node (-1 if none) — the
// handle the agent-failure tests kill.
func (c *Cluster) AgentPID(node int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a := c.bound[node]; a != nil {
		return a.pid
	}
	return -1
}

// Nodes returns the node ids currently served by an agent.
func (c *Cluster) Nodes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.bound))
	for n := range c.bound {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// StartNodes spawns/adopts and binds agents for nodes 0..n-1 — the initial
// cluster the engine was configured with (churn joins arrive via NodeAdded).
func (c *Cluster) StartNodes(n, cores int) error {
	for i := 0; i < n; i++ {
		if err := c.NodeAdded(i, cores); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts every agent down and releases the listener. Idempotent; safe
// after (or during) a run.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conns := make([]*aconn, 0, len(c.bound))
	for _, a := range c.bound {
		conns = append(conns, a)
	}
	c.bound = make(map[int]*aconn)
	c.mu.Unlock()

	close(c.stopPing)
	for _, a := range conns {
		a.expected.Store(true)
		a.send(msgShutdown, nil)
		a.c.Close()
	}
	c.ln.Close()
drainPool:
	for {
		select {
		case a := <-c.arrivals:
			a.close()
			if a.proc != nil {
				a.proc.Kill()
			}
		default:
			break drainPool
		}
	}
	c.wg.Wait()
}
