package obs

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/calib"
	rtbackend "repro/internal/runtime"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

// TestGoldenRecordReplay pins the record→replay contract byte-for-byte: the
// pinned (scenario, policy, seed) recording's structural event sequence and
// span lines must match the committed golden, and a replay rebuilt from the
// trace alone must reproduce both exactly.
func TestGoldenRecordReplay(t *testing.T) {
	got := GenerateGolden()
	want, err := os.ReadFile("testdata/record_replay.golden")
	if err != nil {
		t.Fatalf("golden missing (run tools/gengolden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("recorded run diverged from golden (regenerate with tools/gengolden ONLY if intended):\n--- golden ---\n%s\n--- got ---\n%s", want, got)
	}

	tr, _, err := GoldenRecord()
	if err != nil {
		t.Fatal(err)
	}
	rep2, rr, err := tr.Replay(context.Background(), ReplayOptions{})
	if err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if rr.Reinjected != 1 {
		t.Fatalf("expected 1 re-injected user command, got %d", rr.Reinjected)
	}
	recSpans := SpanLines(tr.Spans())
	repSpans := SpanLines(TimelineSpans(rep2.Timeline))
	if strings.Join(recSpans, "\n") != strings.Join(repSpans, "\n") {
		t.Fatalf("replayed spans differ:\nrecorded:\n%s\nreplayed:\n%s",
			strings.Join(recSpans, "\n"), strings.Join(repSpans, "\n"))
	}
}

// TestSpanInvariants: the pinned sim run's repartition spans are
// non-overlapping (the four phases tile [start, finish] exactly — checked
// against the finish event's timestamp), non-negative, and conserved: the
// summed replayed tuple weight equals the report's RepartitionReplayed.
func TestSpanInvariants(t *testing.T) {
	tr, rep, err := GoldenRecord()
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("pinned rc run produced no repartition spans")
	}
	if err := CheckSpans(spans, rep); err != nil {
		t.Fatal(err)
	}
	if rep.Repartitions != len(spans) {
		t.Fatalf("%d spans for %d repartitions", len(spans), rep.Repartitions)
	}
	for _, ev := range tr.DecodedEvents() {
		if ev.Span == nil {
			continue
		}
		s := ev.Span
		if got := ev.At.Sub(s.Start); got != s.Total() {
			t.Fatalf("span %s does not tile its window: finish-start=%v, phases sum to %v", s.Operator, got, s.Total())
		}
	}
}

// TestTraceRuntimeRecordConserved records a real-time backend run (the -race
// CI step drives this test): every goroutine-emitted event and sample lands
// in the trace, the ledger stays conserved under observation, and the
// runtime's spans satisfy the same conservation invariant as the sim's.
func TestTraceRuntimeRecordConserved(t *testing.T) {
	sp, err := scenario.ByName("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	rtE, h, err := rtbackend.BuildScenario(sp, "elasticutor", 42,
		rtbackend.ScenarioOptions{Options: rtbackend.Options{Speedup: 40}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := Attach(h, &buf, HeaderForScenario(sp, "runtime", "elasticutor", 42, 40, "", 0),
		RecordOptions{SnapshotEvery: simtime.Second})
	h.Start(context.Background())
	rep, runErr := h.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if err := rec.Finish(rep, h.LostEvents(), runErr); err != nil {
		t.Fatal(err)
	}
	led := rtE.Ledger()
	if !led.Conserved() {
		t.Fatalf("ledger not conserved under recording: %v", led)
	}
	tr, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Backend != "runtime" || tr.Header.Spec == nil {
		t.Fatalf("header incomplete: %+v", tr.Header)
	}
	if len(tr.Events) == 0 || len(tr.Snaps) == 0 || tr.End == nil {
		t.Fatalf("trace incomplete: %d events, %d snaps, end=%v", len(tr.Events), len(tr.Snaps), tr.End)
	}
	if err := CheckSpans(tr.Spans(), rep); err != nil {
		t.Fatal(err)
	}
	if tr.End.Processed != rep.Processed || tr.End.LostEvents != h.LostEvents() {
		t.Fatalf("end record disagrees with report: %+v", tr.End)
	}
	// The recorded structural sequence is exactly the timeline's projection.
	if err := DiffSeq(StructuralSeq(rep.Timeline), StructuralSeq(tr.DecodedEvents())); err != nil {
		t.Fatal(err)
	}
}

// TestExporterMetrics scrapes a finished run and checks the text exposition
// contains the cluster, per-operator, and calibration families (plus pprof
// wiring only when opted in).
func TestExporterMetrics(t *testing.T) {
	sp, err := scenario.ByName("nodedrain")
	if err != nil {
		t.Fatal(err)
	}
	h, err := sp.Start(context.Background(), "elasticutor", 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	traj := calib.NewTrajectory()
	traj.Entries = append(traj.Entries, calib.TrajectoryEntry{Label: "TEST", PerTupleOverheadNS: 123})
	x := NewExporter(h).SetCalibration(traj)

	srv := httptest.NewServer(x.Handler(true))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		"elasticutor_live_nodes ",
		"elasticutor_cores ",
		"elasticutor_latency_window_p99_seconds ",
		"elasticutor_operator_processed_tuples_total{operator=",
		"elasticutor_operator_latency_p99_seconds{operator=",
		"elasticutor_run_lost_events_total ",
		`elasticutor_calib_per_tuple_overhead_ns{label="TEST"} 123`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics scrape missing %q:\n%s", want, text)
		}
	}
	if resp, err := http.Get(srv.URL + "/debug/pprof/"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof opt-in not served: %v %v", resp.StatusCode, err)
	}

	plain := httptest.NewServer(NewExporter(h).Handler(false))
	defer plain.Close()
	if resp, err := http.Get(plain.URL + "/debug/pprof/"); err != nil || resp.StatusCode == http.StatusOK {
		t.Fatalf("pprof served without opt-in: %v %v", resp.StatusCode, err)
	}
}

// TestDecodeRejectsUnknownSchema: the decoder refuses traces from a future
// format version instead of misreading them.
func TestDecodeRejectsUnknownSchema(t *testing.T) {
	in := `{"t":"hdr","hdr":{"schema":"elasticutor-trace/v999","backend":"sim","policy":"rc","seed":1,"duration_ms":1}}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Fatal("future schema accepted")
	}
	if _, err := Decode(strings.NewReader(`{"t":"ev","ev":{"at_ms":0,"kind":"node-join","node":0}}`)); err == nil {
		t.Fatal("headerless trace accepted")
	}
}

// TestReplayRequiresSpec: a trace without an embedded spec cannot be
// rebuilt, and says so.
func TestReplayRequiresSpec(t *testing.T) {
	tr := &Trace{Header: Header{Schema: TraceSchema, Backend: "sim", Policy: "rc"}}
	if _, err := tr.Rebuild(ReplayOptions{}); err == nil {
		t.Fatal("spec-less trace rebuilt")
	}
}
