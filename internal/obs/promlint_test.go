package obs

import (
	"bytes"
	"context"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/calib"
	rtbackend "repro/internal/runtime"
	"repro/internal/scenario"
)

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels string // raw label block, "" when absent
	value  float64
	line   int
}

// promFamily is one metric family as the linter reconstructs it.
type promFamily struct {
	name    string
	typ     string
	help    bool
	samples []promSample
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parseProm parses text-exposition output strictly: every line must be a HELP
// comment, a TYPE comment, or a sample; HELP and TYPE must precede their
// family's samples; families must be contiguous (the format requires all
// lines of one metric as a single group).
func parseProm(t *testing.T, text string) []*promFamily {
	t.Helper()
	var fams []*promFamily
	byName := make(map[string]*promFamily)
	var cur *promFamily
	for i, raw := range strings.Split(text, "\n") {
		n := i + 1
		if raw == "" {
			continue
		}
		if strings.HasPrefix(raw, "#") {
			fields := strings.SplitN(raw, " ", 4)
			if len(fields) < 4 || fields[0] != "#" || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", n, raw)
			}
			name := fields[2]
			if !promNameRe.MatchString(name) {
				t.Fatalf("line %d: invalid metric name %q", n, name)
			}
			if fields[1] == "HELP" {
				if byName[name] != nil {
					t.Fatalf("line %d: duplicate or non-contiguous HELP for %q", n, name)
				}
				cur = &promFamily{name: name, help: true}
				byName[name] = cur
				fams = append(fams, cur)
				continue
			}
			// TYPE: must follow this family's HELP, before any sample.
			if cur == nil || cur.name != name {
				t.Fatalf("line %d: TYPE %s outside its family group", n, name)
			}
			if cur.typ != "" || len(cur.samples) > 0 {
				t.Fatalf("line %d: TYPE %s duplicated or after samples", n, name)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
				cur.typ = fields[3]
			default:
				t.Fatalf("line %d: unknown TYPE %q", n, fields[3])
			}
			continue
		}
		s := parsePromSample(t, n, raw)
		fam := cur
		if fam == nil {
			t.Fatalf("line %d: sample %q before any family", n, s.name)
		}
		base := s.name
		if fam.typ == "histogram" {
			base = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base,
				"_bucket"), "_sum"), "_count")
		}
		if base != fam.name {
			t.Fatalf("line %d: sample %q is not grouped under family %q", n, s.name, fam.name)
		}
		fam.samples = append(fam.samples, s)
	}
	return fams
}

// parsePromSample parses `name{label="v",...} value` with escaped quotes.
func parsePromSample(t *testing.T, n int, raw string) promSample {
	t.Helper()
	name := raw
	labels := ""
	if i := strings.IndexByte(raw, '{'); i >= 0 {
		j := strings.LastIndexByte(raw, '}')
		if j < i {
			t.Fatalf("line %d: unbalanced label braces: %q", n, raw)
		}
		name, labels = raw[:i], raw[i+1:j]
		raw = name + raw[j+1:]
	}
	fields := strings.Fields(raw)
	if len(fields) != 2 {
		t.Fatalf("line %d: want `name value`, got %q", n, raw)
	}
	if !promNameRe.MatchString(fields[0]) {
		t.Fatalf("line %d: invalid sample name %q", n, fields[0])
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		t.Fatalf("line %d: sample value %q: %v", n, fields[1], err)
	}
	for _, pair := range splitPromLabels(labels) {
		k, val, ok := strings.Cut(pair, "=")
		if !ok || !promLabelRe.MatchString(k) {
			t.Fatalf("line %d: malformed label %q", n, pair)
		}
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			t.Fatalf("line %d: unquoted label value %q", n, pair)
		}
	}
	return promSample{name: fields[0], labels: labels, value: v, line: n}
}

// splitPromLabels splits a raw label block on commas outside quoted values.
func splitPromLabels(block string) []string {
	if block == "" {
		return nil
	}
	var out []string
	depth, start := false, 0
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '"':
			if i == 0 || block[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, block[start:i])
				start = i + 1
			}
		}
	}
	return append(out, block[start:])
}

// lintProm applies the naming and structure rules beyond raw syntax.
func lintProm(t *testing.T, fams []*promFamily) {
	t.Helper()
	seen := make(map[string]bool)
	for _, f := range fams {
		if seen[f.name] {
			t.Fatalf("family %q appears twice (non-contiguous group)", f.name)
		}
		seen[f.name] = true
		if !strings.HasPrefix(f.name, "elasticutor_") {
			t.Fatalf("family %q lacks the namespace prefix", f.name)
		}
		if !f.help || f.typ == "" {
			t.Fatalf("family %q missing HELP or TYPE", f.name)
		}
		if len(f.samples) == 0 {
			// Allowed (an operator-labeled family can be empty pre-placement)
			// but every family the exporter emits here should carry samples.
			continue
		}
		switch f.typ {
		case "counter":
			if !strings.HasSuffix(f.name, "_total") {
				t.Fatalf("counter %q must end in _total", f.name)
			}
			for _, s := range f.samples {
				if s.value < 0 {
					t.Fatalf("counter %q has negative sample %g", f.name, s.value)
				}
			}
		case "gauge":
			for _, suf := range []string{"_total", "_sum", "_count", "_bucket"} {
				if strings.HasSuffix(f.name, suf) {
					t.Fatalf("gauge %q uses the reserved suffix %s", f.name, suf)
				}
			}
		case "histogram":
			lintPromHistogram(t, f)
		}
		// Unit discipline: any duration-valued family says so in its name.
		if strings.Contains(f.name, "latency") &&
			!strings.Contains(f.name, "_seconds") && !strings.Contains(f.name, "_weight") &&
			!strings.Contains(f.name, "_share") {
			t.Fatalf("latency family %q does not carry a unit suffix", f.name)
		}
		dup := make(map[string]bool)
		for _, s := range f.samples {
			key := s.name + "{" + s.labels + "}"
			if dup[key] {
				t.Fatalf("duplicate sample %s", key)
			}
			dup[key] = true
		}
	}
}

// lintPromHistogram checks the bucket ladder: cumulative non-decreasing
// counts, a +Inf bucket, and _sum/_count agreement.
func lintPromHistogram(t *testing.T, f *promFamily) {
	t.Helper()
	var last, inf, count float64
	var sawInf, sawSum, sawCount bool
	lastLE := ""
	for _, s := range f.samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le := ""
			for _, pair := range splitPromLabels(s.labels) {
				if k, v, _ := strings.Cut(pair, "="); k == "le" {
					le = strings.Trim(v, `"`)
				}
			}
			if le == "" {
				t.Fatalf("%s bucket without le label", f.name)
			}
			if s.value < last {
				t.Fatalf("%s buckets not cumulative: le=%q count %g after %g (le=%q)",
					f.name, le, s.value, last, lastLE)
			}
			last, lastLE = s.value, le
			if le == "+Inf" {
				sawInf, inf = true, s.value
			}
		case strings.HasSuffix(s.name, "_sum"):
			sawSum = true
		case strings.HasSuffix(s.name, "_count"):
			sawCount, count = true, s.value
		default:
			t.Fatalf("histogram %q has stray sample %q", f.name, s.name)
		}
	}
	if !sawInf || !sawSum || !sawCount {
		t.Fatalf("histogram %q incomplete: +Inf=%v sum=%v count=%v", f.name, sawInf, sawSum, sawCount)
	}
	if inf != count {
		t.Fatalf("histogram %q: +Inf bucket %g != count %g", f.name, inf, count)
	}
}

// TestExporterPrometheusLint scrapes a finished runtime-backend run with every
// optional section wired (ledger, latency anatomy, calibration) and holds the
// output to the text exposition format: HELP/TYPE per family, contiguous
// groups, namespaced names, counter/gauge suffix rules, and a well-formed
// latency histogram.
func TestExporterPrometheusLint(t *testing.T) {
	sp, err := scenario.ByName("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	rtE, h, err := rtbackend.BuildScenario(sp, "elasticutor", 42,
		rtbackend.ScenarioOptions{Options: rtbackend.Options{Speedup: 40}})
	if err != nil {
		t.Fatal(err)
	}
	h.Start(context.Background())
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	traj := calib.NewTrajectory()
	traj.Entries = append(traj.Entries, calib.TrajectoryEntry{
		Label: "LINT", PerTupleOverheadNS: 7, PerEventOverheadNS: 3, TuplesPerSec: 11})
	x := NewExporter(h).SetLedger(rtE.Ledger).SetLatency(rtE.LatencyAnatomy).SetCalibration(traj)

	var buf bytes.Buffer
	x.WriteMetrics(&buf)
	fams := parseProm(t, buf.String())
	lintProm(t, fams)

	want := map[string]bool{
		"elasticutor_latency_seconds":              false,
		"elasticutor_latency_stage_seconds_total":  false,
		"elasticutor_latency_window_p99_seconds":   false,
		"elasticutor_operator_latency_p99_seconds": false,
		"elasticutor_ledger_conserved":             false,
	}
	for _, f := range fams {
		if _, ok := want[f.name]; ok {
			if len(f.samples) == 0 {
				t.Fatalf("family %q emitted without samples", f.name)
			}
			want[f.name] = true
		}
		if f.name == "elasticutor_latency_seconds" && f.typ != "histogram" {
			t.Fatalf("elasticutor_latency_seconds is %q, want histogram", f.typ)
		}
	}
	for name, ok := range want {
		if !ok {
			t.Fatalf("scrape missing family %q:\n%s", name, buf.String())
		}
	}
	_ = fmt.Sprintf // keep fmt imported if assertions above change
}
