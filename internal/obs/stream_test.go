package obs

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testHdrLine is a minimal valid header record for hand-built streams.
var testHdrLine = fmt.Sprintf(
	`{"t":"hdr","hdr":{"schema":%q,"backend":"runtime","policy":"elasticutor","seed":7,"duration_ms":1000}}`,
	TraceSchema) + "\n"

func testEvLine(i int) string {
	return fmt.Sprintf(`{"t":"ev","ev":{"at_ms":%d,"kind":"node-join","node":%d}}`, i, i) + "\n"
}

// TestLiveLateJoinConcurrent hammers a LiveServer from several writer
// goroutines while subscribers join mid-stream: every joiner must receive the
// cached header as its first record and then decode whatever tail it caught
// without a single torn line — the server's per-Write lock is what keeps
// concurrently-written lines from interleaving on the wire.
func TestLiveLateJoinConcurrent(t *testing.T) {
	srv, err := ListenLive("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Write([]byte(testHdrLine)); err != nil {
		t.Fatal(err)
	}

	const writers, lines = 4, 300
	var stop atomic.Bool
	var wwg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wwg.Add(1)
		go func(wr int) {
			defer wwg.Done()
			for i := 0; i < lines && !stop.Load(); i++ {
				srv.Write([]byte(testEvLine(wr*lines + i)))
			}
		}(wr)
	}

	type joiner struct {
		headerFirst bool // the header arrived before any event
		outOfOrder  bool // an event arrived before the header
		events      int
		err         error
	}
	const joiners = 5
	got := make([]joiner, joiners)
	var jwg sync.WaitGroup
	for j := 0; j < joiners; j++ {
		jwg.Add(1)
		go func(j *joiner) {
			defer jwg.Done()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				j.err = err
				return
			}
			defer conn.Close()
			j.err = Stream(conn, StreamHandler{
				Header: func(Header) { j.headerFirst = j.events == 0 },
				Event: func(EventRecord) {
					if !j.headerFirst {
						j.outOfOrder = true
					}
					j.events++
				},
			})
		}(&got[j])
		time.Sleep(2 * time.Millisecond) // stagger the joins across the stream
	}

	wwg.Wait()
	// Give the last joiner a moment on the subscriber list, then cut the
	// stream: Stream must treat the close as a clean end.
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	srv.Close()
	jwg.Wait()

	for i, j := range got {
		if j.err != nil {
			t.Errorf("joiner %d: stream error: %v", i, j.err)
		}
		if !j.headerFirst {
			t.Errorf("joiner %d: never saw the cached header first (out-of-order=%v, %d events)",
				i, j.outOfOrder, j.events)
		}
	}
}

// TestStreamTornTail: a stream cut mid-line — the ordinary tail of a dying
// publisher — ends cleanly with everything before the tear delivered; a
// malformed line with more stream after it is corruption and fails.
func TestStreamTornTail(t *testing.T) {
	torn := testHdrLine + testEvLine(1) + `{"t":"ev","ev":{"at_ms":2,"ki`
	var hdr, events int
	err := Stream(strings.NewReader(torn), StreamHandler{
		Header: func(Header) { hdr++ },
		Event:  func(EventRecord) { events++ },
	})
	if err != nil {
		t.Fatalf("torn final line not tolerated: %v", err)
	}
	if hdr != 1 || events != 1 {
		t.Fatalf("delivered %d headers, %d events before the tear; want 1, 1", hdr, events)
	}

	interior := testHdrLine + `{"t":"ev","ev":{"at_ms":2,"ki` + "\n" + testEvLine(3)
	err = Stream(strings.NewReader(interior), StreamHandler{})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("interior malformed line not rejected: %v", err)
	}
}

// TestDecodeTornTail: same tolerance contract for whole-file decoding — a
// trace whose writer died mid-record still decodes up to the tear.
func TestDecodeTornTail(t *testing.T) {
	torn := testHdrLine + testEvLine(1) + testEvLine(2) + `{"t":"snap","snap":{"at_ms":3`
	tr, err := Decode(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn final line not tolerated: %v", err)
	}
	if len(tr.Events) != 2 || len(tr.Snaps) != 0 {
		t.Fatalf("decoded %d events, %d snaps; want 2, 0", len(tr.Events), len(tr.Snaps))
	}

	interior := testHdrLine + `{"t":"ev","ev":{"at_ms":2,"ki` + "\n" + testEvLine(3)
	if _, err := Decode(strings.NewReader(interior)); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("interior malformed line not rejected: %v", err)
	}
}
