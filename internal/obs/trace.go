// Package obs is the observability layer over the Run handle: a versioned
// NDJSON trace format recording everything a live run exposes (typed events,
// applied commands, periodic snapshots, §3.3 repartition spans), a recorder
// that attaches to any run, a replayer that re-drives a recorded run through
// a fresh handle and diffs the structural event sequence, and a scrapeable
// metrics exporter. On the simulator backend record→replay is deterministic,
// which turns any recorded incident into a regression test (see DESIGN.md
// "Observability layer").
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/engine"
	"repro/internal/runtime"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

// TraceSchema is the trace format version stamped into every header. Bump it
// on any breaking change to the record shapes; the decoder rejects schemas it
// does not know.
const TraceSchema = "elasticutor-trace/v1"

// Header is the first record of every trace: the full rebuild recipe. Spec is
// the resolved scenario embedded verbatim, so a trace file is self-contained
// — replay does not depend on built-in names resolving identically or on the
// original *.json spec still existing on disk.
type Header struct {
	Schema     string         `json:"schema"`
	Backend    string         `json:"backend"` // "sim" | "runtime"
	Policy     string         `json:"policy"`
	Scenario   string         `json:"scenario,omitempty"` // display name
	Seed       uint64         `json:"seed"`
	DurationMS float64        `json:"duration_ms"`
	Speedup    float64        `json:"speedup,omitempty"` // runtime clock compression
	Autoscaler string         `json:"autoscaler,omitempty"`
	MaxNodes   int            `json:"max_nodes,omitempty"`
	Spec       *scenario.Spec `json:"spec,omitempty"`
}

// SpanRecord is the trace form of one engine.RepartitionSpan: the per-phase
// breakdown of a completed §3.3 pause→drain→migrate→reroute cycle. The four
// phase durations tile [start, start+total] exactly.
type SpanRecord struct {
	Operator   string  `json:"op"`
	StartMS    float64 `json:"start_ms"`
	PauseMS    float64 `json:"pause_ms"`
	DrainMS    float64 `json:"drain_ms"`
	MigrateMS  float64 `json:"migrate_ms"`
	RerouteMS  float64 `json:"reroute_ms"`
	Moves      int     `json:"moves"`
	InterMoves int     `json:"inter_moves,omitempty"`
	Bytes      int64   `json:"bytes,omitempty"`
	Replayed   int     `json:"replayed,omitempty"`
	ReplayedW  int64   `json:"replayed_w,omitempty"`
	Aborted    bool    `json:"aborted,omitempty"`
}

// EventRecord is the trace form of one engine.Event.
type EventRecord struct {
	AtMS     float64     `json:"at_ms"`
	Kind     string      `json:"kind"`
	Node     int         `json:"node"`
	Cores    int         `json:"cores,omitempty"`
	Operator string      `json:"op,omitempty"`
	Phase    string      `json:"phase,omitempty"`
	Detail   string      `json:"detail,omitempty"`
	Span     *SpanRecord `json:"span,omitempty"`
}

// CmdRecord is the trace form of one applied engine.Command, with AtMS
// stamped to the virtual apply time — the deterministic re-injection point.
type CmdRecord struct {
	AtMS   float64 `json:"at_ms"`
	Kind   string  `json:"kind"`
	Node   int     `json:"node,omitempty"`
	Cores  int     `json:"cores,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	Origin string  `json:"origin,omitempty"`
	Label  string  `json:"label,omitempty"`
}

// OpRecord is one operator inside a SnapRecord. The latency-anatomy fields
// (hop-latency percentiles over the last folded window, cumulative dominant
// stage) are additive: older elasticutor-trace/v1 readers skip the unknown
// keys and older traces decode with the fields zero.
type OpRecord struct {
	Name          string  `json:"name"`
	Executors     int     `json:"execs"`
	Cores         int     `json:"cores"`
	OfferedRate   float64 `json:"off_rate"`
	ProcessedRate float64 `json:"proc_rate"`
	Offered       int64   `json:"offered"`
	Processed     int64   `json:"processed"`
	Queued        int     `json:"queued"`
	LatP50MS      float64 `json:"lat_p50_ms,omitempty"`
	LatP99MS      float64 `json:"lat_p99_ms,omitempty"`
	DominantStage string  `json:"dom_stage,omitempty"`
	DominantShare float64 `json:"dom_share,omitempty"`
}

// SnapRecord is one periodic engine.Snapshot sample. Rate fields are
// observer-relative (windowed since the previous snapshot by anyone); the
// cumulative Offered/Processed/Blocked counters are not.
type SnapRecord struct {
	AtMS           float64 `json:"at_ms"`
	Nodes          int     `json:"nodes"`
	TotalCores     int     `json:"cores"`
	UsedCores      int     `json:"used"`
	Blocked        int64   `json:"blocked"`
	MigrationBytes int64   `json:"mig_bytes,omitempty"`
	Reassignments  int64   `json:"reassigns,omitempty"`
	Repartitions   int     `json:"repartitions,omitempty"`
	// End-to-end latency quantiles of the last folded metrics window and the
	// dominant latency stage of that window (additive v1 fields, see OpRecord).
	LatencyP50MS  float64    `json:"lat_p50_ms,omitempty"`
	LatencyP95MS  float64    `json:"lat_p95_ms,omitempty"`
	LatencyP99MS  float64    `json:"lat_p99_ms,omitempty"`
	LatencyMaxMS  float64    `json:"lat_max_ms,omitempty"`
	LatencyWeight uint64     `json:"lat_w,omitempty"`
	DominantStage string     `json:"dom_stage,omitempty"`
	DominantShare float64    `json:"dom_share,omitempty"`
	Operators     []OpRecord `json:"ops"`
	// Distributed-plane telemetry (additive v1 fields): present only when
	// the run executed on the distributed backend.
	RPC    []RPCWindowRecord `json:"rpc,omitempty"`
	Agents []AgentRecord     `json:"agents,omitempty"`
}

// RPCRecord is the trace form of one runtime.RPCSpan: the five-stage causal
// decomposition of a control↔agent round trip on the distributed backend.
// Stage durations are wall-clock nanoseconds (integers — these are
// microsecond-scale infrastructure costs, and the tiling invariant
// send+wire+queue+service+reply == rtt is exact); AtMS stays virtual like
// every other record. An additive v1 record: older readers skip the unknown
// "rpc" line type.
type RPCRecord struct {
	AtMS float64 `json:"at_ms"`
	Node int     `json:"node"`
	Type string  `json:"type"` // wire message name: "process", "take", "ping", …

	SendNS    int64 `json:"send_ns"`
	WireNS    int64 `json:"wire_ns"`
	QueueNS   int64 `json:"queue_ns"`
	ServiceNS int64 `json:"service_ns"`
	ReplyNS   int64 `json:"reply_ns"`
	RTTNS     int64 `json:"rtt_ns"`
	OffsetNS  int64 `json:"offset_ns,omitempty"`
	Err       bool  `json:"err,omitempty"`
}

// AnomalyRecord is the trace form of one watchdog anomaly: a live invariant
// that failed mid-run, with the measured violation. Additive v1 record.
type AnomalyRecord struct {
	AtMS   float64 `json:"at_ms"`
	Kind   string  `json:"kind"` // one of the Anomaly* kind constants
	Detail string  `json:"detail,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// RPCWindowRecord is one engine.RPCWindow inside a SnapRecord (distributed
// backend only). Durations are wall-clock nanoseconds.
type RPCWindowRecord struct {
	Node    int    `json:"node"`
	Type    string `json:"type"`
	Count   uint64 `json:"count"`
	P50NS   int64  `json:"p50_ns"`
	P95NS   int64  `json:"p95_ns"`
	P99NS   int64  `json:"p99_ns"`
	MaxNS   int64  `json:"max_ns"`
	WireNS  int64  `json:"wire_ns"`
	AgentNS int64  `json:"agent_ns"`
}

// AgentRecord is one engine.AgentHealth inside a SnapRecord (distributed
// backend only). Durations are wall-clock nanoseconds.
type AgentRecord struct {
	Node          int   `json:"node"`
	PID           int   `json:"pid"`
	Goroutines    int   `json:"goroutines"`
	HeapBytes     int64 `json:"heap"`
	ResidentBytes int64 `json:"resident"`
	QueueDepth    int   `json:"queue"`
	BurnBacklogNS int64 `json:"backlog_ns,omitempty"`
	Batches       int64 `json:"batches,omitempty"`
	OffsetNS      int64 `json:"offset_ns,omitempty"`
	AgeNS         int64 `json:"age_ns,omitempty"`
}

// EndRecord closes a trace with the run's headline totals — enough for a
// reader to sanity-check completeness without parsing a full report.
type EndRecord struct {
	Generated           int64  `json:"generated"`
	Processed           int64  `json:"processed"`
	Blocked             int64  `json:"blocked"`
	Dropped             int64  `json:"dropped"`
	Events              uint64 `json:"events"`
	Repartitions        int    `json:"repartitions"`
	RepartitionReplayed int64  `json:"repartition_replayed"`
	ChurnErrors         int    `json:"churn_errors"`
	LostEvents          int    `json:"lost_events"`
	Err                 string `json:"err,omitempty"`
}

// line is the on-disk shape of one NDJSON trace line: a type tag plus exactly
// one populated payload.
type line struct {
	T    string         `json:"t"` // "hdr" | "ev" | "cmd" | "snap" | "rpc" | "anom" | "end"
	Hdr  *Header        `json:"hdr,omitempty"`
	Ev   *EventRecord   `json:"ev,omitempty"`
	Cmd  *CmdRecord     `json:"cmd,omitempty"`
	Snap *SnapRecord    `json:"snap,omitempty"`
	Rpc  *RPCRecord     `json:"rpc,omitempty"`
	Anom *AnomalyRecord `json:"anom,omitempty"`
	End  *EndRecord     `json:"end,omitempty"`
}

// Trace is a fully decoded trace file.
type Trace struct {
	Header    Header
	Events    []EventRecord
	Commands  []CmdRecord
	Snaps     []SnapRecord
	RPCs      []RPCRecord
	Anomalies []AnomalyRecord
	End       *EndRecord // nil when the recording was cut off
}

// ms converts a virtual duration to trace milliseconds.
func ms(d simtime.Duration) float64 { return simtime.ToMillis(d) }

// msAt converts a virtual time to trace milliseconds.
func msAt(t simtime.Time) float64 { return simtime.ToMillis(t.Sub(simtime.Time(0))) }

// fromMS converts trace milliseconds back to a virtual duration.
func fromMS(v float64) simtime.Duration {
	return simtime.Duration(math.Round(v * float64(simtime.Millisecond)))
}

// eventKinds maps the wire names back to engine kinds; built from the same
// String() the encoder uses so the two can never drift.
var eventKinds = func() map[string]engine.EventKind {
	m := make(map[string]engine.EventKind)
	for k := engine.EventNodeJoin; k <= engine.EventCommandApplied; k++ {
		m[k.String()] = k
	}
	return m
}()

var commandKinds = func() map[string]engine.CommandKind {
	m := make(map[string]engine.CommandKind)
	for k := engine.CmdAddNode; k <= engine.CmdSetRate; k++ {
		m[k.String()] = k
	}
	return m
}()

// encodeEvent converts an engine event to its trace record.
func encodeEvent(ev engine.Event) *EventRecord {
	rec := &EventRecord{
		AtMS:     msAt(ev.At),
		Kind:     ev.Kind.String(),
		Node:     ev.Node,
		Cores:    ev.Cores,
		Operator: ev.Operator,
		Phase:    ev.Phase,
		Detail:   ev.Detail,
	}
	if s := ev.Span; s != nil {
		rec.Span = &SpanRecord{
			Operator:   s.Operator,
			StartMS:    msAt(s.Start),
			PauseMS:    ms(s.Pause),
			DrainMS:    ms(s.Drain),
			MigrateMS:  ms(s.Migrate),
			RerouteMS:  ms(s.Reroute),
			Moves:      s.Moves,
			InterMoves: s.InterMoves,
			Bytes:      s.Bytes,
			Replayed:   s.Replayed,
			ReplayedW:  s.ReplayedW,
			Aborted:    s.Aborted,
		}
	}
	return rec
}

// DecodeEvent converts a trace record back to an engine event. Unknown kinds
// decode to a negative EventKind so structural projections skip them — a
// newer trace remains loadable by an older reader.
func (rec *EventRecord) DecodeEvent() engine.Event {
	kind, ok := eventKinds[rec.Kind]
	if !ok {
		kind = engine.EventKind(-1)
	}
	ev := engine.Event{
		Kind:     kind,
		At:       simtime.Time(0).Add(fromMS(rec.AtMS)),
		Node:     rec.Node,
		Cores:    rec.Cores,
		Operator: rec.Operator,
		Phase:    rec.Phase,
		Detail:   rec.Detail,
	}
	if s := rec.Span; s != nil {
		ev.Span = &engine.RepartitionSpan{
			Operator:   s.Operator,
			Start:      simtime.Time(0).Add(fromMS(s.StartMS)),
			Pause:      fromMS(s.PauseMS),
			Drain:      fromMS(s.DrainMS),
			Migrate:    fromMS(s.MigrateMS),
			Reroute:    fromMS(s.RerouteMS),
			Moves:      s.Moves,
			InterMoves: s.InterMoves,
			Bytes:      s.Bytes,
			Replayed:   s.Replayed,
			ReplayedW:  s.ReplayedW,
			Aborted:    s.Aborted,
		}
	}
	return ev
}

// encodeCommand converts an applied command (At = virtual apply time) to its
// trace record.
func encodeCommand(cmd engine.Command) *CmdRecord {
	return &CmdRecord{
		AtMS:   ms(cmd.At),
		Kind:   cmd.Kind.String(),
		Node:   cmd.Node,
		Cores:  cmd.Cores,
		Factor: cmd.Factor,
		Origin: cmd.Origin,
		Label:  cmd.Label,
	}
}

// DecodeCommand converts a trace record back to an injectable command, with
// At set to the recorded apply time. Unknown kinds return ok=false.
func (rec *CmdRecord) DecodeCommand() (engine.Command, bool) {
	kind, ok := commandKinds[rec.Kind]
	if !ok {
		return engine.Command{}, false
	}
	return engine.Command{
		Kind:   kind,
		Node:   rec.Node,
		Cores:  rec.Cores,
		Factor: rec.Factor,
		At:     fromMS(rec.AtMS),
		Origin: rec.Origin,
		Label:  rec.Label,
	}, true
}

// encodeSnapshot converts an engine snapshot to its trace record.
func encodeSnapshot(s engine.Snapshot) *SnapRecord {
	rec := &SnapRecord{
		AtMS:           msAt(s.Now),
		Nodes:          s.LiveNodes,
		TotalCores:     s.TotalCores,
		UsedCores:      s.UsedCores,
		Blocked:        s.Blocked,
		MigrationBytes: s.MigrationBytes,
		Reassignments:  s.Reassignments,
		Repartitions:   s.Repartitions,
		LatencyP50MS:   ms(s.LatencyP50),
		LatencyP95MS:   ms(s.LatencyP95),
		LatencyP99MS:   ms(s.LatencyP99),
		LatencyMaxMS:   ms(s.LatencyMax),
		LatencyWeight:  s.LatencyWeight,
	}
	if s.DominantShare > 0 {
		rec.DominantStage = s.DominantStage.String()
		rec.DominantShare = s.DominantShare
	}
	for _, o := range s.Operators {
		op := OpRecord{
			Name:          o.Name,
			Executors:     o.Executors,
			Cores:         o.Cores,
			OfferedRate:   o.OfferedRate,
			ProcessedRate: o.ProcessedRate,
			Offered:       o.Offered,
			Processed:     o.Processed,
			Queued:        o.Queued,
			LatP50MS:      ms(o.LatP50),
			LatP99MS:      ms(o.LatP99),
		}
		if o.DominantShare > 0 {
			op.DominantStage = o.DominantStage.String()
			op.DominantShare = o.DominantShare
		}
		rec.Operators = append(rec.Operators, op)
	}
	for _, w := range s.RPC {
		rec.RPC = append(rec.RPC, RPCWindowRecord{
			Node:    w.Node,
			Type:    w.Type,
			Count:   w.Count,
			P50NS:   int64(w.P50),
			P95NS:   int64(w.P95),
			P99NS:   int64(w.P99),
			MaxNS:   int64(w.Max),
			WireNS:  int64(w.Wire),
			AgentNS: int64(w.Agent),
		})
	}
	for _, a := range s.Agents {
		rec.Agents = append(rec.Agents, AgentRecord{
			Node:          a.Node,
			PID:           a.PID,
			Goroutines:    a.Goroutines,
			HeapBytes:     a.HeapBytes,
			ResidentBytes: a.ResidentBytes,
			QueueDepth:    a.QueueDepth,
			BurnBacklogNS: int64(a.BurnBacklog),
			Batches:       a.Batches,
			OffsetNS:      int64(a.ClockOffset),
			AgeNS:         int64(a.Age),
		})
	}
	return rec
}

// encodeRPC converts a completed RPC span to its trace record.
func encodeRPC(sp runtime.RPCSpan) *RPCRecord {
	return &RPCRecord{
		AtMS:      msAt(sp.At),
		Node:      sp.Node,
		Type:      sp.Type,
		SendNS:    int64(sp.SendEnqueue),
		WireNS:    int64(sp.Wire),
		QueueNS:   int64(sp.AgentQueue),
		ServiceNS: int64(sp.AgentService),
		ReplyNS:   int64(sp.Reply),
		RTTNS:     int64(sp.RTT),
		OffsetNS:  int64(sp.Offset),
		Err:       sp.Err,
	}
}

// encodeAnomaly converts a watchdog anomaly to its trace record.
func encodeAnomaly(a Anomaly) *AnomalyRecord {
	return &AnomalyRecord{AtMS: msAt(a.At), Kind: a.Kind, Detail: a.Detail, Value: a.Value}
}

// encodeEnd summarizes a completed report as the trace's closing record.
func encodeEnd(rep *engine.Report, lost int, runErr error) *EndRecord {
	end := &EndRecord{LostEvents: lost}
	if runErr != nil {
		end.Err = runErr.Error()
	}
	if rep != nil {
		end.Generated = rep.Generated
		end.Processed = rep.Processed
		end.Blocked = rep.Blocked
		end.Dropped = rep.Dropped
		end.Events = rep.Events
		end.Repartitions = rep.Repartitions
		end.RepartitionReplayed = rep.RepartitionReplayed
		end.ChurnErrors = len(rep.ChurnErrors)
	}
	return end
}

// Decode parses an NDJSON trace stream. It validates the schema of the
// leading header and tolerates a missing end record (a recording cut off
// mid-run still loads; End stays nil). The same cut-off tolerance extends to a
// torn final line: a recorder killed mid-write leaves a truncated last record,
// which is the ordinary shape of an interrupted trace, not corruption — only a
// malformed line with more trace *after* it is an error.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t := &Trace{}
	n, sawHdr := 0, false
	var pendingErr error // a malformed line is fatal only if it was not the last
	for sc.Scan() {
		n++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			pendingErr = fmt.Errorf("obs: trace line %d: %w", n, err)
			continue
		}
		switch l.T {
		case "hdr":
			if l.Hdr == nil {
				return nil, fmt.Errorf("obs: trace line %d: hdr record without payload", n)
			}
			if l.Hdr.Schema != TraceSchema {
				return nil, fmt.Errorf("obs: trace line %d: unknown schema %q (want %s)", n, l.Hdr.Schema, TraceSchema)
			}
			t.Header = *l.Hdr
			sawHdr = true
		case "ev":
			if l.Ev != nil {
				t.Events = append(t.Events, *l.Ev)
			}
		case "cmd":
			if l.Cmd != nil {
				t.Commands = append(t.Commands, *l.Cmd)
			}
		case "snap":
			if l.Snap != nil {
				t.Snaps = append(t.Snaps, *l.Snap)
			}
		case "rpc":
			if l.Rpc != nil {
				t.RPCs = append(t.RPCs, *l.Rpc)
			}
		case "anom":
			if l.Anom != nil {
				t.Anomalies = append(t.Anomalies, *l.Anom)
			}
		case "end":
			t.End = l.End
		default:
			// Skip unknown record types: a newer writer stays readable.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: trace: %w", err)
	}
	if !sawHdr {
		return nil, fmt.Errorf("obs: trace has no header record")
	}
	return t, nil
}

// Load reads and decodes a trace file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

// DecodedEvents returns the trace's events in engine form.
func (t *Trace) DecodedEvents() []engine.Event {
	out := make([]engine.Event, 0, len(t.Events))
	for i := range t.Events {
		out = append(out, t.Events[i].DecodeEvent())
	}
	return out
}

// Spans returns the repartition spans recorded in the trace, in completion
// order.
func (t *Trace) Spans() []SpanRecord {
	var out []SpanRecord
	for i := range t.Events {
		if t.Events[i].Span != nil {
			out = append(out, *t.Events[i].Span)
		}
	}
	return out
}
