package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/engine"
	"repro/internal/run"
	"repro/internal/runtime"
	"repro/internal/simtime"
)

// RecordOptions tunes a recording session.
type RecordOptions struct {
	// SnapshotEvery is the virtual-time cadence of periodic snapshot
	// samples; 0 disables sampling (events and commands still record).
	SnapshotEvery simtime.Duration
	// Flush, when set, flushes the underlying writer after every record —
	// the live-streaming mode (a console tail sees each event as it
	// happens). Off, records flush at buffer boundaries and on Finish.
	Flush bool
}

// Recorder writes a run's NDJSON trace as it executes. Attach wires it onto
// an unstarted handle; every typed event, applied command, and periodic
// snapshot then streams to the writer in emission order. Recording is pure
// observation: on the simulator it never touches the engine's event heap, so
// a recorded run stays byte-identical to an unrecorded one.
//
// Writers are called from the run's emitting goroutines (several at once on
// the real-time backend); the recorder serializes them internally. Call
// Finish after Wait to append the end record and flush.
type Recorder struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error // first write error; subsequent records are dropped

	flush bool
	done  bool

	rpcSeen map[string]uint64 // per-type span counter for hot-path sampling
}

// Attach creates a recorder on w and wires it onto an unstarted run handle.
// hdr's Schema is stamped; the header record is written immediately so even
// a cut-off recording identifies itself.
func Attach(h *run.Run, w io.Writer, hdr Header, opt RecordOptions) *Recorder {
	hdr.Schema = TraceSchema
	r := &Recorder{w: bufio.NewWriterSize(w, 32*1024), flush: opt.Flush}
	r.writeLine(line{T: "hdr", Hdr: &hdr})
	h.Observe(func(ev engine.Event) { r.writeLine(line{T: "ev", Ev: encodeEvent(ev)}) })
	h.ObserveCommands(func(cmd engine.Command) { r.writeLine(line{T: "cmd", Cmd: encodeCommand(cmd)}) })
	if opt.SnapshotEvery > 0 {
		h.SampleEvery(opt.SnapshotEvery, func(s engine.Snapshot) {
			r.writeLine(line{T: "snap", Snap: encodeSnapshot(s)})
		})
	}
	return r
}

// rpcSampleEvery thins the two hot-path span populations: every batch is a
// "process" round trip and every stats tick a "ping", so recording each would
// dwarf the rest of the trace. Rarer types (migrations, binds) record fully.
const rpcSampleEvery = 128

// RecordRPC appends one RPC span record, sampling the hot-path types: wire
// this as (or into) the engine's ObserveRPC observer on the distributed
// backend. Infrequent span types record every occurrence; "process" and
// "ping" record 1-in-128 per type.
func (r *Recorder) RecordRPC(sp runtime.RPCSpan) {
	if sp.Type == "process" || sp.Type == "ping" {
		r.mu.Lock()
		if r.rpcSeen == nil {
			r.rpcSeen = make(map[string]uint64)
		}
		n := r.rpcSeen[sp.Type]
		r.rpcSeen[sp.Type] = n + 1
		r.mu.Unlock()
		if n%rpcSampleEvery != 0 {
			return
		}
	}
	r.writeLine(line{T: "rpc", Rpc: encodeRPC(sp)})
}

// RecordAnomaly appends one watchdog anomaly record: wire this as (or into)
// the watchdog's OnAnomaly observer. Anomalies are rare by construction and
// never sampled.
func (r *Recorder) RecordAnomaly(a Anomaly) {
	r.writeLine(line{T: "anom", Anom: encodeAnomaly(a)})
}

// writeLine appends one NDJSON record.
func (r *Recorder) writeLine(l line) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil || r.done {
		return
	}
	b, err := json.Marshal(l)
	if err != nil {
		r.err = fmt.Errorf("obs: encode trace record: %w", err)
		return
	}
	if _, err := r.w.Write(append(b, '\n')); err != nil {
		r.err = fmt.Errorf("obs: write trace: %w", err)
		return
	}
	if r.flush {
		if err := r.w.Flush(); err != nil {
			r.err = fmt.Errorf("obs: flush trace: %w", err)
		}
	}
}

// Finish appends the end record (headline totals from the completed report,
// the handle's lost-event count, and the run error if any) and flushes.
// Call it after Wait; it returns the first error of the whole recording.
func (r *Recorder) Finish(rep *engine.Report, lost int, runErr error) error {
	r.writeLine(line{T: "end", End: encodeEnd(rep, lost, runErr)})
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done = true
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = fmt.Errorf("obs: flush trace: %w", err)
	}
	return r.err
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}
