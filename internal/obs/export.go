package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"

	"repro/internal/calib"
	"repro/internal/run"
	rtbackend "repro/internal/runtime"
	"repro/internal/simtime"
)

// Exporter folds a live run's metrics into a scrapeable Prometheus-style
// text endpoint. Every scrape takes one Snapshot through the handle (safe
// points on the simulator, the striped-counter fold on the real-time
// backend), so scraping never perturbs the run — but note the Snapshot rate
// fields are observer-relative; the exporter publishes only the cumulative
// counters plus gauges, which are independent of scrape cadence.
type Exporter struct {
	h *run.Run

	mu     sync.Mutex
	ledger func() rtbackend.Ledger
	traj   *calib.Trajectory
}

// NewExporter wraps a run handle.
func NewExporter(h *run.Run) *Exporter { return &Exporter{h: h} }

// SetLedger adds the runtime backend's conservation ledger to the scrape
// (pass engine.Ledger); the simulator has no ledger and skips it.
func (x *Exporter) SetLedger(fn func() rtbackend.Ledger) *Exporter {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ledger = fn
	return x
}

// SetCalibration folds a CALIB_N.json trajectory into the scrape: the
// per-tuple and per-event overheads of every recorded entry become labeled
// gauges, so dashboards can plot measured hot-path cost next to live rates.
func (x *Exporter) SetCalibration(tr *calib.Trajectory) *Exporter {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.traj = tr
	return x
}

// escapeLabel escapes a metric label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WriteMetrics renders one scrape in the text exposition format.
func (x *Exporter) WriteMetrics(w io.Writer) {
	s := x.h.Snapshot()
	p := func(format string, args ...interface{}) { fmt.Fprintf(w, format, args...) }

	p("# HELP elasticutor_virtual_seconds Virtual run time at scrape.\n")
	p("# TYPE elasticutor_virtual_seconds gauge\n")
	p("elasticutor_virtual_seconds %g\n", simtime.ToMillis(s.Now.Sub(simtime.Time(0)))/1e3)
	p("# TYPE elasticutor_live_nodes gauge\n")
	p("elasticutor_live_nodes %d\n", s.LiveNodes)
	p("# TYPE elasticutor_cores_total gauge\n")
	p("elasticutor_cores_total %d\n", s.TotalCores)
	p("# TYPE elasticutor_cores_used gauge\n")
	p("elasticutor_cores_used %d\n", s.UsedCores)
	p("# HELP elasticutor_blocked_tuples_total Tuple weight refused by source backpressure since start.\n")
	p("# TYPE elasticutor_blocked_tuples_total counter\n")
	p("elasticutor_blocked_tuples_total %d\n", s.Blocked)
	p("# TYPE elasticutor_migration_bytes_total counter\n")
	p("elasticutor_migration_bytes_total %d\n", s.MigrationBytes)
	p("# TYPE elasticutor_reassignments_total counter\n")
	p("elasticutor_reassignments_total %d\n", s.Reassignments)
	p("# HELP elasticutor_repartitions_total Completed section-3.3 repartition protocols.\n")
	p("# TYPE elasticutor_repartitions_total counter\n")
	p("elasticutor_repartitions_total %d\n", s.Repartitions)

	p("# HELP elasticutor_operator_offered_tuples_total Cumulative tuple weight admitted toward the operator.\n")
	for _, o := range s.Operators {
		l := escapeLabel(o.Name)
		p("elasticutor_operator_executors{operator=%q} %d\n", l, o.Executors)
		p("elasticutor_operator_cores{operator=%q} %d\n", l, o.Cores)
		p("elasticutor_operator_offered_tuples_total{operator=%q} %d\n", l, o.Offered)
		p("elasticutor_operator_processed_tuples_total{operator=%q} %d\n", l, o.Processed)
		p("elasticutor_operator_queued_tuples{operator=%q} %d\n", l, o.Queued)
	}

	p("# HELP elasticutor_run_lost_events_total Events dropped from the lossy Events channel (the timeline keeps them).\n")
	p("# TYPE elasticutor_run_lost_events_total counter\n")
	p("elasticutor_run_lost_events_total %d\n", x.h.LostEvents())

	x.mu.Lock()
	ledger, traj := x.ledger, x.traj
	x.mu.Unlock()
	if ledger != nil {
		led := ledger()
		p("# HELP elasticutor_ledger_admitted_tuples_total Runtime conservation ledger (admitted = processed + drops).\n")
		p("elasticutor_ledger_admitted_tuples_total %d\n", led.Admitted)
		p("elasticutor_ledger_processed_tuples_total %d\n", led.Processed)
		p("elasticutor_ledger_dropped_failure_tuples_total %d\n", led.DroppedFailure)
		p("elasticutor_ledger_dropped_shutdown_tuples_total %d\n", led.DroppedShutdown)
		p("elasticutor_ledger_blocked_tuples_total %d\n", led.Blocked)
		conserved := 0
		if led.Conserved() {
			conserved = 1
		}
		p("elasticutor_ledger_conserved %d\n", conserved)
	}
	if traj != nil {
		p("# HELP elasticutor_calib_per_tuple_overhead_ns Measured per-tuple hot-path overhead (tools/calibrate trajectory).\n")
		p("# TYPE elasticutor_calib_per_tuple_overhead_ns gauge\n")
		entries := append([]calib.TrajectoryEntry(nil), traj.Entries...)
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Label < entries[j].Label })
		for _, e := range entries {
			l := escapeLabel(e.Label)
			p("elasticutor_calib_per_tuple_overhead_ns{label=%q} %d\n", l, e.PerTupleOverheadNS)
			if e.PerEventOverheadNS > 0 {
				p("elasticutor_calib_per_event_overhead_ns{label=%q} %d\n", l, e.PerEventOverheadNS)
			}
			if e.TuplesPerSec > 0 {
				p("elasticutor_calib_tuples_per_sec{label=%q} %g\n", l, e.TuplesPerSec)
			}
		}
	}
}

// ServeHTTP serves one /metrics scrape.
func (x *Exporter) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	x.WriteMetrics(w)
}

// Handler returns the exporter's mux: /metrics always, plus the net/http/
// pprof endpoints under /debug/pprof/ when withPprof is set (opt-in: the
// profiler is wired onto this private mux, never the default one).
func (x *Exporter) Handler(withPprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", x)
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve starts the exporter's HTTP listener on addr and returns the bound
// address (addr may use port 0) and a shutdown func. The server goroutine
// lives until close is called; serve errors after shutdown are discarded.
func (x *Exporter) Serve(addr string, withPprof bool) (bound string, close func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: x.Handler(withPprof)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
