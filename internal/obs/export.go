package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"

	"repro/internal/calib"
	"repro/internal/metrics"
	"repro/internal/run"
	rtbackend "repro/internal/runtime"
	"repro/internal/simtime"
)

// Exporter folds a live run's metrics into a scrapeable Prometheus-style
// text endpoint. Every scrape takes one Snapshot through the handle (safe
// points on the simulator, the striped-counter fold on the real-time
// backend), so scraping never perturbs the run — but note the Snapshot rate
// fields are observer-relative; the exporter publishes only the cumulative
// counters plus gauges, which are independent of scrape cadence.
type Exporter struct {
	h *run.Run

	mu      sync.Mutex
	ledger  func() rtbackend.Ledger
	latency func() (*metrics.Histogram, *metrics.StageSet)
	traj    *calib.Trajectory
	wd      *Watchdog
}

// NewExporter wraps a run handle.
func NewExporter(h *run.Run) *Exporter { return &Exporter{h: h} }

// SetLedger adds the runtime backend's conservation ledger to the scrape
// (pass engine.Ledger); the simulator has no ledger and skips it.
func (x *Exporter) SetLedger(fn func() rtbackend.Ledger) *Exporter {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ledger = fn
	return x
}

// SetLatency adds the backend's cumulative latency anatomy to the scrape:
// the end-to-end sink histogram becomes a proper Prometheus histogram family
// (cumulative le buckets, _sum, _count) and the traced stage decomposition a
// per-stage time counter. The runtime backend's engine.LatencyAnatomy is the
// intended accessor; fn must be safe to call from the scrape goroutine.
func (x *Exporter) SetLatency(fn func() (*metrics.Histogram, *metrics.StageSet)) *Exporter {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.latency = fn
	return x
}

// SetWatchdog folds a watchdog's anomaly counters into the scrape: every
// kind is emitted (zero until it fires), so alert rules can reference the
// series before anything goes wrong.
func (x *Exporter) SetWatchdog(w *Watchdog) *Exporter {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.wd = w
	return x
}

// SetCalibration folds a CALIB_N.json trajectory into the scrape: the
// per-tuple and per-event overheads of every recorded entry become labeled
// gauges, so dashboards can plot measured hot-path cost next to live rates.
func (x *Exporter) SetCalibration(tr *calib.Trajectory) *Exporter {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.traj = tr
	return x
}

// escapeLabel escapes a metric label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// latencyBuckets is the fixed le ladder of the exported latency histogram, in
// seconds. Cumulative counts come from Histogram.CumulativeLE, so the exported
// buckets are exact at the recorder's internal bucket granularity.
var latencyBuckets = []simtime.Duration{
	250 * simtime.Microsecond, 500 * simtime.Microsecond,
	simtime.Millisecond, 2500 * simtime.Microsecond, 5 * simtime.Millisecond,
	10 * simtime.Millisecond, 25 * simtime.Millisecond, 50 * simtime.Millisecond,
	100 * simtime.Millisecond, 250 * simtime.Millisecond, 500 * simtime.Millisecond,
	simtime.Second, 2500 * simtime.Millisecond, 5 * simtime.Second, 10 * simtime.Second,
}

// WriteMetrics renders one scrape in the text exposition format. Every metric
// family is emitted as one contiguous group with its HELP and TYPE lines, as
// the format requires; TestExporterPrometheusLint pins that discipline.
func (x *Exporter) WriteMetrics(w io.Writer) {
	s := x.h.Snapshot()
	p := func(format string, args ...interface{}) { fmt.Fprintf(w, format, args...) }
	fam := func(name, help, typ string) {
		p("# HELP %s %s\n", name, help)
		p("# TYPE %s %s\n", name, typ)
	}

	fam("elasticutor_virtual_seconds", "Virtual run time at scrape.", "gauge")
	p("elasticutor_virtual_seconds %g\n", simtime.ToMillis(s.Now.Sub(simtime.Time(0)))/1e3)
	fam("elasticutor_live_nodes", "Cluster nodes alive.", "gauge")
	p("elasticutor_live_nodes %d\n", s.LiveNodes)
	fam("elasticutor_cores", "Cores on live nodes.", "gauge")
	p("elasticutor_cores %d\n", s.TotalCores)
	fam("elasticutor_cores_used", "Cores granted or reserved on live nodes.", "gauge")
	p("elasticutor_cores_used %d\n", s.UsedCores)
	fam("elasticutor_blocked_tuples_total", "Tuple weight refused by source backpressure since start.", "counter")
	p("elasticutor_blocked_tuples_total %d\n", s.Blocked)
	fam("elasticutor_migration_bytes_total", "State bytes moved by reassignments and repartitions.", "counter")
	p("elasticutor_migration_bytes_total %d\n", s.MigrationBytes)
	fam("elasticutor_reassignments_total", "Executor-level shard reassignments.", "counter")
	p("elasticutor_reassignments_total %d\n", s.Reassignments)
	fam("elasticutor_repartitions_total", "Completed section-3.3 repartition protocols.", "counter")
	p("elasticutor_repartitions_total %d\n", s.Repartitions)

	// Windowed end-to-end latency quantiles: the last folded metrics window,
	// identical for every observer (unlike the snapshot's rate fields).
	fam("elasticutor_latency_window_p50_seconds", "End-to-end latency p50 of the last metrics window.", "gauge")
	p("elasticutor_latency_window_p50_seconds %g\n", s.LatencyP50.Seconds())
	fam("elasticutor_latency_window_p95_seconds", "End-to-end latency p95 of the last metrics window.", "gauge")
	p("elasticutor_latency_window_p95_seconds %g\n", s.LatencyP95.Seconds())
	fam("elasticutor_latency_window_p99_seconds", "End-to-end latency p99 of the last metrics window.", "gauge")
	p("elasticutor_latency_window_p99_seconds %g\n", s.LatencyP99.Seconds())
	fam("elasticutor_latency_window_max_seconds", "End-to-end latency max of the last metrics window.", "gauge")
	p("elasticutor_latency_window_max_seconds %g\n", s.LatencyMax.Seconds())
	fam("elasticutor_latency_window_weight", "Weighted sample count of the last latency window.", "gauge")
	p("elasticutor_latency_window_weight %d\n", s.LatencyWeight)
	fam("elasticutor_latency_window_dominant_share", "Share of the last window's attributed latency in its dominant stage.", "gauge")
	p("elasticutor_latency_window_dominant_share{stage=%q} %g\n", s.DominantStage.String(), s.DominantShare)

	fam("elasticutor_operator_executors", "Live executors per operator.", "gauge")
	for _, o := range s.Operators {
		p("elasticutor_operator_executors{operator=%q} %d\n", escapeLabel(o.Name), o.Executors)
	}
	fam("elasticutor_operator_cores", "Core grants per operator.", "gauge")
	for _, o := range s.Operators {
		p("elasticutor_operator_cores{operator=%q} %d\n", escapeLabel(o.Name), o.Cores)
	}
	fam("elasticutor_operator_offered_tuples_total", "Cumulative tuple weight admitted toward the operator.", "counter")
	for _, o := range s.Operators {
		p("elasticutor_operator_offered_tuples_total{operator=%q} %d\n", escapeLabel(o.Name), o.Offered)
	}
	fam("elasticutor_operator_processed_tuples_total", "Cumulative tuple weight processed by the operator.", "counter")
	for _, o := range s.Operators {
		p("elasticutor_operator_processed_tuples_total{operator=%q} %d\n", escapeLabel(o.Name), o.Processed)
	}
	fam("elasticutor_operator_queued_tuples", "Tuple weight admitted but not yet processed.", "gauge")
	for _, o := range s.Operators {
		p("elasticutor_operator_queued_tuples{operator=%q} %d\n", escapeLabel(o.Name), o.Queued)
	}
	fam("elasticutor_operator_latency_p50_seconds", "Hop latency p50 of the operator's last anatomy window.", "gauge")
	for _, o := range s.Operators {
		p("elasticutor_operator_latency_p50_seconds{operator=%q} %g\n", escapeLabel(o.Name), o.LatP50.Seconds())
	}
	fam("elasticutor_operator_latency_p99_seconds", "Hop latency p99 of the operator's last anatomy window.", "gauge")
	for _, o := range s.Operators {
		p("elasticutor_operator_latency_p99_seconds{operator=%q} %g\n", escapeLabel(o.Name), o.LatP99.Seconds())
	}
	fam("elasticutor_operator_dominant_share", "Share of the operator's cumulative attributed latency in its dominant stage.", "gauge")
	for _, o := range s.Operators {
		p("elasticutor_operator_dominant_share{operator=%q,stage=%q} %g\n",
			escapeLabel(o.Name), o.DominantStage.String(), o.DominantShare)
	}

	fam("elasticutor_run_lost_events_total", "Events dropped from the lossy Events channel (the timeline keeps them).", "counter")
	p("elasticutor_run_lost_events_total %d\n", x.h.LostEvents())

	// Distributed-plane telemetry: present only when the run executes on the
	// distributed backend (the snapshot carries RPC windows and agent health).
	// These are wall-clock measurements of the control↔agent infrastructure.
	if len(s.RPC) > 0 {
		fam("elasticutor_rpc_requests_total", "Control-to-agent requests completed, per node and message type (error replies included).", "counter")
		for _, w := range s.RPC {
			p("elasticutor_rpc_requests_total{node=\"%d\",type=%q} %d\n", w.Node, escapeLabel(w.Type), w.Count)
		}
		fam("elasticutor_rpc_rtt_p50_seconds", "RPC round-trip p50 over the recent sample window (wall clock).", "gauge")
		for _, w := range s.RPC {
			p("elasticutor_rpc_rtt_p50_seconds{node=\"%d\",type=%q} %g\n", w.Node, escapeLabel(w.Type), w.P50.Seconds())
		}
		fam("elasticutor_rpc_rtt_p99_seconds", "RPC round-trip p99 over the recent sample window (wall clock).", "gauge")
		for _, w := range s.RPC {
			p("elasticutor_rpc_rtt_p99_seconds{node=\"%d\",type=%q} %g\n", w.Node, escapeLabel(w.Type), w.P99.Seconds())
		}
		fam("elasticutor_rpc_wire_seconds", "Mean per-request time on the wire and control plane over the window (RTT minus agent time).", "gauge")
		for _, w := range s.RPC {
			p("elasticutor_rpc_wire_seconds{node=\"%d\",type=%q} %g\n", w.Node, escapeLabel(w.Type), w.Wire.Seconds())
		}
		fam("elasticutor_rpc_agent_seconds", "Mean per-request time inside the agent (queue + service) over the window.", "gauge")
		for _, w := range s.RPC {
			p("elasticutor_rpc_agent_seconds{node=\"%d\",type=%q} %g\n", w.Node, escapeLabel(w.Type), w.Agent.Seconds())
		}
	}
	if len(s.Agents) > 0 {
		fam("elasticutor_agent_goroutines", "Goroutines in the agent process (self-reported on the stats tick).", "gauge")
		for _, a := range s.Agents {
			p("elasticutor_agent_goroutines{node=\"%d\"} %d\n", a.Node, a.Goroutines)
		}
		fam("elasticutor_agent_heap_bytes", "Agent heap in use (self-reported).", "gauge")
		for _, a := range s.Agents {
			p("elasticutor_agent_heap_bytes{node=\"%d\"} %d\n", a.Node, a.HeapBytes)
		}
		fam("elasticutor_agent_resident_bytes", "Shard payload bytes resident in the agent.", "gauge")
		for _, a := range s.Agents {
			p("elasticutor_agent_resident_bytes{node=\"%d\"} %d\n", a.Node, a.ResidentBytes)
		}
		fam("elasticutor_agent_queue_depth", "Requests accepted by the agent but not yet completed.", "gauge")
		for _, a := range s.Agents {
			p("elasticutor_agent_queue_depth{node=\"%d\"} %d\n", a.Node, a.QueueDepth)
		}
		fam("elasticutor_agent_burn_backlog_seconds", "Process wall cost admitted by the agent but not yet burned.", "gauge")
		for _, a := range s.Agents {
			p("elasticutor_agent_burn_backlog_seconds{node=\"%d\"} %g\n", a.Node, a.BurnBacklog.Seconds())
		}
		fam("elasticutor_agent_staleness_seconds", "Wall time since the agent's last successful ping reply.", "gauge")
		for _, a := range s.Agents {
			p("elasticutor_agent_staleness_seconds{node=\"%d\"} %g\n", a.Node, a.Age.Seconds())
		}
	}

	x.mu.Lock()
	ledger, latency, traj, wd := x.ledger, x.latency, x.traj, x.wd
	x.mu.Unlock()
	if wd != nil {
		counts := wd.Counts()
		fam("elasticutor_watchdog_anomalies_total", "Invariant-watchdog anomalies detected, per kind.", "counter")
		for _, kind := range anomalyKinds {
			p("elasticutor_watchdog_anomalies_total{kind=%q} %d\n", kind, counts[kind])
		}
	}
	if ledger != nil {
		led := ledger()
		fam("elasticutor_ledger_admitted_tuples_total", "Runtime conservation ledger: tuple weight admitted.", "counter")
		p("elasticutor_ledger_admitted_tuples_total %d\n", led.Admitted)
		fam("elasticutor_ledger_processed_tuples_total", "Runtime conservation ledger: tuple weight processed.", "counter")
		p("elasticutor_ledger_processed_tuples_total %d\n", led.Processed)
		fam("elasticutor_ledger_dropped_failure_tuples_total", "Runtime conservation ledger: tuple weight destroyed by node failures.", "counter")
		p("elasticutor_ledger_dropped_failure_tuples_total %d\n", led.DroppedFailure)
		fam("elasticutor_ledger_dropped_shutdown_tuples_total", "Runtime conservation ledger: tuple weight swept at shutdown.", "counter")
		p("elasticutor_ledger_dropped_shutdown_tuples_total %d\n", led.DroppedShutdown)
		fam("elasticutor_ledger_blocked_tuples_total", "Runtime conservation ledger: tuple weight refused at the source.", "counter")
		p("elasticutor_ledger_blocked_tuples_total %d\n", led.Blocked)
		conserved := 0
		if led.Conserved() {
			conserved = 1
		}
		fam("elasticutor_ledger_conserved", "1 when admitted = processed + drops.", "gauge")
		p("elasticutor_ledger_conserved %d\n", conserved)
	}
	if latency != nil {
		hist, stages := latency()
		fam("elasticutor_latency_seconds", "End-to-end sink latency since warm-up (cumulative histogram).", "histogram")
		for _, le := range latencyBuckets {
			p("elasticutor_latency_seconds_bucket{le=%q} %d\n",
				fmt.Sprintf("%g", le.Seconds()), hist.CumulativeLE(le))
		}
		p("elasticutor_latency_seconds_bucket{le=\"+Inf\"} %d\n", hist.Count())
		p("elasticutor_latency_seconds_sum %g\n", hist.Sum().Seconds())
		p("elasticutor_latency_seconds_count %d\n", hist.Count())
		fam("elasticutor_latency_stage_seconds_total", "Attributed latency per stage across traced sink samples.", "counter")
		for _, st := range []metrics.Stage{metrics.StageQueue, metrics.StageService, metrics.StageRepartition, metrics.StageMigration} {
			p("elasticutor_latency_stage_seconds_total{stage=%q} %g\n",
				st.String(), stages.Stage(st).Sum().Seconds())
		}
	}
	if traj != nil {
		entries := append([]calib.TrajectoryEntry(nil), traj.Entries...)
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Label < entries[j].Label })
		fam("elasticutor_calib_per_tuple_overhead_ns", "Measured per-tuple hot-path overhead (tools/calibrate trajectory).", "gauge")
		for _, e := range entries {
			p("elasticutor_calib_per_tuple_overhead_ns{label=%q} %d\n", escapeLabel(e.Label), e.PerTupleOverheadNS)
		}
		fam("elasticutor_calib_per_event_overhead_ns", "Measured per-event hot-path overhead (tools/calibrate trajectory).", "gauge")
		for _, e := range entries {
			if e.PerEventOverheadNS > 0 {
				p("elasticutor_calib_per_event_overhead_ns{label=%q} %d\n", escapeLabel(e.Label), e.PerEventOverheadNS)
			}
		}
		fam("elasticutor_calib_tuples_per_sec", "Measured hot-path throughput (tools/calibrate trajectory).", "gauge")
		for _, e := range entries {
			if e.TuplesPerSec > 0 {
				p("elasticutor_calib_tuples_per_sec{label=%q} %g\n", escapeLabel(e.Label), e.TuplesPerSec)
			}
		}
	}
}

// ServeHTTP serves one /metrics scrape.
func (x *Exporter) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	x.WriteMetrics(w)
}

// Handler returns the exporter's mux: /metrics always, plus the net/http/
// pprof endpoints under /debug/pprof/ when withPprof is set (opt-in: the
// profiler is wired onto this private mux, never the default one).
func (x *Exporter) Handler(withPprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", x)
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve starts the exporter's HTTP listener on addr and returns the bound
// address (addr may use port 0) and a shutdown func. The server goroutine
// lives until close is called; serve errors after shutdown are discarded.
func (x *Exporter) Serve(addr string, withPprof bool) (bound string, close func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: x.Handler(withPprof)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
