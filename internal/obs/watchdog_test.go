package obs

import (
	"bytes"
	"context"
	"os"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/engine"
	rtbackend "repro/internal/runtime"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

// The dist-backend tests below spawn agent processes by re-executing the test
// binary; the re-exec must short-circuit into the agent loop.
func TestMain(m *testing.M) {
	dist.MainIfAgent()
	os.Exit(m.Run())
}

// kinds asserts the watchdog fired exactly the given multiset of anomaly
// kinds, in order.
func kinds(t *testing.T, w *Watchdog, want ...string) {
	t.Helper()
	got := w.Anomalies()
	if len(got) != len(want) {
		t.Fatalf("fired %d anomalies, want %d: %+v", len(got), len(want), got)
	}
	for i, a := range got {
		if a.Kind != want[i] {
			t.Fatalf("anomaly %d: kind %q, want %q (%+v)", i, a.Kind, want[i], a)
		}
	}
}

// TestWatchdogLedgerDrift injects a ledger that lost weight (admitted less
// than the accounted outcomes) and checks the detector fires exactly once no
// matter how many check ticks see the fault — and never on a healthy or
// merely in-flight ledger.
func TestWatchdogLedgerDrift(t *testing.T) {
	bad := rtbackend.Ledger{Admitted: 100, Processed: 90, DroppedFailure: 20}
	w := NewWatchdog(WatchdogOptions{Ledger: func() rtbackend.Ledger { return bad }})
	for i := 0; i < 3; i++ {
		w.Check(engine.Snapshot{Now: simtime.Time(0).Add(simtime.Duration(i) * simtime.Second)})
	}
	kinds(t, w, AnomalyLedgerDrift)
	if v := w.Anomalies()[0].Value; v != -10 {
		t.Fatalf("drift value = %g, want -10", v)
	}

	// Positive residue is in-flight work, not drift.
	inflight := NewWatchdog(WatchdogOptions{Ledger: func() rtbackend.Ledger {
		return rtbackend.Ledger{Admitted: 100, Processed: 60}
	}})
	inflight.Check(engine.Snapshot{})
	kinds(t, inflight)
}

// TestWatchdogSpanTiling injects a repartition finish event whose timestamp
// does not sit at start + phase-sum and checks exactly one span-tiling
// anomaly; a correctly tiled finish stays silent.
func TestWatchdogSpanTiling(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{})
	span := &engine.RepartitionSpan{
		Operator: "join",
		Start:    simtime.Time(0).Add(simtime.Second),
		Pause:    10 * simtime.Millisecond,
		Drain:    20 * simtime.Millisecond,
		Migrate:  30 * simtime.Millisecond,
		Reroute:  40 * simtime.Millisecond,
	}
	finish := func(at simtime.Time) {
		w.event(engine.Event{Kind: engine.EventRepartitionStart, At: span.Start, Operator: span.Operator})
		w.event(engine.Event{Kind: engine.EventRepartitionFinish, At: at, Operator: span.Operator, Span: span})
	}
	finish(span.Start.Add(span.Total())) // exact tiling: silent
	kinds(t, w)
	finish(span.Start.Add(span.Total() + simtime.Millisecond)) // torn by 1ms
	kinds(t, w, AnomalySpanTiling)
	if v := w.Anomalies()[0].Value; v != float64(simtime.Millisecond) {
		t.Fatalf("tiling residue = %g, want %g", v, float64(simtime.Millisecond))
	}
}

// TestWatchdogRPCTiling injects RPC spans whose five stages do not sum to the
// measured RTT: one anomaly per (node, type) population, however many torn
// spans arrive; clean spans stay silent.
func TestWatchdogRPCTiling(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{})
	torn := rtbackend.RPCSpan{
		Node: 2, Type: "process",
		SendEnqueue: time.Microsecond, Wire: time.Microsecond,
		AgentQueue: time.Microsecond, AgentService: time.Microsecond, Reply: time.Microsecond,
		RTT: 6 * time.Microsecond, // stages sum to 5µs
	}
	clean := torn
	clean.RTT = clean.Stages()
	w.ObserveRPC(clean)
	kinds(t, w)
	w.ObserveRPC(torn)
	w.ObserveRPC(torn) // same population: latched
	kinds(t, w, AnomalyRPCTiling)
	other := torn
	other.Type = "take"
	w.ObserveRPC(other) // distinct population: fires again
	kinds(t, w, AnomalyRPCTiling, AnomalyRPCTiling)
}

// TestWatchdogHeartbeatStale injects an agent whose last ping reply is older
// than the bound: one anomaly while it stays stale, re-armed after the
// heartbeat recovers.
func TestWatchdogHeartbeatStale(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{HeartbeatStale: 5 * time.Second})
	snap := func(age time.Duration) engine.Snapshot {
		return engine.Snapshot{Agents: []engine.AgentHealth{{Node: 1, PID: 4321, Age: age}}}
	}
	w.Check(snap(time.Second)) // fresh: silent
	kinds(t, w)
	w.Check(snap(8 * time.Second))
	w.Check(snap(9 * time.Second)) // still the same stall: latched
	kinds(t, w, AnomalyHeartbeatStale)
	w.Check(snap(100 * time.Millisecond)) // recovered: re-arms
	w.Check(snap(7 * time.Second))        // second stall: fires again
	kinds(t, w, AnomalyHeartbeatStale, AnomalyHeartbeatStale)
}

// TestWatchdogRepartitionStuck injects a repartition start with no finish and
// advances virtual time past the deadline: exactly one anomaly per stuck
// protocol instance, and none once the finish lands.
func TestWatchdogRepartitionStuck(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{RepartitionDeadline: 30 * simtime.Second})
	start := simtime.Time(0).Add(2 * simtime.Second)
	w.event(engine.Event{Kind: engine.EventRepartitionStart, At: start, Operator: "join"})
	w.Check(engine.Snapshot{Now: start.Add(29 * simtime.Second)}) // within deadline
	kinds(t, w)
	w.Check(engine.Snapshot{Now: start.Add(31 * simtime.Second)})
	w.Check(engine.Snapshot{Now: start.Add(40 * simtime.Second)}) // same instance: latched
	kinds(t, w, AnomalyRepartitionStuck)
	w.event(engine.Event{Kind: engine.EventRepartitionFinish, At: start.Add(41 * simtime.Second), Operator: "join"})
	w.Check(engine.Snapshot{Now: start.Add(100 * simtime.Second)})
	kinds(t, w, AnomalyRepartitionStuck)
}

// TestWatchdogCleanRun attaches the watchdog to a healthy runtime-backend
// run — ledger check wired — and requires zero anomalies end to end.
func TestWatchdogCleanRun(t *testing.T) {
	sp, err := scenario.ByName("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	rtE, h, err := rtbackend.BuildScenario(sp, "elasticutor", 42,
		rtbackend.ScenarioOptions{Options: rtbackend.Options{Speedup: 40}})
	if err != nil {
		t.Fatal(err)
	}
	w := AttachWatchdog(h, WatchdogOptions{Ledger: rtE.Ledger})
	h.Start(context.Background())
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	w.Check(h.Snapshot()) // final post-run check against the settled ledger
	if got := w.Anomalies(); len(got) != 0 {
		t.Fatalf("clean run fired %d anomalies: %+v", len(got), got)
	}
}

// TestWatchdogCleanDistRun runs the distributed backend with the watchdog's
// RPC check wired into the live span feed and the exporter scraped mid-run:
// zero anomalies on a healthy fleet, and the scrape carries the
// distributed-plane families — elasticutor_rpc_*, elasticutor_agent_*, and
// the zero-valued watchdog counter for every kind — all lint-clean.
func TestWatchdogCleanDistRun(t *testing.T) {
	sp, err := scenario.ByName("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	d, h, err := dist.BuildScenario(sp, "elasticutor", 42,
		dist.ScenarioOptions{ScenarioOptions: rtbackend.ScenarioOptions{
			Options: rtbackend.Options{Speedup: 20}}})
	if err != nil {
		t.Fatal(err)
	}
	w := AttachWatchdog(h, WatchdogOptions{Ledger: d.Ledger})
	if !d.ObserveRPC(w.ObserveRPC) {
		t.Fatal("distributed engine rejected the RPC span observer")
	}
	x := NewExporter(h).SetLedger(d.Ledger).SetWatchdog(w)
	h.Start(context.Background())

	// Scrape once the distributed-plane telemetry has data: RPC windows fill
	// with the first requests, agent health with the first stats tick.
	var buf bytes.Buffer
	deadline := time.Now().Add(30 * time.Second)
	for {
		s := h.Snapshot()
		if len(s.RPC) > 0 && len(s.Agents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot never carried RPC windows and agent health")
		}
		time.Sleep(20 * time.Millisecond)
	}
	x.WriteMetrics(&buf)

	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := w.Anomalies(); len(got) != 0 {
		t.Fatalf("clean distributed run fired %d anomalies: %+v", len(got), got)
	}

	fams := parseProm(t, buf.String())
	lintProm(t, fams)
	want := map[string]bool{
		"elasticutor_rpc_requests_total":         false,
		"elasticutor_rpc_rtt_p50_seconds":        false,
		"elasticutor_rpc_rtt_p99_seconds":        false,
		"elasticutor_rpc_wire_seconds":           false,
		"elasticutor_rpc_agent_seconds":          false,
		"elasticutor_agent_goroutines":           false,
		"elasticutor_agent_heap_bytes":           false,
		"elasticutor_agent_resident_bytes":       false,
		"elasticutor_agent_queue_depth":          false,
		"elasticutor_agent_burn_backlog_seconds": false,
		"elasticutor_agent_staleness_seconds":    false,
		"elasticutor_watchdog_anomalies_total":   false,
	}
	for _, f := range fams {
		if _, ok := want[f.name]; !ok {
			continue
		}
		if len(f.samples) == 0 {
			t.Fatalf("family %q emitted without samples", f.name)
		}
		want[f.name] = true
		if f.name == "elasticutor_watchdog_anomalies_total" {
			if len(f.samples) != len(anomalyKinds) {
				t.Fatalf("watchdog counter has %d kinds, want %d", len(f.samples), len(anomalyKinds))
			}
			for _, s := range f.samples {
				if s.value != 0 {
					t.Fatalf("clean run scraped nonzero anomaly counter: %s{%s} = %g", s.name, s.labels, s.value)
				}
			}
		}
	}
	for name, ok := range want {
		if !ok {
			t.Fatalf("mid-run scrape missing family %q:\n%s", name, buf.String())
		}
	}
}
