package obs

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	rtbackend "repro/internal/runtime"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

// TestLiveStream runs a scenario with the recorder writing to a LiveServer
// and a TCP subscriber decoding the stream: the subscriber must see the
// header, events, snapshots, and the end record — and a late joiner must
// still get the cached header.
func TestLiveStream(t *testing.T) {
	sp, err := scenario.ByName("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenLive("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rtE, h, err := rtbackend.BuildScenario(sp, "elasticutor", 42,
		rtbackend.ScenarioOptions{Options: rtbackend.Options{Speedup: 40}})
	if err != nil {
		t.Fatal(err)
	}
	rec := Attach(h, srv, HeaderForScenario(sp, "runtime", "elasticutor", 42, 40, "", 0),
		RecordOptions{SnapshotEvery: simtime.Second, Flush: true})

	// Early subscriber: decodes the whole stream.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var mu sync.Mutex
	var gotHdr Header
	var snaps, events int
	var sawEnd bool
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- Stream(conn, StreamHandler{
			Header: func(hd Header) { mu.Lock(); gotHdr = hd; mu.Unlock() },
			Event:  func(EventRecord) { mu.Lock(); events++; mu.Unlock() },
			Snap:   func(SnapRecord) { mu.Lock(); snaps++; mu.Unlock() },
			End:    func(EndRecord) { mu.Lock(); sawEnd = true; mu.Unlock() },
		})
	}()

	h.Start(context.Background())
	rep, runErr := h.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if err := rec.Finish(rep, h.LostEvents(), runErr); err != nil {
		t.Fatal(err)
	}
	if !rtE.Ledger().Conserved() {
		t.Fatalf("ledger not conserved under live streaming: %v", rtE.Ledger())
	}

	// Late joiner after the run ended: must still receive the cached header.
	late, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	lateHdr := make(chan Header, 1)
	go Stream(late, StreamHandler{Header: func(hd Header) { lateHdr <- hd }})
	select {
	case hd := <-lateHdr:
		if hd.Policy != "elasticutor" {
			t.Errorf("late joiner header policy = %q", hd.Policy)
		}
	case <-time.After(5 * time.Second):
		t.Errorf("late joiner never received the cached header")
	}

	srv.Close() // EOFs the subscriber; Stream must return cleanly
	if err := <-streamDone; err != nil {
		t.Fatalf("stream decode: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotHdr.Schema != TraceSchema || gotHdr.Backend != "runtime" {
		t.Errorf("header not streamed: %+v", gotHdr)
	}
	if events == 0 || snaps == 0 || !sawEnd {
		t.Errorf("incomplete stream: %d events, %d snaps, end=%v", events, snaps, sawEnd)
	}
}

// TestDecodeSnapshotRoundTrip pins the snapshot decode inverse on the fields
// the live view renders.
func TestDecodeSnapshotRoundTrip(t *testing.T) {
	rec := SnapRecord{
		AtMS: 1500, Nodes: 3, TotalCores: 12, UsedCores: 9, Blocked: 7,
		MigrationBytes: 4096, Repartitions: 2,
		LatencyP99MS: 12.5, LatencyWeight: 100,
		DominantStage: "service", DominantShare: 0.6,
		Operators: []OpRecord{{Name: "op", Executors: 4, Cores: 6, Queued: 11,
			Offered: 1000, Processed: 900, DominantStage: "queue", DominantShare: 0.5}},
	}
	s := rec.DecodeSnapshot()
	if s.LiveNodes != 3 || s.TotalCores != 12 || s.UsedCores != 9 {
		t.Fatalf("cluster fields: %+v", s)
	}
	if s.Utilization != 0.75 {
		t.Errorf("utilization = %f", s.Utilization)
	}
	if s.LatencyP99 != 12500*simtime.Microsecond {
		t.Errorf("p99 = %v", s.LatencyP99)
	}
	if s.DominantStage.String() != "service" {
		t.Errorf("dominant stage = %v", s.DominantStage)
	}
	if len(s.Operators) != 1 || s.Operators[0].Executors != 4 ||
		s.Operators[0].DominantStage.String() != "queue" {
		t.Errorf("operators: %+v", s.Operators)
	}
}
