package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

// LiveServer fans a run's NDJSON trace stream out to TCP subscribers — the
// live operator view of a distributed (or any) run. Use it as the Recorder's
// writer (alone or teed with a file): the control-plane CLI listens here and
// elasticutor-top -connect renders the stream from anywhere that can reach
// the socket. The wire format is exactly the trace format, so a subscriber
// can also just save the stream and replay it later.
//
// The first full line (the header record) is cached and sent to late
// joiners, so a viewer attaching mid-run still knows what it is looking at.
// Slow subscribers are dropped, never waited on: observation must not stall
// the run.
type LiveServer struct {
	ln net.Listener

	mu     sync.Mutex
	hdr    []byte // first full NDJSON line, replayed to late joiners
	subs   map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// liveWriteTimeout bounds one subscriber write; a consumer stuck longer is
// dropped.
const liveWriteTimeout = 2 * time.Second

// ListenLive starts a live trace server on addr (e.g. "127.0.0.1:0").
func ListenLive(addr string) (*LiveServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: live listen %s: %w", addr, err)
	}
	s := &LiveServer{ln: ln, subs: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr is the address subscribers dial (elasticutor-top -connect).
func (s *LiveServer) Addr() string { return s.ln.Addr().String() }

func (s *LiveServer) accept() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		if len(s.hdr) > 0 {
			c.SetWriteDeadline(time.Now().Add(liveWriteTimeout))
			if _, err := c.Write(s.hdr); err != nil {
				s.mu.Unlock()
				c.Close()
				continue
			}
			c.SetWriteDeadline(time.Time{})
		}
		s.subs[c] = true
		s.mu.Unlock()
	}
}

// Write broadcasts trace bytes to every subscriber (io.Writer — the
// Recorder's sink). Never returns an error: a run must not fail because a
// viewer went away.
func (s *LiveServer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return len(p), nil
	}
	// Cache the header line for late joiners: accumulate until the first
	// newline (the recorder writes the header before anything else).
	if hl := len(s.hdr); hl == 0 || s.hdr[hl-1] != '\n' {
		if i := bytes.IndexByte(p, '\n'); i >= 0 {
			s.hdr = append(s.hdr, p[:i+1]...)
		} else {
			s.hdr = append(s.hdr, p...)
		}
	}
	for c := range s.subs {
		c.SetWriteDeadline(time.Now().Add(liveWriteTimeout))
		if _, err := c.Write(p); err != nil {
			delete(s.subs, c)
			c.Close()
			continue
		}
		c.SetWriteDeadline(time.Time{})
	}
	return len(p), nil
}

// Subscribers reports the current viewer count.
func (s *LiveServer) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Close drops every subscriber and stops accepting. Safe to call twice.
func (s *LiveServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for c := range s.subs {
		c.Close()
	}
	s.subs = nil
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

// StreamHandler receives decoded records from a live trace stream; nil
// callbacks skip their record type.
type StreamHandler struct {
	Header  func(Header)
	Event   func(EventRecord)
	Command func(CmdRecord)
	Snap    func(SnapRecord)
	RPC     func(RPCRecord)
	Anomaly func(AnomalyRecord)
	End     func(EndRecord)
}

// Stream decodes an NDJSON trace stream incrementally, invoking the handler
// per record as each line arrives — the consuming half of LiveServer (works
// identically on a trace file). Returns nil on clean end-of-stream (the
// server closing the connection is the normal way a live view ends). A
// truncated *final* line — the ordinary tail of a stream cut mid-write when
// the run or connection dies — is treated as end-of-stream, not an error;
// only a malformed line with more stream after it fails.
func Stream(r io.Reader, h StreamHandler) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	var pendingErr error
	for sc.Scan() {
		n++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if pendingErr != nil {
			return pendingErr
		}
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			pendingErr = fmt.Errorf("obs: stream line %d: %w", n, err)
			continue
		}
		switch l.T {
		case "hdr":
			if l.Hdr != nil && h.Header != nil {
				if l.Hdr.Schema != TraceSchema {
					return fmt.Errorf("obs: stream: unknown schema %q (want %s)", l.Hdr.Schema, TraceSchema)
				}
				h.Header(*l.Hdr)
			}
		case "ev":
			if l.Ev != nil && h.Event != nil {
				h.Event(*l.Ev)
			}
		case "cmd":
			if l.Cmd != nil && h.Command != nil {
				h.Command(*l.Cmd)
			}
		case "snap":
			if l.Snap != nil && h.Snap != nil {
				h.Snap(*l.Snap)
			}
		case "rpc":
			if l.Rpc != nil && h.RPC != nil {
				h.RPC(*l.Rpc)
			}
		case "anom":
			if l.Anom != nil && h.Anomaly != nil {
				h.Anomaly(*l.Anom)
			}
		case "end":
			if l.End != nil && h.End != nil {
				h.End(*l.End)
			}
		}
	}
	if err := sc.Err(); err != nil && err != io.ErrUnexpectedEOF {
		return fmt.Errorf("obs: stream: %w", err)
	}
	return nil
}

// parseStage maps a stage's wire name back to its metrics.Stage (built from
// the same String() the encoder uses). Unknown names return -1.
func parseStage(name string) metrics.Stage {
	for s := metrics.Stage(0); s < metrics.NumStages; s++ {
		if s.String() == name {
			return s
		}
	}
	return metrics.Stage(-1)
}

// DecodeSnapshot converts a trace snapshot record back to an engine.Snapshot
// — the inverse of the encoder, so a live viewer renders remote snapshots
// with the same code it uses against a local run.
func (rec *SnapRecord) DecodeSnapshot() engine.Snapshot {
	s := engine.Snapshot{
		Now:            simtime.Time(0).Add(fromMS(rec.AtMS)),
		LiveNodes:      rec.Nodes,
		TotalCores:     rec.TotalCores,
		UsedCores:      rec.UsedCores,
		Blocked:        rec.Blocked,
		MigrationBytes: rec.MigrationBytes,
		Reassignments:  rec.Reassignments,
		Repartitions:   rec.Repartitions,
		LatencyP50:     fromMS(rec.LatencyP50MS),
		LatencyP95:     fromMS(rec.LatencyP95MS),
		LatencyP99:     fromMS(rec.LatencyP99MS),
		LatencyMax:     fromMS(rec.LatencyMaxMS),
		LatencyWeight:  rec.LatencyWeight,
	}
	if s.TotalCores > 0 {
		s.Utilization = float64(s.UsedCores) / float64(s.TotalCores)
	}
	if rec.DominantShare > 0 {
		s.DominantStage = parseStage(rec.DominantStage)
		s.DominantShare = rec.DominantShare
	}
	for _, o := range rec.Operators {
		os := engine.OperatorSnapshot{
			Name:          o.Name,
			Executors:     o.Executors,
			Cores:         o.Cores,
			OfferedRate:   o.OfferedRate,
			ProcessedRate: o.ProcessedRate,
			Offered:       o.Offered,
			Processed:     o.Processed,
			Queued:        o.Queued,
			LatP50:        fromMS(o.LatP50MS),
			LatP99:        fromMS(o.LatP99MS),
		}
		if o.DominantShare > 0 {
			os.DominantStage = parseStage(o.DominantStage)
			os.DominantShare = o.DominantShare
		}
		s.Operators = append(s.Operators, os)
	}
	for _, w := range rec.RPC {
		s.RPC = append(s.RPC, engine.RPCWindow{
			Node:  w.Node,
			Type:  w.Type,
			Count: w.Count,
			P50:   simtime.Duration(w.P50NS),
			P95:   simtime.Duration(w.P95NS),
			P99:   simtime.Duration(w.P99NS),
			Max:   simtime.Duration(w.MaxNS),
			Wire:  simtime.Duration(w.WireNS),
			Agent: simtime.Duration(w.AgentNS),
		})
	}
	for _, a := range rec.Agents {
		s.Agents = append(s.Agents, engine.AgentHealth{
			Node:          a.Node,
			PID:           a.PID,
			Goroutines:    a.Goroutines,
			HeapBytes:     a.HeapBytes,
			ResidentBytes: a.ResidentBytes,
			QueueDepth:    a.QueueDepth,
			BurnBacklog:   simtime.Duration(a.BurnBacklogNS),
			Batches:       a.Batches,
			ClockOffset:   simtime.Duration(a.OffsetNS),
			Age:           simtime.Duration(a.AgeNS),
		})
	}
	return s
}
