package obs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/run"
	"repro/internal/runtime"
	"repro/internal/simtime"
)

// The watchdog continuously checks the invariants a healthy run maintains by
// construction — the properties the test suite asserts post-mortem, promoted
// to live detectors. Each violation becomes one typed Anomaly: a trace
// record, a counter the exporter scrapes, and (via OnAnomaly) anything else
// the embedder wires. A clean run emits zero anomalies; the fault-injection
// tests prove each detector fires on its fault and only then.
//
// Invariants watched (kinds):
//
//	ledger-drift        admitted < processed + dropped: the conservation
//	                    ledger lost weight (mid-run surplus is in-flight
//	                    work and legitimate; only a negative residue fires).
//	span-tiling         a repartition finish event whose elapsed time does
//	                    not equal the span's four-phase sum.
//	rpc-tiling          an RPC span whose five stages do not sum to its
//	                    measured RTT (the decomposition guarantees equality
//	                    by construction — inequality means torn timestamps).
//	heartbeat-stale     an agent whose last successful ping reply is older
//	                    than the staleness bound (wall clock).
//	repartition-stuck   a repartition started more than the deadline ago
//	                    (virtual) with no finish event.
//
// Each detector latches so one persistent fault yields one anomaly, not one
// per check tick: ledger-drift once per run, rpc-tiling once per
// (node, type), heartbeat-stale once per node until the heartbeat recovers,
// repartition-stuck once per (operator, start).

// Anomaly kind constants.
const (
	AnomalyLedgerDrift      = "ledger-drift"
	AnomalySpanTiling       = "span-tiling"
	AnomalyRPCTiling        = "rpc-tiling"
	AnomalyHeartbeatStale   = "heartbeat-stale"
	AnomalyRepartitionStuck = "repartition-stuck"
)

// anomalyKinds lists every kind, in the order the exporter emits them.
var anomalyKinds = []string{
	AnomalyLedgerDrift,
	AnomalySpanTiling,
	AnomalyRPCTiling,
	AnomalyHeartbeatStale,
	AnomalyRepartitionStuck,
}

// Anomaly is one detected invariant violation.
type Anomaly struct {
	Kind   string
	At     simtime.Time // virtual time of detection
	Detail string
	Value  float64 // the measured violation, unit per kind (see Detail)
}

// WatchdogOptions tunes the watchdog's checks.
type WatchdogOptions struct {
	// CheckEvery is the virtual cadence of the periodic checks (ledger,
	// heartbeat, stuck repartitions). Default 1 s.
	CheckEvery simtime.Duration
	// HeartbeatStale is the wall-clock age of an agent's last ping reply
	// beyond which the heartbeat counts as stale. Default 5 s; only
	// meaningful on the distributed backend (no agents → no check).
	HeartbeatStale time.Duration
	// RepartitionDeadline is the virtual duration after which an unfinished
	// repartition counts as stuck. Default 30 s.
	RepartitionDeadline simtime.Duration
	// Ledger, when set, enables the conservation-drift check (the runtime
	// and distributed backends expose Engine.Ledger; the simulator conserves
	// structurally).
	Ledger func() runtime.Ledger
	// OnAnomaly, when set, observes every anomaly as it fires — wire the
	// recorder's RecordAnomaly here. Runs on the detecting goroutine.
	OnAnomaly func(Anomaly)
}

func (o WatchdogOptions) withDefaults() WatchdogOptions {
	if o.CheckEvery <= 0 {
		o.CheckEvery = simtime.Second
	}
	if o.HeartbeatStale <= 0 {
		o.HeartbeatStale = 5 * time.Second
	}
	if o.RepartitionDeadline <= 0 {
		o.RepartitionDeadline = 30 * simtime.Second
	}
	return o
}

// Watchdog is a live invariant checker attached to a Run handle.
type Watchdog struct {
	opt WatchdogOptions

	mu        sync.Mutex
	anomalies []Anomaly
	counts    map[string]uint64

	ledgerFired bool
	rpcFired    map[string]bool         // "node/type" → latched
	staleFired  map[int]bool            // node → latched until recovery
	inflight    map[string]simtime.Time // operator → repartition start
	stuckFired  map[string]bool         // "op@startNS" → latched
}

// AttachWatchdog wires a watchdog onto an unstarted run handle: it observes
// events for the repartition checks and samples every CheckEvery for the
// periodic ones. RPC-span checking needs the span feed, which only the
// distributed backend has — pass the watchdog's ObserveRPC to
// runtime.Engine.ObserveRPC (or call it from your own observer). Pre-Start
// only, like every handle registration.
func AttachWatchdog(h *run.Run, opt WatchdogOptions) *Watchdog {
	w := NewWatchdog(opt)
	h.Observe(w.event)
	h.SampleEvery(w.opt.CheckEvery, w.Check)
	return w
}

// NewWatchdog builds an unattached watchdog — the fault-injection tests and
// stream consumers (which have records, not a handle) drive its detectors
// directly via event/Check/ObserveRPC.
func NewWatchdog(opt WatchdogOptions) *Watchdog {
	return &Watchdog{
		opt:        opt.withDefaults(),
		counts:     make(map[string]uint64),
		rpcFired:   make(map[string]bool),
		staleFired: make(map[int]bool),
		inflight:   make(map[string]simtime.Time),
		stuckFired: make(map[string]bool),
	}
}

// fire records one anomaly. Caller holds no lock.
func (w *Watchdog) fire(a Anomaly) {
	w.mu.Lock()
	w.anomalies = append(w.anomalies, a)
	w.counts[a.Kind]++
	fn := w.opt.OnAnomaly
	w.mu.Unlock()
	if fn != nil {
		fn(a)
	}
}

// event is the handle's event observer: it tracks in-flight repartitions and
// checks the span-tiling invariant on every finish.
func (w *Watchdog) event(ev engine.Event) {
	switch ev.Kind {
	case engine.EventRepartitionStart:
		w.mu.Lock()
		w.inflight[ev.Operator] = ev.At
		w.mu.Unlock()
	case engine.EventRepartitionFinish:
		w.mu.Lock()
		delete(w.inflight, ev.Operator)
		w.mu.Unlock()
		if s := ev.Span; s != nil {
			elapsed := simtime.Duration(ev.At.Sub(s.Start))
			if residue := elapsed - s.Total(); residue != 0 {
				w.fire(Anomaly{
					Kind: AnomalySpanTiling,
					At:   ev.At,
					Detail: fmt.Sprintf("op %s: finish at start+%v but phases sum to %v",
						s.Operator, elapsed, s.Total()),
					Value: float64(residue),
				})
			}
		}
	}
}

// ObserveRPC checks the five-stage tiling of one completed RPC span. Latched
// per (node, type): one systematically torn population fires once.
func (w *Watchdog) ObserveRPC(sp runtime.RPCSpan) {
	residue := sp.Stages() - sp.RTT
	if residue == 0 {
		return
	}
	key := fmt.Sprintf("%d/%s", sp.Node, sp.Type)
	w.mu.Lock()
	fired := w.rpcFired[key]
	w.rpcFired[key] = true
	w.mu.Unlock()
	if fired {
		return
	}
	w.fire(Anomaly{
		Kind: AnomalyRPCTiling,
		At:   sp.At,
		Detail: fmt.Sprintf("node %d %s: stages sum to %v, RTT %v",
			sp.Node, sp.Type, sp.Stages(), sp.RTT),
		Value: float64(residue),
	})
}

// Check runs the periodic detectors against one snapshot — the SampleEvery
// callback, also callable directly (stream consumers, tests).
func (w *Watchdog) Check(s engine.Snapshot) {
	w.checkLedger(s.Now)
	w.checkAgents(s)
	w.checkStuck(s.Now)
}

// checkLedger fires on negative conservation residue: admitted weight
// exceeded by the accounted outcomes means the ledger lost track. A positive
// residue is in-flight work and normal mid-run.
func (w *Watchdog) checkLedger(now simtime.Time) {
	if w.opt.Ledger == nil {
		return
	}
	w.mu.Lock()
	fired := w.ledgerFired
	w.mu.Unlock()
	if fired {
		return
	}
	l := w.opt.Ledger()
	residue := l.Admitted - l.Processed - l.DroppedFailure - l.DroppedShutdown
	if residue >= 0 {
		return
	}
	w.mu.Lock()
	w.ledgerFired = true
	w.mu.Unlock()
	w.fire(Anomaly{
		Kind:   AnomalyLedgerDrift,
		At:     now,
		Detail: fmt.Sprintf("conservation residue %d: %v", residue, l),
		Value:  float64(residue),
	})
}

// checkAgents fires per agent whose heartbeat age crossed the staleness
// bound, re-arming when the heartbeat recovers.
func (w *Watchdog) checkAgents(s engine.Snapshot) {
	for _, a := range s.Agents {
		stale := time.Duration(a.Age) > w.opt.HeartbeatStale
		w.mu.Lock()
		fired := w.staleFired[a.Node]
		w.staleFired[a.Node] = stale
		w.mu.Unlock()
		if !stale || fired {
			continue
		}
		w.fire(Anomaly{
			Kind: AnomalyHeartbeatStale,
			At:   s.Now,
			Detail: fmt.Sprintf("node %d (pid %d): last ping reply %v ago (bound %v)",
				a.Node, a.PID, time.Duration(a.Age).Round(time.Millisecond), w.opt.HeartbeatStale),
			Value: time.Duration(a.Age).Seconds(),
		})
	}
}

// checkStuck fires per repartition that started more than the deadline of
// virtual time ago and has not finished.
func (w *Watchdog) checkStuck(now simtime.Time) {
	w.mu.Lock()
	type stuck struct {
		op    string
		start simtime.Time
		age   simtime.Duration
	}
	var found []stuck
	for op, start := range w.inflight {
		age := simtime.Duration(now.Sub(start))
		if age <= w.opt.RepartitionDeadline {
			continue
		}
		key := fmt.Sprintf("%s@%d", op, int64(start.Sub(simtime.Time(0))))
		if w.stuckFired[key] {
			continue
		}
		w.stuckFired[key] = true
		found = append(found, stuck{op: op, start: start, age: age})
	}
	w.mu.Unlock()
	for _, f := range found {
		w.fire(Anomaly{
			Kind: AnomalyRepartitionStuck,
			At:   now,
			Detail: fmt.Sprintf("op %s: repartition started at %v still unfinished after %v (deadline %v)",
				f.op, f.start, f.age, w.opt.RepartitionDeadline),
			Value: age(f.age),
		})
	}
}

func age(d simtime.Duration) float64 { return simtime.ToMillis(d) / 1e3 }

// Anomalies returns every anomaly fired so far, in detection order.
func (w *Watchdog) Anomalies() []Anomaly {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Anomaly(nil), w.anomalies...)
}

// Counts returns the per-kind anomaly totals (zero-valued kinds omitted).
func (w *Watchdog) Counts() map[string]uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]uint64, len(w.counts))
	for k, v := range w.counts {
		out[k] = v
	}
	return out
}
