package obs

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

// This file pins the record→replay contract: one fixed (scenario, policy,
// seed) recording whose structural event sequence and repartition spans are
// committed as a golden file (tools/gengolden regenerates it). The "rc"
// policy is the span workhorse — its operator-level §3.3 repartitions are
// what the span taxonomy describes — and the injected user command exercises
// the replayer's re-injection path.

// Golden recording configuration.
const (
	goldenScenario = "skewdrift"
	goldenPolicy   = "rc"
	goldenSeed     = 42
)

// goldenUserCommand is the pre-start injected user command the golden run
// carries (deterministic form: pinned virtual time).
func goldenUserCommand() engine.Command {
	return engine.SetRateCmd(1.4).AtTime(6 * simtime.Second)
}

// GoldenRecord runs the pinned configuration on the simulator with a
// recorder attached and returns the decoded trace and the report.
func GoldenRecord() (*Trace, *engine.Report, error) {
	sp, err := scenario.ByName(goldenScenario)
	if err != nil {
		return nil, nil, err
	}
	inst, err := sp.Build(goldenPolicy, goldenSeed)
	if err != nil {
		return nil, nil, err
	}
	h := inst.Handle
	var buf bytes.Buffer
	rec := Attach(h, &buf, HeaderForScenario(sp, "sim", goldenPolicy, goldenSeed, 0, "", 0),
		RecordOptions{SnapshotEvery: 2 * simtime.Second})
	if err := h.Inject(goldenUserCommand()); err != nil {
		return nil, nil, err
	}
	h.Start(context.Background())
	rep, runErr := h.Wait()
	if err := rec.Finish(rep, h.LostEvents(), runErr); err != nil {
		return nil, nil, err
	}
	if runErr != nil {
		return nil, nil, runErr
	}
	tr, err := Decode(&buf)
	if err != nil {
		return nil, nil, err
	}
	return tr, rep, nil
}

// GenerateGolden renders the pinned recording as the committed golden file:
// the structural event sequence followed by the span lines. Regenerate with
// tools/gengolden ONLY when a behavior change is intended.
func GenerateGolden() string {
	tr, rep, err := GoldenRecord()
	if err != nil {
		panic(fmt.Sprintf("obs: golden record failed: %v", err))
	}
	if err := CheckSpans(tr.Spans(), rep); err != nil {
		panic(fmt.Sprintf("obs: golden spans inconsistent: %v", err))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# record→replay golden: scenario=%s policy=%s seed=%d backend=sim\n",
		goldenScenario, goldenPolicy, goldenSeed)
	b.WriteString("structural:\n")
	for _, l := range StructuralSeq(tr.DecodedEvents()) {
		b.WriteString("  " + l + "\n")
	}
	b.WriteString("spans:\n")
	for _, l := range SpanLines(tr.Spans()) {
		b.WriteString("  " + l + "\n")
	}
	return b.String()
}
