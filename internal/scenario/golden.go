package scenario

import (
	"fmt"
	"strings"
)

// goldenSeed pins the built-in scenario fingerprints to one deterministic
// replicate.
const goldenSeed = 42

// GenerateGoldens runs every built-in scenario under the elasticutor policy
// with a fixed seed and returns one fingerprint line per scenario (sorted by
// name, trailing newline). tools/gengolden writes the result to
// testdata/builtins.golden; the golden test requires byte equality.
func GenerateGoldens() string {
	var b strings.Builder
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			panic(err)
		}
		r, err := s.Run("elasticutor", goldenSeed)
		if err != nil {
			panic(fmt.Sprintf("scenario golden %s: %v", name, err))
		}
		fmt.Fprintln(&b, Fingerprint(name, r))
	}
	return b.String()
}
