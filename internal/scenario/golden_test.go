package scenario

import (
	"os"
	"testing"
)

// TestGoldenBuiltins pins every built-in scenario — including the cluster
// churn paths — to its recorded fingerprint, event count and all. Regenerate
// with `go run ./tools/gengolden` only for intended behavior changes.
func TestGoldenBuiltins(t *testing.T) {
	want, err := os.ReadFile("testdata/builtins.golden")
	if err != nil {
		t.Fatalf("missing golden file (run `go run ./tools/gengolden`): %v", err)
	}
	got := GenerateGoldens()
	if got != string(want) {
		t.Fatalf("built-in scenario fingerprints drifted.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
