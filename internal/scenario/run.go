package scenario

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/run"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// The interpreter: turn a validated Spec into scheduled actions on a Run
// handle — key-phase mutations via ScheduleAt, cluster events via Inject
// (with explicit virtual times), phase transitions via Announce. The
// interpreter is a *client* of the public run API: it holds no engine-private
// hooks, so anything a scenario does, a user of the handle can do too. All
// wiring happens before Start, from the spec alone, so two runs of the same
// (spec, policy, seed) produce identical event traces on the simulator.

// skewStep is the cadence at which a skew-drift phase re-morphs the key
// distribution.
const skewStep = 250 * simtime.Millisecond

// Instance is one scenario bound to a concrete engine, wired but not yet
// started: Handle carries the scheduled phases and events. Callers either
// Start the handle (observing the run) or call Engine.Run directly (the
// wiring is already on the virtual clock).
type Instance struct {
	Spec     *Spec
	Engine   *engine.Engine
	Zipf     *workload.Zipf
	BaseRate float64 // tuples/s the rate multiplier scales
	Handle   *run.Run
}

// ZipfCtl is the sampler mutation surface Drive needs: backends whose
// sources sample concurrently wrap it in a lock (see runtime's lockedZipf);
// the simulator applies directly.
type ZipfCtl interface {
	Apply(fn func(*workload.Zipf))
}

// directZipf is the simulator's unguarded ZipfCtl.
type directZipf struct{ z *workload.Zipf }

func (d directZipf) Apply(fn func(*workload.Zipf)) { fn(d.z) }

// ResolvedWorkload returns the scenario's workload parameters with the
// quick-scale defaults filled in — the form both execution backends consume.
func (s *Spec) ResolvedWorkload() workload.Spec { return s.workloadSpec() }

// workloadDefaults fills the quick-scale workload defaults.
func (s *Spec) workloadSpec() workload.Spec {
	w := s.Workload
	out := workload.Spec{
		Keys:           w.Keys,
		Skew:           w.Skew,
		TupleBytes:     w.TupleBytes,
		CPUCost:        simtime.FromMicros(w.CPUCostUS),
		ShardStateKB:   w.StateKB,
		ShufflesPerMin: w.ShufflesPerMin,
	}
	if out.Keys == 0 {
		out.Keys = 2500
	}
	if out.Skew == 0 {
		out.Skew = 0.75
	}
	if out.TupleBytes == 0 {
		out.TupleBytes = 128
	}
	if out.CPUCost == 0 {
		out.CPUCost = simtime.Millisecond
	}
	if out.ShardStateKB == 0 {
		out.ShardStateKB = 32
	}
	return out
}

// BaseRate computes the scenario's base offered load: RatePerSec when set,
// else RateFraction (default 0.9) of the initial cluster's elastic CPU
// capacity.
func (s *Spec) BaseRate() float64 {
	if s.Workload.RatePerSec > 0 {
		return s.Workload.RatePerSec
	}
	frac := s.Workload.RateFraction
	if frac <= 0 {
		frac = 0.9
	}
	srcEx := s.SourceExecutors
	if srcEx == 0 {
		srcEx = s.Nodes
	}
	coresPerNode := cluster.Default(s.Nodes).CoresPerNode
	elastic := s.Nodes*coresPerNode - srcEx
	if elastic < 1 {
		elastic = 1
	}
	return frac * float64(elastic) / s.workloadSpec().CPUCost.Seconds()
}

// PeakClone returns a copy of the spec resized to a *statically*
// peak-provisioned cluster serving the same absolute offered load: the base
// rate is pinned (RatePerSec) from the original cluster before the node
// count changes, and the spec's own cluster events are dropped — the
// yardstick holds exactly nodes for the whole run, even for scenarios like
// blackfriday that schedule their own joins. Workload phases (the demand)
// are kept. The autoscaling study uses it as the fixed yardstick a
// closed-loop controller competes with.
func (s *Spec) PeakClone(nodes int) *Spec {
	clone := *s
	clone.Workload.RatePerSec = s.BaseRate()
	// Pin the *effective* source parallelism too (the default is one per
	// node): only capacity may differ between the yardstick and the
	// original, not the topology serving the load.
	if clone.SourceExecutors == 0 {
		clone.SourceExecutors = s.Nodes
	}
	clone.Nodes = nodes
	clone.Events = nil
	return &clone
}

// RateMultiplier returns the phased offered-load multiplier over the base
// rate. Inside a rate phase the phase's own curve applies; between phases
// the most recent phase's exit value holds (a ramp sticks at its target, a
// flash crowd falls back to 1), and before any phase the multiplier is 1.
func (s *Spec) RateMultiplier() func(t simtime.Time) float64 {
	var phases []Phase
	for _, ph := range s.Phases {
		if rateClass(ph.Kind) {
			phases = append(phases, ph)
		}
	}
	sort.SliceStable(phases, func(a, b int) bool { return phases[a].StartSec < phases[b].StartSec })
	return func(t simtime.Time) float64 {
		sec := t.Seconds()
		mult := 1.0
		for _, ph := range phases {
			if sec < ph.StartSec {
				break
			}
			if sec < ph.endSec() {
				return phaseValue(ph, sec)
			}
			mult = phaseExit(ph)
		}
		return mult
	}
}

// phaseValue evaluates a rate phase at an absolute time inside it.
func phaseValue(ph Phase, sec float64) float64 {
	frac := (sec - ph.StartSec) / ph.DurationSec
	switch ph.Kind {
	case PhaseRamp:
		from, to := ph.param("from", 0.25), ph.param("to", 1.25)
		return from + (to-from)*frac
	case PhaseFlashCrowd:
		return ph.param("factor", 3)
	case PhaseDiurnal:
		a := ph.param("amplitude", 0.5)
		period := ph.param("period_sec", 10)
		v := 1 + a*math.Sin(2*math.Pi*(sec-ph.StartSec)/period)
		if v < 0 {
			return 0
		}
		return v
	}
	return 1
}

// phaseExit is the multiplier that persists after a rate phase ends.
func phaseExit(ph Phase) float64 {
	if ph.Kind == PhaseRamp {
		return ph.param("to", 1.25)
	}
	return 1
}

// Drive wires a validated spec onto a run handle: key-dynamics phases as
// scheduled sampler mutations, cluster events as injected commands pinned to
// their virtual times, phase transitions as timeline announcements. z may be
// nil (user-supplied topologies drive their own samplers); key-class phases
// are then announced as skipped rather than silently dropped. Rate phases
// are NOT handled here — wrap the source rate with RateMultiplier instead
// (both backends fold it into the sources at assembly time); Drive only
// announces their transitions. Must run before h.Start.
func Drive(h *run.Run, s *Spec, z ZipfCtl, keys int) {
	if keys <= 0 {
		keys = 2500
	}
	for _, ph := range s.Phases {
		announce := true
		switch ph.Kind {
		case PhaseSkewDrift:
			if z == nil {
				announce = false
				break
			}
			from := ph.param("from", s.workloadSpec().Skew)
			to := ph.param("to", 1.1)
			zz, phase := z, ph
			end := secs(phase.endSec())
			landed := false
			for k := 0; ; k++ {
				at := secs(phase.StartSec) + simtime.Duration(k)*skewStep
				if at > end {
					break
				}
				if at == end {
					landed = true
				}
				frac := float64(at-secs(phase.StartSec)) / float64(secs(phase.DurationSec))
				skew := from + (to-from)*frac
				h.ScheduleAt(at, func() { zz.Apply(func(z *workload.Zipf) { z.SetSkew(skew) }) })
			}
			if !landed {
				// Durations that are not a multiple of the step still end
				// exactly at the declared target skew.
				h.ScheduleAt(end, func() { zz.Apply(func(z *workload.Zipf) { z.SetSkew(to) }) })
			}
		case PhaseHotspot:
			if z == nil {
				announce = false
				break
			}
			shift := int(ph.param("shift", float64(keys/16)))
			if shift < 1 {
				shift = 1
			}
			zz := z
			schedulePeriodic(h, ph, func() { zz.Apply(func(z *workload.Zipf) { z.Rotate(shift) }) })
		case PhaseKeyChurn:
			if z == nil {
				announce = false
				break
			}
			frac := ph.param("fraction", 0.1)
			zz := z
			schedulePeriodic(h, ph, func() { zz.Apply(func(z *workload.Zipf) { z.PartialShuffle(frac) }) })
		}
		if announce {
			h.Announce(secs(ph.StartSec), engine.Event{Kind: engine.EventPhaseStart, Node: -1, Phase: ph.Kind})
			h.Announce(secs(ph.endSec()), engine.Event{Kind: engine.EventPhaseEnd, Node: -1, Phase: ph.Kind})
		} else {
			// A key-space phase on a topology that supplies its own sampler:
			// nothing to mutate. Announce the skip instead of dropping it
			// wordlessly (Options.Strict upgrades this to a build error).
			h.Announce(secs(ph.StartSec), engine.Event{Kind: engine.EventPhaseSkipped, Node: -1,
				Phase: ph.Kind, Detail: "topology supplies its own sampler"})
		}
	}
	resolved, err := s.resolveEvents()
	if err != nil {
		// Drive's contract requires a validated spec; reaching this is a
		// programming error, not a runtime condition.
		panic(fmt.Sprintf("scenario: Drive on an invalid spec: %v", err))
	}
	for _, ev := range resolved {
		// Spec validation cannot see placement, so a valid event can still be
		// infeasible at fire time (e.g. a drain with no foothold core left);
		// the backend refuses it and the refusal lands in Report.ChurnErrors
		// instead of crashing the run.
		label := fmt.Sprintf("scenario %q event %d", s.Name, ev.index)
		if ev.zone != "" {
			label = fmt.Sprintf("scenario %q event %d (failzone %s, node %d)", s.Name, ev.index, ev.zone, ev.node)
		}
		var cmd engine.Command
		switch ev.kind {
		case EventJoin:
			cmd = engine.AddNodeCmd(ev.cores)
		case EventDrain:
			cmd = engine.DrainNodeCmd(ev.node)
		case EventFail:
			cmd = engine.FailNodeCmd(ev.node)
		default:
			continue // resolveEvents only emits the three concrete kinds
		}
		cmd.At = secs(ev.atSec)
		cmd.Label = label
		// Provenance for the trace recorder: spec-scheduled churn is
		// regenerated from the spec on replay, not re-injected.
		cmd.Origin = "scenario"
		if err := h.Inject(cmd); err != nil {
			panic(fmt.Sprintf("scenario: pre-start inject refused: %v", err))
		}
	}
}

// schedulePeriodic fires fn at the phase start and then every period_sec
// until the phase ends. Validation guarantees a positive period.
func schedulePeriodic(h *run.Run, ph Phase, fn func()) {
	period := secs(ph.param("period_sec", 2))
	for at := secs(ph.StartSec); at <= secs(ph.endSec()); at += period {
		h.ScheduleAt(at, fn)
	}
}

// Build validates the spec and assembles a wired, unstarted run: the
// micro-benchmark topology with the scenario's workload, the phased rate
// function, and every key phase and cluster event scheduled through the run
// handle. An optional calibration table (tools/calibrate) replaces the
// simulator's assumed cost constants with measured ones.
func (s *Spec) Build(policyName string, seed uint64, cal ...*calib.Table) (*Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pol, err := policy.ByName(policyName)
	if err != nil {
		return nil, err
	}
	var table *calib.Table
	if len(cal) > 0 {
		table = cal[0]
	}
	base := s.BaseRate()
	mult := s.RateMultiplier()
	m, err := core.NewMicro(core.MicroOptions{
		Policy:          pol,
		Nodes:           s.Nodes,
		SourceExecutors: s.SourceExecutors,
		Y:               s.Y,
		Z:               s.Z,
		OpShards:        s.OpShards,
		Spec:            s.workloadSpec(),
		Rate:            base,
		RateFn:          func(t simtime.Time) float64 { return base * mult(t) },
		Seed:            seed,
		WarmUp:          s.Warmup(),
		Calibration:     table,
	})
	if err != nil {
		return nil, err
	}
	h := run.NewSim(m.Engine, s.Duration())
	Drive(h, s, directZipf{m.Zipf}, m.Zipf.N())
	return &Instance{Spec: s, Engine: m.Engine, Zipf: m.Zipf, BaseRate: base, Handle: h}, nil
}

// Start builds the scenario and launches it on the simulator through the run
// handle; cancel ctx to stop the run early at a safe point.
func (s *Spec) Start(ctx context.Context, policyName string, seed uint64, cal ...*calib.Table) (*run.Run, error) {
	inst, err := s.Build(policyName, seed, cal...)
	if err != nil {
		return nil, err
	}
	inst.Handle.Start(ctx)
	return inst.Handle, nil
}

// Run builds and runs the scenario under the named elasticity policy, with
// an optional measured calibration table.
func (s *Spec) Run(policyName string, seed uint64, cal ...*calib.Table) (*engine.Report, error) {
	h, err := s.Start(context.Background(), policyName, seed, cal...)
	if err != nil {
		return nil, err
	}
	return h.Wait()
}

// Fingerprint renders every deterministic field of a scenario report,
// including the churn counters the base golden fingerprint predates. Used by
// the golden tests that pin each built-in scenario.
func Fingerprint(name string, r *engine.Report) string {
	return fmt.Sprintf("%s policy=%s gen=%d proc=%d blocked=%d dropped=%d events=%d "+
		"thr=%.3f latMean=%d latP99=%d "+
		"reassign=%d inter=%d migB=%d remoteB=%d repart=%d repB=%d "+
		"joins=%d drains=%d fails=%d retired=%d lostB=%d churnErr=%d",
		name, r.Policy, r.Generated, r.Processed, r.Blocked, r.Dropped, r.Events,
		r.ThroughputMean,
		int64(r.Latency.Mean()), int64(r.Latency.Quantile(0.99)),
		r.Reassignments, r.InterNodeReassigns, r.MigrationBytes, r.RemoteTransferBytes,
		r.Repartitions, r.RepartitionBytes,
		r.NodeJoins, r.NodeDrains, r.NodeFails, r.RetiredExecutors, r.LostStateBytes,
		len(r.ChurnErrors))
}
