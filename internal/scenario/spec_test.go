package scenario

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/simtime"
)

// randSpec generates a valid-shaped spec from a deterministic RNG (the JSON
// round-trip property test's input distribution). It is not always
// semantically valid — round-tripping must preserve invalid specs too.
func randSpec(rng *simtime.Rand) *Spec {
	kinds := []string{PhaseRamp, PhaseFlashCrowd, PhaseDiurnal, PhaseSkewDrift, PhaseHotspot, PhaseKeyChurn}
	s := &Spec{
		Name:        "prop-" + string(rune('a'+rng.Intn(26))),
		Description: "generated",
		Nodes:       1 + rng.Intn(8),
		Y:           rng.Intn(8),
		Z:           rng.Intn(256),
		OpShards:    rng.Intn(1024),
		DurationSec: 1 + rng.Float64()*30,
		WarmupSec:   rng.Float64(),
		Workload: WorkloadSpec{
			Keys:         rng.Intn(5000),
			Skew:         rng.Float64(),
			TupleBytes:   rng.Intn(4096),
			CPUCostUS:    rng.Float64() * 2000,
			StateKB:      rng.Intn(64),
			RateFraction: rng.Float64(),
		},
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		ph := Phase{
			Kind:        kinds[rng.Intn(len(kinds))],
			StartSec:    rng.Float64() * 10,
			DurationSec: rng.Float64() * 10,
		}
		if rng.Intn(2) == 1 {
			ph.Params = map[string]float64{"factor": rng.Float64() * 4, "period_sec": rng.Float64() * 5}
		}
		s.Phases = append(s.Phases, ph)
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Events = append(s.Events, NodeEvent{
			Kind:  []string{EventJoin, EventDrain, EventFail}[rng.Intn(3)],
			AtSec: rng.Float64() * 30,
			Node:  rng.Intn(8),
			Cores: rng.Intn(8),
		})
	}
	return s
}

func TestSpecJSONRoundTripProperty(t *testing.T) {
	rng := simtime.NewRand(1234)
	for i := 0; i < 200; i++ {
		orig := randSpec(rng)
		data, err := orig.JSON()
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(orig, &back) {
			t.Fatalf("case %d: round trip drifted:\n orig %+v\n back %+v\n json %s", i, orig, &back, data)
		}
	}
}

func TestBuiltinsRoundTripThroughParse(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: parse of own JSON failed: %v", name, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("%s: round trip drifted", name)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	base := func() *Spec { return quick("v", "validation fixture") }
	cases := []struct {
		name    string
		mutate  func(*Spec)
		errPart string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "name is required"},
		{"zero nodes", func(s *Spec) { s.Nodes = 0 }, "nodes"},
		{"zero duration", func(s *Spec) { s.DurationSec = 0 }, "duration_sec"},
		{"warmup past horizon", func(s *Spec) { s.WarmupSec = 20 }, "warmup"},
		{"unknown phase kind", func(s *Spec) {
			s.Phases = []Phase{{Kind: "tsunami", StartSec: 1, DurationSec: 2}}
		}, "unknown kind"},
		{"phase past horizon", func(s *Spec) {
			s.Phases = []Phase{{Kind: PhaseRamp, StartSec: 10, DurationSec: 10}}
		}, "past the"},
		{"negative param", func(s *Spec) {
			s.Phases = []Phase{{Kind: PhaseRamp, StartSec: 1, DurationSec: 2,
				Params: map[string]float64{"to": -1}}}
		}, "param"},
		{"overlapping rate phases", func(s *Spec) {
			s.Phases = []Phase{
				{Kind: PhaseRamp, StartSec: 1, DurationSec: 6},
				{Kind: PhaseFlashCrowd, StartSec: 4, DurationSec: 4},
			}
		}, "overlap"},
		{"overlapping same-kind key phases", func(s *Spec) {
			s.Phases = []Phase{
				{Kind: PhaseKeyChurn, StartSec: 1, DurationSec: 6},
				{Kind: PhaseKeyChurn, StartSec: 4, DurationSec: 4},
			}
		}, "overlap"},
		{"event past horizon", func(s *Spec) {
			s.Events = []NodeEvent{{Kind: EventFail, AtSec: 99, Node: 1}}
		}, "outside the"},
		{"unknown event kind", func(s *Spec) {
			s.Events = []NodeEvent{{Kind: "reboot", AtSec: 5}}
		}, "unknown kind"},
		{"drain of unknown node", func(s *Spec) {
			s.Events = []NodeEvent{{Kind: EventDrain, AtSec: 5, Node: 17}}
		}, "not alive"},
		{"double fail of one node", func(s *Spec) {
			s.Events = []NodeEvent{
				{Kind: EventFail, AtSec: 5, Node: 1},
				{Kind: EventFail, AtSec: 7, Node: 1},
			}
		}, "not alive"},
		{"failing the last node", func(s *Spec) {
			s.Nodes = 2
			s.Events = []NodeEvent{
				{Kind: EventFail, AtSec: 5, Node: 0},
				{Kind: EventFail, AtSec: 7, Node: 1},
			}
		}, "last node"},
		{"zone label on a drain", func(s *Spec) {
			s.Events = []NodeEvent{{Kind: EventDrain, AtSec: 5, Node: 1, Zone: "a"}}
		}, "use failzone"},
		{"failzone without a zone", func(s *Spec) {
			s.Events = []NodeEvent{{Kind: EventFailZone, AtSec: 5}}
		}, "needs a zone"},
		{"failzone with a node", func(s *Spec) {
			s.Events = []NodeEvent{
				{Kind: EventJoin, AtSec: 2, Zone: "a"},
				{Kind: EventFailZone, AtSec: 5, Node: 1, Zone: "a"},
			}
		}, "not node or cores"},
		{"failzone of an empty zone", func(s *Spec) {
			s.Events = []NodeEvent{{Kind: EventFailZone, AtSec: 5, Zone: "ghost"}}
		}, "matches no live node"},
		{"failzone of an already-failed zone", func(s *Spec) {
			s.Events = []NodeEvent{
				{Kind: EventJoin, AtSec: 2, Zone: "a"},
				{Kind: EventFailZone, AtSec: 5, Zone: "a"},
				{Kind: EventFailZone, AtSec: 7, Zone: "a"},
			}
		}, "matches no live node"},
		{"failzone wiping the cluster", func(s *Spec) {
			s.Nodes = 1
			s.Events = []NodeEvent{
				{Kind: EventJoin, AtSec: 1, Zone: "a"},
				{Kind: EventFail, AtSec: 3, Node: 0},
				{Kind: EventFailZone, AtSec: 5, Zone: "a"},
			}
		}, "every live node"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: validation passed, want error containing %q", tc.name, tc.errPart)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.errPart)
		}
	}
}

func TestValidationAllowsRecoveredCapacity(t *testing.T) {
	// Joined nodes extend the timeline: failing the original nodes is fine
	// once replacements arrived, and the joined node is itself drainable.
	s := quick("churny", "join/leave cycle")
	s.Nodes = 2
	s.Events = []NodeEvent{
		{Kind: EventJoin, AtSec: 2},
		{Kind: EventFail, AtSec: 4, Node: 0},
		{Kind: EventDrain, AtSec: 6, Node: 2},
		{Kind: EventJoin, AtSec: 7, Cores: 4},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFailZoneExpandsToMembers(t *testing.T) {
	// Node IDs are append-only in (time, declaration) order, so zone
	// membership resolves statically: the two rack-a joins get IDs 4 and 6
	// (an unzoned join takes 5 in between), and the failzone expands to
	// exactly those, ascending, at one instant.
	s := quick("zones", "failzone fixture")
	s.Events = []NodeEvent{
		{Kind: EventJoin, AtSec: 1, Zone: "a"},
		{Kind: EventJoin, AtSec: 2},
		{Kind: EventJoin, AtSec: 3, Zone: "a"},
		{Kind: EventFailZone, AtSec: 8, Zone: "a"},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	resolved, err := s.resolveEvents()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, ev := range resolved {
		got = append(got, fmt.Sprintf("%s@%.0f node=%d zone=%q", ev.kind, ev.atSec, ev.node, ev.zone))
	}
	want := []string{
		`join@1 node=-1 zone=""`,
		`join@2 node=-1 zone=""`,
		`join@3 node=-1 zone=""`,
		`fail@8 node=4 zone="a"`,
		`fail@8 node=6 zone="a"`,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resolved timeline = %v, want %v", got, want)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","nodes":2,"duration_sec":5,"phasez":[]}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestRateMultiplierSemantics(t *testing.T) {
	s := quick("m", "multiplier fixture")
	s.Phases = []Phase{
		{Kind: PhaseRamp, StartSec: 2, DurationSec: 4, Params: map[string]float64{"from": 0.5, "to": 1.5}},
		{Kind: PhaseFlashCrowd, StartSec: 10, DurationSec: 2, Params: map[string]float64{"factor": 3}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	mult := s.RateMultiplier()
	at := func(sec float64) float64 { return mult(simtime.Time(sec * float64(simtime.Second))) }
	if got := at(0); got != 1 {
		t.Fatalf("before phases: %v, want 1", got)
	}
	if got := at(4); got != 1.0 {
		t.Fatalf("ramp midpoint: %v, want 1.0", got)
	}
	if got := at(8); got != 1.5 {
		t.Fatalf("after ramp: %v, want the ramp target to stick", got)
	}
	if got := at(11); got != 3 {
		t.Fatalf("inside flash crowd: %v, want 3", got)
	}
	if got := at(13); got != 1 {
		t.Fatalf("after flash crowd: %v, want fallback to 1", got)
	}
}

func TestByNameReturnsFreshCopies(t *testing.T) {
	a, _ := ByName("flashcrowd")
	b, _ := ByName("flashcrowd")
	if a == b {
		t.Fatal("ByName returned a shared pointer")
	}
	a.Phases[0].Params["factor"] = 99
	if b.Phases[0].Params["factor"] == 99 {
		t.Fatal("mutating one copy leaked into the other")
	}
}

func TestResolveDispatchesNamesAndPaths(t *testing.T) {
	if _, err := Resolve("nodefail"); err != nil {
		t.Fatalf("builtin by name: %v", err)
	}
	if _, err := Resolve("no-such-scenario"); err == nil {
		t.Fatal("unknown name accepted")
	}
	s, _ := ByName("nodedrain")
	data, _ := s.JSON()
	path := t.TempDir() + "/s.json"
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	loaded, err := Resolve(path)
	if err != nil {
		t.Fatalf("load from path: %v", err)
	}
	if !reflect.DeepEqual(s, loaded) {
		t.Fatal("loaded spec differs from source")
	}
}
