// Package scenario is the declarative stress-scenario layer of the
// Elasticutor reproduction. A Spec composes phased workload dynamics (ramp,
// flash crowd, diurnal wave, skew drift, hotspot migration, key churn) with
// timed cluster events (node join, graceful drain, hard failure) over the
// micro-benchmark topology; the interpreter schedules everything on the
// engine's event heap before the run starts, so scenario runs are exactly
// as deterministic as plain ones.
//
// Specs are plain Go structs with a stable JSON form: built-ins live in the
// registry (Names/ByName), user scenarios load from files
// (`elasticutor-sim -scenario my.json`).
package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/simtime"
)

// Phase kinds. Rate-class phases modulate the offered load; key-class phases
// mutate the key-frequency mapping.
const (
	PhaseRamp       = "ramp"       // rate: interpolate from×base → to×base
	PhaseFlashCrowd = "flashcrowd" // rate: factor×base for the phase, then back
	PhaseDiurnal    = "diurnal"    // rate: sine wave around base
	PhaseSkewDrift  = "skewdrift"  // keys: morph zipf skew from → to
	PhaseHotspot    = "hotspot"    // keys: rotate the hot set every period
	PhaseKeyChurn   = "keychurn"   // keys: partially shuffle identities every period
)

// rateClass reports whether a phase kind modulates the offered rate.
func rateClass(kind string) bool {
	switch kind {
	case PhaseRamp, PhaseFlashCrowd, PhaseDiurnal:
		return true
	}
	return false
}

func knownPhase(kind string) bool {
	switch kind {
	case PhaseRamp, PhaseFlashCrowd, PhaseDiurnal, PhaseSkewDrift, PhaseHotspot, PhaseKeyChurn:
		return true
	}
	return false
}

// Node event kinds.
const (
	EventJoin     = "join"     // a node with Cores cores (0 = cluster default) joins
	EventDrain    = "drain"    // node Node leaves gracefully (state migrates off)
	EventFail     = "fail"     // node Node fails hard (its state and queues are lost)
	EventFailZone = "failzone" // every live node labeled Zone fails at once
)

// Phase is one timed workload dynamic. Params are kind-specific knobs, all
// optional:
//
//	ramp:       from (0.25), to (1.25) — multipliers of the base rate
//	flashcrowd: factor (3)
//	diurnal:    amplitude (0.5), period_sec (10)
//	skewdrift:  from (workload skew), to (1.1)
//	hotspot:    period_sec (2), shift (keys/16)
//	keychurn:   period_sec (1), fraction (0.1)
type Phase struct {
	Kind        string             `json:"kind"`
	StartSec    float64            `json:"start_sec"`
	DurationSec float64            `json:"duration_sec"`
	Params      map[string]float64 `json:"params,omitempty"`
}

func (p Phase) endSec() float64 { return p.StartSec + p.DurationSec }

func (p Phase) param(name string, def float64) float64 {
	if v, ok := p.Params[name]; ok {
		return v
	}
	return def
}

// NodeEvent is one timed cluster capacity change. Zone models correlated
// failure domains (a rack, an availability zone): a join may carry a zone
// label, and a failzone event fails every live node carrying that label in
// one instant. Only joined nodes can be labeled — the initial nodes are
// zoneless and immune to failzone.
type NodeEvent struct {
	Kind  string  `json:"kind"`
	AtSec float64 `json:"at_sec"`
	Node  int     `json:"node,omitempty"`  // drain/fail: the node to remove
	Cores int     `json:"cores,omitempty"` // join: cores on the new node (0 = default)
	Zone  string  `json:"zone,omitempty"`  // join: label the new node; failzone: the label to fail
}

// WorkloadSpec parameterizes the micro-benchmark workload a scenario runs.
// Zero values take the quick-scale defaults (2500 keys, zipf 0.75, 128 B
// tuples, 1 ms CPU, 32 KB shards, 90% of CPU capacity offered).
type WorkloadSpec struct {
	Keys           int     `json:"keys,omitempty"`
	Skew           float64 `json:"skew,omitempty"`
	TupleBytes     int     `json:"tuple_bytes,omitempty"`
	CPUCostUS      float64 `json:"cpu_cost_us,omitempty"`
	StateKB        int     `json:"state_kb,omitempty"`
	ShufflesPerMin float64 `json:"shuffles_per_min,omitempty"`
	// RateFraction sets the base offered load as a fraction of the initial
	// cluster's elastic CPU capacity (default 0.9). RatePerSec overrides it
	// with an absolute rate.
	RateFraction float64 `json:"rate_fraction,omitempty"`
	RatePerSec   float64 `json:"rate_per_sec,omitempty"`
}

// Spec is one declarative scenario.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	Nodes           int `json:"nodes"`
	SourceExecutors int `json:"source_executors,omitempty"`
	Y               int `json:"y,omitempty"`
	Z               int `json:"z,omitempty"`
	OpShards        int `json:"op_shards,omitempty"`

	DurationSec float64 `json:"duration_sec"`
	WarmupSec   float64 `json:"warmup_sec,omitempty"`

	Workload WorkloadSpec `json:"workload"`
	Phases   []Phase      `json:"phases,omitempty"`
	Events   []NodeEvent  `json:"events,omitempty"`
}

// Duration returns the virtual run length.
func (s *Spec) Duration() simtime.Duration { return secs(s.DurationSec) }

// Warmup returns the span excluded from reported metrics.
func (s *Spec) Warmup() simtime.Duration { return secs(s.WarmupSec) }

func secs(v float64) simtime.Duration { return simtime.FromSeconds(v) }

// Validate checks the spec's internal consistency: known kinds, phases
// inside the horizon, no ambiguous overlaps (two rate phases, or two
// key phases of the same kind), and a cluster-event timeline that never
// removes an unknown, dead, or last-standing node.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if s.Nodes < 1 {
		return fmt.Errorf("scenario %q: nodes must be >= 1", s.Name)
	}
	if s.DurationSec <= 0 {
		return fmt.Errorf("scenario %q: duration_sec must be > 0", s.Name)
	}
	if s.WarmupSec < 0 || s.WarmupSec >= s.DurationSec {
		return fmt.Errorf("scenario %q: warmup_sec must be in [0, duration)", s.Name)
	}
	for i, ph := range s.Phases {
		if !knownPhase(ph.Kind) {
			return fmt.Errorf("scenario %q: phase %d has unknown kind %q", s.Name, i, ph.Kind)
		}
		if ph.StartSec < 0 || ph.DurationSec <= 0 {
			return fmt.Errorf("scenario %q: phase %d (%s) needs start >= 0 and duration > 0", s.Name, i, ph.Kind)
		}
		if ph.endSec() > s.DurationSec {
			return fmt.Errorf("scenario %q: phase %d (%s) ends at %.1fs, past the %.1fs horizon",
				s.Name, i, ph.Kind, ph.endSec(), s.DurationSec)
		}
		for k, v := range ph.Params {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("scenario %q: phase %d (%s) param %q = %v", s.Name, i, ph.Kind, k, v)
			}
		}
		if v, ok := ph.Params["period_sec"]; ok && v <= 0 {
			return fmt.Errorf("scenario %q: phase %d (%s) period_sec must be > 0", s.Name, i, ph.Kind)
		}
		for j := 0; j < i; j++ {
			prev := s.Phases[j]
			overlaps := ph.StartSec < prev.endSec() && prev.StartSec < ph.endSec()
			if !overlaps {
				continue
			}
			ambiguous := (rateClass(ph.Kind) && rateClass(prev.Kind)) || ph.Kind == prev.Kind
			if ambiguous {
				return fmt.Errorf("scenario %q: phases %d (%s) and %d (%s) overlap",
					s.Name, j, prev.Kind, i, ph.Kind)
			}
		}
	}
	return s.validateEvents()
}

// validateEvents replays the event timeline against the evolving node set.
func (s *Spec) validateEvents() error {
	_, err := s.resolveEvents()
	return err
}

// resolvedEvent is one concrete cluster action after the timeline replay:
// node IDs assigned to joins (append-only, in (time, declaration) order) and
// failzone events expanded into per-member hard failures.
type resolvedEvent struct {
	kind  string // join, drain, or fail
	atSec float64
	index int    // declaration index of the originating NodeEvent
	node  int    // drain/fail target (-1 for joins)
	cores int    // join size
	zone  string // non-empty for failzone expansions (labels)
}

// resolveEvents validates the event timeline and returns it in applied form.
// Because node IDs are append-only and events apply in (time, declaration)
// order — the same order the interpreter schedules them on the clock — every
// join's ID, and therefore every zone's membership at any instant, is known
// statically.
func (s *Spec) resolveEvents() ([]resolvedEvent, error) {
	order := make([]int, len(s.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.Events[order[a]].AtSec < s.Events[order[b]].AtSec
	})
	alive := make(map[int]bool, s.Nodes)
	for n := 0; n < s.Nodes; n++ {
		alive[n] = true
	}
	zoneOf := make(map[int]string)
	total, liveCount := s.Nodes, s.Nodes
	var out []resolvedEvent
	for _, i := range order {
		ev := s.Events[i]
		if ev.AtSec < 0 || ev.AtSec > s.DurationSec {
			return nil, fmt.Errorf("scenario %q: event %d (%s) at %.1fs is outside the %.1fs horizon",
				s.Name, i, ev.Kind, ev.AtSec, s.DurationSec)
		}
		switch ev.Kind {
		case EventJoin:
			if ev.Cores < 0 {
				return nil, fmt.Errorf("scenario %q: event %d: negative cores", s.Name, i)
			}
			if ev.Node != 0 {
				// Joined nodes get the next append-only ID; a node field here
				// means the author expected to choose it — fail loudly.
				return nil, fmt.Errorf("scenario %q: event %d: join events take cores, not node (IDs are assigned in order)", s.Name, i)
			}
			if ev.Zone != "" {
				zoneOf[total] = ev.Zone
			}
			alive[total] = true
			out = append(out, resolvedEvent{kind: EventJoin, atSec: ev.AtSec, index: i, node: -1, cores: ev.Cores})
			total++
			liveCount++
		case EventDrain, EventFail:
			if ev.Cores != 0 {
				return nil, fmt.Errorf("scenario %q: event %d (%s) takes node, not cores", s.Name, i, ev.Kind)
			}
			if ev.Zone != "" {
				return nil, fmt.Errorf("scenario %q: event %d (%s) targets a node, not a zone (use failzone)", s.Name, i, ev.Kind)
			}
			if !alive[ev.Node] {
				return nil, fmt.Errorf("scenario %q: event %d (%s) targets node %d, which is not alive then",
					s.Name, i, ev.Kind, ev.Node)
			}
			if liveCount == 1 {
				return nil, fmt.Errorf("scenario %q: event %d (%s) would remove the last node", s.Name, i, ev.Kind)
			}
			delete(alive, ev.Node)
			out = append(out, resolvedEvent{kind: ev.Kind, atSec: ev.AtSec, index: i, node: ev.Node})
			liveCount--
		case EventFailZone:
			if ev.Zone == "" {
				return nil, fmt.Errorf("scenario %q: event %d: failzone needs a zone", s.Name, i)
			}
			if ev.Node != 0 || ev.Cores != 0 {
				return nil, fmt.Errorf("scenario %q: event %d: failzone takes a zone, not node or cores", s.Name, i)
			}
			var members []int
			for n, z := range zoneOf {
				if z == ev.Zone && alive[n] {
					members = append(members, n)
				}
			}
			sort.Ints(members)
			if len(members) == 0 {
				return nil, fmt.Errorf("scenario %q: event %d: failzone %q matches no live node then", s.Name, i, ev.Zone)
			}
			if len(members) >= liveCount {
				return nil, fmt.Errorf("scenario %q: event %d: failzone %q would remove every live node", s.Name, i, ev.Zone)
			}
			for _, n := range members {
				delete(alive, n)
				out = append(out, resolvedEvent{kind: EventFail, atSec: ev.AtSec, index: i, node: n, zone: ev.Zone})
				liveCount--
			}
		default:
			return nil, fmt.Errorf("scenario %q: event %d has unknown kind %q", s.Name, i, ev.Kind)
		}
	}
	return out, nil
}

// KeyPhaseKinds returns the kinds of the spec's key-space phases (skew
// drift, hotspot, key churn) — the phases that need the scenario's own
// sampler and therefore cannot run on a user-supplied topology.
func (s *Spec) KeyPhaseKinds() []string {
	var out []string
	for _, ph := range s.Phases {
		if knownPhase(ph.Kind) && !rateClass(ph.Kind) {
			out = append(out, ph.Kind)
		}
	}
	return out
}

// JSON renders the spec in its canonical indented form.
func (s *Spec) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Parse decodes and validates a JSON spec. Unknown fields are rejected —
// a typoed phase parameter should fail loudly, not silently do nothing.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a JSON spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// Resolve returns the named built-in, or — when the argument looks like a
// path (contains a separator or .json suffix) — loads the spec from disk.
func Resolve(nameOrPath string) (*Spec, error) {
	if strings.ContainsAny(nameOrPath, `/\`) || strings.HasSuffix(nameOrPath, ".json") {
		return Load(nameOrPath)
	}
	return ByName(nameOrPath)
}
