package scenario

import (
	"os"
	"testing"
)

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

func TestScenarioRunsAreDeterministic(t *testing.T) {
	// The heaviest determinism claim: a churn scenario produces a
	// byte-identical fingerprint on repeated runs.
	for _, name := range []string{"nodefail", "blackfriday"} {
		run := func() string {
			s, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			r, err := s.Run("elasticutor", 42)
			if err != nil {
				t.Fatal(err)
			}
			return Fingerprint(name, r)
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("%s: fingerprints differ:\n%s\n%s", name, a, b)
		}
	}
}

func TestChurnScenariosTouchTheChurnPath(t *testing.T) {
	cases := map[string]func(j, d, f int) bool{
		"nodejoin":  func(j, d, f int) bool { return j == 1 && d == 0 && f == 0 },
		"nodedrain": func(j, d, f int) bool { return d == 1 },
		"nodefail":  func(j, d, f int) bool { return f == 1 },
	}
	for name, ok := range cases {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run("rc", 7)
		if err != nil {
			t.Fatal(err)
		}
		if !ok(r.NodeJoins, r.NodeDrains, r.NodeFails) {
			t.Errorf("%s: joins/drains/fails = %d/%d/%d", name, r.NodeJoins, r.NodeDrains, r.NodeFails)
		}
		if r.Processed == 0 {
			t.Errorf("%s: nothing processed", name)
		}
	}
}

func TestFlashcrowdActuallyBursts(t *testing.T) {
	s, err := ByName("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run("elasticutor", 11)
	if err != nil {
		t.Fatal(err)
	}
	// During the burst the offered load exceeds capacity: backpressure must
	// have engaged (blocked tuples), which never happens in steady.
	if r.Blocked == 0 {
		t.Fatal("flash crowd never saturated the cluster")
	}
	st, _ := ByName("steady")
	rs, err := st.Run("elasticutor", 11)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Blocked >= r.Blocked {
		t.Fatalf("steady blocked %d >= flashcrowd %d", rs.Blocked, r.Blocked)
	}
}

func TestSkewDriftMutatesDistribution(t *testing.T) {
	s, err := ByName("skewdrift")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Build("static", 3)
	if err != nil {
		t.Fatal(err)
	}
	before := inst.Zipf.Prob(inst.Zipf.HottestKeys(1)[0])
	inst.Engine.Run(s.Duration())
	after := inst.Zipf.Prob(inst.Zipf.HottestKeys(1)[0])
	if after <= before {
		t.Fatalf("hot-key mass did not grow under skew drift: %v -> %v", before, after)
	}
}

func TestBuildRejectsUnknownPolicy(t *testing.T) {
	s, _ := ByName("steady")
	if _, err := s.Build("chaos-monkey", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
