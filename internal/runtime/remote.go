package runtime

import (
	"time"

	"repro/internal/engine"
	"repro/internal/simtime"
)

// Remote offloads the engine's per-node work to out-of-process agents: the
// distributed backend (internal/dist) implements it over real sockets. The
// engine keeps everything that must stay at the control plane — placement,
// routing, the policy host, the §3.3 safe points, admission and the
// conservation ledger — while the Remote carries the costs the paper argues
// about to wherever they are real: an executor's CPU burn and resident shard
// payloads live in the agent process of its home node, and every state
// migration serializes and transfers actual bytes over the wire.
//
// Contract:
//
//   - Process and the Move* calls block until the agent acks (they are the
//     measured costs); an error means the node's agent is unreachable and the
//     caller accounts the work as destroyed-by-failure. Implementations must
//     fail fast once a connection dies — workers block in Process.
//   - NodeAdded is called on the control goroutine before any grant lands on
//     the new node; an error vetoes the join.
//   - NodeRemoved(graceful=true) is called after the node's state has been
//     evacuated; graceful=false may be the echo of a failure the Remote
//     itself reported (agents observed dead are removed idempotently).
//   - StateTouch and DropExecState are asynchronous best-effort bookkeeping
//     (a lost touch only skews a later migration's payload size).
//
// Executors are identified by the RemoteID assigned at creation, stable for
// the engine's lifetime and unique across operators; shard identifiers are
// the executor-local shard space (Z or OpShards).
type Remote interface {
	// NodeAdded ensures an agent process serves the node (spawn or adopt).
	NodeAdded(node, cores int) error
	// NodeRemoved releases the node's agent: graceful shuts it down after
	// the drain, hard kills it (or acknowledges its observed death).
	NodeRemoved(node int, graceful bool)
	// Process burns wallCost of CPU time on the node's agent and touches the
	// executor's shards there (materializing nominal state on first touch).
	// Blocks until the agent acks — the measured remote service time.
	Process(node int, exec RemoteExec, wallCost time.Duration, shards []uint32) error
	// StateTouch materializes shards at the executor's home agent without
	// burning cost — the state half of a batch processed by a worker granted
	// on a different node. Asynchronous, best-effort.
	StateTouch(node int, exec RemoteExec, shards []uint32)
	// MoveShard serializes one shard out of the source agent, moves the
	// payload through the control plane, and installs it at the destination
	// agent, returning the payload size and the agent-measured serialize
	// time. The wall duration of the whole call is the transfer measurement.
	MoveShard(srcNode, dstNode int, src, dst RemoteExec, shard uint32) (bytes int64, serialize time.Duration, err error)
	// MoveExecState relocates an executor's entire resident state between
	// agents (churn rehoming), returning the bytes transferred.
	MoveExecState(srcNode, dstNode int, exec RemoteExec) (int64, error)
	// RedistributeState scatters a retired executor's shards onto surviving
	// executors' agents, following the control plane's assignment.
	RedistributeState(srcNode int, src RemoteExec, dests []RemoteDest) (int64, error)
	// DropExecState discards an executor's agent-side state (hard failure
	// write-off). Asynchronous, best-effort.
	DropExecState(node int, exec RemoteExec)
}

// RemoteExec is the wire identity of one executor: a stable id plus the
// nominal per-shard byte size agents materialize on first touch.
type RemoteExec struct {
	ID            uint32
	PerShardBytes int
}

// RemoteDest is one destination of a state redistribution.
type RemoteDest struct {
	Node   int
	Exec   RemoteExec
	Shards []uint32
}

// remoteExec returns the executor's wire identity.
func (x *exec) remoteExec() RemoteExec {
	return RemoteExec{ID: x.remoteID, PerShardBytes: x.perShardBytes}
}

// RPCSpan is the causal decomposition of one control↔agent request/reply
// round trip, timed on both ends. The five stages tile the measured RTT
// *exactly* — SendEnqueue + Wire + AgentQueue + AgentService + Reply ==
// RTT to the nanosecond, by construction: the control side measures t0
// (request initiated), t1 (frame written to the socket) and t3 (reply
// received); the agent reports a0 (frame read), its dispatch queue delay and
// its service time in a reply preamble; the per-connection clock-offset
// estimate θ (see the dist ping tick) maps the agent timestamps onto the
// control clock. θ cancels in the stage sum, so a wrong offset estimate only
// moves time between the wire stages and the agent stages — it can even push
// Wire or Reply slightly negative — but never breaks the tiling. All
// durations are wall clock.
type RPCSpan struct {
	Node int
	Type string       // wire message name: "process", "take", "ping", …
	At   simtime.Time // virtual time the span completed (stamped by the engine hook)

	SendEnqueue time.Duration // request initiated → frame on the socket
	Wire        time.Duration // socket → agent read loop (offset-corrected)
	AgentQueue  time.Duration // agent read → handler goroutine running
	AgentService time.Duration // handler work, reply preamble excluded
	Reply       time.Duration // agent reply issued → control waiter woken

	RTT    time.Duration // t3 − t0; identical to Stages()
	Offset time.Duration // clock-offset estimate used for the wire/agent split
	Err    bool          // the agent answered with an error reply
}

// Stages is the sum of the five stage durations — always exactly RTT.
func (s RPCSpan) Stages() time.Duration {
	return s.SendEnqueue + s.Wire + s.AgentQueue + s.AgentService + s.Reply
}

// RemoteTelemetry is the optional telemetry surface of a Remote: aggregated
// RPC timing windows and per-node agent health for Snapshot. The distributed
// backend's Cluster implements it; Snapshot fills the corresponding fields
// whenever the engine's Remote does.
type RemoteTelemetry interface {
	RPCWindows() []engine.RPCWindow
	AgentHealth() []engine.AgentHealth
}

// RemoteSpanSource is the optional per-request span hook of a Remote: fn is
// invoked synchronously after every completed request/reply round trip.
type RemoteSpanSource interface {
	OnRPC(fn func(RPCSpan))
}

// ObserveRPC installs fn as the engine's RPC-span observer, stamping each
// span with the virtual completion time. Returns false when the engine has no
// Remote or its Remote exposes no spans (the in-process backends). Call
// before Begin; fn runs on request goroutines and must be cheap.
func (e *Engine) ObserveRPC(fn func(RPCSpan)) bool {
	src, ok := e.remote.(RemoteSpanSource)
	if !ok {
		return false
	}
	src.OnRPC(func(sp RPCSpan) {
		sp.At = e.vnow()
		fn(sp)
	})
	return true
}

// remoteSpeedup is the virtual-per-wall factor remote costs are scaled by:
// the engine ships wall durations to agents (they have no scaled clock) and
// converts measured wall round trips back to virtual time.
func (e *Engine) remoteSpeedup() float64 {
	if e.opt.Speedup > 1 {
		return e.opt.Speedup
	}
	return 1
}

// toWall converts a virtual duration to agent wall time.
func (e *Engine) toWall(d time.Duration) time.Duration {
	return time.Duration(float64(d) / e.remoteSpeedup())
}

// toVirtual converts a measured wall duration to virtual time.
func (e *Engine) toVirtual(d time.Duration) time.Duration {
	return time.Duration(float64(d) * e.remoteSpeedup())
}
