package runtime

import "time"

// Remote offloads the engine's per-node work to out-of-process agents: the
// distributed backend (internal/dist) implements it over real sockets. The
// engine keeps everything that must stay at the control plane — placement,
// routing, the policy host, the §3.3 safe points, admission and the
// conservation ledger — while the Remote carries the costs the paper argues
// about to wherever they are real: an executor's CPU burn and resident shard
// payloads live in the agent process of its home node, and every state
// migration serializes and transfers actual bytes over the wire.
//
// Contract:
//
//   - Process and the Move* calls block until the agent acks (they are the
//     measured costs); an error means the node's agent is unreachable and the
//     caller accounts the work as destroyed-by-failure. Implementations must
//     fail fast once a connection dies — workers block in Process.
//   - NodeAdded is called on the control goroutine before any grant lands on
//     the new node; an error vetoes the join.
//   - NodeRemoved(graceful=true) is called after the node's state has been
//     evacuated; graceful=false may be the echo of a failure the Remote
//     itself reported (agents observed dead are removed idempotently).
//   - StateTouch and DropExecState are asynchronous best-effort bookkeeping
//     (a lost touch only skews a later migration's payload size).
//
// Executors are identified by the RemoteID assigned at creation, stable for
// the engine's lifetime and unique across operators; shard identifiers are
// the executor-local shard space (Z or OpShards).
type Remote interface {
	// NodeAdded ensures an agent process serves the node (spawn or adopt).
	NodeAdded(node, cores int) error
	// NodeRemoved releases the node's agent: graceful shuts it down after
	// the drain, hard kills it (or acknowledges its observed death).
	NodeRemoved(node int, graceful bool)
	// Process burns wallCost of CPU time on the node's agent and touches the
	// executor's shards there (materializing nominal state on first touch).
	// Blocks until the agent acks — the measured remote service time.
	Process(node int, exec RemoteExec, wallCost time.Duration, shards []uint32) error
	// StateTouch materializes shards at the executor's home agent without
	// burning cost — the state half of a batch processed by a worker granted
	// on a different node. Asynchronous, best-effort.
	StateTouch(node int, exec RemoteExec, shards []uint32)
	// MoveShard serializes one shard out of the source agent, moves the
	// payload through the control plane, and installs it at the destination
	// agent, returning the payload size and the agent-measured serialize
	// time. The wall duration of the whole call is the transfer measurement.
	MoveShard(srcNode, dstNode int, src, dst RemoteExec, shard uint32) (bytes int64, serialize time.Duration, err error)
	// MoveExecState relocates an executor's entire resident state between
	// agents (churn rehoming), returning the bytes transferred.
	MoveExecState(srcNode, dstNode int, exec RemoteExec) (int64, error)
	// RedistributeState scatters a retired executor's shards onto surviving
	// executors' agents, following the control plane's assignment.
	RedistributeState(srcNode int, src RemoteExec, dests []RemoteDest) (int64, error)
	// DropExecState discards an executor's agent-side state (hard failure
	// write-off). Asynchronous, best-effort.
	DropExecState(node int, exec RemoteExec)
}

// RemoteExec is the wire identity of one executor: a stable id plus the
// nominal per-shard byte size agents materialize on first touch.
type RemoteExec struct {
	ID            uint32
	PerShardBytes int
}

// RemoteDest is one destination of a state redistribution.
type RemoteDest struct {
	Node   int
	Exec   RemoteExec
	Shards []uint32
}

// remoteExec returns the executor's wire identity.
func (x *exec) remoteExec() RemoteExec {
	return RemoteExec{ID: x.remoteID, PerShardBytes: x.perShardBytes}
}

// remoteSpeedup is the virtual-per-wall factor remote costs are scaled by:
// the engine ships wall durations to agents (they have no scaled clock) and
// converts measured wall round trips back to virtual time.
func (e *Engine) remoteSpeedup() float64 {
	if e.opt.Speedup > 1 {
		return e.opt.Speedup
	}
	return 1
}

// toWall converts a virtual duration to agent wall time.
func (e *Engine) toWall(d time.Duration) time.Duration {
	return time.Duration(float64(d) / e.remoteSpeedup())
}

// toVirtual converts a measured wall duration to virtual time.
func (e *Engine) toVirtual(d time.Duration) time.Duration {
	return time.Duration(float64(d) * e.remoteSpeedup())
}
