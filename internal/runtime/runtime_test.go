package runtime

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// quickSpec is a small scenario kept light enough for race-detector runs on
// one core: a 4-node cluster at a fraction of capacity with a short flash
// crowd.
func quickSpec() *scenario.Spec {
	return &scenario.Spec{
		Name:        "rt-quick",
		Nodes:       4,
		DurationSec: 6,
		WarmupSec:   1,
		Workload:    scenario.WorkloadSpec{RateFraction: 0.25},
		Phases: []scenario.Phase{
			{Kind: scenario.PhaseFlashCrowd, StartSec: 2, DurationSec: 2,
				Params: map[string]float64{"factor": 2.0}},
		},
	}
}

func quickOpts() ScenarioOptions {
	return ScenarioOptions{Options: Options{Speedup: 20}}
}

// TestRuntimeSmoke is the short-horizon wall-clock smoke run CI exercises
// under the race detector: the elasticutor policy on the micro workload must
// complete, process tuples, and keep the ledger conserved.
func TestRuntimeSmoke(t *testing.T) {
	r, led, err := RunScenario(quickSpec(), "elasticutor", 42, quickOpts())
	if err != nil {
		t.Fatalf("runtime run failed: %v", err)
	}
	if !led.Conserved() {
		t.Fatalf("tuple ledger not conserved: %v", led)
	}
	if led.Processed == 0 {
		t.Fatalf("runtime processed nothing: %v", led)
	}
	if r.Policy != "elasticutor" {
		t.Fatalf("report policy = %q", r.Policy)
	}
	if r.LostStateBytes != 0 {
		t.Fatalf("lost state without failures: %d", r.LostStateBytes)
	}
	if !strings.Contains(r.String(), "elasticutor") {
		t.Fatalf("report string: %s", r)
	}
}

// TestRuntimeMicroDirect runs the micro setup through New without the
// scenario layer (the facade path for user topologies).
func TestRuntimeMicroDirect(t *testing.T) {
	pol, err := policy.ByName("static")
	if err != nil {
		t.Fatal(err)
	}
	setup := core.MicroSetup(core.MicroOptions{
		Policy: pol,
		Nodes:  2,
		Spec:   workload.Spec{Keys: 500, Skew: 0.7, TupleBytes: 128, CPUCost: simtime.Millisecond, ShardStateKB: 16},
		Rate:   2000,
		Batch:  8,
		Seed:   7,
	})
	rt, err := New(setup.Config, Options{Speedup: 25})
	if err != nil {
		t.Fatal(err)
	}
	r, err := rt.Run(3 * simtime.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	led := rt.Ledger()
	if !led.Conserved() {
		t.Fatalf("ledger not conserved: %v", led)
	}
	if r.Processed == 0 {
		t.Fatal("no tuples processed")
	}
}

// TestRuntimeRunTwiceRefused pins the single-run contract.
func TestRuntimeRunTwiceRefused(t *testing.T) {
	rt, _, err := BuildScenario(quickSpec(), "static", 1, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(time1()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(time1()); err == nil {
		t.Fatal("second Run must be refused")
	}
}

func time1() simtime.Duration { return simtime.Second }
