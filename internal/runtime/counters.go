package runtime

import "sync/atomic"

// numLanes is the stripe width of the hot-path counters. Every dataflow
// goroutine (worker, source, protocol replayer) is assigned a lane at spawn;
// its counter updates land on that lane's cache line, and readers fold all
// lanes. Must be a power of two (lane selection masks).
const numLanes = 8

// laneCell is one striped counter cell, padded so neighbouring lanes never
// share a cache line (64-byte lines; the atomic is 8 bytes).
type laneCell struct {
	v atomic.Int64
	_ [56]byte
}

// stripedInt64 is a write-mostly counter for the tuple hot path: Add touches
// only the caller's lane, Load folds every lane. Folding is O(numLanes) and
// not a snapshot-consistent read — exact only when writers are quiesced
// (drain waits, shutdown, report assembly) and monotonically convergent
// otherwise, which is all the runtime's readers need.
type stripedInt64 struct {
	cells [numLanes]laneCell
}

func (s *stripedInt64) Add(lane int, d int64) {
	s.cells[lane&(numLanes-1)].v.Add(d)
}

func (s *stripedInt64) Load() int64 {
	var total int64
	for i := range s.cells {
		total += s.cells[i].v.Load()
	}
	return total
}

// nextLane assigns a counter lane to a newly spawned dataflow goroutine.
func (e *Engine) nextLane() int {
	return int(e.laneSeq.Add(1)) & (numLanes - 1)
}
