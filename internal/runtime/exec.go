package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/state"
	"repro/internal/stream"
)

// numStripes is the lock striping of an executor's shard-state map. Shards
// hash onto stripes; one stripe lock serializes state access for all shards
// on it, which keeps per-key state safe under a many-worker pool without a
// lock per shard.
const numStripes = 64

// shardData is the resident state of one shard: the nominal byte size the
// migration cost model charges, plus the real per-key values handler-based
// operators read and write.
type shardData struct {
	bytes int
	keys  map[stream.Key]interface{}
}

type stripe struct {
	mu     sync.Mutex
	shards map[state.ShardID]*shardData
}

// worker is one core grant: a goroutine bound to a node, pulling from the
// executor's input channel. Revoking the grant closes quit; the worker exits
// after the tuple in service.
type worker struct {
	node int
	quit chan struct{}
}

// exec is one executor: a goroutine pool behind a buffered input channel of
// tuple batches (one channel operation admits a whole batch).
type exec struct {
	e    *Engine
	o    *op
	name string
	idx  int // index within the operator at placement (naming only)

	in chan []stream.Tuple

	// queuedW is the tuple weight currently queued (or committed to the
	// queue) — the credit the source's backpressure check spends against.
	queuedW atomic.Int64

	// Grant bookkeeping. Mutated only on the control goroutine (placement
	// happens before it starts); gmu makes reads from other goroutines
	// (conformance accessors, scheduler input assembly) safe.
	gmu     sync.Mutex
	local   int // main-process node
	workers []*worker
	byNode  map[int]int
	retired bool

	zShards       int // shard space (Z, or OpShards for op-sharded layouts)
	perShardBytes int
	remoteID      uint32 // wire identity when the engine runs with a Remote

	stripes [numStripes]*stripe

	// Cumulative counters (atomic: workers and sources touch them).
	arrived atomic.Int64
	dropped atomic.Int64
	batches atomic.Int64
	active  atomic.Int64

	// Window counters for ExecutorLoads (reset on the control goroutine).
	winArrived   atomic.Int64
	winProcessed atomic.Int64
	winBusyNS    atomic.Int64
	winInBytes   atomic.Int64
	winOutBytes  atomic.Int64
	blockedW     atomic.Int64
	winStart     simtime.Time // control goroutine only
}

// newExec builds an executor homed on the given node, mirroring the
// simulator's per-paradigm state layout (internal shards for elastic
// executors, operator-level shards for the baselines).
func (e *Engine) newExec(o *op, idx, local int) *exec {
	x := &exec{
		e:      e,
		o:      o,
		name:   fmt.Sprintf("%s-%d", o.meta.Name, idx),
		idx:    idx,
		local:  local,
		byNode: make(map[int]int),
		in:     make(chan []stream.Tuple, e.queueDepth()),
	}
	for i := range x.stripes {
		x.stripes[i] = &stripe{shards: make(map[state.ShardID]*shardData)}
	}
	e.remoteSeq++
	x.remoteID = e.remoteSeq
	x.zShards = e.cfg.Z
	x.perShardBytes = o.meta.StatePerShard
	if o.opSharded {
		x.zShards = e.cfg.OpShards
		if x.perShardBytes > 0 {
			total := o.meta.StatePerShard * e.cfg.Z * e.cfg.Y
			x.perShardBytes = total / e.cfg.OpShards
			if x.perShardBytes < 1 {
				x.perShardBytes = 1
			}
		}
	}
	return x
}

func (x *exec) shardOf(k stream.Key) state.ShardID {
	if x.o.opSharded {
		return state.ShardID(k.OperatorShard(x.zShards))
	}
	return state.ShardID(k.Shard(x.zShards))
}

func (x *exec) stripeFor(s state.ShardID) *stripe {
	return x.stripes[uint64(s)%numStripes]
}

// grant adds one core grant on a node (bookkeeping only; startWorkers spawns
// the goroutines once the run begins).
func (x *exec) grant(node int) {
	w := &worker{node: node, quit: make(chan struct{})}
	x.gmu.Lock()
	x.workers = append(x.workers, w)
	x.byNode[node]++
	x.gmu.Unlock()
	if x.e.started {
		x.e.wg.Add(1)
		go x.runWorker(w)
	}
}

// startWorkers launches goroutines for the grants made during placement.
func (x *exec) startWorkers() {
	x.gmu.Lock()
	ws := append([]*worker(nil), x.workers...)
	x.gmu.Unlock()
	for _, w := range ws {
		x.e.wg.Add(1)
		go x.runWorker(w)
	}
}

// revoke removes one grant on the given node; the worker exits after its
// current tuple. The executor's last grant is never revoked (an executor
// always keeps one core) unless force is set (retirement).
func (x *exec) revoke(node int, force bool) bool {
	x.gmu.Lock()
	defer x.gmu.Unlock()
	if !force && len(x.workers) <= 1 {
		return false
	}
	for i, w := range x.workers {
		if w.node == node {
			close(w.quit)
			x.workers = append(x.workers[:i], x.workers[i+1:]...)
			x.byNode[node]--
			if x.byNode[node] == 0 {
				delete(x.byNode, node)
			}
			return true
		}
	}
	return false
}

// grants returns a copy of the per-node grant counts.
func (x *exec) grants() map[int]int {
	x.gmu.Lock()
	defer x.gmu.Unlock()
	out := make(map[int]int, len(x.byNode))
	for n, c := range x.byNode {
		out[n] = c
	}
	return out
}

func (x *exec) grantCount() int {
	x.gmu.Lock()
	defer x.gmu.Unlock()
	return len(x.workers)
}

// localNode reads the main-process node under gmu: churn rehoming writes
// x.local on the control goroutine while repartition goroutines read it.
func (x *exec) localNode() int {
	x.gmu.Lock()
	defer x.gmu.Unlock()
	return x.local
}

func (x *exec) runWorker(w *worker) {
	defer x.e.wg.Done()
	defer x.e.guard("executor " + x.name)
	lane := x.e.nextLane()
	for {
		// A revoked or stopped worker leaves before taking more work, even
		// if the queue is hot.
		select {
		case <-w.quit:
			return
		case <-x.e.stopWorkers:
			return
		default:
		}
		select {
		case <-w.quit:
			return
		case <-x.e.stopWorkers:
			return
		case ts := <-x.in:
			x.process(ts, lane, w.node)
		}
	}
}

// process services one batch of tuple events: pay the modeled CPU cost in
// (virtual) wall time once for the whole batch, run the user handler per
// tuple against the striped state (the stripe lock is held across runs of
// same-stripe tuples), account per batch on the worker's counter lane, and
// emit the pooled fan-out downstream. Takes ownership of ts. wnode is the
// grant (worker) node the batch executes on — in remote mode the agent that
// burns the CPU cost.
func (x *exec) process(ts []stream.Tuple, lane, wnode int) {
	x.active.Add(1)
	defer x.active.Add(-1)

	var w int64
	var cost simtime.Duration
	traced := false
	for i := range ts {
		w += int64(ts[i].Weight)
		cost += x.costOf(ts[i]) * simtime.Duration(ts[i].Weight)
		traced = traced || ts[i].Mark != 0
	}
	x.queuedW.Add(-w)
	if rem := x.e.remote; rem != nil {
		// Remote execution: the worker's agent burns the cost and the home
		// agent materializes the touched shards' real payloads; the measured
		// round trip (dispatch + wire + burn) is the batch's service time.
		// An unreachable agent destroys the batch with failure accounting —
		// the node's death reaches the control plane separately.
		wire := make([]uint32, len(ts))
		for i := range ts {
			wire[i] = uint32(x.shardOf(ts[i].Key))
		}
		rx := x.remoteExec()
		home := x.localNode()
		t0 := time.Now()
		var err error
		if wnode == home {
			err = rem.Process(wnode, rx, x.e.toWall(cost), wire)
		} else {
			err = rem.Process(wnode, rx, x.e.toWall(cost), nil)
			rem.StateTouch(home, rx, wire)
		}
		if err != nil {
			x.o.inflight.Add(lane, -w)
			x.o.dropFail.Add(w)
			x.dropped.Add(w)
			putTupleBuf(ts)
			return
		}
		cost = x.e.toVirtual(time.Since(t0))
	} else if cost > 0 {
		x.e.clock.Sleep(cost)
	}
	x.winBusyNS.Add(int64(cost))
	if traced {
		// A batch completes together, so every traced member experienced the
		// whole batch's slept cost as service time.
		for i := range ts {
			if ts[i].Mark != 0 {
				ts[i].Svc += cost
			}
		}
	}

	sel := 0
	if x.o.meta.Handler == nil {
		sel = int(x.o.meta.Selectivity)
	}
	var outs []stream.Tuple
	if x.o.meta.Handler != nil || sel >= 1 {
		outs = getTupleBuf(len(ts) * max(sel, 1))
	}
	var outBytes int64
	var cur *stripe
	for i := range ts {
		t := ts[i]
		sh := x.shardOf(t.Key)
		st := x.stripeFor(sh)
		if st != cur {
			if cur != nil {
				cur.mu.Unlock()
			}
			st.mu.Lock()
			cur = st
		}
		from := len(outs)
		if x.o.meta.Handler != nil {
			outs = append(outs, x.o.meta.Handler(t, st.accessor(x, sh, t.Key))...)
		} else {
			// Cost-model-only operators still materialize the shard's nominal
			// state on first touch — the migration and failure cost models
			// (and the simulator's state.Store) charge for every served shard.
			st.shard(x, sh)
			for k := 0; k < sel; k++ {
				outs = append(outs, stream.Tuple{Key: t.Key, Weight: t.Weight, Bytes: x.o.meta.OutBytes, Born: t.Born})
			}
		}
		for j := from; j < len(outs); j++ {
			if outs[j].Bytes == 0 {
				outs[j].Bytes = x.o.meta.OutBytes
			}
			if outs[j].Weight == 0 {
				outs[j].Weight = t.Weight
			}
			if outs[j].Born == 0 {
				outs[j].Born = t.Born
			}
			if t.Mark != 0 {
				// Outputs of a traced input inherit the trace and its stage
				// accumulators (re-stamped to the emission time below).
				outs[j].Mark = t.Mark
				outs[j].Svc += t.Svc
				outs[j].RPStall += t.RPStall
				outs[j].MGStall += t.MGStall
			}
			outBytes += int64(outs[j].TotalBytes())
		}
	}
	if cur != nil {
		cur.mu.Unlock()
	}
	x.winOutBytes.Add(outBytes)

	now := x.e.vnow()
	x.winProcessed.Add(w)
	x.batches.Add(1)
	x.o.inflight.Add(lane, -w)
	x.o.processed.Add(lane, w)

	warm := simtime.Duration(now) >= x.e.cfg.WarmUp
	if traced {
		// Downstream admission stamp: the next operator's hop window starts
		// when its input is emitted, not when the trace was born.
		for j := range outs {
			if outs[j].Mark != 0 {
				outs[j].Mark = now
			}
		}
		if warm {
			// Per-operator anatomy: hop latency (admission → processed) with
			// this batch's slept cost as the service component; the residual
			// is task-queue wait.
			for i := range ts {
				if ts[i].Mark != 0 {
					x.o.anat.Observe(lane, metrics.StageObservation{
						Total:   now.Sub(ts[i].Mark),
						Service: cost,
						Weight:  ts[i].Weight,
					})
				}
			}
		}
	}
	if warm && (x.o.measured || x.o.sink) {
		cell := &x.e.coll.cells[lane&(numLanes-1)]
		cell.mu.Lock()
		if x.o.measured {
			cell.procTotal += w
			cell.procWin += w
		}
		if x.o.sink {
			for i := range ts {
				d := now.Sub(ts[i].Born)
				cell.lat.Observe(d, ts[i].Weight)
				cell.winLat.Observe(d, ts[i].Weight)
				if ts[i].Mark != 0 {
					obs := metrics.StageObservation{
						Total:       d,
						Service:     ts[i].Svc,
						Repartition: ts[i].RPStall,
						Migration:   ts[i].MGStall,
						Weight:      ts[i].Weight,
					}
					cell.stage.Observe(obs)
					cell.winStage.Observe(obs)
				}
			}
		}
		cell.mu.Unlock()
	}

	for _, d := range x.o.meta.Downstream() {
		x.e.deliver(x.e.ops[d], outs, true, lane)
	}
	putTupleBuf(outs)
	putTupleBuf(ts)
}

// streamUnit is the probe tuple for cost-model estimates (fallback μ).
func streamUnit(x *exec) stream.Tuple {
	return stream.Tuple{Bytes: x.o.meta.OutBytes, Weight: 1}
}

func (x *exec) costOf(t stream.Tuple) simtime.Duration {
	if x.o.meta.Cost == nil {
		return 0
	}
	// Cost models price one tuple; weight scales outside.
	unit := t
	unit.Weight = 1
	return x.o.meta.Cost(unit)
}

// shard returns (creating with the nominal byte size) the shard's resident
// state. Caller holds the stripe lock.
func (st *stripe) shard(x *exec, s state.ShardID) *shardData {
	d := st.shards[s]
	if d == nil {
		d = &shardData{bytes: x.perShardBytes, keys: make(map[stream.Key]interface{})}
		st.shards[s] = d
	}
	return d
}

// accessor implements stream.StateAccessor over the striped map. The stripe
// lock is held for the whole handler invocation.
type rtAccessor struct {
	d *shardData
	k stream.Key
}

func (st *stripe) accessor(x *exec, s state.ShardID, k stream.Key) stream.StateAccessor {
	return rtAccessor{d: st.shard(x, s), k: k}
}

func (a rtAccessor) Get() interface{}  { return a.d.keys[a.k] }
func (a rtAccessor) Set(v interface{}) { a.d.keys[a.k] = v }

// stateBytes returns the executor's resident state size: nominal bytes for
// every shard materialized so far.
func (x *exec) stateBytes() int64 {
	var total int64
	for _, st := range x.stripes {
		st.mu.Lock()
		for _, d := range st.shards {
			total += int64(d.bytes)
		}
		st.mu.Unlock()
	}
	return total
}

// peekShardBytes returns a shard's resident byte size without moving it
// (0 if never materialized).
func (x *exec) peekShardBytes(s state.ShardID) int {
	st := x.stripeFor(s)
	st.mu.Lock()
	defer st.mu.Unlock()
	if d := st.shards[s]; d != nil {
		return d.bytes
	}
	return 0
}

// takeShard removes and returns a shard's state (nil if never materialized).
func (x *exec) takeShard(s state.ShardID) *shardData {
	st := x.stripeFor(s)
	st.mu.Lock()
	defer st.mu.Unlock()
	d := st.shards[s]
	delete(st.shards, s)
	return d
}

// putShard installs a migrated shard, merging keys if the destination
// already materialized it.
func (x *exec) putShard(s state.ShardID, d *shardData) {
	if d == nil {
		return
	}
	st := x.stripeFor(s)
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.shards[s]
	if cur == nil {
		st.shards[s] = d
		return
	}
	for k, v := range d.keys {
		cur.keys[k] = v
	}
}

// clampIdx guards a routing decision computed against a snapshot that may
// have been superseded mid-flight (executor retirement shrinks the set).
func clampIdx(idx, n int) int {
	if idx >= 0 && idx < n {
		return idx
	}
	if n <= 0 {
		return 0
	}
	return ((idx % n) + n) % n
}

// routeIdx resolves a tuple's destination executor against a snapshot. For
// the built-in policies the decision is precomputed: dynamic-routing
// operators carry a flat shard→executor table rebuilt at every snapshot swap
// and everything else uses the static operator-level hash — no policy
// dispatch, no allocation. Third-party policies (unknown paradigm) keep the
// general Route call with the mid-flight clamp.
func (e *Engine) routeIdx(o *op, s *opSnap, k stream.Key) int {
	if e.fastRoute {
		if s.table != nil {
			return int(s.table[k.OperatorShard(len(s.table))])
		}
		return k.ExecutorIndex(len(s.execs))
	}
	return clampIdx(e.pol.Route(o, k), len(s.execs))
}

// sendBatch hands a pool-backed batch to one executor's queue: ownership of
// ts transfers to the consumer (a worker, a retiree reaper, or the shutdown
// sweep), which releases it. Per-batch counters land on the caller's lane.
// Blocks on a full queue (natural backpressure); a shutdown while blocked
// accounts the whole batch as residue.
func (e *Engine) sendBatch(o *op, x *exec, ts []stream.Tuple, lane int) {
	if len(ts) == 0 {
		putTupleBuf(ts)
		return
	}
	var w, bytes int64
	for i := range ts {
		w += int64(ts[i].Weight)
		bytes += int64(ts[i].TotalBytes())
	}
	o.inflight.Add(lane, w)
	x.arrived.Add(w)
	x.winArrived.Add(w)
	x.winInBytes.Add(bytes)
	x.queuedW.Add(w)
	select {
	case x.in <- ts:
	case <-e.stopWorkers:
		o.inflight.Add(lane, -w)
		o.dropShut.Add(w)
		x.dropped.Add(w)
		x.queuedW.Add(-w)
		putTupleBuf(ts)
	}
}

// deliver routes a batch of tuples into an operator, grouping by destination
// executor so each destination pays one channel operation. Inter-operator
// edges block on a full queue (natural backpressure along a DAG); replayed
// and redirected tuples use the same path. The caller keeps ownership of ts
// (groups are copied into pooled buffers).
func (e *Engine) deliver(o *op, ts []stream.Tuple, countAdmit bool, lane int) {
	if len(ts) == 0 {
		return
	}
	if countAdmit {
		var w int64
		for i := range ts {
			w += int64(ts[i].Weight)
		}
		o.admitted.Add(lane, w)
	}
	if o.paused.Load() {
		o.bufferAll(ts)
		return
	}
	if o.dynRouting {
		o.recordShardLoadBatch(ts)
	}
	s := o.snap.Load()
	if len(s.execs) == 1 {
		buf := getTupleBuf(len(ts))
		buf = append(buf, ts...)
		e.sendBatch(o, s.execs[0], buf, lane)
		return
	}
	idx := getIdxBuf(len(ts))
	for i := range ts {
		idx = append(idx, int32(e.routeIdx(o, s, ts[i].Key)))
	}
	// Gather per destination, preserving arrival order within each group so
	// a single-worker destination still sees per-key FIFO.
	for xi := range s.execs {
		var buf []stream.Tuple
		for i := range ts {
			if int(idx[i]) != xi {
				continue
			}
			if buf == nil {
				buf = getTupleBuf(len(ts))
			}
			buf = append(buf, ts[i])
		}
		if buf != nil {
			e.sendBatch(o, s.execs[xi], buf, lane)
		}
	}
	putIdxBuf(idx)
}

// replay re-injects tuples buffered during a pause; they were already
// admitted once.
func (e *Engine) replay(o *op, ts []stream.Tuple, lane int) {
	e.deliver(o, ts, false, lane)
}
