package runtime

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

// This file is the runtime backend's side of the Run-handle contract
// (internal/run.RuntimeBackend, satisfied structurally): non-blocking
// start/wait, cooperative cancellation, command injection on the control
// goroutine, thread-safe snapshots, and typed event emission.

// SetOnEvent installs the run-event observer. Must be called before Begin.
func (e *Engine) SetOnEvent(fn func(engine.Event)) { e.onEvent = fn }

// SetOnCommand installs the applied-command observer: fn sees every command
// the control goroutine successfully applies, with At stamped to the virtual
// apply time. Must be called before Begin; nil disables observation.
func (e *Engine) SetOnCommand(fn func(engine.Command)) { e.onCommand = fn }

// observeCmd reports an applied command to the observer (control goroutine).
func (e *Engine) observeCmd(cmd engine.Command) {
	if e.onCommand != nil {
		cmd.At = simtime.Duration(e.vnow())
		e.onCommand(cmd)
	}
}

func (e *Engine) emit(ev engine.Event) {
	if e.onEvent != nil {
		e.onEvent(ev)
	}
}

// ScheduleAt registers fn at a virtual offset from run start (an AtVirtual
// alias matching the handle contract). Must be called before Begin.
func (e *Engine) ScheduleAt(at simtime.Duration, fn func()) { e.AtVirtual(at, fn) }

// Begin launches the run for d of virtual time and returns immediately: the
// non-blocking half of Run. The control goroutine is the safe point every
// injected command lands on.
func (e *Engine) Begin(d simtime.Duration) error {
	e.ranMu.Lock()
	if e.started {
		e.ranMu.Unlock()
		return fmt.Errorf("runtime: run already started")
	}
	e.started = true
	e.runFor = d
	// The hook list is frozen here: anything registered after this point
	// (atCommand) arms its own timer instead.
	hooks := append([]func(){}, e.hooks...)
	e.ranMu.Unlock()

	begin := e.clock.Now()
	e.start.Store(&begin)

	for _, x := range e.elastic {
		x.startWorkers()
	}
	e.wg.Add(1)
	go e.controlLoop()
	e.post(func() { e.pol.Install((*rhost)(e)) })
	e.post(func() { e.everyTick(simtime.Second, e.sampleSeries) })
	for _, h := range hooks {
		h()
	}
	// Sources last, so control loops exist before load arrives.
	for _, s := range e.sources {
		e.wg.Add(1)
		go s.run()
	}
	return nil
}

// WaitDone blocks until the run's horizon, a fatal error, or cancellation,
// then performs the ordinary three-phase shutdown (quiesce → drain → sweep)
// and returns the report. A cancelled run drains like a finished one, so the
// ledger stays conserved; its report covers the elapsed virtual time.
func (e *Engine) WaitDone() (*engine.Report, error) {
	d := e.runFor
	select {
	case <-e.clock.After(d):
	case <-e.fatalCh:
	case <-e.cancelled():
		if elapsed := simtime.Duration(e.vnow()); elapsed < d {
			d = elapsed
		}
	}
	e.shutdown()
	e.wg.Wait()
	e.sweepResidue()
	return e.buildReport(d), e.fatal()
}

// Cancel requests an early, orderly shutdown at the next safe point. Safe to
// call from any goroutine, more than once.
func (e *Engine) Cancel() {
	e.cancelMu.Lock()
	defer e.cancelMu.Unlock()
	if !e.cancelSig {
		e.cancelSig = true
		close(e.cancelCh)
	}
}

// cancelled returns the cancellation channel (lazily shared with Cancel).
func (e *Engine) cancelled() <-chan struct{} { return e.cancelCh }

// ApplyAsync executes a command on the control goroutine — the runtime's
// safe point. Before Begin the command rides the hook list and fires at its
// virtual offset (At, 0 = run start) strictly after the control plane is
// installed — the deterministic form, sound even at the t=0 boundary. After
// Begin, a positive At arms a timer for the remaining wait and zero applies
// at the next control-loop turn. Refusals, and deferred commands the run
// ends before reaching, land in the report's ChurnErrors.
func (e *Engine) ApplyAsync(cmd engine.Command) {
	e.ranMu.Lock()
	if !e.started {
		// Registration is atomic with Begin's hook freeze, so a command
		// injected concurrently with start lands exactly once.
		at := cmd.At
		e.hooks = append(e.hooks, func() { e.commandTimer(cmd, at) })
		e.ranMu.Unlock()
		return
	}
	e.ranMu.Unlock()
	if cmd.At > 0 {
		wait := cmd.At - simtime.Duration(e.vnow())
		if wait < 0 {
			wait = 0
		}
		e.commandTimer(cmd, wait)
		return
	}
	e.post(func() { e.applyCmd(cmd) })
}

// commandTimer posts cmd to the control goroutine after wait of virtual
// time, accounting for a run that ends first.
func (e *Engine) commandTimer(cmd engine.Command, wait simtime.Duration) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer e.guard("deferred command")
		select {
		case <-e.done:
			e.recordCmdError(cmd, fmt.Errorf("runtime: run ended before the command applied"))
		case <-e.clock.After(wait):
			e.post(func() { e.applyCmd(cmd) })
		}
	}()
}

// applyCmd runs one command on the control goroutine.
func (e *Engine) applyCmd(cmd engine.Command) {
	switch cmd.Kind {
	case engine.CmdAddNode:
		e.addNode(cmd.Cores)
		e.observeCmd(cmd)
	case engine.CmdDrainNode:
		if err := e.removeNode(cmd.Node, true); err != nil {
			e.recordCmdError(cmd, err)
		} else {
			e.observeCmd(cmd)
		}
	case engine.CmdFailNode:
		if err := e.removeNode(cmd.Node, false); err != nil {
			e.recordCmdError(cmd, err)
		} else {
			e.observeCmd(cmd)
		}
	case engine.CmdSetRate:
		f := cmd.Factor
		if f < 0 {
			f = 0
		}
		e.rateFactor.Store(math.Float64bits(f))
		e.emit(engine.Event{Kind: engine.EventCommandApplied, At: e.vnow(), Node: -1,
			Detail: cmd.String()})
		e.observeCmd(cmd)
	default:
		e.recordCmdError(cmd, fmt.Errorf("runtime: unknown command kind %d", int(cmd.Kind)))
	}
}

func (e *Engine) recordCmdError(cmd engine.Command, err error) {
	label := cmd.Label
	if label == "" {
		label = "run: " + cmd.String()
	}
	e.recordChurnError(fmt.Sprintf("%s: %v", label, err))
}

// rateFactorNow returns the live CmdSetRate multiplier. New initializes the
// cell to 1, so an explicit SetRate(0) (bits == 0) really silences the
// sources — matching the simulator.
func (e *Engine) rateFactorNow() float64 {
	return math.Float64frombits(e.rateFactor.Load())
}

// Snapshot reports live per-operator metrics from the runtime's atomic
// counters. Safe from any goroutine, any time.
func (e *Engine) Snapshot() engine.Snapshot {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	now := e.vnow()
	span := now.Sub(e.lastSnapAt).Seconds()
	s := engine.Snapshot{Now: now, Blocked: e.blocked.Load()}
	s.LatencyP50 = e.lastWindow.P50
	s.LatencyP95 = e.lastWindow.P95
	s.LatencyP99 = e.lastWindow.P99
	s.LatencyMax = e.lastWindow.Max
	s.LatencyWeight = e.lastWindow.Weight
	s.DominantStage, s.DominantShare = e.lastStages.Dominant()
	e.nodesMu.Lock()
	for _, n := range e.nodes {
		if n.alive {
			s.LiveNodes++
			s.Nodes = append(s.Nodes, n.id)
			s.TotalCores += n.cores
			s.UsedCores += n.cores - int(n.free.Load())
		}
	}
	e.nodesMu.Unlock()
	if s.TotalCores > 0 {
		s.Utilization = float64(s.UsedCores) / float64(s.TotalCores)
	}
	if len(e.lastOffered) == 0 {
		e.lastOffered = make([]int64, len(e.opOrder))
		e.lastProcessed = make([]int64, len(e.opOrder))
	}
	for i, o := range e.opOrder {
		admitted := o.admitted.Load()
		processed := o.processed.Load()
		execs := o.snap.Load().execs // one load: Executors and Cores must agree
		os := engine.OperatorSnapshot{
			Name:      o.meta.Name,
			Executors: len(execs),
			FirstHop:  o.firstHop,
			Queued:    int(o.inflight.Load()),
			Offered:   admitted,
			Processed: processed,
			LatP50:    o.latP50,
			LatP99:    o.latP99,
		}
		os.DominantStage, os.DominantShare = metrics.DominantOf(o.anatTotals)
		for _, x := range execs {
			os.Cores += x.grantCount()
		}
		if span > 0 {
			os.OfferedRate = float64(admitted-e.lastOffered[i]) / span
			os.ProcessedRate = float64(processed-e.lastProcessed[i]) / span
		}
		e.lastOffered[i], e.lastProcessed[i] = admitted, processed
		s.Operators = append(s.Operators, os)
	}
	s.MigrationBytes = e.migrationBytes.Load()
	e.repMu.Lock()
	s.MigrationBytes += e.repartBytes
	s.Repartitions = e.repartitions
	e.repMu.Unlock()
	if rt, ok := e.remote.(RemoteTelemetry); ok {
		s.RPC = rt.RPCWindows()
		s.Agents = rt.AgentHealth()
	}
	e.lastSnapAt = now
	return s
}

// Ledger re-exported through the handle path lives in runtime.go; the
// conformance suite asserts Conserved() after cancellations too.
