package runtime

import (
	"fmt"
	"time"

	"repro/internal/balancer"
	"repro/internal/engine"
	"repro/internal/simtime"
	"repro/internal/state"
	"repro/internal/stream"
)

// startRepartition runs the §3.3 global repartition protocol over real
// channels: pause the operator's intake (upstream tuples buffer), drain every
// executor queue, migrate the moved shards' state between executor maps
// (paying serialization and wire time for cross-node moves), swap in the new
// routing table, and replay the buffer. The protocol runs on its own
// goroutine; completion is reported to the policy on the control goroutine.
func (e *Engine) startRepartition(o *op, moves []balancer.Move) {
	if o.snap.Load().routing == nil {
		panic("runtime: StartRepartition on an operator without dynamic routing")
	}
	if o.repart.Swap(true) {
		return // already in flight; the policy should have checked
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer e.guard("repartition " + o.meta.Name)
		e.runRepartition(o, moves)
	}()
}

func (e *Engine) runRepartition(o *op, moves []balancer.Move) {
	started := e.vnow()
	e.emit(engine.Event{Kind: engine.EventRepartitionStart, At: started, Node: -1,
		Operator: o.meta.Name, Detail: fmt.Sprintf("%d move(s)", len(moves))})

	// Phase 1: pause. New arrivals buffer at the operator. (The simulator
	// charges an upstream-fan-in sync cost here; the runtime's pause is one
	// atomic store, so the span's Pause phase is what it really cost.)
	o.paused.Store(true)
	pausedAt := e.vnow()

	// Phase 2: drain. Wait until every tuple already admitted has been
	// processed — queues empty, workers idle.
	if !e.waitDrained(o) {
		// Shutdown interrupted the drain; leave the pause for the residue
		// sweep and bail without touching routing.
		o.repart.Store(false)
		return
	}
	drained := e.vnow()

	// The executor set the moves were decided against. If cluster churn
	// retires executors mid-protocol it swaps the snapshot (under snapMu)
	// and remaps routing indices, so the decided moves become meaningless;
	// the commit below revalidates and aborts rather than misroute.
	snap := o.snap.Load()

	// Model the migration's serialization and wire time up front, while the
	// operator is paused (the simulator charges the same costs on its
	// virtual clock; here the pause gap is real). With a Remote the model is
	// dropped entirely: the commit below serializes and ships actual shard
	// payloads between agent processes, so the span's Migrate phase is a
	// socket measurement instead of a constant.
	if e.remote == nil {
		var wireBytes int64
		for _, m := range moves {
			if m.From < 0 || m.From >= len(snap.execs) || m.To < 0 || m.To >= len(snap.execs) {
				continue
			}
			src, dst := snap.execs[m.From], snap.execs[m.To]
			if src.localNode() != dst.localNode() {
				bytes := src.perShardBytes
				if d := src.peekShardBytes(state.ShardID(m.Shard)); d > 0 {
					bytes = d
				}
				wireBytes += int64(bytes)
			}
		}
		if wireBytes > 0 {
			e.clock.Sleep(e.cfg.SerializeOverhead + wireDuration(wireBytes, e.cfg.Cluster.BandwidthBps))
		}
	}

	// Phases 3+4: migrate state and publish the new routing table as one
	// commit under snapMu, so a concurrent retirement either happens before
	// (snapshot changed → abort, no state touched) or after (it sees the
	// committed routing).
	var movedBytes int64
	committed := false
	o.snapMu.Lock()
	if cur := o.snap.Load(); cur == snap {
		routing := append([]int(nil), cur.routing...)
		for _, m := range moves {
			if m.From < 0 || m.From >= len(snap.execs) || m.To < 0 || m.To >= len(snap.execs) {
				continue
			}
			src, dst := snap.execs[m.From], snap.execs[m.To]
			sh := state.ShardID(m.Shard)
			d := src.takeShard(sh)
			bytes := src.perShardBytes
			if d != nil {
				bytes = d.bytes
			} else {
				d = &shardData{bytes: bytes, keys: make(map[stream.Key]interface{})}
			}
			dst.putShard(sh, d)
			movedBytes += int64(bytes)
			if e.remote != nil {
				// Relocate the agent-side payload along with the metadata:
				// serialize at the source agent, ship the bytes through the
				// control plane, install at the destination. The blocking
				// round trip lands in the span's Migrate phase.
				if _, _, err := e.remote.MoveShard(src.localNode(), dst.localNode(),
					src.remoteExec(), dst.remoteExec(), uint32(sh)); err != nil {
					e.recordChurnError(fmt.Sprintf("runtime: move shard %d (%s -> %s): %v",
						m.Shard, src.name, dst.name, err))
				}
			}
			if m.Shard >= 0 && m.Shard < len(routing) {
				routing[m.Shard] = m.To
			}
		}
		o.snap.Store(newOpSnap(cur.execs, routing))
		committed = true
	}
	o.snapMu.Unlock()
	e.migrationBytes.Add(movedBytes)
	migrated := e.vnow()

	o.paused.Store(false)
	o.bufMu.Lock()
	buf := o.pauseBuf
	o.pauseBuf = nil
	o.bufMu.Unlock()
	replayAt := e.vnow()
	warm := simtime.Duration(replayAt) >= e.cfg.WarmUp
	var replayW, rpStall int64
	for i := range buf {
		replayW += int64(buf[i].Weight)
		if buf[i].Mark != 0 {
			// The wait behind the §3.3 pause is repartition stall. Traced
			// tuples carry it on their accumulator and are re-stamped so the
			// hop window doesn't count the wait a second time as queue.
			if stall := replayAt.Sub(buf[i].Mark); stall > 0 {
				buf[i].RPStall += stall
				rpStall += int64(stall) * int64(buf[i].Weight)
			}
			buf[i].Mark = replayAt
		}
	}
	if rpStall > 0 && warm {
		o.rpStallNS.Add(rpStall)
	}
	e.replay(o, buf, 0)

	finished := e.vnow()
	total := finished.Sub(started)
	e.repMu.Lock()
	if committed {
		e.repartitions++
		e.repartMoves += int64(len(moves))
		e.repartBytes += movedBytes
		e.repartSync += drained.Sub(started)
		e.repartTime += total
	}
	// Replayed weight is conservation accounting: an aborted (churn-
	// overtaken) protocol still paused, buffered, and replayed.
	e.repartReplayed += replayW
	e.repMu.Unlock()
	o.repart.Store(false)
	e.emit(engine.Event{Kind: engine.EventRepartitionFinish, At: finished, Node: -1,
		Operator: o.meta.Name, Detail: fmt.Sprintf("%d move(s), %v total", len(moves), total),
		Span: &engine.RepartitionSpan{
			Operator:   o.meta.Name,
			Start:      started,
			Pause:      pausedAt.Sub(started),
			Drain:      drained.Sub(pausedAt),
			Migrate:    migrated.Sub(drained),
			Reroute:    finished.Sub(migrated),
			Moves:      len(moves),
			InterMoves: interMoves(snap, moves),
			Bytes:      movedBytes,
			Replayed:   len(buf),
			ReplayedW:  replayW,
			Aborted:    !committed,
		}})
	// An aborted (churn-overtaken) protocol still finishes from the
	// policy's point of view: the controller must cool down either way.
	e.post(func() { e.pol.RepartitionFinished(o) })
}

// interMoves counts the moves whose source and destination executors live on
// different nodes — the span's cross-node migration count, judged against the
// same snapshot the wire-cost model used.
func interMoves(snap *opSnap, moves []balancer.Move) int {
	n := 0
	for _, m := range moves {
		if m.From < 0 || m.From >= len(snap.execs) || m.To < 0 || m.To >= len(snap.execs) {
			continue
		}
		if snap.execs[m.From].localNode() != snap.execs[m.To].localNode() {
			n++
		}
	}
	return n
}

// waitDrained blocks until the operator's admitted-but-unprocessed weight
// reaches zero. Returns false if the run shut down first.
func (e *Engine) waitDrained(o *op) bool {
	for {
		if o.inflight.Load() == 0 {
			idle := true
			for _, x := range o.snap.Load().execs {
				if x.active.Load() != 0 || len(x.in) != 0 {
					idle = false
					break
				}
			}
			if idle {
				return true
			}
		}
		select {
		case <-e.done:
			return false
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// wireDuration is the virtual wire time for a payload at NIC bandwidth.
func wireDuration(bytes int64, bps float64) simtime.Duration {
	if bps <= 0 || bytes <= 0 {
		return 0
	}
	return simtime.FromSeconds(float64(bytes) * 8 / bps)
}
