package runtime

import (
	"repro/internal/engine"
	"repro/internal/simtime"
	"repro/internal/stream"
)

// src drives one source operator as a token-bucket emitter: a ticker refills
// tokens at the (possibly scenario-phased) offered rate, and each accumulated
// batch is emitted subject to credit-based backpressure at every first-hop
// destination — the same admission rule the simulator applies.
type src struct {
	e   *Engine
	op  *stream.Operator
	drv *engine.SourceDriver
}

func (s *src) run() {
	e := s.e
	defer e.wg.Done()
	defer e.guard("source " + s.op.Name)
	tick := e.clock.Ticker(e.opt.SourceTick)
	defer tick.Stop()
	batch := float64(e.cfg.Batch)
	tokens := 0.0
	last := e.clock.Now()
	for {
		select {
		case <-e.stopSrc:
			return
		case <-tick.C():
			now := e.clock.Now()
			dt := now.Sub(last).Seconds()
			last = now
			if dt <= 0 {
				continue
			}
			rate := s.drv.Rate(e.vnow()) * e.rateFactorNow()
			if rate <= 0 {
				continue
			}
			tokens += rate * dt
			// Burst cap: a stalled scheduler must not dump an unbounded
			// backlog of tokens when it wakes. Two ticks' worth of rate (or
			// a 64-batch floor) keeps saturating sources saturating while
			// the queue credit stays the real regulator.
			if burst := max(batch*64, 2*rate*dt); tokens > burst {
				tokens = burst
			}
			for tokens >= batch {
				tokens -= batch
				s.emitOne()
			}
		}
	}
}

// emitOne samples and routes one batch, checking capacity at every first-hop
// destination before committing (a blocked destination stalls the source,
// credit-based backpressure). A paused destination buffers instead.
func (s *src) emitOne() {
	e := s.e
	now := e.vnow()
	key, bytes, payload := s.drv.Sample(now)
	t := stream.Tuple{
		Key:     key,
		Weight:  e.cfg.Batch,
		Bytes:   bytes,
		Born:    now,
		Payload: payload,
	}
	for _, d := range s.op.Downstream() {
		o := e.ops[d]
		if o.paused.Load() {
			continue // repartition pause: the tuple buffers below
		}
		snap := o.snap.Load()
		idx := clampIdx(e.pol.Route(o, t.Key), len(snap.execs))
		x := snap.execs[idx]
		if len(x.in) >= cap(x.in) {
			e.blocked.Add(int64(t.Weight))
			x.blockedW.Add(int64(t.Weight))
			if o.dynRouting {
				// The controller must see the offered per-shard load, or a
				// saturated executor looks deceptively balanced.
				o.recordShardLoad(t.Key, t.Weight)
			}
			return
		}
	}
	if simtime.Duration(now) >= e.cfg.WarmUp {
		e.generated.Add(int64(t.Weight))
	}
	for _, d := range s.op.Downstream() {
		e.deliver(e.ops[d], []stream.Tuple{t}, true)
	}
}
