package runtime

import (
	goruntime "runtime"

	"repro/internal/engine"
	"repro/internal/simtime"
	"repro/internal/stream"
)

// srcFlushTuples caps the size of one source-emitted batch: a group reaching
// this many tuples is flushed mid-tick, so queue credit is consumed (and
// backpressure observed) at a finer grain than a whole tick's emission.
const srcFlushTuples = 128

// traceEvery is the latency-anatomy sampling stride: one in every traceEvery
// emitted batch events is stamped traced (Tuple.Mark) and carries stage
// accumulators through the dataflow. Untraced batches pay one branch per
// tuple on the hot path; the full attribution cost is amortized 1-in-N.
const traceEvery = 8

// srcDst is the source's per-destination routing scratch, reused tick to
// tick: one pending (not yet flushed) tuple group per destination executor,
// plus the blocked-weight accumulator folded into the executor counters once
// per tick.
type srcDst struct {
	o       *op
	snap    *opSnap          // destination snapshot, re-read each tick
	paused  bool             // pause flag, re-read each tick
	route   int              // executor index of the tuple being admitted
	groups  [][]stream.Tuple // per executor index; pool-backed
	pendW   []int64          // weight pending in groups (credit accounting)
	blocked []int64          // blocked weight per executor this tick
	buf     []stream.Tuple   // tuples bound for a paused destination (src-owned)
}

// refresh re-reads the destination's snapshot and pause flag for one tick's
// emissions and sizes the per-executor scratch to the live executor set.
func (d *srcDst) refresh() {
	d.snap = d.o.snap.Load()
	d.paused = d.o.paused.Load()
	n := len(d.snap.execs)
	if cap(d.groups) < n {
		d.groups = make([][]stream.Tuple, n)
		d.pendW = make([]int64, n)
		d.blocked = make([]int64, n)
	} else {
		d.groups = d.groups[:n]
		d.pendW = d.pendW[:n]
		d.blocked = d.blocked[:n]
	}
}

// src drives one source operator as a token-bucket emitter: a ticker refills
// tokens at the (possibly scenario-phased) offered rate, and each tick's
// accumulated emissions are routed as executor-grouped batches subject to
// credit-based backpressure at every first-hop destination — the same
// admission rule the simulator applies.
type src struct {
	e        *Engine
	op       *stream.Operator
	drv      *engine.SourceDriver
	lane     int
	traceSeq uint64
	dsts     []*srcDst
}

func (s *src) run() {
	e := s.e
	defer e.wg.Done()
	defer e.guard("source " + s.op.Name)
	s.lane = e.nextLane()
	for _, d := range s.op.Downstream() {
		s.dsts = append(s.dsts, &srcDst{o: e.ops[d]})
	}
	tick := e.clock.Ticker(e.opt.SourceTick)
	defer tick.Stop()
	batch := float64(e.cfg.Batch)
	tokens := 0.0
	last := e.clock.Now()
	for {
		select {
		case <-e.stopSrc:
			return
		case <-tick.C():
			now := e.clock.Now()
			dt := now.Sub(last).Seconds()
			last = now
			if dt <= 0 {
				continue
			}
			rate := s.drv.Rate(e.vnow()) * e.rateFactorNow()
			if rate <= 0 {
				continue
			}
			tokens += rate * dt
			// Burst cap: a stalled scheduler must not dump an unbounded
			// backlog of tokens when it wakes. Two ticks' worth of rate (or
			// a 64-batch floor) keeps saturating sources saturating while
			// the queue credit stays the real regulator.
			if burst := max(batch*64, 2*rate*dt); tokens > burst {
				tokens = burst
			}
			if n := int(tokens / batch); n > 0 {
				tokens -= float64(n) * batch
				s.emitBatch(n)
			}
		}
	}
}

// emitBatch samples and routes n batch-weight emissions, grouping tuples by
// destination executor and flushing each group as one channel send. Admission
// is all-or-none per tuple across every unpaused first-hop destination
// (credit-based backpressure, the simulator's rule); pending group weight
// counts against the queue credit so an unflushed group cannot oversubscribe
// a destination. Paused destinations buffer through deliver, as before.
// Blocked and generated weights accumulate locally and fold into the shared
// counters once per tick.
func (s *src) emitBatch(n int) {
	e := s.e
	now := e.vnow()
	warm := simtime.Duration(now) >= e.cfg.WarmUp
	var generated, blockedTotal int64
	for _, d := range s.dsts {
		d.refresh()
	}
	for i := 0; i < n; i++ {
		key, bytes, payload := s.drv.Sample(now)
		t := stream.Tuple{
			Key:     key,
			Weight:  e.cfg.Batch,
			Bytes:   bytes,
			Born:    now,
			Payload: payload,
		}
		s.traceSeq++
		if s.traceSeq%traceEvery == 0 {
			t.Mark = now // sampled: carries the latency-anatomy accumulators
		}
		w := int64(t.Weight)
		full := false
		for _, d := range s.dsts {
			if d.paused {
				continue // repartition pause: the tuple buffers below
			}
			xi := e.routeIdx(d.o, d.snap, t.Key)
			d.route = xi
			if d.snap.execs[xi].queuedW.Load()+d.pendW[xi] >= e.creditW {
				d.blocked[xi] += w
				blockedTotal += w
				if d.o.dynRouting {
					// The controller must see the offered per-shard load, or
					// a saturated executor looks deceptively balanced.
					d.o.recordShardLoad(t.Key, t.Weight)
				}
				full = true
				break
			}
		}
		if full {
			// Refused for lack of credit. Expose every pending group to the
			// consumers and hand over the core: a full queue means the worker
			// has runnable work, and at GOMAXPROCS=1 it would otherwise only
			// run on async preemption while this loop wades through the
			// remaining (blocked) token budget. The yield turns the blocked
			// tail into fill→drain ping-pong at queue-credit grain.
			s.flushPending()
			goruntime.Gosched()
			continue
		}
		if warm {
			generated += w
		}
		for _, d := range s.dsts {
			if d.paused {
				d.buf = append(d.buf, t)
				continue
			}
			xi := d.route
			if d.groups[xi] == nil {
				d.groups[xi] = getTupleBuf(srcFlushTuples)
			}
			d.groups[xi] = append(d.groups[xi], t)
			d.pendW[xi] += w
			if len(d.groups[xi]) >= srcFlushTuples {
				s.flush(d, xi)
			}
		}
	}
	s.flushPending()
	for _, d := range s.dsts {
		if len(d.buf) > 0 {
			e.deliver(d.o, d.buf, true, s.lane)
			clear(d.buf)
			d.buf = d.buf[:0]
		}
		for xi, bw := range d.blocked {
			if bw > 0 {
				d.snap.execs[xi].blockedW.Add(bw)
				d.blocked[xi] = 0
			}
		}
	}
	if generated > 0 {
		e.generated.Add(generated)
	}
	if blockedTotal > 0 {
		e.blocked.Add(blockedTotal)
	}
}

// flushPending sends every non-empty pending group across all destinations.
func (s *src) flushPending() {
	for _, d := range s.dsts {
		for xi := range d.groups {
			if d.groups[xi] != nil {
				s.flush(d, xi)
			}
		}
	}
}

// flush sends one pending group. The group was routed against the snapshot
// read at tick start; if the destination has since paused or swapped its
// snapshot (repartition commit, executor retirement), the group re-enters
// through deliver — which buffers under a pause and re-routes against the
// live table — so a mid-tick §3.3 protocol never sees stale-routed sends.
func (s *src) flush(d *srcDst, xi int) {
	g := d.groups[xi]
	d.groups[xi] = nil
	d.pendW[xi] = 0
	if len(g) == 0 {
		putTupleBuf(g)
		return
	}
	e := s.e
	if d.o.paused.Load() || d.o.snap.Load() != d.snap {
		e.deliver(d.o, g, true, s.lane)
		putTupleBuf(g)
		return
	}
	var w int64
	for i := range g {
		w += int64(g[i].Weight)
	}
	d.o.admitted.Add(s.lane, w)
	e.sendBatch(d.o, d.snap.execs[xi], g, s.lane)
}
