package runtime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/balancer"
	"repro/internal/simtime"
)

// fakeRemote records every Remote call in-process: the seam's contract test,
// independent of sockets (internal/dist covers the wire).
type fakeRemote struct {
	mu         sync.Mutex
	added      []int
	removed    map[int]bool
	processed  int64
	touched    int64
	moves      []uint32 // shards moved one at a time (repartition)
	execMoves  int      // whole-executor relocations (churn rehome)
	redists    int      // retirement scatters
	drops      int
	lastRemove bool // graceful flag of the last NodeRemoved
}

func (f *fakeRemote) NodeAdded(node, cores int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.added = append(f.added, node)
	return nil
}

func (f *fakeRemote) NodeRemoved(node int, graceful bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.removed == nil {
		f.removed = make(map[int]bool)
	}
	f.removed[node] = true
	f.lastRemove = graceful
}

func (f *fakeRemote) Process(node int, rx RemoteExec, wallCost time.Duration, shards []uint32) error {
	if wallCost > 0 {
		time.Sleep(wallCost)
	}
	f.mu.Lock()
	f.processed++
	f.mu.Unlock()
	return nil
}

func (f *fakeRemote) StateTouch(node int, rx RemoteExec, shards []uint32) {
	f.mu.Lock()
	f.touched++
	f.mu.Unlock()
}

func (f *fakeRemote) MoveShard(srcNode, dstNode int, src, dst RemoteExec, shard uint32) (int64, time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.moves = append(f.moves, shard)
	return int64(src.PerShardBytes), time.Microsecond, nil
}

func (f *fakeRemote) MoveExecState(srcNode, dstNode int, rx RemoteExec) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.execMoves++
	return 0, nil
}

func (f *fakeRemote) RedistributeState(srcNode int, src RemoteExec, dests []RemoteDest) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.redists++
	return 0, nil
}

func (f *fakeRemote) DropExecState(node int, rx RemoteExec) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drops++
}

func remoteOpts(f *fakeRemote) ScenarioOptions {
	o := quickOpts()
	o.Remote = f
	return o
}

// TestRemoteSeamRepartition drives the §3.3 protocol on an engine with a
// Remote installed: every committed move must relocate the agent-side payload
// (one MoveShard per move), and the modeled wire sleep must be replaced, not
// duplicated.
func TestRemoteSeamRepartition(t *testing.T) {
	f := &fakeRemote{}
	rt, _, err := BuildScenario(quickSpec(), "rc", 42, remoteOpts(f))
	if err != nil {
		t.Fatal(err)
	}
	o := rt.opOrder[0]
	before := append([]int(nil), o.snap.Load().routing...)
	var moves []balancer.Move
	for s, owner := range before {
		if owner == 0 {
			moves = append(moves, balancer.Move{Shard: s, From: 0, To: 1})
			if len(moves) == 2 {
				break
			}
		}
	}
	rt.AtVirtual(2*simtime.Second, func() { rt.startRepartition(o, moves) })
	r, err := rt.Run(quickSpec().Duration())
	if err != nil {
		t.Fatal(err)
	}
	if r.Repartitions < 1 {
		t.Fatalf("repartitions = %d, want >= 1", r.Repartitions)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.moves) < len(moves) {
		t.Errorf("remote moved %d shards, want >= %d", len(f.moves), len(moves))
	}
	if f.processed == 0 {
		t.Errorf("no batches reached the remote")
	}
	if !rt.Ledger().Conserved() {
		t.Errorf("ledger not conserved: %v", rt.Ledger())
	}
}

// TestRemoteSeamChurn checks the churn hooks: a drain relocates executor
// state through the Remote and releases the node gracefully.
func TestRemoteSeamChurn(t *testing.T) {
	f := &fakeRemote{}
	rt, _, err := BuildScenario(drainSpec(), "elasticutor", 42, remoteOpts(f))
	if err != nil {
		t.Fatal(err)
	}
	r, err := rt.Run(drainSpec().Duration())
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeDrains != 1 {
		t.Fatalf("drains = %d, want 1", r.NodeDrains)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.removed[3] {
		t.Errorf("remote never released node 3: %v", f.removed)
	}
	if !f.lastRemove {
		t.Errorf("drain released node 3 as a failure")
	}
	if f.execMoves+f.redists == 0 {
		t.Errorf("drain moved no executor state through the remote")
	}
	if !rt.Ledger().Conserved() {
		t.Errorf("ledger not conserved: %v", rt.Ledger())
	}
}

// TestRemoteRequiresNilClock pins the constructor validation: the Remote
// contract ships wall durations to agents, which is only sound when the
// engine's clock is the default Speedup-scaled one.
func TestRemoteRequiresNilClock(t *testing.T) {
	f := &fakeRemote{}
	o := remoteOpts(f)
	o.Clock = RealClock()
	if _, _, err := BuildScenario(quickSpec(), "rc", 42, o); err == nil {
		t.Fatal("Remote with an explicit Clock was accepted")
	}
}
