package runtime

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/state"
)

// Cluster churn on the real-time backend. The handlers run on the control
// goroutine (scenario events post there), so they are serialized with every
// policy tick and assignment — the same ordering the simulator's event loop
// provides.

// AddNode grows the cluster by one node (0 cores = the configured default)
// and notifies the policy. Safe to call from any goroutine.
func (e *Engine) AddNode(cores int) {
	e.post(func() { e.addNode(cores) })
}

// DrainNode removes a node gracefully: grants are revoked, executors homed
// there are rehomed or retired with their state migrated (never lost).
func (e *Engine) DrainNode(n int) {
	e.post(func() {
		if err := e.removeNode(n, true); err != nil {
			e.recordChurnError(err.Error())
		}
	})
}

// FailNode removes a node hard: executors homed there lose their queues and
// state, with every dropped tuple and byte accounted.
func (e *Engine) FailNode(n int) {
	e.post(func() {
		if err := e.removeNode(n, false); err != nil {
			e.recordChurnError(err.Error())
		}
	})
}

func (e *Engine) recordChurnError(msg string) {
	e.repMu.Lock()
	e.churnErrors = append(e.churnErrors, msg)
	e.repMu.Unlock()
}

func (e *Engine) addNode(cores int) {
	if cores <= 0 {
		cores = e.cfg.Cluster.CoresPerNode
	}
	id := len(e.nodes)
	if e.remote != nil {
		// The agent must be serving before any grant can land on the node;
		// a spawn/adopt failure vetoes the join.
		if err := e.remote.NodeAdded(id, cores); err != nil {
			e.recordChurnError(fmt.Sprintf("runtime: add node %d: %v", id, err))
			return
		}
	}
	nd := &node{id: id, cores: cores, alive: true}
	nd.free.Store(int64(cores))
	e.nodesMu.Lock()
	e.nodes = append(e.nodes, nd)
	e.nodesMu.Unlock()
	e.repMu.Lock()
	e.nodeJoins++
	e.repMu.Unlock()
	e.emit(engine.Event{Kind: engine.EventNodeJoin, At: e.vnow(), Node: id, Cores: cores})
	e.pol.CapacityChanged()
}

func (e *Engine) removeNode(n int, graceful bool) error {
	kind := "fail"
	if graceful {
		kind = "drain"
	}
	if n < 0 || n >= len(e.nodes) || !e.nodes[n].alive {
		return fmt.Errorf("runtime: %s of node %d: not alive", kind, n)
	}
	live := 0
	for _, nd := range e.nodes {
		if nd.alive {
			live++
		}
	}
	if live <= 1 {
		return fmt.Errorf("runtime: %s of node %d would remove the last node", kind, n)
	}
	nd := e.nodes[n]
	e.nodesMu.Lock()
	nd.alive = false
	nd.free.Store(0)
	nd.srcReserved = 0
	e.nodesMu.Unlock()

	for _, o := range e.opOrder {
		e.evacuateOp(o, n, graceful)
	}

	e.repMu.Lock()
	if graceful {
		e.nodeDrains++
	} else {
		e.nodeFails++
	}
	e.repMu.Unlock()
	kindEv := engine.EventNodeFail
	if graceful {
		kindEv = engine.EventNodeDrain
	}
	e.emit(engine.Event{Kind: kindEv, At: e.vnow(), Node: n})
	if e.remote != nil {
		// After evacuation: a graceful drain has already migrated every byte
		// out of the live agent; a failure echo releases a dead one.
		e.remote.NodeRemoved(n, graceful)
	}
	e.pol.CapacityChanged()
	return nil
}

// evacuateOp removes node n from one operator's executors: revoke grants,
// rehome survivors, retire executors left without a foothold.
func (e *Engine) evacuateOp(o *op, n int, graceful bool) {
	snap := o.snap.Load()
	var retire []*exec
	for _, x := range snap.execs {
		// Revoke every grant on the dead node.
		for x.grants()[n] > 0 {
			if !x.revoke(n, true) {
				break
			}
		}
		if x.grantCount() == 0 {
			// Try a foothold on a live node — a free core first, then one
			// stolen from a multi-core executor (the simulator's
			// foothold-stealing); otherwise the executor retires.
			g := e.takeFreeCore(-1)
			if g < 0 {
				g = e.stealCore()
			}
			if g >= 0 {
				x.grant(g)
			} else {
				retire = append(retire, x)
				continue
			}
		}
		if x.local == n {
			// Rehome the main process next to one of its workers. A graceful
			// drain migrates the resident state; a failure writes it off and
			// destroys the queue too — queued tuples lived with the dead
			// main process (the simulator's FailNode does the same).
			x.gmu.Lock()
			newLocal := x.local
			for _, w := range x.workers {
				if e.nodes[w.node].alive {
					newLocal = w.node
					break
				}
			}
			x.local = newLocal
			x.gmu.Unlock()
			bytes := x.stateBytes()
			if graceful {
				e.migrationBytes.Add(bytes)
				if e.remote != nil && newLocal != n {
					if _, err := e.remote.MoveExecState(n, newLocal, x.remoteExec()); err != nil {
						e.recordChurnError(fmt.Sprintf("runtime: migrate %s off node %d: %v", x.name, n, err))
					}
				}
			} else {
				e.lostStateBytes.Add(bytes)
				e.clearState(x)
				e.dropQueue(o, x)
				if e.remote != nil {
					e.remote.DropExecState(n, x.remoteExec())
				}
			}
		}
	}
	if len(retire) > 0 {
		e.retireExecs(o, retire, graceful)
	}
}

// stealCore revokes one grant from an executor holding several, returning
// the freed node (-1 if every executor is down to its last core).
func (e *Engine) stealCore() int {
	for _, x := range e.elastic {
		x.gmu.Lock()
		victim := -1
		if len(x.workers) >= 2 {
			for _, w := range x.workers {
				if e.nodes[w.node].alive {
					victim = w.node
					break
				}
			}
		}
		x.gmu.Unlock()
		if victim >= 0 && x.revoke(victim, false) {
			return victim
		}
	}
	return -1
}

// clearState empties an executor's shard maps (hard failure: the state on
// the failed main process is gone).
func (e *Engine) clearState(x *exec) {
	for _, st := range x.stripes {
		st.mu.Lock()
		st.shards = make(map[state.ShardID]*shardData)
		st.mu.Unlock()
	}
}

// retireExecs removes executors from an operator's live set, publishes the
// shrunken routing snapshot, then disposes of each retiree's queue and state:
// gracefully (redirect queued tuples to the new owners, migrate state to the
// survivors) or hard (drop and write off).
func (e *Engine) retireExecs(o *op, retire []*exec, graceful bool) {
	dead := make(map[*exec]bool, len(retire))
	for _, x := range retire {
		dead[x] = true
		x.gmu.Lock()
		x.retired = true
		x.gmu.Unlock()
	}

	o.snapMu.Lock()
	cur := o.snap.Load()
	var survivors []*exec
	oldIdx := make(map[*exec]int, len(cur.execs))
	newIdx := make([]int, len(cur.execs)) // old index → new index (-1 retired)
	for i, x := range cur.execs {
		oldIdx[x] = i
		if dead[x] {
			newIdx[i] = -1
			continue
		}
		newIdx[i] = len(survivors)
		survivors = append(survivors, x)
	}
	var routing []int
	if cur.routing != nil && len(survivors) > 0 {
		routing = make([]int, len(cur.routing))
		for s, owner := range cur.routing {
			if owner >= 0 && owner < len(newIdx) && newIdx[owner] >= 0 {
				routing[s] = newIdx[owner]
			} else {
				routing[s] = s % len(survivors) // orphaned shard: rehash
			}
		}
	}
	if len(survivors) == 0 {
		// Nothing left to serve the operator; keep the old snapshot (tuples
		// will pile up and be swept at shutdown) and report the refusal.
		o.snapMu.Unlock()
		e.recordChurnError(fmt.Sprintf("runtime: operator %q has no surviving executors", o.meta.Name))
		return
	}
	o.snap.Store(newOpSnap(survivors, routing))
	o.snapMu.Unlock()

	for _, x := range retire {
		// Dispose of the queue on a reaper goroutine that lives until
		// shutdown: a racing deliver that loaded the old snapshot may still
		// send into the retiree's channel *after* any one-shot drain, and
		// with zero workers left that tuple would be parked forever (a
		// later repartition's drain-wait would then spin on the leaked
		// inflight weight). Graceful retirement redirects through the new
		// routing; a failure drops with cause. Running off the control
		// goroutine also keeps the control plane responsive while blocking
		// deliver calls wait out full survivor queues.
		e.wg.Add(1)
		go e.reapQueue(o, x, graceful)
		if graceful {
			moved := e.redistributeState(x, survivors)
			e.migrationBytes.Add(moved)
		} else {
			e.lostStateBytes.Add(x.stateBytes())
			e.clearState(x)
			if e.remote != nil {
				e.remote.DropExecState(x.localNode(), x.remoteExec())
			}
		}
	}

	// Rebuild the flat scheduler indexing without the retirees.
	var elastic []*exec
	for _, x := range e.elastic {
		if !dead[x] {
			elastic = append(elastic, x)
		}
	}
	e.elastic = elastic
	o.retiredN.Add(int64(len(retire)))
	e.repMu.Lock()
	e.retiredExecs += len(retire)
	e.repMu.Unlock()
}

// dropQueue destroys an executor's currently queued tuples with failure
// accounting (the queue lived with a failed main process). One-shot: used
// for executors that stay live (their surviving workers keep serving later
// arrivals), so only the contents at failure time are lost. Safe against
// workers concurrently pulling from the same channel: each tuple is either
// processed or dropped, never both.
func (e *Engine) dropQueue(o *op, x *exec) {
	for {
		select {
		case ts := <-x.in:
			var w int64
			for i := range ts {
				w += int64(ts[i].Weight)
			}
			o.inflight.Add(0, -w)
			o.dropFail.Add(w)
			x.dropped.Add(w)
			x.queuedW.Add(-w)
			putTupleBuf(ts)
		default:
		}
		if len(x.in) == 0 {
			return
		}
	}
}

// reapQueue drains a *retired* executor's channel until shutdown — not just
// until it is momentarily empty, because a racing deliver that loaded the
// pre-retirement snapshot may still send here later, and the retiree has no
// workers left to serve it. Graceful retirees redirect tuples through the
// operator's new routing; failed ones drop them with cause. Anything still
// queued at shutdown is swept into the ledger as residue.
func (e *Engine) reapQueue(o *op, x *exec, graceful bool) {
	defer e.wg.Done()
	defer e.guard("retire drain " + x.name)
	for {
		select {
		case ts := <-x.in:
			var w int64
			for i := range ts {
				w += int64(ts[i].Weight)
			}
			o.inflight.Add(0, -w)
			x.queuedW.Add(-w)
			if graceful {
				o.admitted.Add(0, -w) // deliver re-admits the batch
				e.deliver(o, ts, true, 0)
			} else {
				o.dropFail.Add(w)
				x.dropped.Add(w)
			}
			putTupleBuf(ts)
		case <-e.stopWorkers:
			return
		}
	}
}

// redistributeState moves a retiring executor's materialized shards onto the
// survivors (round-robin), returning the bytes migrated. With a Remote, the
// agent-side payloads follow the same assignment the metadata takes here.
func (e *Engine) redistributeState(x *exec, survivors []*exec) int64 {
	var moved int64
	var remoteDest map[*exec][]uint32
	if e.remote != nil {
		remoteDest = make(map[*exec][]uint32, len(survivors))
	}
	i := 0
	for _, st := range x.stripes {
		st.mu.Lock()
		shards := st.shards
		st.shards = make(map[state.ShardID]*shardData)
		st.mu.Unlock()
		for sh, d := range shards {
			dst := survivors[i%len(survivors)]
			i++
			dst.putShard(sh, d)
			moved += int64(d.bytes)
			if remoteDest != nil {
				remoteDest[dst] = append(remoteDest[dst], uint32(sh))
			}
		}
	}
	if e.remote != nil && len(remoteDest) > 0 {
		dests := make([]RemoteDest, 0, len(remoteDest))
		for dst, shs := range remoteDest {
			dests = append(dests, RemoteDest{Node: dst.localNode(), Exec: dst.remoteExec(), Shards: shs})
		}
		if _, err := e.remote.RedistributeState(x.localNode(), x.remoteExec(), dests); err != nil {
			e.recordChurnError(fmt.Sprintf("runtime: redistribute %s state: %v", x.name, err))
		}
	}
	return moved
}
