package runtime

import (
	"time"

	"repro/internal/balancer"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/qmodel"
	"repro/internal/scheduler"
	"repro/internal/simtime"
)

// rhost adapts the runtime engine to policy.Host. Every method runs on the
// control goroutine (Install and Every callbacks are serialized there), so
// the policies see the same single-threaded world they see in the simulator.
type rhost Engine

var _ policy.Host = (*rhost)(nil)

func (h *rhost) Knobs() policy.Knobs { return (*Engine)(h).knobs() }

func (h *rhost) Now() simtime.Time { return (*Engine)(h).vnow() }

func (h *rhost) Every(interval simtime.Duration, fn func()) {
	(*Engine)(h).everyTick(interval, fn)
}

func (h *rhost) Operators() []policy.Operator {
	e := (*Engine)(h)
	out := make([]policy.Operator, len(e.opOrder))
	for i, o := range e.opOrder {
		out[i] = o
	}
	return out
}

// RebalanceAll is a no-op on the runtime backend: an executor's workers pull
// from one shared queue, so intra-executor load balance is emergent (work
// conservation) rather than a scheduled shard re-striping. The §3.3 protocol
// the simulator exercises per shard move is still paid where it matters —
// operator-level repartitions (StartRepartition).
func (h *rhost) RebalanceAll() {}

// ExecutorLoads measures and resets every live executor's window from the
// real counters: arrivals (offered load folded in via the blocked weight),
// service rate from actual busy time, and data intensity.
func (h *rhost) ExecutorLoads() ([]qmodel.ExecutorLoad, []float64, float64) {
	e := (*Engine)(h)
	m := len(e.elastic)
	loads := make([]qmodel.ExecutorLoad, m)
	intensity := make([]float64, m)
	var lambda0 float64
	now := e.vnow()
	for j, x := range e.elastic {
		span := now.Sub(x.winStart)
		arrived := x.winArrived.Swap(0)
		processed := x.winProcessed.Swap(0)
		busy := time.Duration(x.winBusyNS.Swap(0))
		inB := x.winInBytes.Swap(0)
		outB := x.winOutBytes.Swap(0)
		blocked := x.blockedW.Swap(0)
		x.winStart = now

		var lambda, mu, di float64
		if sec := span.Seconds(); sec > 0 {
			lambda = float64(arrived+blocked) / sec
			cores := x.grantCount()
			if cores < 1 {
				cores = 1
			}
			di = float64(inB+outB) / sec / float64(cores)
		}
		if bs := busy.Seconds(); bs > 0 {
			mu = float64(processed) / bs
		}
		if mu <= 0 {
			mu = e.fallbackMu(x)
		}
		loads[j] = qmodel.ExecutorLoad{Lambda: lambda, Mu: mu}
		intensity[j] = di
		if x.o.firstHop {
			lambda0 += lambda
		}
	}
	return loads, intensity, lambda0
}

// fallbackMu estimates a service rate from the cost model before any
// measurement exists (same rule as the simulator).
func (e *Engine) fallbackMu(x *exec) float64 {
	if x.o.meta.Cost == nil {
		return 0
	}
	cost := x.o.meta.Cost(streamUnit(x))
	if cost <= 0 {
		return 0
	}
	return 1 / cost.Seconds()
}

func (h *rhost) AvailableCores() int {
	e := (*Engine)(h)
	total := 0
	for _, n := range e.nodes {
		if n.alive {
			total += n.cores - n.srcReserved
		}
	}
	if total < 0 {
		total = 0
	}
	return total
}

func (h *rhost) SchedulerInput(alloc []int, intensity []float64) scheduler.Input {
	e := (*Engine)(h)
	m := len(e.elastic)
	in := scheduler.Input{
		Capacity:      make([]int, len(e.nodes)),
		Local:         make([]int, m),
		StateBytes:    make([]float64, m),
		DataIntensity: intensity,
		Existing:      make([][]int, len(e.nodes)),
		Alloc:         alloc,
		Phi:           e.cfg.Phi,
	}
	for i, n := range e.nodes {
		if n.alive {
			in.Capacity[i] = n.cores - n.srcReserved
			if in.Capacity[i] < 0 {
				in.Capacity[i] = 0
			}
		}
		in.Existing[i] = make([]int, m)
	}
	for j, x := range e.elastic {
		x.gmu.Lock()
		in.Local[j] = x.local
		for n, c := range x.byNode {
			in.Existing[n][j] = c
		}
		x.gmu.Unlock()
		in.StateBytes[j] = float64(x.o.meta.StatePerShard * e.cfg.Z)
	}
	return in
}

// ApplyAssignment diffs the target matrix against current grants and applies
// revocations then grants — the runtime's core-grant semaphore adjustment.
func (h *rhost) ApplyAssignment(x [][]int) { (*Engine)(h).applyAssignment(x) }

func (e *Engine) applyAssignment(x [][]int) {
	// Phase 1: revoke surplus grants per (node, executor); the executor's
	// last grant is kept (an executor always holds one core).
	for j, ex := range e.elastic {
		have := ex.grants()
		for n := range e.nodes {
			want := 0
			if n < len(x) && j < len(x[n]) {
				want = x[n][j]
			}
			for have[n] > want {
				if !ex.revoke(n, false) {
					break
				}
				have[n]--
				e.nodes[n].free.Add(1)
			}
		}
	}
	// Phase 2: grant missing cores.
	for j, ex := range e.elastic {
		have := ex.grants()
		for n := range e.nodes {
			want := 0
			if n < len(x) && j < len(x[n]) {
				want = x[n][j]
			}
			for have[n] < want {
				if !e.nodes[n].alive || e.nodes[n].free.Load() <= 0 {
					break
				}
				e.nodes[n].free.Add(-1)
				ex.grant(n)
				have[n]++
			}
		}
	}
}

func (h *rhost) RecordSchedulingWall(d time.Duration) {
	e := (*Engine)(h)
	e.repMu.Lock()
	e.schedulingWall = append(e.schedulingWall, d)
	e.repMu.Unlock()
	e.emit(engine.Event{Kind: engine.EventPolicyInvoked, At: e.vnow(), Node: -1,
		Detail: e.pol.Name()})
}

func (h *rhost) StartRepartition(po policy.Operator, moves []balancer.Move) {
	e := (*Engine)(h)
	o, ok := po.(*op)
	if !ok {
		panic("runtime: StartRepartition with a foreign Operator handle")
	}
	e.startRepartition(o, moves)
}
