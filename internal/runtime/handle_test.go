package runtime

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/scenario"
)

// Tests for the runtime side of the Run-handle contract: cancellation with a
// conserved ledger, mid-run command injection, and the structural
// event-sequence conformance between backends.

// TestCancelConservesLedger cancels a runtime run mid-flight: the ordinary
// three-phase shutdown still drains, so every admitted tuple stays accounted
// and Wait returns the partial report with the context's error.
func TestCancelConservesLedger(t *testing.T) {
	s := quickSpec()
	s.DurationSec = 60 // far beyond what the test allows
	ctx, cancel := context.WithCancel(context.Background())
	h, rt, err := StartScenario(ctx, s, "elasticutor", 42, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	cancel()
	r, err := h.Wait()
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r == nil {
		t.Fatal("cancelled run must still return the partial report")
	}
	if r.Duration >= s.Duration() {
		t.Fatalf("partial duration %v not shorter than %v", r.Duration, s.Duration())
	}
	led := rt.Ledger()
	if !led.Conserved() {
		t.Fatalf("ledger not conserved after cancellation: %v", led)
	}
	if led.Processed == 0 {
		t.Fatalf("cancelled run processed nothing: %v", led)
	}
}

// TestInjectDrainMidRun drains a node through the handle's command surface
// while the run executes: ledger conserved, zero lost state.
func TestInjectDrainMidRun(t *testing.T) {
	s := quickSpec()
	s.Phases = nil // steady load; the drain is the only disturbance
	h, rt, err := StartScenario(context.Background(), s, "elasticutor", 42, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Inject(engine.DrainNodeCmd(3).AtTime(2 * simSecond)); err != nil {
		t.Fatalf("inject: %v", err)
	}
	r, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeDrains != 1 {
		t.Fatalf("NodeDrains = %d, want 1 (churn errors: %v)", r.NodeDrains, r.ChurnErrors)
	}
	if r.LostStateBytes != 0 {
		t.Fatalf("graceful drain lost %d state bytes", r.LostStateBytes)
	}
	led := rt.Ledger()
	if !led.Conserved() {
		t.Fatalf("ledger not conserved across injected drain: %v", led)
	}
	if led.DroppedFailure != 0 {
		t.Fatalf("graceful drain recorded failure drops: %v", led)
	}
}

const simSecond = time.Second

// structuralSeq filters a timeline down to the structural events (churn and
// phase transitions) the backends must agree on, formatted without their
// timestamps (absolute timing is a backend property).
func structuralSeq(tl []engine.Event) []string {
	var out []string
	for _, ev := range tl {
		switch ev.Kind {
		case engine.EventNodeJoin, engine.EventNodeDrain, engine.EventNodeFail:
			out = append(out, fmt.Sprintf("%v node=%d", ev.Kind, ev.Node))
		case engine.EventPhaseStart, engine.EventPhaseEnd, engine.EventPhaseSkipped:
			out = append(out, fmt.Sprintf("%v phase=%s", ev.Kind, ev.Phase))
		}
	}
	return out
}

// TestConformanceEventSequence: the same (workload, policy, scenario) must
// emit the same structural event sequence — identical churn and phase event
// kinds, order, and counts — on the simulator and the real-time backend.
func TestConformanceEventSequence(t *testing.T) {
	s := drainSpec()
	s.Name = "rt-structural"
	// Distinct timestamps for every structural event: same-instant events on
	// the real-time backend land via independent timers, so their mutual
	// order is a backend property, not a structural one.
	s.Phases = []scenario.Phase{{Kind: scenario.PhaseFlashCrowd, StartSec: 0.5, DurationSec: 1.5}}
	s.Events = append(s.Events, scenario.NodeEvent{Kind: scenario.EventJoin, AtSec: 4.5})

	for _, pol := range []string{"static", "elasticutor"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			simR, err := s.Run(pol, 42)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			rtR, _, err := RunScenario(s, pol, 42, quickOpts())
			if err != nil {
				t.Fatalf("runtime: %v", err)
			}
			simSeq, rtSeq := structuralSeq(simR.Timeline), structuralSeq(rtR.Timeline)
			if len(simSeq) != len(rtSeq) {
				t.Fatalf("structural event counts differ:\nsim:     %v\nruntime: %v", simSeq, rtSeq)
			}
			for i := range simSeq {
				if simSeq[i] != rtSeq[i] {
					t.Errorf("structural event %d differs: sim=%q runtime=%q", i, simSeq[i], rtSeq[i])
				}
			}
			// Both backends must have seen the full story: flash-crowd phase
			// bracketed, one drain, one join.
			want := []string{"phase-start phase=flashcrowd", "phase-end phase=flashcrowd",
				"node-drain node=3", "node-join node=4"}
			have := map[string]bool{}
			for _, evs := range simSeq {
				have[evs] = true
			}
			for _, w := range want {
				if !have[w] {
					t.Errorf("sim timeline missing %q: %v", w, simSeq)
				}
			}
		})
	}
}
