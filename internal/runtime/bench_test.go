package runtime

import (
	goruntime "runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/workload"
)

// saturatedConfig is the hot-path measurement topology: one node, one
// single-core executor, zero modeled CPU cost, a source offered far beyond
// capacity so backpressure finds the real ceiling. Batch (tuple weight per
// event) is 1, so processed weight == tuples moved through the full path.
func saturatedConfig(b *testing.B) engine.Config {
	b.Helper()
	pol, err := policy.ByName("elasticutor")
	if err != nil {
		b.Fatal(err)
	}
	setup := core.MicroSetup(core.MicroOptions{
		Policy:          pol,
		Nodes:           1,
		SourceExecutors: 1,
		Y:               1,
		Spec: workload.Spec{
			Keys: 1024, Skew: 0.5, TupleBytes: 64,
			CPUCost: 0, ShardStateKB: 1,
		},
		Rate:  50e6,
		Batch: 1,
		Seed:  1,
	})
	setup.Config.FixedCores = 1
	return setup.Config
}

// BenchmarkHotPathEndToEnd drives a saturated run on the runtime backend at
// GOMAXPROCS=1 and reports end-to-end tuples/s — the ROADMAP's headline
// hot-path number. Each iteration is one full 150 ms wall-clock run
// (placement, sources, workers, drain); the custom tuples/s metric is the
// measure, ns/op is just the run harness cost.
func BenchmarkHotPathEndToEnd(b *testing.B) {
	prev := goruntime.GOMAXPROCS(1)
	defer goruntime.GOMAXPROCS(prev)
	const window = 150 * time.Millisecond
	var processed int64
	var busy time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := New(saturatedConfig(b), Options{Clock: RealClock(), DrainTimeout: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if _, err := rt.Run(simtime.Duration(window)); err != nil {
			b.Fatal(err)
		}
		busy += time.Since(start)
		led := rt.Ledger()
		if !led.Conserved() {
			b.Fatalf("ledger not conserved: %v", led)
		}
		processed += led.Processed
	}
	b.ReportMetric(float64(processed)/busy.Seconds(), "tuples/s")
}

// benchEngine builds an idle (never Run) runtime whose placed executors the
// component benches drive directly, the calibration harness's pattern.
func benchEngine(b *testing.B, polName string, y int) *Engine {
	b.Helper()
	pol, err := policy.ByName(polName)
	if err != nil {
		b.Fatal(err)
	}
	setup := core.MicroSetup(core.MicroOptions{
		Policy:          pol,
		Nodes:           2,
		SourceExecutors: 1,
		Y:               y,
		Spec: workload.Spec{
			Keys: 1024, Skew: 0.5, TupleBytes: 64,
			CPUCost: 0, ShardStateKB: 1,
		},
		Rate:  1000,
		Batch: 1,
		Seed:  1,
	})
	e, err := New(setup.Config, Options{Clock: RealClock()})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// routedOp returns the first operator carrying a dynamic-routing snapshot
// (shard→executor table), the hot path's admission target.
func routedOp(b *testing.B, e *Engine) *op {
	b.Helper()
	for _, o := range e.opOrder {
		if o.snap.Load().table != nil {
			return o
		}
	}
	b.Fatal("no dynamically routed operator in bench engine")
	return nil
}

// BenchmarkHotPathAdmission measures one deliver of a 64-tuple batch into a
// 4-executor dynamically routed operator: shard-load recording, per-tuple
// routing, the per-executor gather, and the channel hand-offs. The bench
// goroutine then plays the workers' side of the buffer-ownership contract
// inline (receive, un-account, release to the pool) so the measurement is
// the admission path itself, not scheduler wake latency. Steady state must
// stay at ~1 amortized allocation per batch — the pool recycle, nothing per
// tuple.
func BenchmarkHotPathAdmission(b *testing.B) {
	e := benchEngine(b, "rc", 4)
	o := routedOp(b, e)
	snap := o.snap.Load()
	const batchSize = 64
	batch := make([]stream.Tuple, batchSize)
	for i := range batch {
		batch[i] = stream.Tuple{Key: stream.Key(i * 2654435761), Weight: 1, Bytes: 64}
	}
	drain := func() {
		for _, x := range snap.execs {
			for {
				select {
				case ts := <-x.in:
					var w int64
					for i := range ts {
						w += int64(ts[i].Weight)
					}
					o.inflight.Add(0, -w)
					x.queuedW.Add(-w)
					putTupleBuf(ts)
					continue
				default:
				}
				break
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.deliver(o, batch, true, 0)
		drain()
	}
	b.StopTimer()
	b.ReportMetric(float64(batchSize), "tuples/batch")
}

// benchRouteSink defeats dead-code elimination in BenchmarkRouteBatch.
var benchRouteSink int

// BenchmarkRouteBatch measures the per-tuple routing decision alone: the flat
// shard→executor table lookup the batched hot path uses under a dynamic-
// routing policy. Allocation-free by construction.
func BenchmarkRouteBatch(b *testing.B) {
	e := benchEngine(b, "rc", 4)
	o := routedOp(b, e)
	s := o.snap.Load()
	keys := make([]stream.Key, 1024)
	z := workload.NewZipf(1024, 0.5, simtime.NewRand(1))
	for i := range keys {
		keys[i] = z.Sample()
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += e.routeIdx(o, s, keys[i&1023])
	}
	benchRouteSink = sink
}
