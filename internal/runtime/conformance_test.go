package runtime

import (
	"testing"

	"repro/internal/balancer"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

// The backend-conformance suite: the same scenario under the same policy must
// be *structurally* equivalent on the simulator and the real-time backend —
// identical executor provisioning, a conserved tuple ledger, and zero lost
// state under graceful churn. Absolute throughput and timing are backend
// properties and are deliberately not compared.

var conformancePolicies = []string{"static", "rc", "naive-ec", "elasticutor"}

func drainSpec() *scenario.Spec {
	return &scenario.Spec{
		Name:        "rt-drain",
		Nodes:       4,
		DurationSec: 6,
		WarmupSec:   1,
		Workload:    scenario.WorkloadSpec{RateFraction: 0.25},
		Events:      []scenario.NodeEvent{{Kind: scenario.EventDrain, AtSec: 3, Node: 3}},
	}
}

func failSpec() *scenario.Spec {
	s := drainSpec()
	s.Name = "rt-fail"
	s.Events = []scenario.NodeEvent{{Kind: scenario.EventFail, AtSec: 3, Node: 3}}
	return s
}

func joinSpec() *scenario.Spec {
	s := drainSpec()
	s.Name = "rt-join"
	s.Events = []scenario.NodeEvent{{Kind: scenario.EventJoin, AtSec: 3}}
	return s
}

// TestConformanceFlashcrowd runs the flash-crowd scenario under all four
// policies on both backends and checks the structural contract.
func TestConformanceFlashcrowd(t *testing.T) {
	spec := quickSpec()
	for _, pol := range conformancePolicies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			inst, err := spec.Build(pol, 42)
			if err != nil {
				t.Fatalf("sim build: %v", err)
			}
			simR := inst.Engine.Run(spec.Duration())
			simCounts := inst.Engine.ExecutorCounts()

			rt, _, err := BuildScenario(spec, pol, 42, quickOpts())
			if err != nil {
				t.Fatalf("runtime build: %v", err)
			}
			rtR, err := rt.Run(spec.Duration())
			if err != nil {
				t.Fatalf("runtime run: %v", err)
			}
			rtCounts := rt.ExecutorCounts()

			// Same provisioning: the policy's Place decisions must land
			// identically on both backends.
			if len(simCounts) != len(rtCounts) {
				t.Fatalf("operator sets differ: sim=%v runtime=%v", simCounts, rtCounts)
			}
			for name, n := range simCounts {
				if rtCounts[name] != n {
					t.Errorf("executor count for %q: sim=%d runtime=%d", name, n, rtCounts[name])
				}
			}
			// Conserved ledger on the runtime; the simulator's invariant is
			// zero executor-level drops without churn.
			led := rt.Ledger()
			if !led.Conserved() {
				t.Errorf("runtime ledger not conserved: %v", led)
			}
			if led.Processed == 0 {
				t.Errorf("runtime processed nothing: %v", led)
			}
			if simR.Dropped != 0 {
				t.Errorf("sim dropped %d tuples without churn", simR.Dropped)
			}
			if simR.LostStateBytes != 0 || rtR.LostStateBytes != 0 {
				t.Errorf("lost state without failures: sim=%d runtime=%d",
					simR.LostStateBytes, rtR.LostStateBytes)
			}
			if simR.Policy != rtR.Policy {
				t.Errorf("policy names differ: %q vs %q", simR.Policy, rtR.Policy)
			}
		})
	}
}

// TestConformanceDrain checks the graceful-drain contract on both backends:
// the node leaves, no state is lost, and every tuple is accounted for.
func TestConformanceDrain(t *testing.T) {
	spec := drainSpec()
	for _, pol := range conformancePolicies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			simR, err := spec.Run(pol, 42)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			rt, _, err := BuildScenario(spec, pol, 42, quickOpts())
			if err != nil {
				t.Fatalf("runtime build: %v", err)
			}
			rtR, err := rt.Run(spec.Duration())
			if err != nil {
				t.Fatalf("runtime run: %v", err)
			}
			led := rt.Ledger()
			if !led.Conserved() {
				t.Errorf("ledger not conserved: %v", led)
			}
			if simR.NodeDrains != 1 || rtR.NodeDrains != 1 {
				t.Errorf("drain counts: sim=%d runtime=%d", simR.NodeDrains, rtR.NodeDrains)
			}
			// Graceful drains migrate state; losing any is a protocol bug.
			if simR.LostStateBytes != 0 {
				t.Errorf("sim lost %d bytes on graceful drain", simR.LostStateBytes)
			}
			if rtR.LostStateBytes != 0 {
				t.Errorf("runtime lost %d bytes on graceful drain", rtR.LostStateBytes)
			}
			if led.DroppedFailure != 0 {
				t.Errorf("graceful drain recorded failure drops: %v", led)
			}
			for name, n := range rt.ExecutorCounts() {
				if n < 1 {
					t.Errorf("operator %q left with %d executors", name, n)
				}
			}
		})
	}
}

// TestConformanceFailAndJoin checks hard-failure accounting (state written
// off, drops carry a cause) and join bookkeeping on the runtime.
func TestConformanceFailAndJoin(t *testing.T) {
	rtR, led, err := RunScenario(failSpec(), "static", 42, quickOpts())
	if err != nil {
		t.Fatalf("fail scenario: %v", err)
	}
	if !led.Conserved() {
		t.Errorf("ledger not conserved after failure: %v", led)
	}
	if rtR.NodeFails != 1 {
		t.Errorf("NodeFails = %d", rtR.NodeFails)
	}
	if rtR.LostStateBytes == 0 {
		t.Errorf("hard failure lost no state")
	}

	joinR, joinLed, err := RunScenario(joinSpec(), "elasticutor", 42, quickOpts())
	if err != nil {
		t.Fatalf("join scenario: %v", err)
	}
	if joinR.NodeJoins != 1 {
		t.Errorf("NodeJoins = %d", joinR.NodeJoins)
	}
	if !joinLed.Conserved() {
		t.Errorf("ledger not conserved after join: %v", joinLed)
	}
}

// TestRepartitionProtocol drives the §3.3 pause→drain→migrate→reroute
// protocol directly on a live runtime and checks its bookkeeping.
func TestRepartitionProtocol(t *testing.T) {
	rt, _, err := BuildScenario(quickSpec(), "rc", 42, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := rt.opOrder[0]
	before := append([]int(nil), o.snap.Load().routing...)
	if before == nil {
		t.Fatal("rc operator has no routing table")
	}
	// Move two shards owned by executor 0 to executor 1, mid-run.
	var moves []balancer.Move
	for s, owner := range before {
		if owner == 0 {
			moves = append(moves, balancer.Move{Shard: s, From: 0, To: 1})
			if len(moves) == 2 {
				break
			}
		}
	}
	rt.AtVirtual(2*simtime.Second, func() { rt.startRepartition(o, moves) })
	r, err := rt.Run(quickSpec().Duration())
	if err != nil {
		t.Fatal(err)
	}
	if r.Repartitions < 1 {
		t.Fatalf("repartitions = %d, want >= 1", r.Repartitions)
	}
	if r.RepartitionMove < int64(len(moves)) {
		t.Errorf("moves recorded = %d, want >= %d", r.RepartitionMove, len(moves))
	}
	if r.RepartitionBytes <= 0 {
		t.Errorf("repartition moved no state bytes")
	}
	after := o.snap.Load().routing
	for _, m := range moves {
		if after[m.Shard] != m.To {
			t.Errorf("shard %d routed to %d, want %d", m.Shard, after[m.Shard], m.To)
		}
	}
	if !rt.Ledger().Conserved() {
		t.Errorf("ledger not conserved across repartition: %v", rt.Ledger())
	}
}
