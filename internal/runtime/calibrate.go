package runtime

import (
	"fmt"
	goruntime "runtime"
	"time"

	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/qmodel"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/state"
	"repro/internal/stream"
	"repro/internal/workload"
)

// calibSink defeats dead-code elimination in the serialization copy.
var calibSink byte

// CalibrateOptions dimensions the measurement run.
type CalibrateOptions struct {
	// TupleWindow is the wall time the per-tuple measurement saturates one
	// executor (default 300 ms).
	TupleWindow time.Duration
	// ShardBytes sizes the migrated shards (default 32 KB, the paper's).
	ShardBytes int
	// ShardKeys is the per-shard key population for migration copies
	// (default 256).
	ShardKeys int
	// Nodes/Executors dimension the scheduling-invocation measurement
	// (default 4 nodes × 28 executors, the quick scale).
	Nodes, Executors int
	// Rounds repeats the control/scheduling measurements (default 64).
	Rounds int
}

func (o CalibrateOptions) withDefaults() CalibrateOptions {
	if o.TupleWindow <= 0 {
		o.TupleWindow = 300 * time.Millisecond
	}
	if o.ShardBytes <= 0 {
		o.ShardBytes = 32 << 10
	}
	if o.ShardKeys <= 0 {
		o.ShardKeys = 256
	}
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.Executors <= 0 {
		o.Executors = 28
	}
	if o.Rounds <= 0 {
		o.Rounds = 64
	}
	return o
}

// Calibrate measures the real-time backend's costs on this machine and
// returns them as the calibration table the simulator loads. Every number
// comes from the backend's actual primitives — the executor hot path, the
// shard-state move, the routing swap, and a real scheduler invocation — not
// from synthetic stand-ins.
func Calibrate(opt CalibrateOptions) (*calib.Table, error) {
	opt = opt.withDefaults()
	t := calib.New()
	t.Host = fmt.Sprintf("%s/%s %d-core", goruntime.GOOS, goruntime.GOARCH, goruntime.NumCPU())

	perTuple, perEvent, err := measurePerTuple(opt)
	if err != nil {
		return nil, err
	}
	t.PerTupleOverheadNS = perTuple.Nanoseconds()
	t.PerEventOverheadNS = perEvent.Nanoseconds()
	ser, bw := measureMigration(opt)
	t.SerializeOverheadNS = ser.Nanoseconds()
	t.MigrationBandwidthBps = bw
	t.ControlDelayNS = measureControl(opt).Nanoseconds()
	t.SchedulingWallNS = measureScheduling(opt).Nanoseconds()
	return t, nil
}

// measurePerTuple saturates one single-core executor with zero-cost tuples
// on the real clock and derives two overheads from the processed throughput:
// the amortized per-tuple cost (window over processed weight — what one real
// tuple pays on the batched path: its share of the channel hop and batch
// accounting plus its own shard resolution) and the per-event cost (window
// over channel batches — what one queue operation costs end to end).
func measurePerTuple(opt CalibrateOptions) (time.Duration, time.Duration, error) {
	pol, err := policy.ByName("elasticutor")
	if err != nil {
		return 0, 0, err
	}
	setup := core.MicroSetup(core.MicroOptions{
		Policy:          pol,
		Nodes:           1,
		SourceExecutors: 1,
		Y:               1,
		Spec: workload.Spec{
			Keys: 1024, Skew: 0.5, TupleBytes: 64,
			CPUCost: 0, ShardStateKB: 1, // zero CPU cost: measure the plumbing alone
		},
		Rate: 5e6, // saturating: backpressure finds the real ceiling
		Seed: 1,
	})
	// Pin the executor to its one core and silence the control planes: the
	// measurement wants the dataflow path alone.
	setup.Config.FixedCores = 1
	rt, err := New(setup.Config, Options{Clock: RealClock(), DrainTimeout: time.Second})
	if err != nil {
		return 0, 0, err
	}
	r, err := rt.Run(simtime.Duration(opt.TupleWindow))
	if err != nil {
		return 0, 0, err
	}
	led := rt.Ledger()
	if led.Processed == 0 {
		return 0, 0, fmt.Errorf("runtime: calibration run processed nothing")
	}
	perTuple := time.Duration(int64(opt.TupleWindow) / led.Processed)
	events := int64(r.Events)
	if events == 0 {
		events = led.Processed
	}
	return perTuple, time.Duration(int64(opt.TupleWindow) / events), nil
}

// measureMigration moves populated shards between two executors' state maps
// through the runtime's own takeShard/putShard path, plus the payload copy a
// real serialization pays, and splits the cost into a fixed overhead and a
// per-byte bandwidth.
func measureMigration(opt CalibrateOptions) (time.Duration, float64) {
	e := calibExecPair(opt)
	src, dst := e.allExecs[0], e.allExecs[1]
	fill := func(x *exec, sh state.ShardID, keys int) {
		st := x.stripeFor(sh)
		st.mu.Lock()
		d := st.shard(x, sh)
		d.bytes = opt.ShardBytes
		for k := 0; k < keys; k++ {
			d.keys[stream.Key(uint64(sh)*1e6+uint64(k))] = k
		}
		st.mu.Unlock()
	}
	move := func(sh state.ShardID) time.Duration {
		start := time.Now()
		d := src.takeShard(sh)
		// The payload copy a cross-process migration serializes.
		buf := make([]byte, d.bytes)
		for i := range buf {
			buf[i] = byte(i)
		}
		calibSink = buf[len(buf)-1]
		dst.putShard(sh, d)
		return time.Since(start)
	}
	// Warm up, then measure.
	for sh := 0; sh < 4; sh++ {
		fill(src, state.ShardID(sh), opt.ShardKeys)
		move(state.ShardID(sh))
	}
	var total time.Duration
	var bytes int64
	for sh := 4; sh < 4+opt.Rounds; sh++ {
		fill(src, state.ShardID(sh), opt.ShardKeys)
		total += move(state.ShardID(sh))
		bytes += int64(opt.ShardBytes)
	}
	perMove := total / time.Duration(opt.Rounds)
	// Small-shard moves approximate the fixed overhead; bandwidth comes from
	// the bulk rate.
	var smallTotal time.Duration
	for sh := 1000; sh < 1000+opt.Rounds; sh++ {
		st := src.stripeFor(state.ShardID(sh))
		st.mu.Lock()
		d := st.shard(src, state.ShardID(sh))
		d.bytes = 64
		st.mu.Unlock()
		smallTotal += move(state.ShardID(sh))
	}
	ser := smallTotal / time.Duration(opt.Rounds)
	transfer := perMove - ser
	if transfer <= 0 {
		transfer = perMove
	}
	bw := float64(opt.ShardBytes) * 8 / transfer.Seconds()
	return ser, bw
}

// measureControl times one routing mutation: build and publish a fresh
// routing snapshot — including the flat shard→executor table rebuild the
// batched hot path reads — the runtime's pause/update bookkeeping unit.
func measureControl(opt CalibrateOptions) time.Duration {
	e := calibExecPair(opt)
	o := e.opOrder[0]
	routing := make([]int, 1024)
	o.snapMu.Lock()
	cur := o.snap.Load()
	o.snap.Store(newOpSnap(cur.execs, routing))
	o.snapMu.Unlock()
	start := time.Now()
	for i := 0; i < opt.Rounds; i++ {
		o.snapMu.Lock()
		cur := o.snap.Load()
		next := append([]int(nil), cur.routing...)
		next[i%len(next)] = i % 2
		o.snap.Store(newOpSnap(cur.execs, next))
		o.snapMu.Unlock()
	}
	return time.Since(start) / time.Duration(opt.Rounds)
}

// measureScheduling times one full dynamic-scheduler invocation (queueing
// model + Algorithm 1) at the requested dimensions.
func measureScheduling(opt CalibrateOptions) time.Duration {
	n, m := opt.Nodes, opt.Executors
	loads := make([]qmodel.ExecutorLoad, m)
	intensity := make([]float64, m)
	for j := range loads {
		loads[j] = qmodel.ExecutorLoad{Lambda: 800 + float64(j%7)*120, Mu: 1000}
		intensity[j] = float64((j % 5)) * 100e3
	}
	in := scheduler.Input{
		Capacity:      make([]int, n),
		Local:         make([]int, m),
		StateBytes:    make([]float64, m),
		DataIntensity: intensity,
		Existing:      make([][]int, n),
	}
	for i := 0; i < n; i++ {
		in.Capacity[i] = 8
		in.Existing[i] = make([]int, m)
	}
	for j := 0; j < m; j++ {
		in.Local[j] = j % n
		in.StateBytes[j] = 8 << 20
		in.Existing[j%n][j] = 1
	}
	start := time.Now()
	for i := 0; i < opt.Rounds; i++ {
		alloc := qmodel.Allocate(loads, 20000, 50*simtime.Millisecond, n*8)
		in.Alloc = alloc.K
		_, _ = scheduler.Assign(in)
	}
	return time.Since(start) / time.Duration(opt.Rounds)
}

// calibExecPair builds an idle two-executor runtime for the state and
// control measurements (never Run).
func calibExecPair(opt CalibrateOptions) *Engine {
	pol, _ := policy.ByName("elasticutor")
	setup := core.MicroSetup(core.MicroOptions{
		Policy:          pol,
		Nodes:           2,
		SourceExecutors: 1,
		Y:               2,
		Spec: workload.Spec{
			Keys: 1024, Skew: 0.5, TupleBytes: 64,
			CPUCost: simtime.Millisecond, ShardStateKB: opt.ShardBytes >> 10,
		},
		Rate: 1000,
		Seed: 1,
	})
	e, err := New(setup.Config, Options{Clock: RealClock()})
	if err != nil {
		panic(fmt.Sprintf("runtime: calibration setup: %v", err))
	}
	return e
}
