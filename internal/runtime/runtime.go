// Package runtime is the real-time execution backend of the Elasticutor
// reproduction: the same topologies, policies, and scenario specs as the
// discrete-event simulator (internal/engine), but executed on actual
// goroutines against a wall clock.
//
//   - each executor is a goroutine pool fed by one buffered channel; a
//     "core grant" is one worker goroutine bound to a node, and the dynamic
//     scheduler's ApplyAssignment adjusts the pool by granting and revoking
//     workers (the core-grant semaphore);
//   - executor state lives in sharded maps guarded per-stripe, so concurrent
//     workers of one executor never race on per-key state;
//   - time is the machine clock behind a Clock abstraction (tests compress it
//     with Scaled), and the policy surface's virtual time is wall time since
//     the run started;
//   - the control planes run unmodified: the backend implements policy.Host
//     (Every via tickers, ExecutorLoads from real counters, StartRepartition
//     as the §3.3 pause→drain→migrate→reroute protocol over channels), and a
//     single control goroutine serializes every policy invocation exactly as
//     the simulator's event loop does.
//
// Where the simulator charges modeled costs, the runtime pays real ones:
// channel hops, lock contention, and scheduling jitter are measured, not
// assumed — tools/calibrate turns those measurements into a cost table the
// simulator loads. The runtime is deliberately not deterministic; its
// contract with the simulator is structural (see the backend-conformance
// suite): identical placement, a conserved tuple ledger, and zero lost state
// under graceful drains.
package runtime

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/stream"
)

// Options tunes the backend; zero values take defaults.
type Options struct {
	// Clock supplies time; nil uses Scaled(Speedup) (RealClock when Speedup
	// ≤ 1).
	Clock Clock
	// Speedup compresses time by this factor when Clock is nil: a 16 s
	// scenario at Speedup 20 finishes in 0.8 s of wall time.
	Speedup float64
	// QueueDepth is the per-executor input channel capacity in tuple events
	// (default MaxInFlight/Batch, at least 16) — the backpressure credit.
	QueueDepth int
	// DrainTimeout bounds the shutdown drain in wall time (default 3 s).
	// Tuples still queued when it expires are counted dropped-at-shutdown.
	DrainTimeout time.Duration
	// SourceTick is the token-bucket refill period in virtual time
	// (default 2 ms).
	SourceTick time.Duration
	// Remote, when set, offloads executor CPU burn and resident shard state
	// to out-of-process per-node agents (see Remote; internal/dist is the
	// implementation). Requires handler-free operators — user logic cannot
	// cross the process boundary — and a nil Clock (the engine converts
	// between virtual and agent wall time through Speedup).
	Remote Remote
}

func (o Options) withDefaults() Options {
	if o.Clock == nil {
		o.Clock = Scaled(o.Speedup)
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 3 * time.Second
	}
	if o.SourceTick <= 0 {
		o.SourceTick = 2 * time.Millisecond
	}
	return o
}

// Ledger is the runtime's conservation account, in tuple-weight units summed
// over every operator. Admitted splits exactly into processed work and drops
// with a recorded cause; Blocked was refused at the source and never entered
// the dataflow.
type Ledger struct {
	Admitted        int64 // accepted into an operator (buffered included)
	Processed       int64 // completed by an operator's executor
	DroppedFailure  int64 // destroyed by a node failure
	DroppedShutdown int64 // still queued when the shutdown drain expired
	Blocked         int64 // refused by source backpressure (never admitted)
}

// Conserved reports whether every admitted tuple is accounted for.
func (l Ledger) Conserved() bool {
	return l.Admitted == l.Processed+l.DroppedFailure+l.DroppedShutdown
}

func (l Ledger) String() string {
	return fmt.Sprintf("admitted=%d processed=%d dropFail=%d dropShutdown=%d blocked=%d conserved=%v",
		l.Admitted, l.Processed, l.DroppedFailure, l.DroppedShutdown, l.Blocked, l.Conserved())
}

// node is the runtime's bookkeeping for one cluster node. Fields are mutated
// only on the control goroutine (placement happens before it starts); free is
// atomic because Snapshot reads it from arbitrary goroutines for the
// cluster-utilization figure.
type node struct {
	id          int
	cores       int
	free        atomic.Int64 // cores not yet granted or reserved
	srcReserved int
	alive       bool
}

// opSnap is the immutable routing snapshot of one operator: the live executor
// set plus (for dynamic-routing placements) the operator-shard routing table.
// Writers build a fresh snapshot and swap the pointer; the tuple hot path
// only loads. table is the flat shard→executor lookup derived from routing,
// clamped to the executor set at build time so the hot path indexes it with
// no bounds fixing — a snapshot swap is what invalidates it, never an
// in-place edit.
type opSnap struct {
	execs   []*exec
	routing []int
	table   []int32
}

// newOpSnap builds a snapshot, precomputing the flat routing table. Every
// snapshot writer (placement, repartition commit, retirement) must construct
// through here so table and routing never diverge.
func newOpSnap(execs []*exec, routing []int) *opSnap {
	s := &opSnap{execs: execs, routing: routing}
	if routing != nil && len(execs) > 0 {
		s.table = make([]int32, len(routing))
		for i, owner := range routing {
			s.table[i] = int32(clampIdx(owner, len(execs)))
		}
	}
	return s
}

// op is the per-operator runtime, and the policy.Operator handle.
type op struct {
	e    *Engine
	meta *stream.Operator

	firstHop bool
	sink     bool
	measured bool

	opSharded  bool
	dynRouting bool

	snapMu sync.Mutex // serializes snapshot writers
	snap   atomic.Pointer[opSnap]

	paused   atomic.Bool
	repart   atomic.Bool
	inflight stripedInt64 // weight admitted but not yet processed/dropped

	bufMu    sync.Mutex
	pauseBuf []stream.Tuple

	loadMu    sync.Mutex
	shardLoad []float64 // per operator shard, nil unless dynRouting

	// ledger counters (weight units). The hot-path pair is lane-striped so
	// concurrent workers and sources never share a counter cache line; the
	// drop counters stay plain atomics (cold paths).
	admitted  stripedInt64
	processed stripedInt64
	dropFail  atomic.Int64
	dropShut  atomic.Int64

	// retiredN counts executors cluster churn removed from this operator.
	retiredN atomic.Int64

	// Latency anatomy. anat collects sampled (traced) hop observations from
	// workers on per-lane cells; rpStallNS accumulates §3.3 pause stall ×
	// weight attributed at replay. Both drain at the metrics window tick into
	// the e.snapMu-guarded fold results below, the Snapshot surface.
	anat      *metrics.StageRecorder
	rpStallNS atomic.Int64

	// Guarded by e.snapMu: cumulative post-warm-up per-stage totals and the
	// last non-empty window's hop-latency percentiles.
	anatTotals [metrics.NumStages]simtime.Duration
	latP50     simtime.Duration
	latP99     simtime.Duration
}

// policy.Operator implementation. Everything reads atomic snapshots so the
// tuple hot path (Route) never takes a lock.

func (o *op) Meta() *stream.Operator { return o.meta }
func (o *op) Executors() int         { return len(o.snap.Load().execs) }
func (o *op) Routing() []int         { return o.snap.Load().routing }

func (o *op) ShardLoads() []float64 {
	// dynRouting is immutable after placement; the slice itself is only
	// touched under loadMu (reading the header unlocked would race Reset).
	if !o.dynRouting {
		return nil
	}
	o.loadMu.Lock()
	defer o.loadMu.Unlock()
	out := make([]float64, len(o.shardLoad))
	copy(out, o.shardLoad)
	return out
}

func (o *op) ResetShardLoads() {
	if !o.dynRouting {
		return
	}
	o.loadMu.Lock()
	o.shardLoad = make([]float64, len(o.shardLoad))
	o.loadMu.Unlock()
}

func (o *op) Repartitioning() bool { return o.paused.Load() || o.repart.Load() }

func (o *op) recordShardLoad(k stream.Key, w int) {
	if !o.dynRouting {
		return
	}
	o.loadMu.Lock()
	o.shardLoad[k.OperatorShard(len(o.shardLoad))] += float64(w)
	o.loadMu.Unlock()
}

// recordShardLoadBatch folds a whole batch's offered load under one lock.
func (o *op) recordShardLoadBatch(ts []stream.Tuple) {
	if !o.dynRouting {
		return
	}
	o.loadMu.Lock()
	n := len(o.shardLoad)
	for i := range ts {
		o.shardLoad[ts[i].Key.OperatorShard(n)] += float64(ts[i].Weight)
	}
	o.loadMu.Unlock()
}

// bufferAll parks a batch in the pause buffer under one lock (the §3.3 pause
// phase: a partial batch arriving at a paused operator is flushed into the
// buffer whole, in order, and replays after the routing commit).
func (o *op) bufferAll(ts []stream.Tuple) {
	o.bufMu.Lock()
	o.pauseBuf = append(o.pauseBuf, ts...)
	o.bufMu.Unlock()
}

// Engine is one configured real-time run.
type Engine struct {
	cfg   engine.Config
	opt   Options
	clock Clock
	pol   policy.Policy
	par   engine.Paradigm

	nodes   []*node
	ops     map[stream.OperatorID]*op
	opOrder []*op
	sources []*src

	elastic  []*exec // live executors, global scheduler indexing
	allExecs []*exec // every executor ever created (shutdown sweep)

	remote    Remote // out-of-process agent offload (nil = in-process)
	remoteSeq uint32 // executor wire-id allocator (placement + control only)

	ctrl chan func()

	// Hot-path routing and admission constants, fixed at New.
	fastRoute bool  // built-in policy: routing is precomputed (see routeIdx)
	creditW   int64 // per-executor queue credit in tuple weight
	laneSeq   atomic.Int64

	stopSrc     chan struct{} // phase 1: sources stop emitting
	done        chan struct{} // phase 2: control plane and protocols stop
	stopWorkers chan struct{} // phase 3: workers exit

	wg sync.WaitGroup
	// start anchors vnow. Atomic because Begin re-anchors it concurrently
	// with Snapshot readers (mid-run /metrics scrapes, samplers).
	start atomic.Pointer[time.Time]

	fatalMu  sync.Mutex
	fatalErr error
	fatalCh  chan struct{}

	// measurement
	coll      collector
	generated atomic.Int64 // post-warmup, measured like the simulator
	blocked   atomic.Int64

	// control-plane accounting (control goroutine or repartition goroutines)
	repMu          sync.Mutex
	repartitions   int
	repartMoves    int64
	repartBytes    int64
	repartTime     simtime.Duration
	repartSync     simtime.Duration
	repartReplayed int64
	migrationBytes atomic.Int64
	lostStateBytes atomic.Int64
	retiredExecs   int
	nodeJoins      int
	nodeDrains     int
	nodeFails      int
	churnErrors    []string
	schedulingWall []time.Duration

	started bool
	runFor  simtime.Duration
	ranMu   sync.Mutex

	// Run-handle surface (see handle.go).
	onEvent    func(engine.Event)
	onCommand  func(engine.Command)
	cancelCh   chan struct{}
	cancelMu   sync.Mutex
	cancelSig  bool
	rateFactor atomic.Uint64 // float64 bits of the CmdSetRate multiplier

	// snapshot windows (handle.go Snapshot)
	snapMu        sync.Mutex
	lastSnapAt    simtime.Time
	lastOffered   []int64
	lastProcessed []int64
	// Last folded latency window (sampleSeries writes, Snapshot reads; both
	// under snapMu) — the observer-independent quantile surface.
	lastWindow metrics.QuantilePoint
	lastStages *metrics.StageSet
	// nodesMu orders Snapshot's cross-goroutine reads of the node set
	// against churn mutations; all other node access stays control-goroutine
	// single-threaded and takes no lock.
	nodesMu sync.Mutex

	// hooks run when Run starts (scenario wiring registered beforehand).
	hooks []func()
}

// collector aggregates latency and throughput measurements from many
// workers. Writers land on per-lane cells (each with its own mutex and
// histograms, so hot-path observes never contend on one shared line); the
// control goroutine folds the window cells into the series each second, and
// buildReport merges the totals.
type collector struct {
	cells [numLanes]collCell

	// Control-goroutine state (sampleSeries folds, buildReport assembles).
	thr        metrics.Series
	latSeries  metrics.Series
	quant      metrics.QuantileSeries
	winScratch *metrics.Histogram
	winStages  *metrics.StageSet
}

// collCell is one lane's share of the collector.
type collCell struct {
	mu        sync.Mutex
	lat       *metrics.Histogram
	winLat    *metrics.Histogram
	stage     *metrics.StageSet // cumulative traced sink samples, attributed
	winStage  *metrics.StageSet
	procTotal int64 // post-warmup processed weight at the measured operator
	procWin   int64
	_         [24]byte // keep neighbouring cells off one cache line
}

// New builds a runtime engine for the same configuration the simulator takes.
// Simulation-only knobs (AssertOrder, Seed determinism) are ignored; the
// runtime is not deterministic by design.
func New(cfg engine.Config, opt Options) (*Engine, error) {
	cfg = cfg.Defaults()
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	pol := cfg.Policy
	par := cfg.Paradigm
	if pol == nil {
		pol = policy.ForParadigm(cfg.Paradigm)
	} else if p, ok := policy.ParadigmOf(pol.Name()); ok {
		par = p
	} else {
		par = engine.Paradigm(-1)
	}
	if opt.Remote != nil {
		if opt.Clock != nil {
			return nil, fmt.Errorf("runtime: Remote requires a nil Clock (agents scale wall time through Speedup)")
		}
		for _, mop := range cfg.Topology.Operators() {
			if mop.Handler != nil {
				return nil, fmt.Errorf("runtime: Remote cannot run operator %q: handlers do not cross the process boundary", mop.Name)
			}
		}
	}
	opt = opt.withDefaults()
	e := &Engine{
		cfg:         cfg,
		opt:         opt,
		remote:      opt.Remote,
		clock:       opt.Clock,
		pol:         pol,
		par:         par,
		ops:         make(map[stream.OperatorID]*op),
		ctrl:        make(chan func(), 64),
		stopSrc:     make(chan struct{}),
		done:        make(chan struct{}),
		stopWorkers: make(chan struct{}),
		fatalCh:     make(chan struct{}),
		cancelCh:    make(chan struct{}),
	}
	for i := range e.coll.cells {
		e.coll.cells[i].lat = metrics.NewHistogram()
		e.coll.cells[i].winLat = metrics.NewHistogram()
		e.coll.cells[i].stage = metrics.NewStageSet()
		e.coll.cells[i].winStage = metrics.NewStageSet()
	}
	e.coll.winScratch = metrics.NewHistogram()
	e.coll.winStages = metrics.NewStageSet()
	e.lastStages = metrics.NewStageSet()
	e.fastRoute = par != engine.Paradigm(-1)
	e.creditW = int64(e.queueDepth()) * int64(cfg.Batch)
	e.rateFactor.Store(math.Float64bits(1))
	// A pre-Begin epoch so Snapshot's vnow is ~0 before the run starts
	// (Begin re-anchors it).
	epoch := e.clock.Now()
	e.start.Store(&epoch)
	for n := 0; n < cfg.Cluster.Nodes; n++ {
		nd := &node{id: n, cores: cfg.Cluster.CoresPerNode, alive: true}
		nd.free.Store(int64(cfg.Cluster.CoresPerNode))
		e.nodes = append(e.nodes, nd)
	}
	if err := e.placeSources(); err != nil {
		return nil, err
	}
	if err := e.placeExecutors(); err != nil {
		return nil, err
	}
	return e, nil
}

// queueDepth returns the per-executor channel capacity in tuple events.
func (e *Engine) queueDepth() int {
	if e.opt.QueueDepth > 0 {
		return e.opt.QueueDepth
	}
	d := e.cfg.MaxInFlight / e.cfg.Batch
	if d < 16 {
		d = 16
	}
	return d
}

// takeFreeCore claims a free core, preferring the given node; -1 when the
// cluster is exhausted. Mirrors the simulator's placement order.
func (e *Engine) takeFreeCore(prefer int) int {
	if prefer >= 0 && prefer < len(e.nodes) && e.nodes[prefer].alive && e.nodes[prefer].free.Load() > 0 {
		e.nodes[prefer].free.Add(-1)
		return prefer
	}
	for _, n := range e.nodes {
		if n.alive && n.free.Load() > 0 {
			n.free.Add(-1)
			return n.id
		}
	}
	return -1
}

// placeSources reserves one core per source instance, round-robin on nodes,
// exactly like the simulator.
func (e *Engine) placeSources() error {
	for _, sop := range e.cfg.Topology.Sources() {
		drv := e.cfg.Sources[sop.ID]
		if drv == nil {
			return fmt.Errorf("runtime: source operator %q has no driver", sop.Name)
		}
		for i := 0; i < e.cfg.SourceExecutors; i++ {
			nd := e.nodes[i%len(e.nodes)]
			if !e.cfg.SourcesFree {
				if nd.free.Load() > 0 {
					nd.free.Add(-1)
					nd.srcReserved++
				} else if got := e.takeFreeCore(-1); got >= 0 {
					e.nodes[got].srcReserved++
				} else {
					return fmt.Errorf("runtime: out of cores placing sources")
				}
			}
		}
		e.sources = append(e.sources, &src{e: e, op: sop, drv: drv})
	}
	return nil
}

// placeExecutors runs the policy's Place decisions, mirroring the simulator's
// provisioning loop (round-robin locality, under-provision tolerated for
// elastic placements).
func (e *Engine) placeExecutors() error {
	var nonSource []*stream.Operator
	for _, mop := range e.cfg.Topology.Operators() {
		if !mop.Source {
			nonSource = append(nonSource, mop)
		}
	}
	if len(nonSource) == 0 {
		return fmt.Errorf("runtime: topology has no non-source operators")
	}
	freeTotal := 0
	for _, n := range e.nodes {
		freeTotal += int(n.free.Load())
	}
	if freeTotal < len(nonSource) {
		return fmt.Errorf("runtime: %d cores cannot host %d operators", freeTotal, len(nonSource))
	}
	knobs := e.knobs()
	measure := e.measureOp()
	for idx, mop := range nonSource {
		pl := e.pol.Place(knobs, mop, idx, len(nonSource), freeTotal)
		o := &op{
			e:          e,
			meta:       mop,
			firstHop:   e.isFirstHop(mop),
			sink:       len(mop.Downstream()) == 0,
			measured:   mop.ID == measure,
			opSharded:  pl.OperatorSharded,
			dynRouting: pl.DynamicRouting,
			anat:       metrics.NewStageRecorder(numLanes),
		}
		count := pl.Executors
		if count < 1 {
			count = 1
		}
		var execs []*exec
		for i := 0; i < count; i++ {
			nd := e.takeFreeCore((idx + i) % len(e.nodes))
			if nd < 0 {
				if i == 0 {
					return fmt.Errorf("runtime: out of cores placing executor for %q", mop.Name)
				}
				break // elastic placements may start under-provisioned
			}
			x := e.newExec(o, i, nd)
			x.grant(nd)
			for extra := 1; extra < e.cfg.FixedCores; extra++ {
				g := e.takeFreeCore(x.local)
				if g < 0 {
					break
				}
				x.grant(g)
			}
			execs = append(execs, x)
		}
		var routing []int
		if pl.DynamicRouting {
			routing = make([]int, e.cfg.OpShards)
			for s := range routing {
				routing[s] = s % len(execs)
			}
			o.shardLoad = make([]float64, e.cfg.OpShards)
		}
		o.snap.Store(newOpSnap(execs, routing))
		e.ops[mop.ID] = o
		e.opOrder = append(e.opOrder, o)
		e.elastic = append(e.elastic, execs...)
		e.allExecs = append(e.allExecs, execs...)
	}
	return nil
}

func (e *Engine) isFirstHop(mop *stream.Operator) bool {
	for _, u := range mop.Upstream() {
		if e.cfg.Topology.Operator(u).Source {
			return true
		}
	}
	return false
}

func (e *Engine) measureOp() stream.OperatorID {
	if e.cfg.MeasureOp >= 0 {
		return e.cfg.MeasureOp
	}
	for _, mop := range e.cfg.Topology.Operators() {
		if !mop.Source {
			return mop.ID
		}
	}
	return -1
}

func (e *Engine) knobs() policy.Knobs {
	return policy.Knobs{
		Y:               e.cfg.Y,
		YPerOp:          e.cfg.YPerOp,
		Z:               e.cfg.Z,
		OpShards:        e.cfg.OpShards,
		Theta:           e.cfg.Theta,
		Phi:             e.cfg.Phi,
		Tmax:            e.cfg.Tmax,
		SchedulePeriod:  e.cfg.SchedulePeriod,
		RebalancePeriod: e.cfg.RebalancePeriod,
		FixedCores:      e.cfg.FixedCores,
	}
}

// vnow is virtual time since the run started — the policy surface's Now.
func (e *Engine) vnow() simtime.Time {
	return simtime.Time(e.clock.Now().Sub(*e.start.Load()))
}

// fail records the first fatal error (worker/control panic) and triggers an
// early shutdown; Run returns it.
func (e *Engine) fail(err error) {
	e.fatalMu.Lock()
	defer e.fatalMu.Unlock()
	if e.fatalErr != nil {
		return
	}
	e.fatalErr = err
	close(e.fatalCh)
}

func (e *Engine) fatal() error {
	e.fatalMu.Lock()
	defer e.fatalMu.Unlock()
	return e.fatalErr
}

// guard converts a panic in a runtime goroutine into a fatal run error: the
// concurrent backend must not crash the host process (the harness expects
// sequential error semantics from its trials).
func (e *Engine) guard(where string) {
	if v := recover(); v != nil {
		e.fail(fmt.Errorf("runtime: panic in %s: %v", where, v))
	}
}

// Run executes the topology for d of virtual time and assembles a report
// shaped exactly like the simulator's. It may be called once; Begin/WaitDone
// (handle.go) are its non-blocking halves.
func (e *Engine) Run(d simtime.Duration) (*engine.Report, error) {
	if err := e.Begin(d); err != nil {
		return nil, err
	}
	return e.WaitDone()
}

// post enqueues fn on the control goroutine.
func (e *Engine) post(fn func()) {
	select {
	case e.ctrl <- fn:
	case <-e.done:
	}
}

func (e *Engine) controlLoop() {
	defer e.wg.Done()
	defer e.guard("control loop")
	for {
		select {
		case <-e.done:
			return
		case fn := <-e.ctrl:
			fn()
		}
	}
}

// everyTick starts a ticker that posts fn to the control goroutine at each
// interval of virtual time — the runtime's implementation of policy.Host.Every.
func (e *Engine) everyTick(interval simtime.Duration, fn func()) {
	if interval <= 0 {
		panic("runtime: Every with non-positive interval")
	}
	t := e.clock.Ticker(interval)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer t.Stop()
		for {
			select {
			case <-e.done:
				return
			case <-t.C():
				e.post(fn)
			}
		}
	}()
}

// AtVirtual schedules fn to run once at the given virtual offset from run
// start, on its own goroutine. Must be called before Run (scenario wiring).
func (e *Engine) AtVirtual(at simtime.Duration, fn func()) {
	e.addHook(func() {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer e.guard("timer")
			select {
			case <-e.done:
			case <-e.clock.After(at):
				fn()
			}
		}()
	})
}

// addHook registers a run-start hook under the start lock, so late
// registrations cannot race Begin's hook sweep (they are dropped once the
// run has started — atCommand switches to live timers then).
func (e *Engine) addHook(h func()) {
	e.ranMu.Lock()
	e.hooks = append(e.hooks, h)
	e.ranMu.Unlock()
}

// EveryVirtual schedules fn at every interval of virtual time, on its own
// goroutine (fn must be safe to run concurrently with the dataflow). Must be
// called before Run.
func (e *Engine) EveryVirtual(interval simtime.Duration, fn func()) {
	e.addHook(func() {
		t := e.clock.Ticker(interval)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer t.Stop()
			defer e.guard("periodic")
			for {
				select {
				case <-e.done:
					return
				case <-t.C():
					fn()
				}
			}
		}()
	})
}

// sampleSeries folds the per-lane window cells and appends the one-second
// throughput and latency points (control goroutine — the only series writer).
// The latency-anatomy windows fold on the same tick: windowed quantiles from
// the merged window histogram, the traced stage window, and each operator's
// sampled hop recorder — all landing on the snapMu-guarded Snapshot surface.
func (e *Engine) sampleSeries() {
	now := e.vnow()
	if simtime.Duration(now) <= e.cfg.WarmUp {
		return
	}
	var procWin int64
	e.coll.winScratch.Reset()
	e.coll.winStages.Reset()
	for i := range e.coll.cells {
		c := &e.coll.cells[i]
		c.mu.Lock()
		procWin += c.procWin
		c.procWin = 0
		e.coll.winScratch.Merge(c.winLat)
		c.winLat.Reset()
		e.coll.winStages.Merge(c.winStage)
		c.winStage.Reset()
		c.mu.Unlock()
	}
	e.coll.thr.Append(now, float64(procWin))
	e.coll.latSeries.Append(now, e.coll.winScratch.Mean().Seconds())
	e.coll.quant.AppendWindow(now, e.coll.winScratch)

	e.snapMu.Lock()
	e.lastWindow, _ = e.coll.quant.Last()
	e.lastStages, e.coll.winStages = e.coll.winStages, e.lastStages
	for _, o := range e.opOrder {
		win, winTotal := o.anat.FoldWindow(nil, nil)
		totals := win.Totals()
		o.anatTotals[metrics.StageQueue] += totals[metrics.StageQueue]
		o.anatTotals[metrics.StageService] += totals[metrics.StageService]
		o.anatTotals[metrics.StageRepartition] += simtime.Duration(o.rpStallNS.Swap(0))
		o.anatTotals[metrics.StageMigration] += totals[metrics.StageMigration]
		if winTotal.Count() > 0 {
			o.latP50 = winTotal.Quantile(0.5)
			o.latP99 = winTotal.Quantile(0.99)
		}
	}
	e.snapMu.Unlock()
}

// shutdown runs the three-phase stop: quiesce sources, drain the dataflow,
// stop the control plane and workers.
func (e *Engine) shutdown() {
	close(e.stopSrc)
	deadline := time.Now().Add(e.opt.DrainTimeout)
	if e.fatal() != nil {
		deadline = time.Now() // a dead dataflow cannot drain; sweep instead
	}
	for time.Now().Before(deadline) {
		var pending int64
		for _, o := range e.opOrder {
			pending += o.inflight.Load()
		}
		if pending == 0 {
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	close(e.done)
	close(e.stopWorkers)
}

// sweepResidue accounts every tuple still parked in a queue or pause buffer
// when the drain gave up, so the ledger stays conserved.
func (e *Engine) sweepResidue() {
	for _, o := range e.opOrder {
		o.bufMu.Lock()
		buf := o.pauseBuf
		o.pauseBuf = nil
		o.bufMu.Unlock()
		for _, t := range buf {
			o.dropShut.Add(int64(t.Weight))
		}
	}
	for _, x := range e.allExecs {
		for {
			select {
			case ts := <-x.in:
				var w int64
				for i := range ts {
					w += int64(ts[i].Weight)
				}
				x.o.inflight.Add(0, -w)
				x.o.dropShut.Add(w)
				x.dropped.Add(w)
				x.queuedW.Add(-w)
				putTupleBuf(ts)
			default:
			}
			if len(x.in) == 0 {
				break
			}
		}
	}
}

// LatencyAnatomy returns thread-safe clones of the cumulative end-to-end sink
// latency histogram and its traced per-stage decomposition — the live
// /metrics surface (obs.Exporter.SetLatency). Safe from any goroutine.
func (e *Engine) LatencyAnatomy() (*metrics.Histogram, *metrics.StageSet) {
	lat := metrics.NewHistogram()
	stages := metrics.NewStageSet()
	for i := range e.coll.cells {
		c := &e.coll.cells[i]
		c.mu.Lock()
		lat.Merge(c.lat)
		stages.Merge(c.stage)
		c.mu.Unlock()
	}
	return lat, stages
}

// Ledger returns the run's conservation account.
func (e *Engine) Ledger() Ledger {
	var l Ledger
	for _, o := range e.opOrder {
		l.Admitted += o.admitted.Load()
		l.Processed += o.processed.Load()
		l.DroppedFailure += o.dropFail.Load()
		l.DroppedShutdown += o.dropShut.Load()
	}
	l.Blocked = e.blocked.Load()
	return l
}

// ExecutorCounts returns the live executor count per operator name
// (conformance suite).
func (e *Engine) ExecutorCounts() map[string]int {
	out := make(map[string]int, len(e.opOrder))
	for _, o := range e.opOrder {
		out[o.meta.Name] = len(o.snap.Load().execs)
	}
	return out
}

// buildReport assembles a simulator-shaped report from the runtime counters.
func (e *Engine) buildReport(d simtime.Duration) *engine.Report {
	r := &engine.Report{
		Paradigm:     e.par,
		Policy:       e.pol.Name(),
		Duration:     d,
		MeasuredSpan: d - e.cfg.WarmUp,
	}
	if r.MeasuredSpan <= 0 {
		r.MeasuredSpan = d
	}
	// Fold the per-lane collector cells (workers are quiesced by now, the
	// locks are belt-and-braces against a straggling reaper).
	lat := metrics.NewHistogram()
	stages := metrics.NewStageSet()
	var procTotal int64
	for i := range e.coll.cells {
		c := &e.coll.cells[i]
		c.mu.Lock()
		lat.Merge(c.lat)
		stages.Merge(c.stage)
		procTotal += c.procTotal
		c.mu.Unlock()
	}
	r.Latency = lat
	// Stage decomposition covers the traced sample (1-in-traceEvery batch
	// events), so its count is a fraction of Latency's — shares and dominant
	// stages are unbiased, absolute totals are scaled by the sampling rate.
	r.LatencyStages = stages
	r.ThroughputSeries = e.coll.thr
	r.LatencySeries = e.coll.latSeries
	r.LatencyQuantiles = e.coll.quant
	r.Processed = procTotal
	r.Generated = e.generated.Load()
	r.Blocked = e.blocked.Load()
	// Dropped comes from the operator ledger, not the per-exec counters:
	// pause-buffer residue swept at shutdown has no owning executor, and the
	// report's dropped column must agree with the ledger printed next to it.
	for _, o := range e.opOrder {
		r.Dropped += o.dropFail.Load() + o.dropShut.Load()
		r.PerOperator = append(r.PerOperator, engine.OperatorStats{
			Name:      o.meta.Name,
			Executors: len(o.snap.Load().execs),
			Retired:   int(o.retiredN.Load()),
			Offered:   o.admitted.Load(),
			Processed: o.processed.Load(),
		})
	}
	for _, x := range e.allExecs {
		r.Events += uint64(x.batches.Load())
	}
	r.MigrationBytes = e.migrationBytes.Load()
	r.LostStateBytes = e.lostStateBytes.Load()

	e.repMu.Lock()
	r.Repartitions = e.repartitions
	r.RepartitionMove = e.repartMoves
	r.RepartitionBytes = e.repartBytes
	r.RepartitionTime = e.repartTime
	r.RepartitionSync = e.repartSync
	r.RepartitionReplayed = e.repartReplayed
	r.SchedulingWall = append([]time.Duration(nil), e.schedulingWall...)
	r.NodeJoins = e.nodeJoins
	r.NodeDrains = e.nodeDrains
	r.NodeFails = e.nodeFails
	r.RetiredExecutors = e.retiredExecs
	r.ChurnErrors = append([]string(nil), e.churnErrors...)
	e.repMu.Unlock()

	if sec := r.MeasuredSpan.Seconds(); sec > 0 {
		r.ThroughputMean = float64(r.Processed) / sec
		r.MigrationRate = float64(r.MigrationBytes+r.RepartitionBytes) / sec
		r.RemoteRate = float64(r.RemoteTransferBytes) / sec
	}
	return r
}
