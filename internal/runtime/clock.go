package runtime

import "time"

// Clock abstracts wall time so the real-time backend can run against the
// machine clock in production and against a compressed clock in tests. All
// durations passed in are *virtual* time (the same vocabulary as
// simtime.Duration, which is an alias of time.Duration); a scaled clock maps
// them to shorter real waits and reports a proportionally faster Now.
type Clock interface {
	// Now returns the current (virtual) wall time.
	Now() time.Time
	// Sleep blocks for d of virtual time.
	Sleep(d time.Duration)
	// After returns a channel that fires once after d of virtual time.
	After(d time.Duration) <-chan time.Time
	// Ticker fires repeatedly every d of virtual time until stopped.
	Ticker(d time.Duration) Ticker
}

// Ticker is the stoppable periodic timer a Clock hands out.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Ticker(d time.Duration) Ticker {
	return realTicker{time.NewTicker(clampTick(d))}
}

// RealClock returns the machine clock: virtual time is wall time.
func RealClock() Clock { return realClock{} }

// minTick bounds ticker periods away from zero (time.NewTicker panics at 0,
// and sub-10µs tickers just burn the scheduler).
const minTick = 10 * time.Microsecond

func clampTick(d time.Duration) time.Duration {
	if d < minTick {
		return minTick
	}
	return d
}

// scaledClock runs factor× faster than the machine: Now advances factor
// virtual seconds per real second and every wait divides by factor. It keeps
// runtime tests fast without changing any duration arithmetic in the engine.
type scaledClock struct {
	epoch  time.Time
	factor float64
}

// Scaled returns a clock compressed by the given factor (2 = twice as fast).
// Factors ≤ 1 fall back to the real clock.
func Scaled(factor float64) Clock {
	if factor <= 1 {
		return RealClock()
	}
	return &scaledClock{epoch: time.Now(), factor: factor}
}

func (c *scaledClock) real(d time.Duration) time.Duration {
	return time.Duration(float64(d) / c.factor)
}

func (c *scaledClock) Now() time.Time {
	return c.epoch.Add(time.Duration(float64(time.Since(c.epoch)) * c.factor))
}

func (c *scaledClock) Sleep(d time.Duration) { time.Sleep(c.real(d)) }

func (c *scaledClock) After(d time.Duration) <-chan time.Time {
	return time.After(c.real(d))
}

func (c *scaledClock) Ticker(d time.Duration) Ticker {
	return realTicker{time.NewTicker(clampTick(c.real(d)))}
}
