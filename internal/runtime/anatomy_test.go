package runtime

import (
	"context"
	"testing"

	"repro/internal/metrics"
)

// The latency-anatomy conformance suite: stage attribution must tile the
// end-to-end latency — exactly on the simulator (every sink tuple is
// observed), within sampling tolerance on the real-time backend (1-in-N
// source-sampled) — and the two backends must agree on where a workload's
// latency is spent.

// TestAnatomyStageTilingSim: on the simulator the four stages partition the
// end-to-end latency with no residue: the stage set's summed attributed time
// equals the latency histogram's exact sum, observation for observation,
// because the queue stage is defined as the residual and must never clamp.
func TestAnatomyStageTilingSim(t *testing.T) {
	for _, pol := range conformancePolicies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			inst, err := quickSpec().Build(pol, 42)
			if err != nil {
				t.Fatalf("sim build: %v", err)
			}
			r := inst.Engine.Run(quickSpec().Duration())
			if r.Latency.Count() == 0 {
				t.Fatal("sim run observed no latency samples")
			}
			if got, want := r.LatencyStages.Count(), r.Latency.Count(); got != want {
				t.Fatalf("stage set covers %d weighted samples, latency histogram %d", got, want)
			}
			if got, want := r.LatencyStages.Total(), r.Latency.Sum(); got != want {
				t.Fatalf("stages do not tile end-to-end latency: Σstages=%v, Σlatency=%v (residual clamped?)",
					got, want)
			}
		})
	}
}

// TestAnatomyStageTilingRuntime: on the real-time backend the anatomy covers
// only the 1-in-N source-sampled tuples, so the contract is statistical: a
// non-empty sampled subset no larger than the full population, whose mean
// attributed latency tracks the population mean. The sampled set is an
// unbiased slice of admissions, so a factor-2 band is generous; a tiling bug
// (double-counted stall, lost service time) lands far outside it.
func TestAnatomyStageTilingRuntime(t *testing.T) {
	rt, _, err := BuildScenario(quickSpec(), "elasticutor", 42, quickOpts())
	if err != nil {
		t.Fatalf("runtime build: %v", err)
	}
	r, err := rt.Run(quickSpec().Duration())
	if err != nil {
		t.Fatalf("runtime run: %v", err)
	}
	if r.Latency.Count() == 0 {
		t.Fatal("runtime run observed no latency samples")
	}
	st := r.LatencyStages
	if st.Count() == 0 {
		t.Fatal("no sampled tuples reached a sink with anatomy attached")
	}
	if st.Count() > r.Latency.Count() {
		t.Fatalf("sampled anatomy (%d) exceeds the full population (%d)", st.Count(), r.Latency.Count())
	}
	popMean := r.Latency.Sum().Seconds() / float64(r.Latency.Count())
	sampMean := st.Total().Seconds() / float64(st.Count())
	if sampMean < popMean/2 || sampMean > popMean*2 {
		t.Fatalf("sampled stage total diverges from the population: sampled mean %.4fs, population mean %.4fs",
			sampMean, popMean)
	}
	// The anatomy accessor merges the same cells the report does.
	lat, stages := rt.LatencyAnatomy()
	if lat.Count() != r.Latency.Count() || stages.Count() != st.Count() {
		t.Fatalf("LatencyAnatomy() disagrees with the report: lat %d vs %d, stages %d vs %d",
			lat.Count(), r.Latency.Count(), stages.Count(), st.Count())
	}
}

// TestAnatomyConformanceDominantStage: for the same saturated workload under
// the same policy, both backends must attribute the bulk of the latency to
// the same stage. Queueing dominates a backpressured static plane by orders
// of magnitude, so the structural agreement is robust to backend timing.
func TestAnatomyConformanceDominantStage(t *testing.T) {
	spec := quickSpec()
	inst, err := spec.Build("static", 42)
	if err != nil {
		t.Fatalf("sim build: %v", err)
	}
	simR := inst.Engine.Run(spec.Duration())
	simStage, simShare := simR.LatencyStages.Dominant()

	rt, _, err := BuildScenario(spec, "static", 42, quickOpts())
	if err != nil {
		t.Fatalf("runtime build: %v", err)
	}
	rtR, err := rt.Run(spec.Duration())
	if err != nil {
		t.Fatalf("runtime run: %v", err)
	}
	rtStage, rtShare := rtR.LatencyStages.Dominant()

	if simStage != metrics.StageQueue {
		t.Fatalf("sim dominant stage = %s (%.0f%%), want queue on a saturated static plane", simStage, 100*simShare)
	}
	if rtStage != simStage {
		t.Fatalf("backends disagree on the dominant stage: sim %s (%.0f%%), runtime %s (%.0f%%)",
			simStage, 100*simShare, rtStage, 100*rtShare)
	}
	if rtShare < 0.5 {
		t.Fatalf("runtime dominant stage %s only holds %.0f%% of attributed time", rtStage, 100*rtShare)
	}
}

// TestAnatomyWindowedQuantilesFlow: both backends fill the windowed
// percentile track and the snapshot surfaces it. The snapshot's dominant
// stage must be one of the four named stages with a sane share.
func TestAnatomyWindowedQuantilesFlow(t *testing.T) {
	spec := quickSpec()
	_, h, err := BuildScenario(spec, "elasticutor", 42, quickOpts())
	if err != nil {
		t.Fatalf("runtime build: %v", err)
	}
	h.Start(context.Background())
	r, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r.LatencyQuantiles.Len() == 0 {
		t.Fatal("runtime report has no windowed quantile points")
	}
	if r.LatencyQuantiles.MaxP99() <= 0 {
		t.Fatal("windowed p99 track is all zeros")
	}
	s := h.Snapshot()
	if s.DominantShare < 0 || s.DominantShare > 1 {
		t.Fatalf("snapshot dominant share out of range: %v", s.DominantShare)
	}
	if s.DominantStage < 0 || s.DominantStage >= metrics.NumStages {
		t.Fatalf("snapshot dominant stage out of range: %v", s.DominantStage)
	}

	inst, err := spec.Build("elasticutor", 42)
	if err != nil {
		t.Fatalf("sim build: %v", err)
	}
	simR := inst.Engine.Run(spec.Duration())
	if simR.LatencyQuantiles.Len() == 0 {
		t.Fatal("sim report has no windowed quantile points")
	}
	if simR.LatencyQuantiles.MaxP99() <= 0 {
		t.Fatal("sim windowed p99 track is all zeros")
	}
}
