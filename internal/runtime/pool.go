package runtime

import "repro/internal/stream"

// Tuple-buffer pooling for the batched hot path. Every batch that crosses an
// executor channel is backed by a buffer from this pool: the sender obtains
// it with getTupleBuf and ownership travels with the batch — whoever consumes
// the contents (a worker, a retiree reaper, the shutdown residue sweep)
// releases it with putTupleBuf. Buffers come in capacity classes so short
// control batches do not pin source-sized backing arrays.
//
// The free lists are buffered channels rather than sync.Pool: a channel of a
// concrete slice type recycles without boxing the slice header, which keeps
// the admission path at zero steady-state allocations.

var tupleClasses = [...]int{64, 256, 1024}

var tuplePools = [len(tupleClasses)]chan []stream.Tuple{
	make(chan []stream.Tuple, 256),
	make(chan []stream.Tuple, 128),
	make(chan []stream.Tuple, 64),
}

// getTupleBuf returns an empty buffer with capacity at least n (a fresh
// allocation when n exceeds the largest class or the class's list is empty).
func getTupleBuf(n int) []stream.Tuple {
	for i, c := range tupleClasses {
		if n <= c {
			select {
			case b := <-tuplePools[i]:
				return b
			default:
				return make([]stream.Tuple, 0, c)
			}
		}
	}
	return make([]stream.Tuple, 0, n)
}

// putTupleBuf clears and recycles a buffer obtained from getTupleBuf.
// Clearing drops Payload references before the buffer idles on a free list;
// buffers grown past their class (or never pool-sized) fall to the GC.
func putTupleBuf(b []stream.Tuple) {
	if b == nil {
		return
	}
	clear(b)
	b = b[:0]
	for i := range tupleClasses {
		if cap(b) == tupleClasses[i] {
			select {
			case tuplePools[i] <- b:
			default:
			}
			return
		}
	}
}

// idxPool recycles the routing-index scratch deliver uses to group a batch by
// destination executor (single class: grouping never outlives one call).
var idxPool = make(chan []int32, 128)

const idxClass = 1024

func getIdxBuf(n int) []int32 {
	if n <= idxClass {
		select {
		case b := <-idxPool:
			return b
		default:
			return make([]int32, 0, idxClass)
		}
	}
	return make([]int32, 0, n)
}

func putIdxBuf(b []int32) {
	if cap(b) == idxClass {
		select {
		case idxPool <- b[:0]:
		default:
		}
	}
}
