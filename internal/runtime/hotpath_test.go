package runtime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/workload"
)

// Tests for the batched hot path: buffer pooling, striped counters, and the
// §3.3 repartition protocol's interaction with in-flight batches.

// TestStripedCounterFold checks that concurrent adds across all lanes fold to
// the exact total once the writers quiesce, including out-of-range lane
// indices (they must mask, not panic or misattribute).
func TestStripedCounterFold(t *testing.T) {
	var c stripedInt64
	const (
		writers = 16
		perLane = 10000
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < perLane; i++ {
				c.Add(lane, 3)
			}
		}(g) // lanes 0..15: half exercise the mask path (numLanes is 8)
	}
	wg.Wait()
	if got, want := c.Load(), int64(writers*perLane*3); got != want {
		t.Fatalf("fold = %d, want %d", got, want)
	}
	c.Add(-1, 5) // negative lane must mask too
	if got, want := c.Load(), int64(writers*perLane*3+5); got != want {
		t.Fatalf("fold after negative lane = %d, want %d", got, want)
	}
}

// TestRepartitionUnderBatching drives the pause→buffer→replay half of the
// §3.3 protocol directly against a built (never Run) runtime: a batch
// delivered under pause must land in the pause buffer whole — admitted,
// nothing in flight — and the replay after unpause must re-route it against
// the live table preserving per-executor arrival order, with every tuple
// accounted for.
func TestRepartitionUnderBatching(t *testing.T) {
	rt, _, err := BuildScenario(quickSpec(), "rc", 42, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := rt.opOrder[0]
	snap := o.snap.Load()
	if snap.table == nil {
		t.Fatal("rc operator has no flat routing table")
	}

	const n = 100
	batch := getTupleBuf(n)
	for i := 0; i < n; i++ {
		batch = append(batch, stream.Tuple{
			Key: stream.Key(i * 7), Seq: uint64(i), Weight: 1, Bytes: 8,
		})
	}

	// Phase 1: paused operator. The whole batch must buffer, not queue.
	o.paused.Store(true)
	rt.deliver(o, batch, true, 0)
	if got := o.admitted.Load(); got != n {
		t.Fatalf("admitted = %d, want %d (admission precedes the pause check)", got, n)
	}
	if got := o.inflight.Load(); got != 0 {
		t.Fatalf("inflight = %d under pause, want 0", got)
	}
	o.bufMu.Lock()
	buffered := len(o.pauseBuf)
	o.bufMu.Unlock()
	if buffered != n {
		t.Fatalf("pause buffer holds %d tuples, want %d", buffered, n)
	}

	// Phase 2: unpause and replay, the runRepartition tail.
	o.paused.Store(false)
	o.bufMu.Lock()
	buf := o.pauseBuf
	o.pauseBuf = nil
	o.bufMu.Unlock()
	rt.replay(o, buf, 0)
	putTupleBuf(batch)

	// Replay must not double-admit.
	if got := o.admitted.Load(); got != n {
		t.Fatalf("admitted after replay = %d, want %d", got, n)
	}
	if got := o.inflight.Load(); got != n {
		t.Fatalf("inflight after replay = %d, want %d", got, n)
	}

	// Drain the executor queues as a worker would and check conservation and
	// order: each executor sees its tuples in the original emission order,
	// and each tuple landed where the live table routes it.
	var drained int64
	for xi, x := range snap.execs {
		var lastSeq uint64
		first := true
		for {
			select {
			case ts := <-x.in:
				for i := range ts {
					tt := ts[i]
					drained += int64(tt.Weight)
					if want := rt.routeIdx(o, snap, tt.Key); want != xi {
						t.Fatalf("seq %d on executor %d, table routes to %d", tt.Seq, xi, want)
					}
					if !first && tt.Seq <= lastSeq {
						t.Fatalf("executor %d saw seq %d after %d: order lost", xi, tt.Seq, lastSeq)
					}
					lastSeq, first = tt.Seq, false
				}
				o.inflight.Add(0, -int64(len(ts)))
				x.queuedW.Add(-int64(len(ts)))
				putTupleBuf(ts)
				continue
			default:
			}
			break
		}
	}
	if drained != n {
		t.Fatalf("drained %d tuples, want %d", drained, n)
	}
	if got := o.inflight.Load(); got != 0 {
		t.Fatalf("inflight after drain = %d, want 0", got)
	}
}

// TestConformanceBatchedSaturated runs a short saturated batched workload on
// the real clock (the hot-path bench topology) and checks the ledger contract
// holds under maximum admission pressure. Named into the conformance family
// so CI's -race smoke covers the batched path end to end.
func TestConformanceBatchedSaturated(t *testing.T) {
	pol, err := policy.ByName("elasticutor")
	if err != nil {
		t.Fatal(err)
	}
	setup := core.MicroSetup(core.MicroOptions{
		Policy:          pol,
		Nodes:           1,
		SourceExecutors: 1,
		Y:               1,
		Spec: workload.Spec{
			Keys: 1024, Skew: 0.5, TupleBytes: 64,
			CPUCost: 0, ShardStateKB: 1,
		},
		Rate:  1e6,
		Batch: 1,
		Seed:  1,
	})
	setup.Config.FixedCores = 1
	rt, err := New(setup.Config, Options{Clock: RealClock(), DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(simtime.Duration(150 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	led := rt.Ledger()
	if !led.Conserved() {
		t.Fatalf("ledger not conserved under saturation: %+v", led)
	}
	if led.Processed == 0 {
		t.Fatal("saturated run processed nothing")
	}
	if led.Blocked == 0 {
		t.Fatal("saturated run blocked nothing: backpressure never engaged")
	}
}
