package runtime

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/run"
	"repro/internal/scenario"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/workload"
)

// ScenarioOptions tunes a scenario run on the real-time backend.
type ScenarioOptions struct {
	Options
	// Batch is the tuple weight per emitted event. 0 picks a batch that
	// keeps the event rate near targetEventRate so wall-clock runs stay
	// tractable on small machines; costs and accounting scale with weight
	// exactly as in the simulator.
	Batch int
}

// targetEventRate is the default virtual events/second the auto-batch aims
// for on scenario runs.
const targetEventRate = 400.0

// lockedZipf guards the key sampler: on the runtime backend sources sample
// concurrently with the scenario's key-phase mutations. It implements
// scenario.ZipfCtl.
type lockedZipf struct {
	mu sync.Mutex
	z  *workload.Zipf
}

func (g *lockedZipf) Sample() stream.Key {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.z.Sample()
}

// Apply runs a mutation under the sampler lock (scenario.ZipfCtl).
func (g *lockedZipf) Apply(fn func(*workload.Zipf)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	fn(g.z)
}

// BuildScenario assembles a wired, unstarted runtime run for a scenario
// spec: the micro topology with the scenario's workload, rate phases folded
// into the source rate, key phases and cluster events scheduled through the
// returned run handle (the scenario interpreter is a client of the handle,
// exactly as on the simulator). Callers either Start the handle or call
// Engine.Run directly — the wiring is already registered either way.
func BuildScenario(s *scenario.Spec, policyName string, seed uint64, opt ScenarioOptions) (*Engine, *run.Run, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	pol, err := policy.ByName(policyName)
	if err != nil {
		return nil, nil, err
	}
	base := s.BaseRate()
	mult := s.RateMultiplier()
	batch := opt.Batch
	if batch <= 0 {
		batch = int(base/targetEventRate) + 1
	}
	wl := s.ResolvedWorkload()
	setup := core.MicroSetup(core.MicroOptions{
		Policy:          pol,
		Nodes:           s.Nodes,
		SourceExecutors: s.SourceExecutors,
		Y:               s.Y,
		Z:               s.Z,
		OpShards:        s.OpShards,
		Spec:            wl,
		Rate:            base,
		RateFn:          func(t simtime.Time) float64 { return base * mult(t) },
		Batch:           batch,
		Seed:            seed,
		WarmUp:          s.Warmup(),
	})
	gz := &lockedZipf{z: setup.Zipf}
	setup.Config.Sources[setup.GenID].Sample = func(simtime.Time) (stream.Key, int, interface{}) {
		return gz.Sample(), wl.TupleBytes, nil
	}
	rt, err := New(setup.Config, opt.Options)
	if err != nil {
		return nil, nil, err
	}
	if setup.ShuffleEvery > 0 {
		rt.EveryVirtual(setup.ShuffleEvery, func() { gz.Apply(func(z *workload.Zipf) { z.Shuffle() }) })
	}
	h := run.NewRuntime(rt, s.Duration())
	scenario.Drive(h, s, gz, wl.Keys)
	return rt, h, nil
}

// StartScenario builds a scenario on the runtime backend and starts it
// through the run handle. The engine is returned alongside the handle for
// backend-specific observation (the conservation Ledger).
func StartScenario(ctx context.Context, s *scenario.Spec, policyName string, seed uint64, opt ScenarioOptions) (*run.Run, *Engine, error) {
	rt, h, err := BuildScenario(s, policyName, seed, opt)
	if err != nil {
		return nil, nil, err
	}
	h.Start(ctx)
	return h, rt, nil
}

// RunScenario builds and runs a scenario under the named policy, returning
// the simulator-shaped report plus the runtime's conservation ledger.
func RunScenario(s *scenario.Spec, policyName string, seed uint64, opt ScenarioOptions) (*engine.Report, Ledger, error) {
	h, rt, err := StartScenario(context.Background(), s, policyName, seed, opt)
	if err != nil {
		return nil, Ledger{}, err
	}
	r, err := h.Wait()
	if err != nil {
		return nil, Ledger{}, err
	}
	return r, rt.Ledger(), nil
}
