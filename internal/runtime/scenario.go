package runtime

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/workload"
)

// ScenarioOptions tunes a scenario run on the real-time backend.
type ScenarioOptions struct {
	Options
	// Batch is the tuple weight per emitted event. 0 picks a batch that
	// keeps the event rate near targetEventRate so wall-clock runs stay
	// tractable on small machines; costs and accounting scale with weight
	// exactly as in the simulator.
	Batch int
}

// targetEventRate is the default virtual events/second the auto-batch aims
// for on scenario runs.
const targetEventRate = 400.0

// lockedZipf guards the key sampler: on the runtime backend sources sample
// concurrently with the scenario's key-phase mutations.
type lockedZipf struct {
	mu sync.Mutex
	z  *workload.Zipf
}

func (g *lockedZipf) Sample() stream.Key {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.z.Sample()
}

func (g *lockedZipf) apply(fn func(*workload.Zipf)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	fn(g.z)
}

// BuildScenario assembles a runtime engine for a scenario spec: the micro
// topology with the scenario's workload, rate phases folded into the source
// rate, key phases and cluster events scheduled on the wall clock.
func BuildScenario(s *scenario.Spec, policyName string, seed uint64, opt ScenarioOptions) (*Engine, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pol, err := policy.ByName(policyName)
	if err != nil {
		return nil, err
	}
	base := s.BaseRate()
	mult := s.RateMultiplier()
	batch := opt.Batch
	if batch <= 0 {
		batch = int(base/targetEventRate) + 1
	}
	wl := s.ResolvedWorkload()
	setup := core.MicroSetup(core.MicroOptions{
		Policy:          pol,
		Nodes:           s.Nodes,
		SourceExecutors: s.SourceExecutors,
		Y:               s.Y,
		Z:               s.Z,
		OpShards:        s.OpShards,
		Spec:            wl,
		Rate:            base,
		RateFn:          func(t simtime.Time) float64 { return base * mult(t) },
		Batch:           batch,
		Seed:            seed,
		WarmUp:          s.Warmup(),
	})
	gz := &lockedZipf{z: setup.Zipf}
	setup.Config.Sources[setup.GenID].Sample = func(simtime.Time) (stream.Key, int, interface{}) {
		return gz.Sample(), wl.TupleBytes, nil
	}
	rt, err := New(setup.Config, opt.Options)
	if err != nil {
		return nil, err
	}
	if setup.ShuffleEvery > 0 {
		rt.EveryVirtual(setup.ShuffleEvery, func() { gz.apply(func(z *workload.Zipf) { z.Shuffle() }) })
	}
	attachScenario(rt, s, gz, wl)
	return rt, nil
}

// RunScenario builds and runs a scenario under the named policy, returning
// the simulator-shaped report plus the runtime's conservation ledger.
func RunScenario(s *scenario.Spec, policyName string, seed uint64, opt ScenarioOptions) (*engine.Report, Ledger, error) {
	rt, err := BuildScenario(s, policyName, seed, opt)
	if err != nil {
		return nil, Ledger{}, err
	}
	r, err := rt.Run(s.Duration())
	if err != nil {
		return nil, Ledger{}, err
	}
	return r, rt.Ledger(), nil
}

// attachScenario schedules the spec's key phases and cluster events on the
// runtime clock — the wall-clock mirror of scenario.Attach.
func attachScenario(rt *Engine, s *scenario.Spec, gz *lockedZipf, wl workload.Spec) {
	const skewStep = 250 * simtime.Millisecond
	for _, ph := range s.Phases {
		ph := ph
		start := simtime.FromSeconds(ph.StartSec)
		dur := simtime.FromSeconds(ph.DurationSec)
		end := start + dur
		switch ph.Kind {
		case scenario.PhaseSkewDrift:
			from := phaseParam(ph, "from", wl.Skew)
			to := phaseParam(ph, "to", 1.1)
			landed := false
			for k := 0; ; k++ {
				at := start + simtime.Duration(k)*skewStep
				if at > end {
					break
				}
				if at == end {
					landed = true
				}
				frac := float64(at-start) / float64(dur)
				skew := from + (to-from)*frac
				rt.AtVirtual(at, func() { gz.apply(func(z *workload.Zipf) { z.SetSkew(skew) }) })
			}
			if !landed {
				rt.AtVirtual(end, func() { gz.apply(func(z *workload.Zipf) { z.SetSkew(to) }) })
			}
		case scenario.PhaseHotspot:
			shift := int(phaseParam(ph, "shift", float64(wl.Keys/16)))
			if shift < 1 {
				shift = 1
			}
			schedulePhasePeriodic(rt, ph, func() { gz.apply(func(z *workload.Zipf) { z.Rotate(shift) }) })
		case scenario.PhaseKeyChurn:
			frac := phaseParam(ph, "fraction", 0.1)
			schedulePhasePeriodic(rt, ph, func() { gz.apply(func(z *workload.Zipf) { z.PartialShuffle(frac) }) })
		}
	}
	rt.AttachEvents(s)
}

// AttachEvents schedules a scenario's cluster events (join/drain/fail) on
// the runtime clock. Shared by the scenario driver and the facade (which
// applies scenario churn to user topologies). Must be called before Run.
func (e *Engine) AttachEvents(s *scenario.Spec) {
	for i, ev := range s.Events {
		ev, i := ev, i
		at := simtime.FromSeconds(ev.AtSec)
		switch ev.Kind {
		case scenario.EventJoin:
			e.AtVirtual(at, func() { e.AddNode(ev.Cores) })
		case scenario.EventDrain:
			e.AtVirtual(at, func() { e.DrainNode(ev.Node) })
		case scenario.EventFail:
			e.AtVirtual(at, func() { e.FailNode(ev.Node) })
		default:
			e.recordChurnError(fmt.Sprintf("scenario %q event %d: unknown kind %q", s.Name, i, ev.Kind))
		}
	}
}

// schedulePhasePeriodic fires fn at the phase start and then every period_sec
// until the phase ends.
func schedulePhasePeriodic(rt *Engine, ph scenario.Phase, fn func()) {
	period := simtime.FromSeconds(phaseParam(ph, "period_sec", 2))
	start := simtime.FromSeconds(ph.StartSec)
	end := simtime.FromSeconds(ph.StartSec + ph.DurationSec)
	for at := start; at <= end; at += period {
		rt.AtVirtual(at, fn)
	}
}

func phaseParam(ph scenario.Phase, name string, def float64) float64 {
	if v, ok := ph.Params[name]; ok {
		return v
	}
	return def
}
