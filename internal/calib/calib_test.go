package calib

import (
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/simtime"
)

func sample() *Table {
	t := New()
	t.PerTupleOverheadNS = 1500
	t.ControlDelayNS = 800_000
	t.SerializeOverheadNS = 2_500_000
	t.MigrationBandwidthBps = 4e9
	t.SchedulingWallNS = 40_000
	return t
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.json")
	want := sample()
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestApplyOverridesSimCosts(t *testing.T) {
	cfg := engine.Config{}
	cfg = cfg.Defaults()
	sample().Apply(&cfg)
	if cfg.ControlDelay != 800*simtime.Microsecond {
		t.Fatalf("ControlDelay = %v", cfg.ControlDelay)
	}
	if cfg.SerializeOverhead != 2500*simtime.Microsecond {
		t.Fatalf("SerializeOverhead = %v", cfg.SerializeOverhead)
	}
	if cfg.Cluster.BandwidthBps != 4e9 {
		t.Fatalf("BandwidthBps = %v", cfg.Cluster.BandwidthBps)
	}
	// Zero fields leave the paper defaults untouched.
	empty := New()
	cfg2 := engine.Config{}.Defaults()
	before := cfg2.ControlDelay
	empty.Apply(&cfg2)
	if cfg2.ControlDelay != before {
		t.Fatalf("zero table must not override defaults")
	}
}

func TestLoadRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.json")
	bad := sample()
	bad.SchemaName = "nope/v9"
	// Save validates too; write by hand.
	if err := bad.Save(path); err == nil {
		t.Fatal("Save accepted a bad schema")
	}
}
