// Package calib is the calibration bridge between the two execution
// backends: tools/calibrate measures the real-time backend's costs — per-
// tuple processing overhead, state-migration bandwidth, control and
// scheduling invocation costs — and writes them as a Table; the simulator
// loads the Table and replaces its assumed cost-model constants with the
// measured ones. This closes the ROADMAP loop of validating the simulator's
// cost table against reality instead of guessing it.
package calib

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/simtime"
)

// Schema identifies the file format.
const Schema = "elasticutor-calibration/v1"

// Table is one machine's measured cost table. Durations are nanoseconds in
// the JSON form (stable across machines and Go versions).
type Table struct {
	SchemaName string `json:"schema"`
	Host       string `json:"host,omitempty"` // GOOS/GOARCH/cores, informational

	// PerTupleOverheadNS is the runtime's amortized cost of moving one tuple
	// through an executor on the batched hot path: its share of the channel
	// hop and per-batch accounting plus its own shard resolution and stripe
	// access. The simulator folds it into nothing today (its event dispatch
	// is free); it is recorded for the perf trajectory and future cost
	// models.
	PerTupleOverheadNS int64 `json:"per_tuple_overhead_ns"`

	// PerEventOverheadNS is the cost of one queue event (a whole batch
	// crossing an executor channel) end to end. Before batching (≤ PR5) one
	// event carried one source emission, so older tables record this value
	// in PerTupleOverheadNS instead.
	PerEventOverheadNS int64 `json:"per_event_overhead_ns,omitempty"`

	// ControlDelayNS is the local control-plane cost of one routing mutation
	// (pause/update bookkeeping) — the simulator's Config.ControlDelay.
	ControlDelayNS int64 `json:"control_delay_ns"`

	// SerializeOverheadNS is the fixed cost of one state migration on top of
	// wire time — the simulator's Config.SerializeOverhead.
	SerializeOverheadNS int64 `json:"serialize_overhead_ns"`

	// MigrationBandwidthBps is the measured state-move throughput in bits
	// per second — the simulator's cluster NIC bandwidth for migrations.
	MigrationBandwidthBps float64 `json:"migration_bandwidth_bps"`

	// SchedulingWallNS is one dynamic-scheduler invocation (queueing model +
	// Algorithm 1) at quick-scale dimensions, Table 3's metric.
	SchedulingWallNS int64 `json:"scheduling_wall_ns"`
}

// New returns a Table with the schema stamped.
func New() *Table { return &Table{SchemaName: Schema} }

// Validate checks the schema and value sanity.
func (t *Table) Validate() error {
	if t.SchemaName != Schema {
		return fmt.Errorf("calib: schema %q, want %q", t.SchemaName, Schema)
	}
	for name, v := range map[string]int64{
		"per_tuple_overhead_ns": t.PerTupleOverheadNS,
		"per_event_overhead_ns": t.PerEventOverheadNS,
		"control_delay_ns":      t.ControlDelayNS,
		"serialize_overhead_ns": t.SerializeOverheadNS,
		"scheduling_wall_ns":    t.SchedulingWallNS,
	} {
		if v < 0 {
			return fmt.Errorf("calib: %s is negative", name)
		}
	}
	if t.MigrationBandwidthBps < 0 {
		return fmt.Errorf("calib: migration_bandwidth_bps is negative")
	}
	return nil
}

// Apply overrides the simulator configuration's assumed cost constants with
// the measured ones. Zero measurements leave the paper defaults in place.
func (t *Table) Apply(cfg *engine.Config) {
	if t.ControlDelayNS > 0 {
		cfg.ControlDelay = simtime.Duration(t.ControlDelayNS)
	}
	if t.SerializeOverheadNS > 0 {
		cfg.SerializeOverhead = simtime.Duration(t.SerializeOverheadNS)
	}
	if t.MigrationBandwidthBps > 0 {
		cfg.Cluster.BandwidthBps = t.MigrationBandwidthBps
	}
}

// Load reads and validates a calibration file.
func Load(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("calib: %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("calib: %s: %w", path, err)
	}
	return &t, nil
}

// Save writes the table as indented JSON.
func (t *Table) Save(path string) error {
	if err := t.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// String renders the table for terminals.
func (t *Table) String() string {
	return fmt.Sprintf(
		"per-tuple overhead:   %v\ncontrol delay:        %v\nserialize overhead:   %v\nmigration bandwidth:  %.1f MB/s\nscheduling invocation: %v",
		time.Duration(t.PerTupleOverheadNS), time.Duration(t.ControlDelayNS),
		time.Duration(t.SerializeOverheadNS), t.MigrationBandwidthBps/8/(1<<20),
		time.Duration(t.SchedulingWallNS))
}
